#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/numfmt.hpp"
#include "prof/profiler.hpp"

namespace tcm::bench {

void
printHeader(const std::string &title, const sim::ExperimentScale &scale)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("scale: warmup=%llu measure=%llu cycles, %d workloads/category\n",
                static_cast<unsigned long long>(scale.warmup),
                static_cast<unsigned long long>(scale.measure),
                scale.workloadsPerCategory);
    std::printf("(override with TCMSIM_WARMUP / TCMSIM_CYCLES / TCMSIM_WORKLOADS)\n");
    std::printf("==============================================================\n");
    // Every bench routes its runs through runWorkload, which honors the
    // TCMSIM_PROFILE knob; surface that on stderr so a profiled run is
    // visibly profiled while stdout (golden-diffed) stays byte-stable.
    prof::ProfileConfig pcfg = prof::ProfileConfig::fromEnv();
    if (pcfg.enabled)
        std::fprintf(stderr, "bench: simulator self-profile on%s%s\n",
                     pcfg.dir.empty() ? "" : ", writing to ",
                     pcfg.dir.c_str());
}

void
printAggregate(const sim::AggregateResult &r)
{
    std::printf("%-10s  WS=%6.2f  MS=%6.2f  HS=%6.3f\n", r.scheduler.c_str(),
                r.weightedSpeedup.mean(), r.maxSlowdown.mean(),
                r.harmonicSpeedup.mean());
}

std::string
fmt(double v, int precision)
{
    // std::to_chars, not snprintf: table rows feed goldens and diffs, so
    // they must not bend to the process locale's decimal separator.
    return formatDouble(v, precision);
}

std::string
jsonOutputPath(const std::string &bench, int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--json")
            return argv[i + 1];
    const char *dir = std::getenv("TCMSIM_BENCH_JSON");
    if (!dir || !*dir)
        return "";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "bench: cannot create TCMSIM_BENCH_JSON dir %s\n",
                     dir);
        std::exit(1);
    }
    return std::string(dir) + "/BENCH_" + bench + ".json";
}

void
writeJsonIfRequested(const sim::results::ResultsDoc &doc, int argc,
                     char **argv)
{
    std::string path = jsonOutputPath(doc.bench, argc, argv);
    if (path.empty())
        return;
    try {
        doc.save(path);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench: %s\n", e.what());
        std::exit(1);
    }
    std::fprintf(stderr, "results json: %s\n", path.c_str());
}

} // namespace tcm::bench
