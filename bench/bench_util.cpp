#include "bench_util.hpp"

#include <cstdio>

namespace tcm::bench {

void
printHeader(const std::string &title, const sim::ExperimentScale &scale)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("scale: warmup=%llu measure=%llu cycles, %d workloads/category\n",
                static_cast<unsigned long long>(scale.warmup),
                static_cast<unsigned long long>(scale.measure),
                scale.workloadsPerCategory);
    std::printf("(override with TCMSIM_WARMUP / TCMSIM_CYCLES / TCMSIM_WORKLOADS)\n");
    std::printf("==============================================================\n");
}

void
printAggregate(const sim::AggregateResult &r)
{
    std::printf("%-10s  WS=%6.2f  MS=%6.2f  HS=%6.3f\n", r.scheduler.c_str(),
                r.weightedSpeedup.mean(), r.maxSlowdown.mean(),
                r.harmonicSpeedup.mean());
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace tcm::bench
