/**
 * @file
 * Reproduces Table 8: TCM vs ATLAS (the best prior throughput scheduler)
 * as the system configuration varies — number of memory controllers
 * (1..16), number of cores (4..32), and last-level cache size (emulated
 * by scaling MPKI: a 2x cache roughly halves the miss rate).
 *
 * Paper's reading: TCM's throughput advantage is small but positive
 * everywhere, and its fairness advantage (-29..-53 % maximum slowdown)
 * holds across every configuration.
 */

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

void
compare(sim::SystemConfig config, const sim::ExperimentScale &scale,
        const std::string &label, const char *series,
        sim::results::ResultsDoc &doc)
{
    auto workloads = workload::workloadSet(scale.workloadsPerCategory,
                                           config.numCores, 0.5, 8000);
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    auto aggs = sim::evaluateMatrix(config, workloads,
                                    {sched::SchedulerSpec::tcmSpec(),
                                     sched::SchedulerSpec::atlasSpec()},
                                    scale, cache, 31);
    const sim::AggregateResult &tcm = aggs[0];
    const sim::AggregateResult &atlas = aggs[1];
    std::printf("%-24s  dWS %+6.1f%%   dMS %+6.1f%%   (TCM %5.2f/%5.2f, "
                "ATLAS %5.2f/%5.2f)\n",
                label.c_str(),
                100.0 * (tcm.weightedSpeedup.mean() /
                             atlas.weightedSpeedup.mean() -
                         1.0),
                100.0 * (tcm.maxSlowdown.mean() / atlas.maxSlowdown.mean() -
                         1.0),
                tcm.weightedSpeedup.mean(), tcm.maxSlowdown.mean(),
                atlas.weightedSpeedup.mean(), atlas.maxSlowdown.mean());
    doc.setAt(series, label, "tcm_ws", tcm.weightedSpeedup.mean());
    doc.setAt(series, label, "tcm_ms", tcm.maxSlowdown.mean());
    doc.setAt(series, label, "atlas_ws", atlas.weightedSpeedup.mean());
    doc.setAt(series, label, "atlas_ms", atlas.maxSlowdown.mean());
}

} // namespace

int
main(int argc, char **argv)
{
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader(
        "Table 8: TCM vs ATLAS across system configurations "
        "(dWS/dMS = TCM relative to ATLAS)",
        scale);
    sim::results::ResultsDoc doc("table8", scale);

    std::printf("-- number of memory controllers (24 cores) --\n");
    for (int channels : {1, 2, 4, 8, 16}) {
        sim::SystemConfig config;
        config.numChannels = channels;
        compare(config, scale, std::to_string(channels) + " controller(s)",
                "controllers", doc);
    }

    std::printf("\n-- number of cores (4 controllers) --\n");
    for (int cores : {4, 8, 16, 24, 32}) {
        sim::SystemConfig config;
        config.numCores = cores;
        compare(config, scale, std::to_string(cores) + " cores", "cores",
                doc);
    }

    std::printf("\n-- last-level cache size (MPKI scaling) --\n");
    struct CachePoint
    {
        const char *label;
        double scale;
    };
    for (CachePoint p : {CachePoint{"512KB (baseline)", 1.0},
                         CachePoint{"1MB", 0.6}, CachePoint{"2MB", 0.36}}) {
        sim::SystemConfig config;
        config.mpkiScale = p.scale;
        compare(config, scale, p.label, "llc", doc);
    }

    std::printf("\npaper (Table 8): TCM dWS +0..5%%, dMS -28..-53%% across "
                "all configurations.\n");
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
