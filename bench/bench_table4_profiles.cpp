/**
 * @file
 * Reproduces Table 4: benchmark characteristics. Each synthetic clone
 * runs alone on the baseline system; its measured MPKI, RBL and BLP are
 * compared against the paper's targets. This is the calibration evidence
 * that the trace generator substitution preserves scheduler-visible
 * behaviour.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"

int
main()
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader(
        "Table 4: synthetic clone calibration (measured alone vs paper)",
        scale);

    std::printf("%-12s | %8s %8s %6s | %6s %6s %6s | %6s %6s %6s\n",
                "benchmark", "MPKI", "meas", "err%", "RBL", "meas", "err",
                "BLP", "meas", "err");

    double worstMpkiErr = 0.0, worstRblErr = 0.0, worstBlpErr = 0.0;
    for (const auto &profile : workload::benchmarkTable()) {
        sim::Simulator sim(config, {profile},
                           sched::SchedulerSpec::frfcfs(), 99,
                           /*enableProbe=*/true);
        sim.run(scale.warmup, scale.measure * 2);
        auto b = sim.behavior(0);

        double mpkiErr = profile.mpki > 0.05
                             ? 100.0 * (b.mpki - profile.mpki) / profile.mpki
                             : 0.0;
        double rblErr = b.rbl - profile.rbl;
        double blpErr = b.blp - profile.blp;
        worstMpkiErr = std::max(worstMpkiErr, std::fabs(mpkiErr));
        worstRblErr = std::max(worstRblErr, std::fabs(rblErr));
        worstBlpErr = std::max(worstBlpErr, std::fabs(blpErr));

        std::printf("%-12s | %8.2f %8.2f %5.1f%% | %6.3f %6.3f %+6.3f | "
                    "%6.2f %6.2f %+6.2f\n",
                    profile.name.c_str(), profile.mpki, b.mpki, mpkiErr,
                    profile.rbl, b.rbl, rblErr, profile.blp, b.blp,
                    blpErr);
    }
    std::printf("\nworst absolute errors: MPKI %.1f%%, RBL %.3f, BLP "
                "%.2f banks\n",
                worstMpkiErr, worstRblErr, worstBlpErr);
    return 0;
}
