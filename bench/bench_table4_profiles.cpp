/**
 * @file
 * Reproduces Table 4: benchmark characteristics. Each synthetic clone
 * runs alone on the baseline system; its measured MPKI, RBL and BLP are
 * compared against the paper's targets. This is the calibration evidence
 * that the trace generator substitution preserves scheduler-visible
 * behaviour.
 *
 * The measurement loop lives in sim::paper::table4 so tools/claims
 * gates on the same calibration errors this bench prints.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/paper_experiments.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader(
        "Table 4: synthetic clone calibration (measured alone vs paper)",
        scale);

    sim::results::ResultsDoc doc = sim::paper::table4(config, scale);

    std::printf("%-12s | %8s %8s %6s | %6s %6s %6s | %6s %6s %6s\n",
                "benchmark", "MPKI", "meas", "err%", "RBL", "meas", "err",
                "BLP", "meas", "err");
    for (const sim::results::Row &row : doc.rows) {
        if (row.series == "worst")
            continue;
        auto v = [&row](const char *metric) {
            const double *p = row.find(metric);
            return p ? *p : 0.0;
        };
        std::printf("%-12s | %8.2f %8.2f %5.1f%% | %6.3f %6.3f %+6.3f | "
                    "%6.2f %6.2f %+6.2f\n",
                    row.series.c_str(), v("mpki_target"), v("mpki"),
                    v("mpki_err_pct"), v("rbl_target"), v("rbl"),
                    v("rbl_err"), v("blp_target"), v("blp"), v("blp_err"));
    }

    const sim::results::Row &worst = doc.row("worst");
    std::printf("\nworst absolute errors: MPKI %.1f%%, RBL %.3f, BLP "
                "%.2f banks\n",
                *worst.find("mpki_err_pct"), *worst.find("rbl_err"),
                *worst.find("blp_err"));

    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
