/**
 * @file
 * Ablations of the substrate design choices DESIGN.md section 5 calls
 * out — not paper experiments, but evidence for why the substrate is
 * configured the way it is:
 *
 *   1. row-hit-first (FR-FCFS vs pure FCFS): the value of open-row
 *      scheduling the whole paper builds on;
 *   2. refresh modelling on/off: its throughput cost;
 *   3. write-drain watermarks: batching writes vs interleaving them;
 *   4. ATLAS aging threshold: the starvation valve that separates
 *      "strict ranking" from "strict ranking with a safety net".
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

sim::AggregateResult
evalConfig(const sim::SystemConfig &config, const sched::SchedulerSpec &spec,
           const sim::ExperimentScale &scale, std::uint64_t seed)
{
    auto workloads = workload::workloadSet(scale.workloadsPerCategory,
                                           config.numCores, 0.5, 9900);
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    return sim::evaluateSet(config, workloads, spec, scale, cache, seed);
}

void
row(sim::results::ResultsDoc &doc, const char *series, const char *label,
    const sim::AggregateResult &r)
{
    std::printf("%-34s WS=%6.2f  MS=%6.2f\n", label,
                r.weightedSpeedup.mean(), r.maxSlowdown.mean());
    doc.setAt(series, label, "ws", r.weightedSpeedup.mean());
    doc.setAt(series, label, "ms", r.maxSlowdown.mean());
}

/** Blocks that compare specs under ONE config share a cache and run as
 *  one parallel matrix; config-varying blocks use evalConfig per row. */
void
rows(sim::results::ResultsDoc &doc, const char *series,
     const sim::SystemConfig &config,
     const std::vector<std::pair<const char *, sched::SchedulerSpec>> &specs,
     const sim::ExperimentScale &scale, std::uint64_t seed)
{
    auto workloads = workload::workloadSet(scale.workloadsPerCategory,
                                           config.numCores, 0.5, 9900);
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    std::vector<sched::SchedulerSpec> list;
    for (const auto &[label, spec] : specs)
        list.push_back(spec);
    auto aggs =
        sim::evaluateMatrix(config, workloads, list, scale, cache, seed);
    for (std::size_t i = 0; i < specs.size(); ++i)
        row(doc, series, specs[i].first, aggs[i]);
}

} // namespace

int
main(int argc, char **argv)
{
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Substrate ablations (50%-intensity workloads)",
                       scale);
    sim::results::ResultsDoc doc("ablations", scale);

    {
        std::printf("-- row-hit-first scheduling --\n");
        sim::SystemConfig config;
        rows(doc, "row-hit-first", config,
             {{"FR-FCFS (row-hit first)", sched::SchedulerSpec::frfcfs()},
              {"FCFS (arrival order only)", sched::SchedulerSpec::fcfs()}},
             scale, 1);
    }

    {
        std::printf("\n-- refresh modelling --\n");
        sim::SystemConfig config;
        row(doc, "refresh", "refresh on (tREFI/tRFC)",
            evalConfig(config, sched::SchedulerSpec::tcmSpec(), scale, 2));
        config.timing.refreshEnabled = false;
        row(doc, "refresh", "refresh off",
            evalConfig(config, sched::SchedulerSpec::tcmSpec(), scale, 2));
    }

    {
        std::printf("\n-- write-drain high watermark (cap 64) --\n");
        for (int hi : {16, 48, 62}) {
            sim::SystemConfig config;
            config.controller.writeDrain.highWatermark = hi;
            config.controller.writeDrain.lowWatermark = hi / 3;
            char label[48];
            std::snprintf(label, sizeof(label), "drain at %d", hi);
            row(doc, "write-drain", label,
                evalConfig(config, sched::SchedulerSpec::tcmSpec(), scale,
                           3));
        }
    }

    {
        std::printf("\n-- page policy (TCM) --\n");
        sim::SystemConfig config;
        row(doc, "page-policy", "open page (baseline)",
            evalConfig(config, sched::SchedulerSpec::tcmSpec(), scale, 8));
        config.controller.pagePolicy = mem::PagePolicy::Closed;
        row(doc, "page-policy", "smart closed page",
            evalConfig(config, sched::SchedulerSpec::tcmSpec(), scale, 8));
    }

    {
        std::printf("\n-- DRAM generation (TCM) --\n");
        sim::SystemConfig config;
        row(doc, "dram-generation", "DDR2-800 (Table 3)",
            evalConfig(config, sched::SchedulerSpec::tcmSpec(), scale, 9));
        config.timing = dram::TimingParams::ddr3_1333();
        row(doc, "dram-generation", "DDR3-1333",
            evalConfig(config, sched::SchedulerSpec::tcmSpec(), scale, 9));
    }

    {
        std::printf("\n-- rank organization, 8 banks/channel (TCM) --\n");
        sim::SystemConfig config;
        config.timing.banksPerChannel = 8;
        config.timing.ranksPerChannel = 1;
        row(doc, "rank-organization", "1 rank x 8 banks",
            evalConfig(config, sched::SchedulerSpec::tcmSpec(), scale, 10));
        config.timing.ranksPerChannel = 2;
        row(doc, "rank-organization", "2 ranks x 4 banks",
            evalConfig(config, sched::SchedulerSpec::tcmSpec(), scale, 10));
    }

    {
        std::printf("\n-- extra baseline: fair queueing (FQM) --\n");
        sim::SystemConfig config;
        rows(doc, "fqm", config,
             {{"FQM (bandwidth fairness)", sched::SchedulerSpec::fqmSpec()},
              {"TCM", sched::SchedulerSpec::tcmSpec()}},
             scale, 5);
    }

    {
        std::printf("\n-- ATLAS aging threshold (starvation valve) --\n");
        sim::SystemConfig config;
        std::vector<std::pair<const char *, sched::SchedulerSpec>> points;
        std::vector<std::string> labels;
        labels.reserve(3); // c_str() pointers below must stay valid
        for (Cycle aging : {Cycle{25'000}, Cycle{100'000}, kCycleNever}) {
            sched::SchedulerSpec spec = sched::SchedulerSpec::atlasSpec();
            spec.atlas.agingThreshold = aging;
            char label[48];
            if (aging == kCycleNever)
                std::snprintf(label, sizeof(label), "ATLAS aging=never");
            else
                std::snprintf(label, sizeof(label), "ATLAS aging=%lluK",
                              static_cast<unsigned long long>(aging / 1000));
            labels.emplace_back(label);
            points.push_back({labels.back().c_str(), spec});
        }
        rows(doc, "atlas-aging", config, points, scale, 4);
    }

    std::printf(
        "\nreadings:\n"
        " * FCFS ~ FR-FCFS here: a *work-conserving command-level* engine\n"
        "   already exploits open rows structurally (a conflict's PRE is\n"
        "   blocked by tRAS while row hits remain issuable), so the\n"
        "   explicit row-hit tier matters mainly for priority ties.\n"
        " * refresh costs a few percent of throughput, as expected.\n"
        " * later write drains batch better (higher WS).\n"
        " * smart-closed paging is WS-neutral under these mixes but\n"
        "   costs fairness (reactivations hit locality-poor threads).\n"
        " * DDR3-1333 (8 banks, faster burst) lifts WS and fairness:\n"
        "   more banks = less inter-thread bank contention.\n"
        " * splitting 8 banks across 2 ranks costs a little bandwidth\n"
        "   (tRTRS turnarounds) for the same contention behaviour.\n"
        " * FQM equalizes *bandwidth*, not *slowdown*: high WS, but the\n"
        "   threads that need more service for equal progress suffer.\n"
        " * ATLAS's unfairness is a bandwidth-share problem, not a\n"
        "   request-age problem: tightening the aging valve bounds each\n"
        "   request's wait but barely moves maximum slowdown.\n");
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
