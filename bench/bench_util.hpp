/**
 * @file
 * Shared formatting and setup helpers for the reproduction benches.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace tcm::bench {

/** Print the standard bench banner with the experiment scale in use. */
void printHeader(const std::string &title, const sim::ExperimentScale &scale);

/** Print one "name: WS=.. MS=.. HS=.." row. */
void printAggregate(const sim::AggregateResult &r);

/** Markdown-ish table row helpers. */
std::string fmt(double v, int precision = 2);

} // namespace tcm::bench
