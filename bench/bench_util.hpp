/**
 * @file
 * Shared formatting and setup helpers for the reproduction benches,
 * plus structured-results emission: every bench fills a
 * sim::results::ResultsDoc alongside its text tables and hands it to
 * writeJsonIfRequested(), so a run can be diffed and claim-checked by
 * tools/claims instead of eyeballed.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/results.hpp"

namespace tcm::bench {

/** Print the standard bench banner with the experiment scale in use. */
void printHeader(const std::string &title, const sim::ExperimentScale &scale);

/** Print one "name: WS=.. MS=.. HS=.." row. */
void printAggregate(const sim::AggregateResult &r);

/** Markdown-ish table row helpers (locale-independent). */
std::string fmt(double v, int precision = 2);

/**
 * Where this bench run's structured results should go: the value of a
 * `--json PATH` argument if present, else `$TCMSIM_BENCH_JSON/BENCH_
 * <bench>.json` (the env var names a directory, created on demand so
 * one exported variable collects a whole bench sweep), else "" (no
 * JSON requested).
 */
std::string jsonOutputPath(const std::string &bench, int argc,
                           char **argv);

/**
 * Serialize @p doc to jsonOutputPath(doc.bench, ...) when the run asked
 * for it; a no-op otherwise. Prints a one-line "results json: PATH"
 * note to stderr (stdout stays byte-identical with and without JSON
 * emission). Exits nonzero on I/O failure.
 */
void writeJsonIfRequested(const sim::results::ResultsDoc &doc, int argc,
                          char **argv);

} // namespace tcm::bench
