/**
 * @file
 * Reproduces Figure 6: the performance-fairness trade-off as each
 * algorithm's most salient knob sweeps.
 *
 *   TCM:    ClusterThresh 2/24 .. 6/24
 *   ATLAS:  QuantumLength across four decades
 *   PAR-BS: BatchCap 1 .. 10
 *   STFM:   FairnessThreshold 1 .. 5
 *   FR-FCFS: no parameters (single point)
 *
 * Paper's reading: only TCM exposes a smooth continuum trading maximum
 * slowdown against weighted speedup; ATLAS stays biased to throughput
 * and PAR-BS to fairness regardless of their knobs.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

void
sweepPoint(const sim::SystemConfig &config,
           const std::vector<std::vector<workload::ThreadProfile>> &wl,
           const sim::ExperimentScale &scale, sim::AloneIpcCache &cache,
           const sched::SchedulerSpec &spec, const std::string &label)
{
    sim::AggregateResult agg =
        sim::evaluateSet(config, wl, spec, scale, cache, 9);
    std::printf("%-10s %-16s WS=%6.2f  MS=%6.2f  HS=%6.3f\n", spec.name(),
                label.c_str(), agg.weightedSpeedup.mean(),
                agg.maxSlowdown.mean(), agg.harmonicSpeedup.mean());
}

} // namespace

int
main()
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader(
        "Figure 6: performance-fairness trade-off (parameter sweeps, "
        "50%-intensity workloads)",
        scale);

    auto wl = workload::workloadSet(scale.workloadsPerCategory,
                                    config.numCores, 0.5, 4000);
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);

    // TCM: ClusterThresh sweep (the paper's knob).
    for (int num = 2; num <= 6; ++num) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.tcm.clusterThreshNumerator = num;
        sweepPoint(config, wl, scale, cache, spec,
                   "ClusterThresh=" + std::to_string(num) + "/24");
    }
    std::printf("\n");

    // ATLAS: QuantumLength sweep (fractions of the run).
    for (double frac : {0.01, 0.05, 0.1, 0.5}) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::atlasSpec();
        spec.atlas.quantum =
            std::max<Cycle>(10'000, static_cast<Cycle>(frac * scale.measure));
        sweepPoint(config, wl, scale, cache, spec,
                   "Quantum=" + std::to_string(spec.atlas.quantum));
    }
    std::printf("\n");

    // PAR-BS: BatchCap sweep.
    for (int cap : {1, 2, 5, 10}) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::parbsSpec();
        spec.parbs.batchCap = cap;
        sweepPoint(config, wl, scale, cache, spec,
                   "BatchCap=" + std::to_string(cap));
    }
    std::printf("\n");

    // STFM: FairnessThreshold sweep.
    for (double thresh : {1.0, 1.1, 2.0, 5.0}) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::stfmSpec();
        spec.stfm.fairnessThreshold = thresh;
        char label[32];
        std::snprintf(label, sizeof(label), "Thresh=%.1f", thresh);
        sweepPoint(config, wl, scale, cache, spec, label);
    }
    std::printf("\n");

    sweepPoint(config, wl, scale, cache, sched::SchedulerSpec::frfcfs(),
               "(no knob)");

    std::printf("\npaper's reading: TCM's ClusterThresh traces a smooth WS/"
                "MS frontier;\nATLAS's MS barely moves with its quantum, "
                "PAR-BS's WS barely moves with its cap.\n");
    return 0;
}
