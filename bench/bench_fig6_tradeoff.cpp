/**
 * @file
 * Reproduces Figure 6: the performance-fairness trade-off as each
 * algorithm's most salient knob sweeps.
 *
 *   TCM:    ClusterThresh 2/24 .. 6/24
 *   ATLAS:  QuantumLength across four decades
 *   PAR-BS: BatchCap 1 .. 10
 *   STFM:   FairnessThreshold 1 .. 5
 *   FR-FCFS: no parameters (single point)
 *
 * Paper's reading: only TCM exposes a smooth continuum trading maximum
 * slowdown against weighted speedup; ATLAS stays biased to throughput
 * and PAR-BS to fairness regardless of their knobs.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

/** One point of the sweep: a spec variant, its label, and whether a
 *  blank separator line follows it (end of that algorithm's sweep). */
struct SweepPoint
{
    sched::SchedulerSpec spec;
    std::string label;
    bool groupEnd = false;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader(
        "Figure 6: performance-fairness trade-off (parameter sweeps, "
        "50%-intensity workloads)",
        scale);

    auto wl = workload::workloadSet(scale.workloadsPerCategory,
                                    config.numCores, 0.5, 4000);
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);

    // Collect every sweep point up front so the whole figure runs as a
    // single (point x workload) parallel matrix.
    std::vector<SweepPoint> points;

    // TCM: ClusterThresh sweep (the paper's knob).
    for (int num = 2; num <= 6; ++num) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.tcm.clusterThreshNumerator = num;
        points.push_back({spec,
                          "ClusterThresh=" + std::to_string(num) + "/24",
                          num == 6});
    }

    // ATLAS: QuantumLength sweep (fractions of the run).
    for (double frac : {0.01, 0.05, 0.1, 0.5}) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::atlasSpec();
        spec.atlas.quantum =
            std::max<Cycle>(10'000, static_cast<Cycle>(frac * scale.measure));
        points.push_back({spec,
                          "Quantum=" + std::to_string(spec.atlas.quantum),
                          frac == 0.5});
    }

    // PAR-BS: BatchCap sweep.
    for (int cap : {1, 2, 5, 10}) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::parbsSpec();
        spec.parbs.batchCap = cap;
        points.push_back(
            {spec, "BatchCap=" + std::to_string(cap), cap == 10});
    }

    // STFM: FairnessThreshold sweep.
    for (double thresh : {1.0, 1.1, 2.0, 5.0}) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::stfmSpec();
        spec.stfm.fairnessThreshold = thresh;
        char label[32];
        std::snprintf(label, sizeof(label), "Thresh=%.1f", thresh);
        points.push_back({spec, label, thresh == 5.0});
    }

    points.push_back({sched::SchedulerSpec::frfcfs(), "(no knob)", false});

    std::vector<sched::SchedulerSpec> specs;
    specs.reserve(points.size());
    for (const SweepPoint &p : points)
        specs.push_back(p.spec);
    auto aggs = sim::evaluateMatrix(config, wl, specs, scale, cache, 9);

    sim::results::ResultsDoc doc("fig6", scale);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const sim::AggregateResult &agg = aggs[i];
        std::printf("%-10s %-16s WS=%6.2f  MS=%6.2f  HS=%6.3f\n",
                    agg.scheduler.c_str(), points[i].label.c_str(),
                    agg.weightedSpeedup.mean(), agg.maxSlowdown.mean(),
                    agg.harmonicSpeedup.mean());
        if (points[i].groupEnd)
            std::printf("\n");
        doc.setAt(agg.scheduler, points[i].label, "ws",
                  agg.weightedSpeedup.mean());
        doc.setAt(agg.scheduler, points[i].label, "ms",
                  agg.maxSlowdown.mean());
        doc.setAt(agg.scheduler, points[i].label, "hs",
                  agg.harmonicSpeedup.mean());
    }

    std::printf("\npaper's reading: TCM's ClusterThresh traces a smooth WS/"
                "MS frontier;\nATLAS's MS barely moves with its quantum, "
                "PAR-BS's WS barely moves with its cap.\n");
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
