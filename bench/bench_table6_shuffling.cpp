/**
 * @file
 * Reproduces Table 6: fairness of the four shuffling algorithms —
 * round-robin, random, insertion, and TCM's dynamic switch — as the
 * average and variance of maximum slowdown across workloads.
 *
 * Paper: round-robin is worst (5.58 avg); random (5.13) and insertion
 * (4.96) are better but high-variance; dynamic TCM is best on both the
 * average (4.84) and the variance (0.85 vs ~1.5).
 *
 * As an ablation this bench also reports the literal-pseudocode reading
 * of insertion shuffle (see TcmParams::nicestAtTop).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "common/running_stat.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

struct Row
{
    const char *label;
    sched::ShuffleMode mode;
    bool nicestAtTop;
};

} // namespace

int
main()
{
    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Table 6: maximum slowdown by shuffling algorithm",
                       scale);

    // Mixed-heterogeneity population: half heterogeneous (50 %), half
    // homogeneous-leaning (100 % intensive), which is what separates the
    // dynamic policy from pure insertion/random.
    std::vector<std::vector<workload::ThreadProfile>> workloads;
    auto a = workload::workloadSet((scale.workloadsPerCategory + 1) / 2,
                                   config.numCores, 0.5, 6000);
    auto b = workload::workloadSet((scale.workloadsPerCategory + 1) / 2,
                                   config.numCores, 1.0, 6500);
    workloads.insert(workloads.end(), a.begin(), a.end());
    workloads.insert(workloads.end(), b.begin(), b.end());

    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);

    const Row rows[] = {
        {"round-robin", sched::ShuffleMode::RoundRobin, true},
        {"random", sched::ShuffleMode::Random, true},
        {"insertion", sched::ShuffleMode::Insertion, true},
        {"insertion(literal)", sched::ShuffleMode::Insertion, false},
        {"TCM (dynamic)", sched::ShuffleMode::Dynamic, true},
        {"TCM (dyn,literal)", sched::ShuffleMode::Dynamic, false},
    };

    std::vector<sched::SchedulerSpec> specs;
    for (const Row &row : rows) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.tcm.shuffleMode = row.mode;
        spec.tcm.nicestAtTop = row.nicestAtTop;
        specs.push_back(spec);
    }
    auto aggs =
        sim::evaluateMatrix(config, workloads, specs, scale, cache, 13);

    std::printf("%-20s %12s %12s\n", "shuffling algorithm", "MS average",
                "MS variance");
    for (std::size_t i = 0; i < specs.size(); ++i)
        std::printf("%-20s %12.2f %12.2f\n", rows[i].label,
                    aggs[i].maxSlowdown.mean(),
                    aggs[i].maxSlowdown.variance());
    std::printf("\npaper (Table 6): round-robin 5.58/1.61, random "
                "5.13/1.53, insertion 4.96/1.45,\nTCM dynamic 4.84/0.85 — "
                "dynamic switching wins on both average and variance.\n");
    return 0;
}
