/**
 * @file
 * Reproduces Table 6: fairness of the four shuffling algorithms —
 * round-robin, random, insertion, and TCM's dynamic switch — as the
 * average and variance of maximum slowdown across workloads.
 *
 * Paper: round-robin is worst (5.58 avg); random (5.13) and insertion
 * (4.96) are better but high-variance; dynamic TCM is best on both the
 * average (4.84) and the variance (0.85 vs ~1.5).
 *
 * As an ablation this bench also reports the literal-pseudocode reading
 * of insertion shuffle (see TcmParams::nicestAtTop). The grid lives in
 * sim::paper::table6 so tools/claims checks the same numbers.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/paper_experiments.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Table 6: maximum slowdown by shuffling algorithm",
                       scale);

    sim::results::ResultsDoc doc = sim::paper::table6(config, scale);

    std::printf("%-20s %12s %12s\n", "shuffling algorithm", "MS average",
                "MS variance");
    for (const sim::results::Row &row : doc.rows)
        std::printf("%-20s %12.2f %12.2f\n", row.series.c_str(),
                    *row.find("ms_avg"), *row.find("ms_var"));
    std::printf("\npaper (Table 6): round-robin 5.58/1.61, random "
                "5.13/1.53, insertion 4.96/1.45,\nTCM dynamic 4.84/0.85 — "
                "dynamic switching wins on both average and variance.\n");

    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
