/**
 * @file
 * Scheduler zoo — the headline baselines (FR-FCFS, ATLAS, TCM) next to
 * the championship-style ports (BLISS, GHT, close-page FR-FCFS) and the
 * Tournament meta-scheduler, all on the exact Figure 4 workload
 * population so the rows are directly comparable with bench_fig4.
 *
 * Expected shape: BLISS lands near TCM on fairness at slightly lower
 * throughput; GHT trades fairness for locality-driven throughput;
 * FRFCFS-CP tracks FR-FCFS; Tournament stays within a few percent of
 * its best candidate on weighted speedup.
 *
 * The grid itself lives in sim::paper::zoo so tools/claims checks the
 * same numbers this bench prints.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/paper_experiments.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Scheduler zoo: BLISS / GHT / FRFCFS-CP / Tournament",
                       scale);
    std::printf("workloads: %d (equal thirds at 50/75/100%% intensity)\n\n",
                3 * scale.workloadsPerCategory);

    sim::results::ResultsDoc doc = sim::paper::zoo(config, scale);
    auto val = [&doc](const char *sched, const char *metric) {
        const double *v = doc.find(sched, "", metric);
        return v ? *v : 0.0;
    };

    std::printf("%-11s %18s %15s %17s\n", "scheduler", "weighted speedup",
                "max slowdown", "harmonic speedup");
    for (const sim::results::Row &row : doc.rows)
        std::printf("%-11s %18.2f %15.2f %17.3f\n", row.series.c_str(),
                    val(row.series.c_str(), "ws"),
                    val(row.series.c_str(), "ms"),
                    val(row.series.c_str(), "hs"));

    std::printf("\nBLISS vs TCM:      WS %+6.1f%%,  MS %+6.1f%%\n",
                100.0 * (val("BLISS", "ws") / val("TCM", "ws") - 1.0),
                100.0 * (val("BLISS", "ms") / val("TCM", "ms") - 1.0));
    std::printf("GHT vs TCM:        WS %+6.1f%%,  MS %+6.1f%%\n",
                100.0 * (val("GHT", "ws") / val("TCM", "ws") - 1.0),
                100.0 * (val("GHT", "ms") / val("TCM", "ms") - 1.0));
    std::printf("Tournament vs TCM: WS %+6.1f%%,  MS %+6.1f%%\n",
                100.0 * (val("Tournament", "ws") / val("TCM", "ws") - 1.0),
                100.0 * (val("Tournament", "ms") / val("TCM", "ms") - 1.0));
    std::printf("FRFCFS-CP vs FR-FCFS: WS %+6.1f%%,  MS %+6.1f%%\n",
                100.0 * (val("FRFCFS-CP", "ws") / val("FR-FCFS", "ws") - 1.0),
                100.0 * (val("FRFCFS-CP", "ms") / val("FR-FCFS", "ms") - 1.0));

    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
