/**
 * @file
 * Reproduces Figure 3: the permutation sequences of round-robin vs
 * insertion shuffle for four threads. This is a visualization, not a
 * measurement: it prints each ShuffleInterval's priority order with
 * thread 0 the least nice and thread 3 the nicest, plus the fraction of
 * time each thread spends at each priority level over one full period.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "sched/tcm/shuffle.hpp"

namespace {

using namespace tcm;
using namespace tcm::sched;

void
show(const char *title, ShuffleMode mode, bool nicestAtTop,
     const char *series, sim::results::ResultsDoc &doc)
{
    constexpr int kThreads = 4;
    constexpr int kSteps = 8; // one full insertion period (2N)

    // Niceness 0..3 (thread 3 nicest); the nicest-at-top variant runs the
    // shuffle on negated niceness and reads ranks from the front, exactly
    // as the Tcm policy does.
    std::vector<double> niceness = {0, 1, 2, 3};
    if (nicestAtTop)
        for (double &v : niceness)
            v = -v;
    std::vector<int> weights(kThreads, 1);
    Pcg32 rng(1);
    ShuffleState state({0, 1, 2, 3}, niceness, weights, mode, &rng);

    std::printf("\n%s\n", title);
    std::printf("(columns = ShuffleIntervals; rows = priority positions, "
                "top row = highest)\n");
    std::vector<std::vector<ThreadId>> history;
    history.push_back(state.order());
    for (int s = 1; s < kSteps; ++s) {
        state.step();
        history.push_back(state.order());
    }

    std::vector<std::vector<int>> timeAt(kThreads,
                                         std::vector<int>(kThreads, 0));
    for (int pos = kThreads - 1; pos >= 0; --pos) {
        std::printf("  P%d |", kThreads - pos);
        for (const auto &order : history) {
            int idx = nicestAtTop ? kThreads - 1 - pos : pos;
            std::printf(" T%d", order[idx]);
            ++timeAt[order[idx]][kThreads - 1 - pos];
        }
        std::printf("\n");
    }
    std::printf("  time at top priority: ");
    for (ThreadId t = 0; t < kThreads; ++t) {
        std::printf("T%d:%d/8  ", t, timeAt[t][0]);
        doc.set(series, "t" + std::to_string(t) + "_top_frac",
                static_cast<double>(timeAt[t][0]) / kSteps);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    tcm::sim::results::ResultsDoc doc;
    doc.bench = "fig3"; // a visualization: no experiment scale applies

    std::printf("Figure 3: visualizing shuffling algorithms "
                "(T0 least nice ... T3 nicest)\n");
    show("(a) Round-robin shuffle", tcm::sched::ShuffleMode::RoundRobin,
         false, "round-robin", doc);
    show("(b) Insertion shuffle (nicest-at-top resolution, TCM default)",
         tcm::sched::ShuffleMode::Insertion, true, "insertion", doc);
    show("(b') Insertion shuffle (literal Algorithm 2 reading)",
         tcm::sched::ShuffleMode::Insertion, false, "insertion(literal)",
         doc);
    std::printf("\nNote: the paper's Algorithm 2 pseudocode is ambiguous "
                "about rank direction;\nthe default resolves it so nicer "
                "threads are prioritized more often\n(Section 1, "
                "contributions). bench_table6_shuffling compares both.\n");
    tcm::bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
