/**
 * @file
 * Reproduces Figure 4 — the paper's headline result: maximum slowdown vs
 * weighted speedup of FR-FCFS, STFM, PAR-BS, ATLAS and TCM averaged over
 * random workloads at 50/75/100 % memory intensity.
 *
 * Expected shape: TCM at the best (lower-right) corner — higher weighted
 * speedup than every prior algorithm and lower maximum slowdown; ATLAS
 * close on throughput but far worse on fairness; PAR-BS close on
 * fairness but worse on throughput.
 *
 * The grid itself lives in sim::paper::fig4 so tools/claims checks the
 * same numbers this bench prints.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/paper_experiments.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Figure 4: TCM vs prior schedulers (headline)",
                       scale);
    std::printf("workloads: %d (equal thirds at 50/75/100%% intensity)\n\n",
                3 * scale.workloadsPerCategory);

    sim::results::ResultsDoc doc = sim::paper::fig4(config, scale);
    auto val = [&doc](const char *sched, const char *metric) {
        const double *v = doc.find(sched, "", metric);
        return v ? *v : 0.0;
    };

    std::printf("%-10s %18s %15s %17s\n", "scheduler", "weighted speedup",
                "max slowdown", "harmonic speedup");
    for (const sim::results::Row &row : doc.rows)
        std::printf("%-10s %18.2f %15.2f %17.3f\n", row.series.c_str(),
                    val(row.series.c_str(), "ws"),
                    val(row.series.c_str(), "ms"),
                    val(row.series.c_str(), "hs"));

    std::printf("\nTCM vs ATLAS:  WS %+6.1f%% (paper +4.6%%),  MS %+6.1f%% "
                "(paper -38.6%%)\n",
                100.0 * (val("TCM", "ws") / val("ATLAS", "ws") - 1.0),
                100.0 * (val("TCM", "ms") / val("ATLAS", "ms") - 1.0));
    std::printf("TCM vs PAR-BS: WS %+6.1f%% (paper +7.6%%),  MS %+6.1f%% "
                "(paper -4.6%%)\n",
                100.0 * (val("TCM", "ws") / val("PAR-BS", "ws") - 1.0),
                100.0 * (val("TCM", "ms") / val("PAR-BS", "ms") - 1.0));

    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
