/**
 * @file
 * Reproduces Figure 4 — the paper's headline result: maximum slowdown vs
 * weighted speedup of FR-FCFS, STFM, PAR-BS, ATLAS and TCM averaged over
 * random workloads at 50/75/100 % memory intensity.
 *
 * Expected shape: TCM at the best (lower-right) corner — higher weighted
 * speedup than every prior algorithm and lower maximum slowdown; ATLAS
 * close on throughput but far worse on fairness; PAR-BS close on
 * fairness but worse on throughput.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

int
main()
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Figure 4: TCM vs prior schedulers (headline)",
                       scale);

    std::vector<std::vector<workload::ThreadProfile>> workloads;
    for (double intensity : {0.5, 0.75, 1.0}) {
        auto set = workload::workloadSet(scale.workloadsPerCategory,
                                         config.numCores, intensity,
                                         2000 + static_cast<int>(
                                                    intensity * 100));
        workloads.insert(workloads.end(), set.begin(), set.end());
    }
    std::printf("workloads: %zu (equal thirds at 50/75/100%% intensity)\n\n",
                workloads.size());

    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    std::printf("%-10s %18s %15s %17s\n", "scheduler", "weighted speedup",
                "max slowdown", "harmonic speedup");

    double atlasWs = 0, atlasMs = 0, parbsWs = 0, parbsMs = 0, tcmWs = 0,
           tcmMs = 0;
    for (const auto &agg : sim::evaluateMatrix(
             config, workloads, sim::paperSchedulers(), scale, cache, 1)) {
        std::printf("%-10s %18.2f %15.2f %17.3f\n", agg.scheduler.c_str(),
                    agg.weightedSpeedup.mean(), agg.maxSlowdown.mean(),
                    agg.harmonicSpeedup.mean());
        if (agg.scheduler == "ATLAS") {
            atlasWs = agg.weightedSpeedup.mean();
            atlasMs = agg.maxSlowdown.mean();
        } else if (agg.scheduler == "PAR-BS") {
            parbsWs = agg.weightedSpeedup.mean();
            parbsMs = agg.maxSlowdown.mean();
        } else if (agg.scheduler == "TCM") {
            tcmWs = agg.weightedSpeedup.mean();
            tcmMs = agg.maxSlowdown.mean();
        }
    }

    std::printf("\nTCM vs ATLAS:  WS %+6.1f%% (paper +4.6%%),  MS %+6.1f%% "
                "(paper -38.6%%)\n",
                100.0 * (tcmWs / atlasWs - 1.0),
                100.0 * (tcmMs / atlasMs - 1.0));
    std::printf("TCM vs PAR-BS: WS %+6.1f%% (paper +7.6%%),  MS %+6.1f%% "
                "(paper -4.6%%)\n",
                100.0 * (tcmWs / parbsWs - 1.0),
                100.0 * (tcmMs / parbsMs - 1.0));
    return 0;
}
