/**
 * @file
 * Reproduces Figure 8: OS-assigned thread weights under ATLAS vs TCM.
 *
 * Six benchmarks of rising memory intensity get weights assigned in the
 * worst possible way for throughput — the heaviest thread gets the
 * largest weight (mcf: 32, libquantum: 16, lbm: 8, GemsFDTD: 4, wrf: 2,
 * gcc: 1). ATLAS blindly honors weights and crushes the light threads;
 * TCM honors them within clusters, keeping the light threads fast while
 * still favoring the heavy weighted threads among themselves.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/benchmark_table.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    config.numCores = 6;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Figure 8: operating system thread weights", scale);

    struct Entry
    {
        const char *name;
        int weight;
    };
    const Entry entries[] = {{"gcc", 1},  {"wrf", 2},        {"GemsFDTD", 4},
                             {"lbm", 8},  {"libquantum", 16}, {"mcf", 32}};

    std::vector<workload::ThreadProfile> mix;
    for (const Entry &e : entries) {
        workload::ThreadProfile p = workload::benchmarkProfile(e.name);
        p.weight = e.weight;
        mix.push_back(p);
    }

    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    sim::RunResult atlas = sim::runWorkload(
        config, mix, sched::SchedulerSpec::atlasSpec(), scale, cache, 6);
    sim::RunResult tcm = sim::runWorkload(
        config, mix, sched::SchedulerSpec::tcmSpec(), scale, cache, 6);

    std::printf("per-thread speedup (IPC_shared / IPC_alone):\n");
    std::printf("%-12s %8s %10s %10s\n", "thread", "weight", "ATLAS",
                "TCM");
    for (std::size_t t = 0; t < mix.size(); ++t)
        std::printf("%-12s %8d %10.3f %10.3f\n", entries[t].name,
                    entries[t].weight, atlas.metrics.speedups[t],
                    tcm.metrics.speedups[t]);

    std::printf("\nsystem:      ATLAS WS=%.2f MS=%.2f | TCM WS=%.2f "
                "MS=%.2f\n",
                atlas.metrics.weightedSpeedup, atlas.metrics.maxSlowdown,
                tcm.metrics.weightedSpeedup, tcm.metrics.maxSlowdown);
    std::printf("TCM vs ATLAS: WS %+.1f%% (paper +82.8%%), MS %+.1f%% "
                "(paper -44.2%%)\n",
                100.0 * (tcm.metrics.weightedSpeedup /
                             atlas.metrics.weightedSpeedup -
                         1.0),
                100.0 * (tcm.metrics.maxSlowdown /
                             atlas.metrics.maxSlowdown -
                         1.0));
    std::printf("\npaper's reading: ATLAS lets high-weight heavy threads "
                "crush light ones;\nTCM accelerates light threads while "
                "still favoring weighted heavy threads.\n");

    sim::results::ResultsDoc doc("fig8", scale);
    for (std::size_t t = 0; t < mix.size(); ++t) {
        doc.set(entries[t].name, "weight", entries[t].weight);
        doc.set(entries[t].name, "speedup_atlas",
                atlas.metrics.speedups[t]);
        doc.set(entries[t].name, "speedup_tcm", tcm.metrics.speedups[t]);
    }
    doc.set("system", "atlas_ws", atlas.metrics.weightedSpeedup);
    doc.set("system", "atlas_ms", atlas.metrics.maxSlowdown);
    doc.set("system", "tcm_ws", tcm.metrics.weightedSpeedup);
    doc.set("system", "tcm_ms", tcm.metrics.maxSlowdown);
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
