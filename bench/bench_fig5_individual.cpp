/**
 * @file
 * Reproduces Figure 5: weighted speedup and maximum slowdown of all five
 * schedulers on the four representative Table 5 workloads (A-D), plus
 * the average over a set of 50%-intensity workloads.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Figure 5: individual workloads A-D (Table 5)",
                       scale);

    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    auto schedulers = sim::paperSchedulers();

    // The A-D grid as one parallel matrix; workload w of every scheduler
    // gets seed 30+'A'+w, the same per-workload seeds the serial loop
    // used ('A'..'D' are consecutive).
    std::vector<std::vector<workload::ThreadProfile>> abcd;
    for (char w : {'A', 'B', 'C', 'D'})
        abcd.push_back(workload::tableFiveWorkload(w));
    auto grid =
        sim::runMatrix(config, abcd, schedulers, scale, cache, 30 + 'A');
    std::map<std::string, std::map<char, sim::RunResult>> results;
    for (std::size_t s = 0; s < schedulers.size(); ++s)
        for (std::size_t w = 0; w < abcd.size(); ++w)
            results[schedulers[s].name()][static_cast<char>('A' + w)] =
                grid[s][w];

    // AVG column: mean over a set of random 50%-intensity workloads.
    auto avgSet = workload::workloadSet(scale.workloadsPerCategory,
                                        config.numCores, 0.5, 3500);
    auto avgAggs =
        sim::evaluateMatrix(config, avgSet, schedulers, scale, cache, 77);
    std::map<std::string, sim::AggregateResult> avg;
    for (const auto &agg : avgAggs)
        avg[agg.scheduler] = agg;

    std::printf("\n(a) Weighted speedup\n");
    std::printf("%-10s %8s %8s %8s %8s %8s\n", "scheduler", "A", "B", "C",
                "D", "AVG");
    for (const auto &spec : schedulers) {
        std::printf("%-10s", spec.name());
        for (char w : {'A', 'B', 'C', 'D'})
            std::printf(" %8.2f",
                        results[spec.name()][w].metrics.weightedSpeedup);
        std::printf(" %8.2f\n", avg[spec.name()].weightedSpeedup.mean());
    }

    std::printf("\n(b) Maximum slowdown\n");
    std::printf("%-10s %8s %8s %8s %8s %8s\n", "scheduler", "A", "B", "C",
                "D", "AVG");
    for (const auto &spec : schedulers) {
        std::printf("%-10s", spec.name());
        for (char w : {'A', 'B', 'C', 'D'})
            std::printf(" %8.2f",
                        results[spec.name()][w].metrics.maxSlowdown);
        std::printf(" %8.2f\n", avg[spec.name()].maxSlowdown.mean());
    }

    std::printf("\npaper's reading: TCM's improvements are consistent "
                "across individual workloads,\nnot an artifact of "
                "averaging.\n");

    sim::results::ResultsDoc doc("fig5", scale);
    for (const auto &spec : schedulers) {
        for (char w : {'A', 'B', 'C', 'D'}) {
            const sim::RunResult &r = results[spec.name()][w];
            doc.setAt(spec.name(), std::string(1, w), "ws",
                      r.metrics.weightedSpeedup);
            doc.setAt(spec.name(), std::string(1, w), "ms",
                      r.metrics.maxSlowdown);
        }
        doc.setAt(spec.name(), "avg", "ws",
                  avg[spec.name()].weightedSpeedup.mean());
        doc.setAt(spec.name(), "avg", "ms",
                  avg[spec.name()].maxSlowdown.mean());
    }
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
