/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: scheduler
 * decision cost, monitor hook cost, and end-to-end simulation speed.
 * These are engineering benchmarks (cycles/second of the simulator),
 * not paper results.
 */

#include <algorithm>
#include <thread>

#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "sched/tcm/monitor.hpp"
#include "sched/tcm/shuffle.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

void
BM_SimulatorCyclesPerSecond(benchmark::State &state)
{
    sim::SystemConfig config;
    config.numCores = static_cast<int>(state.range(0));
    auto mix = workload::randomMix(config.numCores, 0.5, 7);
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(1'000'000);
    sim::Simulator sim(config, mix, spec, 1);
    sim.step(10'000); // warm structures

    for (auto _ : state)
        sim.step(10'000);
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorCyclesPerSecond)->Arg(4)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void
BM_SchedulerComparisonLoop(benchmark::State &state)
{
    // End-to-end controller tick cost under saturation: FR-FCFS vs TCM.
    dram::TimingParams timing = dram::TimingParams::ddr2_800();
    sched::SchedulerSpec spec = state.range(0) == 0
                                    ? sched::SchedulerSpec::frfcfs()
                                    : sched::SchedulerSpec::tcmSpec();
    auto policy = sched::makeScheduler(spec, 1);
    policy->configure(24, 1, timing.banksPerChannel);
    std::vector<mem::CoreCounters> counters(24);
    policy->setCoreCounters(&counters);
    mem::MemoryController mc(0, timing, mem::ControllerParams{}, *policy);
    policy->attachQueue(0, &mc);

    Pcg32 rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i, ++now) {
            if (mc.canAcceptRead()) {
                mc.submitRead(static_cast<ThreadId>(rng.nextBelow(24)),
                              now, static_cast<BankId>(rng.nextBelow(4)),
                              static_cast<RowId>(rng.nextBelow(64)),
                              static_cast<ColId>(rng.nextBelow(64)), now);
            }
            policy->tick(now);
            mc.tick(now);
            mc.completions().clear();
        }
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerComparisonLoop)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void
BM_ProtocolCheckerOverhead(benchmark::State &state)
{
    // Full-system simulation speed with the protocol checker detached
    // (Arg 0) vs attached (Arg 1). With it off the observer list is
    // empty and the channel skips notification entirely, so Arg 0 must
    // match BM_SimulatorCyclesPerSecond.
    sim::SystemConfig config;
    config.numCores = 8;
    config.numChannels = 1;
    config.protocolCheck = state.range(0) != 0;
    auto mix = workload::randomMix(config.numCores, 1.0, 7);
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(1'000'000);
    sim::Simulator sim(config, mix, spec, 1);
    sim.step(10'000); // warm structures

    for (auto _ : state)
        sim.step(10'000);
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_ProtocolCheckerOverhead)->Arg(0)->Arg(1);

void
BM_TelemetryOverhead(benchmark::State &state)
{
    // Full-system simulation speed with telemetry detached (Arg 0) vs
    // fully attached (Arg 1: behaviour probe + interval sampler +
    // decision trace + lifecycle sink). Detached, the hot loop's only
    // telemetry artifact is one never-taken compare per cycle, so Arg 0
    // must stay within noise of BM_SimulatorCyclesPerSecond.
    const bool on = state.range(0) != 0;
    sim::SystemConfig config;
    config.numCores = 8;
    config.numChannels = 1;
    auto mix = workload::randomMix(config.numCores, 1.0, 7);
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(1'000'000);
    sim::Simulator sim(config, mix, spec, 1, on);
    telemetry::TelemetrySink sink;
    if (on)
        sim.attachTelemetry(&sink);
    sim.step(10'000); // warm structures

    for (auto _ : state)
        sim.step(10'000);
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1);

void
BM_ProfilerOverhead(benchmark::State &state)
{
    // Full-system simulation speed with the self-profiler detached
    // (Arg 0) vs attached (Arg 1). Detached, every instrumentation site
    // is a null-pointer branch with no clock read, so Arg 0 must stay
    // within noise of BM_SimulatorCyclesPerSecond; the Arg 1 delta is
    // the real cost of phase timers + horizon attribution + regime
    // counting.
    const bool on = state.range(0) != 0;
    sim::SystemConfig config;
    config.numCores = 8;
    config.numChannels = 1;
    auto mix = workload::randomMix(config.numCores, 1.0, 7);
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(1'000'000);
    sim::Simulator sim(config, mix, spec, 1);
    prof::Profiler profiler;
    if (on)
        sim.attachProfiler(&profiler);
    sim.step(10'000); // warm structures

    for (auto _ : state)
        sim.step(10'000);
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_ProfilerOverhead)->Arg(0)->Arg(1);

void
BM_MonitorHooks(benchmark::State &state)
{
    sched::ThreadBankMonitor mon;
    mon.configure(24, 16, 4);
    mem::Request req;
    req.thread = 3;
    req.channel = 1;
    req.bank = 2;
    Cycle now = 0;
    for (auto _ : state) {
        req.row = static_cast<RowId>(now % 999);
        mon.onArrival(req, now);
        mon.onDepart(req, now + 50);
        now += 60;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonitorHooks);

void
BM_InsertionShuffleStep(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    std::vector<ThreadId> threads(n);
    std::vector<double> nice(n);
    std::vector<int> weights(n, 1);
    for (int i = 0; i < n; ++i) {
        threads[i] = i;
        nice[i] = i * 0.5;
    }
    Pcg32 rng(1);
    sched::ShuffleState shuffle(threads, nice, weights,
                                sched::ShuffleMode::Insertion, &rng);
    for (auto _ : state) {
        shuffle.step();
        benchmark::DoNotOptimize(shuffle.order().data());
    }
}
BENCHMARK(BM_InsertionShuffleStep)->Arg(8)->Arg(24);

void
BM_ParallelSweep(benchmark::State &state)
{
    // Sweep-layer throughput (workloads/second) at a given pool size.
    // items_per_second at Arg(hardware_concurrency) over Arg(1) is the
    // parallel-runner speedup tracked in the perf trajectory.
    const int jobs = static_cast<int>(state.range(0));
    sim::SystemConfig config;
    config.numCores = 4;
    config.numChannels = 2;
    sim::ExperimentScale scale;
    scale.warmup = 2'000;
    scale.measure = 30'000;
    auto workloads = workload::workloadSet(16, config.numCores, 0.5, 42);

    // Prewarm once so the timed region measures the sweep itself, not
    // the alone-IPC denominators.
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    {
        ThreadPool pool(jobs);
        cache.prewarm(workloads, pool);
    }

    for (auto _ : state) {
        sim::AggregateResult agg =
            sim::evaluateSet(config, workloads,
                             sched::SchedulerSpec::tcmSpec(), scale, cache,
                             1, jobs);
        benchmark::DoNotOptimize(agg.weightedSpeedup.mean());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(workloads.size()));
}
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(static_cast<int>(
        std::max(2u, std::thread::hardware_concurrency())))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
