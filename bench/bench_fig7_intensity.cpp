/**
 * @file
 * Reproduces Figure 7: system throughput and unfairness of all five
 * schedulers as workload memory intensity rises from 25 % to 100 %.
 *
 * Paper's reading: TCM's advantage over PAR-BS and ATLAS grows with
 * memory intensity; at 100 % intensity TCM improves weighted speedup by
 * 7.4 % / 10.1 % and maximum slowdown by 5.8 % / 48.6 % over PAR-BS /
 * ATLAS respectively.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Figure 7: effect of workload memory intensity",
                       scale);

    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    auto schedulers = sim::paperSchedulers();
    const double intensities[] = {0.25, 0.5, 0.75, 1.0};

    std::map<std::string, std::map<int, sim::AggregateResult>> results;
    for (double intensity : intensities) {
        auto wl = workload::workloadSet(scale.workloadsPerCategory,
                                        config.numCores, intensity,
                                        5000 + static_cast<int>(
                                                   intensity * 100));
        for (const auto &agg : sim::evaluateMatrix(config, wl, schedulers,
                                                   scale, cache, 3))
            results[agg.scheduler][static_cast<int>(intensity * 100)] = agg;
    }

    std::printf("\n(a) System throughput (weighted speedup)\n");
    std::printf("%-10s %8s %8s %8s %8s\n", "scheduler", "25%", "50%",
                "75%", "100%");
    for (const auto &spec : schedulers) {
        std::printf("%-10s", spec.name());
        for (double intensity : intensities)
            std::printf(" %8.2f",
                        results[spec.name()]
                               [static_cast<int>(intensity * 100)]
                                   .weightedSpeedup.mean());
        std::printf("\n");
    }

    std::printf("\n(b) Unfairness (maximum slowdown)\n");
    std::printf("%-10s %8s %8s %8s %8s\n", "scheduler", "25%", "50%",
                "75%", "100%");
    for (const auto &spec : schedulers) {
        std::printf("%-10s", spec.name());
        for (double intensity : intensities)
            std::printf(" %8.2f",
                        results[spec.name()]
                               [static_cast<int>(intensity * 100)]
                                   .maxSlowdown.mean());
        std::printf("\n");
    }

    auto &tcm100 = results["TCM"][100];
    auto &atlas100 = results["ATLAS"][100];
    auto &parbs100 = results["PAR-BS"][100];
    std::printf("\nat 100%% intensity, TCM vs ATLAS:  WS %+.1f%% (paper "
                "+10.1%%), MS %+.1f%% (paper -48.6%%)\n",
                100.0 * (tcm100.weightedSpeedup.mean() /
                             atlas100.weightedSpeedup.mean() -
                         1.0),
                100.0 * (tcm100.maxSlowdown.mean() /
                             atlas100.maxSlowdown.mean() -
                         1.0));
    std::printf("at 100%% intensity, TCM vs PAR-BS: WS %+.1f%% (paper "
                "+7.4%%),  MS %+.1f%% (paper -5.8%%)\n",
                100.0 * (tcm100.weightedSpeedup.mean() /
                             parbs100.weightedSpeedup.mean() -
                         1.0),
                100.0 * (tcm100.maxSlowdown.mean() /
                             parbs100.maxSlowdown.mean() -
                         1.0));

    sim::results::ResultsDoc doc("fig7", scale);
    for (const auto &spec : schedulers) {
        for (double intensity : intensities) {
            int pct = static_cast<int>(intensity * 100);
            const sim::AggregateResult &agg = results[spec.name()][pct];
            std::string point = "i" + std::to_string(pct);
            doc.setAt(spec.name(), point, "ws",
                      agg.weightedSpeedup.mean());
            doc.setAt(spec.name(), point, "ms", agg.maxSlowdown.mean());
        }
    }
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
