/**
 * @file
 * Reproduces Table 7: TCM's sensitivity to its algorithmic parameters,
 * ShuffleAlgoThresh (0.05 / 0.07 / 0.10) and ShuffleInterval
 * (500 / 600 / 700 / 800 cycles).
 *
 * Paper's reading: performance is robust across these ranges, with a
 * slight throughput decrease at shorter shuffle intervals (reduced
 * row-buffer locality).
 */

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Table 7: TCM sensitivity to algorithmic parameters",
                       scale);

    auto workloads = workload::workloadSet(scale.workloadsPerCategory,
                                           config.numCores, 0.5, 7000);
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);

    // Both parameter sweeps share the workload set and seed, so they run
    // as one parallel matrix: rows 0-2 are the ShuffleAlgoThresh sweep,
    // rows 3-6 the ShuffleInterval sweep.
    const double threshes[] = {0.05, 0.07, 0.10};
    const Cycle intervals[] = {500, 600, 700, 800};
    std::vector<sched::SchedulerSpec> specs;
    for (double thresh : threshes) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.tcm.shuffleAlgoThresh = thresh;
        specs.push_back(spec);
    }
    for (Cycle interval : intervals) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.tcm.shuffleInterval = interval;
        specs.push_back(spec);
    }
    auto aggs =
        sim::evaluateMatrix(config, workloads, specs, scale, cache, 21);

    sim::results::ResultsDoc doc("table7", scale);
    std::printf("%-28s %18s %15s\n", "parameter", "weighted speedup",
                "max slowdown");
    std::size_t row = 0;
    for (double thresh : threshes) {
        const sim::AggregateResult &agg = aggs[row++];
        std::printf("ShuffleAlgoThresh=%-10.2f %18.2f %15.2f\n", thresh,
                    agg.weightedSpeedup.mean(), agg.maxSlowdown.mean());
        char label[40];
        std::snprintf(label, sizeof(label), "%.2f", thresh);
        doc.setAt("ShuffleAlgoThresh", label, "ws",
                  agg.weightedSpeedup.mean());
        doc.setAt("ShuffleAlgoThresh", label, "ms", agg.maxSlowdown.mean());
    }
    std::printf("\n");
    for (Cycle interval : intervals) {
        const sim::AggregateResult &agg = aggs[row++];
        std::printf("ShuffleInterval=%-12llu %18.2f %15.2f\n",
                    static_cast<unsigned long long>(interval),
                    agg.weightedSpeedup.mean(), agg.maxSlowdown.mean());
        std::string label = std::to_string(interval);
        doc.setAt("ShuffleInterval", label, "ws",
                  agg.weightedSpeedup.mean());
        doc.setAt("ShuffleInterval", label, "ms", agg.maxSlowdown.mean());
    }
    std::printf("\npaper (Table 7): WS 14.2-14.7, MS 5.4-6.0 across the "
                "whole range -> robust.\n");
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
