/**
 * @file
 * Reproduces Table 7: TCM's sensitivity to its algorithmic parameters,
 * ShuffleAlgoThresh (0.05 / 0.07 / 0.10) and ShuffleInterval
 * (500 / 600 / 700 / 800 cycles).
 *
 * Paper's reading: performance is robust across these ranges, with a
 * slight throughput decrease at shorter shuffle intervals (reduced
 * row-buffer locality).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

int
main()
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("Table 7: TCM sensitivity to algorithmic parameters",
                       scale);

    auto workloads = workload::workloadSet(scale.workloadsPerCategory,
                                           config.numCores, 0.5, 7000);
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);

    std::printf("%-28s %18s %15s\n", "parameter", "weighted speedup",
                "max slowdown");

    for (double thresh : {0.05, 0.07, 0.10}) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.tcm.shuffleAlgoThresh = thresh;
        sim::AggregateResult agg =
            sim::evaluateSet(config, workloads, spec, scale, cache, 21);
        std::printf("ShuffleAlgoThresh=%-10.2f %18.2f %15.2f\n", thresh,
                    agg.weightedSpeedup.mean(), agg.maxSlowdown.mean());
    }
    std::printf("\n");
    for (Cycle interval : {Cycle{500}, Cycle{600}, Cycle{700}, Cycle{800}}) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.tcm.shuffleInterval = interval;
        sim::AggregateResult agg =
            sim::evaluateSet(config, workloads, spec, scale, cache, 21);
        std::printf("ShuffleInterval=%-12llu %18.2f %15.2f\n",
                    static_cast<unsigned long long>(interval),
                    agg.weightedSpeedup.mean(), agg.maxSlowdown.mean());
    }
    std::printf("\npaper (Table 7): WS 14.2-14.7, MS 5.4-6.0 across the "
                "whole range -> robust.\n");
    return 0;
}
