/**
 * @file
 * Reproduces Figure 1: unfairness (maximum slowdown) vs system
 * throughput (weighted speedup) of the four prior schedulers — FR-FCFS,
 * STFM, PAR-BS, ATLAS — averaged over random workloads of 50/75/100 %
 * memory intensity (the same population Figure 4 uses, without TCM).
 *
 * Paper's reading: PAR-BS is most fair, ATLAS has the highest
 * throughput, no prior scheduler wins both.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader(
        "Figure 1: performance vs fairness of prior scheduling algorithms",
        scale);

    std::vector<std::vector<workload::ThreadProfile>> workloads;
    for (double intensity : {0.5, 0.75, 1.0}) {
        auto set = workload::workloadSet(scale.workloadsPerCategory,
                                         config.numCores, intensity,
                                         1000 + static_cast<int>(
                                                    intensity * 100));
        workloads.insert(workloads.end(), set.begin(), set.end());
    }
    std::printf("workloads: %zu (equal thirds at 50/75/100%% intensity)\n\n",
                workloads.size());

    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    sim::results::ResultsDoc doc("fig1", scale);
    std::printf("%-10s %18s %15s\n", "scheduler", "weighted speedup",
                "max slowdown");
    for (const auto &agg :
         sim::evaluateMatrix(config, workloads, sim::priorSchedulers(),
                             scale, cache, /*baseSeed=*/1)) {
        std::printf("%-10s %18.2f %15.2f\n", agg.scheduler.c_str(),
                    agg.weightedSpeedup.mean(), agg.maxSlowdown.mean());
        doc.set(agg.scheduler, "ws", agg.weightedSpeedup.mean());
        doc.set(agg.scheduler, "ms", agg.maxSlowdown.mean());
    }
    std::printf("\npaper (Fig. 1, 96 workloads): FR-FCFS worst WS; PAR-BS "
                "most fair;\nATLAS highest WS with ~55%% higher MS than "
                "PAR-BS.\n");
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
