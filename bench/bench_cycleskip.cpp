/**
 * @file
 * BM_CycleSkip: wall-clock speedup of the event-horizon simulation
 * kernel (SystemConfig::cycleSkip) over the per-cycle oracle loop,
 * bucketed by workload memory intensity. Low-intensity workloads spend
 * most cycles either streaming plain instructions or stalled on a rare
 * miss — exactly the dead time the kernel skips — so the speedup is
 * largest there and shrinks as DRAM traffic (and thus executed cycles)
 * grows.
 *
 * Every timed pair is also a correctness check: the per-thread IPCs of
 * the two modes must be bit-identical or the bench aborts.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

struct Bucket
{
    const char *name;
    double fracIntensive;
};

/** Run one full simulation; returns wall seconds and per-thread IPCs. */
double
timedRun(bool cycleSkip, const std::vector<workload::ThreadProfile> &mix,
         const sched::SchedulerSpec &spec, const sim::ExperimentScale &scale,
         std::vector<double> &ipc)
{
    sim::SystemConfig config;
    config.cycleSkip = cycleSkip;
    sched::SchedulerSpec scaled = spec;
    scaled.scaleToRun(scale.warmup + scale.measure);

    auto t0 = std::chrono::steady_clock::now();
    sim::Simulator sim(config, mix, scaled, /*seed=*/17);
    sim.run(scale.warmup, scale.measure);
    auto t1 = std::chrono::steady_clock::now();

    ipc.clear();
    for (ThreadId t = 0; t < sim.numThreads(); ++t)
        ipc.push_back(sim.measuredIpc(t));
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("BM_CycleSkip: event-horizon kernel speedup", scale);

    const Bucket buckets[] = {
        {"low", 0.125},   // 3 of 24 threads memory-intensive
        {"mid", 0.5},
        {"high", 1.0},
    };
    const sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();

    sim::results::ResultsDoc doc("cycleskip", scale);

    std::printf("\n%-22s %12s %12s %10s\n", "bucket", "per-cycle[s]",
                "skip[s]", "speedup");
    for (const Bucket &b : buckets) {
        auto mix = workload::randomMix(24, b.fracIntensive, /*seed=*/77);

        std::vector<double> ipcOff, ipcOn;
        // Two timed repetitions per mode, keeping the faster one, so a
        // cold first run doesn't distort the ratio.
        double off = timedRun(false, mix, spec, scale, ipcOff);
        double on = timedRun(true, mix, spec, scale, ipcOn);
        std::vector<double> scratch;
        off = std::min(off, timedRun(false, mix, spec, scale, scratch));
        on = std::min(on, timedRun(true, mix, spec, scale, scratch));

        if (ipcOff != ipcOn) {
            std::fprintf(stderr,
                         "FATAL: cycleSkip diverged from the per-cycle "
                         "oracle on bucket %s\n",
                         b.name);
            return 1;
        }

        double speedup = on > 0.0 ? off / on : 0.0;
        std::string series = std::string("BM_CycleSkip/") + b.name;
        std::printf("%-22s %12.3f %12.3f %9.2fx\n", series.c_str(), off,
                    on, speedup);
        doc.set(series, "seconds_per_cycle_mode", off);
        doc.set(series, "seconds_skip_mode", on);
        doc.set(series, "speedup", speedup);
    }

    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
