/**
 * @file
 * Reproduces Table 1 + Figure 2: the random-access vs streaming case
 * study. Two threads with identical memory intensity (100 MPKI) but
 * opposite BLP/RBL run together under two strict prioritizations; the
 * paper shows the random-access (high-BLP) thread suffers far more when
 * deprioritized (>11x) than the streaming thread does.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/alone_cache.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::SystemConfig config;
    config.numCores = 2;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader(
        "Table 1 + Figure 2: random-access vs streaming threads", scale);

    std::vector<workload::ThreadProfile> mix = {
        workload::randomAccessThread(), workload::streamingThread()};

    sim::results::ResultsDoc doc("fig2", scale);

    // Table 1: verify the two threads' measured behaviour (run alone).
    std::printf("Table 1 (measured alone, targets in parentheses):\n");
    std::printf("%-15s %14s %14s %14s\n", "thread", "MPKI", "BLP(banks)",
                "RBL");
    for (const auto &profile : mix) {
        sim::Simulator sim(config, {profile},
                           sched::SchedulerSpec::frfcfs(), 11,
                           /*enableProbe=*/true);
        sim.run(scale.warmup, scale.measure);
        auto b = sim.behavior(0);
        std::printf("%-15s %7.1f(%5.1f) %7.2f(%5.2f) %7.3f(%5.3f)\n",
                    profile.name.c_str(), b.mpki, profile.mpki, b.blp,
                    profile.blp, b.rbl, profile.rbl);
        sim::results::Row &row = doc.row(profile.name);
        row.set("mpki", b.mpki);
        row.set("blp", b.blp);
        row.set("rbl", b.rbl);
    }

    // Figure 2: slowdowns under the two strict prioritizations.
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    sim::RunResult ra_first =
        sim::runWorkload(config, mix, sched::SchedulerSpec::fixedRank({1, 0}),
                         scale, cache, 11);
    sim::RunResult st_first =
        sim::runWorkload(config, mix, sched::SchedulerSpec::fixedRank({0, 1}),
                         scale, cache, 11);

    std::printf("\nFigure 2(a): strictly prioritizing random-access\n");
    std::printf("  random-access slowdown: %6.2f   (paper: ~1.2)\n",
                ra_first.metrics.slowdowns[0]);
    std::printf("  streaming     slowdown: %6.2f   (paper: ~5.3)\n",
                ra_first.metrics.slowdowns[1]);
    std::printf("Figure 2(b): strictly prioritizing streaming\n");
    std::printf("  random-access slowdown: %6.2f   (paper: ~11.4)\n",
                st_first.metrics.slowdowns[0]);
    std::printf("  streaming     slowdown: %6.2f   (paper: ~1.05)\n",
                st_first.metrics.slowdowns[1]);
    std::printf("\nshape check: deprioritized random-access must suffer "
                "more than\ndeprioritized streaming: %s\n",
                st_first.metrics.slowdowns[0] > ra_first.metrics.slowdowns[1]
                    ? "yes"
                    : "NO (mismatch)");

    doc.setAt("slowdown", "ra_first", "random_access",
              ra_first.metrics.slowdowns[0]);
    doc.setAt("slowdown", "ra_first", "streaming",
              ra_first.metrics.slowdowns[1]);
    doc.setAt("slowdown", "st_first", "random_access",
              st_first.metrics.slowdowns[0]);
    doc.setAt("slowdown", "st_first", "streaming",
              st_first.metrics.slowdowns[1]);
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
