/**
 * @file
 * Reproduces Table 2: storage required per memory controller for TCM's
 * behaviour monitoring, on the 24-thread, 4-bank baseline.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sched/tcm/hw_cost.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sched::HwCostConfig cfg; // Table 3 baseline: 24 threads, 4 banks
    sched::HwCost cost = sched::monitoringCost(cfg);

    std::printf("Table 2: per-controller monitoring storage (bits)\n");
    std::printf("%-28s %10s %10s\n", "structure", "measured", "paper");
    std::printf("%-28s %10llu %10s\n", "MPKI counters",
                static_cast<unsigned long long>(cost.mpkiCounters), "240");
    std::printf("%-28s %10llu %10s\n", "load counters",
                static_cast<unsigned long long>(cost.loadCounters), "576");
    std::printf("%-28s %10llu %10s\n", "BLP counters",
                static_cast<unsigned long long>(cost.blpCounters), "48");
    std::printf("%-28s %10llu %10s\n", "BLP average",
                static_cast<unsigned long long>(cost.blpAverage), "48");
    std::printf("%-28s %10llu %10s\n", "shadow row-buffer index",
                static_cast<unsigned long long>(cost.shadowRowIndices),
                "1344");
    std::printf("%-28s %10llu %10s\n", "shadow row-buffer hits",
                static_cast<unsigned long long>(cost.shadowHitCounters),
                "1536");
    std::printf("%-28s %10llu %10s\n", "total",
                static_cast<unsigned long long>(cost.total()),
                "< 4 Kbits");
    std::printf("%-28s %10llu %10s\n", "random-shuffle-only total",
                static_cast<unsigned long long>(cost.totalRandomShuffleOnly()),
                "< 0.5 Kbits");

    sim::results::ResultsDoc doc;
    doc.bench = "table2"; // analytic formulas: no experiment scale
    sim::results::Row &row = doc.row("bits");
    row.set("mpki_counters", static_cast<double>(cost.mpkiCounters));
    row.set("load_counters", static_cast<double>(cost.loadCounters));
    row.set("blp_counters", static_cast<double>(cost.blpCounters));
    row.set("blp_average", static_cast<double>(cost.blpAverage));
    row.set("shadow_row_indices",
            static_cast<double>(cost.shadowRowIndices));
    row.set("shadow_hit_counters",
            static_cast<double>(cost.shadowHitCounters));
    row.set("total", static_cast<double>(cost.total()));
    row.set("total_random_shuffle_only",
            static_cast<double>(cost.totalRandomShuffleOnly()));
    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
