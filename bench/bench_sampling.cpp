/**
 * @file
 * BM_Sampling: interval-sampled runs versus full-length runs on the
 * Figure 4 grid. Renders the same measurement tools/claims gates on
 * (sim::paper::sampling), so the printed table and the sampling.*
 * claim verdicts can never disagree: per-scheduler full/sampled/relerr
 * for WS, MS and HS, then the summary row with the worst errors, the
 * fig4.* ordering re-check on the sampled document, and the simulated-
 * cycle and wall-clock speedups.
 *
 * Sampling parameters come from TCMSIM_SAMPLE ("W:K[:WARMUP]") when
 * set, else the SamplingConfig defaults (20k warmup + 3x15k windows).
 */

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "bench_util.hpp"
#include "sim/paper_experiments.hpp"
#include "sim/sampling.hpp"
#include "sim/system_config.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    if (const char *env = std::getenv("TCMSIM_SAMPLE")) {
        std::string err;
        scale.sampling = sim::SamplingConfig::parse(env, &err);
        if (!scale.sampling.enabled) {
            std::fprintf(stderr, "FATAL: TCMSIM_SAMPLE: %s\n", err.c_str());
            return 1;
        }
    }
    bench::printHeader("BM_Sampling: interval-sampled vs full runs", scale);

    sim::SystemConfig config;
    sim::results::ResultsDoc doc;
    try {
        doc = sim::paper::sampling(config, scale);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "FATAL: %s\n", e.what());
        return 1;
    }

    std::printf("\n%-10s %-6s %10s %10s %9s\n", "scheduler", "metric",
                "full", "sampled", "relerr");
    static const char *const metrics[] = {"ws", "ms", "hs"};
    const sim::results::Row *summary = nullptr;
    for (const sim::results::Row &r : doc.rows) {
        if (r.series == "summary") {
            summary = &r;
            continue;
        }
        for (const char *m : metrics) {
            const double *full = r.find(std::string(m) + "_full");
            const double *sampled = r.find(std::string(m) + "_sampled");
            const double *relerr = r.find(std::string(m) + "_relerr");
            std::printf("%-10s %-6s %10.4f %10.4f %8.2f%%\n",
                        r.series.c_str(), m, full ? *full : 0.0,
                        sampled ? *sampled : 0.0,
                        relerr ? 100.0 * *relerr : 0.0);
        }
    }

    if (summary) {
        auto v = [&](const char *k) {
            const double *p = summary->find(k);
            return p ? *p : 0.0;
        };
        std::printf("\nworst relative error: WS %.2f%%  MS %.2f%%  "
                    "HS %.2f%%\n",
                    100.0 * v("ws_err_max"), 100.0 * v("ms_err_max"),
                    100.0 * v("hs_err_max"));
        std::printf("fig4 ordering claims on the sampled doc: %.0f/%.0f "
                    "failed\n",
                    v("fig4_claims_failed"), v("fig4_claims_total"));
        std::printf("simulated cycles: %.1fx fewer   wall clock: %.2fx "
                    "faster (%.2fs -> %.2fs)\n",
                    v("cycle_ratio"), v("speedup"), v("seconds_full"),
                    v("seconds_sampled"));
    }

    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
