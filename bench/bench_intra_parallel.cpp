/**
 * @file
 * BM_IntraRunParallel: wall-clock speedup of intra-run parallel
 * stepping (SystemConfig::intraRunParallel) over the serial loop, on
 * the paper's 24-core / 4-channel system under full memory pressure —
 * the configuration where the per-channel controller work dominates and
 * gang stepping has the most to win. Renders the same measurement
 * tools/claims gates on (sim::paper::intraParallel), so the printed
 * table and the claim verdict can never disagree.
 *
 * Every parallel run is also a correctness check: the driver aborts if
 * any worker count's per-thread IPCs diverge from the serial run's.
 */

#include <cstdio>
#include <exception>
#include <thread>

#include "bench_util.hpp"
#include "sim/paper_experiments.hpp"
#include "sim/system_config.hpp"

int
main(int argc, char **argv)
{
    using namespace tcm;

    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    bench::printHeader("BM_IntraRunParallel: gang-stepping speedup", scale);

    if (std::thread::hardware_concurrency() < 4)
        std::fprintf(stderr,
                     "note: only %u hardware thread(s) — worker lanes "
                     "will time-share cores and the speedup column is "
                     "not meaningful on this host\n",
                     std::thread::hardware_concurrency());

    sim::SystemConfig config;
    sim::results::ResultsDoc doc;
    try {
        doc = sim::paper::intraParallel(config, scale);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "FATAL: %s\n", e.what());
        return 1;
    }

    std::printf("\n%-10s %12s %10s\n", "workers", "seconds", "speedup");
    for (const sim::results::Row &r : doc.rows) {
        const double *seconds = r.find("seconds");
        const double *speedup = r.find("speedup");
        std::printf("%-10s %12.3f %9.2fx\n", r.series.c_str(),
                    seconds ? *seconds : 0.0, speedup ? *speedup : 0.0);
    }

    bench::writeJsonIfRequested(doc, argc, argv);
    return 0;
}
