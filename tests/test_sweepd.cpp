/**
 * @file
 * Sweep-daemon contract (sim/sweepd.hpp): manifests parse with
 * line-numbered rejection of anything malformed; a run streams one
 * JSONL ResultsDoc record per job in manifest order; a daemon killed
 * mid-queue (the --stop-after hook stops between batches exactly like a
 * kill) and restarted on the same state produces a final stream
 * byte-identical to an uninterrupted run; and a warm persistent
 * alone-IPC store eliminates every alone-run recomputation across
 * daemon generations (miss counter asserted zero).
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/results.hpp"
#include "sim/sweepd.hpp"

using namespace tcm;
using sim::sweepd::Manifest;
using sim::sweepd::RunOutcome;
using sim::sweepd::Server;
namespace fs = std::filesystem;

namespace {

/** Small grid: 2 schedulers x 3 workloads + a second protocol = 8 jobs,
 *  tiny horizon, sampled — fast enough to run several times per test. */
const char *kManifest = "tcmsim-manifest v1\n"
                        "# test fleet\n"
                        "cores 4\n"
                        "channels 2\n"
                        "warmup 2000\n"
                        "cycles 20000\n"
                        "sample 2000:2:1000\n"
                        "workload-seed 7\n"
                        "job frfcfs ddr2-800 1 0 1\n"
                        "job frfcfs ddr2-800 1 1 2\n"
                        "job frfcfs ddr2-800 0.5 0 3\n"
                        "job tcm ddr2-800 1 0 1\n"
                        "job tcm ddr2-800 1 1 2\n"
                        "job tcm ddr2-800 0.5 0 3\n"
                        "job tcm ddr3-1333 1 0 4\n"
                        "job frfcfs ddr3-1333 1 0 4\n";

class SweepdTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("tcmsim_sweepd_" + std::string(::testing::UnitTest::
                                                   GetInstance()
                                                       ->current_test_info()
                                                       ->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::string writeManifest(const std::string &name,
                              const std::string &text) const
    {
        std::ofstream out(path(name), std::ios::binary);
        out << text;
        EXPECT_TRUE(out.good());
        return path(name);
    }

    static std::string readFile(const std::string &p)
    {
        std::ifstream in(p, std::ios::binary);
        EXPECT_TRUE(in.good()) << "cannot read " << p;
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    Server::Options options(const std::string &state,
                            std::uint64_t stopAfter = 0,
                            int batch = 2) const
    {
        Server::Options opt;
        opt.stateDir = path(state);
        opt.jobs = 2;
        opt.batch = batch;
        opt.stopAfter = stopAfter;
        return opt;
    }

    fs::path dir_;
};

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

} // namespace

TEST_F(SweepdTest, ManifestParsesKnobsAndJobs)
{
    Manifest m;
    std::string err;
    ASSERT_TRUE(Manifest::parse(kManifest, &m, &err)) << err;
    EXPECT_EQ(m.cores, 4);
    EXPECT_EQ(m.channels, 2);
    EXPECT_EQ(m.warmup, 2'000u);
    EXPECT_EQ(m.measure, 20'000u);
    EXPECT_EQ(m.workloadSeed, 7u);
    ASSERT_TRUE(m.sampling.enabled);
    EXPECT_EQ(m.sampling.describe(), "2000:2:1000");
    ASSERT_EQ(m.jobs.size(), 8u);
    EXPECT_EQ(m.jobs[0].scheduler, "frfcfs");
    EXPECT_EQ(m.jobs[6].protocol, "ddr3-1333");
    EXPECT_EQ(m.jobs[2].intensity, 0.5);
    EXPECT_EQ(m.jobs[1].mixIndex, 1);
    EXPECT_EQ(m.jobs[7].seed, 4u);
    EXPECT_NE(m.textHash, 0u);

    // The scale a manifest denotes: sampled horizon, full-run scaling.
    sim::ExperimentScale scale = m.scale();
    EXPECT_EQ(scale.measure, 20'000u);
    EXPECT_EQ(scale.effectiveWarmup(), 1'000u);
    EXPECT_EQ(scale.effectiveMeasure(), 4'000u);
}

TEST_F(SweepdTest, ManifestRejectsMalformedInputWithLineNumbers)
{
    struct Case
    {
        const char *text;
        const char *line; //!< expected "line N" fragment
    };
    const Case cases[] = {
        {"", "line 1"},
        {"not a manifest\n", "line 1"},
        {"tcmsim-manifest v1\n", "line 1"}, // no jobs
        {"tcmsim-manifest v1\njob nosuch ddr2-800 1 0 1\n", "line 2"},
        {"tcmsim-manifest v1\njob tcm nosuch-proto 1 0 1\n", "line 2"},
        {"tcmsim-manifest v1\njob tcm ddr2-800 1.5 0 1\n", "line 2"},
        {"tcmsim-manifest v1\njob tcm ddr2-800 1 -1 1\n", "line 2"},
        {"tcmsim-manifest v1\njob tcm ddr2-800 1 0\n", "line 2"},
        {"tcmsim-manifest v1\ncores zero\njob tcm ddr2-800 1 0 1\n",
         "line 2"},
        {"tcmsim-manifest v1\nbogus 7\njob tcm ddr2-800 1 0 1\n",
         "line 2"},
        {"tcmsim-manifest v1\nsample 10:2\njob tcm ddr2-800 1 0 1\n",
         "line 2"},
    };
    for (const Case &c : cases) {
        Manifest m;
        std::string err;
        EXPECT_FALSE(Manifest::parse(c.text, &m, &err))
            << "accepted: " << c.text;
        EXPECT_NE(err.find(c.line), std::string::npos)
            << "no '" << c.line << "' in: " << err;
    }
}

TEST_F(SweepdTest, RunStreamsOneRecordPerJobInManifestOrder)
{
    const std::string manifest = writeManifest("fleet.manifest", kManifest);
    Server server(options("state"));
    RunOutcome outcome = server.runManifest(manifest, path("out.jsonl"));
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_TRUE(outcome.finished);
    EXPECT_FALSE(outcome.resumed);
    EXPECT_EQ(outcome.emitted, 8u);
    EXPECT_EQ(outcome.emittedThisSession, 8u);

    const std::vector<std::string> records =
        lines(readFile(path("out.jsonl")));
    ASSERT_EQ(records.size(), 8u);

    Manifest m;
    std::string err;
    ASSERT_TRUE(Manifest::parse(kManifest, &m, &err)) << err;
    for (std::size_t i = 0; i < records.size(); ++i) {
        sim::results::ResultsDoc doc =
            sim::results::ResultsDoc::fromJson(records[i]);
        EXPECT_EQ(doc.bench, "sweepd");
        ASSERT_EQ(doc.rows.size(), 1u) << "record " << i;
        const sim::results::Row &row = doc.rows[0];
        EXPECT_EQ(row.series, m.jobs[i].scheduler)
            << "record " << i << " out of manifest order";
        for (const char *metric : {"ws", "ms", "hs"}) {
            const double *v = row.find(metric);
            ASSERT_NE(v, nullptr) << metric;
            EXPECT_GT(*v, 0.0) << metric;
        }
        // Sampled manifests carry the self-assessed window RSE.
        EXPECT_NE(row.find("rse_max"), nullptr);
    }

    // The throughput summary lands next to the stream, with wall-clock
    // data confined to the never-diffed run-provenance block.
    sim::results::ResultsDoc summary =
        sim::results::ResultsDoc::load(path("out.jsonl.summary.json"));
    EXPECT_EQ(summary.bench, "sweepd-summary");
    EXPECT_GT(summary.jobsPerSec, 0.0);
    EXPECT_GE(summary.cacheHitRate, 0.0);
    const double *emitted = summary.find("daemon", "", "jobs_emitted");
    ASSERT_NE(emitted, nullptr);
    EXPECT_EQ(*emitted, 8.0);
}

TEST_F(SweepdTest, KilledAndRestartedRunIsByteIdentical)
{
    const std::string manifest = writeManifest("fleet.manifest", kManifest);

    // Reference: one uninterrupted run.
    Server uninterrupted(options("state_a"));
    RunOutcome ref = uninterrupted.runManifest(manifest, path("a.jsonl"));
    ASSERT_TRUE(ref.ok) << ref.error;
    ASSERT_TRUE(ref.finished);
    const std::string golden = readFile(path("a.jsonl"));

    // Interrupted fleet: stop after 3 of 8 jobs (batch size 2, so the
    // daemon checkpoints at 2 and stops inside the third batch window —
    // exactly a kill between batches as far as the state dir can tell).
    Server firstLife(options("state_b", /*stopAfter=*/3));
    RunOutcome first = firstLife.runManifest(manifest, path("b.jsonl"));
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_FALSE(first.finished);
    EXPECT_FALSE(first.resumed);
    EXPECT_LT(first.emitted, 8u);
    EXPECT_GE(first.emitted, 3u);

    // Second life: same state, no stop limit — must resume, not restart.
    Server secondLife(options("state_b"));
    RunOutcome second = secondLife.runManifest(manifest, path("b.jsonl"));
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_TRUE(second.finished);
    EXPECT_TRUE(second.resumed);
    EXPECT_EQ(second.emitted, 8u);
    EXPECT_EQ(second.emittedThisSession, 8u - first.emitted);

    EXPECT_EQ(readFile(path("b.jsonl")), golden)
        << "kill/resume stream differs from the uninterrupted run";
}

TEST_F(SweepdTest, StaleBytesPastTheCheckpointAreDiscardedOnResume)
{
    const std::string manifest = writeManifest("fleet.manifest", kManifest);
    Server uninterrupted(options("state_a"));
    ASSERT_TRUE(
        uninterrupted.runManifest(manifest, path("a.jsonl")).ok);
    const std::string golden = readFile(path("a.jsonl"));

    Server firstLife(options("state_b", /*stopAfter=*/4));
    RunOutcome first = firstLife.runManifest(manifest, path("b.jsonl"));
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_FALSE(first.finished);

    // Simulate a kill mid-write: garbage lands after the last durable
    // checkpoint. Resume must truncate it away, then re-emit.
    {
        std::ofstream out(path("b.jsonl"),
                          std::ios::binary | std::ios::app);
        out << "{\"torn\": partial rec";
    }

    Server secondLife(options("state_b"));
    RunOutcome second = secondLife.runManifest(manifest, path("b.jsonl"));
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_TRUE(second.finished);
    EXPECT_TRUE(second.resumed);
    EXPECT_EQ(readFile(path("b.jsonl")), golden);
}

TEST_F(SweepdTest, EditedManifestInvalidatesTheCheckpoint)
{
    const std::string manifest = writeManifest("fleet.manifest", kManifest);
    Server firstLife(options("state", /*stopAfter=*/3));
    ASSERT_TRUE(firstLife.runManifest(manifest, path("out.jsonl")).ok);

    // Same path, different content: the checkpoint binds the manifest
    // hash, so the run must restart from job 0, not resume.
    std::string edited = kManifest;
    edited += "job tcm ddr2-800 0.5 1 9\n";
    writeManifest("fleet.manifest", edited);

    Server secondLife(options("state"));
    RunOutcome outcome =
        secondLife.runManifest(manifest, path("out.jsonl"));
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_FALSE(outcome.resumed);
    EXPECT_TRUE(outcome.finished);
    EXPECT_EQ(outcome.emitted, 9u);
    EXPECT_EQ(lines(readFile(path("out.jsonl"))).size(), 9u);
}

TEST_F(SweepdTest, WarmPersistentCacheEliminatesAloneRecomputation)
{
    const std::string manifest = writeManifest("fleet.manifest", kManifest);

    Server coldLife(options("state"));
    RunOutcome cold = coldLife.runManifest(manifest, path("cold.jsonl"));
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_GT(cold.cacheMisses, 0u) << "first fleet must simulate";

    // The stores must exist, one per protocol fingerprint.
    int stores = 0;
    for (const auto &entry : fs::directory_iterator(path("state")))
        if (entry.path().extension() == ".cache")
            ++stores;
    EXPECT_EQ(stores, 2) << "one persistent store per protocol config";

    // A new daemon generation on the same state dir, streaming to a
    // fresh output (so every job re-runs), must never recompute an
    // alone denominator: all lookups hit the loaded stores.
    Server warmLife(options("state"));
    RunOutcome warm = warmLife.runManifest(manifest, path("warm.jsonl"));
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.finished);
    EXPECT_EQ(warm.cacheMisses, 0u)
        << "warm fleet recomputed alone denominators";
    EXPECT_GT(warm.cacheHits, 0u);

    // And the stream itself is independent of cache temperature.
    EXPECT_EQ(readFile(path("warm.jsonl")), readFile(path("cold.jsonl")));
}

TEST_F(SweepdTest, DrainSpoolProcessesAndParksManifests)
{
    Server server(options("state"));
    fs::create_directories(path("state") + "/spool");

    // One good manifest and one broken one.
    writeManifest("state/spool/10-fleet.manifest", kManifest);
    writeManifest("state/spool/20-broken.manifest",
                  "tcmsim-manifest v1\njob nosuch ddr2-800 1 0 1\n");

    int finished = server.drainSpool();
    EXPECT_EQ(finished, 1);
    EXPECT_TRUE(fs::exists(path("state") + "/results/10-fleet.jsonl"));
    EXPECT_TRUE(fs::exists(path("state") + "/done/10-fleet.manifest"));
    EXPECT_TRUE(
        fs::exists(path("state") + "/failed/20-broken.manifest"));
    EXPECT_TRUE(fs::is_empty(path("state") + "/spool"));

    ASSERT_EQ(
        lines(readFile(path("state") + "/results/10-fleet.jsonl")).size(),
        8u);
}

TEST_F(SweepdTest, InterruptedSpoolManifestResumesOnNextDrain)
{
    // stopAfter interrupts the manifest mid-queue; it must stay spooled
    // and the next drain must finish it from the checkpoint.
    Server limited(options("state", /*stopAfter=*/3));
    fs::create_directories(path("state") + "/spool");
    writeManifest("state/spool/fleet.manifest", kManifest);

    EXPECT_EQ(limited.drainSpool(), 0);
    EXPECT_TRUE(
        fs::exists(path("state") + "/spool/fleet.manifest"));

    Server unlimited(options("state"));
    EXPECT_EQ(unlimited.drainSpool(), 1);
    EXPECT_TRUE(fs::exists(path("state") + "/done/fleet.manifest"));
    ASSERT_EQ(
        lines(readFile(path("state") + "/results/fleet.jsonl")).size(),
        8u);
}

TEST_F(SweepdTest, BadManifestPathFailsCleanly)
{
    Server server(options("state"));
    RunOutcome outcome =
        server.runManifest(path("missing.manifest"), path("out.jsonl"));
    EXPECT_FALSE(outcome.ok);
    EXPECT_FALSE(outcome.error.empty());
}
