/**
 * @file
 * Unit tests for the statistics subsystem: histogram math, the
 * controller latency tracker, and system reports.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "mem/latency_tracker.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "stats/counters.hpp"
#include "stats/histogram.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/mixes.hpp"

using namespace tcm;
using tcm::stats::Histogram;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero)
{
    Histogram h({1.0, 2.0});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(HistogramTest, MeanMinMaxExact)
{
    Histogram h({10.0, 100.0, 1000.0});
    for (double v : {5.0, 50.0, 500.0, 5000.0})
        h.add(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (5.0 + 50.0 + 500.0 + 5000.0) / 4.0);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 5000.0);
}

TEST(HistogramTest, BucketsFillCorrectly)
{
    Histogram h({10.0, 100.0});
    h.add(10.0);  // at the bound -> first bucket
    h.add(10.1);  // second bucket
    h.add(99.0);  // second bucket
    h.add(101.0); // overflow
    ASSERT_EQ(h.buckets().size(), 3u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[2], 1u);
}

TEST(HistogramTest, PercentileMonotonicAndBounded)
{
    Histogram h = Histogram::exponential(10.0, 2.0, 12);
    Pcg32 rng(3);
    for (int i = 0; i < 20'000; ++i)
        h.add(10.0 + rng.nextBelow(10'000));
    double last = 0.0;
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        double v = h.percentile(p);
        EXPECT_GE(v, last);
        last = v;
    }
    EXPECT_LE(h.percentile(1.0), h.max());
    EXPECT_GE(h.percentile(0.0), 0.0);
}

TEST(HistogramTest, PercentileApproximatesUniform)
{
    Histogram h({100, 200, 300, 400, 500, 600, 700, 800, 900, 1000});
    for (int v = 1; v <= 1000; ++v)
        h.add(static_cast<double>(v));
    EXPECT_NEAR(h.percentile(0.5), 500.0, 60.0);
    EXPECT_NEAR(h.percentile(0.9), 900.0, 60.0);
}

TEST(HistogramTest, MergeEqualsCombinedStream)
{
    Histogram a = Histogram::exponential(10, 2, 8);
    Histogram b = Histogram::exponential(10, 2, 8);
    Histogram both = Histogram::exponential(10, 2, 8);
    Pcg32 rng(9);
    for (int i = 0; i < 5000; ++i) {
        double v = 1.0 + rng.nextBelow(3000);
        (i % 2 ? a : b).add(v);
        both.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_DOUBLE_EQ(a.mean(), both.mean());
    EXPECT_DOUBLE_EQ(a.max(), both.max());
    EXPECT_DOUBLE_EQ(a.percentile(0.9), both.percentile(0.9));
}

// The documented percentile() edge-case contract (histogram.hpp):
// empty -> 0, p clamped to [0,1], p=0 -> min(), p=1 -> max(), overflow
// bucket -> observed max.

TEST(HistogramTest, PercentileEmptyReturnsZeroForAnyP)
{
    Histogram h = Histogram::exponential(1.0, 2.0, 8);
    for (double p : {-1.0, 0.0, 0.5, 1.0, 7.0})
        EXPECT_EQ(h.percentile(p), 0.0) << p;
}

TEST(HistogramTest, PercentileClampsOutOfRangeP)
{
    Histogram h({10.0, 100.0});
    h.add(3.0);
    h.add(42.0);
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(HistogramTest, PercentileExtremesReportMinAndMax)
{
    Histogram h = Histogram::exponential(10.0, 2.0, 10);
    Pcg32 rng(7);
    for (int i = 0; i < 1000; ++i)
        h.add(1.0 + rng.nextBelow(5000));
    EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
    EXPECT_DOUBLE_EQ(h.percentile(1.0), h.max());
}

TEST(HistogramTest, PercentileOverflowBucketReportsObservedMax)
{
    Histogram h({10.0}); // one bound: everything above 10 overflows
    h.add(5.0);
    h.add(250.0);
    h.add(9000.0);
    // p50 onward land in the overflow bucket, which has no upper bound
    // to interpolate toward; the contract says report max().
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 9000.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 9000.0);
}

TEST(HistogramTest, PercentileClampedToObservedRange)
{
    // A single value in a wide bucket: interpolation would overshoot,
    // the min/max clamp keeps every percentile at the value itself.
    Histogram h({1000.0, 2000.0});
    h.add(1500.0);
    for (double p : {0.0, 0.25, 0.5, 0.75, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 1500.0) << p;
}

TEST(HistogramTest, ResetClears)
{
    Histogram h({10.0});
    h.add(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0.0);
}

// ---------------------------------------------------------------------------
// LatencyTracker
// ---------------------------------------------------------------------------

TEST(LatencyTracker, TracksPerThreadAndAggregate)
{
    mem::LatencyTracker lt;
    lt.record(0, 200);
    lt.record(0, 400);
    lt.record(2, 1000);
    EXPECT_EQ(lt.histogram().count(), 3u);
    EXPECT_DOUBLE_EQ(lt.threadStats(0).mean(), 300.0);
    EXPECT_EQ(lt.threadStats(1).count(), 0u);
    EXPECT_DOUBLE_EQ(lt.threadStats(2).max(), 1000.0);
    EXPECT_EQ(lt.threadHistogram(2).count(), 1u);
}

TEST(LatencyTracker, UnknownThreadIsEmptyNotCrash)
{
    mem::LatencyTracker lt;
    EXPECT_EQ(lt.threadStats(5).count(), 0u);
    EXPECT_EQ(lt.threadHistogram(5).count(), 0u);
}

TEST(LatencyTracker, ResetClearsEverything)
{
    mem::LatencyTracker lt;
    lt.record(1, 500);
    lt.reset();
    EXPECT_EQ(lt.histogram().count(), 0u);
    EXPECT_EQ(lt.threadStats(1).count(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: simulator latencies and reports
// ---------------------------------------------------------------------------

TEST(Report, UncontendedLatencyNearDatasheet)
{
    sim::SystemConfig cfg;
    cfg.numCores = 1;
    std::vector<workload::ThreadProfile> mix = {
        workload::benchmarkProfile("libquantum")};
    sim::Simulator sim(cfg, mix, sched::SchedulerSpec::frfcfs(), 3);
    sim.run(20'000, 100'000);

    // Row-hit-dominated single thread: mean latency should sit between
    // the uncontended row-hit (~200) and a loaded queue bound.
    stats::Histogram merged = sim.latency(0).threadHistogram(0);
    for (ChannelId ch = 1; ch < cfg.numChannels; ++ch)
        merged.merge(sim.latency(ch).threadHistogram(0));
    ASSERT_GT(merged.count(), 100u);
    EXPECT_GT(merged.percentile(0.5), 150.0);
    EXPECT_LT(merged.percentile(0.5), 2000.0);
}

TEST(Report, CollectsConsistentRows)
{
    sim::SystemConfig cfg;
    cfg.numCores = 4;
    auto mix = workload::randomMix(4, 1.0, 5);
    sim::Simulator sim(cfg, mix, sched::SchedulerSpec::tcmSpec(), 5,
                       /*enableProbe=*/true);
    sim.run(20'000, 100'000);

    sim::SystemReport report = sim::SystemReport::collect(sim);
    EXPECT_EQ(report.scheduler, "TCM");
    EXPECT_EQ(report.measuredCycles, 100'000u);
    ASSERT_EQ(report.threads.size(), 4u);
    ASSERT_EQ(report.channels.size(),
              static_cast<std::size_t>(cfg.numChannels));

    std::uint64_t channelReads = 0;
    for (const auto &c : report.channels) {
        channelReads += c.reads;
        EXPECT_GE(c.rowHitRate, 0.0);
        EXPECT_LE(c.rowHitRate, 1.0);
        EXPECT_GE(c.bankUtilization, 0.0);
        EXPECT_LE(c.bankUtilization, 1.0);
        EXPECT_GT(c.averagePowerMw, 0.0);
    }
    std::uint64_t threadReads = 0;
    for (const auto &t : report.threads) {
        EXPECT_GT(t.ipc, 0.0);
        EXPECT_LE(t.latencyP50, t.latencyP99 + 1e-9);
        EXPECT_LE(t.latencyP99, t.latencyMax + 1e-9);
        threadReads += t.reads;
    }
    // Reads measured per thread equal reads serviced per channel.
    EXPECT_EQ(threadReads, channelReads);
}

TEST(Report, CsvFilesAreWellFormed)
{
    sim::SystemConfig cfg;
    cfg.numCores = 2;
    auto mix = workload::randomMix(2, 1.0, 5);
    sim::Simulator sim(cfg, mix, sched::SchedulerSpec::frfcfs(), 5);
    sim.run(10'000, 50'000);
    sim::SystemReport report = sim::SystemReport::collect(sim);

    std::string prefix = "/tmp/tcmsim_test_report";
    report.writeCsv(prefix);

    for (const char *suffix : {"_threads.csv", "_channels.csv"}) {
        std::ifstream in(prefix + suffix);
        ASSERT_TRUE(in.good()) << suffix;
        std::string header, firstRow;
        std::getline(in, header);
        std::getline(in, firstRow);
        // Same number of commas in header and data rows.
        auto commas = [](const std::string &s) {
            return std::count(s.begin(), s.end(), ',');
        };
        EXPECT_GT(commas(header), 4);
        EXPECT_EQ(commas(header), commas(firstRow)) << suffix;
        std::remove((prefix + suffix).c_str());
    }
}

TEST(Report, StarvedThreadShowsTailBlowup)
{
    // Under a strict fixed ranking, the deprioritized heavy thread's p99
    // latency must far exceed the favored thread's.
    sim::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.numChannels = 1;
    std::vector<workload::ThreadProfile> mix = {
        workload::benchmarkProfile("lbm"),
        workload::benchmarkProfile("lbm")};
    sim::Simulator sim(cfg, mix, sched::SchedulerSpec::fixedRank({0, 1}),
                       5);
    sim.run(20'000, 150'000);
    sim::SystemReport r = sim::SystemReport::collect(sim);
    EXPECT_GT(r.threads[0].latencyP99, 2.0 * r.threads[1].latencyP99);
}

// ---------------------------------------------------------------------------
// NamedCounters
// ---------------------------------------------------------------------------

TEST(NamedCounters, BumpTotalAndSnapshots)
{
    stats::NamedCounters c({"alpha", "beta", "gamma"});
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.total(), 0u);
    EXPECT_TRUE(c.nonZero().empty());

    c.bump(1);
    c.bump(2, 5);
    EXPECT_EQ(c.count(0), 0u);
    EXPECT_EQ(c.count(1), 1u);
    EXPECT_EQ(c.count(2), 5u);
    EXPECT_EQ(c.total(), 6u);

    auto snap = c.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "alpha");
    EXPECT_EQ(snap[0].second, 0u);
    EXPECT_EQ(snap[2].second, 5u);

    auto nz = c.nonZero();
    ASSERT_EQ(nz.size(), 2u);
    EXPECT_EQ(nz[0].first, "beta");
    EXPECT_EQ(nz[1].first, "gamma");

    c.reset();
    EXPECT_EQ(c.total(), 0u);
    EXPECT_EQ(c.count(2), 0u);
}

// ---------------------------------------------------------------------------
// Protocol audit section of the system report
// ---------------------------------------------------------------------------

TEST(Report, ProtocolAuditSectionAppearsWhenEnabled)
{
    sim::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.numChannels = 1;
    cfg.protocolCheck = true;
    auto mix = workload::randomMix(cfg.numCores, 1.0, 21);
    sim::Simulator sim(cfg, mix, sched::SchedulerSpec::frfcfs(), 21);
    sim.run(10'000, 40'000);
    ASSERT_NE(sim.protocolChecker(), nullptr);

    sim::SystemReport r = sim::SystemReport::collect(sim);
    EXPECT_TRUE(r.protocol.audited);
    EXPECT_GT(r.protocol.commandsAudited, 0u);
    EXPECT_EQ(r.protocol.violations, 0u);
}

TEST(Report, ProtocolAuditSectionAbsentByDefault)
{
    sim::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.numChannels = 1;
    auto mix = workload::randomMix(cfg.numCores, 1.0, 21);
    sim::Simulator sim(cfg, mix, sched::SchedulerSpec::frfcfs(), 21);
    sim.run(10'000, 20'000);
    EXPECT_EQ(sim.protocolChecker(), nullptr);
    sim::SystemReport r = sim::SystemReport::collect(sim);
    EXPECT_FALSE(r.protocol.audited);
}
