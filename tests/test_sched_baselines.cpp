/**
 * @file
 * Unit tests for the baseline thread-aware schedulers: ATLAS, PAR-BS
 * and STFM — plus the factory's name registry and structured errors.
 */

#include <memory>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "mem/controller.hpp"
#include "sched/atlas.hpp"
#include "sched/factory.hpp"
#include "sched/parbs.hpp"
#include "sched/stfm.hpp"

using namespace tcm;
using namespace tcm::sched;

namespace {

mem::Request
readReq(ThreadId t, ChannelId ch, BankId bank, RowId row, Cycle arrived,
        std::uint64_t seq)
{
    mem::Request r;
    r.thread = t;
    r.channel = ch;
    r.bank = bank;
    r.row = row;
    r.arrivedAt = arrived;
    r.seq = seq;
    return r;
}

} // namespace

// ---------------------------------------------------------------------------
// ATLAS
// ---------------------------------------------------------------------------

TEST(AtlasPolicy, LeastAttainedServiceRanksHighest)
{
    AtlasParams p;
    p.quantum = 1000;
    Atlas atlas(p);
    atlas.configure(3, 1, 4);

    // Thread 2 consumed the most service, thread 0 the least.
    atlas.onCommand(readReq(0, 0, 0, 0, 0, 1), dram::CommandKind::Read, 10,
                    50);
    atlas.onCommand(readReq(1, 0, 0, 0, 0, 2), dram::CommandKind::Read, 10,
                    500);
    atlas.onCommand(readReq(2, 0, 0, 0, 0, 3), dram::CommandKind::Read, 10,
                    5000);
    atlas.tick(1000);
    EXPECT_GT(atlas.rankOf(0, 0), atlas.rankOf(0, 1));
    EXPECT_GT(atlas.rankOf(0, 1), atlas.rankOf(0, 2));
}

TEST(AtlasPolicy, HistoryDecaysExponentially)
{
    AtlasParams p;
    p.quantum = 1000;
    p.historyWeight = 0.875;
    Atlas atlas(p);
    atlas.configure(1, 1, 4);
    atlas.onCommand(readReq(0, 0, 0, 0, 0, 1), dram::CommandKind::Read, 10,
                    800);
    atlas.tick(1000);
    EXPECT_NEAR(atlas.totalAttainedService()[0], 0.125 * 800, 1e-9);
    atlas.tick(2000); // idle quantum: total decays by alpha
    EXPECT_NEAR(atlas.totalAttainedService()[0], 0.875 * 0.125 * 800, 1e-9);
}

TEST(AtlasPolicy, AgingThresholdExposedToController)
{
    AtlasParams p;
    p.agingThreshold = 12345;
    Atlas atlas(p);
    EXPECT_EQ(atlas.agingThreshold(), 12345u);
}

TEST(AtlasPolicy, WeightsScaleAttainedService)
{
    AtlasParams p;
    p.quantum = 1000;
    Atlas atlas(p);
    atlas.configure(2, 1, 4);
    atlas.setThreadWeights({1, 8});
    // Equal raw service; the weighted thread appears under-served.
    atlas.onCommand(readReq(0, 0, 0, 0, 0, 1), dram::CommandKind::Read, 10,
                    800);
    atlas.onCommand(readReq(1, 0, 0, 0, 0, 2), dram::CommandKind::Read, 10,
                    800);
    atlas.tick(1000);
    EXPECT_GT(atlas.rankOf(0, 1), atlas.rankOf(0, 0));
}

TEST(AtlasPolicy, RanksAreAPermutation)
{
    AtlasParams p;
    p.quantum = 100;
    Atlas atlas(p);
    atlas.configure(5, 1, 4);
    for (Cycle now = 0; now < 1000; now += 100) {
        atlas.onCommand(readReq(now % 5, 0, 0, 0, now, now),
                        dram::CommandKind::Read, now, 100);
        atlas.tick(now);
    }
    std::set<int> ranks;
    for (ThreadId t = 0; t < 5; ++t)
        ranks.insert(atlas.rankOf(0, t));
    EXPECT_EQ(ranks.size(), 5u);
}

// ---------------------------------------------------------------------------
// PAR-BS (driven through a real controller for queue access)
// ---------------------------------------------------------------------------

namespace {

struct ParBsRig
{
    dram::TimingParams timing = dram::TimingParams::ddr2_800();
    ParBsParams params;
    std::unique_ptr<ParBs> parbs;
    std::unique_ptr<mem::MemoryController> mc;

    explicit ParBsRig(int threads, int batchCap = 5)
    {
        timing.refreshEnabled = false;
        params.batchCap = batchCap;
        parbs = std::make_unique<ParBs>(params);
        parbs->configure(threads, 1, timing.banksPerChannel);
        mc = std::make_unique<mem::MemoryController>(
            0, timing, mem::ControllerParams{}, *parbs);
        parbs->attachQueue(0, mc.get());
    }

    void
    run(Cycle from, Cycle cycles)
    {
        for (Cycle now = from; now < from + cycles; ++now) {
            parbs->tick(now);
            mc->tick(now);
        }
    }
};

} // namespace

TEST(ParBsPolicy, MarksUpToBatchCapPerThreadBank)
{
    ParBsRig rig(2, /*batchCap=*/3);
    // Thread 0: 5 requests to one bank; thread 1: 2 requests.
    for (int i = 0; i < 5; ++i)
        rig.mc->submitRead(0, i, 0, 5, i, 0);
    for (int i = 0; i < 2; ++i)
        rig.mc->submitRead(1, 10 + i, 1, 3, i, 0);
    // Let arrivals land, then form the batch (no commands issued yet at
    // cycle equal to arrival delay).
    Cycle arrive = rig.timing.cpuToMcDelay;
    rig.mc->tick(arrive);
    rig.parbs->tick(arrive);
    EXPECT_EQ(rig.parbs->markedRemaining(0), 3 + 2);
}

TEST(ParBsPolicy, ShorterJobRanksHigher)
{
    ParBsRig rig(2);
    for (int i = 0; i < 5; ++i)
        rig.mc->submitRead(0, i, 0, 5, i, 0);
    rig.mc->submitRead(1, 10, 1, 3, 0, 0);
    Cycle arrive = rig.timing.cpuToMcDelay;
    rig.mc->tick(arrive);
    rig.parbs->tick(arrive);
    EXPECT_GT(rig.parbs->rankOf(0, 1), rig.parbs->rankOf(0, 0));
}

TEST(ParBsPolicy, NewBatchFormsWhenMarkedDrains)
{
    ParBsRig rig(1, /*batchCap=*/2);
    for (int i = 0; i < 2; ++i)
        rig.mc->submitRead(0, i, 0, 5, i, 0);
    rig.run(0, 600);
    // First batch (2 marked) serviced; with an empty queue no new batch.
    EXPECT_EQ(rig.parbs->markedRemaining(0), 0);
    // A new request arrives (row conflict, so it cannot be serviced in
    // the same tick it is admitted): a fresh batch forms around it.
    rig.mc->submitRead(0, 10, 0, 9, 0, 600);
    rig.run(600, 100);
    EXPECT_EQ(rig.parbs->markedRemaining(0), 1);
}

TEST(ParBsPolicy, MarkedRequestsBeatUnmarkedEvenWithRowHit)
{
    ParBsRig rig(2, /*batchCap=*/8);
    // Batch forms around thread 0's conflict-row requests.
    rig.mc->submitRead(0, 1, 0, 9, 0, 0);
    Cycle arrive = rig.timing.cpuToMcDelay;
    rig.mc->tick(arrive);
    rig.parbs->tick(arrive);
    ASSERT_EQ(rig.parbs->markedRemaining(0), 1);
    // A later row-hit request from thread 1 (unmarked) must not overtake
    // (marked tier outranks row-hit tier).
    rig.mc->submitRead(1, 2, 0, 9, 1, arrive + 1);
    rig.run(arrive, 1000);
    ASSERT_EQ(rig.mc->completions().size(), 2u);
    EXPECT_EQ(rig.mc->completions()[0].missId, 1u);
}

TEST(ParBsPolicy, RowHitAboveRankKnobSet)
{
    ParBs p{ParBsParams{}};
    EXPECT_TRUE(p.rowHitAboveRank());
}

// ---------------------------------------------------------------------------
// STFM
// ---------------------------------------------------------------------------

TEST(StfmPolicy, NoInterferenceMeansNoPrioritization)
{
    StfmParams p;
    Stfm stfm(p);
    stfm.configure(2, 1, 4);
    // Thread 0 accumulates stall time with no one interfering.
    stfm.onArrival(readReq(0, 0, 0, 1, 0, 1), 0);
    for (Cycle now = 0; now < 5000; ++now)
        stfm.tick(now);
    EXPECT_EQ(stfm.rankOf(0, 0), stfm.rankOf(0, 1));
    EXPECT_NEAR(stfm.slowdownEstimate(0), 1.0, 0.01);
}

TEST(StfmPolicy, VictimOfBankInterferenceGetsPrioritized)
{
    StfmParams p;
    p.updatePeriod = 100;
    Stfm stfm(p);
    stfm.configure(2, 1, 4);

    // Thread 1 waits on bank 0 while thread 0 hogs it.
    stfm.onArrival(readReq(1, 0, 0, 7, 0, 100), 0);
    std::uint64_t seq = 0;
    for (Cycle now = 0; now < 20'000; now += 10) {
        mem::Request hog = readReq(0, 0, 0, 5, now, ++seq);
        stfm.onArrival(hog, now);
        stfm.onCommand(hog, dram::CommandKind::Read, now, 50);
        stfm.onDepart(hog, now + 5);
        for (Cycle c = now; c < now + 10; ++c)
            stfm.tick(c);
    }
    EXPECT_GT(stfm.slowdownEstimate(1), p.fairnessThreshold);
    EXPECT_GT(stfm.rankOf(0, 1), stfm.rankOf(0, 0));
}

TEST(StfmPolicy, RowConflictInterferenceCounted)
{
    StfmParams p;
    p.updatePeriod = 100;
    Stfm stfm(p);
    stfm.configure(2, 1, 4);

    // Thread 1 streams row 7; a shadow hit serviced via ACT signals that
    // another thread closed its row.
    mem::Request first = readReq(1, 0, 0, 7, 0, 1);
    stfm.onArrival(first, 0);
    stfm.onDepart(first, 10);
    mem::Request second = readReq(1, 0, 0, 7, 20, 2);
    stfm.onArrival(second, 20); // shadow hit
    stfm.onCommand(second, dram::CommandKind::Activate, 30, 75);
    double before = stfm.slowdownEstimate(1);
    for (Cycle now = 0; now < 500; ++now)
        stfm.tick(now);
    // Interference was recorded, so the alone-time estimate shrank.
    EXPECT_GE(stfm.slowdownEstimate(1), before);
}

TEST(StfmPolicy, IntervalHalvesStatistics)
{
    StfmParams p;
    p.intervalLength = 1000;
    p.updatePeriod = 100;
    Stfm stfm(p);
    stfm.configure(1, 1, 4);
    stfm.onArrival(readReq(0, 0, 0, 1, 0, 1), 0);
    for (Cycle now = 0; now < 999; ++now)
        stfm.tick(now);
    double s_before = stfm.slowdownEstimate(0);
    stfm.tick(1000); // halving happens; slowdown ratio is preserved
    EXPECT_NEAR(stfm.slowdownEstimate(0), s_before, 0.05);
}

// ---------------------------------------------------------------------------
// Factory: the name registry and its structured errors
// ---------------------------------------------------------------------------

TEST(Factory, EveryRegisteredNameConstructs)
{
    ASSERT_FALSE(policyNames().empty());
    for (const std::string &name : policyNames()) {
        SpecLookup lookup = specByName(name);
        ASSERT_TRUE(lookup.ok) << name << ": " << lookup.error;
        auto policy = makeScheduler(lookup.spec, /*seed=*/1);
        ASSERT_NE(policy, nullptr) << name;
        EXPECT_STRNE(policy->name(), "") << name;
        std::string error;
        EXPECT_NE(makeScheduler(name, /*seed=*/1, &error), nullptr)
            << name << ": " << error;
    }
}

TEST(Factory, UnknownNameReturnsErrorListingVocabulary)
{
    SpecLookup lookup = specByName("no-such-policy");
    EXPECT_FALSE(lookup.ok);
    EXPECT_NE(lookup.error.find("no-such-policy"), std::string::npos)
        << lookup.error;
    // The structured error must name every valid choice, so a caller's
    // typo message is self-correcting.
    for (const std::string &name : policyNames())
        EXPECT_NE(lookup.error.find(name), std::string::npos)
            << "error does not list '" << name << "': " << lookup.error;

    std::string error;
    EXPECT_EQ(makeScheduler("no-such-policy", /*seed=*/1, &error), nullptr);
    EXPECT_EQ(error, lookup.error);
}

TEST(Factory, TournamentRejectsInvalidCandidates)
{
    SchedulerSpec spec = SchedulerSpec::tournamentSpec();
    spec.tournamentCandidates = {Algo::Tcm, Algo::ParBs};
    EXPECT_THROW(makeScheduler(spec, 1), std::invalid_argument);
    spec.tournamentCandidates = {Algo::Tournament};
    EXPECT_THROW(makeScheduler(spec, 1), std::invalid_argument);
    spec.tournamentCandidates.clear();
    EXPECT_THROW(makeScheduler(spec, 1), std::invalid_argument);
    spec.tournamentCandidates = {Algo::Tcm, Algo::Atlas, Algo::Bliss};
    EXPECT_NE(makeScheduler(spec, 1), nullptr);
}
