/**
 * @file
 * Cross-policy conformance suite: every factory-registered scheduler
 * must honor the fast-path contracts the event-horizon kernel and the
 * intra-run parallel driver are built on. The suite iterates
 * sched::policyNames(), so a policy added to the factory is enrolled
 * automatically — forgetting to test a new policy is impossible.
 *
 * Three contracts are checked per policy:
 *  1. nextEventAt never under-predicts: against a per-cycle oracle rig,
 *     whenever tick() changes observable state (rank epoch, rank
 *     vector, or any prioritization knob), the prediction queried just
 *     before that tick must have said "event at now". Rank/knob
 *     mutations — in ticks or hooks — must also bump the rank epoch
 *     (the controllers' snapshot-cache discipline).
 *  2. decoupleHorizon is a no-op-tick proof: ticking through
 *     [now, decoupleHorizon(now)) with every observation hook withheld
 *     must leave the epoch, ranks and knobs untouched.
 *  3. Execution-mode bit-identity: the per-cycle oracle, the cycle-skip
 *     kernel, and the gang-stepped intra-parallel driver (2 workers)
 *     produce identical per-thread IPCs and byte-identical telemetry.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "mem/controller.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "telemetry/sink.hpp"
#include "workload/mixes.hpp"

using namespace tcm;

namespace {

std::string
paramName(const testing::TestParamInfo<std::string> &info)
{
    std::string n = info.param;
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

class PolicyConformance : public testing::TestWithParam<std::string>
{
  protected:
    /** Fresh instance of the parameterized policy, time-scaled so its
     *  quanta/intervals actually fire within @p runCycles. */
    std::unique_ptr<mem::SchedulerPolicy>
    makePolicy(Cycle runCycles)
    {
        sched::SpecLookup lookup = sched::specByName(GetParam());
        EXPECT_TRUE(lookup.ok) << lookup.error;
        lookup.spec.scaleToRun(runCycles);
        return sched::makeScheduler(lookup.spec, /*seed=*/21);
    }
};

/** Everything a controller can observe about a policy: the rank epoch,
 *  the full rank vector, and the prioritization knobs. */
struct Snapshot
{
    std::uint64_t epoch = 0;
    Cycle aging = 0;
    bool rowHitAboveRank = false;
    bool useRowHit = false;
    std::vector<int> ranks;

    static Snapshot
    of(const mem::SchedulerPolicy &p, int channels, int threads)
    {
        Snapshot s;
        s.epoch = p.rankEpoch();
        s.aging = p.agingThreshold();
        s.rowHitAboveRank = p.rowHitAboveRank();
        s.useRowHit = p.useRowHit();
        s.ranks.reserve(static_cast<std::size_t>(channels) * threads);
        for (ChannelId ch = 0; ch < channels; ++ch)
            for (ThreadId t = 0; t < threads; ++t)
                s.ranks.push_back(p.rankOf(ch, t));
        return s;
    }

    bool
    visibleEquals(const Snapshot &o) const
    {
        return aging == o.aging && rowHitAboveRank == o.rowHitAboveRank &&
               useRowHit == o.useRowHit && ranks == o.ranks;
    }

    bool
    equals(const Snapshot &o) const
    {
        return epoch == o.epoch && visibleEquals(o);
    }
};

/** Per-cycle oracle rig: the policy driving two real controllers under
 *  randomized skewed traffic, stepped strictly one cycle at a time in
 *  canonical order (policy tick, then controllers channel 0..N-1). */
struct OracleRig
{
    static constexpr int kThreads = 4;
    static constexpr int kChannels = 2;

    dram::TimingParams timing = dram::TimingParams::ddr2_800();
    std::unique_ptr<mem::SchedulerPolicy> policy;
    std::vector<std::unique_ptr<mem::MemoryController>> mcs;
    std::vector<mem::CoreCounters> counters;
    Pcg32 rng{77};
    std::uint64_t nextId = 1;

    explicit OracleRig(std::unique_ptr<mem::SchedulerPolicy> p)
        : policy(std::move(p))
    {
        policy->configure(kThreads, kChannels, timing.banksPerChannel);
        counters.resize(kThreads);
        policy->setCoreCounters(&counters);
        for (ChannelId ch = 0; ch < kChannels; ++ch) {
            mcs.push_back(std::make_unique<mem::MemoryController>(
                ch, timing, mem::ControllerParams{}, *policy));
            policy->attachQueue(ch, mcs.back().get());
        }
    }

    /** Maybe inject reads this cycle (skewed toward thread 0 so
     *  streak/service-driven policies actually change ranks). */
    void
    inject(Cycle now)
    {
        for (ChannelId ch = 0; ch < kChannels; ++ch) {
            if (!rng.nextBool(0.25) || !mcs[ch]->canAcceptRead())
                continue;
            ThreadId t = rng.nextBool(0.5)
                             ? 0
                             : static_cast<ThreadId>(
                                   rng.nextBelow(kThreads));
            mcs[ch]->submitRead(
                t, nextId++,
                static_cast<BankId>(rng.nextBelow(timing.banksPerChannel)),
                static_cast<RowId>(rng.nextBelow(4)),
                static_cast<ColId>(rng.nextBelow(timing.colsPerRow)), now);
            // Feed the counters so quantum-scored policies (Tournament)
            // see non-degenerate instruction deltas.
            counters[t].instructions += 50;
            counters[t].readMisses += 1;
        }
    }

    /** Controllers' portion of one canonical cycle. */
    void
    tickControllers(Cycle now)
    {
        for (auto &mc : mcs) {
            mc->tick(now);
            mc->completions().clear();
        }
    }
};

} // namespace

// ---------------------------------------------------------------------------
// Contract 1: nextEventAt vs the per-cycle oracle, plus rank-epoch
// discipline for every rank/knob mutation.
// ---------------------------------------------------------------------------

TEST_P(PolicyConformance, NextEventAtNeverUnderPredicts)
{
    constexpr Cycle kCycles = 60'000;
    OracleRig rig(makePolicy(kCycles));

    std::uint64_t tickEvents = 0;
    for (Cycle now = 0; now < kCycles; ++now) {
        rig.inject(now);

        // The prediction the simulator would act on at this cycle: every
        // hook from cycle now-1 has been delivered, none from now yet.
        const Cycle ne = rig.policy->nextEventAt(now);
        const Cycle dh = rig.policy->decoupleHorizon(now);
        ASSERT_GE(dh, now) << "decoupleHorizon went backwards at " << now;

        Snapshot before = Snapshot::of(*rig.policy, OracleRig::kChannels,
                                       OracleRig::kThreads);
        rig.policy->tick(now);
        Snapshot afterTick = Snapshot::of(*rig.policy, OracleRig::kChannels,
                                          OracleRig::kThreads);

        if (!afterTick.equals(before)) {
            ++tickEvents;
            // tick() did something observable, so the pre-tick query had
            // to predict an event no later than now.
            ASSERT_LE(ne, now)
                << GetParam() << ": tick at " << now
                << " changed state but nextEventAt said " << ne;
        }
        if (!afterTick.visibleEquals(before))
            ASSERT_NE(afterTick.epoch, before.epoch)
                << GetParam() << ": rank/knob change at tick " << now
                << " without a rank-epoch bump";

        rig.tickControllers(now);
        Snapshot afterHooks = Snapshot::of(*rig.policy, OracleRig::kChannels,
                                           OracleRig::kThreads);
        // Hook-driven mutations are allowed (the simulator re-queries
        // every executed cycle) but must still respect epoch discipline.
        if (!afterHooks.visibleEquals(afterTick))
            ASSERT_NE(afterHooks.epoch, afterTick.epoch)
                << GetParam() << ": rank/knob change in hooks at " << now
                << " without a rank-epoch bump";
    }
    // FR-FCFS-family policies legitimately never have timed events; every
    // adaptive policy must have fired at least once or the run above
    // proved nothing.
    if (rig.policy->nextEventAt(kCycles) != kCycleNever)
        EXPECT_GT(tickEvents, 0u)
            << GetParam() << ": no timed event fired in " << kCycles
            << " cycles — scale the rig so the contract is exercised";
}

// ---------------------------------------------------------------------------
// Contract 2: decoupleHorizon's no-op-tick proof with hooks withheld.
// ---------------------------------------------------------------------------

TEST_P(PolicyConformance, DecoupleHorizonTicksAreNoOps)
{
    constexpr Cycle kWarm = 30'000;
    OracleRig rig(makePolicy(kWarm));

    // Warm the policy up with real traffic, then drain so in-flight
    // transport can't blur "hooks withheld" (nothing left to arrive).
    for (Cycle now = 0; now < kWarm; ++now) {
        rig.inject(now);
        rig.policy->tick(now);
        rig.tickControllers(now);
    }
    Cycle now = kWarm;
    for (; now < kWarm + 20'000; ++now) {
        rig.policy->tick(now);
        rig.tickControllers(now);
    }

    // The decoupled span the parallel kernel would run concurrently.
    // Cap kCycleNever-style horizons: 3000 no-op ticks prove the point.
    const Cycle dh = rig.policy->decoupleHorizon(now);
    ASSERT_GE(dh, now);
    const Cycle end = std::min(dh, now + 3'000);

    Snapshot base = Snapshot::of(*rig.policy, OracleRig::kChannels,
                                 OracleRig::kThreads);
    for (Cycle c = now; c < end; ++c) {
        rig.policy->tick(c); // hooks deliberately withheld
        Snapshot s = Snapshot::of(*rig.policy, OracleRig::kChannels,
                                  OracleRig::kThreads);
        ASSERT_TRUE(s.equals(base))
            << GetParam() << ": tick at " << c << " inside the decoupled "
            << "span [" << now << ", " << dh << ") changed state";
    }
}

// ---------------------------------------------------------------------------
// Contract 3: bit-identical results across the per-cycle oracle, the
// cycle-skip kernel, and the gang-stepped driver.
// ---------------------------------------------------------------------------

namespace {

struct ModeResult
{
    std::vector<double> ipc;
    std::string telemetry;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

ModeResult
runMode(const std::string &policyName, bool cycleSkip, int workers,
        const std::string &tag)
{
    sim::SystemConfig config;
    config.numCores = 6;
    config.numChannels = 2;
    config.cycleSkip = cycleSkip;
    config.intraRunParallel = workers;
    config.telemetry.enabled = true;
    config.telemetry.sampleInterval = 5'000;

    sched::SpecLookup lookup = sched::specByName(policyName);
    EXPECT_TRUE(lookup.ok) << lookup.error;
    lookup.spec.scaleToRun(70'000);

    auto mix = workload::randomMix(6, 0.5, /*seed=*/42);
    sim::Simulator sim(config, mix, lookup.spec, /*seed=*/13);

    telemetry::TelemetrySink sink(config.telemetry);
    sim.attachTelemetry(&sink);

    sim.run(/*warmup=*/10'000, /*measure=*/60'000);

    ModeResult r;
    for (ThreadId t = 0; t < sim.numThreads(); ++t)
        r.ipc.push_back(sim.measuredIpc(t));

    std::filesystem::path path = std::filesystem::temp_directory_path() /
                                 ("tcmsim_conformance_" + tag + ".jsonl");
    sink.writeJsonl(path.string());
    r.telemetry = readFile(path.string());
    std::filesystem::remove(path);
    return r;
}

} // namespace

TEST_P(PolicyConformance, ExecutionModesAreBitIdentical)
{
    std::string name = paramName(
        testing::TestParamInfo<std::string>(GetParam(), 0));

    // The per-cycle serial loop is the oracle every other mode must hit.
    ModeResult oracle = runMode(GetParam(), /*cycleSkip=*/false,
                                /*workers=*/1, name + "_oracle");
    ASSERT_FALSE(oracle.ipc.empty());
    for (double ipc : oracle.ipc)
        ASSERT_GT(ipc, 0.0);

    struct Mode
    {
        bool cycleSkip;
        int workers;
        const char *label;
    };
    const Mode modes[] = {
        {true, 1, "skip_w1"},
        {false, 2, "oracle_w2"},
        {true, 2, "skip_w2"},
    };
    for (const Mode &m : modes) {
        ModeResult r =
            runMode(GetParam(), m.cycleSkip, m.workers,
                    name + "_" + m.label);
        ASSERT_EQ(oracle.ipc.size(), r.ipc.size()) << m.label;
        for (std::size_t t = 0; t < oracle.ipc.size(); ++t)
            EXPECT_EQ(oracle.ipc[t], r.ipc[t])
                << GetParam() << " " << m.label << " thread " << t;
        EXPECT_EQ(oracle.telemetry, r.telemetry)
            << GetParam() << " " << m.label
            << ": telemetry stream diverged";
    }
}

INSTANTIATE_TEST_SUITE_P(Registry, PolicyConformance,
                         testing::ValuesIn(sched::policyNames()),
                         paramName);
