/**
 * @file
 * Unit tests for scheduler helpers, simple policies and the factory.
 */

#include <gtest/gtest.h>

#include "sched/factory.hpp"
#include "sched/fcfs.hpp"
#include "sched/fixed_rank.hpp"
#include "sched/frfcfs.hpp"
#include "sched/scheduler.hpp"

using namespace tcm;
using namespace tcm::sched;

// ---------------------------------------------------------------------------
// ascendingPositions
// ---------------------------------------------------------------------------

TEST(Helpers, AscendingPositionsSimple)
{
    EXPECT_EQ(ascendingPositions({3.0, 1.0, 2.0}),
              (std::vector<int>{2, 0, 1}));
}

TEST(Helpers, AscendingPositionsTieBreaksByIndex)
{
    EXPECT_EQ(ascendingPositions({1.0, 1.0, 1.0}),
              (std::vector<int>{0, 1, 2}));
}

TEST(Helpers, AscendingPositionsEmpty)
{
    EXPECT_TRUE(ascendingPositions({}).empty());
}

TEST(Helpers, RanksFromOrder)
{
    // Order lists lowest priority first.
    auto ranks = ranksFromOrder({2, 0, 1}, 3, 10);
    EXPECT_EQ(ranks[2], 10);
    EXPECT_EQ(ranks[0], 11);
    EXPECT_EQ(ranks[1], 12);
}

// ---------------------------------------------------------------------------
// Simple policies
// ---------------------------------------------------------------------------

TEST(SimplePolicies, FrFcfsDefaults)
{
    FrFcfs s;
    s.configure(4, 2, 4);
    EXPECT_STREQ(s.name(), "FR-FCFS");
    EXPECT_EQ(s.rankOf(0, 0), s.rankOf(1, 3));
    EXPECT_EQ(s.agingThreshold(), kCycleNever);
    EXPECT_TRUE(s.useRowHit());
    EXPECT_FALSE(s.rowHitAboveRank());
}

TEST(SimplePolicies, FcfsDisablesRowHit)
{
    Fcfs s;
    EXPECT_FALSE(s.useRowHit());
}

TEST(SimplePolicies, FixedRankReturnsConfiguredRanks)
{
    FixedRank s({5, 1, 9});
    s.configure(3, 1, 4);
    EXPECT_EQ(s.rankOf(0, 0), 5);
    EXPECT_EQ(s.rankOf(0, 1), 1);
    EXPECT_EQ(s.rankOf(0, 2), 9);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(Factory, BuildsEveryAlgorithm)
{
    for (Algo algo : {Algo::FrFcfs, Algo::Fcfs, Algo::Stfm, Algo::ParBs,
                      Algo::Atlas, Algo::Tcm}) {
        SchedulerSpec spec;
        spec.algo = algo;
        auto policy = makeScheduler(spec, 1);
        ASSERT_NE(policy, nullptr);
        EXPECT_STREQ(policy->name(), algoName(algo));
    }
}

TEST(Factory, FixedRankCarriesRanks)
{
    auto policy = makeScheduler(SchedulerSpec::fixedRank({1, 0}), 1);
    policy->configure(2, 1, 4);
    EXPECT_GT(policy->rankOf(0, 0), policy->rankOf(0, 1));
}

TEST(Factory, ScaleToRunAdjustsQuanta)
{
    SchedulerSpec spec = SchedulerSpec::tcmSpec();
    spec.scaleToRun(100'000'000);
    EXPECT_EQ(spec.tcm.quantum, 1'000'000u);   // the paper's values at
    EXPECT_EQ(spec.atlas.quantum, 10'000'000u); // the paper's run length

    spec.scaleToRun(300'000);
    EXPECT_EQ(spec.tcm.quantum, 50'000u); // shuffle-rotation floor
    EXPECT_EQ(spec.atlas.quantum, 30'000u);
    // The aging threshold is an absolute timeout: never scaled.
    EXPECT_EQ(spec.atlas.agingThreshold, 100'000u);
}

TEST(Factory, DefaultsMatchPaperSectionSix)
{
    SchedulerSpec spec;
    EXPECT_DOUBLE_EQ(spec.tcm.clusterThreshNumerator, 4.0);
    EXPECT_EQ(spec.tcm.shuffleInterval, 800u);
    EXPECT_DOUBLE_EQ(spec.tcm.shuffleAlgoThresh, 0.1);
    EXPECT_EQ(spec.parbs.batchCap, 5);
    EXPECT_DOUBLE_EQ(spec.atlas.historyWeight, 0.875);
    EXPECT_DOUBLE_EQ(spec.stfm.fairnessThreshold, 1.1);
    EXPECT_EQ(spec.stfm.intervalLength, Cycle{1} << 24);
}
