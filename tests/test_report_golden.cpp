/**
 * @file
 * Golden-file tests for the post-run report renderers: the printed
 * tables and the CSV files of a fixed-seed run are diffed byte-for-byte
 * against recorded copies in tests/data/. Formatting is part of the
 * contract — scripts parse these files — so any change at all (a
 * column, a width, a precision) fails here. When a deliberate change
 * moves the output, regenerate with
 *   TCMSIM_REGOLD=1 ctest -R test_report_golden
 * and explain the change in the commit.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

using namespace tcm;

namespace {

/** The fixed run every golden in this file is recorded from. */
sim::SystemReport
goldenReport(bool enableProbe)
{
    sim::SystemConfig config;
    config.numCores = 4;
    config.numChannels = 2;
    auto mix = workload::randomMix(config.numCores, 1.0, 11);
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(50'000);
    sim::Simulator sim(config, mix, spec, /*seed=*/7, enableProbe);
    sim.run(5'000, 50'000);
    return sim::SystemReport::collect(sim, {"lat0", "lat1", "bw0", "bw1"});
}

/** Render SystemReport::print into a string via a temp stream. */
std::string
printToString(const sim::SystemReport &report)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    report.print(f);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::rewind(f);
    std::string text(static_cast<std::size_t>(size), '\0');
    EXPECT_EQ(std::fread(text.data(), 1, text.size(), f), text.size());
    std::fclose(f);
    return text;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Compare @p actual against the golden at data/<name>; with
 * TCMSIM_REGOLD set, rewrite the golden instead and skip.
 */
void
checkGolden(const std::string &name, const std::string &actual)
{
    const std::string path = std::string(TCMSIM_GOLDEN_DIR) + "/" + name;
    if (std::getenv("TCMSIM_REGOLD") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "golden report regenerated at " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run once with TCMSIM_REGOLD=1 to record it)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "report output drifted from " << path;
}

} // namespace

TEST(ReportGolden, PrintedTablesAreBitStable)
{
    checkGolden("report_table_tcm_seed7.txt",
                printToString(goldenReport(/*enableProbe=*/true)));
}

TEST(ReportGolden, CsvFilesAreBitStable)
{
    sim::SystemReport report = goldenReport(/*enableProbe=*/true);
    std::string prefix = testing::TempDir() + "report_golden";
    report.writeCsv(prefix);
    // GTEST_SKIP inside the helper returns only from it, so one REGOLD
    // run regenerates both files.
    checkGolden("report_threads_tcm_seed7.csv",
                readFile(prefix + "_threads.csv"));
    checkGolden("report_channels_tcm_seed7.csv",
                readFile(prefix + "_channels.csv"));
}

TEST(ReportGolden, ProbelessRunRendersNaNotZero)
{
    sim::SystemReport report = goldenReport(/*enableProbe=*/false);
    for (const sim::ThreadReport &t : report.threads)
        EXPECT_FALSE(t.behaviorProbed);

    std::string table = printToString(report);
    EXPECT_NE(table.find("n/a"), std::string::npos)
        << "unprobed RBL/BLP must render n/a, not 0";

    std::string prefix = testing::TempDir() + "report_na";
    report.writeCsv(prefix);
    std::string csv = readFile(prefix + "_threads.csv");
    // Empty rbl and blp cells: ...,<mpki>,,,<reads>,...
    EXPECT_NE(csv.find(",,,"), std::string::npos)
        << "unprobed CSV gauges must be empty cells";

    // And a probed run renders numbers, never the placeholder.
    std::string probed = printToString(goldenReport(/*enableProbe=*/true));
    EXPECT_EQ(probed.find("n/a"), std::string::npos);
}
