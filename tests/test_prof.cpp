/**
 * @file
 * Observer-purity and reporting tests for the simulator self-profiler
 * (tcm::prof). The load-bearing contract: attaching a profiler changes
 * NOTHING the simulation produces — every RunResult field, every
 * telemetry JSONL byte, and the golden DRAM command trace are
 * bit-identical with the profiler on or off, across both execution
 * kernels (per-cycle oracle and cycle-skip) and every worker-lane
 * count. The profiler may read the wall clock; the simulation may not.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dram/observer.hpp"
#include "prof/profiler.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

using namespace tcm;

namespace {

/** Small but contended: enough threads and channels for real scan and
 *  skip activity, fast enough for a 2-kernel x 3-worker matrix. */
sim::SystemConfig
profConfig(bool cycleSkip, int workers, bool profiled)
{
    sim::SystemConfig config;
    config.numCores = 6;
    config.numChannels = 2;
    config.cycleSkip = cycleSkip;
    config.intraRunParallel = workers;
    config.telemetry.enabled = true;
    config.telemetry.sampleInterval = 5'000;
    config.profile.enabled = profiled;
    return config;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Serialize a run's telemetry to JSONL and return the bytes. */
std::string
telemetryBytes(const sim::RunResult &r, const std::string &tag)
{
    EXPECT_TRUE(r.telemetry != nullptr);
    std::filesystem::path path = std::filesystem::temp_directory_path() /
                                 ("tcmsim_prof_" + tag + ".jsonl");
    r.telemetry->writeJsonl(path.string());
    std::string bytes = readFile(path.string());
    std::filesystem::remove(path);
    return bytes;
}

sim::RunResult
runAt(const sched::SchedulerSpec &spec, bool cycleSkip, int workers,
      bool profiled, const sim::ExperimentScale &scale,
      const std::vector<workload::ThreadProfile> &mix)
{
    sim::SystemConfig cfg = profConfig(cycleSkip, workers, profiled);
    sim::AloneIpcCache cache(cfg, scale.warmup, scale.measure);
    return sim::runWorkload(cfg, mix, spec, scale, cache, /*seed=*/13);
}

void
expectIdentical(const sim::RunResult &plain, const sim::RunResult &prof,
                const std::string &tag)
{
    ASSERT_EQ(plain.ipcShared.size(), prof.ipcShared.size());
    for (std::size_t t = 0; t < plain.ipcShared.size(); ++t) {
        EXPECT_EQ(plain.ipcShared[t], prof.ipcShared[t])
            << tag << " thread " << t;
        EXPECT_EQ(plain.ipcAlone[t], prof.ipcAlone[t])
            << tag << " thread " << t;
    }
    EXPECT_EQ(plain.metrics.weightedSpeedup, prof.metrics.weightedSpeedup)
        << tag;
    EXPECT_EQ(plain.metrics.maxSlowdown, prof.metrics.maxSlowdown) << tag;
    EXPECT_EQ(plain.metrics.harmonicSpeedup, prof.metrics.harmonicSpeedup)
        << tag;
    EXPECT_EQ(plain.metrics.speedups, prof.metrics.speedups) << tag;
    EXPECT_EQ(plain.metrics.slowdowns, prof.metrics.slowdowns) << tag;

    // The telemetry JSONL stream is part of the bit-identity contract:
    // the profiler's "simulator" lane lives only in the Chrome trace.
    EXPECT_EQ(telemetryBytes(plain, tag + "_plain"),
              telemetryBytes(prof, tag + "_prof"))
        << tag;
}

} // namespace

// ---------------------------------------------------------------------------
// Bit-identity: profiler on vs off, across kernels and worker counts.
// ---------------------------------------------------------------------------

TEST(ProfilerPurity, BitIdenticalAcrossKernelsAndWorkers)
{
    // The env fallback must not contaminate the profiled=false legs.
    ::unsetenv("TCMSIM_PROFILE");

    sim::ExperimentScale scale;
    scale.warmup = 20'000;
    scale.measure = 120'000;
    auto mix = workload::randomMix(6, 0.5, /*seed=*/42);

    for (const sched::SchedulerSpec &spec :
         {sched::SchedulerSpec::frfcfs(), sched::SchedulerSpec::tcmSpec()}) {
        for (bool cycleSkip : {false, true}) {
            for (int workers : {1, 2, 4}) {
                std::string tag = std::string(sched::algoName(spec.algo)) +
                                  (cycleSkip ? "_skip" : "_oracle") + "_w" +
                                  std::to_string(workers);
                sim::RunResult plain =
                    runAt(spec, cycleSkip, workers, false, scale, mix);
                sim::RunResult prof =
                    runAt(spec, cycleSkip, workers, true, scale, mix);
                EXPECT_EQ(plain.profile, nullptr) << tag;
                ASSERT_NE(prof.profile, nullptr) << tag;
                EXPECT_TRUE(prof.profile->enabled) << tag;
                expectIdentical(plain, prof, tag);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Command-stream identity: a profiled run reproduces the same committed
// golden DRAM command trace the unprofiled kernels are pinned to
// (test_golden / test_cycleskip / test_intra_parallel).
// ---------------------------------------------------------------------------

namespace {

std::string
commandTrace(bool cycleSkip, int workers, bool profiled,
             std::size_t events)
{
    sim::SystemConfig config;
    config.numCores = 2;
    config.numChannels = 1;
    config.cycleSkip = cycleSkip;
    config.intraRunParallel = workers;
    auto mix = workload::randomMix(config.numCores, 1.0, /*seed=*/99);
    sched::SchedulerSpec spec = sched::SchedulerSpec::frfcfs();
    spec.scaleToRun(30'000);

    sim::Simulator sim(config, mix, spec, /*seed=*/99);
    prof::Profiler profiler;
    if (profiled)
        sim.attachProfiler(&profiler);
    dram::CommandTraceRecorder recorder(events);
    sim.attachCommandObserver(&recorder);
    sim.step(30'000);
    EXPECT_TRUE(recorder.full());
    return recorder.text();
}

} // namespace

TEST(ProfilerPurity, GoldenCommandTraceUnchanged)
{
    constexpr std::size_t kEvents = 400;
    const std::string golden = readFile(
        std::string(TCMSIM_GOLDEN_DIR) + "/cmd_trace_frfcfs_seed99.txt");
    for (bool cycleSkip : {false, true})
        for (int workers : {1, 2})
            EXPECT_EQ(commandTrace(cycleSkip, workers, true, kEvents),
                      golden)
                << "cycleSkip=" << cycleSkip << " workers=" << workers;
}

// ---------------------------------------------------------------------------
// Report content: the profile of a real run must actually explain it.
// ---------------------------------------------------------------------------

TEST(ProfilerReport, EveryRegisteredSchedulerGetsHorizonAttribution)
{
    // The acceptance bar behind `sweep --profile`: under the cycle-skip
    // kernel every registered policy's runs take horizon jumps, and the
    // profiler attributes every one of them to a source.
    const char *names[] = {"frfcfs", "fcfs",   "fqm",       "stfm",
                           "parbs",  "atlas",  "tcm",       "bliss",
                           "ght",    "frfcfs-cp", "tournament"};
    auto mix = workload::randomMix(4, 0.5, /*seed=*/11);
    for (const char *name : names) {
        sched::SpecLookup lookup = sched::specByName(name);
        ASSERT_TRUE(lookup.ok) << name;
        sched::SchedulerSpec spec = lookup.spec;
        spec.scaleToRun(80'000);

        sim::SystemConfig config;
        config.numCores = 4;
        config.numChannels = 2;
        config.cycleSkip = true;
        sim::Simulator sim(config, mix, spec, /*seed=*/3);
        prof::Profiler profiler;
        sim.attachProfiler(&profiler);
        sim.step(80'000);

        prof::ProfileReport r = profiler.report();
        EXPECT_GT(r.totalSkips(), 0u) << name;
        EXPECT_EQ(r.totalSkips(), r.skipLengths.count()) << name;
        EXPECT_GT(r.totalSkippedCycles(), 0u) << name;
        // Phase timers ran: the controller tick phase is exercised by
        // every policy, and calls imply accumulated (possibly tiny) ns.
        EXPECT_GT(r.phaseCalls[static_cast<int>(prof::Phase::CtrlTick)],
                  0u)
            << name;
        // Every simulated core cycle lands in exactly one regime bucket.
        ASSERT_EQ(r.coreRegimes.size(), 4u) << name;
        for (const auto &core : r.coreRegimes) {
            std::uint64_t total = 0;
            for (std::uint64_t c : core)
                total += c;
            EXPECT_EQ(total, 80'000u) << name;
        }
        EXPECT_GT(r.scan.soaScans + r.scan.fallbackScans, 0u) << name;
    }
}

TEST(ProfilerReport, RegimeAccountingCoversEveryCycleUnderGang)
{
    auto mix = workload::randomMix(6, 0.5, /*seed=*/42);
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(60'000);
    sim::SystemConfig config = profConfig(true, 4, false);
    sim::Simulator sim(config, mix, spec, /*seed=*/13);
    prof::Profiler profiler;
    sim.attachProfiler(&profiler);
    sim.step(60'000);

    prof::ProfileReport r = profiler.report();
    ASSERT_EQ(r.coreRegimes.size(), 6u);
    for (const auto &core : r.coreRegimes) {
        std::uint64_t total = 0;
        for (std::uint64_t c : core)
            total += c;
        EXPECT_EQ(total, 60'000u);
    }
    // The gang ran and its lane-imbalance slots were populated through
    // the per-lane hooks (merged shard totals, not just lane 0).
    EXPECT_EQ(r.gangLanes, 4);
    ASSERT_EQ(r.laneTasks.size(), 4u);
    std::uint64_t tasks = 0;
    for (std::uint64_t t : r.laneTasks)
        tasks += t;
    EXPECT_GT(tasks, 0u);
    EXPECT_GT(r.phaseCalls[static_cast<int>(prof::Phase::GangRun)], 0u);
    EXPECT_GT(r.phaseCalls[static_cast<int>(prof::Phase::Replay)], 0u);
}

TEST(ProfilerReport, MergeAddsRunsAndCounts)
{
    prof::ProfileReport a, b;
    a.enabled = true;
    a.runs = 1;
    a.phaseNs[0] = 100;
    a.phaseCalls[0] = 2;
    a.skipCount[0] = 3;
    a.skipCycles[0] = 300;
    a.coreRegimes.assign(2, {});
    a.coreRegimes[0][0] = 7;
    b = a;
    b.coreRegimes.assign(4, {});
    b.coreRegimes[3][2] = 5;

    a.merge(b);
    EXPECT_EQ(a.runs, 2);
    EXPECT_EQ(a.phaseNs[0], 200u);
    EXPECT_EQ(a.phaseCalls[0], 4u);
    EXPECT_EQ(a.skipCount[0], 6u);
    EXPECT_EQ(a.skipCycles[0], 600u);
    ASSERT_EQ(a.coreRegimes.size(), 4u);
    EXPECT_EQ(a.coreRegimes[0][0], 7u);
    EXPECT_EQ(a.coreRegimes[3][2], 5u);

    prof::ProfileReport disabled;
    int runsBefore = a.runs;
    a.merge(disabled); // merging a never-enabled report is a no-op
    EXPECT_EQ(a.runs, runsBefore);
}

TEST(ProfilerReport, ProvenanceKeysAreSchemaStable)
{
    prof::ProfileReport r;
    r.enabled = true;
    r.runs = 1;
    auto kv = r.provenance();
    // Fixed order: 8 phase_ms keys, 4 skip summary keys, 5 horizon
    // sources, 3 regimes, 3 scan counters = 23 entries.
    ASSERT_EQ(kv.size(), 23u);
    EXPECT_EQ(kv[0].first, "sched_tick_ms");
    EXPECT_EQ(kv[7].first, "serialize_ms");
    EXPECT_EQ(kv[8].first, "skips");
    EXPECT_EQ(kv[11].first, "skip_max");
    EXPECT_EQ(kv[12].first, "horizon_scheduler");
    EXPECT_EQ(kv[16].first, "horizon_end");
    EXPECT_EQ(kv[17].first, "dormant_cycles");
    EXPECT_EQ(kv[22].first, "fallback_scans");
}

TEST(ProfilerReport, JsonAndPrintAreWellFormed)
{
    auto mix = workload::randomMix(4, 0.5, /*seed=*/11);
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(40'000);
    sim::SystemConfig config;
    config.numCores = 4;
    sim::Simulator sim(config, mix, spec, /*seed=*/3);
    prof::Profiler profiler;
    sim.attachProfiler(&profiler);
    sim.step(40'000);

    prof::ProfileReport r = profiler.report();
    std::string json = r.toJson();
    EXPECT_NE(json.find("\"schema\": \"tcmsim-profile-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"horizon\""), std::string::npos);
    EXPECT_NE(json.find("\"regimes\""), std::string::npos);

    // print() renders through the SystemReport path without tripping on
    // any section; the disabled default renders nothing at all.
    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    sim::SystemReport report = sim::SystemReport::collect(sim);
    report.addProfile(r);
    report.print(f);
    long withProfile = std::ftell(f);
    std::rewind(f);
    sim::SystemReport bare = sim::SystemReport::collect(sim);
    bare.print(f);
    long without = std::ftell(f);
    std::fclose(f);
    EXPECT_GT(withProfile, without);
}

// ---------------------------------------------------------------------------
// Configuration plumbing.
// ---------------------------------------------------------------------------

TEST(ProfileConfig, FromEnvContract)
{
    ::unsetenv("TCMSIM_PROFILE");
    EXPECT_FALSE(prof::ProfileConfig::fromEnv().enabled);

    ::setenv("TCMSIM_PROFILE", "", 1);
    EXPECT_FALSE(prof::ProfileConfig::fromEnv().enabled);

    ::setenv("TCMSIM_PROFILE", "0", 1);
    EXPECT_FALSE(prof::ProfileConfig::fromEnv().enabled);

    ::setenv("TCMSIM_PROFILE", "1", 1);
    prof::ProfileConfig on = prof::ProfileConfig::fromEnv();
    EXPECT_TRUE(on.enabled);
    EXPECT_TRUE(on.dir.empty());

    ::setenv("TCMSIM_PROFILE", "/tmp/prof_out", 1);
    prof::ProfileConfig dir = prof::ProfileConfig::fromEnv();
    EXPECT_TRUE(dir.enabled);
    EXPECT_EQ(dir.dir, "/tmp/prof_out");

    ::unsetenv("TCMSIM_PROFILE");
}

TEST(ProfileConfig, RunWorkloadWritesProfileJson)
{
    ::unsetenv("TCMSIM_PROFILE");
    std::filesystem::path dir = std::filesystem::temp_directory_path() /
                                "tcmsim_prof_json_test";
    std::filesystem::create_directories(dir);

    sim::ExperimentScale scale;
    scale.warmup = 5'000;
    scale.measure = 30'000;
    auto mix = workload::randomMix(2, 0.5, /*seed=*/8);
    sim::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.numChannels = 1;
    cfg.profile.enabled = true;
    cfg.profile.dir = dir.string();
    cfg.profile.filePrefix = "x_";
    sim::AloneIpcCache cache(cfg, scale.warmup, scale.measure);
    sim::RunResult r = sim::runWorkload(cfg, mix,
                                        sched::SchedulerSpec::frfcfs(),
                                        scale, cache, /*seed=*/4);
    ASSERT_NE(r.profile, nullptr);

    std::filesystem::path file = dir / "x_FR-FCFS_seed4.profile.json";
    ASSERT_TRUE(std::filesystem::exists(file)) << file;
    std::string json = readFile(file.string());
    EXPECT_NE(json.find("tcmsim-profile-v1"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Profiler, DetachedSitesAreInert)
{
    // A null shard must mean "no clock read, no write": the detached
    // instrumentation cost the hot path pays.
    prof::ScopedPhase nop(nullptr, prof::Phase::CtrlTick);
    prof::PhaseShard shard;
    {
        prof::ScopedPhase timed(&shard, prof::Phase::CtrlTick);
    }
    EXPECT_EQ(shard.calls[static_cast<int>(prof::Phase::CtrlTick)], 1u);
    // Attaching then detaching restores the unprofiled fast path.
    sim::SystemConfig config;
    config.numCores = 2;
    config.numChannels = 1;
    auto mix = workload::randomMix(2, 0.5, /*seed=*/8);
    sim::Simulator sim(config, mix, sched::SchedulerSpec::frfcfs(), 4);
    prof::Profiler profiler;
    sim.attachProfiler(&profiler);
    EXPECT_TRUE(sim.hasProfiler());
    sim.attachProfiler(nullptr);
    EXPECT_FALSE(sim.hasProfiler());
    sim.step(10'000); // must not touch the detached profiler
}

// ---------------------------------------------------------------------------
// The Chrome-trace "simulator" lane.
// ---------------------------------------------------------------------------

TEST(SimulatorLane, ChromeTraceGainsLaneOnlyWhenProfiled)
{
    ::unsetenv("TCMSIM_PROFILE");
    sim::ExperimentScale scale;
    scale.warmup = 5'000;
    scale.measure = 40'000;
    auto mix = workload::randomMix(4, 0.5, /*seed=*/42);

    auto chromeTrace = [&](bool profiled) {
        sim::SystemConfig cfg = profConfig(true, 1, profiled);
        sim::AloneIpcCache cache(cfg, scale.warmup, scale.measure);
        sim::RunResult r =
            sim::runWorkload(cfg, mix, sched::SchedulerSpec::tcmSpec(),
                             scale, cache, /*seed=*/13);
        EXPECT_TRUE(r.telemetry != nullptr);
        std::filesystem::path path =
            std::filesystem::temp_directory_path() /
            (profiled ? "tcmsim_lane_on.json" : "tcmsim_lane_off.json");
        r.telemetry->writeChromeTrace(path.string());
        std::string bytes = readFile(path.string());
        std::filesystem::remove(path);
        return bytes;
    };

    std::string off = chromeTrace(false);
    std::string on = chromeTrace(true);
    EXPECT_EQ(off.find("\"simulator\""), std::string::npos);
    EXPECT_NE(on.find("\"simulator\""), std::string::npos);
    EXPECT_NE(on.find("sim.wall_ms"), std::string::npos);
    EXPECT_NE(on.find("sim.skip"), std::string::npos);
    // Counter samples land on the dedicated tid-1 lane.
    EXPECT_NE(on.find("\"tid\":1"), std::string::npos);
    // Well-formed trace array either way (Perfetto-loadable shape).
    EXPECT_EQ(on.front(), '[');
    EXPECT_EQ(on.substr(on.size() - 2), "]\n");
}
