/**
 * @file
 * Unit tests for the experiment-sweep worker pool: result ordering,
 * deterministic exception propagation, the jobs=1 inline bypass, and
 * the TCMSIM_JOBS environment knob.
 */

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"

using namespace tcm;

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4);

    constexpr std::size_t n = 257; // not a multiple of the pool size
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ResultsLandAtTheirOwnIndex)
{
    // Completion order is arbitrary; slot assignment must not be.
    ThreadPool pool(8);
    constexpr std::size_t n = 64;
    std::vector<std::size_t> out(n, 0);
    pool.parallelFor(n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, SubmitReturnsFutureValue)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 40 + 2; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesLowestIndexFirst)
{
    // Two tasks throw; regardless of which finishes first, the caller
    // must see index 2's exception (deterministic across schedules).
    ThreadPool pool(4);
    for (int round = 0; round < 8; ++round) {
        try {
            pool.parallelFor(16, [](std::size_t i) {
                if (i == 2)
                    throw std::runtime_error("low");
                if (i == 11)
                    throw std::runtime_error("high");
            });
            FAIL() << "parallelFor must rethrow";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "low");
        }
    }
}

TEST(ThreadPool, ExceptionDoesNotLoseOtherTasks)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 32;
    std::vector<std::atomic<int>> hits(n);
    EXPECT_THROW(pool.parallelFor(n,
                                  [&](std::size_t i) {
                                      hits[i].fetch_add(1);
                                      if (i == 5)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // Every task still ran: a failure must not abandon queued work.
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, JobsOneBypassesThreads)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1);

    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(3);
    pool.parallelFor(3, [&](std::size_t i) {
        ran[i] = std::this_thread::get_id();
    });
    for (const auto &id : ran)
        EXPECT_EQ(id, caller); // inline on the calling thread, in order

    auto f = pool.submit([caller] {
        return std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(f.get());
}

TEST(ThreadPool, JobsOneRunsIndicesInOrder)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallelFor(5, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expect(5);
    std::iota(expect.begin(), expect.end(), 0u);
    EXPECT_EQ(order, expect);
}

TEST(ThreadPool, DefaultJobsReadsEnvKnob)
{
    setenv("TCMSIM_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3);
    ThreadPool pool; // jobs <= 0 → defaultJobs()
    EXPECT_EQ(pool.jobs(), 3);

    setenv("TCMSIM_JOBS", "1", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 1);

    unsetenv("TCMSIM_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1); // hardware_concurrency fallback
}

TEST(ThreadPool, ZeroTasksIsANoOp)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}
