/**
 * @file
 * Unit tests for the experiment-sweep worker pool: result ordering,
 * deterministic exception propagation, the jobs=1 inline bypass, and
 * the TCMSIM_JOBS environment knob.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"

using namespace tcm;

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4);

    constexpr std::size_t n = 257; // not a multiple of the pool size
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ResultsLandAtTheirOwnIndex)
{
    // Completion order is arbitrary; slot assignment must not be.
    ThreadPool pool(8);
    constexpr std::size_t n = 64;
    std::vector<std::size_t> out(n, 0);
    pool.parallelFor(n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, SubmitReturnsFutureValue)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 40 + 2; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesLowestIndexFirst)
{
    // Two tasks throw; regardless of which finishes first, the caller
    // must see index 2's exception (deterministic across schedules).
    ThreadPool pool(4);
    for (int round = 0; round < 8; ++round) {
        try {
            pool.parallelFor(16, [](std::size_t i) {
                if (i == 2)
                    throw std::runtime_error("low");
                if (i == 11)
                    throw std::runtime_error("high");
            });
            FAIL() << "parallelFor must rethrow";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "low");
        }
    }
}

TEST(ThreadPool, ExceptionDoesNotLoseOtherTasks)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 32;
    std::vector<std::atomic<int>> hits(n);
    EXPECT_THROW(pool.parallelFor(n,
                                  [&](std::size_t i) {
                                      hits[i].fetch_add(1);
                                      if (i == 5)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // Every task still ran: a failure must not abandon queued work.
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, JobsOneBypassesThreads)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1);

    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(3);
    pool.parallelFor(3, [&](std::size_t i) {
        ran[i] = std::this_thread::get_id();
    });
    for (const auto &id : ran)
        EXPECT_EQ(id, caller); // inline on the calling thread, in order

    auto f = pool.submit([caller] {
        return std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(f.get());
}

TEST(ThreadPool, JobsOneRunsIndicesInOrder)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallelFor(5, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expect(5);
    std::iota(expect.begin(), expect.end(), 0u);
    EXPECT_EQ(order, expect);
}

TEST(ThreadPool, DefaultJobsReadsEnvKnob)
{
    setenv("TCMSIM_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3);
    ThreadPool pool; // jobs <= 0 → defaultJobs()
    EXPECT_EQ(pool.jobs(), 3);

    setenv("TCMSIM_JOBS", "1", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 1);

    unsetenv("TCMSIM_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1); // hardware_concurrency fallback
}

TEST(ThreadPool, ZeroTasksIsANoOp)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

// ---------------------------------------------------------------------------
// SpinGang: the persistent fork/join gang behind intra-run parallel
// stepping. Its contract is stricter than ThreadPool's: run() is a full
// barrier — work from one run() is never in flight during the next —
// because the simulator republishes span parameters between calls.
// ---------------------------------------------------------------------------

TEST(SpinGang, CoversEveryIndexExactlyOncePerRun)
{
    SpinGang gang(4);
    EXPECT_EQ(gang.lanes(), 4);
    constexpr std::size_t n = 131; // not a multiple of the lane count
    std::vector<std::atomic<int>> hits(n);
    for (int round = 0; round < 50; ++round) {
        gang.run(n, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), round + 1) << "index " << i;
    }
}

TEST(SpinGang, RunIsABarrierBetweenEpochs)
{
    // Each run() writes into a generation-stamped slot; if any task
    // from epoch e were still running when run() returned, epoch e+1's
    // stamp check below would observe a torn or stale value. Many small
    // epochs back-to-back is exactly the simulator's dispatch pattern.
    SpinGang gang(4);
    constexpr std::size_t n = 16;
    std::vector<std::uint64_t> slot(n, 0);
    for (std::uint64_t epoch = 1; epoch <= 2000; ++epoch) {
        gang.run(n, [&](std::size_t i) { slot[i] = epoch; });
        // Join contract: every write of this epoch is visible now, on
        // the calling thread, with no synchronization beyond run().
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(slot[i], epoch) << "index " << i;
    }
}

TEST(SpinGang, LowestIndexExceptionWins)
{
    SpinGang gang(4);
    for (int round = 0; round < 8; ++round) {
        try {
            gang.run(16, [](std::size_t i) {
                if (i == 3)
                    throw std::runtime_error("low");
                if (i == 12)
                    throw std::runtime_error("high");
            });
            FAIL() << "run must rethrow";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "low");
        }
        // The gang must remain usable after a failed epoch.
        std::atomic<int> ok{0};
        gang.run(8, [&](std::size_t) { ok.fetch_add(1); });
        EXPECT_EQ(ok.load(), 8);
    }
}

TEST(SpinGang, SingleLaneRunsInlineInOrder)
{
    SpinGang gang(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    gang.run(5, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    std::vector<std::size_t> expect(5);
    std::iota(expect.begin(), expect.end(), 0u);
    EXPECT_EQ(order, expect);
}

TEST(SpinGang, IdleGangParksAndWakes)
{
    // After a burst, let workers fall through spin → yield → park, then
    // verify the next epoch still reaches everyone (parking must never
    // miss an epoch bump).
    SpinGang gang(3);
    std::atomic<int> count{0};
    gang.run(6, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 6);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gang.run(6, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 12);
}

TEST(SpinGang, LaneProfileCountsEveryTaskExactlyOnce)
{
    // The profiler's gang-imbalance view hangs off these slots: each
    // lane bumps only its own pair, and the join publishes them to the
    // caller. Summed across lanes they must equal the exact number of
    // tasks dispatched — a lost or double-counted claim shows up here
    // (and as a data race under TSAN).
    SpinGang gang(4);
    std::vector<std::uint64_t> busyNs(4, 0);
    std::vector<std::uint64_t> tasks(4, 0);
    gang.setLaneProfile(busyNs.data(), tasks.data());

    constexpr std::size_t n = 131; // not a multiple of the lane count
    constexpr int rounds = 25;
    std::atomic<std::uint64_t> work{0};
    for (int round = 0; round < rounds; ++round)
        gang.run(n, [&](std::size_t i) {
            // Enough work per task that the per-lane timers must
            // accumulate something measurable across 25 x 131 tasks.
            std::uint64_t acc = i;
            for (int k = 0; k < 200; ++k)
                acc = acc * 6364136223846793005ull + 1442695040888963407ull;
            work.fetch_add(acc | 1, std::memory_order_relaxed);
        });

    std::uint64_t totalTasks = 0;
    std::uint64_t totalBusy = 0;
    for (int lane = 0; lane < 4; ++lane) {
        totalTasks += tasks[lane];
        totalBusy += busyNs[lane];
    }
    EXPECT_EQ(totalTasks, static_cast<std::uint64_t>(n) * rounds);
    EXPECT_GT(totalBusy, 0u);

    // Detaching restores the untimed claim loop: the slots must stop
    // moving entirely.
    gang.setLaneProfile(nullptr, nullptr);
    gang.run(n, [&](std::size_t) {});
    std::uint64_t after = 0;
    for (int lane = 0; lane < 4; ++lane)
        after += tasks[lane];
    EXPECT_EQ(after, totalTasks);
}
