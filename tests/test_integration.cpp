/**
 * @file
 * End-to-end integration tests: whole-system simulations asserting the
 * *directional* results the paper reports (who wins, not exact numbers).
 */

#include <gtest/gtest.h>

#include "sim/alone_cache.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/mixes.hpp"

using namespace tcm;
using namespace tcm::sim;

namespace {

ExperimentScale
testScale()
{
    ExperimentScale s;
    s.warmup = 30'000;
    s.measure = 200'000;
    return s;
}

} // namespace

// ---------------------------------------------------------------------------
// Section 2.4 case study (Table 1 / Figure 2)
// ---------------------------------------------------------------------------

TEST(CaseStudy, RandomAccessThreadSuffersMoreWhenDeprioritized)
{
    // Two bandwidth-sensitive threads with equal MPKI; strict priority
    // one way, then the other. The random-access (high-BLP) thread must
    // be hurt more by deprioritization than the streaming thread is
    // (Figure 2: ~11x vs a smaller slowdown).
    SystemConfig cfg;
    cfg.numCores = 2;
    ExperimentScale scale = testScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);

    std::vector<workload::ThreadProfile> mix = {
        workload::randomAccessThread(), workload::streamingThread()};

    // Prioritize random-access (thread 0): streaming is the victim.
    RunResult ra_first = runWorkload(
        cfg, mix, sched::SchedulerSpec::fixedRank({1, 0}), scale, cache, 3);
    double streaming_victim = ra_first.metrics.slowdowns[1];

    // Prioritize streaming (thread 1): random-access is the victim.
    RunResult st_first = runWorkload(
        cfg, mix, sched::SchedulerSpec::fixedRank({0, 1}), scale, cache, 3);
    double ra_victim = st_first.metrics.slowdowns[0];

    EXPECT_GT(ra_victim, streaming_victim);
    EXPECT_GT(ra_victim, 2.0); // it must be substantial, not noise
}

// ---------------------------------------------------------------------------
// Scheduler-level directional results
// ---------------------------------------------------------------------------

namespace {

struct SchedulerOutcome
{
    double ws;
    double ms;
};

SchedulerOutcome
evalOn(const std::vector<workload::ThreadProfile> &mix,
       const sched::SchedulerSpec &spec, AloneIpcCache &cache,
       const SystemConfig &cfg, std::uint64_t seed = 5)
{
    RunResult r = runWorkload(cfg, mix, spec, testScale(), cache, seed);
    return {r.metrics.weightedSpeedup, r.metrics.maxSlowdown};
}

} // namespace

TEST(Integration, ThreadAwareSchedulersBeatFrFcfsOnMixedWorkload)
{
    SystemConfig cfg;
    ExperimentScale scale = testScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);
    auto mix = workload::tableFiveWorkload('A');

    auto frfcfs = evalOn(mix, sched::SchedulerSpec::frfcfs(), cache, cfg);
    auto tcm = evalOn(mix, sched::SchedulerSpec::tcmSpec(), cache, cfg);
    auto atlas = evalOn(mix, sched::SchedulerSpec::atlasSpec(), cache, cfg);

    // Prioritizing light threads must raise system throughput.
    EXPECT_GT(tcm.ws, frfcfs.ws);
    EXPECT_GT(atlas.ws, frfcfs.ws);
}

TEST(Integration, TcmIsFairerThanAtlas)
{
    // ATLAS's strict LAS ranking starves the most intensive threads;
    // TCM's shuffling must yield lower maximum slowdown (the paper's
    // headline: -38.6% MS vs ATLAS).
    SystemConfig cfg;
    ExperimentScale scale = testScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);

    double tcm_ms = 0.0, atlas_ms = 0.0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        auto mix = workload::randomMix(24, 0.75, 100 + seed);
        tcm_ms +=
            evalOn(mix, sched::SchedulerSpec::tcmSpec(), cache, cfg, seed).ms;
        atlas_ms +=
            evalOn(mix, sched::SchedulerSpec::atlasSpec(), cache, cfg, seed)
                .ms;
    }
    EXPECT_LT(tcm_ms, atlas_ms);
}

TEST(Integration, LatencySensitiveThreadsProtectedByTcm)
{
    // Under TCM a light thread in a heavy mix should run near its alone
    // speed (the latency cluster is strictly prioritized).
    SystemConfig cfg;
    ExperimentScale scale = testScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);

    // gcc: light enough to land in the latency cluster, but with enough
    // misses (MPKI 0.34) that queueing delay is visible in its IPC.
    std::vector<workload::ThreadProfile> mix;
    mix.push_back(workload::benchmarkProfile("gcc"));
    for (int i = 0; i < 11; ++i)
        mix.push_back(workload::benchmarkProfile("mcf")); // heavy

    cfg.numCores = static_cast<int>(mix.size());
    RunResult tcm = runWorkload(cfg, mix, sched::SchedulerSpec::tcmSpec(),
                                scale, cache, 2);
    RunResult fr = runWorkload(cfg, mix, sched::SchedulerSpec::frfcfs(),
                               scale, cache, 2);
    EXPECT_GT(tcm.metrics.speedups[0], 0.80);
    EXPECT_GT(tcm.metrics.speedups[0], fr.metrics.speedups[0]);
}

TEST(Integration, EverySchedulerServicesEveryThread)
{
    // No starvation: all threads make some progress under every policy.
    SystemConfig cfg;
    auto mix = workload::randomMix(24, 1.0, 55);
    for (const auto &spec : paperSchedulers()) {
        sched::SchedulerSpec scaled = spec;
        scaled.scaleToRun(150'000);
        Simulator sim(cfg, mix, scaled, 9);
        sim.run(20'000, 150'000);
        for (ThreadId t = 0; t < 24; ++t)
            EXPECT_GT(sim.measuredIpc(t), 0.0)
                << spec.name() << " starved thread " << t;
    }
}

TEST(Integration, ThreadWeightsFavorHeavierThreadUnderTcm)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    ExperimentScale scale = testScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);

    // Four copies of the same heavy benchmark; one gets weight 8.
    std::vector<workload::ThreadProfile> mix(
        4, workload::benchmarkProfile("lbm"));
    mix[2].weight = 8;

    RunResult r = runWorkload(cfg, mix, sched::SchedulerSpec::tcmSpec(),
                              scale, cache, 4);
    // The weighted thread must do at least as well as the best of the
    // others (weighted shuffling gives it more top-priority time).
    double others = std::max({r.metrics.speedups[0], r.metrics.speedups[1],
                              r.metrics.speedups[3]});
    EXPECT_GT(r.metrics.speedups[2], others);
}

TEST(Integration, HigherIntensityMixIsMoreContended)
{
    SystemConfig cfg;
    ExperimentScale scale = testScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);
    auto light = workload::randomMix(24, 0.25, 7);
    auto heavy = workload::randomMix(24, 1.0, 7);
    auto l = evalOn(light, sched::SchedulerSpec::tcmSpec(), cache, cfg);
    auto h = evalOn(heavy, sched::SchedulerSpec::tcmSpec(), cache, cfg);
    EXPECT_GT(l.ws, h.ws);  // lighter mixes have higher weighted speedup
    EXPECT_LT(l.ms, h.ms);  // and lower contention-driven slowdown
}
