/**
 * @file
 * Unit tests for common utilities: PCG32, RunningStat, env helpers.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/env.hpp"
#include "common/numfmt.hpp"
#include "common/random.hpp"
#include "common/running_stat.hpp"

using namespace tcm;

// ---------------------------------------------------------------------------
// Pcg32
// ---------------------------------------------------------------------------

TEST(Pcg32, SameSeedSameSequence)
{
    Pcg32 a(123, 5), b(123, 5);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiverge)
{
    Pcg32 a(123, 5), b(124, 5);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiverge)
{
    Pcg32 a(123, 5), b(123, 6);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Pcg32, NextBelowStaysInRange)
{
    Pcg32 rng(7);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 255u, 1u << 20}) {
        for (int i = 0; i < 200; ++i) {
            std::uint32_t v = rng.nextBelow(bound);
            ASSERT_LT(v, bound) << "bound " << bound;
        }
    }
}

TEST(Pcg32, NextBelowIsRoughlyUniform)
{
    Pcg32 rng(99);
    constexpr int kBuckets = 8;
    constexpr int kDraws = 80'000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.nextBelow(kBuckets)];
    for (int c : counts) {
        EXPECT_GT(c, kDraws / kBuckets * 0.9);
        EXPECT_LT(c, kDraws / kBuckets * 1.1);
    }
}

TEST(Pcg32, NextDoubleInUnitInterval)
{
    Pcg32 rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10'000; ++i) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Pcg32, BernoulliEdgeCases)
{
    Pcg32 rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Pcg32, BernoulliMatchesProbability)
{
    Pcg32 rng(11);
    int hits = 0;
    constexpr int kDraws = 50'000;
    for (int i = 0; i < kDraws; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Pcg32, GeometricMeanIsClose)
{
    Pcg32 rng(13);
    for (double mean : {0.5, 3.0, 50.0, 999.0}) {
        double sum = 0.0;
        constexpr int kDraws = 40'000;
        for (int i = 0; i < kDraws; ++i)
            sum += static_cast<double>(rng.nextGeometric(mean));
        EXPECT_NEAR(sum / kDraws, mean, mean * 0.05 + 0.05) << mean;
    }
}

TEST(Pcg32, GeometricOfZeroMeanIsZero)
{
    Pcg32 rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextGeometric(0.0), 0u);
}

// ---------------------------------------------------------------------------
// RunningStat
// ---------------------------------------------------------------------------

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
}

TEST(RunningStat, NegativeValuesTracked)
{
    RunningStat s;
    s.add(-3.0);
    s.add(-1.0);
    EXPECT_DOUBLE_EQ(s.mean(), -2.0);
    EXPECT_DOUBLE_EQ(s.max(), -1.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

// ---------------------------------------------------------------------------
// env helpers
// ---------------------------------------------------------------------------

TEST(Env, IntDefaultWhenUnset)
{
    unsetenv("TCMSIM_TEST_VAR");
    EXPECT_EQ(envInt("TCMSIM_TEST_VAR", 42), 42);
}

TEST(Env, IntParsesValue)
{
    setenv("TCMSIM_TEST_VAR", "123456", 1);
    EXPECT_EQ(envInt("TCMSIM_TEST_VAR", 42), 123456);
    unsetenv("TCMSIM_TEST_VAR");
}

TEST(Env, IntDefaultOnGarbage)
{
    setenv("TCMSIM_TEST_VAR", "abc", 1);
    EXPECT_EQ(envInt("TCMSIM_TEST_VAR", 42), 42);
    unsetenv("TCMSIM_TEST_VAR");
}

TEST(Env, DoubleParsesValue)
{
    setenv("TCMSIM_TEST_VAR", "0.25", 1);
    EXPECT_DOUBLE_EQ(envDouble("TCMSIM_TEST_VAR", 1.0), 0.25);
    unsetenv("TCMSIM_TEST_VAR");
}

// ---------------------------------------------------------------------------
// formatDouble (common/numfmt)
// ---------------------------------------------------------------------------

TEST(NumFmt, ShortestFormRoundTrips)
{
    for (double v : {0.5, 1.0 / 3.0, 8.916972010003711, -2.25, 0.0,
                     5e-324, 1.7976931348623157e308}) {
        std::string s = formatDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(NumFmt, ShortestFormIsShortest)
{
    EXPECT_EQ(formatDouble(0.5), "0.5");
    EXPECT_EQ(formatDouble(1.0), "1");
    EXPECT_EQ(formatDouble(-2.0), "-2");
    EXPECT_EQ(formatDouble(0.0), "0");
}

TEST(NumFmt, FixedPrecision)
{
    EXPECT_EQ(formatDouble(1.0 / 3.0, 2), "0.33");
    EXPECT_EQ(formatDouble(2.5, 3), "2.500");
    EXPECT_EQ(formatDouble(-0.125, 2), "-0.12");
}

TEST(NumFmt, NonFinite)
{
    EXPECT_EQ(formatDouble(std::nan("")), "nan");
    EXPECT_EQ(formatDouble(std::numeric_limits<double>::infinity()), "inf");
    EXPECT_EQ(formatDouble(-std::numeric_limits<double>::infinity()),
              "-inf");
}

TEST(NumFmt, IgnoresLocale)
{
    // A locale with a comma decimal separator must not leak into the
    // output. de_DE may not be installed in the container; if setlocale
    // fails the test still exercises the default path.
    const char *old = std::setlocale(LC_NUMERIC, nullptr);
    std::string saved = old ? old : "C";
    std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
    EXPECT_EQ(formatDouble(0.5), "0.5");
    EXPECT_EQ(formatDouble(1.0 / 3.0, 2), "0.33");
    std::setlocale(LC_NUMERIC, saved.c_str());
}
