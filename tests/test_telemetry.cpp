/**
 * @file
 * In-run telemetry tests: ring-buffer bounds, JSON encoding, the
 * observer-free fast path (bit-identical results with telemetry off or
 * on), sampler cadence, the scheduler-decision cross-check (trace
 * events must match live scheduler state), lifecycle accounting, and
 * the JSONL / Chrome trace serializers.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dram/observer.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "telemetry/sink.hpp"
#include "workload/mixes.hpp"

using namespace tcm;

namespace {

/** Small, fast baseline system shared by the simulation tests. */
sim::SystemConfig
smallConfig()
{
    sim::SystemConfig config;
    config.numCores = 4;
    config.numChannels = 2;
    return config;
}

std::vector<workload::ThreadProfile>
smallMix()
{
    return workload::randomMix(4, 1.0, 11);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

// ---------------------------------------------------------------------------
// Value types

TEST(RingBuffer, DropsOldestAndCountsEvictions)
{
    telemetry::RingBuffer<int> ring(3);
    for (int i = 0; i < 5; ++i)
        ring.push(i);
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.dropped(), 2u);
    EXPECT_EQ(ring.at(0), 2); // oldest retained
    EXPECT_EQ(ring.at(1), 3);
    EXPECT_EQ(ring.at(2), 4);
    EXPECT_EQ(ring.back(), 4);

    std::vector<int> seen;
    ring.forEach([&](int v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<int>{2, 3, 4}));
}

TEST(RingBuffer, ZeroCapacityRefusesEverything)
{
    telemetry::RingBuffer<int> ring(0);
    ring.push(1);
    ring.push(2);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.dropped(), 2u);
}

TEST(JsonHelpers, EncodeValues)
{
    EXPECT_EQ(telemetry::jsonNumber(telemetry::kNoGauge), "null");
    EXPECT_EQ(telemetry::jsonNumber(std::uint64_t{42}), "42");
    EXPECT_EQ(telemetry::jsonNumber(std::int64_t{-1}), "-1");
    EXPECT_EQ(telemetry::jsonString("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(telemetry::jsonArray(std::vector<int>{1, 2, 3}), "[1,2,3]");
    EXPECT_EQ(telemetry::jsonArray(std::vector<double>{0.5}), "[0.5]");

    telemetry::DecisionEvent e;
    e.args = {{"k", "7"}};
    EXPECT_EQ(e.arg("k"), "7");
    EXPECT_EQ(e.arg("missing"), "");
}

// ---------------------------------------------------------------------------
// Fast path: telemetry off must not perturb the simulation

TEST(TelemetryFastPath, ResultsBitIdenticalWithAndWithoutTelemetry)
{
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(60'000);

    dram::CommandTraceRecorder plainTrace;
    sim::Simulator plain(smallConfig(), smallMix(), spec, /*seed=*/3);
    plain.attachCommandObserver(&plainTrace);
    plain.run(10'000, 60'000);

    dram::CommandTraceRecorder obsTrace;
    sim::Simulator observed(smallConfig(), smallMix(), spec, /*seed=*/3,
                            /*enableProbe=*/true);
    telemetry::TelemetrySink sink;
    observed.attachCommandObserver(&obsTrace);
    observed.attachTelemetry(&sink);
    observed.run(10'000, 60'000);

    // The full DRAM command stream is the strongest equality oracle the
    // simulator exposes: identical traces mean identical decisions.
    EXPECT_EQ(plainTrace.text(), obsTrace.text());
    for (ThreadId t = 0; t < plain.numThreads(); ++t)
        EXPECT_EQ(plain.measuredIpc(t), observed.measuredIpc(t)) << t;

    // And the observed run actually recorded something.
    EXPECT_GT(sink.totalRecords(), 0u);
}

TEST(TelemetryFastPath, UnattachedSinkReceivesNothing)
{
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(30'000);
    sim::Simulator sim(smallConfig(), smallMix(), spec, /*seed=*/3);
    telemetry::TelemetrySink sink; // constructed but never attached
    sim.run(5'000, 30'000);
    EXPECT_FALSE(sim.hasTelemetry());
    EXPECT_EQ(sink.totalRecords(), 0u);
    EXPECT_EQ(sink.droppedRecords(), 0u);
}

// ---------------------------------------------------------------------------
// Interval sampler

TEST(TelemetrySampler, CadenceMatchesConfiguredInterval)
{
    sched::SchedulerSpec spec = sched::SchedulerSpec::frfcfs();

    telemetry::TelemetryConfig cfg;
    cfg.sampleInterval = 5'000;
    telemetry::TelemetrySink sink(cfg);

    sim::SystemConfig config = smallConfig();
    sim::Simulator sim(config, smallMix(), spec, /*seed=*/5,
                       /*enableProbe=*/true);
    sim.attachTelemetry(&sink);
    sim.step(50'000);

    // Armed at cycle 0, sampling at 5k, 10k, ..., 45k (50k is past the
    // last simulated cycle 49'999): 9 sample points.
    const std::size_t points = 9;
    ASSERT_EQ(sink.threadSamples().size(), points * 4);
    ASSERT_EQ(sink.channelSamples().size(), points * config.numChannels);

    Cycle prev = 0;
    sink.threadSamples().forEach([&](const telemetry::ThreadSample &s) {
        EXPECT_GE(s.cycle, prev);
        prev = s.cycle;
        EXPECT_EQ(s.cycle % 5'000, 0u);
        // Probe attached: behaviour gauges must be measured, not null.
        EXPECT_TRUE(telemetry::hasGauge(s.blp));
        EXPECT_TRUE(telemetry::hasGauge(s.outstanding));
        EXPECT_GE(s.ipc, 0.0);
    });

    sink.channelSamples().forEach([&](const telemetry::ChannelSample &s) {
        EXPECT_GE(s.cmdBusUtil, 0.0);
        EXPECT_LE(s.dataBusUtil, 1.0 + 1e-9);
    });
}

TEST(TelemetrySampler, ProbelessSamplesCarryNullBehaviorGauges)
{
    telemetry::TelemetryConfig cfg;
    cfg.sampleInterval = 10'000;
    cfg.probeBehavior = false;
    telemetry::TelemetrySink sink(cfg);

    sim::Simulator sim(smallConfig(), smallMix(),
                       sched::SchedulerSpec::frfcfs(), /*seed=*/5,
                       /*enableProbe=*/false);
    sim.attachTelemetry(&sink);
    sim.step(40'000);

    ASSERT_GT(sink.threadSamples().size(), 0u);
    sink.threadSamples().forEach([&](const telemetry::ThreadSample &s) {
        EXPECT_FALSE(telemetry::hasGauge(s.rbl));
        EXPECT_FALSE(telemetry::hasGauge(s.blp));
        EXPECT_FALSE(telemetry::hasGauge(s.outstanding));
    });
}

// ---------------------------------------------------------------------------
// Scheduler-decision trace vs live scheduler state (acceptance check)

TEST(TelemetryDecisions, TcmTraceMatchesSchedulerInternalState)
{
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(100'000);

    telemetry::TelemetrySink sink;
    sim::SystemConfig config = smallConfig();
    sim::Simulator sim(config, smallMix(), spec, /*seed=*/9,
                       /*enableProbe=*/true);
    sim.attachTelemetry(&sink);
    sim.step(100'000);

    auto quanta = sink.eventsNamed("tcm.quantum");
    ASSERT_GT(quanta.size(), 1u) << "expected multiple TCM quanta";

    // Ranks change only at quantum and shuffle boundaries, and both emit
    // an event carrying the new ranks — so the newest ranks-bearing
    // event must equal the scheduler's live rank state.
    const telemetry::DecisionEvent *latest = quanta.back();
    if (const telemetry::DecisionEvent *sh = sink.lastEvent("tcm.shuffle"))
        if (sh->cycle > latest->cycle)
            latest = sh;

    std::vector<int> live(sim.numThreads());
    for (ThreadId t = 0; t < sim.numThreads(); ++t)
        live[t] = sim.scheduler().rankOf(0, t);
    EXPECT_EQ(latest->arg("ranks"), telemetry::jsonArray(live));

    // Every quantum event describes a full partition of the threads.
    for (const telemetry::DecisionEvent *q : quanta) {
        const std::string &lat = q->arg("latency_cluster");
        const std::string &bw = q->arg("bandwidth_cluster");
        ASSERT_FALSE(lat.empty());
        ASSERT_FALSE(bw.empty());
        int members = 0;
        for (const std::string *s : {&lat, &bw}) {
            if (*s == "[]")
                continue;
            ++members; // at least one element per non-empty list
            for (char c : *s)
                if (c == ',')
                    ++members;
        }
        EXPECT_EQ(members, sim.numThreads()) << "partition at cycle "
                                             << q->cycle;
        EXPECT_FALSE(q->arg("shuffle_mode").empty());
        EXPECT_FALSE(q->arg("niceness").empty());
    }
}

TEST(TelemetryDecisions, BaselineSchedulersEmitTheirEvents)
{
    struct Case
    {
        sched::SchedulerSpec spec;
        const char *event;
    };
    std::vector<Case> cases = {
        {sched::SchedulerSpec::atlasSpec(), "atlas.rank"},
        {sched::SchedulerSpec::parbsSpec(), "parbs.batch_done"},
        {sched::SchedulerSpec::stfmSpec(), "stfm.update"},
    };
    for (Case &c : cases) {
        c.spec.scaleToRun(60'000);
        telemetry::TelemetrySink sink;
        sim::Simulator sim(smallConfig(), smallMix(), c.spec, /*seed=*/9);
        sim.attachTelemetry(&sink);
        sim.step(60'000);
        EXPECT_NE(sink.lastEvent(c.event), nullptr)
            << c.event << " never emitted";
    }
}

// ---------------------------------------------------------------------------
// Request lifecycle

TEST(TelemetryLifecycle, BreakdownSumsToEndToEndLatency)
{
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(60'000);

    telemetry::TelemetrySink sink;
    sim::SystemConfig config = smallConfig();
    sim::Simulator sim(config, smallMix(), spec, /*seed=*/13);
    sim.attachTelemetry(&sink);
    sim.run(10'000, 60'000);

    ASSERT_GT(sink.lifecycleRecords(), 0u);
    const double fixed = static_cast<double>(config.timing.cpuToMcDelay);

    for (ThreadId t = 0; t < sim.numThreads(); ++t) {
        // Reads recorded by the latency tracker after measurement start.
        std::uint64_t reads = 0;
        double weightedMean = 0.0;
        for (ChannelId ch = 0; ch < config.numChannels; ++ch) {
            const RunningStat &s = sim.latency(ch).threadStats(t);
            reads += s.count();
            weightedMean += s.mean() * static_cast<double>(s.count());
        }
        const auto &lc = sink.lifecycle(t);
        // Lifecycle spans the whole run (attach at cycle 0); the latency
        // tracker resets at measurement start, so it can only have fewer.
        ASSERT_GE(lc.queueing.count(), reads) << t;
        EXPECT_EQ(lc.queueing.count(), lc.service.count()) << t;
        if (reads != lc.queueing.count() || reads == 0)
            continue;
        // Same population: total latency = wire delay + queueing + service.
        double latMean = weightedMean / static_cast<double>(reads);
        double sumMeans = fixed + lc.queueing.mean() + lc.service.mean();
        EXPECT_NEAR(latMean, sumMeans, 1e-6 * latMean) << t;
    }
}

TEST(TelemetryLifecycle, WholeRunIdentityWithoutWarmup)
{
    // With no warmup, the latency tracker and the lifecycle sink see
    // exactly the same reads, so the identity must hold per thread.
    sched::SchedulerSpec spec = sched::SchedulerSpec::frfcfs();
    telemetry::TelemetrySink sink;
    sim::SystemConfig config = smallConfig();
    sim::Simulator sim(config, smallMix(), spec, /*seed=*/13);
    sim.attachTelemetry(&sink);
    sim.run(0, 60'000);

    const double fixed = static_cast<double>(config.timing.cpuToMcDelay);
    bool any = false;
    for (ThreadId t = 0; t < sim.numThreads(); ++t) {
        std::uint64_t reads = 0;
        double weightedMean = 0.0;
        for (ChannelId ch = 0; ch < config.numChannels; ++ch) {
            const RunningStat &s = sim.latency(ch).threadStats(t);
            reads += s.count();
            weightedMean += s.mean() * static_cast<double>(s.count());
        }
        const auto &lc = sink.lifecycle(t);
        ASSERT_EQ(lc.queueing.count(), reads) << t;
        if (reads == 0)
            continue;
        any = true;
        double latMean = weightedMean / static_cast<double>(reads);
        EXPECT_NEAR(latMean,
                    fixed + lc.queueing.mean() + lc.service.mean(),
                    1e-6 * latMean)
            << t;
        // Histogram percentiles exist for both components.
        EXPECT_GT(lc.queueingHist.count(), 0u);
        EXPECT_GT(lc.serviceHist.count(), 0u);
    }
    EXPECT_TRUE(any) << "no thread serviced any read";
}

// ---------------------------------------------------------------------------
// Serialization + experiment-driver integration

TEST(TelemetrySerialization, JsonlAndChromeTraceAreWellFormed)
{
    std::string dir = testing::TempDir() + "tcm_telemetry";
    sim::SystemConfig config = smallConfig();
    config.telemetry.enabled = true;
    config.telemetry.sampleInterval = 5'000;
    config.telemetry.dir = dir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    ASSERT_FALSE(ec);

    sim::ExperimentScale scale;
    scale.warmup = 5'000;
    scale.measure = 50'000;
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    sim::RunResult r =
        sim::runWorkload(config, smallMix(),
                         sched::SchedulerSpec::tcmSpec(), scale, cache,
                         /*seed=*/21);

    ASSERT_NE(r.telemetry, nullptr);
    EXPECT_GT(r.telemetry->totalRecords(), 0u);
    EXPECT_EQ(r.telemetry->meta().scheduler, "TCM");
    EXPECT_EQ(r.telemetry->meta().seed, 21u);

    // Deterministic file naming: <dir>/<scheduler>_seed<seed>.
    std::string base = dir + "/TCM_seed21";
    std::string jsonl = readFile(base + ".jsonl");
    std::string trace = readFile(base + ".trace.json");

    // JSONL: one object per line, self-describing types, meta first.
    ASSERT_FALSE(jsonl.empty());
    EXPECT_EQ(jsonl.rfind("{\"type\":\"meta\"", 0), 0u);
    EXPECT_NE(jsonl.find("\"type\":\"thread_sample\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"type\":\"channel_sample\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"name\":\"tcm.quantum\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"type\":\"lifecycle\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"type\":\"tail\""), std::string::npos);
    std::istringstream lines(jsonl);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }

    // Chrome trace: a JSON array of counter/instant/metadata events.
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.front(), '[');
    EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(trace.find("process_name"), std::string::npos);
    EXPECT_NE(trace.find("tcm.quantum"), std::string::npos);
    // Balanced brackets/braces (cheap well-formedness proxy; the values
    // are numbers and escaped strings only).
    long depth = 0;
    bool inString = false, escaped = false;
    for (char c : trace) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (inString) {
            if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '[' || c == '{')
            ++depth;
        else if (c == ']' || c == '}') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(inString);

    // Report integration: the telemetry section reflects the sink.
    sim::SystemReport report;
    report.addTelemetry(*r.telemetry);
    EXPECT_TRUE(report.telemetry.enabled);
    EXPECT_GT(report.telemetry.threadSamples, 0u);
    EXPECT_GT(report.telemetry.decisionEvents, 0u);
    EXPECT_GT(report.telemetry.lifecycleRecords, 0u);
}

TEST(TelemetrySerialization, RunWithoutTelemetryProducesNoSink)
{
    sim::SystemConfig config = smallConfig();
    sim::ExperimentScale scale;
    scale.warmup = 2'000;
    scale.measure = 20'000;
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);
    sim::RunResult r =
        sim::runWorkload(config, smallMix(),
                         sched::SchedulerSpec::frfcfs(), scale, cache,
                         /*seed=*/21);
    EXPECT_EQ(r.telemetry, nullptr);
}
