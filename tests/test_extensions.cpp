/**
 * @file
 * Tests for the library extensions: DRAM energy accounting and
 * barrier-coupled multithreaded workloads (paper Section 3.7).
 */

#include <memory>

#include <gtest/gtest.h>

#include "dram/energy.hpp"
#include "sched/tcm/hw_cost.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/multithreaded.hpp"

using namespace tcm;

// ---------------------------------------------------------------------------
// Energy model
// ---------------------------------------------------------------------------

TEST(Energy, ZeroCountsGiveOnlyIdleBackground)
{
    dram::EnergyParams p = dram::EnergyParams::ddr2_800();
    dram::CommandCounts none;
    dram::EnergyBreakdown e = dram::computeEnergy(p, none, 1'000'000, 4, 5.0);
    EXPECT_EQ(e.activatePj, 0.0);
    EXPECT_EQ(e.readPj, 0.0);
    EXPECT_GT(e.backgroundPj, 0.0);
    // 1M cycles at 5 GHz = 200 us; idle 400 mW -> 80 uJ = 8e7 pJ.
    EXPECT_NEAR(e.backgroundPj, 8e7, 1e3);
    EXPECT_NEAR(e.averageMw(1'000'000, 5.0), p.pBackgroundIdle, 0.01);
}

TEST(Energy, CommandEnergiesScaleLinearly)
{
    dram::EnergyParams p = dram::EnergyParams::ddr2_800();
    dram::CommandCounts counts;
    counts.activates = 10;
    counts.reads = 20;
    counts.writes = 5;
    counts.refreshes = 2;
    dram::EnergyBreakdown e = dram::computeEnergy(p, counts, 0, 4, 5.0);
    EXPECT_DOUBLE_EQ(e.activatePj, 10 * p.eActPre);
    EXPECT_DOUBLE_EQ(e.readPj, 20 * p.eRead);
    EXPECT_DOUBLE_EQ(e.writePj, 5 * p.eWrite);
    EXPECT_DOUBLE_EQ(e.refreshPj, 2 * p.eRefresh);
    EXPECT_DOUBLE_EQ(e.perAccessPj(counts), e.totalPj() / 25.0);
}

TEST(Energy, BusyBanksDrawMoreBackgroundPower)
{
    dram::EnergyParams p = dram::EnergyParams::ddr2_800();
    dram::CommandCounts idle, busy;
    busy.bankBusyCycles = 4 * 100'000; // fully busy window
    auto eIdle = dram::computeEnergy(p, idle, 100'000, 4, 5.0);
    auto eBusy = dram::computeEnergy(p, busy, 100'000, 4, 5.0);
    EXPECT_GT(eBusy.backgroundPj, eIdle.backgroundPj);
    EXPECT_NEAR(eBusy.averageMw(100'000, 5.0), p.pBackgroundActive, 0.01);
}

TEST(Energy, SimulatorCountsDriveTheModel)
{
    sim::SystemConfig cfg;
    cfg.numCores = 4;
    std::vector<workload::ThreadProfile> mix(
        4, workload::benchmarkProfile("lbm"));
    sim::Simulator sim(cfg, mix, sched::SchedulerSpec::frfcfs(), 3);
    sim.run(10'000, 100'000);

    dram::EnergyParams p = dram::EnergyParams::ddr2_800();
    double total = 0.0;
    for (ChannelId ch = 0; ch < cfg.numChannels; ++ch) {
        dram::CommandCounts c = sim.commandCounts(ch);
        EXPECT_GT(c.reads, 0u) << "channel " << ch;
        dram::EnergyBreakdown e =
            dram::computeEnergy(p, c, 100'000, cfg.timing.banksPerChannel,
                                cfg.timing.cyclesPerNs);
        EXPECT_GT(e.totalPj(), 0.0);
        EXPECT_GT(e.averageMw(100'000, 5.0), p.pBackgroundIdle);
        total += e.totalPj();
    }
    EXPECT_GT(total, 0.0);
}

TEST(Energy, RowConflictsCostMoreThanStreams)
{
    // A row-conflict-heavy thread activates more per access, so its
    // per-access energy must exceed a streaming thread's.
    sim::SystemConfig cfg;
    cfg.numCores = 1;
    cfg.numChannels = 1;
    dram::EnergyParams p = dram::EnergyParams::ddr2_800();

    auto perAccess = [&](const char *bench) {
        sim::Simulator sim(cfg, {workload::benchmarkProfile(bench)},
                           sched::SchedulerSpec::frfcfs(), 3);
        sim.run(10'000, 150'000);
        dram::CommandCounts c = sim.commandCounts(0);
        return dram::computeEnergy(p, c, 150'000, 4, 5.0).perAccessPj(c);
    };
    EXPECT_GT(perAccess("mcf"), perAccess("libquantum"));
}

// ---------------------------------------------------------------------------
// Hardware cost model (Table 2)
// ---------------------------------------------------------------------------

TEST(HwCost, MatchesTableTwoExactly)
{
    sched::HwCostConfig cfg; // 24 threads, 4 banks baseline
    sched::HwCost cost = sched::monitoringCost(cfg);
    EXPECT_EQ(cost.mpkiCounters, 240u);
    EXPECT_EQ(cost.loadCounters, 576u);
    EXPECT_EQ(cost.blpCounters, 48u);
    EXPECT_EQ(cost.blpAverage, 48u);
    EXPECT_EQ(cost.shadowRowIndices, 1344u);
    EXPECT_EQ(cost.shadowHitCounters, 1536u);
    EXPECT_EQ(cost.total(), 3792u);
    EXPECT_LT(cost.total(), 4096u);        // "< 4 Kbits"
    EXPECT_LT(cost.totalRandomShuffleOnly(), 512u); // "< 0.5 Kbits"
}

TEST(HwCost, ScalesWithThreadsAndBanks)
{
    sched::HwCostConfig small;
    small.numThreads = 8;
    sched::HwCostConfig big;
    big.numThreads = 32;
    big.numBanks = 8;
    EXPECT_LT(sched::monitoringCost(small).total(),
              sched::monitoringCost(big).total());
    // Thread-linear structures scale exactly linearly.
    EXPECT_EQ(sched::monitoringCost(small).mpkiCounters * 4,
              sched::monitoringCost(big).mpkiCounters);
}

// ---------------------------------------------------------------------------
// BarrierGroup semantics
// ---------------------------------------------------------------------------

TEST(Barrier, PhaseReleasesOnlyWhenAllArrive)
{
    workload::BarrierGroup g(3, 1000);
    EXPECT_TRUE(g.phaseReleased(0));
    EXPECT_FALSE(g.phaseReleased(1));
    g.memberReached(0, 1);
    g.memberReached(1, 1);
    EXPECT_FALSE(g.phaseReleased(1));
    EXPECT_EQ(g.phasesCompleted(), 0u);
    g.memberReached(2, 1);
    EXPECT_TRUE(g.phaseReleased(1));
    EXPECT_EQ(g.phasesCompleted(), 1u);
}

TEST(Barrier, ReachedIsMonotonic)
{
    workload::BarrierGroup g(2, 10);
    g.memberReached(0, 5);
    g.memberReached(0, 3); // stale report must not regress
    g.memberReached(1, 5);
    EXPECT_EQ(g.phasesCompleted(), 5u);
}

// ---------------------------------------------------------------------------
// BarrierCoupledTrace
// ---------------------------------------------------------------------------

TEST(Barrier, LoneEarlyThreadSpins)
{
    workload::Geometry geom;
    workload::BarrierGroup group(2, 500);
    workload::ThreadProfile p = workload::benchmarkProfile("gcc");
    workload::BarrierCoupledTrace fast(p, geom, 1, &group, 0);

    // Pull far more than one phase of items from member 0 only; member 1
    // never arrives, so member 0 must be spinning, not progressing.
    for (int i = 0; i < 5000; ++i)
        fast.next();
    EXPECT_EQ(group.phasesCompleted(), 0u);
    EXPECT_GT(fast.spinReads(), 0u);
}

TEST(Barrier, GroupProgressesTogether)
{
    workload::Geometry geom;
    workload::BarrierGroup group(2, 500);
    workload::ThreadProfile p = workload::benchmarkProfile("gcc");
    workload::BarrierCoupledTrace a(p, geom, 1, &group, 0);
    workload::BarrierCoupledTrace b(p, geom, 2, &group, 1);

    // Interleave pulls: both threads advance through many phases.
    for (int i = 0; i < 20'000; ++i) {
        a.next();
        b.next();
    }
    EXPECT_GT(group.phasesCompleted(), 5u);
}

TEST(Barrier, EndToEndCriticalityWeightHelps)
{
    // The full Section 3.7 story: a 4-thread app with one heavy thread,
    // against a heavy background; boosting the critical thread's weight
    // under TCM must not reduce (and should raise) the app's phase rate.
    sim::SystemConfig cfg;
    cfg.numCores = 8;

    auto run = [&](int weight) {
        workload::BarrierGroup group(4, 2000);
        workload::Geometry geom = cfg.geometry();
        std::vector<std::unique_ptr<core::TraceSource>> traces;
        std::vector<int> weights;
        for (int m = 0; m < 4; ++m) {
            workload::ThreadProfile p =
                m == 0 ? workload::benchmarkProfile("GemsFDTD")
                       : workload::benchmarkProfile("gobmk");
            traces.push_back(
                std::make_unique<workload::BarrierCoupledTrace>(
                    p, geom, 10 + m, &group, m));
            weights.push_back(m == 0 ? weight : 1);
        }
        for (int b = 0; b < 4; ++b) {
            traces.push_back(std::make_unique<workload::SyntheticTrace>(
                workload::benchmarkProfile("lbm"), geom, 50 + b));
            weights.push_back(1);
        }
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.scaleToRun(200'000);
        sim::Simulator sim(cfg, std::move(traces), spec, 9, false, weights);
        sim.run(0, 200'000);
        return group.phasesCompleted();
    };

    std::uint64_t base = run(1);
    std::uint64_t boosted = run(8);
    EXPECT_GT(base, 0u);
    EXPECT_GE(boosted, base);
}
