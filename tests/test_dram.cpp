/**
 * @file
 * Unit tests for the DDR2 timing model: bank/rank/channel state machines
 * and the address interleave.
 */

#include <gtest/gtest.h>

#include "dram/address.hpp"
#include "dram/bank.hpp"
#include "dram/channel.hpp"
#include "dram/rank.hpp"
#include "dram/timing.hpp"

using namespace tcm;
using namespace tcm::dram;

namespace {

TimingParams
noRefreshTiming()
{
    TimingParams t = TimingParams::ddr2_800();
    t.refreshEnabled = false;
    return t;
}

} // namespace

// ---------------------------------------------------------------------------
// TimingParams
// ---------------------------------------------------------------------------

TEST(Timing, NsConversionRoundsAtFiveGigahertz)
{
    EXPECT_EQ(TimingParams::ns(15.0), 75u);
    EXPECT_EQ(TimingParams::ns(2.5), 13u);  // 12.5 rounds up
    EXPECT_EQ(TimingParams::ns(10.0), 50u);
    EXPECT_EQ(TimingParams::ns(0.0), 0u);
}

TEST(Timing, Ddr2BaselineMatchesTableThree)
{
    TimingParams t = TimingParams::ddr2_800();
    EXPECT_EQ(t.tCL, 75u);
    EXPECT_EQ(t.tRCD, 75u);
    EXPECT_EQ(t.tRP, 75u);
    EXPECT_EQ(t.tBURST, 50u);
    EXPECT_EQ(t.banksPerChannel, 4);
    EXPECT_EQ(t.colsPerRow, 64); // 2 KB row / 32 B blocks
    EXPECT_EQ(t.tRC, t.tRAS + t.tRP);
}

// ---------------------------------------------------------------------------
// Bank state machine
// ---------------------------------------------------------------------------

TEST(Bank, StartsPrechargedAndActivatable)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    EXPECT_TRUE(bank.precharged());
    EXPECT_TRUE(bank.canActivate(0));
    EXPECT_FALSE(bank.canRead(0));
    EXPECT_FALSE(bank.canWrite(0));
    EXPECT_FALSE(bank.canPrecharge(0));
}

TEST(Bank, ActivateOpensRowAfterTrcd)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(100, 7);
    EXPECT_EQ(bank.openRow(), 7);
    EXPECT_FALSE(bank.canActivate(100 + 1)); // already open
    EXPECT_FALSE(bank.canRead(100 + t.tRCD - 1));
    EXPECT_TRUE(bank.canRead(100 + t.tRCD));
    EXPECT_TRUE(bank.canWrite(100 + t.tRCD));
}

TEST(Bank, PrechargeRespectsTras)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 3);
    EXPECT_FALSE(bank.canPrecharge(t.tRAS - 1));
    EXPECT_TRUE(bank.canPrecharge(t.tRAS));
    bank.precharge(t.tRAS);
    EXPECT_TRUE(bank.precharged());
    EXPECT_FALSE(bank.canActivate(t.tRAS + t.tRP - 1));
    EXPECT_TRUE(bank.canActivate(t.tRAS + t.tRP));
}

TEST(Bank, ReadPushesPrechargeOutByTrtp)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 1);
    Cycle rd_at = t.tRAS; // read issued late: tRTP now dominates tRAS
    bank.read(rd_at);
    EXPECT_FALSE(bank.canPrecharge(rd_at + t.tRTP - 1));
    EXPECT_TRUE(bank.canPrecharge(rd_at + t.tRTP));
}

TEST(Bank, WriteRecoveryBlocksPrecharge)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 1);
    Cycle wr_at = t.tRAS;
    bank.write(wr_at);
    Cycle data_end = wr_at + t.tCWL + t.tBURST;
    EXPECT_FALSE(bank.canPrecharge(data_end + t.tWR - 1));
    EXPECT_TRUE(bank.canPrecharge(data_end + t.tWR));
}

TEST(Bank, SameBankActToActRespectsTrc)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 1);
    bank.read(t.tRCD);
    bank.precharge(t.tRAS);
    // Even though tRP has elapsed, tRC must also hold.
    Cycle trp_done = t.tRAS + t.tRP;
    EXPECT_GE(trp_done, t.tRC); // with DDR2-800, tRC == tRAS + tRP
    EXPECT_TRUE(bank.canActivate(t.tRC));
}

TEST(Bank, ActivateOccupancyIsTrcd)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    EXPECT_EQ(bank.activate(0, 1), t.tRCD);
    EXPECT_EQ(bank.read(t.tRCD), t.tBURST);
    EXPECT_EQ(bank.precharge(t.tRAS + t.tRTP + 1000), t.tRP);
}

TEST(Bank, RefreshBlocksActivateForTrfc)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.refresh(500);
    EXPECT_FALSE(bank.canActivate(500 + t.tRFC - 1));
    EXPECT_TRUE(bank.canActivate(500 + t.tRFC));
}

// ---------------------------------------------------------------------------
// Rank constraints
// ---------------------------------------------------------------------------

TEST(Rank, TrrdSeparatesActivates)
{
    TimingParams t = noRefreshTiming();
    Rank rank(t);
    EXPECT_TRUE(rank.canActivate(0));
    rank.recordActivate(0);
    EXPECT_FALSE(rank.canActivate(t.tRRD - 1));
    EXPECT_TRUE(rank.canActivate(t.tRRD));
}

TEST(Rank, FourActivateWindowEnforced)
{
    TimingParams t = noRefreshTiming();
    Rank rank(t);
    Cycle now = 0;
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(rank.canActivate(now));
        rank.recordActivate(now);
        now += t.tRRD;
    }
    // The fifth ACT must wait until tFAW after the first.
    EXPECT_FALSE(rank.canActivate(now));
    EXPECT_TRUE(rank.canActivate(t.tFAW));
}

TEST(Rank, WriteToReadTurnaround)
{
    TimingParams t = noRefreshTiming();
    Rank rank(t);
    rank.recordWrite(100);
    Cycle ready = 100 + t.tCWL + t.tBURST + t.tWTR;
    EXPECT_FALSE(rank.canRead(ready - 1));
    EXPECT_TRUE(rank.canRead(ready));
}

// ---------------------------------------------------------------------------
// Channel: buses and composition
// ---------------------------------------------------------------------------

TEST(Channel, CommandBusSerializesCommands)
{
    TimingParams t = noRefreshTiming();
    Channel ch(t);
    ASSERT_TRUE(ch.canIssue(CommandKind::Activate, 0, 0));
    ch.issue(CommandKind::Activate, 0, 5, 0);
    // The command bus is busy for one DRAM clock after any command.
    EXPECT_FALSE(ch.cmdBusFree(t.tCK - 1));
    EXPECT_TRUE(ch.cmdBusFree(t.tCK));
    // An ACT to another bank additionally waits out rank-level tRRD.
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 1, t.tCK));
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 1, t.tRRD - 1));
    EXPECT_TRUE(ch.canIssue(CommandKind::Activate, 1, t.tRRD));
}

TEST(Channel, DataBusSerializesBursts)
{
    TimingParams t = noRefreshTiming();
    Channel ch(t);
    ch.issue(CommandKind::Activate, 0, 5, 0);
    ch.issue(CommandKind::Activate, 1, 9, t.tRRD);
    Cycle rd1 = t.tRCD;
    ASSERT_TRUE(ch.canIssue(CommandKind::Read, 0, rd1));
    IssueResult r1 = ch.issue(CommandKind::Read, 0, 5, rd1);
    EXPECT_EQ(r1.dataStart, rd1 + t.tCL);
    EXPECT_EQ(r1.dataEnd, rd1 + t.tCL + t.tBURST);
    // A read to the other bank whose data would overlap must wait.
    Cycle rd2 = rd1 + t.tCCD;
    EXPECT_FALSE(ch.canIssue(CommandKind::Read, 1, rd2));
    Cycle ok = r1.dataEnd - t.tCL;
    EXPECT_TRUE(ch.canIssue(CommandKind::Read, 1, ok));
}

TEST(Channel, RefreshRequiresRankPrecharged)
{
    TimingParams t = noRefreshTiming();
    Channel ch(t);
    ch.issue(CommandKind::Activate, 2, 1, 0);
    EXPECT_FALSE(ch.canIssue(CommandKind::Refresh, 0, t.tCK));
    Cycle pre_at = t.tRAS;
    ch.issue(CommandKind::Precharge, 2, kNoRow, pre_at);
    EXPECT_TRUE(ch.canIssue(CommandKind::Refresh, 0, pre_at + t.tRP));
    IssueResult r = ch.issue(CommandKind::Refresh, 0, kNoRow, pre_at + t.tRP);
    EXPECT_EQ(r.occupancy, t.tRFC);
    // The refreshed rank's banks are locked out for tRFC.
    EXPECT_FALSE(
        ch.canIssue(CommandKind::Activate, 0, pre_at + t.tRP + t.tRFC - 1));
    EXPECT_TRUE(
        ch.canIssue(CommandKind::Activate, 0, pre_at + t.tRP + t.tRFC));
}

TEST(Channel, DualRankConstraintsAreIndependent)
{
    TimingParams t = noRefreshTiming();
    t.banksPerChannel = 8;
    t.ranksPerChannel = 2;
    Channel ch(t);
    ASSERT_EQ(ch.numRanks(), 2);
    ASSERT_EQ(ch.rankOf(3), 0);
    ASSERT_EQ(ch.rankOf(4), 1);

    // Saturate rank 0's four-activate window.
    Cycle now = 0;
    for (BankId b = 0; b < 4; ++b) {
        ASSERT_TRUE(ch.canIssue(CommandKind::Activate, b, now));
        ch.issue(CommandKind::Activate, b, 1, now);
        now += t.tRRD;
    }
    // Rank 0 is tFAW-blocked, but rank 1 can activate immediately.
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 0, now));
    EXPECT_TRUE(ch.canIssue(CommandKind::Activate, 4, now));
}

TEST(Channel, RankSwitchAddsTrtrsOnDataBus)
{
    TimingParams t = noRefreshTiming();
    t.banksPerChannel = 8;
    t.ranksPerChannel = 2;
    Channel ch(t);
    ch.issue(CommandKind::Activate, 0, 1, 0);          // rank 0
    ch.issue(CommandKind::Activate, 4, 1, t.tRRD);     // rank 1
    Cycle rd1 = t.tRCD;
    ch.issue(CommandKind::Read, 0, 1, rd1);
    Cycle data_end = rd1 + t.tCL + t.tBURST;
    // Same-rank read could start once its data slot clears; a rank
    // switch must additionally wait tRTRS.
    Cycle same_rank_ok = data_end - t.tCL;
    EXPECT_FALSE(ch.canIssue(CommandKind::Read, 4, same_rank_ok));
    EXPECT_TRUE(
        ch.canIssue(CommandKind::Read, 4, same_rank_ok + t.tRTRS));
}

TEST(Channel, RefreshOfOneRankLeavesOtherUsable)
{
    TimingParams t = noRefreshTiming();
    t.banksPerChannel = 8;
    t.ranksPerChannel = 2;
    Channel ch(t);
    ch.issue(CommandKind::Refresh, 0, kNoRow, 0); // refresh rank 0
    // Rank 0 locked for tRFC; rank 1 activates right after the cmd bus.
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 0, t.tCK));
    EXPECT_TRUE(ch.canIssue(CommandKind::Activate, 4, t.tCK));
}

TEST(Channel, UncontendedRowHitLatencyNearPaper)
{
    // Row hit: RD at t, data done at t + tCL + tBURST. With the
    // controller transport delays (40 + 35) the paper quotes ~200 cycles
    // end to end; the DRAM part is tCL + tBURST = 125.
    TimingParams t = noRefreshTiming();
    Cycle dram_part = t.tCL + t.tBURST;
    Cycle total = t.cpuToMcDelay + dram_part + t.mcToCpuDelay;
    EXPECT_EQ(total, 200u);
    // Closed bank adds tRCD; conflict adds tRP + tRCD.
    EXPECT_EQ(total + t.tRCD, 275u);
    EXPECT_EQ(total + t.tRP + t.tRCD, 350u);
}

TEST(Timing, Ddr3PresetIsFasterAndWider)
{
    TimingParams d2 = TimingParams::ddr2_800();
    TimingParams d3 = TimingParams::ddr3_1333();
    EXPECT_LT(d3.tCL, d2.tCL);
    EXPECT_LT(d3.tBURST, d2.tBURST);
    EXPECT_EQ(d3.banksPerChannel, 8);
    EXPECT_EQ(d3.tRC, d3.tRAS + d3.tRP);
}

TEST(Bank, AutoPrechargeClosesRowAfterConstraints)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 3);
    bank.read(t.tRCD);
    bank.autoPrecharge();
    EXPECT_TRUE(bank.precharged());
    // Next ACT waits for the implicit precharge: preAllowedAt
    // (tRAS-bound here) + tRP.
    EXPECT_FALSE(bank.canActivate(t.tRAS + t.tRP - 1));
    EXPECT_TRUE(bank.canActivate(t.tRAS + t.tRP));
}

// ---------------------------------------------------------------------------
// Address map
// ---------------------------------------------------------------------------

TEST(AddressMap, RoundTripsAllFields)
{
    TimingParams t = noRefreshTiming();
    AddressMap map(t, 4);
    Coord c{3, 2, 1234, 17};
    EXPECT_EQ(map.decode(map.encode(c)), c);
}

TEST(AddressMap, ConsecutiveBlocksWalkChannelsThenBanks)
{
    TimingParams t = noRefreshTiming();
    AddressMap map(t, 4);
    Coord c0 = map.decode(0);
    Coord c1 = map.decode(32);
    Coord c4 = map.decode(32 * 4);
    EXPECT_EQ(c0.channel, 0);
    EXPECT_EQ(c1.channel, 1);
    EXPECT_EQ(c4.channel, 0);
    EXPECT_EQ(c4.bank, c0.bank + 1);
}

TEST(AddressMap, CapacityMatchesGeometry)
{
    TimingParams t = noRefreshTiming();
    AddressMap map(t, 4);
    std::uint64_t expect = 4ull * 4 * 16384 * 64 * 32;
    EXPECT_EQ(map.capacityBytes(), expect);
}

TEST(AddressMap, DecodeStaysInBounds)
{
    TimingParams t = noRefreshTiming();
    AddressMap map(t, 4);
    for (std::uint64_t addr = 0; addr < map.capacityBytes();
         addr += map.capacityBytes() / 97) {
        Coord c = map.decode(addr);
        EXPECT_GE(c.channel, 0);
        EXPECT_LT(c.channel, 4);
        EXPECT_GE(c.bank, 0);
        EXPECT_LT(c.bank, t.banksPerChannel);
        EXPECT_GE(c.row, 0);
        EXPECT_LT(c.row, t.rowsPerBank);
        EXPECT_GE(c.col, 0);
        EXPECT_LT(c.col, t.colsPerRow);
    }
}
