/**
 * @file
 * Unit tests for the DRAM timing model: protocol specs, bank/rank/channel
 * state machines, bank-group and power-down constraints, and the address
 * interleave.
 */

#include <gtest/gtest.h>

#include "dram/address.hpp"
#include "dram/bank.hpp"
#include "dram/channel.hpp"
#include "dram/protocol.hpp"
#include "dram/rank.hpp"
#include "dram/timing.hpp"

using namespace tcm;
using namespace tcm::dram;

namespace {

TimingParams
noRefreshTiming()
{
    TimingParams t = TimingParams::ddr2_800();
    t.refreshEnabled = false;
    return t;
}

} // namespace

// ---------------------------------------------------------------------------
// TimingParams
// ---------------------------------------------------------------------------

TEST(Timing, NsConversionRoundsAtFiveGigahertz)
{
    TimingParams t = TimingParams::ddr2_800();
    ASSERT_EQ(t.cyclesPerNs, 5.0);
    EXPECT_EQ(t.ns(15.0), 75u);
    EXPECT_EQ(t.ns(2.5), 13u);  // 12.5 rounds up
    EXPECT_EQ(t.ns(10.0), 50u);
    EXPECT_EQ(t.ns(0.0), 0u);
}

TEST(Timing, Ddr2BaselineMatchesTableThree)
{
    TimingParams t = TimingParams::ddr2_800();
    EXPECT_EQ(t.tCL, 75u);
    EXPECT_EQ(t.tRCD, 75u);
    EXPECT_EQ(t.tRP, 75u);
    EXPECT_EQ(t.tBURST, 50u);
    EXPECT_EQ(t.banksPerChannel, 4);
    EXPECT_EQ(t.colsPerRow, 64); // 2 KB row / 32 B blocks
    EXPECT_EQ(t.tRC, t.tRAS + t.tRP);
}

// ---------------------------------------------------------------------------
// Bank state machine
// ---------------------------------------------------------------------------

TEST(Bank, StartsPrechargedAndActivatable)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    EXPECT_TRUE(bank.precharged());
    EXPECT_TRUE(bank.canActivate(0));
    EXPECT_FALSE(bank.canRead(0));
    EXPECT_FALSE(bank.canWrite(0));
    EXPECT_FALSE(bank.canPrecharge(0));
}

TEST(Bank, ActivateOpensRowAfterTrcd)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(100, 7);
    EXPECT_EQ(bank.openRow(), 7);
    EXPECT_FALSE(bank.canActivate(100 + 1)); // already open
    EXPECT_FALSE(bank.canRead(100 + t.tRCD - 1));
    EXPECT_TRUE(bank.canRead(100 + t.tRCD));
    EXPECT_TRUE(bank.canWrite(100 + t.tRCD));
}

TEST(Bank, PrechargeRespectsTras)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 3);
    EXPECT_FALSE(bank.canPrecharge(t.tRAS - 1));
    EXPECT_TRUE(bank.canPrecharge(t.tRAS));
    bank.precharge(t.tRAS);
    EXPECT_TRUE(bank.precharged());
    EXPECT_FALSE(bank.canActivate(t.tRAS + t.tRP - 1));
    EXPECT_TRUE(bank.canActivate(t.tRAS + t.tRP));
}

TEST(Bank, ReadPushesPrechargeOutByTrtp)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 1);
    Cycle rd_at = t.tRAS; // read issued late: tRTP now dominates tRAS
    bank.read(rd_at);
    EXPECT_FALSE(bank.canPrecharge(rd_at + t.tRTP - 1));
    EXPECT_TRUE(bank.canPrecharge(rd_at + t.tRTP));
}

TEST(Bank, WriteRecoveryBlocksPrecharge)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 1);
    Cycle wr_at = t.tRAS;
    bank.write(wr_at);
    Cycle data_end = wr_at + t.tCWL + t.tBURST;
    EXPECT_FALSE(bank.canPrecharge(data_end + t.tWR - 1));
    EXPECT_TRUE(bank.canPrecharge(data_end + t.tWR));
}

TEST(Bank, SameBankActToActRespectsTrc)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 1);
    bank.read(t.tRCD);
    bank.precharge(t.tRAS);
    // Even though tRP has elapsed, tRC must also hold.
    Cycle trp_done = t.tRAS + t.tRP;
    EXPECT_GE(trp_done, t.tRC); // with DDR2-800, tRC == tRAS + tRP
    EXPECT_TRUE(bank.canActivate(t.tRC));
}

TEST(Bank, ActivateOccupancyIsTrcd)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    EXPECT_EQ(bank.activate(0, 1), t.tRCD);
    EXPECT_EQ(bank.read(t.tRCD), t.tBURST);
    EXPECT_EQ(bank.precharge(t.tRAS + t.tRTP + 1000), t.tRP);
}

TEST(Bank, RefreshBlocksActivateForTrfc)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.refresh(500);
    EXPECT_FALSE(bank.canActivate(500 + t.tRFC - 1));
    EXPECT_TRUE(bank.canActivate(500 + t.tRFC));
}

// ---------------------------------------------------------------------------
// Rank constraints
// ---------------------------------------------------------------------------

TEST(Rank, TrrdSeparatesActivates)
{
    TimingParams t = noRefreshTiming();
    Rank rank(t);
    EXPECT_TRUE(rank.canActivate(0, 0));
    rank.recordActivate(0, 0);
    EXPECT_FALSE(rank.canActivate(t.tRRD_L - 1, 0));
    EXPECT_TRUE(rank.canActivate(t.tRRD_L, 0));
}

TEST(Rank, FourActivateWindowEnforced)
{
    TimingParams t = noRefreshTiming();
    Rank rank(t);
    Cycle now = 0;
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(rank.canActivate(now, 0));
        rank.recordActivate(now, 0);
        now += t.tRRD_L;
    }
    // The fifth ACT must wait until tFAW after the first.
    EXPECT_FALSE(rank.canActivate(now, 0));
    EXPECT_TRUE(rank.canActivate(t.tFAW, 0));
}

TEST(Rank, WriteToReadTurnaround)
{
    TimingParams t = noRefreshTiming();
    Rank rank(t);
    rank.recordWrite(100);
    Cycle ready = 100 + t.tCWL + t.tBURST + t.tWTR;
    EXPECT_FALSE(rank.canRead(ready - 1));
    EXPECT_TRUE(rank.canRead(ready));
}

// ---------------------------------------------------------------------------
// Channel: buses and composition
// ---------------------------------------------------------------------------

TEST(Channel, CommandBusSerializesCommands)
{
    TimingParams t = noRefreshTiming();
    Channel ch(t);
    ASSERT_TRUE(ch.canIssue(CommandKind::Activate, 0, 0));
    ch.issue(CommandKind::Activate, 0, 5, 0);
    // The command bus is busy for one DRAM clock after any command.
    EXPECT_FALSE(ch.cmdBusFree(t.tCK - 1));
    EXPECT_TRUE(ch.cmdBusFree(t.tCK));
    // An ACT to another bank additionally waits out rank-level tRRD.
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 1, t.tCK));
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 1, t.tRRD_L - 1));
    EXPECT_TRUE(ch.canIssue(CommandKind::Activate, 1, t.tRRD_L));
}

TEST(Channel, DataBusSerializesBursts)
{
    TimingParams t = noRefreshTiming();
    Channel ch(t);
    ch.issue(CommandKind::Activate, 0, 5, 0);
    ch.issue(CommandKind::Activate, 1, 9, t.tRRD_L);
    Cycle rd1 = t.tRCD;
    ASSERT_TRUE(ch.canIssue(CommandKind::Read, 0, rd1));
    IssueResult r1 = ch.issue(CommandKind::Read, 0, 5, rd1);
    EXPECT_EQ(r1.dataStart, rd1 + t.tCL);
    EXPECT_EQ(r1.dataEnd, rd1 + t.tCL + t.tBURST);
    // A read to the other bank whose data would overlap must wait.
    Cycle rd2 = rd1 + t.tCCD_L;
    EXPECT_FALSE(ch.canIssue(CommandKind::Read, 1, rd2));
    Cycle ok = r1.dataEnd - t.tCL;
    EXPECT_TRUE(ch.canIssue(CommandKind::Read, 1, ok));
}

TEST(Channel, RefreshRequiresRankPrecharged)
{
    TimingParams t = noRefreshTiming();
    Channel ch(t);
    ch.issue(CommandKind::Activate, 2, 1, 0);
    EXPECT_FALSE(ch.canIssue(CommandKind::Refresh, 0, t.tCK));
    Cycle pre_at = t.tRAS;
    ch.issue(CommandKind::Precharge, 2, kNoRow, pre_at);
    EXPECT_TRUE(ch.canIssue(CommandKind::Refresh, 0, pre_at + t.tRP));
    IssueResult r = ch.issue(CommandKind::Refresh, 0, kNoRow, pre_at + t.tRP);
    EXPECT_EQ(r.occupancy, t.tRFC);
    // The refreshed rank's banks are locked out for tRFC.
    EXPECT_FALSE(
        ch.canIssue(CommandKind::Activate, 0, pre_at + t.tRP + t.tRFC - 1));
    EXPECT_TRUE(
        ch.canIssue(CommandKind::Activate, 0, pre_at + t.tRP + t.tRFC));
}

TEST(Channel, DualRankConstraintsAreIndependent)
{
    TimingParams t = noRefreshTiming();
    t.banksPerChannel = 8;
    t.ranksPerChannel = 2;
    Channel ch(t);
    ASSERT_EQ(ch.numRanks(), 2);
    ASSERT_EQ(ch.rankOf(3), 0);
    ASSERT_EQ(ch.rankOf(4), 1);

    // Saturate rank 0's four-activate window.
    Cycle now = 0;
    for (BankId b = 0; b < 4; ++b) {
        ASSERT_TRUE(ch.canIssue(CommandKind::Activate, b, now));
        ch.issue(CommandKind::Activate, b, 1, now);
        now += t.tRRD_L;
    }
    // Rank 0 is tFAW-blocked, but rank 1 can activate immediately.
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 0, now));
    EXPECT_TRUE(ch.canIssue(CommandKind::Activate, 4, now));
}

TEST(Channel, RankSwitchAddsTrtrsOnDataBus)
{
    TimingParams t = noRefreshTiming();
    t.banksPerChannel = 8;
    t.ranksPerChannel = 2;
    Channel ch(t);
    ch.issue(CommandKind::Activate, 0, 1, 0);          // rank 0
    ch.issue(CommandKind::Activate, 4, 1, t.tRRD_L);   // rank 1
    Cycle rd1 = t.tRCD;
    ch.issue(CommandKind::Read, 0, 1, rd1);
    Cycle data_end = rd1 + t.tCL + t.tBURST;
    // Same-rank read could start once its data slot clears; a rank
    // switch must additionally wait tRTRS.
    Cycle same_rank_ok = data_end - t.tCL;
    EXPECT_FALSE(ch.canIssue(CommandKind::Read, 4, same_rank_ok));
    EXPECT_TRUE(
        ch.canIssue(CommandKind::Read, 4, same_rank_ok + t.tRTRS));
}

TEST(Channel, RefreshOfOneRankLeavesOtherUsable)
{
    TimingParams t = noRefreshTiming();
    t.banksPerChannel = 8;
    t.ranksPerChannel = 2;
    Channel ch(t);
    ch.issue(CommandKind::Refresh, 0, kNoRow, 0); // refresh rank 0
    // Rank 0 locked for tRFC; rank 1 activates right after the cmd bus.
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 0, t.tCK));
    EXPECT_TRUE(ch.canIssue(CommandKind::Activate, 4, t.tCK));
}

TEST(Channel, UncontendedRowHitLatencyNearPaper)
{
    // Row hit: RD at t, data done at t + tCL + tBURST. With the
    // controller transport delays (40 + 35) the paper quotes ~200 cycles
    // end to end; the DRAM part is tCL + tBURST = 125.
    TimingParams t = noRefreshTiming();
    Cycle dram_part = t.tCL + t.tBURST;
    Cycle total = t.cpuToMcDelay + dram_part + t.mcToCpuDelay;
    EXPECT_EQ(total, 200u);
    // Closed bank adds tRCD; conflict adds tRP + tRCD.
    EXPECT_EQ(total + t.tRCD, 275u);
    EXPECT_EQ(total + t.tRP + t.tRCD, 350u);
}

TEST(Timing, Ddr3PresetIsFasterAndWider)
{
    TimingParams d2 = TimingParams::ddr2_800();
    TimingParams d3 = TimingParams::ddr3_1333();
    EXPECT_LT(d3.tCL, d2.tCL);
    EXPECT_LT(d3.tBURST, d2.tBURST);
    EXPECT_EQ(d3.banksPerChannel, 8);
    EXPECT_EQ(d3.tRC, d3.tRAS + d3.tRP);
}

TEST(Bank, AutoPrechargeClosesRowAfterConstraints)
{
    TimingParams t = noRefreshTiming();
    Bank bank(t);
    bank.activate(0, 3);
    bank.read(t.tRCD);
    bank.autoPrecharge();
    EXPECT_TRUE(bank.precharged());
    // Next ACT waits for the implicit precharge: preAllowedAt
    // (tRAS-bound here) + tRP.
    EXPECT_FALSE(bank.canActivate(t.tRAS + t.tRP - 1));
    EXPECT_TRUE(bank.canActivate(t.tRAS + t.tRP));
}

// ---------------------------------------------------------------------------
// Address map
// ---------------------------------------------------------------------------

TEST(AddressMap, RoundTripsAllFields)
{
    TimingParams t = noRefreshTiming();
    AddressMap map(t, 4);
    Coord c{3, 2, 1234, 17};
    EXPECT_EQ(map.decode(map.encode(c)), c);
}

TEST(AddressMap, ConsecutiveBlocksWalkChannelsThenBanks)
{
    TimingParams t = noRefreshTiming();
    AddressMap map(t, 4);
    Coord c0 = map.decode(0);
    Coord c1 = map.decode(32);
    Coord c4 = map.decode(32 * 4);
    EXPECT_EQ(c0.channel, 0);
    EXPECT_EQ(c1.channel, 1);
    EXPECT_EQ(c4.channel, 0);
    EXPECT_EQ(c4.bank, c0.bank + 1);
}

TEST(AddressMap, CapacityMatchesGeometry)
{
    TimingParams t = noRefreshTiming();
    AddressMap map(t, 4);
    std::uint64_t expect = 4ull * 4 * 16384 * 64 * 32;
    EXPECT_EQ(map.capacityBytes(), expect);
}

TEST(AddressMap, DecodeStaysInBounds)
{
    TimingParams t = noRefreshTiming();
    AddressMap map(t, 4);
    for (std::uint64_t addr = 0; addr < map.capacityBytes();
         addr += map.capacityBytes() / 97) {
        Coord c = map.decode(addr);
        EXPECT_GE(c.channel, 0);
        EXPECT_LT(c.channel, 4);
        EXPECT_GE(c.bank, 0);
        EXPECT_LT(c.bank, t.banksPerChannel);
        EXPECT_GE(c.row, 0);
        EXPECT_LT(c.row, t.rowsPerBank);
        EXPECT_GE(c.col, 0);
        EXPECT_LT(c.col, t.colsPerRow);
    }
}

// ---------------------------------------------------------------------------
// Protocol registry and derivation
// ---------------------------------------------------------------------------

class ProtocolSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProtocolSuite, PresetValidatesAndDerivesConsistently)
{
    ProtocolLookup lookup = protocolByName(GetParam());
    ASSERT_TRUE(lookup.ok) << lookup.error;
    const ProtocolSpec &spec = lookup.spec;
    EXPECT_EQ(spec.validate(), "");

    TimingParams t = spec.derive();
    EXPECT_EQ(t.protocol, spec.name);
    EXPECT_GT(t.tCK, 0u);
    EXPECT_GT(t.tBURST, 0u);
    EXPECT_EQ(t.banksPerChannel, spec.bankGroupsPerRank *
                                     spec.banksPerGroup *
                                     spec.ranksPerChannel);
    EXPECT_EQ(t.bankGroupsPerRank, spec.bankGroupsPerRank);
    EXPECT_EQ(t.banksPerGroup(), spec.banksPerGroup);
    // The long constraints dominate their short split.
    EXPECT_GE(t.tCCD_L, t.tCCD_S);
    EXPECT_GE(t.tRRD_L, t.tRRD_S);
    // Single column-spacing register validity: two short gaps cover a
    // long one.
    EXPECT_GE(2 * t.tCCD_S, t.tCCD_L);
    // Row cycle identity holds (explicit tRC never undercuts it).
    EXPECT_GE(t.tRC, t.tRAS);
}

TEST_P(ProtocolSuite, DatasheetMaxRuleApplies)
{
    ProtocolLookup lookup = protocolByName(GetParam());
    ASSERT_TRUE(lookup.ok);
    const ProtocolSpec &spec = lookup.spec;
    for (const NamedParam &p : spec.table()) {
        double ns = spec.effectiveNs(p.value);
        EXPECT_GE(ns, p.value.ns) << p.name;
        EXPECT_GE(ns, p.value.ck * spec.tCkNs - 1e-9) << p.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolSuite,
                         ::testing::ValuesIn(protocolNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(Protocol, UnknownNameGivesStructuredError)
{
    ProtocolLookup lookup = protocolByName("ddr9-9000");
    EXPECT_FALSE(lookup.ok);
    EXPECT_NE(lookup.error.find("unknown DRAM protocol 'ddr9-9000'"),
              std::string::npos)
        << lookup.error;
    // The error names every registered protocol.
    for (const std::string &name : protocolNames())
        EXPECT_NE(lookup.error.find(name), std::string::npos)
            << lookup.error;
}

TEST(Protocol, Ddr2DerivationMatchesLegacyPreset)
{
    // The seed repo hand-wrote these numbers; every golden trace assumes
    // them. The spec-derived block must reproduce them bit-for-bit.
    TimingParams t = protocols::ddr2_800().derive();
    EXPECT_EQ(t.tCK, 13u);
    EXPECT_EQ(t.tCL, 75u);
    EXPECT_EQ(t.tCWL, 63u);
    EXPECT_EQ(t.tRCD, 75u);
    EXPECT_EQ(t.tRP, 75u);
    EXPECT_EQ(t.tRAS, 225u);
    EXPECT_EQ(t.tRC, 300u);
    EXPECT_EQ(t.tBURST, 50u);
    EXPECT_EQ(t.tCCD_S, 25u);
    EXPECT_EQ(t.tCCD_L, 25u);
    EXPECT_EQ(t.tRRD_S, 38u);
    EXPECT_EQ(t.tRRD_L, 38u);
    EXPECT_EQ(t.tWR, 75u);
    EXPECT_EQ(t.tWTR, 38u);
    EXPECT_EQ(t.tRTP, 38u);
    EXPECT_EQ(t.tFAW, 188u);
    EXPECT_EQ(t.tRTRS, 25u);
    EXPECT_EQ(t.tREFI, 39000u);
    EXPECT_EQ(t.tRFC, 638u);
    EXPECT_EQ(t.banksPerChannel, 4);
    EXPECT_EQ(t.ranksPerChannel, 1);
    EXPECT_EQ(t.bankGroupsPerRank, 1);
}

TEST(Protocol, ValidationRejectsBadSpecs)
{
    ProtocolSpec s = protocols::ddr4_2400();
    s.tCCD_L = {0.0, 2}; // below tCCD_S (4 ck)
    EXPECT_NE(s.validate().find("tCCD_L"), std::string::npos);

    s = protocols::ddr4_2400();
    s.tCCD_S = {0.0, 2}; // 2*2 < 6: single-register premise broken
    EXPECT_NE(s.validate().find("2*tCCD_S"), std::string::npos);

    s = protocols::ddr2_800();
    s.tCkNs = 0.0;
    EXPECT_NE(s.validate().find("tCK"), std::string::npos);

    s = protocols::ddr2_800();
    s.tRAS = {-1.0, 0};
    EXPECT_NE(s.validate().find("tRAS"), std::string::npos);
}

// ---------------------------------------------------------------------------
// DDR4 bank groups
// ---------------------------------------------------------------------------

namespace {

TimingParams
ddr4NoRefresh()
{
    TimingParams t = protocols::ddr4_2400().derive();
    t.refreshEnabled = false;
    return t;
}

} // namespace

TEST(BankGroups, GeometryHelpersPartitionBanks)
{
    TimingParams t = ddr4NoRefresh();
    ASSERT_EQ(t.bankGroupsPerRank, 4);
    ASSERT_EQ(t.banksPerGroup(), 4);
    // Banks 0-3 are group 0, 4-7 group 1, ...
    EXPECT_EQ(t.groupInRank(0), 0);
    EXPECT_EQ(t.groupInRank(3), 0);
    EXPECT_EQ(t.groupInRank(4), 1);
    EXPECT_EQ(t.groupInRank(15), 3);
    EXPECT_EQ(t.groupOfBank(15), 3);
}

TEST(BankGroups, SameGroupColumnsWaitTccdLong)
{
    TimingParams t = ddr4NoRefresh();
    ASSERT_LT(t.tCCD_S, t.tCCD_L);
    Channel ch(t);
    ch.issue(CommandKind::Activate, 0, 1, 0); // group 0
    Cycle act2 = t.tRRD_S;
    ch.issue(CommandKind::Activate, 1, 1, act2); // same group 0
    Cycle rd1 = 1000; // all banks ready
    ch.issue(CommandKind::Read, 0, 1, rd1);
    // Same group: tCCD_S is not enough, tCCD_L is.
    EXPECT_FALSE(ch.canIssue(CommandKind::Read, 1, rd1 + t.tCCD_S));
    EXPECT_TRUE(ch.canIssue(CommandKind::Read, 1, rd1 + t.tCCD_L));
    EXPECT_EQ(ch.earliestIssue(CommandKind::Read, 1), rd1 + t.tCCD_L);
}

TEST(BankGroups, CrossGroupColumnsWaitOnlyTccdShort)
{
    TimingParams t = ddr4NoRefresh();
    Channel ch(t);
    ch.issue(CommandKind::Activate, 0, 1, 0);    // group 0
    ch.issue(CommandKind::Activate, 4, 1, t.tRRD_S); // group 1
    Cycle rd1 = 1000;
    ch.issue(CommandKind::Read, 0, 1, rd1);
    // Cross group: tCCD_S suffices (data bus permitting; tBURST at
    // DDR4-2400 is well under tCCD_S * tCK here).
    EXPECT_FALSE(ch.canIssue(CommandKind::Read, 4, rd1 + t.tCCD_S - 1));
    EXPECT_TRUE(ch.canIssue(CommandKind::Read, 4, rd1 + t.tCCD_S));
}

TEST(BankGroups, SameGroupActivatesWaitTrrdLong)
{
    TimingParams t = ddr4NoRefresh();
    ASSERT_LT(t.tRRD_S, t.tRRD_L);
    Channel ch(t);
    ch.issue(CommandKind::Activate, 0, 1, 0); // group 0
    // Same group (bank 1): only legal after tRRD_L.
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 1, t.tRRD_L - 1));
    EXPECT_TRUE(ch.canIssue(CommandKind::Activate, 1, t.tRRD_L));
    EXPECT_EQ(ch.earliestIssue(CommandKind::Activate, 1), t.tRRD_L);
    // Cross group (bank 4): legal at tRRD_S already.
    EXPECT_TRUE(ch.canIssue(CommandKind::Activate, 4, t.tRRD_S));
    EXPECT_EQ(ch.earliestIssue(CommandKind::Activate, 4), t.tRRD_S);
}

TEST(BankGroups, Ddr2SplitsCollapseToClassicConstraints)
{
    TimingParams t = TimingParams::ddr2_800();
    EXPECT_EQ(t.bankGroupsPerRank, 1);
    EXPECT_EQ(t.tCCD_S, t.tCCD_L);
    EXPECT_EQ(t.tRRD_S, t.tRRD_L);
    // Every bank shares the single group, so the "same group" long
    // spacing is the only spacing — the legacy behavior.
    for (int b = 0; b < t.banksPerChannel; ++b)
        EXPECT_EQ(t.groupOfBank(b), 0);
}

// ---------------------------------------------------------------------------
// Power-down state machine
// ---------------------------------------------------------------------------

TEST(PowerDown, RankEntersAndExitsWithTckeAndTxp)
{
    TimingParams t = noRefreshTiming();
    Rank rank(t);
    EXPECT_FALSE(rank.poweredDown());
    EXPECT_TRUE(rank.canPowerDown(0));
    EXPECT_FALSE(rank.canPowerUp(0));

    rank.recordPowerDown(100);
    EXPECT_TRUE(rank.poweredDown());
    EXPECT_FALSE(rank.commandsAllowed(100));
    // Minimum residency: tCKE before the PDX.
    EXPECT_FALSE(rank.canPowerUp(100 + t.tCKE - 1));
    EXPECT_TRUE(rank.canPowerUp(100 + t.tCKE));
    EXPECT_EQ(rank.earliestPowerUp(), 100 + t.tCKE);
    // Commands resume only tXP after the exit.
    EXPECT_EQ(rank.earliestCommandsAllowed(), 100 + t.tCKE + t.tXP);

    Cycle up = 100 + t.tCKE;
    rank.recordPowerUp(up);
    EXPECT_FALSE(rank.poweredDown());
    EXPECT_FALSE(rank.commandsAllowed(up + t.tXP - 1));
    EXPECT_TRUE(rank.commandsAllowed(up + t.tXP));
    EXPECT_EQ(rank.powerDownCycles(up + 1000), t.tCKE);
}

TEST(PowerDown, ChannelGatesCommandsOnPowerState)
{
    TimingParams t = noRefreshTiming();
    Channel ch(t);
    ASSERT_TRUE(ch.canIssue(CommandKind::PowerDown, 0, 0));
    ch.issue(CommandKind::PowerDown, 0, kNoRow, 0);
    EXPECT_TRUE(ch.rankPoweredDown(0));
    // No ACT/REF while down; no re-entry either.
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 0, t.tCKE + 100));
    EXPECT_FALSE(ch.canIssue(CommandKind::Refresh, 0, t.tCKE + 100));
    EXPECT_FALSE(ch.canIssue(CommandKind::PowerDown, 0, t.tCKE + 100));
    EXPECT_EQ(ch.earliestIssue(CommandKind::PowerDown, 0), kCycleNever);
    // PDX waits out tCKE.
    EXPECT_FALSE(ch.canIssue(CommandKind::PowerUp, 0, t.tCKE - 1));
    ASSERT_TRUE(ch.canIssue(CommandKind::PowerUp, 0, t.tCKE));
    ch.issue(CommandKind::PowerUp, 0, kNoRow, t.tCKE);
    EXPECT_FALSE(ch.rankPoweredDown(0));
    // First ACT only after tXP.
    EXPECT_FALSE(ch.canIssue(CommandKind::Activate, 0, t.tCKE + t.tXP - 1));
    EXPECT_TRUE(ch.canIssue(CommandKind::Activate, 0, t.tCKE + t.tXP));
}

TEST(PowerDown, RequiresRankPrecharged)
{
    TimingParams t = noRefreshTiming();
    Channel ch(t);
    ch.issue(CommandKind::Activate, 0, 1, 0);
    EXPECT_FALSE(ch.canIssue(CommandKind::PowerDown, 0, t.tCK));
    EXPECT_EQ(ch.earliestIssue(CommandKind::PowerDown, 0), kCycleNever);
}
