/**
 * @file
 * Interval-sampling contract (sim/sampling.hpp, DESIGN.md section 13):
 * window-chunked stepping is bit-identical to one contiguous run of the
 * same length, a sampled runWorkload is exactly the prefix-slice of the
 * full run's dynamics (scheduler time constants scaled to the FULL
 * measure), per-window RSE is populated for sampled runs only, and the
 * "W:K[:WARMUP]" spec parser accepts the documented grammar and rejects
 * everything else.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sched/factory.hpp"
#include "sim/experiment.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

using namespace tcm;

namespace {

sim::SystemConfig
smallConfig()
{
    sim::SystemConfig config;
    config.numCores = 6;
    config.numChannels = 2;
    return config;
}

sched::SchedulerSpec
specFor(const std::string &name)
{
    sched::SpecLookup lookup = sched::specByName(name);
    EXPECT_TRUE(lookup.ok) << lookup.error;
    return lookup.spec;
}

} // namespace

TEST(SamplingConfig, ParseAcceptsTheDocumentedGrammar)
{
    std::string err;
    sim::SamplingConfig c = sim::SamplingConfig::parse("15000:3", &err);
    EXPECT_TRUE(c.enabled) << err;
    EXPECT_EQ(c.window, 15'000u);
    EXPECT_EQ(c.windows, 3);
    EXPECT_EQ(c.warmup, 30'000u); // default warmup when omitted
    EXPECT_EQ(c.totalMeasure(), 45'000u);

    c = sim::SamplingConfig::parse("5000:4:10000", &err);
    EXPECT_TRUE(c.enabled) << err;
    EXPECT_EQ(c.window, 5'000u);
    EXPECT_EQ(c.windows, 4);
    EXPECT_EQ(c.warmup, 10'000u);
    EXPECT_EQ(c.describe(), "5000:4:10000");

    // describe() round-trips through parse().
    sim::SamplingConfig back =
        sim::SamplingConfig::parse(c.describe(), &err);
    EXPECT_TRUE(back.enabled);
    EXPECT_EQ(back.window, c.window);
    EXPECT_EQ(back.windows, c.windows);
    EXPECT_EQ(back.warmup, c.warmup);

    sim::SamplingConfig off;
    EXPECT_FALSE(off.enabled);
    EXPECT_EQ(off.describe(), "off");
}

TEST(SamplingConfig, ParseRejectsMalformedSpecs)
{
    const char *bad[] = {
        "",          // empty
        "15000",     // missing K
        "abc:3",     // non-numeric W
        "15000:x",   // non-numeric K
        "500:3",     // W below the floor (1000)
        "15000:0",   // K < 1
        "15000:3:z", // non-numeric warmup
        "15000:3:10000:9", // trailing field
    };
    for (const char *spec : bad) {
        std::string err;
        sim::SamplingConfig c = sim::SamplingConfig::parse(spec, &err);
        EXPECT_FALSE(c.enabled) << "accepted '" << spec << "'";
        EXPECT_FALSE(err.empty()) << "no diagnostic for '" << spec << "'";
    }
}

TEST(SamplingConfig, EffectiveHorizonSwitchesWithSampling)
{
    sim::ExperimentScale scale;
    scale.warmup = 50'000;
    scale.measure = 300'000;
    EXPECT_EQ(scale.effectiveWarmup(), 50'000u);
    EXPECT_EQ(scale.effectiveMeasure(), 300'000u);

    std::string err;
    scale.sampling = sim::SamplingConfig::parse("15000:3:20000", &err);
    ASSERT_TRUE(scale.sampling.enabled) << err;
    EXPECT_EQ(scale.effectiveWarmup(), 20'000u);
    EXPECT_EQ(scale.effectiveMeasure(), 45'000u);
}

/**
 * The load-bearing simulator property behind sampling: K windows of
 * step(W) must land the simulation in exactly the state one step(K*W)
 * does — the cycle-skip kernel's horizon clamp contract. Checked across
 * schedulers with very different decision cadences.
 */
TEST(Sampling, WindowChunkedSteppingIsBitIdentical)
{
    const Cycle warmup = 5'000;
    const Cycle window = 3'000;
    const int windows = 4;
    const sim::SystemConfig config = smallConfig();
    const auto mix = workload::randomMix(config.numCores, 1.0, 7);

    for (const char *name : {"frfcfs", "atlas", "tcm"}) {
        sched::SchedulerSpec spec = specFor(name);
        spec.scaleToRun(300'000); // full-run constants, both legs

        sim::Simulator contiguous(config, mix, spec, 11);
        contiguous.step(warmup);
        contiguous.beginMeasurement();
        contiguous.step(window * windows);

        sim::Simulator chunked(config, mix, spec, 11);
        chunked.step(warmup);
        chunked.beginMeasurement();
        for (int k = 0; k < windows; ++k)
            chunked.step(window);

        ASSERT_EQ(contiguous.now(), chunked.now()) << name;
        for (ThreadId t = 0; t < config.numCores; ++t)
            EXPECT_EQ(contiguous.measuredIpc(t), chunked.measuredIpc(t))
                << name << " thread " << t
                << ": chunked stepping diverged from contiguous";
    }
}

/**
 * A sampled runWorkload is the prefix-slice of the full run: same
 * shared IPCs as a manual simulation whose scheduler constants scale to
 * the FULL measure but which only executes the sampled horizon.
 */
TEST(Sampling, SampledRunIsAPrefixSliceOfTheFullRun)
{
    sim::SystemConfig config = smallConfig();
    sim::ExperimentScale scale;
    scale.warmup = 20'000;
    scale.measure = 100'000;
    std::string err;
    scale.sampling = sim::SamplingConfig::parse("3000:4:4000", &err);
    ASSERT_TRUE(scale.sampling.enabled) << err;

    const auto mix = workload::randomMix(config.numCores, 1.0, 7);
    sim::AloneIpcCache cache(config, scale.effectiveWarmup(),
                             scale.effectiveMeasure());
    sim::RunResult r = sim::runWorkload(config, mix, specFor("tcm"), scale,
                                        cache, 11);

    sched::SchedulerSpec ref = specFor("tcm");
    ref.scaleToRun(scale.measure); // FULL measure, not the sampled one
    sim::Simulator sim(config, mix, ref, 11);
    sim.step(scale.sampling.warmup);
    sim.beginMeasurement();
    sim.step(scale.sampling.totalMeasure());

    ASSERT_EQ(r.ipcShared.size(), mix.size());
    for (std::size_t t = 0; t < mix.size(); ++t)
        EXPECT_EQ(r.ipcShared[t], sim.measuredIpc(static_cast<ThreadId>(t)))
            << "thread " << t;
}

TEST(Sampling, RseIsPopulatedForSampledRunsOnly)
{
    sim::SystemConfig config = smallConfig();
    const auto mix = workload::randomMix(config.numCores, 1.0, 7);

    sim::ExperimentScale full;
    full.warmup = 4'000;
    full.measure = 12'000;
    {
        sim::AloneIpcCache cache(config, full.effectiveWarmup(),
                                 full.effectiveMeasure());
        sim::RunResult r = sim::runWorkload(config, mix, specFor("tcm"),
                                            full, cache, 11);
        EXPECT_TRUE(r.ipcRse.empty())
            << "full runs carry no window statistics";
    }

    sim::ExperimentScale sampled = full;
    sampled.measure = 100'000;
    std::string err;
    sampled.sampling = sim::SamplingConfig::parse("3000:4:4000", &err);
    ASSERT_TRUE(sampled.sampling.enabled) << err;
    {
        sim::AloneIpcCache cache(config, sampled.effectiveWarmup(),
                                 sampled.effectiveMeasure());
        sim::RunResult r = sim::runWorkload(config, mix, specFor("tcm"),
                                            sampled, cache, 11);
        ASSERT_EQ(r.ipcRse.size(), mix.size());
        for (std::size_t t = 0; t < r.ipcRse.size(); ++t) {
            EXPECT_GE(r.ipcRse[t], 0.0) << "thread " << t;
            EXPECT_LT(r.ipcRse[t], 10.0) << "thread " << t;
        }
        // Metrics computed from same-horizon ratios stay sane.
        EXPECT_GT(r.metrics.weightedSpeedup, 0.0);
        EXPECT_GT(r.metrics.maxSlowdown, 0.0);
        EXPECT_GT(r.metrics.harmonicSpeedup, 0.0);
    }
}

TEST(Sampling, SingleWindowRunsSkipTheRse)
{
    sim::SystemConfig config = smallConfig();
    const auto mix = workload::randomMix(config.numCores, 1.0, 7);
    sim::ExperimentScale scale;
    scale.warmup = 4'000;
    scale.measure = 100'000;
    std::string err;
    scale.sampling = sim::SamplingConfig::parse("6000:1:4000", &err);
    ASSERT_TRUE(scale.sampling.enabled) << err;

    sim::AloneIpcCache cache(config, scale.effectiveWarmup(),
                             scale.effectiveMeasure());
    sim::RunResult r = sim::runWorkload(config, mix, specFor("tcm"), scale,
                                        cache, 11);
    EXPECT_TRUE(r.ipcRse.empty())
        << "one window has no variance to report";
}
