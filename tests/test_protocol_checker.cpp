/**
 * @file
 * Tests for the independent DDR2 protocol checker.
 *
 * Three layers:
 *  1. Negative unit tests: hand-crafted illegal command sequences, one
 *     per constraint, each asserting the violation carries the right
 *     constraint name. The checker needs these to be trusted — a
 *     validator that has never flagged anything proves nothing.
 *  2. Positive unit tests: legal sequences (including auto-precharge
 *     riders) must pass clean.
 *  3. Randomized cross-scheduler stress: every scheduler of the paper
 *     runs randomized workloads on randomized small configurations with
 *     the checker attached; zero violations required. Because the
 *     checker reports violations as *data* (never asserts), this
 *     audit holds even in builds where NDEBUG elides the DRAM model's
 *     own `canIssue` assertions.
 */

#include <string>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "dram/protocol.hpp"
#include "dram/protocol_checker.hpp"
#include "mem/controller.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

using namespace tcm;
using dram::CommandKind;
using dram::Constraint;

namespace {

/** Feed hand-crafted events into a checker (rank derived from bank). */
struct Feeder
{
    dram::TimingParams timing;
    dram::ProtocolChecker checker;

    explicit Feeder(const dram::TimingParams &t,
                    dram::CheckerParams p = dram::CheckerParams{})
        : timing(t), checker(timing, p)
    {
    }

    void
    send(Cycle cycle, CommandKind kind, BankId bank, RowId row = kNoRow,
         bool autoPre = false)
    {
        dram::CommandEvent e;
        e.cycle = cycle;
        e.channel = 0;
        e.rank = bank / timing.banksPerRank();
        e.bank = bank;
        e.kind = kind;
        e.row = row;
        e.autoPre = autoPre;
        checker.onCommand(e);
    }
};

dram::TimingParams
dualRank()
{
    dram::TimingParams t = dram::TimingParams::ddr2_800();
    t.ranksPerChannel = 2;
    t.banksPerChannel = 8;
    return t;
}

dram::TimingParams
eightBank()
{
    dram::TimingParams t = dram::TimingParams::ddr2_800();
    t.banksPerChannel = 8;
    return t;
}

dram::TimingParams
ddr4()
{
    return dram::protocols::ddr4_2400().derive();
}

} // namespace

// ---------------------------------------------------------------------------
// Negative tests: every constraint must fire, with the right name.
// ---------------------------------------------------------------------------

TEST(CheckerNegative, CommandBusConflict)
{
    // Two ACTs 10 cycles apart (tCK = 13) to *different ranks*, so no
    // rank-level constraint muddies the verdict.
    Feeder f(dualRank());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(110, CommandKind::Activate, 4, 1);
    EXPECT_EQ(f.checker.countOf(Constraint::CmdBusConflict), 1u);
    EXPECT_EQ(f.checker.violationCount(), 1u);
    EXPECT_STREQ(dram::constraintName(Constraint::CmdBusConflict),
                 "cmd-bus");
}

TEST(CheckerNegative, ActivateWithRowOpen)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(500, CommandKind::Activate, 0, 2); // row 1 never precharged
    EXPECT_EQ(f.checker.countOf(Constraint::ActRowOpen), 1u);
}

TEST(CheckerNegative, ActBeforeTrpElapsed)
{
    // PRE at the earliest legal cycle (tRAS = 225), then ACT 50 cycles
    // later: tRP (75) not yet satisfied.
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(325, CommandKind::Precharge, 0);
    f.send(375, CommandKind::Activate, 0, 2);
    EXPECT_GE(f.checker.countOf(Constraint::Trp), 1u);
    ASSERT_FALSE(f.checker.violations().empty());
    EXPECT_NE(f.checker.violations()[0].message.find("tR"),
              std::string::npos);
}

TEST(CheckerNegative, ActBeforeTrcElapsed)
{
    // An (illegally) early PRE lets the tRP bound pass while tRC
    // (300 from the first ACT) is still violated.
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(150, CommandKind::Precharge, 0); // also flags tRAS
    f.send(250, CommandKind::Activate, 0, 2);
    EXPECT_EQ(f.checker.countOf(Constraint::Trc), 1u);
    EXPECT_EQ(f.checker.countOf(Constraint::Tras), 1u);
    EXPECT_EQ(f.checker.countOf(Constraint::Trp), 0u);
}

TEST(CheckerNegative, ReadBeforeTrcdElapsed)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(150, CommandKind::Read, 0, 1); // tRCD = 75, legal at 175
    EXPECT_EQ(f.checker.countOf(Constraint::Trcd), 1u);
    EXPECT_EQ(f.checker.violations()[0].earliestLegal, 175u);
}

TEST(CheckerNegative, ReadOnClosedBank)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Read, 0, 1); // no ACT ever
    EXPECT_EQ(f.checker.countOf(Constraint::ColClosedBank), 1u);
    EXPECT_EQ(f.checker.violations()[0].earliestLegal, kCycleNever);
}

TEST(CheckerNegative, ReadWrongRow)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(200, CommandKind::Read, 0, 2); // row 1 is open
    EXPECT_EQ(f.checker.countOf(Constraint::ColWrongRow), 1u);
    EXPECT_EQ(f.checker.countOf(Constraint::ColClosedBank), 0u);
}

TEST(CheckerNegative, PrechargeBeforeTrasElapsed)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(200, CommandKind::Precharge, 0); // tRAS = 225, legal at 325
    EXPECT_EQ(f.checker.countOf(Constraint::Tras), 1u);
    EXPECT_EQ(f.checker.violationCount(), 1u);
}

TEST(CheckerNegative, PrechargeBeforeTrtpElapsed)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(400, CommandKind::Read, 0, 1);
    f.send(410, CommandKind::Precharge, 0); // tRTP = 38, legal at 438
    EXPECT_EQ(f.checker.countOf(Constraint::Trtp), 1u);
    EXPECT_EQ(f.checker.countOf(Constraint::Tras), 0u);
}

TEST(CheckerNegative, PrechargeBeforeWriteRecovery)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(400, CommandKind::Write, 0, 1);
    // Recovery completes at 400 + tCWL(63) + tBURST(50) + tWR(75) = 588.
    f.send(450, CommandKind::Precharge, 0);
    EXPECT_EQ(f.checker.countOf(Constraint::Twr), 1u);
    EXPECT_EQ(f.checker.violations()[0].earliestLegal, 588u);
}

TEST(CheckerNegative, ColumnBeforeTccdElapsed)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(200, CommandKind::Read, 0, 1);
    f.send(210, CommandKind::Read, 0, 1); // tCCD = 25, legal at 225
    EXPECT_GE(f.checker.countOf(Constraint::Tccd), 1u);
}

TEST(CheckerNegative, ActivateBeforeTrrdElapsed)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(120, CommandKind::Activate, 1, 1); // tRRD = 38, legal at 138
    EXPECT_EQ(f.checker.countOf(Constraint::Trrd), 1u);
    EXPECT_EQ(f.checker.violationCount(), 1u);
}

TEST(CheckerNegative, FifthActivateInsideTfaw)
{
    // Four ACTs spaced exactly tRRD-legal (40 >= 38), then a fifth that
    // satisfies tRRD but lands inside the rolling tFAW window
    // (oldest + 188 = 288 > 258).
    Feeder f(eightBank());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(140, CommandKind::Activate, 1, 1);
    f.send(180, CommandKind::Activate, 2, 1);
    f.send(220, CommandKind::Activate, 3, 1);
    f.send(258, CommandKind::Activate, 4, 1);
    EXPECT_EQ(f.checker.countOf(Constraint::Tfaw), 1u);
    EXPECT_EQ(f.checker.countOf(Constraint::Trrd), 0u);
    EXPECT_EQ(f.checker.violations()[0].earliestLegal, 288u);
}

TEST(CheckerNegative, ReadBeforeWriteToReadTurnaround)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(200, CommandKind::Write, 0, 1);
    // Turnaround completes at 200 + 63 + 50 + 38 = 351; data bus is free
    // from 313, so at 270 only tWTR is violated.
    f.send(270, CommandKind::Read, 0, 1);
    EXPECT_EQ(f.checker.countOf(Constraint::Twtr), 1u);
    EXPECT_EQ(f.checker.countOf(Constraint::DataBusConflict), 0u);
}

TEST(CheckerNegative, DataBusBurstOverlap)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(150, CommandKind::Activate, 1, 2);
    f.send(250, CommandKind::Read, 0, 1); // data [325, 375)
    f.send(290, CommandKind::Read, 1, 2); // data would start at 365
    EXPECT_EQ(f.checker.countOf(Constraint::DataBusConflict), 1u);
    EXPECT_EQ(f.checker.violationCount(), 1u);
}

TEST(CheckerNegative, RankSwitchNeedsTrtrsGap)
{
    // Back-to-back bursts are legal within a rank but need a tRTRS gap
    // across ranks: the same spacing that passes on one rank fails when
    // the second read comes from the other rank.
    Feeder f(dualRank());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(150, CommandKind::Activate, 4, 2);
    f.send(250, CommandKind::Read, 0, 1); // rank 0, data [325, 375)
    f.send(300, CommandKind::Read, 4, 2); // rank 1, start 375 < 375+tRTRS
    EXPECT_EQ(f.checker.countOf(Constraint::DataBusConflict), 1u);
}

TEST(CheckerNegative, PrechargeOnClosedBank)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Precharge, 0);
    EXPECT_EQ(f.checker.countOf(Constraint::PreClosedBank), 1u);
}

TEST(CheckerNegative, RefreshWithRowOpen)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(500, CommandKind::Refresh, 0);
    EXPECT_EQ(f.checker.countOf(Constraint::RefRowOpen), 1u);
}

TEST(CheckerNegative, RefreshBeforeTrpElapsed)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(325, CommandKind::Precharge, 0);
    f.send(350, CommandKind::Refresh, 0); // tRP satisfied only at 400
    EXPECT_EQ(f.checker.countOf(Constraint::Trp), 1u);
    EXPECT_EQ(f.checker.countOf(Constraint::RefRowOpen), 0u);
}

TEST(CheckerNegative, ActivateInsideTrfc)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Refresh, 0);
    f.send(300, CommandKind::Activate, 0, 1); // tRFC = 638, legal at 738
    EXPECT_EQ(f.checker.countOf(Constraint::Trfc), 1u);
}

TEST(CheckerNegative, BackToBackRefreshInsideTrfc)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Refresh, 0);
    f.send(400, CommandKind::Refresh, 0);
    EXPECT_EQ(f.checker.countOf(Constraint::Trfc), 1u);
}

TEST(CheckerNegative, RefreshOverdueBetweenRefreshes)
{
    // Deadline factor 2.0: a rank must refresh within 2 * tREFI = 78000
    // cycles of the previous refresh (or of run start).
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Refresh, 0);
    f.send(80'000, CommandKind::Refresh, 0);
    EXPECT_EQ(f.checker.countOf(Constraint::RefreshOverdue), 1u);
    EXPECT_STREQ(dram::constraintName(Constraint::RefreshOverdue),
                 "tREFI-overdue");
}

TEST(CheckerNegative, RefreshOverdueAtEndOfRun)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.checker.observeChannel(0);
    f.send(100, CommandKind::Refresh, 0);
    f.checker.finalize(100'000); // last REF at 100, deadline 78100
    EXPECT_EQ(f.checker.countOf(Constraint::RefreshOverdue), 1u);
    f.checker.finalize(200'000); // idempotent
    EXPECT_EQ(f.checker.countOf(Constraint::RefreshOverdue), 1u);
}

TEST(CheckerNegative, NoRefreshObligationWhenDisabled)
{
    dram::TimingParams t = dram::TimingParams::ddr2_800();
    t.refreshEnabled = false;
    Feeder f(t);
    f.checker.observeChannel(0);
    f.send(100, CommandKind::Activate, 0, 1);
    f.checker.finalize(1'000'000);
    EXPECT_EQ(f.checker.countOf(Constraint::RefreshOverdue), 0u);
}

// ---------------------------------------------------------------------------
// DDR4 bank-group rules: the split constraints flag independently.
// ---------------------------------------------------------------------------

TEST(CheckerDdr4, CrossGroupColumnInsideTccdShort)
{
    dram::TimingParams t = ddr4();
    Feeder f(t);
    f.send(100, CommandKind::Activate, 0, 1);  // group 0
    f.send(100 + t.tRRD_S, CommandKind::Activate, 4, 1); // group 1
    f.send(400, CommandKind::Read, 0, 1);
    f.send(400 + t.tCCD_S - 1, CommandKind::Read, 4, 1);
    // Different groups: only the channel-wide short spacing fires.
    EXPECT_EQ(f.checker.countOf(Constraint::Tccd), 1u);
    EXPECT_EQ(f.checker.countOf(Constraint::TccdL), 0u);
}

TEST(CheckerDdr4, SameGroupColumnInsideTccdLong)
{
    dram::TimingParams t = ddr4();
    ASSERT_LT(t.tCCD_S, t.tCCD_L);
    Feeder f(t);
    f.send(100, CommandKind::Activate, 0, 1); // group 0
    f.send(100 + t.tRRD_L, CommandKind::Activate, 1, 1); // group 0
    f.send(400, CommandKind::Read, 0, 1);
    // Past tCCD_S but short of tCCD_L: only the long rule fires.
    f.send(400 + t.tCCD_L - 1, CommandKind::Read, 1, 1);
    EXPECT_EQ(f.checker.countOf(Constraint::Tccd), 0u);
    EXPECT_EQ(f.checker.countOf(Constraint::TccdL), 1u);
    EXPECT_STREQ(dram::constraintName(Constraint::TccdL), "tCCD_L");
}

TEST(CheckerDdr4, CrossGroupActivateInsideTrrdShort)
{
    dram::TimingParams t = ddr4();
    Feeder f(t);
    f.send(100, CommandKind::Activate, 0, 1); // group 0
    f.send(100 + t.tRRD_S - 1, CommandKind::Activate, 4, 1); // group 1
    EXPECT_EQ(f.checker.countOf(Constraint::Trrd), 1u);
    EXPECT_EQ(f.checker.countOf(Constraint::TrrdL), 0u);
}

TEST(CheckerDdr4, SameGroupActivateInsideTrrdLong)
{
    dram::TimingParams t = ddr4();
    ASSERT_LT(t.tRRD_S, t.tRRD_L);
    Feeder f(t);
    f.send(100, CommandKind::Activate, 0, 1); // group 0
    // Past tRRD_S but short of tRRD_L: only the long rule fires.
    f.send(100 + t.tRRD_L - 1, CommandKind::Activate, 1, 1);
    EXPECT_EQ(f.checker.countOf(Constraint::Trrd), 0u);
    EXPECT_EQ(f.checker.countOf(Constraint::TrrdL), 1u);
    EXPECT_STREQ(dram::constraintName(Constraint::TrrdL), "tRRD_L");
}

TEST(CheckerDdr4, LegalBankGroupInterleaveIsClean)
{
    dram::TimingParams t = ddr4();
    Feeder f(t);
    f.send(100, CommandKind::Activate, 0, 1);              // group 0
    f.send(100 + t.tRRD_S, CommandKind::Activate, 4, 1);   // group 1
    f.send(400, CommandKind::Read, 0, 1);
    f.send(400 + t.tCCD_S, CommandKind::Read, 4, 1); // cross-group short
    f.send(400 + t.tCCD_S + t.tCCD_L, CommandKind::Read, 0, 1);
    f.checker.finalize(1'000);
    EXPECT_EQ(f.checker.violationCount(), 0u) << f.checker.report();
}

// ---------------------------------------------------------------------------
// Power-down discipline.
// ---------------------------------------------------------------------------

TEST(CheckerPowerDown, EntryWithRowOpen)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 1);
    f.send(500, CommandKind::PowerDown, 0);
    EXPECT_EQ(f.checker.countOf(Constraint::PdRowOpen), 1u);
    EXPECT_STREQ(dram::constraintName(Constraint::PdRowOpen),
                 "PDE-row-open");
}

TEST(CheckerPowerDown, DoubleEntryIsBadState)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::PowerDown, 0);
    f.send(1000, CommandKind::PowerDown, 0);
    EXPECT_EQ(f.checker.countOf(Constraint::PdBadState), 1u);
}

TEST(CheckerPowerDown, ExitBeforeTckeElapsed)
{
    dram::TimingParams t = dram::TimingParams::ddr2_800();
    Feeder f(t);
    f.send(100, CommandKind::PowerDown, 0);
    f.send(100 + t.tCKE - 1, CommandKind::PowerUp, 0);
    EXPECT_EQ(f.checker.countOf(Constraint::Tcke), 1u);
    EXPECT_EQ(f.checker.violations()[0].earliestLegal, 100 + t.tCKE);
}

TEST(CheckerPowerDown, ExitWhilePoweredUpIsBadState)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::PowerUp, 0);
    EXPECT_EQ(f.checker.countOf(Constraint::PdBadState), 1u);
}

TEST(CheckerPowerDown, CommandToPoweredDownRank)
{
    dram::TimingParams t = dram::TimingParams::ddr2_800();
    Feeder f(t);
    f.send(100, CommandKind::PowerDown, 0);
    f.send(100 + t.tCKE + 500, CommandKind::Activate, 0, 1);
    EXPECT_EQ(f.checker.countOf(Constraint::CmdWhilePoweredDown), 1u);
    EXPECT_STREQ(dram::constraintName(Constraint::CmdWhilePoweredDown),
                 "cmd-powered-down");
}

TEST(CheckerPowerDown, CommandInsideTxpAfterExit)
{
    dram::TimingParams t = dram::TimingParams::ddr2_800();
    Feeder f(t);
    f.send(100, CommandKind::PowerDown, 0);
    Cycle pdx = 100 + t.tCKE;
    f.send(pdx, CommandKind::PowerUp, 0);
    f.send(pdx + t.tXP - 1, CommandKind::Activate, 0, 1);
    EXPECT_EQ(f.checker.countOf(Constraint::Txp), 1u);
    EXPECT_EQ(f.checker.violations()[0].earliestLegal, pdx + t.tXP);
}

TEST(CheckerPowerDown, LegalCycleIsClean)
{
    dram::TimingParams t = dram::TimingParams::ddr2_800();
    Feeder f(t);
    f.send(100, CommandKind::PowerDown, 0);
    Cycle pdx = 100 + t.tCKE;
    f.send(pdx, CommandKind::PowerUp, 0);
    f.send(pdx + t.tXP, CommandKind::Activate, 0, 1);
    EXPECT_EQ(f.checker.violationCount(), 0u) << f.checker.report();
    EXPECT_EQ(f.checker.eventsAudited(), 3u);
}

// ---------------------------------------------------------------------------
// Positive tests: legal sequences pass clean.
// ---------------------------------------------------------------------------

TEST(CheckerPositive, LegalOpenPageSequenceIsClean)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 5);
    f.send(175, CommandKind::Read, 0, 5);  // tRCD met exactly
    f.send(225, CommandKind::Read, 0, 5);  // tCCD met, bursts abut
    f.send(300, CommandKind::Write, 0, 5); // write data starts at 363
    f.send(490, CommandKind::Precharge, 0); // recovery done at 488
    f.send(570, CommandKind::Activate, 0, 9); // tRP (565) and tRC met
    f.checker.finalize(1'000);
    EXPECT_EQ(f.checker.violationCount(), 0u)
        << f.checker.report();
    EXPECT_EQ(f.checker.eventsAudited(), 6u);
    EXPECT_TRUE(f.checker.report().empty());
}

TEST(CheckerPositive, AutoPrechargeDerivesPrechargeStart)
{
    // RD with auto-precharge at 175: the rider's precharge begins once
    // tRAS (100+225=325) is satisfied, so the next ACT is legal at 400.
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 5);
    f.send(175, CommandKind::Read, 0, 5);
    f.send(175, CommandKind::Precharge, 0, 5, /*autoPre=*/true);
    f.send(400, CommandKind::Activate, 0, 6);
    EXPECT_EQ(f.checker.violationCount(), 0u) << f.checker.report();
}

TEST(CheckerPositive, AutoPrechargeTooEarlyActIsFlagged)
{
    Feeder f(dram::TimingParams::ddr2_800());
    f.send(100, CommandKind::Activate, 0, 5);
    f.send(175, CommandKind::Read, 0, 5);
    f.send(175, CommandKind::Precharge, 0, 5, /*autoPre=*/true);
    f.send(399, CommandKind::Activate, 0, 6); // one cycle early
    EXPECT_EQ(f.checker.countOf(Constraint::Trp), 1u);
    EXPECT_EQ(f.checker.violations()[0].earliestLegal, 400u);
}

TEST(CheckerPositive, ViolationRecordingIsCapped)
{
    dram::CheckerParams p;
    p.maxRecordedViolations = 3;
    Feeder f(dram::TimingParams::ddr2_800(), p);
    for (int i = 0; i < 10; ++i)
        f.send(1000 * (i + 1), CommandKind::Read, 0, 1); // closed bank
    EXPECT_EQ(f.checker.violationCount(), 10u);
    EXPECT_EQ(f.checker.violations().size(), 3u);
    EXPECT_NE(f.checker.report().find("not individually recorded"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Randomized cross-scheduler stress: full simulations, fully audited.
// ---------------------------------------------------------------------------

namespace {

struct StressCase
{
    sched::Algo algo;
    std::uint64_t seed;
    std::string protocol = "ddr2-800";
};

std::string
stressName(const testing::TestParamInfo<StressCase> &info)
{
    std::string n = std::string(sched::algoName(info.param.algo)) + "_" +
                    info.param.protocol + "_s" +
                    std::to_string(info.param.seed);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

/**
 * Every scheduler twice on the default protocol, plus every scheduler
 * once on every other registered protocol — the audit covers DDR3
 * timings and the DDR4 bank-group rules, not just the seed's DDR2.
 */
std::vector<StressCase>
stressCases()
{
    std::vector<StressCase> cases;
    const sched::Algo algos[] = {sched::Algo::FrFcfs, sched::Algo::Stfm,
                                 sched::Algo::ParBs, sched::Algo::Atlas,
                                 sched::Algo::Tcm};
    std::uint64_t seed = 1;
    for (sched::Algo algo : algos) {
        cases.push_back({algo, seed++});
        cases.push_back({algo, seed++});
    }
    for (const std::string &protocol : dram::protocolNames()) {
        if (protocol == "ddr2-800")
            continue;
        for (sched::Algo algo : algos)
            cases.push_back({algo, seed++, protocol});
    }
    return cases;
}

} // namespace

class AuditedStress : public testing::TestWithParam<StressCase>
{
};

TEST_P(AuditedStress, RandomizedConfigsProduceZeroViolations)
{
    StressCase sc = GetParam();
    // Randomize the system shape from the case seed: core count,
    // channel count, rank count, page policy, workload intensity.
    Pcg32 rng(sc.seed * 7919 + 17);
    sim::SystemConfig cfg;
    ASSERT_EQ(cfg.selectProtocol(sc.protocol), "");
    cfg.numCores = 4 + static_cast<int>(rng.nextBelow(5));
    cfg.numChannels = 1 + static_cast<int>(rng.nextBelow(2));
    if (rng.nextBool(0.5)) {
        // Second rank: doubles the bank count at the protocol's own
        // banks-per-rank (and bank-group) geometry.
        cfg.timing.banksPerChannel *= 2;
        cfg.timing.ranksPerChannel = 2;
    }
    if (rng.nextBool(0.25))
        cfg.controller.pagePolicy = mem::PagePolicy::Closed;
    // The USIMM-style policies must hold protocol-clean too: latched
    // strict write drain, speculative precharge, rank power-down.
    if (rng.nextBool(0.5))
        cfg.controller.writeDrain.mode = mem::WriteDrainMode::Strict;
    if (rng.nextBool(0.5))
        cfg.controller.speculativePrecharge = true;
    if (rng.nextBool(0.5))
        cfg.controller.powerDownIdleCycles =
            500 + static_cast<Cycle>(rng.nextBelow(2000));
    double intensity = 0.5 + 0.25 * static_cast<double>(rng.nextBelow(3));
    cfg.protocolCheck = true;

    auto mix = workload::randomMix(cfg.numCores, intensity, sc.seed);
    sched::SchedulerSpec spec;
    spec.algo = sc.algo;
    spec.scaleToRun(80'000);

    sim::Simulator sim(cfg, mix, spec, sc.seed);
    // Long enough to cross the 2*tREFI refresh deadline (78000 cycles),
    // so the audit covers the refresh obligation, not just command
    // spacing.
    sim.run(30'000, 80'000);

    dram::ProtocolChecker *checker = sim.protocolChecker();
    ASSERT_NE(checker, nullptr);
    checker->finalize(sim.now());
    EXPECT_GT(checker->eventsAudited(), 0u);
    EXPECT_EQ(checker->violationCount(), 0u) << checker->report();
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, AuditedStress,
                         testing::ValuesIn(stressCases()), stressName);

// ---------------------------------------------------------------------------
// Controller-level audited stress: random injection straight into one
// controller (no core model), checker attached through the controller
// hook.
// ---------------------------------------------------------------------------

class AuditedController : public testing::TestWithParam<std::string>
{
};

TEST_P(AuditedController, RandomInjectionIsProtocolClean)
{
    dram::ProtocolLookup lookup = dram::protocolByName(GetParam());
    ASSERT_TRUE(lookup.ok) << lookup.error;
    dram::TimingParams timing = lookup.spec.derive();
    dram::ProtocolChecker checker(timing);

    sched::SchedulerSpec spec = sched::SchedulerSpec::frfcfs();
    auto policy = sched::makeScheduler(spec, 5);
    policy->configure(4, 1, timing.banksPerChannel);
    std::vector<mem::CoreCounters> counters(4);
    policy->setCoreCounters(&counters);

    mem::MemoryController mc(0, timing, mem::ControllerParams{}, *policy);
    mc.addCommandObserver(&checker);
    policy->attachQueue(0, &mc);

    Pcg32 rng(5);
    std::uint64_t nextId = 1;
    Cycle now = 0;
    for (; now < 100'000; ++now) {
        if (rng.nextBool(0.25) && mc.canAcceptRead())
            mc.submitRead(static_cast<ThreadId>(rng.nextBelow(4)),
                          nextId++,
                          static_cast<BankId>(
                              rng.nextBelow(timing.banksPerChannel)),
                          static_cast<RowId>(rng.nextBelow(8)),
                          static_cast<ColId>(
                              rng.nextBelow(timing.colsPerRow)),
                          now);
        if (rng.nextBool(0.08) && mc.canAcceptWrite())
            mc.submitWrite(static_cast<ThreadId>(rng.nextBelow(4)),
                           static_cast<BankId>(rng.nextBelow(4)),
                           static_cast<RowId>(rng.nextBelow(8)), 0, now);
        policy->tick(now);
        mc.tick(now);
        mc.completions().clear();
    }
    checker.finalize(now);
    EXPECT_GT(checker.eventsAudited(), 1000u);
    EXPECT_EQ(checker.violationCount(), 0u) << checker.report();
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, AuditedController,
                         testing::ValuesIn(dram::protocolNames()),
                         [](const testing::TestParamInfo<std::string> &i) {
                             std::string n = i.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });
