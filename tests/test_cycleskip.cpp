/**
 * @file
 * Differential tests for the event-horizon simulation kernel
 * (SystemConfig::cycleSkip): the cycle-skipping fast path must be
 * bit-identical to the per-cycle oracle loop — same RunResult (IPCs,
 * metrics, protocol verdict), same telemetry stream byte for byte, and
 * the same DRAM command trace as the committed golden file. Any
 * divergence at all, in any of the five paper schedulers, fails.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dram/observer.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "telemetry/sink.hpp"
#include "workload/mixes.hpp"

using namespace tcm;

namespace {

/** Small but non-trivial system: enough channels/threads that every
 *  scheduler exercises real cross-thread contention, small enough that
 *  five schedulers x two modes stay fast. */
sim::SystemConfig
diffConfig(bool cycleSkip)
{
    sim::SystemConfig config;
    config.numCores = 6;
    config.numChannels = 2;
    config.cycleSkip = cycleSkip;
    config.protocolCheck = true;
    config.telemetry.enabled = true;
    config.telemetry.sampleInterval = 5'000;
    return config;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Serialize a run's telemetry to JSONL and return the bytes. */
std::string
telemetryBytes(const sim::RunResult &r, const std::string &tag)
{
    EXPECT_TRUE(r.telemetry != nullptr);
    std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("tcmsim_cycleskip_" + tag + ".jsonl");
    r.telemetry->writeJsonl(path.string());
    std::string bytes = readFile(path.string());
    std::filesystem::remove(path);
    return bytes;
}

class CycleSkipDifferential
    : public testing::TestWithParam<sched::SchedulerSpec>
{
};

std::string
schedName(const testing::TestParamInfo<sched::SchedulerSpec> &info)
{
    std::string n = sched::algoName(info.param.algo);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

TEST_P(CycleSkipDifferential, RunResultsAreBitIdentical)
{
    sched::SchedulerSpec spec = GetParam();
    sim::ExperimentScale scale;
    scale.warmup = 20'000;
    scale.measure = 120'000;

    // Mixed-intensity workload so the run exercises both fast-forward
    // regimes (dormant memory-bound threads and streaming compute-bound
    // threads) plus the lockstep boundary cases between them.
    auto mix = workload::randomMix(6, 0.5, /*seed=*/42);

    sim::SystemConfig onCfg = diffConfig(true);
    sim::SystemConfig offCfg = diffConfig(false);
    // Separate alone-IPC caches: the alone runs themselves must also be
    // identical across modes for ipcAlone to match exactly.
    sim::AloneIpcCache onCache(onCfg, scale.warmup, scale.measure);
    sim::AloneIpcCache offCache(offCfg, scale.warmup, scale.measure);

    sim::RunResult on =
        sim::runWorkload(onCfg, mix, spec, scale, onCache, /*seed=*/13);
    sim::RunResult off =
        sim::runWorkload(offCfg, mix, spec, scale, offCache, /*seed=*/13);

    ASSERT_EQ(on.ipcShared.size(), off.ipcShared.size());
    for (std::size_t t = 0; t < on.ipcShared.size(); ++t) {
        EXPECT_EQ(on.ipcShared[t], off.ipcShared[t]) << "thread " << t;
        EXPECT_EQ(on.ipcAlone[t], off.ipcAlone[t]) << "thread " << t;
    }
    EXPECT_EQ(on.metrics.weightedSpeedup, off.metrics.weightedSpeedup);
    EXPECT_EQ(on.metrics.maxSlowdown, off.metrics.maxSlowdown);
    EXPECT_EQ(on.metrics.harmonicSpeedup, off.metrics.harmonicSpeedup);
    EXPECT_EQ(on.metrics.speedups, off.metrics.speedups);
    EXPECT_EQ(on.metrics.slowdowns, off.metrics.slowdowns);

    EXPECT_EQ(on.protocolViolations, 0u) << on.protocolReport;
    EXPECT_EQ(off.protocolViolations, 0u) << off.protocolReport;

    // The full telemetry stream — interval samples, scheduler-decision
    // events, lifecycle latencies — must match byte for byte: any
    // skipped scheduler event or shifted sample cycle shows up here.
    std::string name = schedName(testing::TestParamInfo<sched::SchedulerSpec>(
        GetParam(), 0));
    EXPECT_EQ(telemetryBytes(on, name + "_on"),
              telemetryBytes(off, name + "_off"));
}

INSTANTIATE_TEST_SUITE_P(PaperSchedulers, CycleSkipDifferential,
                         testing::ValuesIn(sim::paperSchedulers()),
                         schedName);

// ---------------------------------------------------------------------------
// Command-stream identity: the per-cycle oracle must reproduce the
// committed golden trace exactly (test_golden.cpp already pins the
// skip-on stream to the same file, so together these prove on == off at
// per-command granularity).
// ---------------------------------------------------------------------------

namespace {

std::string
commandTrace(bool cycleSkip, std::size_t events)
{
    sim::SystemConfig config;
    config.numCores = 2;
    config.numChannels = 1;
    config.cycleSkip = cycleSkip;
    auto mix = workload::randomMix(config.numCores, 1.0, /*seed=*/99);
    sched::SchedulerSpec spec = sched::SchedulerSpec::frfcfs();
    spec.scaleToRun(30'000);

    sim::Simulator sim(config, mix, spec, /*seed=*/99);
    dram::CommandTraceRecorder recorder(events);
    sim.attachCommandObserver(&recorder);
    sim.step(30'000);
    EXPECT_TRUE(recorder.full());
    return recorder.text();
}

} // namespace

TEST(CycleSkipCommandTrace, OracleMatchesGoldenAndFastPath)
{
    constexpr std::size_t kEvents = 400;
    std::string on = commandTrace(true, kEvents);
    std::string off = commandTrace(false, kEvents);
    EXPECT_EQ(on, off);

    const std::string golden =
        readFile(std::string(TCMSIM_GOLDEN_DIR) +
                 "/cmd_trace_frfcfs_seed99.txt");
    EXPECT_EQ(off, golden);
}
