/**
 * @file
 * Property-based tests: invariants that must hold for every scheduler,
 * workload shape and system configuration. The DRAM state machines
 * assert their own timing constraints (kept on in Release builds), so
 * simply driving traffic through them is a timing-correctness check.
 */

#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "mem/controller.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/mixes.hpp"

using namespace tcm;
using namespace tcm::sim;

// ---------------------------------------------------------------------------
// Conservation: every submitted read completes exactly once, under every
// scheduler, with randomized traffic.
// ---------------------------------------------------------------------------

namespace {

struct TrafficCase
{
    sched::Algo algo;
    int threads;
    std::uint64_t seed;
};

std::string
caseName(const testing::TestParamInfo<TrafficCase> &info)
{
    std::string n = sched::algoName(info.param.algo);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n + "_t" + std::to_string(info.param.threads) + "_s" +
           std::to_string(info.param.seed);
}

} // namespace

class ControllerConservation : public testing::TestWithParam<TrafficCase>
{
};

TEST_P(ControllerConservation, EveryReadCompletesOnce)
{
    TrafficCase tc = GetParam();
    dram::TimingParams timing = dram::TimingParams::ddr2_800();

    sched::SchedulerSpec spec;
    spec.algo = tc.algo;
    if (tc.algo == sched::Algo::FixedRank)
        for (int t = 0; t < tc.threads; ++t)
            spec.fixedRanks.push_back(t);
    spec.scaleToRun(60'000);
    auto policy = sched::makeScheduler(spec, tc.seed);
    policy->configure(tc.threads, 1, timing.banksPerChannel);
    std::vector<mem::CoreCounters> counters(tc.threads);
    policy->setCoreCounters(&counters);

    mem::MemoryController mc(0, timing, mem::ControllerParams{}, *policy);
    policy->attachQueue(0, &mc);

    Pcg32 rng(tc.seed);
    std::set<std::uint64_t> outstanding;
    std::uint64_t submitted = 0, completed = 0;
    std::uint64_t nextId = 1;

    for (Cycle now = 0; now < 60'000; ++now) {
        // Random request injection, biased toward a few rows for hits.
        if (rng.nextBool(0.2) && mc.canAcceptRead()) {
            ThreadId t = static_cast<ThreadId>(rng.nextBelow(tc.threads));
            BankId b = static_cast<BankId>(
                rng.nextBelow(timing.banksPerChannel));
            RowId r = static_cast<RowId>(rng.nextBelow(8));
            ColId c = static_cast<ColId>(rng.nextBelow(timing.colsPerRow));
            mc.submitRead(t, nextId, b, r, c, now);
            outstanding.insert(nextId);
            ++nextId;
            ++submitted;
        }
        if (rng.nextBool(0.05) && mc.canAcceptWrite()) {
            ThreadId t = static_cast<ThreadId>(rng.nextBelow(tc.threads));
            mc.submitWrite(t, static_cast<BankId>(rng.nextBelow(4)),
                           static_cast<RowId>(rng.nextBelow(8)), 0, now);
        }
        policy->tick(now);
        mc.tick(now);
        for (const auto &comp : mc.completions()) {
            ASSERT_TRUE(outstanding.count(comp.missId))
                << "duplicate or unknown completion";
            outstanding.erase(comp.missId);
            ++completed;
            ASSERT_GE(comp.readyAt, 0u);
        }
        mc.completions().clear();
    }
    // Drain.
    for (Cycle now = 60'000; now < 90'000 && !outstanding.empty(); ++now) {
        policy->tick(now);
        mc.tick(now);
        for (const auto &comp : mc.completions()) {
            outstanding.erase(comp.missId);
            ++completed;
        }
        mc.completions().clear();
    }
    EXPECT_TRUE(outstanding.empty());
    EXPECT_EQ(submitted, completed);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, ControllerConservation,
    testing::Values(TrafficCase{sched::Algo::FrFcfs, 4, 1},
                    TrafficCase{sched::Algo::FrFcfs, 8, 2},
                    TrafficCase{sched::Algo::Fcfs, 4, 3},
                    TrafficCase{sched::Algo::Fqm, 4, 13},
                    TrafficCase{sched::Algo::Fqm, 8, 14},
                    TrafficCase{sched::Algo::Stfm, 4, 4},
                    TrafficCase{sched::Algo::Stfm, 8, 5},
                    TrafficCase{sched::Algo::ParBs, 4, 6},
                    TrafficCase{sched::Algo::ParBs, 8, 7},
                    TrafficCase{sched::Algo::Atlas, 4, 8},
                    TrafficCase{sched::Algo::Atlas, 8, 9},
                    TrafficCase{sched::Algo::Tcm, 4, 10},
                    TrafficCase{sched::Algo::Tcm, 8, 11},
                    TrafficCase{sched::Algo::FixedRank, 4, 12}),
    caseName);

// ---------------------------------------------------------------------------
// Conservation under closed-page policy: the auto-precharge path must
// not lose or duplicate requests for any scheduler.
// ---------------------------------------------------------------------------

class ClosedPageConservation : public testing::TestWithParam<TrafficCase>
{
};

TEST_P(ClosedPageConservation, EveryReadCompletesOnce)
{
    TrafficCase tc = GetParam();
    SystemConfig cfg;
    cfg.numCores = tc.threads;
    cfg.numChannels = 2;
    cfg.controller.pagePolicy = mem::PagePolicy::Closed;
    auto mix = workload::randomMix(tc.threads, 1.0, tc.seed);
    sched::SchedulerSpec spec;
    spec.algo = tc.algo;
    spec.scaleToRun(60'000);
    Simulator sim(cfg, mix, spec, tc.seed);
    sim.run(10'000, 60'000);
    for (ThreadId t = 0; t < tc.threads; ++t)
        EXPECT_GT(sim.measuredIpc(t), 0.0) << "thread " << t;
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, ClosedPageConservation,
    testing::Values(TrafficCase{sched::Algo::FrFcfs, 6, 31},
                    TrafficCase{sched::Algo::ParBs, 6, 32},
                    TrafficCase{sched::Algo::Tcm, 6, 33}),
    caseName);

// ---------------------------------------------------------------------------
// Whole-system sweeps: IPC bounds and progress for every scheduler on
// varied configurations.
// ---------------------------------------------------------------------------

namespace {

struct SystemCase
{
    sched::Algo algo;
    int cores;
    int channels;
    double intensity;
    std::uint64_t seed;
};

std::string
sysCaseName(const testing::TestParamInfo<SystemCase> &info)
{
    std::string n = sched::algoName(info.param.algo);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n + "_c" + std::to_string(info.param.cores) + "_ch" +
           std::to_string(info.param.channels) + "_i" +
           std::to_string(static_cast<int>(info.param.intensity * 100));
}

} // namespace

class SystemSweep : public testing::TestWithParam<SystemCase>
{
};

TEST_P(SystemSweep, IpcBoundedAndPositive)
{
    SystemCase sc = GetParam();
    SystemConfig cfg;
    cfg.numCores = sc.cores;
    cfg.numChannels = sc.channels;

    auto mix = workload::randomMix(sc.cores, sc.intensity, sc.seed);
    sched::SchedulerSpec spec;
    spec.algo = sc.algo;
    spec.scaleToRun(80'000);

    Simulator sim(cfg, mix, spec, sc.seed);
    sim.run(15'000, 80'000);
    for (ThreadId t = 0; t < sc.cores; ++t) {
        double ipc = sim.measuredIpc(t);
        EXPECT_GT(ipc, 0.0) << "thread " << t;
        EXPECT_LE(ipc, cfg.core.retireWidth + 1e-9) << "thread " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SystemSweep,
    testing::Values(
        SystemCase{sched::Algo::FrFcfs, 8, 2, 0.5, 21},
        SystemCase{sched::Algo::Tcm, 8, 2, 0.5, 22},
        SystemCase{sched::Algo::Tcm, 8, 1, 1.0, 23},
        SystemCase{sched::Algo::Tcm, 16, 4, 0.75, 24},
        SystemCase{sched::Algo::Atlas, 8, 2, 1.0, 25},
        SystemCase{sched::Algo::ParBs, 8, 2, 1.0, 26},
        SystemCase{sched::Algo::Stfm, 8, 2, 0.75, 27},
        SystemCase{sched::Algo::Fcfs, 8, 2, 0.5, 28}),
    sysCaseName);

// ---------------------------------------------------------------------------
// Rank-vector sanity under live traffic: ranks used by the controller
// remain a valid total order (permutation) for rank-based schedulers.
// ---------------------------------------------------------------------------

class RankSanity : public testing::TestWithParam<sched::Algo>
{
};

TEST_P(RankSanity, RanksFormPermutationThroughoutRun)
{
    sched::Algo algo = GetParam();
    SystemConfig cfg;
    cfg.numCores = 6;
    cfg.numChannels = 2;
    auto mix = workload::randomMix(6, 1.0, 31);
    sched::SchedulerSpec spec;
    spec.algo = algo;
    spec.scaleToRun(60'000);

    Simulator sim(cfg, mix, spec, 31);
    sim.step(10'000);
    for (int check = 0; check < 20; ++check) {
        sim.step(2'500);
        std::set<int> ranks;
        for (ThreadId t = 0; t < 6; ++t)
            ranks.insert(sim.scheduler().rankOf(0, t));
        EXPECT_EQ(ranks.size(), 6u) << "at " << sim.now();
    }
}

INSTANTIATE_TEST_SUITE_P(RankBased, RankSanity,
                         testing::Values(sched::Algo::Tcm,
                                         sched::Algo::Atlas),
                         [](const testing::TestParamInfo<sched::Algo> &i) {
                             std::string n = sched::algoName(i.param);
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

// ---------------------------------------------------------------------------
// BLISS blacklist invariants under randomized controller traffic:
//  * the knob and the introspection agree every cycle — a blacklisted
//    thread always ranks strictly below every non-blacklisted one, so it
//    is never prioritized over them within an epoch;
//  * blacklists only ever grow between clearings: a thread leaving the
//    blacklist implies a clearing fired, which restores *all* threads.
// ---------------------------------------------------------------------------

class BlissBlacklist : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BlissBlacklist, EpochMonotoneAndClearingRestoresAll)
{
    const std::uint64_t seed = GetParam();
    constexpr int kThreads = 4;
    dram::TimingParams timing = dram::TimingParams::ddr2_800();

    sched::BlissParams params;
    params.clearInterval = 5'000; // several epochs in a 60k-cycle run
    sched::Bliss policy(params);
    policy.configure(kThreads, 1, timing.banksPerChannel);
    std::vector<mem::CoreCounters> counters(kThreads);
    policy.setCoreCounters(&counters);

    mem::MemoryController mc(0, timing, mem::ControllerParams{}, policy);
    policy.attachQueue(0, &mc);

    Pcg32 rng(seed);
    std::uint64_t nextId = 1;
    std::uint64_t blacklistEvents = 0;
    std::vector<bool> prev(kThreads, false);

    for (Cycle now = 0; now < 60'000; ++now) {
        // Skewed injection: thread 0 dominates, with row reuse, so
        // same-thread service streaks actually cross the threshold.
        if (rng.nextBool(0.30) && mc.canAcceptRead()) {
            ThreadId t = rng.nextBool(0.55)
                             ? 0
                             : static_cast<ThreadId>(
                                   rng.nextBelow(kThreads));
            BankId b = static_cast<BankId>(
                rng.nextBelow(timing.banksPerChannel));
            RowId r = static_cast<RowId>(rng.nextBelow(4));
            ColId c = static_cast<ColId>(rng.nextBelow(timing.colsPerRow));
            mc.submitRead(t, nextId++, b, r, c, now);
        }
        policy.tick(now);
        mc.tick(now);
        mc.completions().clear();

        bool anyCleared = false;
        for (ThreadId t = 0; t < kThreads; ++t) {
            bool black = policy.isBlacklisted(0, t);
            // Knob/introspection coherence: blacklisted threads sit in
            // the strictly lower rank tier.
            ASSERT_EQ(policy.rankOf(0, t), black ? 0 : 1)
                << "thread " << t << " cycle " << now;
            if (prev[t] && !black)
                anyCleared = true;
            if (black)
                blacklistEvents += !prev[t];
            prev[t] = black;
        }
        // Un-blacklisting happens only via the periodic clearing, which
        // restores every thread at once.
        if (anyCleared)
            ASSERT_EQ(policy.blacklistedCount(), 0)
                << "partial clear at cycle " << now;
    }
    // The run must actually exercise the mechanism, or the invariants
    // above are vacuously true.
    EXPECT_GT(blacklistEvents, 0u) << "no thread was ever blacklisted";
}

INSTANTIATE_TEST_SUITE_P(RandomTraffic, BlissBlacklist,
                         testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Refresh on/off must not change conservation, only timing.
// ---------------------------------------------------------------------------

TEST(Properties, DualRankSystemRunsEveryScheduler)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.numChannels = 2;
    cfg.timing.banksPerChannel = 8;
    cfg.timing.ranksPerChannel = 2;
    auto mix = workload::randomMix(8, 1.0, 77);
    for (const auto &base : paperSchedulers()) {
        sched::SchedulerSpec spec = base;
        spec.scaleToRun(80'000);
        Simulator sim(cfg, mix, spec, 77);
        sim.run(10'000, 80'000);
        for (ThreadId t = 0; t < 8; ++t)
            EXPECT_GT(sim.measuredIpc(t), 0.0)
                << base.name() << " thread " << t;
    }
}

TEST(Properties, Ddr3SubstrateRunsAndIsFasterForStreams)
{
    SystemConfig d2, d3;
    d2.numCores = d3.numCores = 2;
    d2.numChannels = d3.numChannels = 1;
    d3.timing = dram::TimingParams::ddr3_1333();
    auto mix = workload::randomMix(2, 1.0, 88);
    Simulator s2(d2, mix, sched::SchedulerSpec::frfcfs(), 88);
    Simulator s3(d3, mix, sched::SchedulerSpec::frfcfs(), 88);
    s2.run(10'000, 100'000);
    s3.run(10'000, 100'000);
    double ipc2 = s2.measuredIpc(0) + s2.measuredIpc(1);
    double ipc3 = s3.measuredIpc(0) + s3.measuredIpc(1);
    EXPECT_GT(ipc3, ipc2); // more banks + faster burst
}

TEST(Properties, ClosedPagePolicyEndToEnd)
{
    // Closed-page must hurt a row-locality-heavy mix (more reactivations)
    // but still complete correctly.
    SystemConfig open, closed;
    open.numCores = closed.numCores = 4;
    open.numChannels = closed.numChannels = 1;
    closed.controller.pagePolicy = mem::PagePolicy::Closed;
    std::vector<workload::ThreadProfile> mix(
        4, workload::benchmarkProfile("libquantum"));
    Simulator so(open, mix, sched::SchedulerSpec::frfcfs(), 5);
    Simulator sc(closed, mix, sched::SchedulerSpec::frfcfs(), 5);
    so.run(10'000, 100'000);
    sc.run(10'000, 100'000);
    double ipcOpen = 0, ipcClosed = 0;
    for (ThreadId t = 0; t < 4; ++t) {
        EXPECT_GT(sc.measuredIpc(t), 0.0);
        ipcOpen += so.measuredIpc(t);
        ipcClosed += sc.measuredIpc(t);
    }
    EXPECT_GE(ipcOpen, ipcClosed * 0.95);
}

TEST(Properties, RefreshOnlyAffectsTimingNotCorrectness)
{
    for (bool refresh : {false, true}) {
        SystemConfig cfg;
        cfg.numCores = 4;
        cfg.numChannels = 1;
        cfg.timing.refreshEnabled = refresh;
        auto mix = workload::randomMix(4, 1.0, 41);
        Simulator sim(cfg, mix, sched::SchedulerSpec::tcmSpec(), 41);
        sim.run(10'000, 60'000);
        for (ThreadId t = 0; t < 4; ++t)
            EXPECT_GT(sim.measuredIpc(t), 0.0) << "refresh " << refresh;
    }
}

TEST(Properties, RefreshCostsThroughput)
{
    SystemConfig on, off;
    on.numCores = off.numCores = 2;
    on.numChannels = off.numChannels = 1;
    off.timing.refreshEnabled = false;

    auto mix = workload::randomMix(2, 1.0, 43);
    Simulator simOn(on, mix, sched::SchedulerSpec::frfcfs(), 43);
    Simulator simOff(off, mix, sched::SchedulerSpec::frfcfs(), 43);
    simOn.run(10'000, 100'000);
    simOff.run(10'000, 100'000);
    double ipcOn = simOn.measuredIpc(0) + simOn.measuredIpc(1);
    double ipcOff = simOff.measuredIpc(0) + simOff.measuredIpc(1);
    EXPECT_LT(ipcOn, ipcOff * 1.001); // refresh can only hurt
}
