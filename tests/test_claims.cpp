/**
 * @file
 * Unit tests for the paper-claims layer: results documents (JSON
 * round-trip, deterministic serialization), claim evaluation on
 * synthetic result sets, and the golden-baseline diff.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/claims.hpp"
#include "sim/results.hpp"

using namespace tcm;
using namespace tcm::sim;

namespace {

results::ResultsDoc
sampleDoc()
{
    results::ResultsDoc doc;
    doc.bench = "fig4";
    doc.warmup = 50'000;
    doc.measure = 300'000;
    doc.workloadsPerCategory = 8;
    doc.set("TCM", "ws", 8.89);
    doc.set("TCM", "ms", 9.99);
    doc.set("ATLAS", "ws", 9.18);
    doc.setAt("TCM", "i50", "ws", 0.5);
    return doc;
}

} // namespace

// ---------------------------------------------------------------------------
// ResultsDoc
// ---------------------------------------------------------------------------

TEST(ResultsDoc, SetAndFind)
{
    results::ResultsDoc doc = sampleDoc();
    ASSERT_NE(doc.find("TCM", "", "ws"), nullptr);
    EXPECT_DOUBLE_EQ(*doc.find("TCM", "", "ws"), 8.89);
    ASSERT_NE(doc.find("TCM", "i50", "ws"), nullptr);
    EXPECT_DOUBLE_EQ(*doc.find("TCM", "i50", "ws"), 0.5);
    EXPECT_EQ(doc.find("TCM", "", "nope"), nullptr);
    EXPECT_EQ(doc.find("STFM", "", "ws"), nullptr);
}

TEST(ResultsDoc, SetOverwritesInPlace)
{
    results::ResultsDoc doc;
    doc.set("A", "x", 1.0);
    doc.set("A", "y", 2.0);
    doc.set("A", "x", 3.0);
    ASSERT_EQ(doc.rows.size(), 1u);
    ASSERT_EQ(doc.rows[0].metrics.size(), 2u);
    EXPECT_EQ(doc.rows[0].metrics[0].first, "x");
    EXPECT_DOUBLE_EQ(doc.rows[0].metrics[0].second, 3.0);
}

TEST(ResultsDoc, JsonRoundTrip)
{
    results::ResultsDoc doc = sampleDoc();
    std::string text = doc.toJson();
    results::ResultsDoc back = results::ResultsDoc::fromJson(text);

    EXPECT_EQ(back.schemaVersion, results::kSchemaVersion);
    EXPECT_EQ(back.bench, "fig4");
    EXPECT_EQ(back.warmup, doc.warmup);
    EXPECT_EQ(back.measure, doc.measure);
    EXPECT_EQ(back.workloadsPerCategory, doc.workloadsPerCategory);
    ASSERT_EQ(back.rows.size(), doc.rows.size());
    EXPECT_DOUBLE_EQ(*back.find("TCM", "", "ws"), 8.89);
    EXPECT_DOUBLE_EQ(*back.find("TCM", "i50", "ws"), 0.5);

    // Deterministic serialization: a round-trip re-serializes to the
    // exact same bytes.
    EXPECT_EQ(back.toJson(), text);
}

TEST(ResultsDoc, RoundTripPreservesExactDoubles)
{
    results::ResultsDoc doc;
    doc.bench = "b";
    doc.set("s", "third", 1.0 / 3.0);
    doc.set("s", "tiny", 5e-324);
    doc.set("s", "big", 1.7976931348623157e308);
    results::ResultsDoc back = results::ResultsDoc::fromJson(doc.toJson());
    EXPECT_EQ(*back.find("s", "", "third"), 1.0 / 3.0);
    EXPECT_EQ(*back.find("s", "", "tiny"), 5e-324);
    EXPECT_EQ(*back.find("s", "", "big"), 1.7976931348623157e308);
}

TEST(ResultsDoc, NonFiniteSerializesAsNull)
{
    results::ResultsDoc doc;
    doc.bench = "b";
    doc.set("s", "bad", std::nan(""));
    std::string text = doc.toJson();
    EXPECT_NE(text.find("\"bad\": null"), std::string::npos);
    results::ResultsDoc back = results::ResultsDoc::fromJson(text);
    ASSERT_NE(back.find("s", "", "bad"), nullptr);
    EXPECT_TRUE(std::isnan(*back.find("s", "", "bad")));
}

TEST(ResultsDoc, RejectsUnsupportedSchemaVersion)
{
    std::string text = sampleDoc().toJson();
    std::string bumped = text;
    bumped.replace(bumped.find("\"schema_version\": 1"),
                   std::string("\"schema_version\": 1").size(),
                   "\"schema_version\": 999");
    EXPECT_THROW(results::ResultsDoc::fromJson(bumped), std::runtime_error);
}

TEST(ResultsDoc, RejectsMalformedJson)
{
    EXPECT_THROW(results::ResultsDoc::fromJson("{\"bench\": "),
                 std::runtime_error);
    EXPECT_THROW(results::ResultsDoc::fromJson("[1, 2]"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// Claim evaluation on synthetic result sets
// ---------------------------------------------------------------------------

namespace {

claims::ResultSet
syntheticSet()
{
    claims::ResultSet set;
    set.set("f/TCM/ws", 8.9);
    set.set("f/ATLAS/ws", 9.2);
    set.set("f/PAR-BS/ws", 8.1);
    set.set("f/TCM/ms", 10.0);
    set.set("f/ATLAS/ms", 14.0);
    return set;
}

} // namespace

TEST(Claims, FlatKeySyntax)
{
    EXPECT_EQ(claims::ResultSet::key("fig4", "TCM", "", "ws"),
              "fig4/TCM/ws");
    EXPECT_EQ(claims::ResultSet::key("fig7", "TCM", "i50", "ws"),
              "fig7/TCM@i50/ws");
}

TEST(Claims, ResultSetFromDoc)
{
    claims::ResultSet set;
    set.add(sampleDoc());
    ASSERT_NE(set.find("fig4/TCM/ws"), nullptr);
    EXPECT_DOUBLE_EQ(*set.find("fig4/TCM/ws"), 8.89);
    ASSERT_NE(set.find("fig4/TCM@i50/ws"), nullptr);
    EXPECT_EQ(set.find("fig4/STFM/ws"), nullptr);
}

TEST(Claims, OrderingClaimPasses)
{
    claims::Claim c = claims::Claim::atLeast(
        "t.ws", "ATLAS leads", "f/ATLAS/ws", {"f/TCM/ws", "f/PAR-BS/ws"});
    claims::Outcome o = claims::evaluate(c, syntheticSet());
    EXPECT_EQ(o.status, claims::Status::Pass);
    EXPECT_GT(o.margin, 0.0);
}

TEST(Claims, OrderingClaimFailsWhenFlipped)
{
    // TCM ws (8.9) is NOT >= ATLAS ws (9.2): ordering claim fails.
    claims::Claim c = claims::Claim::atLeast("t.flip", "flipped",
                                             "f/TCM/ws", {"f/ATLAS/ws"});
    claims::Outcome o = claims::evaluate(c, syntheticSet());
    EXPECT_EQ(o.status, claims::Status::Fail);
    EXPECT_LT(o.margin, 0.0);
}

TEST(Claims, EpsilonAbsorbsSmallDeficit)
{
    claims::Claim c = claims::Claim::atLeast(
        "t.eps", "within eps", "f/TCM/ws", {"f/ATLAS/ws"}, /*epsilon=*/0.5);
    EXPECT_EQ(claims::evaluate(c, syntheticSet()).status,
              claims::Status::Pass);
}

TEST(Claims, RatioClaimTolerance)
{
    // TCM ms / ATLAS ms = 10/14 = 0.714: passes factor 0.75, fails 0.70.
    claims::Claim loose = claims::Claim::ratioAtMost(
        "t.loose", "loose", "f/TCM/ms", {"f/ATLAS/ms"}, 0.75);
    claims::Claim tight = claims::Claim::ratioAtMost(
        "t.tight", "tight", "f/TCM/ms", {"f/ATLAS/ms"}, 0.70);
    EXPECT_EQ(claims::evaluate(loose, syntheticSet()).status,
              claims::Status::Pass);
    EXPECT_EQ(claims::evaluate(tight, syntheticSet()).status,
              claims::Status::Fail);
}

TEST(Claims, BandClaim)
{
    claims::ResultSet set;
    set.set("t/worst/err", 5.0);
    claims::Claim in = claims::Claim::band("t.in", "in", "t/worst/err",
                                           0.0, 12.0);
    claims::Claim out = claims::Claim::band("t.out", "out", "t/worst/err",
                                            0.0, 4.0);
    EXPECT_EQ(claims::evaluate(in, set).status, claims::Status::Pass);
    EXPECT_EQ(claims::evaluate(out, set).status, claims::Status::Fail);
}

TEST(Claims, MissingKeyIsNotAPass)
{
    claims::Claim subject = claims::Claim::band("t.m1", "m", "f/NOPE/ws",
                                                0.0, 1.0);
    claims::Claim reference = claims::Claim::atLeast(
        "t.m2", "m", "f/TCM/ws", {"f/NOPE/ws"});
    EXPECT_EQ(claims::evaluate(subject, syntheticSet()).status,
              claims::Status::Missing);
    EXPECT_EQ(claims::evaluate(reference, syntheticSet()).status,
              claims::Status::Missing);

    std::vector<claims::Outcome> outcomes =
        claims::evaluateAll({subject, reference}, syntheticSet());
    EXPECT_EQ(claims::failureCount(outcomes), 2);
}

TEST(Claims, WorstReferenceDeterminesMargin)
{
    // ATLAS ws vs {TCM 8.9, PAR-BS 8.1}: the binding reference is TCM.
    claims::Claim c = claims::Claim::atLeast(
        "t.worst", "w", "f/ATLAS/ws", {"f/PAR-BS/ws", "f/TCM/ws"});
    claims::Outcome o = claims::evaluate(c, syntheticSet());
    EXPECT_NEAR(o.margin, 9.2 - 8.9, 1e-12);
    EXPECT_NE(o.detail.find("f/TCM/ws"), std::string::npos);
}

TEST(Claims, PaperRegistryIsWellFormed)
{
    std::vector<claims::Claim> registry = claims::paperClaims();
    EXPECT_GE(registry.size(), 10u);
    for (const claims::Claim &c : registry) {
        EXPECT_FALSE(c.id.empty());
        EXPECT_FALSE(c.description.empty());
        EXPECT_FALSE(c.subject.empty());
        if (c.kind != claims::Kind::Band) {
            EXPECT_FALSE(c.references.empty()) << c.id;
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline diff
// ---------------------------------------------------------------------------

TEST(Diff, IdenticalDocsMatch)
{
    results::ResultsDoc doc = sampleDoc();
    EXPECT_TRUE(claims::diff(doc, doc, 0.02, 0.02).empty());
}

TEST(Diff, DriftWithinToleranceMatches)
{
    results::ResultsDoc fresh = sampleDoc();
    results::ResultsDoc base = sampleDoc();
    base.set("TCM", "ws", 8.89 * 1.015); // inside rel-tol 0.02
    EXPECT_TRUE(claims::diff(fresh, base, 0.02, 0.02).empty());
}

TEST(Diff, PerturbedBaselineFails)
{
    results::ResultsDoc fresh = sampleDoc();
    results::ResultsDoc base = sampleDoc();
    base.set("TCM", "ws", 9.5);
    std::vector<std::string> lines = claims::diff(fresh, base, 0.02, 0.02);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("fig4/TCM/ws"), std::string::npos);
}

TEST(Diff, MissingMetricFlaggedBothWays)
{
    results::ResultsDoc fresh = sampleDoc();
    results::ResultsDoc base = sampleDoc();
    base.set("TCM", "extra", 1.0);   // baseline-only -> missing in fresh
    fresh.set("TCM", "novel", 2.0);  // fresh-only -> needs regold
    std::vector<std::string> lines = claims::diff(fresh, base, 0.02, 0.02);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("extra"), std::string::npos);
    EXPECT_NE(lines[1].find("regold"), std::string::npos);
}

TEST(Diff, ScaleMismatchIsReported)
{
    results::ResultsDoc fresh = sampleDoc();
    results::ResultsDoc base = sampleDoc();
    base.measure = 100'000;
    std::vector<std::string> lines = claims::diff(fresh, base, 0.02, 0.02);
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines[0].find("scale"), std::string::npos);
}

TEST(Diff, RunProvenanceIsNeverDiffed)
{
    // The "run" block records who/how (wall time, worker count, host
    // threads, build type, kernel, self-profile) — facts about the
    // machine that produced the document, not about the simulated
    // system. Two docs may disagree on every one of them and still
    // match: only bench identity, scale, and result rows are compared,
    // so CI baselines recorded on different hardware or with --profile
    // never fail the gate.
    results::ResultsDoc fresh = sampleDoc();
    results::ResultsDoc base = sampleDoc();
    fresh.wallSeconds = 12.5;
    base.wallSeconds = 900.0;
    fresh.intraWorkers = 4;
    base.intraWorkers = 1;
    fresh.hostThreads = 64;
    base.hostThreads = 2;
    fresh.buildType = "Release";
    base.buildType = "Debug";
    fresh.cycleSkip = 1;
    base.cycleSkip = 0;
    fresh.profileMetrics = {{"ctrl_tick_ms", 123.0}, {"skips", 7.0}};
    base.profileMetrics = {{"ctrl_tick_ms", 99999.0}};
    EXPECT_TRUE(claims::diff(fresh, base, 0.02, 0.02).empty());
    EXPECT_TRUE(claims::diff(base, fresh, 0.02, 0.02).empty());
}

TEST(ResultsDoc, RunProvenanceRoundTripsWithStableKeyOrder)
{
    results::ResultsDoc doc = sampleDoc();
    doc.wallSeconds = 3.25;
    doc.intraWorkers = 4;
    doc.hostThreads = 16;
    doc.buildType = "Release";
    doc.cycleSkip = 1;
    doc.profileMetrics = {{"ctrl_tick_ms", 12.5}, {"skips", 42.0}};

    std::string json = doc.toJson();
    // Schema-stable order inside the run block, so committed baselines
    // do not churn when regenerated.
    std::size_t pWall = json.find("\"wall_seconds\"");
    std::size_t pWorkers = json.find("\"intra_workers\"");
    std::size_t pHost = json.find("\"host_threads\"");
    std::size_t pBuild = json.find("\"build_type\"");
    std::size_t pSkip = json.find("\"cycle_skip\"");
    std::size_t pProf = json.find("\"profile\"");
    ASSERT_NE(pWall, std::string::npos);
    ASSERT_NE(pWorkers, std::string::npos);
    ASSERT_NE(pHost, std::string::npos);
    ASSERT_NE(pBuild, std::string::npos);
    ASSERT_NE(pSkip, std::string::npos);
    ASSERT_NE(pProf, std::string::npos);
    EXPECT_LT(pWall, pWorkers);
    EXPECT_LT(pWorkers, pHost);
    EXPECT_LT(pHost, pBuild);
    EXPECT_LT(pBuild, pSkip);
    EXPECT_LT(pSkip, pProf);
    EXPECT_NE(json.find("\"cycle_skip\": true"), std::string::npos);

    results::ResultsDoc back = results::ResultsDoc::fromJson(json);
    EXPECT_EQ(back.hostThreads, 16);
    EXPECT_EQ(back.buildType, "Release");
    EXPECT_EQ(back.cycleSkip, 1);
    ASSERT_EQ(back.profileMetrics.size(), 2u);
    EXPECT_EQ(back.profileMetrics[0].first, "ctrl_tick_ms");
    EXPECT_EQ(back.profileMetrics[0].second, 12.5);
    EXPECT_EQ(back.profileMetrics[1].first, "skips");
    EXPECT_EQ(back.profileMetrics[1].second, 42.0);

    // A document with no provenance at all emits no run block.
    results::ResultsDoc bare = sampleDoc();
    EXPECT_EQ(bare.toJson().find("\"run\""), std::string::npos);
}
