/**
 * @file
 * Unit tests for the evaluation metrics (weighted speedup, maximum
 * slowdown, harmonic speedup).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "metrics/metrics.hpp"

using namespace tcm::metrics;

TEST(Metrics, NoSlowdownGivesIdealValues)
{
    WorkloadMetrics m = computeMetrics({1.0, 2.0}, {1.0, 2.0});
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 2.0);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 1.0);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 1.0);
}

TEST(Metrics, UniformHalving)
{
    WorkloadMetrics m = computeMetrics({2.0, 2.0}, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 2.0);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 0.5);
}

TEST(Metrics, MaxSlowdownPicksWorstThread)
{
    WorkloadMetrics m = computeMetrics({1.0, 1.0, 1.0}, {0.9, 0.25, 0.5});
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 4.0);
    EXPECT_DOUBLE_EQ(m.slowdowns[1], 4.0);
}

TEST(Metrics, StarvedThreadIsCatastrophicNotNan)
{
    WorkloadMetrics m = computeMetrics({1.0, 1.0}, {1.0, 0.0});
    EXPECT_GT(m.maxSlowdown, 1e5);
    EXPECT_TRUE(std::isfinite(m.maxSlowdown));
    EXPECT_TRUE(std::isfinite(m.harmonicSpeedup));
}

TEST(Metrics, PerThreadVectorsAligned)
{
    WorkloadMetrics m = computeMetrics({1.0, 2.0, 4.0}, {0.5, 1.0, 1.0});
    ASSERT_EQ(m.speedups.size(), 3u);
    ASSERT_EQ(m.slowdowns.size(), 3u);
    EXPECT_DOUBLE_EQ(m.speedups[0], 0.5);
    EXPECT_DOUBLE_EQ(m.slowdowns[2], 4.0);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(m.speedups[i] * m.slowdowns[i], 1.0, 1e-9);
}

TEST(Metrics, WeightedSpeedupIsSumOfSpeedups)
{
    WorkloadMetrics m = computeMetrics({1.0, 1.0}, {0.25, 0.75});
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 1.0);
}

TEST(Metrics, HarmonicSpeedupFormula)
{
    // HS = N / sum(alone/shared) = 2 / (2 + 4) = 1/3.
    WorkloadMetrics m = computeMetrics({1.0, 1.0}, {0.5, 0.25});
    EXPECT_NEAR(m.harmonicSpeedup, 1.0 / 3.0, 1e-12);
}

TEST(Metrics, EmptyWorkload)
{
    WorkloadMetrics m = computeMetrics({}, {});
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 0.0);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 0.0);
}
