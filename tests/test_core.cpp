/**
 * @file
 * Unit tests for the core model: retirement, window stalls, memory issue
 * limits and write handling.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/core.hpp"
#include "core/trace.hpp"
#include "mem/controller.hpp"
#include "sched/frfcfs.hpp"

using namespace tcm;
using namespace tcm::core;

namespace {

/** Scripted trace for deterministic tests; repeats the last item. */
class ScriptedTrace : public TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<TraceItem> items)
        : items_(std::move(items))
    {
    }

    TraceItem
    next() override
    {
        if (pos_ < items_.size())
            return items_[pos_++];
        // Tail: pure compute so the core never runs dry.
        TraceItem filler;
        filler.gap = 1'000'000;
        filler.access.channel = 0;
        filler.access.bank = 0;
        filler.access.row = 0;
        filler.access.col = 0;
        return filler;
    }

  private:
    std::vector<TraceItem> items_;
    std::size_t pos_ = 0;
};

TraceItem
readAt(std::uint64_t gap, BankId bank, RowId row, ColId col)
{
    TraceItem i;
    i.gap = gap;
    i.access.isWrite = false;
    i.access.channel = 0;
    i.access.bank = bank;
    i.access.row = row;
    i.access.col = col;
    return i;
}

TraceItem
writeAt(std::uint64_t gap, BankId bank, RowId row, ColId col)
{
    TraceItem i = readAt(gap, bank, row, col);
    i.access.isWrite = true;
    return i;
}

struct Rig
{
    dram::TimingParams timing = dram::TimingParams::ddr2_800();
    mem::ControllerParams params;
    sched::FrFcfs sched;
    std::unique_ptr<mem::MemoryController> mc;
    mem::CoreCounters counters;
    std::unique_ptr<ScriptedTrace> trace;
    std::unique_ptr<Core> core;

    explicit Rig(std::vector<TraceItem> items, CoreParams cp = CoreParams{})
    {
        timing.refreshEnabled = false;
        sched.configure(1, 1, timing.banksPerChannel);
        mc = std::make_unique<mem::MemoryController>(0, timing, params,
                                                     sched);
        trace = std::make_unique<ScriptedTrace>(std::move(items));
        core = std::make_unique<Core>(0, cp, *trace,
                                      std::vector<mem::MemoryController *>{
                                          mc.get()},
                                      &counters);
    }

    void
    run(Cycle cycles, Cycle from = 0)
    {
        for (Cycle now = from; now < from + cycles; ++now) {
            mc->tick(now);
            for (const auto &c : mc->completions())
                core->completeMiss(c.missId, c.readyAt);
            mc->completions().clear();
            core->tick(now);
        }
    }
};

} // namespace

TEST(Core, PureComputeRetiresAtFullWidth)
{
    Rig rig({});
    rig.run(1000);
    // 3-wide retire; allow a couple of cycles of pipeline fill.
    EXPECT_GE(rig.counters.instructions, 3u * 1000 - 10);
    EXPECT_LE(rig.counters.instructions, 3u * 1000);
    EXPECT_EQ(rig.counters.readMisses, 0u);
}

TEST(Core, SingleMissStallsRetirementUntilData)
{
    // One miss right away, then compute.
    Rig rig({readAt(0, 0, 5, 0)});
    rig.run(200);
    // The miss (closed bank, ~275 cycles) has not returned: only the
    // instructions ahead of it could retire - there are none.
    EXPECT_EQ(rig.counters.instructions, 0u);
    rig.run(400, 200);
    EXPECT_GT(rig.counters.instructions, 100u);
    EXPECT_EQ(rig.counters.readMisses, 1u);
}

TEST(Core, ComputeAheadOfMissRetiresImmediately)
{
    Rig rig({readAt(9, 0, 5, 0)});
    rig.run(10);
    // The 9 plain instructions ahead of the miss retire in 3+ cycles.
    EXPECT_EQ(rig.counters.instructions, 9u);
}

TEST(Core, WindowLimitsOutstandingWork)
{
    // Back-to-back misses to the same bank/row: the window holds at most
    // windowSize entries, so at most that many misses are in flight.
    std::vector<TraceItem> items;
    for (int i = 0; i < 500; ++i)
        items.push_back(readAt(0, 0, 5, i % 64));
    CoreParams cp;
    cp.windowSize = 16;
    Rig rig(std::move(items), cp);
    rig.run(100);
    EXPECT_LE(rig.counters.readMisses, 16u);
    EXPECT_EQ(rig.core->windowOccupancy(), 16);
}

TEST(Core, OneMemoryOpPerCycle)
{
    std::vector<TraceItem> items;
    for (int i = 0; i < 10; ++i)
        items.push_back(readAt(0, 0, 5, i));
    Rig rig(std::move(items));
    rig.run(5);
    // Even with fetch width 3, only one miss issues per cycle.
    EXPECT_LE(rig.counters.readMisses, 5u);
    EXPECT_GE(rig.counters.readMisses, 4u);
}

TEST(Core, WritesDoNotBlockRetirement)
{
    // A write then compute: the write is posted, instructions behind it
    // keep retiring at full width.
    Rig rig({writeAt(0, 0, 5, 0), readAt(600, 0, 5, 1)});
    rig.run(100);
    EXPECT_GE(rig.counters.instructions, 250u);
    EXPECT_EQ(rig.counters.readMisses, 0u);
}

TEST(Core, WriteBackpressureStallsFetch)
{
    std::vector<TraceItem> items;
    for (int i = 0; i < 200; ++i)
        items.push_back(writeAt(0, 0, 5, i % 64));
    Rig rig(std::move(items));
    // Saturate: the 64-entry write buffer fills; fetch stalls rather
    // than dropping writes.
    rig.run(30);
    EXPECT_LE(rig.mc->writeLoad(), 64u);
}

TEST(Core, IpcOfMemoryBoundThreadTracksServiceRate)
{
    // Row-hit stream, one bank: service rate ~ 1 request / tBURST cycles
    // once the row is open; each request carries ~9 extra instructions.
    std::vector<TraceItem> items;
    for (int i = 0; i < 3000; ++i)
        items.push_back(readAt(9, 0, 5, i % 64));
    Rig rig(std::move(items));
    rig.run(60'000);
    double ipc = static_cast<double>(rig.counters.instructions) / 60'000;
    // 10 instructions per ~50-cycle burst slot -> IPC around 0.2, far
    // below the 3.0 compute bound. Bounds are intentionally loose.
    EXPECT_GT(ipc, 0.05);
    EXPECT_LT(ipc, 0.6);
}

TEST(Core, CountersAccumulateMonotonically)
{
    std::vector<TraceItem> items;
    for (int i = 0; i < 100; ++i)
        items.push_back(readAt(20, i % 4, 5, i % 64));
    Rig rig(std::move(items));
    std::uint64_t last_insts = 0, last_misses = 0;
    for (int chunk = 0; chunk < 20; ++chunk) {
        rig.run(500, chunk * 500);
        EXPECT_GE(rig.counters.instructions, last_insts);
        EXPECT_GE(rig.counters.readMisses, last_misses);
        last_insts = rig.counters.instructions;
        last_misses = rig.counters.readMisses;
    }
}
