/**
 * @file
 * Differential tests for intra-run parallel stepping
 * (SystemConfig::intraRunParallel): stepping each channel's controller
 * on a worker gang between deterministic barriers must be bit-identical
 * to the serial loop — same RunResult (IPCs, metrics, protocol
 * verdict), same telemetry stream byte for byte, same DRAM command
 * trace as the committed golden file — at every worker count and in
 * both execution modes (per-cycle oracle and cycle-skip). Any
 * divergence, in any of the five paper schedulers, fails.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dram/observer.hpp"
#include "prof/profiler.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "stats/counters.hpp"
#include "telemetry/sink.hpp"
#include "workload/mixes.hpp"

using namespace tcm;

namespace {

/** Same shape as the cycle-skip differential: enough channels/threads
 *  for real cross-thread and cross-channel contention, small enough
 *  that five schedulers x three worker counts x two modes stay fast. */
sim::SystemConfig
diffConfig(bool cycleSkip, int workers)
{
    sim::SystemConfig config;
    config.numCores = 6;
    config.numChannels = 2;
    config.cycleSkip = cycleSkip;
    config.intraRunParallel = workers;
    config.protocolCheck = true;
    config.telemetry.enabled = true;
    config.telemetry.sampleInterval = 5'000;
    return config;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Serialize a run's telemetry to JSONL and return the bytes. */
std::string
telemetryBytes(const sim::RunResult &r, const std::string &tag)
{
    EXPECT_TRUE(r.telemetry != nullptr);
    std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("tcmsim_intrapar_" + tag + ".jsonl");
    r.telemetry->writeJsonl(path.string());
    std::string bytes = readFile(path.string());
    std::filesystem::remove(path);
    return bytes;
}

sim::RunResult
runAt(const sched::SchedulerSpec &spec, bool cycleSkip, int workers,
      const sim::ExperimentScale &scale,
      const std::vector<workload::ThreadProfile> &mix)
{
    sim::SystemConfig cfg = diffConfig(cycleSkip, workers);
    // Per-configuration alone-IPC cache: the alone runs themselves must
    // also be identical across worker counts for ipcAlone to match.
    sim::AloneIpcCache cache(cfg, scale.warmup, scale.measure);
    return sim::runWorkload(cfg, mix, spec, scale, cache, /*seed=*/13);
}

void
expectIdentical(const sim::RunResult &serial, const sim::RunResult &par,
                const std::string &tag)
{
    ASSERT_EQ(serial.ipcShared.size(), par.ipcShared.size());
    for (std::size_t t = 0; t < serial.ipcShared.size(); ++t) {
        EXPECT_EQ(serial.ipcShared[t], par.ipcShared[t])
            << tag << " thread " << t;
        EXPECT_EQ(serial.ipcAlone[t], par.ipcAlone[t])
            << tag << " thread " << t;
    }
    EXPECT_EQ(serial.metrics.weightedSpeedup, par.metrics.weightedSpeedup)
        << tag;
    EXPECT_EQ(serial.metrics.maxSlowdown, par.metrics.maxSlowdown) << tag;
    EXPECT_EQ(serial.metrics.harmonicSpeedup, par.metrics.harmonicSpeedup)
        << tag;
    EXPECT_EQ(serial.metrics.speedups, par.metrics.speedups) << tag;
    EXPECT_EQ(serial.metrics.slowdowns, par.metrics.slowdowns) << tag;

    EXPECT_EQ(serial.protocolViolations, 0u) << serial.protocolReport;
    EXPECT_EQ(par.protocolViolations, 0u) << tag << " " << par.protocolReport;

    // The full telemetry stream — interval samples, scheduler-decision
    // events, lifecycle latencies — must match byte for byte: a hook
    // replayed at the wrong cycle or out of channel order shows up here.
    EXPECT_EQ(telemetryBytes(serial, tag + "_serial"),
              telemetryBytes(par, tag + "_par"))
        << tag;
}

class IntraParallelDifferential
    : public testing::TestWithParam<sched::SchedulerSpec>
{
};

std::string
schedName(const testing::TestParamInfo<sched::SchedulerSpec> &info)
{
    std::string n = sched::algoName(info.param.algo);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

TEST_P(IntraParallelDifferential, MatchesSerialAtEveryWorkerCount)
{
    sched::SchedulerSpec spec = GetParam();
    sim::ExperimentScale scale;
    scale.warmup = 20'000;
    scale.measure = 120'000;

    // Mixed-intensity workload: dormant memory-bound threads, streaming
    // compute-bound threads, and the transitions between them — the
    // cases where a mis-sized decoupled span would advance a core past
    // a memory touch or deliver a completion late.
    auto mix = workload::randomMix(6, 0.5, /*seed=*/42);

    for (bool cycleSkip : {false, true}) {
        sim::RunResult serial = runAt(spec, cycleSkip, 1, scale, mix);
        for (int workers : {2, 4}) {
            sim::RunResult par = runAt(spec, cycleSkip, workers, scale, mix);
            std::string tag =
                schedName(testing::TestParamInfo<sched::SchedulerSpec>(
                    GetParam(), 0)) +
                (cycleSkip ? "_skip" : "_oracle") + "_w" +
                std::to_string(workers);
            expectIdentical(serial, par, tag);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PaperSchedulers, IntraParallelDifferential,
                         testing::ValuesIn(sim::paperSchedulers()),
                         schedName);

// ---------------------------------------------------------------------------
// Command-stream identity: the gang-stepped run must reproduce the same
// committed golden trace the serial modes are pinned to (test_golden.cpp
// and test_cycleskip.cpp), proving equivalence at per-command
// granularity, not just at aggregate metrics.
// ---------------------------------------------------------------------------

namespace {

std::string
commandTrace(bool cycleSkip, int workers, std::size_t events)
{
    sim::SystemConfig config;
    config.numCores = 2;
    config.numChannels = 1;
    config.cycleSkip = cycleSkip;
    config.intraRunParallel = workers;
    auto mix = workload::randomMix(config.numCores, 1.0, /*seed=*/99);
    sched::SchedulerSpec spec = sched::SchedulerSpec::frfcfs();
    spec.scaleToRun(30'000);

    sim::Simulator sim(config, mix, spec, /*seed=*/99);
    dram::CommandTraceRecorder recorder(events);
    sim.attachCommandObserver(&recorder);
    sim.step(30'000);
    EXPECT_TRUE(recorder.full());
    return recorder.text();
}

} // namespace

TEST(IntraParallelCommandTrace, GangMatchesGolden)
{
    constexpr std::size_t kEvents = 400;
    const std::string golden =
        readFile(std::string(TCMSIM_GOLDEN_DIR) +
                 "/cmd_trace_frfcfs_seed99.txt");
    for (bool cycleSkip : {false, true})
        for (int workers : {2, 3})
            EXPECT_EQ(commandTrace(cycleSkip, workers, kEvents), golden)
                << "cycleSkip=" << cycleSkip << " workers=" << workers;
}

// ---------------------------------------------------------------------------
// Worker-shard counter plumbing.
// ---------------------------------------------------------------------------

TEST(IntraParallelCounters, ShardsMergeIntoRunTotals)
{
    sim::SystemConfig config = diffConfig(/*cycleSkip=*/true, /*workers=*/2);
    auto mix = workload::randomMix(config.numCores, 0.5, /*seed=*/7);
    sched::SchedulerSpec spec = sched::SchedulerSpec::frfcfs();
    spec.scaleToRun(40'000);

    sim::Simulator sim(config, mix, spec, /*seed=*/5);
    sim.step(40'000);

    const stats::NamedCounters &c = sim.intraParallelStats();
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.label(0), "ctrl.spans");
    EXPECT_EQ(c.label(1), "ctrl.span.ticks");
    EXPECT_EQ(c.label(2), "ctrl.cycle.ticks");
    // A memory-intensive 40k-cycle run must have ticked controllers at
    // canonical cycles, and the skip loop must have executed at least
    // one decoupled span. All bumps happened on worker shards; nonzero
    // totals here prove the barrier merge folded them in.
    EXPECT_GT(c.count(2), 0u);
    EXPECT_GT(c.count(0), 0u);
    EXPECT_GT(c.count(1), 0u);
}

TEST(IntraParallelCounters, AddFromIsSlotWiseAndResetClears)
{
    stats::NamedCounters a({"x", "y"});
    stats::NamedCounters b({"x", "y"});
    a.bump(0, 3);
    b.bump(0, 4);
    b.bump(1, 9);
    a.addFrom(b);
    EXPECT_EQ(a.count(0), 7u);
    EXPECT_EQ(a.count(1), 9u);
    EXPECT_EQ(b.count(0), 4u); // source unchanged
    b.reset();
    EXPECT_EQ(b.total(), 0u);
    a.addFrom(b); // adding a zeroed shard is a no-op
    EXPECT_EQ(a.count(0), 7u);
    EXPECT_EQ(a.count(1), 9u);
}

TEST(IntraParallelCounters, ProfilerShardsMergeIdenticallyAcrossLaneCounts)
{
    // The self-profiler's deterministic counters (read-scan work, core
    // regime occupancy, skip totals) are accumulated on per-channel and
    // per-lane shards under the gang and folded together in report().
    // The simulation is bit-identical across lane counts, so those
    // counter totals must be too: any divergence between w2 and w4
    // means a shard was lost, double-merged, or raced.
    auto profiled = [](int workers) {
        sim::SystemConfig config = diffConfig(/*cycleSkip=*/true, workers);
        auto mix = workload::randomMix(config.numCores, 0.5, /*seed=*/7);
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.scaleToRun(40'000);
        sim::Simulator sim(config, mix, spec, /*seed=*/5);
        prof::Profiler profiler;
        sim.attachProfiler(&profiler);
        sim.step(40'000);
        return profiler.report();
    };

    prof::ProfileReport w2 = profiled(2);
    prof::ProfileReport w4 = profiled(4);

    EXPECT_GT(w2.scan.soaScans + w2.scan.fallbackScans, 0u);
    EXPECT_EQ(w2.scan.soaScans, w4.scan.soaScans);
    EXPECT_EQ(w2.scan.readsExamined, w4.scan.readsExamined);
    EXPECT_EQ(w2.scan.dominanceSkipped, w4.scan.dominanceSkipped);
    EXPECT_EQ(w2.scan.fallbackScans, w4.scan.fallbackScans);

    ASSERT_EQ(w2.coreRegimes.size(), w4.coreRegimes.size());
    for (std::size_t core = 0; core < w2.coreRegimes.size(); ++core) {
        EXPECT_EQ(w2.coreRegimes[core], w4.coreRegimes[core])
            << "core " << core;
        std::uint64_t total = 0;
        for (std::uint64_t c : w2.coreRegimes[core])
            total += c;
        EXPECT_EQ(total, 40'000u) << "core " << core;
    }

    EXPECT_EQ(w2.totalSkips(), w4.totalSkips());
    EXPECT_EQ(w2.totalSkippedCycles(), w4.totalSkippedCycles());

    // Wall-clock shards are nondeterministic by nature, but their call
    // counts are not: the same controller ticks ran either way.
    EXPECT_EQ(w2.phaseCalls[static_cast<int>(prof::Phase::CtrlTick)],
              w4.phaseCalls[static_cast<int>(prof::Phase::CtrlTick)]);

    // Lane vectors must be sized to each gang, with all lanes reporting.
    EXPECT_EQ(w2.gangLanes, 2);
    EXPECT_EQ(w4.gangLanes, 4);
    ASSERT_EQ(w4.laneTasks.size(), 4u);
    std::uint64_t tasks = 0;
    for (std::uint64_t t : w4.laneTasks)
        tasks += t;
    EXPECT_GT(tasks, 0u);
}
