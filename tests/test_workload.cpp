/**
 * @file
 * Unit tests for the workload module: Table 4 transcription, Table 5
 * mixes, random mixes, and the synthetic trace generator's statistics.
 */

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "workload/benchmark_table.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic_trace.hpp"

using namespace tcm;
using namespace tcm::workload;

// ---------------------------------------------------------------------------
// Benchmark table (Table 4)
// ---------------------------------------------------------------------------

TEST(BenchmarkTable, HasAllTwentyFiveBenchmarks)
{
    EXPECT_EQ(benchmarkTable().size(), 25u);
}

TEST(BenchmarkTable, SpotChecksAgainstPaper)
{
    ThreadProfile mcf = benchmarkProfile("mcf");
    EXPECT_DOUBLE_EQ(mcf.mpki, 97.38);
    EXPECT_DOUBLE_EQ(mcf.blp, 6.20);
    EXPECT_NEAR(mcf.rbl, 0.4241, 1e-9);

    ThreadProfile povray = benchmarkProfile("povray");
    EXPECT_DOUBLE_EQ(povray.mpki, 0.01);

    ThreadProfile libq = benchmarkProfile("libquantum");
    EXPECT_NEAR(libq.rbl, 0.9922, 1e-9);
    EXPECT_DOUBLE_EQ(libq.blp, 1.05);
}

TEST(BenchmarkTable, UnknownNameThrows)
{
    EXPECT_THROW(benchmarkProfile("nosuchbench"), std::out_of_range);
}

TEST(BenchmarkTable, IntensityClassesPartitionTable)
{
    auto intensive = intensiveBenchmarks();
    auto light = nonIntensiveBenchmarks();
    EXPECT_EQ(intensive.size() + light.size(), 25u);
    EXPECT_EQ(intensive.size(), 14u); // MPKI >= 1 per Table 4
    for (const auto &p : intensive)
        EXPECT_GE(p.mpki, 1.0);
    for (const auto &p : light)
        EXPECT_LT(p.mpki, 1.0);
}

// ---------------------------------------------------------------------------
// Mixes (Table 5 and random)
// ---------------------------------------------------------------------------

TEST(Mixes, TableFiveWorkloadsHave24ThreadsHalfIntensive)
{
    for (char w : {'A', 'B', 'C', 'D'}) {
        auto mix = tableFiveWorkload(w);
        EXPECT_EQ(mix.size(), 24u) << w;
        int intensive = 0;
        for (const auto &p : mix)
            intensive += p.memoryIntensive();
        EXPECT_EQ(intensive, 12) << w;
    }
}

TEST(Mixes, TableFiveRejectsBadName)
{
    EXPECT_THROW(tableFiveWorkload('E'), std::invalid_argument);
}

TEST(Mixes, RandomMixHonorsIntensityFraction)
{
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
        auto mix = randomMix(24, frac, 99);
        int intensive = 0;
        for (const auto &p : mix)
            intensive += p.memoryIntensive();
        EXPECT_EQ(intensive, static_cast<int>(std::lround(frac * 24)))
            << frac;
    }
}

TEST(Mixes, RandomMixDeterministicInSeed)
{
    auto a = randomMix(24, 0.5, 7);
    auto b = randomMix(24, 0.5, 7);
    auto c = randomMix(24, 0.5, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].name, b[i].name);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].name != c[i].name;
    EXPECT_TRUE(any_diff);
}

TEST(Mixes, WorkloadSetProducesDistinctMixes)
{
    auto set = workloadSet(8, 24, 0.5, 1);
    EXPECT_EQ(set.size(), 8u);
    std::set<std::string> fingerprints;
    for (const auto &mix : set) {
        std::string fp;
        for (const auto &p : mix)
            fp += p.name + ",";
        fingerprints.insert(fp);
    }
    EXPECT_GT(fingerprints.size(), 6u);
}

TEST(Mixes, CaseStudyThreadsMatchTableOne)
{
    ThreadProfile ra = randomAccessThread();
    ThreadProfile st = streamingThread();
    EXPECT_DOUBLE_EQ(ra.mpki, st.mpki); // same intensity by construction
    EXPECT_GT(ra.blp, 10.0);
    EXPECT_LT(ra.rbl, 0.01);
    EXPECT_LT(st.blp, 1.5);
    EXPECT_GT(st.rbl, 0.95);
}

// ---------------------------------------------------------------------------
// SyntheticTrace generation statistics
// ---------------------------------------------------------------------------

namespace {

struct TraceStats
{
    double mpki;
    double rbl; // per-bank row transition rate
    int banksTouched;
    double writesPerRead;
};

TraceStats
measure(const ThreadProfile &p, int reads = 20'000)
{
    Geometry g;
    SyntheticTrace trace(p, g, 12345);

    std::uint64_t instructions = 0;
    std::uint64_t readCount = 0, writeCount = 0, rowHits = 0;
    std::map<std::pair<int, int>, RowId> lastRow;
    std::set<std::pair<int, int>> banks;

    while (readCount < static_cast<std::uint64_t>(reads)) {
        core::TraceItem item = trace.next();
        instructions += item.gap;
        auto key = std::make_pair(static_cast<int>(item.access.channel),
                                  static_cast<int>(item.access.bank));
        if (item.access.isWrite) {
            ++writeCount;
            continue;
        }
        instructions += 1; // the load itself
        ++readCount;
        banks.insert(key);
        auto it = lastRow.find(key);
        if (it != lastRow.end() && it->second == item.access.row)
            ++rowHits;
        lastRow[key] = item.access.row;
    }

    TraceStats s{};
    s.mpki = 1000.0 * static_cast<double>(readCount) /
             static_cast<double>(instructions);
    s.rbl = static_cast<double>(rowHits) / static_cast<double>(readCount);
    s.banksTouched = static_cast<int>(banks.size());
    s.writesPerRead =
        static_cast<double>(writeCount) / static_cast<double>(readCount);
    return s;
}

} // namespace

TEST(SyntheticTrace, MpkiMatchesTarget)
{
    for (double mpki : {0.5, 5.0, 25.0, 100.0}) {
        ThreadProfile p;
        p.mpki = mpki;
        p.rbl = 0.5;
        p.blp = 2.0;
        TraceStats s = measure(p);
        EXPECT_NEAR(s.mpki, mpki, mpki * 0.1) << mpki;
    }
}

TEST(SyntheticTrace, RblMatchesTarget)
{
    for (double rbl : {0.0, 0.3, 0.7, 0.99}) {
        ThreadProfile p;
        p.mpki = 50.0;
        p.rbl = rbl;
        p.blp = 2.0;
        TraceStats s = measure(p);
        EXPECT_NEAR(s.rbl, rbl, 0.05) << rbl;
    }
}

TEST(SyntheticTrace, StreamCountTracksBlp)
{
    ThreadProfile p;
    p.mpki = 50.0;
    p.rbl = 0.5;
    for (double blp : {1.0, 2.5, 6.2, 11.6}) {
        p.blp = blp;
        Geometry g;
        SyntheticTrace t(p, g, 7);
        EXPECT_EQ(t.numStreams(), static_cast<int>(std::ceil(blp))) << blp;
    }
}

TEST(SyntheticTrace, EpisodeSizeAveragesBlpTarget)
{
    // Count back-to-back miss runs (gap 0 groups): their mean size must
    // track the BLP target.
    for (double blp : {1.05, 2.82, 6.2}) {
        ThreadProfile p;
        p.mpki = 100.0;
        p.rbl = 0.5;
        p.blp = blp;
        p.writeFraction = 0.0;
        Geometry g;
        SyntheticTrace trace(p, g, 31);
        int episodes = 0;
        int misses = 0;
        for (int i = 0; i < 30'000; ++i) {
            core::TraceItem item = trace.next();
            episodes += item.gap > 0;
            ++misses;
        }
        double mean = static_cast<double>(misses) / episodes;
        EXPECT_NEAR(mean, blp, blp * 0.12) << blp;
    }
}

TEST(SyntheticTrace, WriteFractionHonored)
{
    ThreadProfile p;
    p.mpki = 50.0;
    p.rbl = 0.5;
    p.blp = 2.0;
    p.writeFraction = 0.25;
    TraceStats s = measure(p);
    EXPECT_NEAR(s.writesPerRead, 0.25, 0.03);

    p.writeFraction = 0.0;
    s = measure(p);
    EXPECT_EQ(s.writesPerRead, 0.0);
}

TEST(SyntheticTrace, DeterministicInSeed)
{
    ThreadProfile p;
    p.mpki = 30.0;
    p.rbl = 0.6;
    p.blp = 3.0;
    Geometry g;
    SyntheticTrace a(p, g, 5), b(p, g, 5), c(p, g, 6);
    bool diverged = false;
    for (int i = 0; i < 5000; ++i) {
        core::TraceItem ia = a.next(), ib = b.next(), ic = c.next();
        ASSERT_EQ(ia.gap, ib.gap);
        ASSERT_EQ(ia.access.bank, ib.access.bank);
        ASSERT_EQ(ia.access.row, ib.access.row);
        ASSERT_EQ(ia.access.col, ib.access.col);
        ASSERT_EQ(ia.access.isWrite, ib.access.isWrite);
        diverged |= ia.access.row != ic.access.row || ia.gap != ic.gap;
    }
    EXPECT_TRUE(diverged);
}

TEST(SyntheticTrace, BlpIsClampedToGeometry)
{
    ThreadProfile p;
    p.mpki = 50.0;
    p.rbl = 0.5;
    p.blp = 100.0; // more than 16 banks
    Geometry g;
    SyntheticTrace t(p, g, 3);
    EXPECT_EQ(t.numStreams(), g.totalBanks());
}

TEST(SyntheticTrace, HighBlpSpreadsAcrossChannels)
{
    ThreadProfile p;
    p.mpki = 100.0;
    p.rbl = 0.0;
    p.blp = 11.6;
    Geometry g;
    SyntheticTrace trace(p, g, 9);
    std::set<int> channels;
    for (int i = 0; i < 1000; ++i) {
        core::TraceItem item = trace.next();
        if (!item.access.isWrite)
            channels.insert(item.access.channel);
    }
    EXPECT_EQ(channels.size(), 4u);
}
