/**
 * @file
 * Tests for the simulator layer: determinism, alone-IPC caching,
 * experiment drivers and the behaviour probe.
 */

#include <algorithm>
#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "sim/alone_cache.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/mixes.hpp"

using namespace tcm;
using namespace tcm::sim;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.numCores = 4;
    c.numChannels = 2;
    return c;
}

ExperimentScale
quickScale()
{
    ExperimentScale s;
    s.warmup = 10'000;
    s.measure = 60'000;
    s.workloadsPerCategory = 2;
    return s;
}

} // namespace

TEST(Simulator, DeterministicAcrossRuns)
{
    SystemConfig cfg = smallConfig();
    auto mix = workload::randomMix(4, 0.5, 3);
    for (auto spec : {sched::SchedulerSpec::frfcfs(),
                      sched::SchedulerSpec::tcmSpec()}) {
        Simulator a(cfg, mix, spec, 7);
        Simulator b(cfg, mix, spec, 7);
        a.run(5000, 50'000);
        b.run(5000, 50'000);
        for (ThreadId t = 0; t < 4; ++t)
            EXPECT_DOUBLE_EQ(a.measuredIpc(t), b.measuredIpc(t))
                << spec.name() << " thread " << t;
    }
}

TEST(Simulator, ChunkedSteppingEqualsSingleRun)
{
    // step(1) x N must be cycle-identical to run(warmup, measure):
    // nothing in the simulator may depend on step granularity.
    SystemConfig cfg = smallConfig();
    auto mix = workload::randomMix(4, 1.0, 3);

    Simulator whole(cfg, mix, sched::SchedulerSpec::tcmSpec(), 7);
    whole.run(5'000, 40'000);

    Simulator chunked(cfg, mix, sched::SchedulerSpec::tcmSpec(), 7);
    for (int i = 0; i < 5; ++i)
        chunked.step(1'000);
    chunked.beginMeasurement();
    Cycle left = 40'000;
    Cycle chunk = 1;
    while (left > 0) {
        Cycle n = std::min(left, chunk);
        chunked.step(n);
        left -= n;
        chunk = chunk * 2 + 1; // irregular chunk sizes
    }
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_DOUBLE_EQ(whole.measuredIpc(t), chunked.measuredIpc(t));
}

TEST(Simulator, DifferentSeedsGiveDifferentResults)
{
    SystemConfig cfg = smallConfig();
    auto mix = workload::randomMix(4, 0.5, 3);
    Simulator a(cfg, mix, sched::SchedulerSpec::frfcfs(), 7);
    Simulator b(cfg, mix, sched::SchedulerSpec::frfcfs(), 8);
    a.run(5000, 50'000);
    b.run(5000, 50'000);
    bool any_diff = false;
    for (ThreadId t = 0; t < 4; ++t)
        any_diff |= a.measuredIpc(t) != b.measuredIpc(t);
    EXPECT_TRUE(any_diff);
}

TEST(Simulator, LightThreadRunsNearComputeBound)
{
    SystemConfig cfg = smallConfig();
    std::vector<workload::ThreadProfile> mix = {
        workload::benchmarkProfile("povray")}; // MPKI 0.01
    Simulator sim(cfg, mix, sched::SchedulerSpec::frfcfs(), 1);
    sim.run(10'000, 100'000);
    EXPECT_GT(sim.measuredIpc(0), 2.5); // 3-wide core, almost no misses
}

TEST(Simulator, HeavyThreadIsMemoryBound)
{
    SystemConfig cfg = smallConfig();
    std::vector<workload::ThreadProfile> mix = {
        workload::benchmarkProfile("mcf")}; // MPKI 97
    Simulator sim(cfg, mix, sched::SchedulerSpec::frfcfs(), 1);
    sim.run(10'000, 100'000);
    EXPECT_LT(sim.measuredIpc(0), 1.5);
    EXPECT_GT(sim.measuredIpc(0), 0.01);
}

TEST(Simulator, SharingSlowsThreadsDown)
{
    SystemConfig cfg = smallConfig();
    workload::ThreadProfile heavy = workload::benchmarkProfile("mcf");
    Simulator alone(cfg, {heavy}, sched::SchedulerSpec::frfcfs(), 1);
    alone.run(10'000, 100'000);
    Simulator shared(cfg, {heavy, heavy, heavy, heavy},
                     sched::SchedulerSpec::frfcfs(), 1);
    shared.run(10'000, 100'000);
    EXPECT_LT(shared.measuredIpc(0), alone.measuredIpc(0));
}

TEST(Simulator, ProbeMeasuresBehaviour)
{
    SystemConfig cfg = smallConfig();
    workload::ThreadProfile p = workload::benchmarkProfile("libquantum");
    Simulator sim(cfg, {p}, sched::SchedulerSpec::frfcfs(), 1,
                  /*enableProbe=*/true);
    sim.run(20'000, 200'000);
    auto b = sim.behavior(0);
    EXPECT_NEAR(b.mpki, p.mpki, p.mpki * 0.25);
    EXPECT_NEAR(b.rbl, p.rbl, 0.08);
    EXPECT_NEAR(b.blp, p.blp, 0.6);
}

TEST(Simulator, MpkiScaleEmulatesLargerCache)
{
    SystemConfig cfg = smallConfig();
    cfg.mpkiScale = 0.25;
    workload::ThreadProfile p = workload::benchmarkProfile("mcf");
    Simulator sim(cfg, {p}, sched::SchedulerSpec::frfcfs(), 1,
                  /*enableProbe=*/true);
    sim.run(20'000, 100'000);
    EXPECT_LT(sim.behavior(0).mpki, 40.0); // ~97 * 0.25
}

TEST(AloneCache, MemoizesPerProfile)
{
    SystemConfig cfg = smallConfig();
    AloneIpcCache cache(cfg, 5000, 30'000);
    workload::ThreadProfile mcf = workload::benchmarkProfile("mcf");
    double a = cache.aloneIpc(mcf);
    double b = cache.aloneIpc(mcf);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_EQ(cache.size(), 1u);
    cache.aloneIpc(workload::benchmarkProfile("povray"));
    EXPECT_EQ(cache.size(), 2u);
}

TEST(AloneCache, WeightDoesNotChangeAloneIpc)
{
    SystemConfig cfg = smallConfig();
    AloneIpcCache cache(cfg, 5000, 30'000);
    workload::ThreadProfile p = workload::benchmarkProfile("lbm");
    double base = cache.aloneIpc(p);
    p.weight = 16;
    EXPECT_DOUBLE_EQ(cache.aloneIpc(p), base);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Experiment, RunWorkloadProducesConsistentMetrics)
{
    SystemConfig cfg = smallConfig();
    ExperimentScale scale = quickScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);
    auto mix = workload::randomMix(4, 0.5, 11);
    RunResult r = runWorkload(cfg, mix, sched::SchedulerSpec::tcmSpec(),
                              scale, cache, 5);
    ASSERT_EQ(r.ipcShared.size(), 4u);
    EXPECT_GT(r.metrics.weightedSpeedup, 0.0);
    EXPECT_LE(r.metrics.weightedSpeedup, 4.0 + 1e-9);
    EXPECT_GE(r.metrics.maxSlowdown, 1.0 - 0.1);
}

TEST(Experiment, EvaluateSetAggregates)
{
    SystemConfig cfg = smallConfig();
    ExperimentScale scale = quickScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);
    auto sets = workload::workloadSet(3, 4, 0.5, 17);
    AggregateResult agg = evaluateSet(cfg, sets,
                                      sched::SchedulerSpec::frfcfs(), scale,
                                      cache, 1);
    EXPECT_EQ(agg.weightedSpeedup.count(), 3u);
    EXPECT_EQ(agg.scheduler, "FR-FCFS");
}

TEST(Experiment, ScaleFromEnvRespectsOverrides)
{
    setenv("TCMSIM_CYCLES", "123456", 1);
    setenv("TCMSIM_WORKLOADS", "3", 1);
    ExperimentScale s = ExperimentScale::fromEnv();
    EXPECT_EQ(s.measure, 123456u);
    EXPECT_EQ(s.workloadsPerCategory, 3);
    unsetenv("TCMSIM_CYCLES");
    unsetenv("TCMSIM_WORKLOADS");
}

TEST(Experiment, PaperSchedulerListsComplete)
{
    EXPECT_EQ(paperSchedulers().size(), 5u);
    EXPECT_EQ(priorSchedulers().size(), 4u);
}

TEST(AloneCache, NameDoesNotChangeAloneIpc)
{
    // `name` is a label, not behaviour: same entry, same value.
    SystemConfig cfg = smallConfig();
    AloneIpcCache cache(cfg, 5000, 30'000);
    workload::ThreadProfile p = workload::benchmarkProfile("lbm");
    double base = cache.aloneIpc(p);
    p.name = "renamed";
    EXPECT_DOUBLE_EQ(cache.aloneIpc(p), base);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(AloneCache, KeyCoversEveryBehaviorField)
{
    // Audit of ThreadProfile::aloneBehaviorKey(): perturbing any
    // behaviour-affecting field must yield a distinct cache entry (no
    // aliasing), while the two non-behavioural fields (name, weight)
    // must share the entry. If a new behaviour field is ever added to
    // ThreadProfile without extending the key, the distinct-entry count
    // here is where it shows up.
    SystemConfig cfg = smallConfig();
    AloneIpcCache cache(cfg, 5000, 30'000);
    workload::ThreadProfile base;
    base.mpki = 10.0;
    base.rbl = 0.5;
    base.blp = 2.0;
    base.writeFraction = 0.25;
    cache.aloneIpc(base);
    EXPECT_EQ(cache.size(), 1u);

    workload::ThreadProfile p = base;
    p.mpki = 20.0;
    cache.aloneIpc(p);
    EXPECT_EQ(cache.size(), 2u);

    p = base;
    p.rbl = 0.9;
    cache.aloneIpc(p);
    EXPECT_EQ(cache.size(), 3u);

    p = base;
    p.blp = 3.0;
    cache.aloneIpc(p);
    EXPECT_EQ(cache.size(), 4u);

    p = base;
    p.writeFraction = 0.75;
    cache.aloneIpc(p);
    EXPECT_EQ(cache.size(), 5u);

    p = base;
    p.name = "other";
    p.weight = 8;
    cache.aloneIpc(p);
    EXPECT_EQ(cache.size(), 5u); // label and weight don't simulate anew
}

TEST(AloneCache, PrewarmFillsEveryDistinctProfile)
{
    SystemConfig cfg = smallConfig();
    AloneIpcCache cache(cfg, 5000, 30'000);
    auto sets = workload::workloadSet(3, 4, 0.5, 23);
    std::size_t distinct = 0;
    {
        std::set<workload::ThreadProfile::AloneBehaviorKey> keys;
        for (const auto &mix : sets)
            for (const auto &p : mix)
                keys.insert(p.aloneBehaviorKey());
        distinct = keys.size();
    }
    ThreadPool pool(4);
    cache.prewarm(sets, pool);
    EXPECT_EQ(cache.size(), distinct);
    cache.prewarm(sets, pool); // idempotent
    EXPECT_EQ(cache.size(), distinct);
}

namespace {

/** Bit-exact comparison: the determinism guarantee is "identical", not
 *  "close", so no ULP tolerance here. */
void
expectStatIdentical(const RunningStat &a, const RunningStat &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void
expectAggregatesIdentical(const AggregateResult &a, const AggregateResult &b)
{
    EXPECT_EQ(a.scheduler, b.scheduler);
    expectStatIdentical(a.weightedSpeedup, b.weightedSpeedup);
    expectStatIdentical(a.maxSlowdown, b.maxSlowdown);
    expectStatIdentical(a.harmonicSpeedup, b.harmonicSpeedup);
}

} // namespace

TEST(Experiment, EvaluateSetDeterministicAcrossJobCounts)
{
    // The acceptance bar of the parallel runner: TCMSIM_JOBS=1 and
    // TCMSIM_JOBS=8 produce bit-identical aggregates.
    SystemConfig cfg = smallConfig();
    ExperimentScale scale = quickScale();
    auto sets = workload::workloadSet(4, 4, 0.5, 17);

    setenv("TCMSIM_JOBS", "1", 1);
    AloneIpcCache serialCache(cfg, scale.warmup, scale.measure);
    AggregateResult serial =
        evaluateSet(cfg, sets, sched::SchedulerSpec::tcmSpec(), scale,
                    serialCache, 5);

    setenv("TCMSIM_JOBS", "8", 1);
    AloneIpcCache parallelCache(cfg, scale.warmup, scale.measure);
    AggregateResult parallel =
        evaluateSet(cfg, sets, sched::SchedulerSpec::tcmSpec(), scale,
                    parallelCache, 5);
    unsetenv("TCMSIM_JOBS");

    expectAggregatesIdentical(serial, parallel);
    EXPECT_EQ(serialCache.size(), parallelCache.size());
}

TEST(Experiment, EvaluateMatrixDeterministicAcrossJobCounts)
{
    SystemConfig cfg = smallConfig();
    ExperimentScale scale = quickScale();
    auto sets = workload::workloadSet(3, 4, 0.75, 29);
    std::vector<sched::SchedulerSpec> specs = {
        sched::SchedulerSpec::frfcfs(),
        sched::SchedulerSpec::atlasSpec(),
        sched::SchedulerSpec::tcmSpec(),
    };

    AloneIpcCache serialCache(cfg, scale.warmup, scale.measure);
    auto serial =
        evaluateMatrix(cfg, sets, specs, scale, serialCache, 7, /*jobs=*/1);

    AloneIpcCache parallelCache(cfg, scale.warmup, scale.measure);
    auto parallel = evaluateMatrix(cfg, sets, specs, scale, parallelCache, 7,
                                   /*jobs=*/8);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s)
        expectAggregatesIdentical(serial[s], parallel[s]);
}

TEST(Experiment, EvaluateMatrixEqualsPerSchedulerEvaluateSet)
{
    // The matrix is a packing of independent evaluateSet calls: same
    // seeds, same fold order, so bit-identical per scheduler.
    SystemConfig cfg = smallConfig();
    ExperimentScale scale = quickScale();
    auto sets = workload::workloadSet(3, 4, 0.5, 41);
    std::vector<sched::SchedulerSpec> specs = {
        sched::SchedulerSpec::frfcfs(),
        sched::SchedulerSpec::tcmSpec(),
    };

    AloneIpcCache cacheA(cfg, scale.warmup, scale.measure);
    auto matrix = evaluateMatrix(cfg, sets, specs, scale, cacheA, 3);

    AloneIpcCache cacheB(cfg, scale.warmup, scale.measure);
    for (std::size_t s = 0; s < specs.size(); ++s) {
        AggregateResult single =
            evaluateSet(cfg, sets, specs[s], scale, cacheB, 3);
        expectAggregatesIdentical(matrix[s], single);
    }
}
