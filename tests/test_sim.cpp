/**
 * @file
 * Tests for the simulator layer: determinism, alone-IPC caching,
 * experiment drivers and the behaviour probe.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/alone_cache.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/mixes.hpp"

using namespace tcm;
using namespace tcm::sim;

namespace {

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.numCores = 4;
    c.numChannels = 2;
    return c;
}

ExperimentScale
quickScale()
{
    ExperimentScale s;
    s.warmup = 10'000;
    s.measure = 60'000;
    s.workloadsPerCategory = 2;
    return s;
}

} // namespace

TEST(Simulator, DeterministicAcrossRuns)
{
    SystemConfig cfg = smallConfig();
    auto mix = workload::randomMix(4, 0.5, 3);
    for (auto spec : {sched::SchedulerSpec::frfcfs(),
                      sched::SchedulerSpec::tcmSpec()}) {
        Simulator a(cfg, mix, spec, 7);
        Simulator b(cfg, mix, spec, 7);
        a.run(5000, 50'000);
        b.run(5000, 50'000);
        for (ThreadId t = 0; t < 4; ++t)
            EXPECT_DOUBLE_EQ(a.measuredIpc(t), b.measuredIpc(t))
                << spec.name() << " thread " << t;
    }
}

TEST(Simulator, ChunkedSteppingEqualsSingleRun)
{
    // step(1) x N must be cycle-identical to run(warmup, measure):
    // nothing in the simulator may depend on step granularity.
    SystemConfig cfg = smallConfig();
    auto mix = workload::randomMix(4, 1.0, 3);

    Simulator whole(cfg, mix, sched::SchedulerSpec::tcmSpec(), 7);
    whole.run(5'000, 40'000);

    Simulator chunked(cfg, mix, sched::SchedulerSpec::tcmSpec(), 7);
    for (int i = 0; i < 5; ++i)
        chunked.step(1'000);
    chunked.beginMeasurement();
    Cycle left = 40'000;
    Cycle chunk = 1;
    while (left > 0) {
        Cycle n = std::min(left, chunk);
        chunked.step(n);
        left -= n;
        chunk = chunk * 2 + 1; // irregular chunk sizes
    }
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_DOUBLE_EQ(whole.measuredIpc(t), chunked.measuredIpc(t));
}

TEST(Simulator, DifferentSeedsGiveDifferentResults)
{
    SystemConfig cfg = smallConfig();
    auto mix = workload::randomMix(4, 0.5, 3);
    Simulator a(cfg, mix, sched::SchedulerSpec::frfcfs(), 7);
    Simulator b(cfg, mix, sched::SchedulerSpec::frfcfs(), 8);
    a.run(5000, 50'000);
    b.run(5000, 50'000);
    bool any_diff = false;
    for (ThreadId t = 0; t < 4; ++t)
        any_diff |= a.measuredIpc(t) != b.measuredIpc(t);
    EXPECT_TRUE(any_diff);
}

TEST(Simulator, LightThreadRunsNearComputeBound)
{
    SystemConfig cfg = smallConfig();
    std::vector<workload::ThreadProfile> mix = {
        workload::benchmarkProfile("povray")}; // MPKI 0.01
    Simulator sim(cfg, mix, sched::SchedulerSpec::frfcfs(), 1);
    sim.run(10'000, 100'000);
    EXPECT_GT(sim.measuredIpc(0), 2.5); // 3-wide core, almost no misses
}

TEST(Simulator, HeavyThreadIsMemoryBound)
{
    SystemConfig cfg = smallConfig();
    std::vector<workload::ThreadProfile> mix = {
        workload::benchmarkProfile("mcf")}; // MPKI 97
    Simulator sim(cfg, mix, sched::SchedulerSpec::frfcfs(), 1);
    sim.run(10'000, 100'000);
    EXPECT_LT(sim.measuredIpc(0), 1.5);
    EXPECT_GT(sim.measuredIpc(0), 0.01);
}

TEST(Simulator, SharingSlowsThreadsDown)
{
    SystemConfig cfg = smallConfig();
    workload::ThreadProfile heavy = workload::benchmarkProfile("mcf");
    Simulator alone(cfg, {heavy}, sched::SchedulerSpec::frfcfs(), 1);
    alone.run(10'000, 100'000);
    Simulator shared(cfg, {heavy, heavy, heavy, heavy},
                     sched::SchedulerSpec::frfcfs(), 1);
    shared.run(10'000, 100'000);
    EXPECT_LT(shared.measuredIpc(0), alone.measuredIpc(0));
}

TEST(Simulator, ProbeMeasuresBehaviour)
{
    SystemConfig cfg = smallConfig();
    workload::ThreadProfile p = workload::benchmarkProfile("libquantum");
    Simulator sim(cfg, {p}, sched::SchedulerSpec::frfcfs(), 1,
                  /*enableProbe=*/true);
    sim.run(20'000, 200'000);
    auto b = sim.behavior(0);
    EXPECT_NEAR(b.mpki, p.mpki, p.mpki * 0.25);
    EXPECT_NEAR(b.rbl, p.rbl, 0.08);
    EXPECT_NEAR(b.blp, p.blp, 0.6);
}

TEST(Simulator, MpkiScaleEmulatesLargerCache)
{
    SystemConfig cfg = smallConfig();
    cfg.mpkiScale = 0.25;
    workload::ThreadProfile p = workload::benchmarkProfile("mcf");
    Simulator sim(cfg, {p}, sched::SchedulerSpec::frfcfs(), 1,
                  /*enableProbe=*/true);
    sim.run(20'000, 100'000);
    EXPECT_LT(sim.behavior(0).mpki, 40.0); // ~97 * 0.25
}

TEST(AloneCache, MemoizesPerProfile)
{
    SystemConfig cfg = smallConfig();
    AloneIpcCache cache(cfg, 5000, 30'000);
    workload::ThreadProfile mcf = workload::benchmarkProfile("mcf");
    double a = cache.aloneIpc(mcf);
    double b = cache.aloneIpc(mcf);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_EQ(cache.size(), 1u);
    cache.aloneIpc(workload::benchmarkProfile("povray"));
    EXPECT_EQ(cache.size(), 2u);
}

TEST(AloneCache, WeightDoesNotChangeAloneIpc)
{
    SystemConfig cfg = smallConfig();
    AloneIpcCache cache(cfg, 5000, 30'000);
    workload::ThreadProfile p = workload::benchmarkProfile("lbm");
    double base = cache.aloneIpc(p);
    p.weight = 16;
    EXPECT_DOUBLE_EQ(cache.aloneIpc(p), base);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Experiment, RunWorkloadProducesConsistentMetrics)
{
    SystemConfig cfg = smallConfig();
    ExperimentScale scale = quickScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);
    auto mix = workload::randomMix(4, 0.5, 11);
    RunResult r = runWorkload(cfg, mix, sched::SchedulerSpec::tcmSpec(),
                              scale, cache, 5);
    ASSERT_EQ(r.ipcShared.size(), 4u);
    EXPECT_GT(r.metrics.weightedSpeedup, 0.0);
    EXPECT_LE(r.metrics.weightedSpeedup, 4.0 + 1e-9);
    EXPECT_GE(r.metrics.maxSlowdown, 1.0 - 0.1);
}

TEST(Experiment, EvaluateSetAggregates)
{
    SystemConfig cfg = smallConfig();
    ExperimentScale scale = quickScale();
    AloneIpcCache cache(cfg, scale.warmup, scale.measure);
    auto sets = workload::workloadSet(3, 4, 0.5, 17);
    AggregateResult agg = evaluateSet(cfg, sets,
                                      sched::SchedulerSpec::frfcfs(), scale,
                                      cache, 1);
    EXPECT_EQ(agg.weightedSpeedup.count(), 3u);
    EXPECT_EQ(agg.scheduler, "FR-FCFS");
}

TEST(Experiment, ScaleFromEnvRespectsOverrides)
{
    setenv("TCMSIM_CYCLES", "123456", 1);
    setenv("TCMSIM_WORKLOADS", "3", 1);
    ExperimentScale s = ExperimentScale::fromEnv();
    EXPECT_EQ(s.measure, 123456u);
    EXPECT_EQ(s.workloadsPerCategory, 3);
    unsetenv("TCMSIM_CYCLES");
    unsetenv("TCMSIM_WORKLOADS");
}

TEST(Experiment, PaperSchedulerListsComplete)
{
    EXPECT_EQ(paperSchedulers().size(), 5u);
    EXPECT_EQ(priorSchedulers().size(), 4u);
}
