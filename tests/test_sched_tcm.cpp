/**
 * @file
 * Unit tests for TCM's building blocks: clustering (Algorithm 1),
 * niceness, insertion/random/round-robin shuffling (Algorithm 2), the
 * behaviour monitor, and the integrated Tcm policy's quantum behaviour.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sched/tcm/clustering.hpp"
#include "sched/tcm/monitor.hpp"
#include "sched/tcm/niceness.hpp"
#include "sched/tcm/shuffle.hpp"
#include "sched/tcm/tcm.hpp"

using namespace tcm;
using namespace tcm::sched;

// ---------------------------------------------------------------------------
// Clustering (Algorithm 1)
// ---------------------------------------------------------------------------

TEST(Clustering, ZeroTotalUsagePutsEveryoneInBandwidthCluster)
{
    ClusterResult r = clusterThreads({0.1, 5.0, 2.0}, {0, 0, 0}, 0.2);
    EXPECT_TRUE(r.latency.empty());
    EXPECT_EQ(r.bandwidth.size(), 3u);
}

TEST(Clustering, LightThreadsFitUnderBudget)
{
    // Threads 0,1 are light (tiny usage), 2,3 heavy.
    std::vector<double> mpki = {0.1, 0.5, 50.0, 80.0};
    std::vector<std::uint64_t> bw = {10, 10, 490, 490};
    // Budget = 0.1 * 1000 = 100: both light threads fit (10 + 10 <= 100),
    // the first heavy one (510 > 100) breaks.
    ClusterResult r = clusterThreads(mpki, bw, 0.1);
    EXPECT_EQ(r.latency, (std::vector<ThreadId>{0, 1}));
    EXPECT_EQ(r.bandwidth, (std::vector<ThreadId>{2, 3}));
}

TEST(Clustering, WalksInMpkiOrderNotUsageOrder)
{
    // Thread 1 has the lowest MPKI but huge usage: it blocks the budget
    // even though thread 0 (tiny usage) would fit.
    std::vector<double> mpki = {5.0, 1.0};
    std::vector<std::uint64_t> bw = {1, 999};
    ClusterResult r = clusterThreads(mpki, bw, 0.1);
    EXPECT_TRUE(r.latency.empty());
    // Bandwidth cluster preserves the MPKI walk order after the break.
    EXPECT_EQ(r.bandwidth, (std::vector<ThreadId>{1, 0}));
}

TEST(Clustering, LargeThresholdTakesAll)
{
    std::vector<double> mpki = {1, 2, 3};
    std::vector<std::uint64_t> bw = {100, 100, 100};
    ClusterResult r = clusterThreads(mpki, bw, 1.0);
    EXPECT_EQ(r.latency.size(), 3u);
    EXPECT_TRUE(r.bandwidth.empty());
}

TEST(Clustering, LatencyClusterSortedByMpki)
{
    std::vector<double> mpki = {3.0, 1.0, 2.0};
    std::vector<std::uint64_t> bw = {1, 1, 1};
    ClusterResult r = clusterThreads(mpki, bw, 1.0);
    EXPECT_EQ(r.latency, (std::vector<ThreadId>{1, 2, 0}));
}

// ---------------------------------------------------------------------------
// Niceness
// ---------------------------------------------------------------------------

TEST(Niceness, HighBlpIsNiceHighRblIsHostile)
{
    // Thread 0: random-access-like (high BLP, low RBL) -> nicest.
    // Thread 1: streaming-like (low BLP, high RBL) -> least nice.
    std::vector<double> blp = {11.6, 1.0};
    std::vector<double> rbl = {0.001, 0.99};
    auto n = computeNiceness(blp, rbl, {0, 1}, 2);
    EXPECT_GT(n[0], n[1]);
}

TEST(Niceness, OnlyClusterMembersRanked)
{
    std::vector<double> blp = {5, 1, 3};
    std::vector<double> rbl = {0.1, 0.9, 0.5};
    auto n = computeNiceness(blp, rbl, {0, 2}, 3);
    EXPECT_EQ(n[1], 0.0); // excluded thread untouched
    EXPECT_GT(n[0], n[2]);
}

TEST(Niceness, SymmetricDifferenceForEqualBehaviour)
{
    std::vector<double> blp = {2, 2, 2};
    std::vector<double> rbl = {0.5, 0.5, 0.5};
    auto n = computeNiceness(blp, rbl, {0, 1, 2}, 3);
    // Ties break by id; the niceness values are a permutation of the
    // same rank differences, summing to zero.
    EXPECT_DOUBLE_EQ(n[0] + n[1] + n[2], 0.0);
}

// ---------------------------------------------------------------------------
// ShuffleState
// ---------------------------------------------------------------------------

namespace {

std::vector<int>
unitWeights(int n)
{
    return std::vector<int>(n, 1);
}

} // namespace

TEST(Shuffle, InsertionStartsNicestOnTop)
{
    std::vector<double> nice = {0.0, 1.0, 2.0, 3.0};
    Pcg32 rng(1);
    ShuffleState s({0, 1, 2, 3}, nice, unitWeights(4),
                   ShuffleMode::Insertion, &rng);
    EXPECT_EQ(s.order().back(), 3);  // nicest at highest priority
    EXPECT_EQ(s.order().front(), 0); // least nice at lowest priority
}

TEST(Shuffle, InsertionFollowsAlgorithmTwo)
{
    // Hand-simulated Algorithm 2 for 4 threads with niceness 0..3.
    std::vector<double> nice = {0.0, 1.0, 2.0, 3.0};
    Pcg32 rng(1);
    ShuffleState s({0, 1, 2, 3}, nice, unitWeights(4),
                   ShuffleMode::Insertion, &rng);
    using V = std::vector<ThreadId>;
    const std::vector<V> expect = {
        {0, 1, 2, 3}, // decSort(4,4): no-op
        {0, 1, 3, 2}, // decSort(3,4)
        {0, 3, 2, 1}, // decSort(2,4)
        {3, 2, 1, 0}, // decSort(1,4)
        {3, 2, 1, 0}, // incSort(1,1): no-op
        {2, 3, 1, 0}, // incSort(1,2)
        {1, 2, 3, 0}, // incSort(1,3)
        {0, 1, 2, 3}, // incSort(1,4): full period
    };
    for (const V &want : expect) {
        s.step();
        EXPECT_EQ(s.order(), want);
    }
}

TEST(Shuffle, InsertionPeriodIsTwoN)
{
    std::vector<double> nice = {0, 1, 2, 3, 4, 5};
    Pcg32 rng(1);
    ShuffleState s({0, 1, 2, 3, 4, 5}, nice, unitWeights(6),
                   ShuffleMode::Insertion, &rng);
    auto initial = s.order();
    for (int i = 0; i < 12; ++i)
        s.step();
    EXPECT_EQ(s.order(), initial);
}

TEST(Shuffle, RoundRobinRotates)
{
    std::vector<double> nice = {0, 1, 2, 3};
    Pcg32 rng(1);
    ShuffleState s({0, 1, 2, 3}, nice, unitWeights(4),
                   ShuffleMode::RoundRobin, &rng);
    auto before = s.order();
    s.step();
    auto after = s.order();
    // Rotation preserves relative order (the paper's criticism).
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(after[i], before[(i + 1) % before.size()]);
}

TEST(Shuffle, RandomVisitsManyPermutations)
{
    std::vector<double> nice = {0, 1, 2, 3};
    Pcg32 rng(99);
    ShuffleState s({0, 1, 2, 3}, nice, unitWeights(4), ShuffleMode::Random,
                   &rng);
    std::set<std::vector<ThreadId>> seen;
    for (int i = 0; i < 200; ++i) {
        s.step();
        seen.insert(s.order());
    }
    EXPECT_GT(seen.size(), 20u); // of 24 possible
}

TEST(Shuffle, EveryStepIsAPermutation)
{
    std::vector<double> nice = {5, 1, 4, 2, 3};
    Pcg32 rng(7);
    for (ShuffleMode mode : {ShuffleMode::Insertion, ShuffleMode::Random,
                             ShuffleMode::RoundRobin}) {
        ShuffleState s({0, 1, 2, 3, 4}, nice, unitWeights(5), mode, &rng);
        for (int i = 0; i < 50; ++i) {
            s.step();
            auto o = s.order();
            std::sort(o.begin(), o.end());
            EXPECT_EQ(o, (std::vector<ThreadId>{0, 1, 2, 3, 4}))
                << shuffleModeName(mode);
        }
    }
}

TEST(Shuffle, WeightedTopSlotProportionalToWeight)
{
    std::vector<double> nice = {0, 1, 2};
    std::vector<int> weights = {1, 1, 1};
    weights.resize(3);
    weights[0] = 6; // thread 0 six times the weight of each other
    weights[1] = 1;
    weights[2] = 1;
    Pcg32 rng(5);
    ShuffleState s({0, 1, 2}, nice, weights, ShuffleMode::Random, &rng);
    int topCount[3] = {};
    constexpr int kSteps = 6000;
    for (int i = 0; i < kSteps; ++i) {
        s.step();
        ++topCount[s.order().back()];
    }
    double frac0 = static_cast<double>(topCount[0]) / kSteps;
    EXPECT_NEAR(frac0, 6.0 / 8.0, 0.03);
}

TEST(Shuffle, SingleThreadIsStable)
{
    std::vector<double> nice = {1.0};
    Pcg32 rng(1);
    ShuffleState s({0}, nice, unitWeights(1), ShuffleMode::Insertion, &rng);
    s.step();
    EXPECT_EQ(s.order(), (std::vector<ThreadId>{0}));
}

// ---------------------------------------------------------------------------
// ThreadBankMonitor
// ---------------------------------------------------------------------------

namespace {

mem::Request
readReq(ThreadId t, BankId bank, RowId row, Cycle arrived,
        std::uint64_t seq)
{
    mem::Request r;
    r.thread = t;
    r.bank = bank;
    r.row = row;
    r.arrivedAt = arrived;
    r.seq = seq;
    r.channel = 0;
    return r;
}

} // namespace

TEST(Monitor, ShadowRowTracksInherentLocality)
{
    ThreadBankMonitor mon;
    mon.configure(2, 4);
    // Thread 0 alternates rows in bank 0 (0% locality); thread 1 streams
    // the same row in bank 1 (100% after the first access).
    std::uint64_t seq = 0;
    for (int i = 0; i < 10; ++i) {
        mon.onArrival(readReq(0, 0, i % 2, i, seq++), i);
        mon.onArrival(readReq(1, 1, 7, i, seq++), i);
    }
    auto s = mon.snapshot(10);
    EXPECT_NEAR(s.rbl[0], 0.0, 1e-9);
    EXPECT_NEAR(s.rbl[1], 0.9, 1e-9); // 9 hits of 10 accesses
}

TEST(Monitor, BlpIntegratesBanksOverTime)
{
    ThreadBankMonitor mon;
    mon.configure(1, 4);
    // Two requests in two banks outstanding for 100 cycles, then one for
    // another 100: time-average BLP = (2*100 + 1*100) / 200 = 1.5.
    mon.onArrival(readReq(0, 0, 1, 0, 1), 0);
    mon.onArrival(readReq(0, 1, 1, 0, 2), 0);
    mon.onDepart(readReq(0, 1, 1, 0, 2), 100);
    mon.onDepart(readReq(0, 0, 1, 0, 1), 200);
    auto s = mon.snapshot(200);
    EXPECT_NEAR(s.blp[0], 1.5, 1e-9);
}

TEST(Monitor, BlpIgnoresIdleTime)
{
    ThreadBankMonitor mon;
    mon.configure(1, 4);
    mon.onArrival(readReq(0, 0, 1, 0, 1), 0);
    mon.onDepart(readReq(0, 0, 1, 0, 1), 50);
    // 950 idle cycles follow; average BLP over busy time stays 1.
    auto s = mon.snapshot(1000);
    EXPECT_NEAR(s.blp[0], 1.0, 1e-9);
}

TEST(Monitor, ServiceCyclesAccumulateAndReset)
{
    ThreadBankMonitor mon;
    mon.configure(2, 4);
    mon.addService(0, 75);
    mon.addService(0, 50);
    mon.addService(1, 10);
    auto s = mon.snapshot(100);
    EXPECT_EQ(s.serviceCycles[0], 125u);
    EXPECT_EQ(s.serviceCycles[1], 10u);
    mon.reset(100);
    s = mon.snapshot(100);
    EXPECT_EQ(s.serviceCycles[0], 0u);
}

TEST(Monitor, WritesAreInvisible)
{
    ThreadBankMonitor mon;
    mon.configure(1, 4);
    mem::Request w = readReq(0, 0, 3, 0, 1);
    w.isWrite = true;
    mon.onArrival(w, 0);
    auto s = mon.snapshot(10);
    EXPECT_EQ(s.accesses[0], 0u);
    EXPECT_EQ(mon.outstanding(0), 0);
}

TEST(Monitor, LoadCountersTrackPerBankOccupancy)
{
    ThreadBankMonitor mon;
    mon.configure(1, 4);
    mon.onArrival(readReq(0, 2, 1, 0, 1), 0);
    mon.onArrival(readReq(0, 2, 2, 0, 2), 0);
    mon.onArrival(readReq(0, 3, 1, 0, 3), 0);
    EXPECT_EQ(mon.load(0, 2), 2);
    EXPECT_EQ(mon.load(0, 3), 1);
    EXPECT_EQ(mon.load(0, 0), 0);
    EXPECT_EQ(mon.outstanding(0), 3);
    mon.onDepart(readReq(0, 2, 1, 0, 1), 10);
    EXPECT_EQ(mon.load(0, 2), 1);
}

// ---------------------------------------------------------------------------
// Integrated Tcm policy
// ---------------------------------------------------------------------------

namespace {

/** Drive a bare Tcm policy with synthetic arrivals/commands. */
struct TcmRig
{
    TcmParams params;
    std::unique_ptr<Tcm> tcm;
    std::vector<mem::CoreCounters> counters;

    explicit TcmRig(int threads, TcmParams p = TcmParams{})
    {
        params = p;
        tcm = std::make_unique<Tcm>(params, 1);
        tcm->configure(threads, 1, 4);
        counters.resize(threads);
        tcm->setCoreCounters(&counters);
    }
};

} // namespace

TEST(TcmPolicy, FirstQuantumIsAllBandwidthCluster)
{
    TcmRig rig(4);
    rig.tcm->tick(0);
    EXPECT_TRUE(rig.tcm->latencyCluster().empty());
    EXPECT_EQ(rig.tcm->bandwidthCluster().size(), 4u);
}

TEST(TcmPolicy, LightThreadsClusterAsLatencySensitive)
{
    TcmParams p;
    p.quantum = 1000;
    // The default 4/N numerator targets ~24 threads; with 3 threads pin
    // the fraction explicitly so the budget is meaningful.
    p.clusterThreshOverride = 0.3;
    TcmRig rig(3, p);
    rig.tcm->tick(0);

    // Thread 0: light (few misses, little service). Threads 1-2: heavy.
    rig.counters[0].instructions = 100'000;
    rig.counters[0].readMisses = 10;
    rig.counters[1].instructions = 10'000;
    rig.counters[1].readMisses = 1'000;
    rig.counters[2].instructions = 10'000;
    rig.counters[2].readMisses = 900;

    mem::Request r;
    r.channel = 0;
    r.thread = 0;
    rig.tcm->onCommand(r, dram::CommandKind::Read, 500, 50);
    r.thread = 1;
    rig.tcm->onCommand(r, dram::CommandKind::Read, 500, 600);
    r.thread = 2;
    rig.tcm->onCommand(r, dram::CommandKind::Read, 500, 600);

    rig.tcm->tick(1000); // quantum boundary
    ASSERT_EQ(rig.tcm->latencyCluster().size(), 1u);
    EXPECT_EQ(rig.tcm->latencyCluster()[0], 0);
    EXPECT_EQ(rig.tcm->bandwidthCluster().size(), 2u);
    // Latency cluster strictly outranks the bandwidth cluster.
    EXPECT_GT(rig.tcm->rankOf(0, 0), rig.tcm->rankOf(0, 1));
    EXPECT_GT(rig.tcm->rankOf(0, 0), rig.tcm->rankOf(0, 2));
}

TEST(TcmPolicy, ShuffleChangesRanksWithinQuantum)
{
    TcmParams p;
    p.quantum = 100'000;
    p.shuffleInterval = 100;
    p.shuffleMode = ShuffleMode::Random;
    TcmRig rig(4, p);
    rig.tcm->tick(0);

    std::vector<int> first;
    for (ThreadId t = 0; t < 4; ++t)
        first.push_back(rig.tcm->rankOf(0, t));
    bool changed = false;
    for (Cycle now = 1; now < 2000 && !changed; ++now) {
        rig.tcm->tick(now);
        for (ThreadId t = 0; t < 4; ++t)
            changed |= rig.tcm->rankOf(0, t) != first[t];
    }
    EXPECT_TRUE(changed);
}

TEST(TcmPolicy, RanksArePermutationOfAllThreads)
{
    TcmParams p;
    p.quantum = 500;
    TcmRig rig(6, p);
    for (Cycle now = 0; now < 5000; now += 100) {
        rig.tcm->tick(now);
        std::set<int> ranks;
        for (ThreadId t = 0; t < 6; ++t)
            ranks.insert(rig.tcm->rankOf(0, t));
        EXPECT_EQ(ranks.size(), 6u) << "at cycle " << now;
    }
}

TEST(TcmPolicy, ForcedRandomModeNeverUsesInsertion)
{
    TcmParams p;
    p.quantum = 1000;
    p.shuffleMode = ShuffleMode::Random;
    TcmRig rig(4, p);
    for (Cycle now = 0; now <= 5000; now += 500)
        rig.tcm->tick(now);
    EXPECT_EQ(rig.tcm->activeShuffleMode(), ShuffleMode::Random);
}

TEST(TcmPolicy, ShuffleAlgoThreshOfOneForcesRandom)
{
    // Even with wildly heterogeneous BLP/RBL, threshold 1 means the
    // spread can never exceed it -> random shuffling (paper Section 3.3).
    TcmParams p;
    p.quantum = 1000;
    p.shuffleAlgoThresh = 1.0;
    TcmRig rig(2, p);
    rig.tcm->tick(0);

    mem::Request a = {};
    a.thread = 0;
    a.channel = 0;
    a.bank = 0;
    // Build strong BLP/RBL contrast via arrivals.
    for (int i = 0; i < 50; ++i) {
        a.row = i;
        a.seq = i;
        rig.tcm->onArrival(a, 10 + i);
        rig.tcm->onDepart(a, 12 + i);
    }
    rig.tcm->tick(1000);
    EXPECT_EQ(rig.tcm->activeShuffleMode(), ShuffleMode::Random);
}

TEST(Shuffle, UpdateNicenessPreservesRotationPhase)
{
    std::vector<double> nice = {0, 1, 2, 3};
    Pcg32 rng(1);
    ShuffleState s({0, 1, 2, 3}, nice, unitWeights(4),
                   ShuffleMode::Insertion, &rng);
    s.step();
    s.step();
    auto mid = s.order();
    // Same relative niceness ordering -> the state is untouched and the
    // next step continues the rotation instead of restarting.
    s.updateNiceness({0, 10, 20, 30});
    EXPECT_EQ(s.order(), mid);
    s.step();
    EXPECT_NE(s.order(), mid);
}

TEST(TcmPolicy, ShufflePhaseSurvivesQuantumWithStableCluster)
{
    TcmParams p;
    p.quantum = 2000;
    p.shuffleInterval = 500;
    p.shuffleMode = ShuffleMode::Insertion;
    TcmRig rig(4, p);

    // Drive identical per-quantum behaviour so clustering never changes
    // (all threads stay in the bandwidth cluster: no core counters set,
    // zero bandwidth usage).
    std::vector<std::vector<int>> rankHistory;
    for (Cycle now = 0; now <= 20'000; now += 100) {
        rig.tcm->tick(now);
        std::vector<int> ranks;
        for (ThreadId t = 0; t < 4; ++t)
            ranks.push_back(rig.tcm->rankOf(0, t));
        rankHistory.push_back(ranks);
    }
    // If the rotation restarted at every quantum, the rank pattern would
    // repeat with period exactly one quantum (20 samples). Continuity
    // makes the sequence drift across quanta: compare the first sample
    // of consecutive quanta and require at least one difference.
    bool drifted = false;
    for (std::size_t q = 1; q * 20 < rankHistory.size(); ++q)
        drifted |= rankHistory[q * 20] != rankHistory[0];
    EXPECT_TRUE(drifted);
}

TEST(TcmPolicy, WeightScalesMpkiWithinLatencyCluster)
{
    // Two light threads with identical behaviour; the weighted one has a
    // smaller scaled MPKI and must rank higher inside the latency
    // cluster (Section 3.6).
    TcmParams p;
    p.quantum = 1000;
    p.clusterThreshOverride = 1.0; // everyone fits once bandwidth exists
    TcmRig rig(2, p);
    rig.tcm->setThreadWeights({1, 8});
    rig.tcm->tick(0);

    rig.counters[0].instructions = 100'000;
    rig.counters[0].readMisses = 100;
    rig.counters[1].instructions = 100'000;
    rig.counters[1].readMisses = 100;
    mem::Request r = {};
    r.channel = 0;
    for (ThreadId t = 0; t < 2; ++t) {
        r.thread = t;
        rig.tcm->onCommand(r, dram::CommandKind::Read, 10, 50);
    }
    rig.tcm->tick(1000);
    ASSERT_EQ(rig.tcm->latencyCluster().size(), 2u);
    EXPECT_GT(rig.tcm->rankOf(0, 1), rig.tcm->rankOf(0, 0));
}

TEST(TcmPolicy, ClusterThreshOverrideControlsClusterSize)
{
    // With override 1.0 every thread fits the latency cluster once any
    // bandwidth was used.
    TcmParams p;
    p.quantum = 1000;
    p.clusterThreshOverride = 1.0;
    TcmRig rig(3, p);
    rig.tcm->tick(0);
    mem::Request r = {};
    r.channel = 0;
    for (ThreadId t = 0; t < 3; ++t) {
        r.thread = t;
        rig.tcm->onCommand(r, dram::CommandKind::Read, 10, 50);
    }
    rig.tcm->tick(1000);
    EXPECT_EQ(rig.tcm->latencyCluster().size(), 3u);
}
