/**
 * @file
 * Parameterized property sweeps (TEST_P) across the public surface:
 * clone calibration for every Table 4 benchmark, address-map round
 * trips over geometries, shuffle-state algebra over cluster sizes,
 * clustering invariants over random inputs, and metric bounds.
 */

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "dram/address.hpp"
#include "metrics/metrics.hpp"
#include "sched/tcm/clustering.hpp"
#include "sched/tcm/shuffle.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"

using namespace tcm;

// ---------------------------------------------------------------------------
// Clone calibration: every Table 4 benchmark, measured alone.
// ---------------------------------------------------------------------------

class CloneCalibration : public testing::TestWithParam<std::string>
{
};

TEST_P(CloneCalibration, MpkiAndRblTrackTargets)
{
    workload::ThreadProfile p = workload::benchmarkProfile(GetParam());
    sim::SystemConfig config;
    sim::Simulator sim(config, {p}, sched::SchedulerSpec::frfcfs(), 4242,
                       /*enableProbe=*/true);
    sim.run(30'000, 250'000);
    auto b = sim.behavior(0);

    if (p.mpki >= 0.5) {
        EXPECT_NEAR(b.mpki, p.mpki, std::max(0.15 * p.mpki, 0.1))
            << "MPKI of " << p.name;
    }
    // RBL: shadow-row measurement systematically reads slightly low when
    // multiple streams share a bank; allow 0.15 absolute. Threads below
    // 0.1 MPKI produce too few accesses in this run for the estimate to
    // be statistically meaningful.
    if (p.mpki >= 0.1) {
        EXPECT_NEAR(b.rbl, p.rbl, 0.15) << "RBL of " << p.name;
    }

    // BLP saturates at what the window/DDR2 allow; require the direction
    // (multi-bank threads measure > 1.3, single-bank threads < 1.6).
    if (p.blp >= 2.5) {
        EXPECT_GT(b.blp, 1.3) << "BLP of " << p.name;
    }
    if (p.blp <= 1.2) {
        EXPECT_LT(b.blp, 1.6) << "BLP of " << p.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CloneCalibration,
    testing::Values("mcf", "libquantum", "leslie3d", "soplex", "lbm",
                    "GemsFDTD", "sphinx3", "xalancbmk", "omnetpp",
                    "cactusADM", "astar", "hmmer", "bzip2", "h264ref",
                    "gromacs", "gobmk", "sjeng", "gcc", "dealII", "wrf",
                    "namd", "perlbench", "calculix", "tonto", "povray"),
    [](const testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------------------
// Address map: round trip over geometries.
// ---------------------------------------------------------------------------

class AddressGeometry : public testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(AddressGeometry, RoundTripAndBounds)
{
    auto [channels, blockBytes] = GetParam();
    dram::TimingParams t = dram::TimingParams::ddr2_800();
    dram::AddressMap map(t, channels, blockBytes);
    Pcg32 rng(channels * 131 + blockBytes);
    for (int i = 0; i < 2000; ++i) {
        dram::Coord c;
        c.channel = static_cast<ChannelId>(rng.nextBelow(channels));
        c.bank = static_cast<BankId>(rng.nextBelow(t.banksPerChannel));
        c.row = static_cast<RowId>(rng.nextBelow(t.rowsPerBank));
        c.col = static_cast<ColId>(rng.nextBelow(t.colsPerRow));
        std::uint64_t addr = map.encode(c);
        ASSERT_LT(addr, map.capacityBytes());
        ASSERT_EQ(map.decode(addr), c);
        // Addresses within a block decode identically.
        ASSERT_EQ(map.decode(addr + blockBytes - 1), c);
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, AddressGeometry,
                         testing::Values(std::pair{1, 32}, std::pair{2, 32},
                                         std::pair{4, 32}, std::pair{8, 64},
                                         std::pair{16, 128}),
                         [](const auto &info) {
                             return "ch" + std::to_string(info.param.first) +
                                    "_b" +
                                    std::to_string(info.param.second);
                         });

// ---------------------------------------------------------------------------
// Shuffle algebra over cluster sizes.
// ---------------------------------------------------------------------------

class ShuffleSizes : public testing::TestWithParam<int>
{
};

TEST_P(ShuffleSizes, InsertionPeriodIsTwoNAndAlwaysPermutes)
{
    const int n = GetParam();
    std::vector<ThreadId> threads(n);
    std::vector<double> nice(n);
    std::iota(threads.begin(), threads.end(), 0);
    for (int i = 0; i < n; ++i)
        nice[i] = 0.37 * i;
    std::vector<int> weights(n, 1);
    Pcg32 rng(n);
    sched::ShuffleState s(threads, nice, weights,
                          sched::ShuffleMode::Insertion, &rng);
    auto initial = s.order();
    for (int step = 0; step < 2 * n; ++step) {
        s.step();
        auto o = s.order();
        std::sort(o.begin(), o.end());
        ASSERT_EQ(o, threads) << "step " << step;
    }
    EXPECT_EQ(s.order(), initial);
}

TEST_P(ShuffleSizes, EveryThreadReachesTopUnderInsertion)
{
    const int n = GetParam();
    if (n < 2)
        GTEST_SKIP();
    std::vector<ThreadId> threads(n);
    std::vector<double> nice(n);
    std::iota(threads.begin(), threads.end(), 0);
    for (int i = 0; i < n; ++i)
        nice[i] = static_cast<double>(i);
    std::vector<int> weights(n, 1);
    Pcg32 rng(n);
    sched::ShuffleState s(threads, nice, weights,
                          sched::ShuffleMode::Insertion, &rng);
    std::set<ThreadId> toppers;
    for (int step = 0; step < 2 * n; ++step) {
        s.step();
        toppers.insert(s.order().back());
    }
    EXPECT_EQ(toppers.size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShuffleSizes,
                         testing::Values(1, 2, 3, 4, 7, 12, 24),
                         [](const testing::TestParamInfo<int> &i) {
                             return "n" + std::to_string(i.param);
                         });

// ---------------------------------------------------------------------------
// Clustering invariants over random inputs.
// ---------------------------------------------------------------------------

class ClusteringProperty : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ClusteringProperty, PartitionAndBudgetInvariants)
{
    Pcg32 rng(GetParam());
    const int n = 4 + static_cast<int>(rng.nextBelow(28));
    std::vector<double> mpki(n);
    std::vector<std::uint64_t> bw(n);
    for (int i = 0; i < n; ++i) {
        mpki[i] = rng.nextDouble() * 100.0;
        bw[i] = rng.nextBelow(100'000);
    }
    double thresh = rng.nextDouble() * 0.5;
    sched::ClusterResult r = sched::clusterThreads(mpki, bw, thresh);

    // Partition: every thread exactly once.
    std::vector<ThreadId> all = r.latency;
    all.insert(all.end(), r.bandwidth.begin(), r.bandwidth.end());
    std::sort(all.begin(), all.end());
    std::vector<ThreadId> expect(n);
    std::iota(expect.begin(), expect.end(), 0);
    ASSERT_EQ(all, expect);

    // Budget: latency-cluster usage within thresh * total.
    std::uint64_t total = std::accumulate(bw.begin(), bw.end(),
                                          std::uint64_t{0});
    std::uint64_t latency_usage = 0;
    for (ThreadId t : r.latency)
        latency_usage += bw[t];
    EXPECT_LE(static_cast<double>(latency_usage),
              thresh * static_cast<double>(total) + 1e-9);

    // MPKI dominance: every latency thread has scaled MPKI <= every
    // bandwidth thread's, except where the budget forced the cut.
    if (!r.latency.empty()) {
        double worst_latency = 0.0;
        for (ThreadId t : r.latency)
            worst_latency = std::max(worst_latency, mpki[t]);
        // The *first* bandwidth thread in walk order broke the budget;
        // all later ones have higher MPKI than every latency thread.
        for (std::size_t i = 1; i < r.bandwidth.size(); ++i)
            EXPECT_GE(mpki[r.bandwidth[i]], worst_latency);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringProperty,
                         testing::Range<std::uint64_t>(1, 21),
                         [](const testing::TestParamInfo<std::uint64_t> &i) {
                             return "seed" + std::to_string(i.param);
                         });

// ---------------------------------------------------------------------------
// Metric bounds over random IPC vectors.
// ---------------------------------------------------------------------------

class MetricsProperty : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MetricsProperty, BoundsHold)
{
    Pcg32 rng(GetParam() * 977);
    const int n = 1 + static_cast<int>(rng.nextBelow(32));
    std::vector<double> alone(n), shared(n);
    for (int i = 0; i < n; ++i) {
        alone[i] = 0.05 + rng.nextDouble() * 3.0;
        shared[i] = alone[i] * (0.01 + rng.nextDouble() * 0.99);
    }
    metrics::WorkloadMetrics m = metrics::computeMetrics(alone, shared);

    EXPECT_GT(m.weightedSpeedup, 0.0);
    EXPECT_LE(m.weightedSpeedup, n + 1e-9); // shared <= alone here
    EXPECT_GE(m.maxSlowdown, 1.0 - 1e-9);
    EXPECT_GT(m.harmonicSpeedup, 0.0);
    EXPECT_LE(m.harmonicSpeedup, 1.0 + 1e-9);
    // Harmonic <= arithmetic mean of speedups.
    EXPECT_LE(m.harmonicSpeedup,
              m.weightedSpeedup / static_cast<double>(n) + 1e-9);
    // Max slowdown is indeed the max.
    double worst = *std::max_element(m.slowdowns.begin(), m.slowdowns.end());
    EXPECT_DOUBLE_EQ(worst, m.maxSlowdown);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         testing::Range<std::uint64_t>(1, 16),
                         [](const testing::TestParamInfo<std::uint64_t> &i) {
                             return "seed" + std::to_string(i.param);
                         });
