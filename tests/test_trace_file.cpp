/**
 * @file
 * Unit tests for trace capture/replay and the FQM scheduler.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "sched/fqm.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/trace_file.hpp"

using namespace tcm;
using namespace tcm::workload;

namespace {

std::string
tempPath(const char *name)
{
    return std::string("/tmp/tcmsim_test_") + name + ".trace";
}

} // namespace

// ---------------------------------------------------------------------------
// Trace file round trips
// ---------------------------------------------------------------------------

TEST(TraceFile, RoundTripPreservesEveryField)
{
    Geometry g;
    std::string path = tempPath("roundtrip");

    SyntheticTrace source(benchmarkProfile("lbm"), g, 7);
    std::vector<core::TraceItem> expect;
    {
        TraceWriter writer(path, g);
        for (int i = 0; i < 5000; ++i) {
            core::TraceItem item = source.next();
            expect.push_back(item);
            writer.write(item);
        }
        writer.close();
        EXPECT_EQ(writer.recordsWritten(), 5000u);
    }

    FileTrace replay(path, g);
    ASSERT_EQ(replay.size(), 5000u);
    for (const core::TraceItem &want : expect) {
        core::TraceItem got = replay.next();
        ASSERT_EQ(got.gap, want.gap);
        ASSERT_EQ(got.access.isWrite, want.access.isWrite);
        ASSERT_EQ(got.access.channel, want.access.channel);
        ASSERT_EQ(got.access.bank, want.access.bank);
        ASSERT_EQ(got.access.row, want.access.row);
        ASSERT_EQ(got.access.col, want.access.col);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayWrapsAround)
{
    Geometry g;
    std::string path = tempPath("wrap");
    captureSyntheticTrace(benchmarkProfile("gcc"), g, 3, 10, path);

    FileTrace replay(path, g);
    core::TraceItem first = replay.next();
    for (int i = 0; i < 9; ++i)
        replay.next();
    core::TraceItem wrapped = replay.next();
    EXPECT_EQ(wrapped.gap, first.gap);
    EXPECT_EQ(wrapped.access.row, first.access.row);
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileThrows)
{
    Geometry g;
    EXPECT_THROW(FileTrace("/nonexistent/nope.trace", g), TraceFileError);
}

TEST(TraceFile, GarbageFileThrows)
{
    std::string path = tempPath("garbage");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("this is not a trace", f);
        std::fclose(f);
    }
    Geometry g;
    EXPECT_THROW(FileTrace(path, g), TraceFileError);
    std::remove(path.c_str());
}

TEST(TraceFile, GeometryMismatchThrows)
{
    Geometry big;
    big.numChannels = 8;
    std::string path = tempPath("geom");
    captureSyntheticTrace(benchmarkProfile("gcc"), big, 3, 100, path);

    Geometry small; // 4 channels
    EXPECT_THROW(FileTrace(path, small), TraceFileError);
    // The capture geometry itself loads fine.
    EXPECT_NO_THROW(FileTrace(path, big));
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceThrows)
{
    Geometry g;
    std::string path = tempPath("empty");
    {
        TraceWriter writer(path, g);
        writer.close();
    }
    EXPECT_THROW(FileTrace(path, g), TraceFileError);
    std::remove(path.c_str());
}

TEST(TraceFile, TextDumpConvertRoundTripsBitExact)
{
    Geometry g;
    std::string bin = tempPath("text_rt_bin");
    std::string txt = tempPath("text_rt_txt") + ".txt";
    std::string bin2 = tempPath("text_rt_bin2");
    captureSyntheticTrace(benchmarkProfile("lbm"), g, 5, 2000, bin);

    dumpTraceAsText(bin, txt);
    convertTextTrace(txt, bin2);

    FileTrace a(bin, g), b(bin2, g);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        core::TraceItem x = a.next(), y = b.next();
        ASSERT_EQ(x.gap, y.gap);
        ASSERT_EQ(x.access.isWrite, y.access.isWrite);
        ASSERT_EQ(x.access.channel, y.access.channel);
        ASSERT_EQ(x.access.bank, y.access.bank);
        ASSERT_EQ(x.access.row, y.access.row);
        ASSERT_EQ(x.access.col, y.access.col);
    }
    std::remove(bin.c_str());
    std::remove(txt.c_str());
    std::remove(bin2.c_str());
}

TEST(TraceFile, ConvertRejectsMalformedText)
{
    std::string txt = tempPath("bad_txt") + ".txt";
    std::string bin = tempPath("bad_bin");
    {
        std::FILE *f = std::fopen(txt.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("# geometry: 4 4 16384 64\n", f);
        std::fputs("10 X 0 0 1 2\n", f); // bad R/W flag
        std::fclose(f);
    }
    EXPECT_THROW(convertTextTrace(txt, bin), TraceFileError);

    {
        std::FILE *f = std::fopen(txt.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("10 R 0 0 1 2\n", f); // no geometry header
        std::fclose(f);
    }
    EXPECT_THROW(convertTextTrace(txt, bin), TraceFileError);

    {
        std::FILE *f = std::fopen(txt.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("# geometry: 4 4 16384 64\n", f);
        std::fputs("10 R 9 0 1 2\n", f); // channel out of range
        std::fclose(f);
    }
    EXPECT_THROW(convertTextTrace(txt, bin), TraceFileError);

    std::remove(txt.c_str());
    std::remove(bin.c_str());
}

// ---------------------------------------------------------------------------
// Replay through the full simulator
// ---------------------------------------------------------------------------

TEST(TraceFile, ReplayedSimulationIsDeterministic)
{
    sim::SystemConfig cfg;
    cfg.numCores = 2;
    Geometry g = cfg.geometry();
    std::string path = tempPath("simrun");
    captureSyntheticTrace(benchmarkProfile("mcf"), g, 11, 50'000, path);

    double ipc[2];
    for (int run = 0; run < 2; ++run) {
        std::vector<std::unique_ptr<core::TraceSource>> traces;
        traces.push_back(std::make_unique<FileTrace>(path, g));
        traces.push_back(std::make_unique<FileTrace>(path, g));
        sim::Simulator sim(cfg, std::move(traces),
                           sched::SchedulerSpec::tcmSpec(), 5);
        sim.run(10'000, 80'000);
        ipc[run] = sim.measuredIpc(0) + sim.measuredIpc(1);
        EXPECT_GT(sim.measuredIpc(0), 0.0);
    }
    EXPECT_DOUBLE_EQ(ipc[0], ipc[1]);
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayMatchesLiveSyntheticStatistics)
{
    // A captured-and-replayed clone must show the same measured MPKI as
    // the live generator it was captured from.
    sim::SystemConfig cfg;
    cfg.numCores = 1;
    Geometry g = cfg.geometry();
    ThreadProfile p = benchmarkProfile("sphinx3");

    std::string path = tempPath("stats");
    captureSyntheticTrace(p, g, 21, 100'000, path);

    std::vector<std::unique_ptr<core::TraceSource>> traces;
    traces.push_back(std::make_unique<FileTrace>(path, g));
    sim::Simulator replaySim(cfg, std::move(traces),
                             sched::SchedulerSpec::frfcfs(), 5, true);
    replaySim.run(20'000, 150'000);
    auto b = replaySim.behavior(0);
    EXPECT_NEAR(b.mpki, p.mpki, p.mpki * 0.15);
    EXPECT_NEAR(b.rbl, p.rbl, 0.12);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// FQM
// ---------------------------------------------------------------------------

namespace {

mem::Request
fqmReq(ThreadId t, std::uint64_t seq)
{
    mem::Request r;
    r.thread = t;
    r.channel = 0;
    r.bank = 0;
    r.row = 1;
    r.seq = seq;
    return r;
}

} // namespace

TEST(FqmPolicy, LeastVirtualTimeRanksHighest)
{
    sched::FqmParams p;
    p.updatePeriod = 10;
    sched::Fqm fqm(p);
    fqm.configure(3, 1, 4);

    fqm.onCommand(fqmReq(0, 1), dram::CommandKind::Read, 0, 500);
    fqm.onCommand(fqmReq(1, 2), dram::CommandKind::Read, 0, 100);
    fqm.tick(10);
    EXPECT_GT(fqm.rankOf(0, 2), fqm.rankOf(0, 1)); // 2 never serviced
    EXPECT_GT(fqm.rankOf(0, 1), fqm.rankOf(0, 0));
}

TEST(FqmPolicy, WeightsScaleVirtualTime)
{
    sched::FqmParams p;
    p.updatePeriod = 10;
    sched::Fqm fqm(p);
    fqm.configure(2, 1, 4);
    fqm.setThreadWeights({1, 4});
    fqm.onCommand(fqmReq(0, 1), dram::CommandKind::Read, 0, 100);
    fqm.onCommand(fqmReq(1, 2), dram::CommandKind::Read, 0, 100);
    EXPECT_DOUBLE_EQ(fqm.virtualTime(0), 100.0);
    EXPECT_DOUBLE_EQ(fqm.virtualTime(1), 25.0);
    fqm.tick(10);
    EXPECT_GT(fqm.rankOf(0, 1), fqm.rankOf(0, 0));
}

TEST(FqmPolicy, IdleThreadCatchesUp)
{
    sched::FqmParams p;
    p.updatePeriod = 10;
    sched::Fqm fqm(p);
    fqm.configure(2, 1, 4);

    // Thread 0 works continuously (outstanding requests present);
    // thread 1 is idle and must not fall behind the active minimum.
    fqm.onArrival(fqmReq(0, 1), 0);
    for (Cycle now = 0; now < 1000; now += 10) {
        fqm.onCommand(fqmReq(0, 1), dram::CommandKind::Read, now, 50);
        fqm.tick(now);
    }
    EXPECT_GE(fqm.virtualTime(1), fqm.virtualTime(0) - 300.0);
}

TEST(FqmPolicy, EndToEndSharesBandwidthEvenly)
{
    // Four identical heavy threads under FQM: slowdowns within ~25% of
    // each other (bandwidth fairness is FQM's whole purpose).
    sim::SystemConfig cfg;
    cfg.numCores = 4;
    cfg.numChannels = 1;
    std::vector<ThreadProfile> mix(4, benchmarkProfile("lbm"));
    sim::Simulator sim(cfg, mix, sched::SchedulerSpec::fqmSpec(), 5);
    sim.run(20'000, 150'000);
    double lo = 1e9, hi = 0.0;
    for (ThreadId t = 0; t < 4; ++t) {
        lo = std::min(lo, sim.measuredIpc(t));
        hi = std::max(hi, sim.measuredIpc(t));
    }
    EXPECT_LT(hi / lo, 1.25);
}
