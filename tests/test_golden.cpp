/**
 * @file
 * Golden regression tests: fixed-seed end-to-end runs whose headline
 * metrics must stay inside recorded bands. These catch silent behaviour
 * drift (a scheduler change, a timing fix, a generator tweak) that the
 * unit tests' invariants would let through.
 *
 * Bands are deliberately generous (+/-15% around the recorded value):
 * they should only trip on *behavioural* changes, never on compiler or
 * platform noise (the simulator itself is bit-deterministic per build).
 * When a deliberate change moves a metric, re-record the band and say
 * why in the commit.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

using namespace tcm;

namespace {

struct Golden
{
    sched::Algo algo;
    double ws;
    double ms;
};

class GoldenWorkloadA : public testing::TestWithParam<Golden>
{
};

std::string
goldenName(const testing::TestParamInfo<Golden> &info)
{
    std::string n = sched::algoName(info.param.algo);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

TEST_P(GoldenWorkloadA, MetricsWithinRecordedBands)
{
    Golden g = GetParam();
    sim::SystemConfig config;
    sim::ExperimentScale scale;
    scale.warmup = 50'000;
    scale.measure = 300'000;
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);

    auto mix = workload::tableFiveWorkload('A');
    sched::SchedulerSpec spec;
    spec.algo = g.algo;
    sim::RunResult r = sim::runWorkload(config, mix, spec, scale, cache,
                                        /*seed=*/7);

    EXPECT_NEAR(r.metrics.weightedSpeedup, g.ws, 0.15 * g.ws)
        << "weighted speedup drifted";
    EXPECT_NEAR(r.metrics.maxSlowdown, g.ms, 0.15 * g.ms)
        << "maximum slowdown drifted";
}

// Recorded on the baseline configuration (Table 5 workload A, seed 7,
// 300K measured cycles) at the time the repository was finalized.
INSTANTIATE_TEST_SUITE_P(Recorded, GoldenWorkloadA,
                         testing::Values(
                             Golden{sched::Algo::FrFcfs, 11.50, 4.54},
                             Golden{sched::Algo::ParBs, 12.11, 4.48},
                             Golden{sched::Algo::Atlas, 13.74, 14.18},
                             Golden{sched::Algo::Tcm, 12.88, 6.48}),
                         goldenName);
