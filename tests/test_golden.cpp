/**
 * @file
 * Golden regression tests: fixed-seed end-to-end runs whose headline
 * metrics must stay inside recorded bands. These catch silent behaviour
 * drift (a scheduler change, a timing fix, a generator tweak) that the
 * unit tests' invariants would let through.
 *
 * Bands are deliberately generous (+/-15% around the recorded value):
 * they should only trip on *behavioural* changes, never on compiler or
 * platform noise (the simulator itself is bit-deterministic per build).
 * When a deliberate change moves a metric, re-record the band and say
 * why in the commit.
 */

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dram/observer.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

using namespace tcm;

namespace {

struct Golden
{
    sched::Algo algo;
    double ws;
    double ms;
};

class GoldenWorkloadA : public testing::TestWithParam<Golden>
{
};

std::string
goldenName(const testing::TestParamInfo<Golden> &info)
{
    std::string n = sched::algoName(info.param.algo);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

TEST_P(GoldenWorkloadA, MetricsWithinRecordedBands)
{
    Golden g = GetParam();
    sim::SystemConfig config;
    sim::ExperimentScale scale;
    scale.warmup = 50'000;
    scale.measure = 300'000;
    sim::AloneIpcCache cache(config, scale.warmup, scale.measure);

    auto mix = workload::tableFiveWorkload('A');
    sched::SchedulerSpec spec;
    spec.algo = g.algo;
    sim::RunResult r = sim::runWorkload(config, mix, spec, scale, cache,
                                        /*seed=*/7);

    EXPECT_NEAR(r.metrics.weightedSpeedup, g.ws, 0.15 * g.ws)
        << "weighted speedup drifted";
    EXPECT_NEAR(r.metrics.maxSlowdown, g.ms, 0.15 * g.ms)
        << "maximum slowdown drifted";
}

// Recorded on the baseline configuration (Table 5 workload A, seed 7,
// 300K measured cycles) at the time the repository was finalized.
INSTANTIATE_TEST_SUITE_P(Recorded, GoldenWorkloadA,
                         testing::Values(
                             Golden{sched::Algo::FrFcfs, 11.50, 4.54},
                             Golden{sched::Algo::ParBs, 12.11, 4.48},
                             Golden{sched::Algo::Atlas, 13.74, 14.18},
                             Golden{sched::Algo::Tcm, 12.88, 6.48}),
                         goldenName);

// ---------------------------------------------------------------------------
// Golden command trace: the exact DRAM command stream of a tiny
// deterministic run, diffed command-for-command. Where the metric bands
// above allow +/-15% drift, this catches any change at all in command
// selection or timing — one cycle of difference in one ACT fails the
// test. When a deliberate change moves the stream, regenerate with
//   TCMSIM_REGOLD=1 ctest -R test_golden
// and explain the change in the commit.
// ---------------------------------------------------------------------------

namespace {

/** Record a 400-event command trace under @p spec and diff (or regold,
 *  with TCMSIM_REGOLD=1) against the golden at @p path. */
void
checkCommandTrace(const sched::SchedulerSpec &spec, const std::string &path)
{
    constexpr std::size_t kEvents = 400;

    sim::SystemConfig config;
    config.numCores = 2;
    config.numChannels = 1;
    auto mix = workload::randomMix(config.numCores, 1.0, /*seed=*/99);
    sched::SchedulerSpec scaled = spec;
    scaled.scaleToRun(30'000);

    sim::Simulator sim(config, mix, scaled, /*seed=*/99);
    dram::CommandTraceRecorder recorder(kEvents);
    sim.attachCommandObserver(&recorder);
    sim.step(30'000);
    ASSERT_TRUE(recorder.full())
        << "run produced only " << recorder.lines().size() << " of "
        << kEvents << " trace events";

    if (std::getenv("TCMSIM_REGOLD") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << recorder.text();
        GTEST_SKIP() << "golden trace regenerated at " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run once with TCMSIM_REGOLD=1 to record it)";
    std::vector<std::string> expected;
    for (std::string line; std::getline(in, line);)
        if (!line.empty())
            expected.push_back(line);

    const std::vector<std::string> &actual = recorder.lines();
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < actual.size(); ++i)
        ASSERT_EQ(expected[i], actual[i])
            << "command stream diverges at event #" << i;
}

} // namespace

TEST(GoldenCommandTrace, FrFcfsCommandStreamIsBitStable)
{
    checkCommandTrace(sched::SchedulerSpec::frfcfs(),
                      std::string(TCMSIM_GOLDEN_DIR) +
                          "/cmd_trace_frfcfs_seed99.txt");
}

// The BLISS trace pins the blacklisting path at per-command granularity:
// on this 2-thread single-channel run the 4-streak threshold trips
// repeatedly, so any change to streak accounting, clearing, or the
// rank flip shifts ACT/column selection and fails the diff.
TEST(GoldenCommandTrace, BlissCommandStreamIsBitStable)
{
    checkCommandTrace(sched::SchedulerSpec::blissSpec(),
                      std::string(TCMSIM_GOLDEN_DIR) +
                          "/cmd_trace_bliss_seed99.txt");
}
