/**
 * @file
 * Disk round-trip hardening for the persistent alone-IPC store
 * (sim/alone_cache.hpp): a saved store reloads bit-equal and serves
 * every lookup as a hit; every broken-store shape — missing file, bad
 * header, fingerprint mismatch (config or horizon), truncated body,
 * corrupted entry, missing count trailer — is rejected wholesale with
 * the cache left untouched, falling back to a clean recompute; and the
 * fingerprint moves with every behaviour-affecting configuration knob
 * while ignoring pure observers and bit-identity execution modes.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/alone_cache.hpp"
#include "sim/system_config.hpp"
#include "workload/mixes.hpp"

using namespace tcm;
namespace fs = std::filesystem;

namespace {

/** Small system so the alone runs stay fast. */
sim::SystemConfig
smallConfig()
{
    sim::SystemConfig config;
    config.numCores = 4;
    config.numChannels = 2;
    return config;
}

constexpr Cycle kWarmup = 2'000;
constexpr Cycle kMeasure = 10'000;

/** Fresh per-test scratch directory under the system temp dir. */
class AloneStoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("tcmsim_alone_store_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    static std::string readFile(const std::string &p)
    {
        std::ifstream in(p, std::ios::binary);
        EXPECT_TRUE(in.good()) << "cannot read " << p;
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    static void writeFile(const std::string &p, const std::string &text)
    {
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        out << text;
        ASSERT_TRUE(out.good()) << "cannot write " << p;
    }

    fs::path dir_;
};

/** A mix with several distinct profiles (full intensity = all MPKI>0). */
std::vector<workload::ThreadProfile>
someProfiles()
{
    return workload::randomMix(4, 1.0, 5);
}

} // namespace

TEST_F(AloneStoreTest, CountersTrackHitsAndMisses)
{
    sim::AloneIpcCache cache(smallConfig(), kWarmup, kMeasure);
    auto profiles = someProfiles();

    EXPECT_EQ(cache.lookups(), 0u);
    double first = cache.aloneIpc(profiles[0]);
    EXPECT_EQ(cache.lookups(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    double again = cache.aloneIpc(profiles[0]);
    EXPECT_EQ(again, first); // memo hit, bit-equal
    EXPECT_EQ(cache.lookups(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(AloneStoreTest, SaveLoadRoundTripIsBitEqualAndMissFree)
{
    sim::SystemConfig config = smallConfig();
    auto profiles = someProfiles();

    sim::AloneIpcCache writer(config, kWarmup, kMeasure);
    std::vector<double> computed;
    for (const auto &p : profiles)
        computed.push_back(writer.aloneIpc(p));
    ASSERT_GT(writer.size(), 0u);
    writer.saveToFile(path("store.cache"));

    sim::AloneIpcCache reader(config, kWarmup, kMeasure);
    sim::AloneIpcCache::LoadResult r =
        reader.loadFromFile(path("store.cache"));
    EXPECT_TRUE(r.ok) << r.message;
    EXPECT_EQ(r.loaded, writer.size());
    EXPECT_TRUE(r.message.empty());

    for (std::size_t i = 0; i < profiles.size(); ++i)
        EXPECT_EQ(reader.aloneIpc(profiles[i]), computed[i])
            << "loaded entry " << i << " not bit-equal";
    EXPECT_EQ(reader.misses(), 0u)
        << "a loaded store must serve every lookup without simulating";
    EXPECT_EQ(reader.hits(), reader.lookups());
}

TEST_F(AloneStoreTest, MissingFileIsCleanlyRejected)
{
    sim::AloneIpcCache cache(smallConfig(), kWarmup, kMeasure);
    sim::AloneIpcCache::LoadResult r =
        cache.loadFromFile(path("nope.cache"));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.loaded, 0u);
    EXPECT_FALSE(r.message.empty());
    EXPECT_EQ(cache.size(), 0u);
}

TEST_F(AloneStoreTest, ConfigFingerprintMismatchRejectsWholesale)
{
    sim::SystemConfig a = smallConfig();
    sim::AloneIpcCache writer(a, kWarmup, kMeasure);
    writer.aloneIpc(someProfiles()[0]);
    writer.saveToFile(path("store.cache"));

    sim::SystemConfig b = smallConfig();
    ASSERT_TRUE(b.selectProtocol("ddr3-1333").empty());
    sim::AloneIpcCache reader(b, kWarmup, kMeasure);
    sim::AloneIpcCache::LoadResult r =
        reader.loadFromFile(path("store.cache"));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("fingerprint"), std::string::npos)
        << r.message;
    EXPECT_EQ(reader.size(), 0u) << "a rejected load must adopt nothing";
}

TEST_F(AloneStoreTest, HorizonFingerprintMismatchRejectsWholesale)
{
    sim::SystemConfig config = smallConfig();
    sim::AloneIpcCache writer(config, kWarmup, kMeasure);
    writer.aloneIpc(someProfiles()[0]);
    writer.saveToFile(path("store.cache"));

    sim::AloneIpcCache reader(config, kWarmup, 2 * kMeasure);
    sim::AloneIpcCache::LoadResult r =
        reader.loadFromFile(path("store.cache"));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("fingerprint"), std::string::npos)
        << r.message;
    EXPECT_EQ(reader.size(), 0u);
}

TEST_F(AloneStoreTest, TruncatedStoreFallsBackToRecompute)
{
    sim::SystemConfig config = smallConfig();
    auto profiles = someProfiles();
    sim::AloneIpcCache writer(config, kWarmup, kMeasure);
    double expected = writer.aloneIpc(profiles[0]);
    writer.saveToFile(path("store.cache"));

    // Drop the "end <count>" trailer (the killed-writer shape an atomic
    // rename prevents, but a copied/truncated file can still exhibit).
    std::string text = readFile(path("store.cache"));
    std::size_t end = text.rfind("end ");
    ASSERT_NE(end, std::string::npos);
    writeFile(path("store.cache"), text.substr(0, end));

    sim::AloneIpcCache reader(config, kWarmup, kMeasure);
    sim::AloneIpcCache::LoadResult r =
        reader.loadFromFile(path("store.cache"));
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.message.empty());
    EXPECT_EQ(reader.size(), 0u);

    // The fallback path: recompute still produces the right value.
    EXPECT_EQ(reader.aloneIpc(profiles[0]), expected);
    EXPECT_EQ(reader.misses(), 1u);
}

TEST_F(AloneStoreTest, CorruptedEntryRejectsWholesale)
{
    sim::SystemConfig config = smallConfig();
    sim::AloneIpcCache writer(config, kWarmup, kMeasure);
    for (const auto &p : someProfiles())
        writer.aloneIpc(p);
    writer.saveToFile(path("store.cache"));

    // Mangle the first entry's IPC field into a non-number.
    std::string text = readFile(path("store.cache"));
    std::size_t entry = text.find("entry ");
    ASSERT_NE(entry, std::string::npos);
    std::size_t eol = text.find('\n', entry);
    std::size_t lastSpace = text.rfind(' ', eol);
    text.replace(lastSpace + 1, eol - lastSpace - 1, "bogus");
    writeFile(path("store.cache"), text);

    sim::AloneIpcCache reader(config, kWarmup, kMeasure);
    sim::AloneIpcCache::LoadResult r =
        reader.loadFromFile(path("store.cache"));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.loaded, 0u);
    EXPECT_EQ(reader.size(), 0u)
        << "no partial adoption from a corrupt store";
}

TEST_F(AloneStoreTest, WrongEntryCountTrailerRejectsWholesale)
{
    sim::SystemConfig config = smallConfig();
    sim::AloneIpcCache writer(config, kWarmup, kMeasure);
    for (const auto &p : someProfiles())
        writer.aloneIpc(p);
    writer.saveToFile(path("store.cache"));

    // Delete one entry line but leave the trailer count: the store now
    // lies about its own length, which must read as truncation.
    std::string text = readFile(path("store.cache"));
    std::size_t entry = text.find("entry ");
    ASSERT_NE(entry, std::string::npos);
    std::size_t eol = text.find('\n', entry);
    text.erase(entry, eol - entry + 1);
    writeFile(path("store.cache"), text);

    sim::AloneIpcCache reader(config, kWarmup, kMeasure);
    EXPECT_FALSE(reader.loadFromFile(path("store.cache")).ok);
    EXPECT_EQ(reader.size(), 0u);
}

TEST_F(AloneStoreTest, UnknownHeaderRejectsWholesale)
{
    writeFile(path("store.cache"), "tcmsim-alone-cache v999\n"
                                   "fingerprint 0000000000000000\n"
                                   "end 0\n");
    sim::AloneIpcCache cache(smallConfig(), kWarmup, kMeasure);
    sim::AloneIpcCache::LoadResult r =
        cache.loadFromFile(path("store.cache"));
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.message.empty());

    writeFile(path("garbage.cache"), "not a store at all\n");
    EXPECT_FALSE(cache.loadFromFile(path("garbage.cache")).ok);
    EXPECT_EQ(cache.size(), 0u);
}

TEST_F(AloneStoreTest, InMemoryEntriesWinOverTheStore)
{
    sim::SystemConfig config = smallConfig();
    auto profiles = someProfiles();

    sim::AloneIpcCache writer(config, kWarmup, kMeasure);
    double real = writer.aloneIpc(profiles[0]);
    writer.saveToFile(path("store.cache"));

    // Doctor the stored IPC to a sentinel value the simulation can never
    // produce, then load into a cache that already computed the truth.
    std::string text = readFile(path("store.cache"));
    std::size_t entry = text.find("entry ");
    ASSERT_NE(entry, std::string::npos);
    std::size_t eol = text.find('\n', entry);
    std::size_t lastSpace = text.rfind(' ', eol);
    text.replace(lastSpace + 1, eol - lastSpace - 1, "123456");
    // The trailer count is unchanged, so the doctored store still parses.
    writeFile(path("store.cache"), text);

    sim::AloneIpcCache reader(config, kWarmup, kMeasure);
    ASSERT_EQ(reader.aloneIpc(profiles[0]), real);
    sim::AloneIpcCache::LoadResult r =
        reader.loadFromFile(path("store.cache"));
    EXPECT_TRUE(r.ok) << r.message;
    EXPECT_EQ(reader.aloneIpc(profiles[0]), real)
        << "an already-computed entry must not be overwritten by a load";
}

// The referenced-by-name contract test (see the fingerprint() doc
// comment): every behaviour-affecting knob moves the fingerprint, every
// pure observer / bit-identity execution knob leaves it alone.
TEST(AloneCacheFingerprint, FingerprintCoversConfigKnobs)
{
    const sim::SystemConfig base = smallConfig();
    const std::uint64_t fp =
        sim::AloneIpcCache::fingerprint(base, kWarmup, kMeasure);

    // Deterministic across processes (it names on-disk stores).
    EXPECT_EQ(fp, sim::AloneIpcCache::fingerprint(base, kWarmup, kMeasure));

    // Run horizon.
    EXPECT_NE(fp,
              sim::AloneIpcCache::fingerprint(base, kWarmup + 1, kMeasure));
    EXPECT_NE(fp,
              sim::AloneIpcCache::fingerprint(base, kWarmup, kMeasure + 1));

    auto with = [&](auto mutate) {
        sim::SystemConfig c = base;
        mutate(c);
        return sim::AloneIpcCache::fingerprint(c, kWarmup, kMeasure);
    };

    // Behaviour-affecting knobs: each must move the hash.
    EXPECT_NE(fp, with([](sim::SystemConfig &c) { c.numCores = 8; }));
    EXPECT_NE(fp, with([](sim::SystemConfig &c) { c.numChannels = 1; }));
    EXPECT_NE(fp, with([](sim::SystemConfig &c) { c.mpkiScale = 0.5; }));
    EXPECT_NE(fp, with([](sim::SystemConfig &c) {
                  ASSERT_TRUE(c.selectProtocol("ddr3-1600").empty());
              }));
    EXPECT_NE(fp, with([](sim::SystemConfig &c) {
                  c.controller.pagePolicy = mem::PagePolicy::Closed;
              }));
    EXPECT_NE(fp, with([](sim::SystemConfig &c) {
                  c.controller.readQueueCap = 32;
              }));
    EXPECT_NE(fp, with([](sim::SystemConfig &c) {
                  c.controller.speculativePrecharge = true;
              }));
    EXPECT_NE(fp, with([](sim::SystemConfig &c) {
                  c.controller.powerDownIdleCycles = 500;
              }));
    EXPECT_NE(fp, with([](sim::SystemConfig &c) {
                  c.core.windowSize = 64;
              }));
    EXPECT_NE(fp, with([](sim::SystemConfig &c) {
                  c.timing.refreshEnabled = !c.timing.refreshEnabled;
              }));

    // Pure observers and bit-identity execution modes: invariant (their
    // no-effect-on-results property is enforced by their own suites).
    EXPECT_EQ(fp, with([](sim::SystemConfig &c) { c.protocolCheck = true; }));
    EXPECT_EQ(fp, with([](sim::SystemConfig &c) {
                  c.telemetry.enabled = true;
              }));
    EXPECT_EQ(fp,
              with([](sim::SystemConfig &c) { c.profile.enabled = true; }));
    EXPECT_EQ(fp, with([](sim::SystemConfig &c) {
                  c.cycleSkip = !c.cycleSkip;
              }));
    EXPECT_EQ(fp, with([](sim::SystemConfig &c) {
                  c.intraRunParallel = 4;
              }));
    EXPECT_EQ(fp, with([](sim::SystemConfig &c) {
                  c.controller.idleSkip = !c.controller.idleSkip;
              }));
}
