/**
 * @file
 * Unit tests for the memory controller: queueing, prioritization tiers,
 * write drain, refresh, backpressure and completion timing.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "mem/controller.hpp"
#include "mem/request_queue.hpp"
#include "sched/fcfs.hpp"
#include "sched/fixed_rank.hpp"
#include "sched/frfcfs.hpp"

using namespace tcm;
using namespace tcm::mem;

namespace {

dram::TimingParams
timing(bool refresh = false)
{
    dram::TimingParams t = dram::TimingParams::ddr2_800();
    t.refreshEnabled = refresh;
    return t;
}

/** Run the controller for @p cycles starting at @p from. */
Cycle
spin(MemoryController &mc, Cycle from, Cycle cycles)
{
    for (Cycle c = from; c < from + cycles; ++c)
        mc.tick(c);
    return from + cycles;
}

} // namespace

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

TEST(RequestQueue, CapacityCountsInFlight)
{
    RequestQueue q(2, 1);
    Request r;
    r.arrivedAt = 100;
    ASSERT_TRUE(q.canAcceptRead());
    q.addInFlight(r);
    ASSERT_TRUE(q.canAcceptRead());
    q.addInFlight(r);
    EXPECT_FALSE(q.canAcceptRead());
    EXPECT_TRUE(q.canAcceptWrite());
}

TEST(RequestQueue, AdmitsOnlyDueArrivals)
{
    RequestQueue q(8, 8);
    Request a, b;
    a.arrivedAt = 10;
    a.seq = 1;
    b.arrivedAt = 20;
    b.seq = 2;
    q.addInFlight(a);
    q.addInFlight(b);
    EXPECT_EQ(q.admitArrivals(9).size(), 0u);
    auto first = q.admitArrivals(10);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].seq, 1u);
    EXPECT_EQ(q.reads().size(), 1u);
    auto second = q.admitArrivals(25);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].seq, 2u);
}

TEST(RequestQueue, RemoveReadSwapPops)
{
    RequestQueue q(8, 8);
    for (int i = 0; i < 3; ++i) {
        Request r;
        r.seq = i;
        r.arrivedAt = 0;
        q.addInFlight(r);
    }
    q.admitArrivals(0);
    Request removed = q.removeRead(0);
    EXPECT_EQ(removed.seq, 0u);
    EXPECT_EQ(q.reads().size(), 2u);
}

TEST(RequestQueue, WritesGoToWriteQueue)
{
    RequestQueue q(8, 8);
    Request w;
    w.isWrite = true;
    w.arrivedAt = 0;
    q.addInFlight(w);
    q.admitArrivals(0);
    EXPECT_EQ(q.reads().size(), 0u);
    EXPECT_EQ(q.writes().size(), 1u);
}

// ---------------------------------------------------------------------------
// Controller basics
// ---------------------------------------------------------------------------

TEST(Controller, UncontendedReadCompletesAtClosedBankLatency)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitRead(0, /*missId=*/1, /*bank=*/0, /*row=*/5, /*col=*/0, 0);
    spin(mc, 0, 600);
    ASSERT_EQ(mc.completions().size(), 1u);
    // closed bank: transport(40) + ACT wait + tRCD + tCL + tBURST + 35.
    Cycle expect = t.cpuToMcDelay + t.tRCD + t.tCL + t.tBURST +
                   t.mcToCpuDelay;
    EXPECT_NEAR(static_cast<double>(mc.completions()[0].readyAt),
                static_cast<double>(expect), t.tCK + 1);
    EXPECT_EQ(mc.stats().readsServiced, 1u);
    EXPECT_EQ(mc.stats().activates, 1u);
    EXPECT_EQ(mc.stats().rowHits, 0u);
}

TEST(Controller, RowHitSkipsActivate)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitRead(0, 1, 0, 5, 0, 0);
    Cycle now = spin(mc, 0, 600);
    mc.submitRead(0, 2, 0, 5, 1, now);
    spin(mc, now, 600);
    ASSERT_EQ(mc.completions().size(), 2u);
    EXPECT_EQ(mc.stats().activates, 1u);
    EXPECT_EQ(mc.stats().rowHits, 1u);
}

TEST(Controller, ConflictPrechargesThenActivates)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitRead(0, 1, 0, 5, 0, 0);
    Cycle now = spin(mc, 0, 600);
    mc.submitRead(0, 2, 0, 9, 0, now);
    spin(mc, now, 1000);
    ASSERT_EQ(mc.completions().size(), 2u);
    EXPECT_EQ(mc.stats().activates, 2u);
    EXPECT_EQ(mc.stats().precharges, 1u);
}

TEST(Controller, FrFcfsPrefersRowHitOverOlderConflict)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    sched::FrFcfs sched;
    sched.configure(2, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    // Open row 5 for thread 0.
    mc.submitRead(0, 1, 0, 5, 0, 0);
    Cycle now = spin(mc, 0, 600);
    // Conflict request (older by sequence) and row-hit request, arriving
    // together so the policy (not arrival timing) decides.
    mc.submitRead(1, 2, 0, 9, 0, now);
    mc.submitRead(0, 3, 0, 5, 1, now);
    spin(mc, now, 1500);
    ASSERT_EQ(mc.completions().size(), 3u);
    // The row hit (missId 3) must finish before the conflict (missId 2).
    EXPECT_EQ(mc.completions()[1].missId, 3u);
    EXPECT_EQ(mc.completions()[2].missId, 2u);
}

TEST(Controller, FcfsIgnoresRowHits)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    sched::Fcfs sched;
    sched.configure(2, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitRead(0, 1, 0, 5, 0, 0);
    Cycle now = spin(mc, 0, 600);
    mc.submitRead(1, 2, 0, 9, 0, now);
    mc.submitRead(0, 3, 0, 5, 1, now);
    spin(mc, now, 1500);
    ASSERT_EQ(mc.completions().size(), 3u);
    // Strict arrival order: the conflict (older by sequence) goes first.
    EXPECT_EQ(mc.completions()[1].missId, 2u);
    EXPECT_EQ(mc.completions()[2].missId, 3u);
}

TEST(Controller, HigherRankedThreadWinsOverRowHit)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    // Thread 1 strictly above thread 0.
    sched::FixedRank sched({0, 1});
    sched.configure(2, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitRead(0, 1, 0, 5, 0, 0);
    Cycle now = spin(mc, 0, 600);
    // Thread 0 row hit vs thread 1 conflict: rank outranks row-hit.
    mc.submitRead(0, 2, 0, 5, 1, now);
    mc.submitRead(1, 3, 0, 9, 0, now);
    spin(mc, now, 1500);
    ASSERT_EQ(mc.completions().size(), 3u);
    EXPECT_EQ(mc.completions()[1].missId, 3u);
    EXPECT_EQ(mc.completions()[2].missId, 2u);
}

TEST(Controller, BackpressureWhenReadBufferFull)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    p.readQueueCap = 4;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(mc.canAcceptRead());
        mc.submitRead(0, i + 1, 0, 5, i, 0);
    }
    EXPECT_FALSE(mc.canAcceptRead());
    spin(mc, 0, 2000);
    EXPECT_TRUE(mc.canAcceptRead());
    EXPECT_EQ(mc.completions().size(), 4u);
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

TEST(Controller, WritesServeOpportunisticallyWhenNoReads)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitWrite(0, 0, 5, 0, 0);
    spin(mc, 0, 1000);
    EXPECT_EQ(mc.stats().writesServiced, 1u);
}

TEST(Controller, WriteDrainTriggersAtHighWatermark)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    p.writeQueueCap = 64;
    p.writeDrain.highWatermark = 8;
    p.writeDrain.lowWatermark = 2;
    sched::FrFcfs sched;
    sched.configure(2, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    // Keep a steady stream of row-hit reads from thread 0 and pile up
    // writes from thread 1; once the high watermark is hit the drain
    // must service writes even though reads are pending.
    Cycle now = 0;
    mc.submitRead(0, 1000, 0, 5, 0, now);
    for (int i = 0; i < 10; ++i)
        mc.submitWrite(1, 1, 7, i, now);
    for (int i = 0; i < 40; ++i)
        mc.submitRead(0, i, 0, 5, i % 64, now + 1 + i);
    spin(mc, 0, 30'000);
    EXPECT_GE(mc.stats().writesServiced, 8u);
    EXPECT_GE(mc.stats().readsServiced, 40u);
}

TEST(Controller, WriteBackpressureAtCapacity)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    p.writeQueueCap = 2;
    p.writeDrain.highWatermark = 100; // never drain via watermark
    p.writeDrain.lowWatermark = 0;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitWrite(0, 0, 5, 0, 0);
    mc.submitWrite(0, 0, 5, 1, 0);
    EXPECT_FALSE(mc.canAcceptWrite());
    spin(mc, 0, 2000); // opportunistic drain (no reads)
    EXPECT_TRUE(mc.canAcceptWrite());
}

// ---------------------------------------------------------------------------
// Page policy
// ---------------------------------------------------------------------------

TEST(Controller, ClosedPageReactivatesForRepeatAccess)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    p.pagePolicy = PagePolicy::Closed;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    // Two same-row reads far apart in time: with closed-page the row is
    // gone by the second access, so two ACTs happen.
    mc.submitRead(0, 1, 0, 5, 0, 0);
    Cycle now = spin(mc, 0, 800);
    mc.submitRead(0, 2, 0, 5, 1, now);
    spin(mc, now, 800);
    EXPECT_EQ(mc.stats().readsServiced, 2u);
    EXPECT_EQ(mc.stats().activates, 2u);
    EXPECT_EQ(mc.stats().rowHits, 0u);
}

TEST(Controller, SmartClosedKeepsRowForQueuedHit)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    p.pagePolicy = PagePolicy::Closed;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    // Two same-row reads queued together: the smart-closed policy must
    // not precharge between them.
    mc.submitRead(0, 1, 0, 5, 0, 0);
    mc.submitRead(0, 2, 0, 5, 1, 0);
    spin(mc, 0, 1200);
    EXPECT_EQ(mc.stats().readsServiced, 2u);
    EXPECT_EQ(mc.stats().activates, 1u);
    EXPECT_EQ(mc.stats().rowHits, 1u);
}

TEST(Controller, OpenPageKeepsRowByDefault)
{
    dram::TimingParams t = timing();
    ControllerParams p; // PagePolicy::Open
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitRead(0, 1, 0, 5, 0, 0);
    Cycle now = spin(mc, 0, 800);
    mc.submitRead(0, 2, 0, 5, 1, now);
    spin(mc, now, 800);
    EXPECT_EQ(mc.stats().activates, 1u);
    EXPECT_EQ(mc.stats().rowHits, 1u);
}

// ---------------------------------------------------------------------------
// Refresh
// ---------------------------------------------------------------------------

TEST(Controller, RefreshHappensPeriodically)
{
    dram::TimingParams t = timing(/*refresh=*/true);
    ControllerParams p;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    Cycle horizon = t.tREFI * 3 + t.tRFC * 3 + 100;
    spin(mc, 0, horizon);
    EXPECT_GE(mc.stats().refreshes, 3u);
}

TEST(Controller, ReadsStillCompleteWithRefreshEnabled)
{
    dram::TimingParams t = timing(/*refresh=*/true);
    ControllerParams p;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    Cycle now = 0;
    int submitted = 0;
    for (; now < t.tREFI * 2; ++now) {
        if (now % 500 == 0 && mc.canAcceptRead()) {
            mc.submitRead(0, submitted, 0, static_cast<RowId>(now % 97), 0,
                          now);
            ++submitted;
        }
        mc.tick(now);
    }
    spin(mc, now, 2000);
    EXPECT_EQ(mc.completions().size(), static_cast<std::size_t>(submitted));
}

// ---------------------------------------------------------------------------
// Idle fast-path equivalence
// ---------------------------------------------------------------------------

namespace {

/** Drive one controller with pseudo-random traffic; fingerprint it. */
std::vector<Cycle>
trafficFingerprint(bool idleSkip, bool refresh)
{
    dram::TimingParams t = timing(refresh);
    ControllerParams p;
    p.idleSkip = idleSkip;
    p.writeDrain.highWatermark = 6;
    p.writeDrain.lowWatermark = 2;
    sched::FrFcfs sched;
    sched.configure(4, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    tcm::Pcg32 rng(12345);
    std::vector<Cycle> fingerprint;
    std::uint64_t id = 1;
    for (Cycle now = 0; now < 60'000; ++now) {
        if (rng.nextBool(0.03) && mc.canAcceptRead())
            mc.submitRead(static_cast<ThreadId>(rng.nextBelow(4)), id++,
                          static_cast<BankId>(rng.nextBelow(4)),
                          static_cast<RowId>(rng.nextBelow(16)),
                          static_cast<ColId>(rng.nextBelow(64)), now);
        if (rng.nextBool(0.02) && mc.canAcceptWrite())
            mc.submitWrite(static_cast<ThreadId>(rng.nextBelow(4)),
                           static_cast<BankId>(rng.nextBelow(4)),
                           static_cast<RowId>(rng.nextBelow(16)), 0, now);
        mc.tick(now);
        for (const auto &c : mc.completions())
            fingerprint.push_back(c.readyAt);
        mc.completions().clear();
    }
    fingerprint.push_back(mc.stats().readsServiced);
    fingerprint.push_back(mc.stats().writesServiced);
    fingerprint.push_back(mc.stats().activates);
    fingerprint.push_back(mc.stats().precharges);
    fingerprint.push_back(mc.stats().rowHits);
    return fingerprint;
}

} // namespace

TEST(Controller, IdleSkipIsCycleExact)
{
    // The idle fast-path must not change a single completion time or
    // statistic, with and without refresh in the mix.
    EXPECT_EQ(trafficFingerprint(true, false),
              trafficFingerprint(false, false));
    EXPECT_EQ(trafficFingerprint(true, true),
              trafficFingerprint(false, true));
}

// ---------------------------------------------------------------------------
// USIMM-style controller policies: latched write drain, speculative
// precharge, rank power-down.
// ---------------------------------------------------------------------------

TEST(Controller, StrictDrainLatchesUntilLowWatermark)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    p.writeQueueCap = 64;
    p.writeDrain.mode = WriteDrainMode::Strict;
    p.writeDrain.highWatermark = 8;
    p.writeDrain.lowWatermark = 2;
    sched::FrFcfs sched;
    sched.configure(2, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    for (int i = 0; i < 10; ++i)
        mc.submitWrite(1, 1, 7, i, 0);
    for (int i = 0; i < 20; ++i)
        mc.submitRead(0, i, 0, 5, i % 64, 0);
    spin(mc, 0, 40'000);
    // The latch engaged at the high watermark and drained to the low
    // one; everything still completes.
    EXPECT_GE(mc.stats().writeDrains, 1u);
    EXPECT_GE(mc.stats().writesServiced, 8u);
    EXPECT_EQ(mc.stats().readsServiced, 20u);
}

TEST(Controller, OpportunisticModeCountsNoLatch)
{
    dram::TimingParams t = timing();
    ControllerParams p; // Opportunistic (default): no drain latch
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitWrite(0, 0, 5, 0, 0);
    spin(mc, 0, 2000);
    EXPECT_EQ(mc.stats().writesServiced, 1u);
    EXPECT_EQ(mc.stats().writeDrains, 0u);
}

TEST(Controller, SpeculativePrechargeClosesUntargetedRow)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    p.speculativePrecharge = true;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    // A single read leaves its row open with nothing queued behind it:
    // the speculative engine should close it during the idle stretch.
    mc.submitRead(0, 1, 0, 5, 0, 0);
    spin(mc, 0, 2000);
    EXPECT_EQ(mc.stats().readsServiced, 1u);
    EXPECT_GE(mc.stats().speculativePrecharges, 1u);
    // The next access to a different row needs no conflict precharge:
    // it activates directly on the closed bank.
    Cycle closedBankReadAt = 2000;
    mc.submitRead(0, 2, 0, 9, 0, closedBankReadAt);
    spin(mc, 2000, 2000);
    ASSERT_EQ(mc.completions().size(), 2u);
    EXPECT_EQ(mc.completions()[1].readyAt,
              closedBankReadAt + t.cpuToMcDelay + t.tRCD + t.tCL +
                  t.tBURST + t.mcToCpuDelay);
}

TEST(Controller, SpeculativePrechargeSparesTargetedRow)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    p.speculativePrecharge = true;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    // Three bank-1 reads keep the data bus booked while a bank-0 row-hit
    // read sits queued past bank 0's tRAS window: a precharge on bank 0
    // would be *legal* during that stall, but the row is the target of
    // queued work, so the speculative engine must spare it (closing it
    // would turn the row hit into a reactivation).
    mc.submitRead(0, 1, 0, 5, 0, 0);
    mc.submitRead(0, 2, 1, 3, 0, 0);
    mc.submitRead(0, 3, 1, 3, 1, 0);
    mc.submitRead(0, 4, 1, 3, 2, 0);
    spin(mc, 0, 220);
    // Arrives (after the transport delay) just before bank 0's tRAS
    // window closes, so the bank is continuously wanted from then on.
    mc.submitRead(0, 5, 0, 5, 1, 220);
    spin(mc, 220, 2000);
    EXPECT_EQ(mc.stats().readsServiced, 5u);
    EXPECT_EQ(mc.stats().activates, 2u); // one per bank, never again
    EXPECT_EQ(mc.stats().rowHits, 3u);
    // Bank 1 went cold after its last read and was closed speculatively.
    EXPECT_GE(mc.stats().speculativePrecharges, 1u);
}

TEST(Controller, PowerDownEngagesAndWakes)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    p.powerDownIdleCycles = 500;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitRead(0, 1, 0, 5, 0, 0);
    spin(mc, 0, 5000);
    // The rank idled past the threshold: its row was closed and the
    // rank put into power-down.
    EXPECT_GE(mc.stats().powerDowns, 1u);
    EXPECT_EQ(mc.stats().powerUps, 0u);

    // New work wakes the rank and still completes.
    mc.submitRead(0, 2, 0, 5, 0, 5000);
    spin(mc, 5000, 5000);
    EXPECT_GE(mc.stats().powerUps, 1u);
    EXPECT_EQ(mc.completions().size(), 2u);
}

TEST(Controller, PowerDownDisabledByDefault)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    sched::FrFcfs sched;
    sched.configure(1, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    mc.submitRead(0, 1, 0, 5, 0, 0);
    spin(mc, 0, 50'000);
    EXPECT_EQ(mc.stats().powerDowns, 0u);
    EXPECT_EQ(mc.stats().speculativePrecharges, 0u);
    EXPECT_EQ(mc.stats().writeDrains, 0u);
}

namespace {

/** Like trafficFingerprint, with every new policy engaged. */
std::vector<Cycle>
policyFingerprint(bool idleSkip)
{
    dram::TimingParams t = timing(/*refresh=*/true);
    ControllerParams p;
    p.idleSkip = idleSkip;
    p.writeDrain.mode = WriteDrainMode::Strict;
    p.writeDrain.highWatermark = 4;
    p.writeDrain.lowWatermark = 1;
    p.speculativePrecharge = true;
    p.powerDownIdleCycles = 700;
    sched::FrFcfs sched;
    sched.configure(4, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    tcm::Pcg32 rng(999);
    std::vector<Cycle> fingerprint;
    std::uint64_t id = 1;
    for (Cycle now = 0; now < 60'000; ++now) {
        // Short bursts with long dead stretches: the queues fully drain
        // between bursts, so speculative precharge and power-down
        // actually engage, and each burst wakes the rank again.
        bool active = now % 6000 < 600;
        if (active && rng.nextBool(0.08) && mc.canAcceptRead())
            mc.submitRead(static_cast<ThreadId>(rng.nextBelow(4)), id++,
                          static_cast<BankId>(rng.nextBelow(4)),
                          static_cast<RowId>(rng.nextBelow(4)),
                          static_cast<ColId>(rng.nextBelow(64)), now);
        if (active && rng.nextBool(0.02) && mc.canAcceptWrite())
            mc.submitWrite(static_cast<ThreadId>(rng.nextBelow(4)),
                           static_cast<BankId>(rng.nextBelow(4)),
                           static_cast<RowId>(rng.nextBelow(4)), 0, now);
        mc.tick(now);
        for (const auto &c : mc.completions())
            fingerprint.push_back(c.readyAt);
        mc.completions().clear();
    }
    fingerprint.push_back(mc.stats().readsServiced);
    fingerprint.push_back(mc.stats().writesServiced);
    fingerprint.push_back(mc.stats().activates);
    fingerprint.push_back(mc.stats().precharges);
    fingerprint.push_back(mc.stats().rowHits);
    fingerprint.push_back(mc.stats().writeDrains);
    fingerprint.push_back(mc.stats().speculativePrecharges);
    fingerprint.push_back(mc.stats().powerDowns);
    fingerprint.push_back(mc.stats().powerUps);
    return fingerprint;
}

} // namespace

TEST(Controller, IdleSkipIsCycleExactWithPoliciesEngaged)
{
    // The idle fast-path must stay bit-exact when the drain latch,
    // speculative precharge and power-down are all active: every new
    // event source has to be folded into the controller's horizon.
    std::vector<Cycle> skipped = policyFingerprint(true);
    std::vector<Cycle> stepped = policyFingerprint(false);
    EXPECT_EQ(skipped, stepped);
    // Sanity: the scenario actually exercised the machinery.
    ASSERT_GE(skipped.size(), 4u);
    EXPECT_GE(skipped[skipped.size() - 1], 1u); // powerUps
    EXPECT_GE(skipped[skipped.size() - 2], 1u); // powerDowns
    EXPECT_GE(skipped[skipped.size() - 3], 1u); // spec precharges
    EXPECT_GE(skipped[skipped.size() - 4], 1u); // drain latches
}

// ---------------------------------------------------------------------------
// Aging tier (ATLAS-style escalation)
// ---------------------------------------------------------------------------

namespace {

/** Scheduler that ranks thread 1 above thread 0 with a finite aging cap. */
class AgingRank : public sched::SchedulerPolicy
{
  public:
    const char *name() const override { return "aging-test"; }

    int
    rankOf(ChannelId, ThreadId t) const override
    {
        return t == 1 ? 1 : 0;
    }

    Cycle agingThreshold() const override { return 3000; }
};

} // namespace

TEST(Controller, OverAgeRequestBeatsHigherRank)
{
    dram::TimingParams t = timing();
    ControllerParams p;
    AgingRank sched;
    sched.configure(2, 1, t.banksPerChannel);
    MemoryController mc(0, t, p, sched);

    // Thread 0's request arrives first and ages past the threshold while
    // thread 1 (higher ranked) keeps the bank saturated with row hits.
    mc.submitRead(0, 999, 0, 9, 0, 0);
    Cycle now = 0;
    std::uint64_t id = 0;
    bool victim_done = false;
    Cycle victim_done_at = 0;
    for (; now < 20'000; ++now) {
        if (mc.canAcceptRead() && mc.readLoad() < 30) {
            ColId col = static_cast<ColId>(id % 64);
            mc.submitRead(1, id++, 0, 5, col, now);
        }
        mc.tick(now);
        for (const auto &c : mc.completions()) {
            if (c.missId == 999 && c.thread == 0) {
                victim_done = true;
                victim_done_at = now;
            }
        }
        mc.completions().clear();
        if (victim_done)
            break;
    }
    ASSERT_TRUE(victim_done);
    // Without aging the victim would starve ~forever; with a 3000-cycle
    // threshold it must finish shortly after aging out.
    EXPECT_LT(victim_done_at, 8000u);
}
