/**
 * @file
 * Example: full post-run reporting — per-thread IPC/behaviour/latency
 * percentiles and per-channel utilization/power, printed and exported
 * to CSV for external plotting.
 *
 * The per-thread p99 latency column makes the fairness story concrete:
 * compare how far the tail latency of the most intensive thread spreads
 * under ATLAS vs TCM.
 */

#include <cstdio>

#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

int
main()
{
    using namespace tcm;

    sim::SystemConfig config;
    auto mix = workload::tableFiveWorkload('A');
    std::vector<std::string> names;
    for (const auto &p : mix)
        names.push_back(p.name);

    for (auto spec : {sched::SchedulerSpec::atlasSpec(),
                      sched::SchedulerSpec::tcmSpec()}) {
        spec.scaleToRun(300'000);
        sim::Simulator sim(config, mix, spec, /*seed=*/7,
                           /*enableProbe=*/true);
        sim.run(50'000, 300'000);

        sim::SystemReport report = sim::SystemReport::collect(sim, names);
        report.print(stdout);

        std::string prefix =
            std::string("/tmp/tcmsim_report_") + spec.name();
        report.writeCsv(prefix);
        std::printf("csv written to %s_threads.csv / %s_channels.csv\n\n",
                    prefix.c_str(), prefix.c_str());
    }
    std::printf("note how the heaviest threads' p99 latency explodes "
                "under ATLAS's strict\nranking but stays bounded under "
                "TCM's shuffling.\n");
    return 0;
}
