/**
 * @file
 * Quickstart: simulate one 24-thread workload under FR-FCFS and TCM and
 * print the paper's metrics side by side.
 *
 * Build: cmake -B build -G Ninja && cmake --build build
 * Run:   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

int
main()
{
    using namespace tcm;

    // The baseline system of the paper's Table 3: 24 cores, 4 memory
    // channels, DDR2-800.
    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();

    // Workload A from Table 5: 12 memory-intensive + 12 light threads.
    std::vector<workload::ThreadProfile> mix =
        workload::tableFiveWorkload('A');

    // Alone-run IPCs are the denominators of every metric; one cache per
    // system configuration amortizes them across experiments.
    sim::AloneIpcCache alone(config, scale.warmup, scale.measure);

    std::printf("Workload A (Table 5) on the 24-core baseline\n");
    std::printf("%-10s %18s %15s %17s\n", "scheduler", "weighted speedup",
                "max slowdown", "harmonic speedup");

    for (sched::SchedulerSpec spec : {sched::SchedulerSpec::frfcfs(),
                                      sched::SchedulerSpec::tcmSpec()}) {
        sim::RunResult r = sim::runWorkload(config, mix, spec, scale, alone,
                                            /*seed=*/7);
        std::printf("%-10s %18.2f %15.2f %17.3f\n", spec.name(),
                    r.metrics.weightedSpeedup, r.metrics.maxSlowdown,
                    r.metrics.harmonicSpeedup);
    }
    return 0;
}
