/**
 * @file
 * Example: using TCM's ClusterThresh as a fairness/performance knob.
 *
 * The paper's Section 7.1 shows that varying ClusterThresh from 2/N to
 * 6/N traces a smooth trade-off curve between weighted speedup and
 * maximum slowdown — something no prior scheduler could do. This example
 * sweeps the knob on one workload and prints the curve, the way a system
 * operator choosing an operating point would.
 */

#include <cstdio>

#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

int
main()
{
    using namespace tcm;

    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    sim::AloneIpcCache alone(config, scale.warmup, scale.measure);

    // A fully memory-intensive workload, where the knob bites hardest.
    std::vector<workload::ThreadProfile> mix =
        workload::randomMix(config.numCores, 1.0, /*seed=*/42);

    std::printf("TCM ClusterThresh sweep on a 100%%-intensive 24-thread "
                "workload\n");
    std::printf("%-18s %18s %15s\n", "ClusterThresh", "weighted speedup",
                "max slowdown");

    for (int numerator = 2; numerator <= 6; ++numerator) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.tcm.clusterThreshNumerator = numerator;
        sim::RunResult r =
            sim::runWorkload(config, mix, spec, scale, alone, 5);
        std::printf("        %d/24      %18.2f %15.2f\n", numerator,
                    r.metrics.weightedSpeedup, r.metrics.maxSlowdown);
    }

    std::printf("\nLarger thresholds admit more threads into the "
                "latency-sensitive cluster:\nthroughput rises, but the "
                "remaining bandwidth-sensitive threads share less\n"
                "bandwidth and the worst-case slowdown grows.\n");
    return 0;
}
