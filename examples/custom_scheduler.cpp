/**
 * @file
 * Example: writing a custom memory scheduler against the public
 * SchedulerPolicy interface and racing it against TCM.
 *
 * The custom policy here is a tiny "bank-fair round-robin": every 10K
 * cycles it rotates a fixed thread priority order. It demonstrates the
 * three integration points a scheduler implementor uses:
 *
 *   1. configure()  - learn the system shape,
 *   2. tick()       - advance internal state once per cycle,
 *   3. rankOf()     - publish thread ranks the controller's fixed
 *                     prioritization engine (Algorithm 3) consumes.
 *
 * Everything else — DRAM timing, row hits, write drains, starvation
 * tiers — is handled by the controller.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "metrics/metrics.hpp"
#include "sim/alone_cache.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

/** Rotate thread priorities every interval: simple, starvation-free. */
class RotatingPriority : public mem::SchedulerPolicy
{
  public:
    explicit RotatingPriority(Cycle interval) : interval_(interval) {}

    const char *name() const override { return "RotatingPriority"; }

    void
    configure(int numThreads, int numChannels, int banksPerChannel) override
    {
        mem::SchedulerPolicy::configure(numThreads, numChannels,
                                        banksPerChannel);
        ranks_.resize(numThreads);
        std::iota(ranks_.begin(), ranks_.end(), 0);
    }

    void
    tick(Cycle now) override
    {
        if (now >= nextRotateAt_) {
            std::rotate(ranks_.begin(), ranks_.begin() + 1, ranks_.end());
            nextRotateAt_ = now + interval_;
        }
    }

    int rankOf(ChannelId, ThreadId t) const override { return ranks_[t]; }

  private:
    Cycle interval_;
    Cycle nextRotateAt_ = 0;
    std::vector<int> ranks_;
};

} // namespace

int
main()
{
    sim::SystemConfig config;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    sim::AloneIpcCache alone(config, scale.warmup, scale.measure);

    auto mix = workload::randomMix(config.numCores, 0.75, 9);

    // The custom policy is driven directly through the Simulator, which
    // accepts any SchedulerPolicy via the FixedRank escape hatch — here
    // we build the simulation by hand to show the full wiring.
    std::printf("%-18s %18s %15s\n", "scheduler", "weighted speedup",
                "max slowdown");

    // Reference points through the standard experiment driver.
    for (auto spec : {sched::SchedulerSpec::frfcfs(),
                      sched::SchedulerSpec::tcmSpec()}) {
        sim::RunResult r =
            sim::runWorkload(config, mix, spec, scale, alone, 3);
        std::printf("%-18s %18.2f %15.2f\n", spec.name(),
                    r.metrics.weightedSpeedup, r.metrics.maxSlowdown);
    }

    // Hand-wired simulation with the custom policy.
    RotatingPriority custom(10'000);
    custom.configure(config.numCores, config.numChannels,
                     config.timing.banksPerChannel);

    std::vector<mem::CoreCounters> counters(config.numCores);
    custom.setCoreCounters(&counters);

    std::vector<std::unique_ptr<mem::MemoryController>> controllers;
    std::vector<mem::MemoryController *> mcs;
    for (ChannelId ch = 0; ch < config.numChannels; ++ch) {
        controllers.push_back(std::make_unique<mem::MemoryController>(
            ch, config.timing, config.controller, custom));
        custom.attachQueue(ch, controllers.back().get());
        mcs.push_back(controllers.back().get());
    }

    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
    std::vector<std::unique_ptr<core::Core>> cores;
    for (ThreadId t = 0; t < config.numCores; ++t) {
        traces.push_back(std::make_unique<workload::SyntheticTrace>(
            mix[t], config.geometry(), 1000 + t));
        cores.push_back(std::make_unique<core::Core>(
            t, config.core, *traces.back(), mcs, &counters[t]));
    }

    std::vector<std::uint64_t> base(config.numCores, 0);
    for (Cycle now = 0; now < scale.warmup + scale.measure; ++now) {
        if (now == scale.warmup)
            for (ThreadId t = 0; t < config.numCores; ++t)
                base[t] = counters[t].instructions;
        custom.tick(now);
        for (auto &mc : controllers) {
            mc->tick(now);
            for (const auto &c : mc->completions())
                cores[c.thread]->completeMiss(c.missId, c.readyAt);
            mc->completions().clear();
        }
        for (auto &core : cores)
            core->tick(now);
    }

    std::vector<double> ipcShared, ipcAlone;
    for (ThreadId t = 0; t < config.numCores; ++t) {
        ipcShared.push_back(
            static_cast<double>(counters[t].instructions - base[t]) /
            static_cast<double>(scale.measure));
        ipcAlone.push_back(alone.aloneIpc(mix[t]));
    }
    metrics::WorkloadMetrics m = metrics::computeMetrics(ipcAlone, ipcShared);
    std::printf("%-18s %18.2f %15.2f\n", custom.name(), m.weightedSpeedup,
                m.maxSlowdown);

    std::printf("\nRotatingPriority is starvation-free but thread-"
                "oblivious: decent fairness,\nno latency-cluster boost — "
                "compare its WS against TCM's.\n");
    return 0;
}
