/**
 * @file
 * Example: a memory performance attack (Moscibroda & Mutlu, USENIX
 * Security 2007 — the paper's citation [11] and the original motivation
 * for thread-aware memory scheduling).
 *
 * An "attacker" thread is engineered to exploit FR-FCFS: extreme
 * row-buffer locality plus relentless intensity lets it ride the
 * row-hit-first tier and deny service to co-scheduled victims. We run
 * victims alone, then with the attacker, under each scheduler, and
 * report how much of the victims' performance the attack destroys.
 */

#include <cstdio>

#include "sim/alone_cache.hpp"
#include "sim/experiment.hpp"
#include "workload/benchmark_table.hpp"

int
main()
{
    using namespace tcm;

    sim::SystemConfig config;
    config.numCores = 8;
    config.numChannels = 1; // one controller: the contested resource
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    sim::AloneIpcCache alone(config, scale.warmup, scale.measure);

    // The attacker: a pure streaming hog. MPKI far beyond any benign
    // thread, perfect row locality, one bank at a time.
    workload::ThreadProfile attacker;
    attacker.name = "attacker";
    attacker.mpki = 150.0;
    attacker.rbl = 0.995;
    attacker.blp = 1.0;
    attacker.writeFraction = 0.0;

    // Victims: a mix of ordinary threads (4 attackers + 4 victims).
    std::vector<workload::ThreadProfile> mix;
    for (int i = 0; i < 4; ++i)
        mix.push_back(attacker);
    mix.push_back(workload::benchmarkProfile("gcc"));
    mix.push_back(workload::benchmarkProfile("h264ref"));
    mix.push_back(workload::benchmarkProfile("sphinx3"));
    mix.push_back(workload::benchmarkProfile("omnetpp"));

    std::printf("4 streaming attackers vs 4 victims on one memory "
                "channel\n");
    std::printf("victim slowdowns (IPC_alone / IPC_shared):\n");
    std::printf("%-10s %9s %9s %9s %9s | %s\n", "scheduler", "gcc",
                "h264ref", "sphinx3", "omnetpp", "worst victim");

    for (auto spec : {sched::SchedulerSpec::frfcfs(),
                      sched::SchedulerSpec::stfmSpec(),
                      sched::SchedulerSpec::parbsSpec(),
                      sched::SchedulerSpec::atlasSpec(),
                      sched::SchedulerSpec::tcmSpec()}) {
        sim::RunResult r =
            sim::runWorkload(config, mix, spec, scale, alone, 13);
        double worst = 0.0;
        for (int v = 4; v < 8; ++v)
            worst = std::max(worst, r.metrics.slowdowns[v]);
        std::printf("%-10s %9.2f %9.2f %9.2f %9.2f | %9.2f\n",
                    spec.name(), r.metrics.slowdowns[4],
                    r.metrics.slowdowns[5], r.metrics.slowdowns[6],
                    r.metrics.slowdowns[7], worst);
    }

    std::printf("\nThread-unaware FR-FCFS rewards the attack (row hits "
                "always win); thread-aware\nschedulers contain it — "
                "TCM additionally keeps the light victims near full\n"
                "speed by pulling them into the latency-sensitive "
                "cluster.\n");
    return 0;
}
