/**
 * @file
 * Example: a barrier-synchronized multithreaded application competing
 * with a memory-intensive background mix (paper Section 3.7).
 *
 * An 8-thread app executes phases separated by barriers; one of its
 * threads is much more memory-intensive than the others (the critical
 * thread). Progress = barrier phases completed. We run it three ways:
 *
 *   1. FR-FCFS,
 *   2. TCM,
 *   3. TCM + criticality: the paper's proposed extension, realized by
 *      giving the critical thread an OS weight.
 */

#include <cstdio>
#include <memory>

#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/multithreaded.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

std::uint64_t
runApp(const sim::SystemConfig &config, const sched::SchedulerSpec &spec,
       int criticalWeight, Cycle cycles)
{
    constexpr int kAppThreads = 8;
    constexpr std::uint64_t kPhase = 3000; // instructions per phase

    workload::BarrierGroup group(kAppThreads, kPhase);
    workload::Geometry geometry = config.geometry();

    std::vector<std::unique_ptr<core::TraceSource>> traces;
    std::vector<int> weights;

    // App threads 0..7: thread 0 is the critical (heavy) one.
    for (int m = 0; m < kAppThreads; ++m) {
        workload::ThreadProfile p =
            m == 0 ? workload::benchmarkProfile("GemsFDTD")
                   : workload::benchmarkProfile("gobmk");
        traces.push_back(std::make_unique<workload::BarrierCoupledTrace>(
            p, geometry, 100 + m, &group, m));
        weights.push_back(m == 0 ? criticalWeight : 1);
    }
    // Background: 8 heavy independent threads.
    for (int b = 0; b < 8; ++b) {
        traces.push_back(std::make_unique<workload::SyntheticTrace>(
            workload::benchmarkProfile("lbm"), geometry, 500 + b));
        weights.push_back(1);
    }

    sched::SchedulerSpec scaled = spec;
    scaled.scaleToRun(cycles);
    sim::Simulator sim(config, std::move(traces), scaled, 17, false,
                       weights);
    sim.run(0, cycles);
    return group.phasesCompleted();
}

} // namespace

int
main()
{
    sim::SystemConfig config;
    config.numCores = 16;
    const Cycle cycles = 400'000;

    std::printf("barrier phases completed in %llu cycles "
                "(8-thread app vs 8 heavy background threads):\n\n",
                static_cast<unsigned long long>(cycles));

    std::uint64_t fr = runApp(config, sched::SchedulerSpec::frfcfs(), 1,
                              cycles);
    std::printf("  FR-FCFS:                    %llu phases\n",
                static_cast<unsigned long long>(fr));

    std::uint64_t tcm = runApp(config, sched::SchedulerSpec::tcmSpec(), 1,
                               cycles);
    std::printf("  TCM:                        %llu phases\n",
                static_cast<unsigned long long>(tcm));

    std::uint64_t crit16 = runApp(config, sched::SchedulerSpec::tcmSpec(),
                                  16, cycles);
    std::printf("  TCM + criticality weight 16: %llu phases\n",
                static_cast<unsigned long long>(crit16));

    std::printf(
        "\nThe app's phase rate is gated by its slowest (critical) "
        "thread. This example\nshows exactly the caveat the paper's "
        "Section 3.7 raises: TCM's fair sharing\namong "
        "bandwidth-sensitive threads throttles the critical thread "
        "relative to\nthread-unaware FR-FCFS, and boosting the critical "
        "thread's weight (the\nproposed criticality extension) claws part "
        "of it back. Fully closing the gap\nneeds criticality "
        "*detection*, which the paper leaves to future work.\n");
    return 0;
}
