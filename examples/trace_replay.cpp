/**
 * @file
 * Example: capturing a trace to disk and replaying it.
 *
 * A user who has converted real program traces to the tcmsim format
 * drives the simulator exactly like this: build FileTrace sources, hand
 * them to the Simulator, and read the same metrics. Here we capture the
 * synthetic mcf and libquantum clones first so the example is
 * self-contained.
 */

#include <cstdio>
#include <memory>

#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/trace_file.hpp"

int
main()
{
    using namespace tcm;

    sim::SystemConfig config;
    config.numCores = 2;
    workload::Geometry geometry = config.geometry();

    // 1. Capture traces (normally done once, offline, via tools/tracegen).
    const char *mcfPath = "/tmp/tcmsim_mcf.trace";
    const char *libqPath = "/tmp/tcmsim_libq.trace";
    workload::captureSyntheticTrace(workload::benchmarkProfile("mcf"),
                                    geometry, 1, 200'000, mcfPath);
    workload::captureSyntheticTrace(
        workload::benchmarkProfile("libquantum"), geometry, 2, 200'000,
        libqPath);

    // 2. Replay them through the simulator under TCM.
    std::vector<std::unique_ptr<core::TraceSource>> traces;
    traces.push_back(std::make_unique<workload::FileTrace>(mcfPath,
                                                           geometry));
    traces.push_back(std::make_unique<workload::FileTrace>(libqPath,
                                                           geometry));
    std::printf("loaded %zu + %zu trace records\n",
                static_cast<const workload::FileTrace *>(traces[0].get())
                    ->size(),
                static_cast<const workload::FileTrace *>(traces[1].get())
                    ->size());

    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(300'000);
    sim::Simulator sim(config, std::move(traces), spec, /*seed=*/3,
                       /*enableProbe=*/true);
    sim.run(50'000, 300'000);

    std::printf("%-12s %8s %8s %8s %8s\n", "trace", "IPC", "MPKI", "RBL",
                "BLP");
    const char *names[] = {"mcf", "libquantum"};
    for (ThreadId t = 0; t < 2; ++t) {
        auto b = sim.behavior(t);
        std::printf("%-12s %8.3f %8.2f %8.3f %8.2f\n", names[t], b.ipc,
                    b.mpki, b.rbl, b.blp);
    }
    std::printf("\ntraces replay deterministically: run this example "
                "twice and diff the output.\n");
    return 0;
}
