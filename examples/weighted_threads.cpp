/**
 * @file
 * Example: OS-assigned thread weights (paper Section 3.6).
 *
 * An operator wants one background analytics thread (memory-heavy) to
 * get twice its fair share without wrecking the interactive threads.
 * This example runs the same mix with and without the weight under TCM
 * and shows that (a) the weighted thread speeds up and (b) the
 * latency-sensitive threads are unharmed, because TCM honors weights
 * only within clusters.
 */

#include <cstdio>

#include "sim/experiment.hpp"
#include "workload/benchmark_table.hpp"

int
main()
{
    using namespace tcm;

    sim::SystemConfig config;
    config.numCores = 8;
    sim::ExperimentScale scale = sim::ExperimentScale::fromEnv();
    sim::AloneIpcCache alone(config, scale.warmup, scale.measure);

    // Mix: 2 interactive (light) threads + 6 heavy threads; thread 2 is
    // the analytics job that will receive weight 4.
    std::vector<workload::ThreadProfile> mix = {
        workload::benchmarkProfile("gcc"),
        workload::benchmarkProfile("h264ref"),
        workload::benchmarkProfile("lbm"),
        workload::benchmarkProfile("lbm"),
        workload::benchmarkProfile("soplex"),
        workload::benchmarkProfile("leslie3d"),
        workload::benchmarkProfile("sphinx3"),
        workload::benchmarkProfile("omnetpp"),
    };

    sim::RunResult base = sim::runWorkload(
        config, mix, sched::SchedulerSpec::tcmSpec(), scale, alone, 17);

    mix[2].weight = 4; // boost the first lbm instance
    sim::RunResult boosted = sim::runWorkload(
        config, mix, sched::SchedulerSpec::tcmSpec(), scale, alone, 17);

    std::printf("per-thread speedup under TCM, weight-4 on thread 2 "
                "(lbm):\n");
    std::printf("%-12s %8s %12s %12s\n", "thread", "weight", "baseline",
                "boosted");
    for (std::size_t t = 0; t < mix.size(); ++t)
        std::printf("%-12s %8d %12.3f %12.3f\n", mix[t].name.c_str(),
                    t == 2 ? 4 : 1, base.metrics.speedups[t],
                    boosted.metrics.speedups[t]);

    std::printf("\nweighted thread gain: %+.1f%%;  light threads (gcc, "
                "h264ref) change: %+.1f%%, %+.1f%%\n",
                100.0 * (boosted.metrics.speedups[2] /
                             base.metrics.speedups[2] -
                         1.0),
                100.0 * (boosted.metrics.speedups[0] /
                             base.metrics.speedups[0] -
                         1.0),
                100.0 * (boosted.metrics.speedups[1] /
                             base.metrics.speedups[1] -
                         1.0));
    return 0;
}
