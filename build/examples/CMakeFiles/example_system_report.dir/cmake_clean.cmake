file(REMOVE_RECURSE
  "CMakeFiles/example_system_report.dir/system_report.cpp.o"
  "CMakeFiles/example_system_report.dir/system_report.cpp.o.d"
  "example_system_report"
  "example_system_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_system_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
