# Empty compiler generated dependencies file for example_system_report.
# This may be replaced when dependencies are built.
