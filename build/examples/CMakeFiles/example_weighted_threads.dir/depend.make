# Empty dependencies file for example_weighted_threads.
# This may be replaced when dependencies are built.
