file(REMOVE_RECURSE
  "CMakeFiles/example_weighted_threads.dir/weighted_threads.cpp.o"
  "CMakeFiles/example_weighted_threads.dir/weighted_threads.cpp.o.d"
  "example_weighted_threads"
  "example_weighted_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_weighted_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
