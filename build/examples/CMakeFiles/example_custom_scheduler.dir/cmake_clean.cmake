file(REMOVE_RECURSE
  "CMakeFiles/example_custom_scheduler.dir/custom_scheduler.cpp.o"
  "CMakeFiles/example_custom_scheduler.dir/custom_scheduler.cpp.o.d"
  "example_custom_scheduler"
  "example_custom_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
