# Empty dependencies file for example_custom_scheduler.
# This may be replaced when dependencies are built.
