# Empty compiler generated dependencies file for example_fairness_knob.
# This may be replaced when dependencies are built.
