file(REMOVE_RECURSE
  "CMakeFiles/example_fairness_knob.dir/fairness_knob.cpp.o"
  "CMakeFiles/example_fairness_knob.dir/fairness_knob.cpp.o.d"
  "example_fairness_knob"
  "example_fairness_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fairness_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
