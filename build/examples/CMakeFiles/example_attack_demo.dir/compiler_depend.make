# Empty compiler generated dependencies file for example_attack_demo.
# This may be replaced when dependencies are built.
