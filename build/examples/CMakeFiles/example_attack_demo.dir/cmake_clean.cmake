file(REMOVE_RECURSE
  "CMakeFiles/example_attack_demo.dir/attack_demo.cpp.o"
  "CMakeFiles/example_attack_demo.dir/attack_demo.cpp.o.d"
  "example_attack_demo"
  "example_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
