# Empty compiler generated dependencies file for example_multithreaded_app.
# This may be replaced when dependencies are built.
