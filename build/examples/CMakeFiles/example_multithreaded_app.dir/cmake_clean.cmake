file(REMOVE_RECURSE
  "CMakeFiles/example_multithreaded_app.dir/multithreaded_app.cpp.o"
  "CMakeFiles/example_multithreaded_app.dir/multithreaded_app.cpp.o.d"
  "example_multithreaded_app"
  "example_multithreaded_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multithreaded_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
