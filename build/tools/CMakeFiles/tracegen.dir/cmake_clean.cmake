file(REMOVE_RECURSE
  "CMakeFiles/tracegen.dir/tracegen.cpp.o"
  "CMakeFiles/tracegen.dir/tracegen.cpp.o.d"
  "tracegen"
  "tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
