# Empty compiler generated dependencies file for tracegen.
# This may be replaced when dependencies are built.
