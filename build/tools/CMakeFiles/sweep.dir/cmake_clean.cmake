file(REMOVE_RECURSE
  "CMakeFiles/sweep.dir/sweep.cpp.o"
  "CMakeFiles/sweep.dir/sweep.cpp.o.d"
  "sweep"
  "sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
