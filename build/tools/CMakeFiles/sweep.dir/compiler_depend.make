# Empty compiler generated dependencies file for sweep.
# This may be replaced when dependencies are built.
