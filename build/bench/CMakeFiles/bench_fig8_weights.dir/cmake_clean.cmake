file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_weights.dir/bench_fig8_weights.cpp.o"
  "CMakeFiles/bench_fig8_weights.dir/bench_fig8_weights.cpp.o.d"
  "CMakeFiles/bench_fig8_weights.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig8_weights.dir/bench_util.cpp.o.d"
  "bench_fig8_weights"
  "bench_fig8_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
