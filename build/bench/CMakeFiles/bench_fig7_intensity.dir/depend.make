# Empty dependencies file for bench_fig7_intensity.
# This may be replaced when dependencies are built.
