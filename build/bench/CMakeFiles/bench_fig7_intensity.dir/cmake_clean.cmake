file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_intensity.dir/bench_fig7_intensity.cpp.o"
  "CMakeFiles/bench_fig7_intensity.dir/bench_fig7_intensity.cpp.o.d"
  "CMakeFiles/bench_fig7_intensity.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig7_intensity.dir/bench_util.cpp.o.d"
  "bench_fig7_intensity"
  "bench_fig7_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
