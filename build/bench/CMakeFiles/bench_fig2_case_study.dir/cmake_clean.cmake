file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_case_study.dir/bench_fig2_case_study.cpp.o"
  "CMakeFiles/bench_fig2_case_study.dir/bench_fig2_case_study.cpp.o.d"
  "CMakeFiles/bench_fig2_case_study.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig2_case_study.dir/bench_util.cpp.o.d"
  "bench_fig2_case_study"
  "bench_fig2_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
