# Empty compiler generated dependencies file for bench_fig2_case_study.
# This may be replaced when dependencies are built.
