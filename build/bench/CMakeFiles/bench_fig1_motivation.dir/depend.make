# Empty dependencies file for bench_fig1_motivation.
# This may be replaced when dependencies are built.
