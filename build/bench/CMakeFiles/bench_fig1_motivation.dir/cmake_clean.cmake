file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_motivation.dir/bench_fig1_motivation.cpp.o"
  "CMakeFiles/bench_fig1_motivation.dir/bench_fig1_motivation.cpp.o.d"
  "CMakeFiles/bench_fig1_motivation.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig1_motivation.dir/bench_util.cpp.o.d"
  "bench_fig1_motivation"
  "bench_fig1_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
