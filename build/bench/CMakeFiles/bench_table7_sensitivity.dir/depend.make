# Empty dependencies file for bench_table7_sensitivity.
# This may be replaced when dependencies are built.
