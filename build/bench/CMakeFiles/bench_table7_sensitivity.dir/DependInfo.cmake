
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table7_sensitivity.cpp" "bench/CMakeFiles/bench_table7_sensitivity.dir/bench_table7_sensitivity.cpp.o" "gcc" "bench/CMakeFiles/bench_table7_sensitivity.dir/bench_table7_sensitivity.cpp.o.d"
  "/root/repo/bench/bench_util.cpp" "bench/CMakeFiles/bench_table7_sensitivity.dir/bench_util.cpp.o" "gcc" "bench/CMakeFiles/bench_table7_sensitivity.dir/bench_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
