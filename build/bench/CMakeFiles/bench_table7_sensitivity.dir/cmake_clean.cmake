file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_sensitivity.dir/bench_table7_sensitivity.cpp.o"
  "CMakeFiles/bench_table7_sensitivity.dir/bench_table7_sensitivity.cpp.o.d"
  "CMakeFiles/bench_table7_sensitivity.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table7_sensitivity.dir/bench_util.cpp.o.d"
  "bench_table7_sensitivity"
  "bench_table7_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
