file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_tradeoff.dir/bench_fig6_tradeoff.cpp.o"
  "CMakeFiles/bench_fig6_tradeoff.dir/bench_fig6_tradeoff.cpp.o.d"
  "CMakeFiles/bench_fig6_tradeoff.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig6_tradeoff.dir/bench_util.cpp.o.d"
  "bench_fig6_tradeoff"
  "bench_fig6_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
