# Empty dependencies file for bench_table8_systemconfig.
# This may be replaced when dependencies are built.
