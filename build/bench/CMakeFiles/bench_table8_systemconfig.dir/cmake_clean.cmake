file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_systemconfig.dir/bench_table8_systemconfig.cpp.o"
  "CMakeFiles/bench_table8_systemconfig.dir/bench_table8_systemconfig.cpp.o.d"
  "CMakeFiles/bench_table8_systemconfig.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table8_systemconfig.dir/bench_util.cpp.o.d"
  "bench_table8_systemconfig"
  "bench_table8_systemconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_systemconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
