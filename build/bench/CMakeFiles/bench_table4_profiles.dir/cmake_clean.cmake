file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_profiles.dir/bench_table4_profiles.cpp.o"
  "CMakeFiles/bench_table4_profiles.dir/bench_table4_profiles.cpp.o.d"
  "CMakeFiles/bench_table4_profiles.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table4_profiles.dir/bench_util.cpp.o.d"
  "bench_table4_profiles"
  "bench_table4_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
