file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_main.dir/bench_fig4_main.cpp.o"
  "CMakeFiles/bench_fig4_main.dir/bench_fig4_main.cpp.o.d"
  "CMakeFiles/bench_fig4_main.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig4_main.dir/bench_util.cpp.o.d"
  "bench_fig4_main"
  "bench_fig4_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
