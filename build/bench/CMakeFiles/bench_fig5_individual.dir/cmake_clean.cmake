file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_individual.dir/bench_fig5_individual.cpp.o"
  "CMakeFiles/bench_fig5_individual.dir/bench_fig5_individual.cpp.o.d"
  "CMakeFiles/bench_fig5_individual.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig5_individual.dir/bench_util.cpp.o.d"
  "bench_fig5_individual"
  "bench_fig5_individual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_individual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
