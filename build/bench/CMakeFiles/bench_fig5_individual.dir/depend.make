# Empty dependencies file for bench_fig5_individual.
# This may be replaced when dependencies are built.
