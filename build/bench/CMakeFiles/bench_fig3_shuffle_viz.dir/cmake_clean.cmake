file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_shuffle_viz.dir/bench_fig3_shuffle_viz.cpp.o"
  "CMakeFiles/bench_fig3_shuffle_viz.dir/bench_fig3_shuffle_viz.cpp.o.d"
  "CMakeFiles/bench_fig3_shuffle_viz.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig3_shuffle_viz.dir/bench_util.cpp.o.d"
  "bench_fig3_shuffle_viz"
  "bench_fig3_shuffle_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_shuffle_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
