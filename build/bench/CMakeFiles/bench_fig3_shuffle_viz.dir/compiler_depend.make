# Empty compiler generated dependencies file for bench_fig3_shuffle_viz.
# This may be replaced when dependencies are built.
