file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hwcost.dir/bench_table2_hwcost.cpp.o"
  "CMakeFiles/bench_table2_hwcost.dir/bench_table2_hwcost.cpp.o.d"
  "CMakeFiles/bench_table2_hwcost.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table2_hwcost.dir/bench_util.cpp.o.d"
  "bench_table2_hwcost"
  "bench_table2_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
