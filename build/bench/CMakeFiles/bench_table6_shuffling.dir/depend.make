# Empty dependencies file for bench_table6_shuffling.
# This may be replaced when dependencies are built.
