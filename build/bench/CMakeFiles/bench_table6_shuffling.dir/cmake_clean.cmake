file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_shuffling.dir/bench_table6_shuffling.cpp.o"
  "CMakeFiles/bench_table6_shuffling.dir/bench_table6_shuffling.cpp.o.d"
  "CMakeFiles/bench_table6_shuffling.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table6_shuffling.dir/bench_util.cpp.o.d"
  "bench_table6_shuffling"
  "bench_table6_shuffling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_shuffling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
