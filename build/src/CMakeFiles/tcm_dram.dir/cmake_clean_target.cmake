file(REMOVE_RECURSE
  "libtcm_dram.a"
)
