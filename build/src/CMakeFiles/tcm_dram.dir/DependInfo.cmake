
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/address.cpp" "src/CMakeFiles/tcm_dram.dir/dram/address.cpp.o" "gcc" "src/CMakeFiles/tcm_dram.dir/dram/address.cpp.o.d"
  "/root/repo/src/dram/bank.cpp" "src/CMakeFiles/tcm_dram.dir/dram/bank.cpp.o" "gcc" "src/CMakeFiles/tcm_dram.dir/dram/bank.cpp.o.d"
  "/root/repo/src/dram/channel.cpp" "src/CMakeFiles/tcm_dram.dir/dram/channel.cpp.o" "gcc" "src/CMakeFiles/tcm_dram.dir/dram/channel.cpp.o.d"
  "/root/repo/src/dram/energy.cpp" "src/CMakeFiles/tcm_dram.dir/dram/energy.cpp.o" "gcc" "src/CMakeFiles/tcm_dram.dir/dram/energy.cpp.o.d"
  "/root/repo/src/dram/rank.cpp" "src/CMakeFiles/tcm_dram.dir/dram/rank.cpp.o" "gcc" "src/CMakeFiles/tcm_dram.dir/dram/rank.cpp.o.d"
  "/root/repo/src/dram/timing.cpp" "src/CMakeFiles/tcm_dram.dir/dram/timing.cpp.o" "gcc" "src/CMakeFiles/tcm_dram.dir/dram/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
