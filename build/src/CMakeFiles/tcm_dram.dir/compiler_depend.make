# Empty compiler generated dependencies file for tcm_dram.
# This may be replaced when dependencies are built.
