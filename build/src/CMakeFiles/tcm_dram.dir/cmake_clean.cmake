file(REMOVE_RECURSE
  "CMakeFiles/tcm_dram.dir/dram/address.cpp.o"
  "CMakeFiles/tcm_dram.dir/dram/address.cpp.o.d"
  "CMakeFiles/tcm_dram.dir/dram/bank.cpp.o"
  "CMakeFiles/tcm_dram.dir/dram/bank.cpp.o.d"
  "CMakeFiles/tcm_dram.dir/dram/channel.cpp.o"
  "CMakeFiles/tcm_dram.dir/dram/channel.cpp.o.d"
  "CMakeFiles/tcm_dram.dir/dram/energy.cpp.o"
  "CMakeFiles/tcm_dram.dir/dram/energy.cpp.o.d"
  "CMakeFiles/tcm_dram.dir/dram/rank.cpp.o"
  "CMakeFiles/tcm_dram.dir/dram/rank.cpp.o.d"
  "CMakeFiles/tcm_dram.dir/dram/timing.cpp.o"
  "CMakeFiles/tcm_dram.dir/dram/timing.cpp.o.d"
  "libtcm_dram.a"
  "libtcm_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
