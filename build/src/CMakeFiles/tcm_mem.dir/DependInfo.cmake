
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/controller.cpp" "src/CMakeFiles/tcm_mem.dir/mem/controller.cpp.o" "gcc" "src/CMakeFiles/tcm_mem.dir/mem/controller.cpp.o.d"
  "/root/repo/src/mem/latency_tracker.cpp" "src/CMakeFiles/tcm_mem.dir/mem/latency_tracker.cpp.o" "gcc" "src/CMakeFiles/tcm_mem.dir/mem/latency_tracker.cpp.o.d"
  "/root/repo/src/mem/request_queue.cpp" "src/CMakeFiles/tcm_mem.dir/mem/request_queue.cpp.o" "gcc" "src/CMakeFiles/tcm_mem.dir/mem/request_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
