# Empty dependencies file for tcm_mem.
# This may be replaced when dependencies are built.
