file(REMOVE_RECURSE
  "CMakeFiles/tcm_mem.dir/mem/controller.cpp.o"
  "CMakeFiles/tcm_mem.dir/mem/controller.cpp.o.d"
  "CMakeFiles/tcm_mem.dir/mem/latency_tracker.cpp.o"
  "CMakeFiles/tcm_mem.dir/mem/latency_tracker.cpp.o.d"
  "CMakeFiles/tcm_mem.dir/mem/request_queue.cpp.o"
  "CMakeFiles/tcm_mem.dir/mem/request_queue.cpp.o.d"
  "libtcm_mem.a"
  "libtcm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
