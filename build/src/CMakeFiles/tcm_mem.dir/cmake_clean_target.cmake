file(REMOVE_RECURSE
  "libtcm_mem.a"
)
