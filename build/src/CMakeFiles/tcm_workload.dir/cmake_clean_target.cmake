file(REMOVE_RECURSE
  "libtcm_workload.a"
)
