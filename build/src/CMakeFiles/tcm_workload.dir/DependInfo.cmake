
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmark_table.cpp" "src/CMakeFiles/tcm_workload.dir/workload/benchmark_table.cpp.o" "gcc" "src/CMakeFiles/tcm_workload.dir/workload/benchmark_table.cpp.o.d"
  "/root/repo/src/workload/mixes.cpp" "src/CMakeFiles/tcm_workload.dir/workload/mixes.cpp.o" "gcc" "src/CMakeFiles/tcm_workload.dir/workload/mixes.cpp.o.d"
  "/root/repo/src/workload/multithreaded.cpp" "src/CMakeFiles/tcm_workload.dir/workload/multithreaded.cpp.o" "gcc" "src/CMakeFiles/tcm_workload.dir/workload/multithreaded.cpp.o.d"
  "/root/repo/src/workload/profile.cpp" "src/CMakeFiles/tcm_workload.dir/workload/profile.cpp.o" "gcc" "src/CMakeFiles/tcm_workload.dir/workload/profile.cpp.o.d"
  "/root/repo/src/workload/synthetic_trace.cpp" "src/CMakeFiles/tcm_workload.dir/workload/synthetic_trace.cpp.o" "gcc" "src/CMakeFiles/tcm_workload.dir/workload/synthetic_trace.cpp.o.d"
  "/root/repo/src/workload/trace_file.cpp" "src/CMakeFiles/tcm_workload.dir/workload/trace_file.cpp.o" "gcc" "src/CMakeFiles/tcm_workload.dir/workload/trace_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
