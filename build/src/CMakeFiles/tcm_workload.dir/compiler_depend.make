# Empty compiler generated dependencies file for tcm_workload.
# This may be replaced when dependencies are built.
