file(REMOVE_RECURSE
  "CMakeFiles/tcm_workload.dir/workload/benchmark_table.cpp.o"
  "CMakeFiles/tcm_workload.dir/workload/benchmark_table.cpp.o.d"
  "CMakeFiles/tcm_workload.dir/workload/mixes.cpp.o"
  "CMakeFiles/tcm_workload.dir/workload/mixes.cpp.o.d"
  "CMakeFiles/tcm_workload.dir/workload/multithreaded.cpp.o"
  "CMakeFiles/tcm_workload.dir/workload/multithreaded.cpp.o.d"
  "CMakeFiles/tcm_workload.dir/workload/profile.cpp.o"
  "CMakeFiles/tcm_workload.dir/workload/profile.cpp.o.d"
  "CMakeFiles/tcm_workload.dir/workload/synthetic_trace.cpp.o"
  "CMakeFiles/tcm_workload.dir/workload/synthetic_trace.cpp.o.d"
  "CMakeFiles/tcm_workload.dir/workload/trace_file.cpp.o"
  "CMakeFiles/tcm_workload.dir/workload/trace_file.cpp.o.d"
  "libtcm_workload.a"
  "libtcm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
