file(REMOVE_RECURSE
  "CMakeFiles/tcm_metrics.dir/metrics/metrics.cpp.o"
  "CMakeFiles/tcm_metrics.dir/metrics/metrics.cpp.o.d"
  "libtcm_metrics.a"
  "libtcm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
