# Empty compiler generated dependencies file for tcm_metrics.
# This may be replaced when dependencies are built.
