file(REMOVE_RECURSE
  "libtcm_metrics.a"
)
