file(REMOVE_RECURSE
  "libtcm_sched.a"
)
