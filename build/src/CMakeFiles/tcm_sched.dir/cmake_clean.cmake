file(REMOVE_RECURSE
  "CMakeFiles/tcm_sched.dir/sched/atlas.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/atlas.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/factory.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/factory.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/fcfs.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/fcfs.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/fixed_rank.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/fixed_rank.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/fqm.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/fqm.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/frfcfs.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/frfcfs.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/parbs.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/parbs.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/scheduler.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/scheduler.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/stfm.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/stfm.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/tcm/clustering.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/tcm/clustering.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/tcm/hw_cost.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/tcm/hw_cost.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/tcm/monitor.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/tcm/monitor.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/tcm/niceness.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/tcm/niceness.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/tcm/shuffle.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/tcm/shuffle.cpp.o.d"
  "CMakeFiles/tcm_sched.dir/sched/tcm/tcm.cpp.o"
  "CMakeFiles/tcm_sched.dir/sched/tcm/tcm.cpp.o.d"
  "libtcm_sched.a"
  "libtcm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
