
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/atlas.cpp" "src/CMakeFiles/tcm_sched.dir/sched/atlas.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/atlas.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/CMakeFiles/tcm_sched.dir/sched/factory.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/factory.cpp.o.d"
  "/root/repo/src/sched/fcfs.cpp" "src/CMakeFiles/tcm_sched.dir/sched/fcfs.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/fcfs.cpp.o.d"
  "/root/repo/src/sched/fixed_rank.cpp" "src/CMakeFiles/tcm_sched.dir/sched/fixed_rank.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/fixed_rank.cpp.o.d"
  "/root/repo/src/sched/fqm.cpp" "src/CMakeFiles/tcm_sched.dir/sched/fqm.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/fqm.cpp.o.d"
  "/root/repo/src/sched/frfcfs.cpp" "src/CMakeFiles/tcm_sched.dir/sched/frfcfs.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/frfcfs.cpp.o.d"
  "/root/repo/src/sched/parbs.cpp" "src/CMakeFiles/tcm_sched.dir/sched/parbs.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/parbs.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/tcm_sched.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/stfm.cpp" "src/CMakeFiles/tcm_sched.dir/sched/stfm.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/stfm.cpp.o.d"
  "/root/repo/src/sched/tcm/clustering.cpp" "src/CMakeFiles/tcm_sched.dir/sched/tcm/clustering.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/tcm/clustering.cpp.o.d"
  "/root/repo/src/sched/tcm/hw_cost.cpp" "src/CMakeFiles/tcm_sched.dir/sched/tcm/hw_cost.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/tcm/hw_cost.cpp.o.d"
  "/root/repo/src/sched/tcm/monitor.cpp" "src/CMakeFiles/tcm_sched.dir/sched/tcm/monitor.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/tcm/monitor.cpp.o.d"
  "/root/repo/src/sched/tcm/niceness.cpp" "src/CMakeFiles/tcm_sched.dir/sched/tcm/niceness.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/tcm/niceness.cpp.o.d"
  "/root/repo/src/sched/tcm/shuffle.cpp" "src/CMakeFiles/tcm_sched.dir/sched/tcm/shuffle.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/tcm/shuffle.cpp.o.d"
  "/root/repo/src/sched/tcm/tcm.cpp" "src/CMakeFiles/tcm_sched.dir/sched/tcm/tcm.cpp.o" "gcc" "src/CMakeFiles/tcm_sched.dir/sched/tcm/tcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
