# Empty compiler generated dependencies file for tcm_sched.
# This may be replaced when dependencies are built.
