file(REMOVE_RECURSE
  "CMakeFiles/tcm_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/tcm_stats.dir/stats/histogram.cpp.o.d"
  "libtcm_stats.a"
  "libtcm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
