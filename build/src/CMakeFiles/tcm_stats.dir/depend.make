# Empty dependencies file for tcm_stats.
# This may be replaced when dependencies are built.
