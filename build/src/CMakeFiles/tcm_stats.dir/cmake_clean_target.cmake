file(REMOVE_RECURSE
  "libtcm_stats.a"
)
