file(REMOVE_RECURSE
  "CMakeFiles/tcm_common.dir/common/env.cpp.o"
  "CMakeFiles/tcm_common.dir/common/env.cpp.o.d"
  "CMakeFiles/tcm_common.dir/common/random.cpp.o"
  "CMakeFiles/tcm_common.dir/common/random.cpp.o.d"
  "libtcm_common.a"
  "libtcm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
