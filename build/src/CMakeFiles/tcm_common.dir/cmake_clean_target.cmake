file(REMOVE_RECURSE
  "libtcm_common.a"
)
