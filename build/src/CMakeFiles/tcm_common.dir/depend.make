# Empty dependencies file for tcm_common.
# This may be replaced when dependencies are built.
