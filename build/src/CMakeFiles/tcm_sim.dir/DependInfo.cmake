
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/alone_cache.cpp" "src/CMakeFiles/tcm_sim.dir/sim/alone_cache.cpp.o" "gcc" "src/CMakeFiles/tcm_sim.dir/sim/alone_cache.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/tcm_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/tcm_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/tcm_sim.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/tcm_sim.dir/sim/report.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/tcm_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/tcm_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/system_config.cpp" "src/CMakeFiles/tcm_sim.dir/sim/system_config.cpp.o" "gcc" "src/CMakeFiles/tcm_sim.dir/sim/system_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tcm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
