file(REMOVE_RECURSE
  "libtcm_sim.a"
)
