file(REMOVE_RECURSE
  "CMakeFiles/tcm_sim.dir/sim/alone_cache.cpp.o"
  "CMakeFiles/tcm_sim.dir/sim/alone_cache.cpp.o.d"
  "CMakeFiles/tcm_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/tcm_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/tcm_sim.dir/sim/report.cpp.o"
  "CMakeFiles/tcm_sim.dir/sim/report.cpp.o.d"
  "CMakeFiles/tcm_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/tcm_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/tcm_sim.dir/sim/system_config.cpp.o"
  "CMakeFiles/tcm_sim.dir/sim/system_config.cpp.o.d"
  "libtcm_sim.a"
  "libtcm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
