# Empty dependencies file for tcm_sim.
# This may be replaced when dependencies are built.
