file(REMOVE_RECURSE
  "CMakeFiles/tcm_core.dir/core/core.cpp.o"
  "CMakeFiles/tcm_core.dir/core/core.cpp.o.d"
  "libtcm_core.a"
  "libtcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
