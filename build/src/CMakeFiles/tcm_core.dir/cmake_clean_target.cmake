file(REMOVE_RECURSE
  "libtcm_core.a"
)
