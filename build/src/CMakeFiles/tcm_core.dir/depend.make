# Empty dependencies file for tcm_core.
# This may be replaced when dependencies are built.
