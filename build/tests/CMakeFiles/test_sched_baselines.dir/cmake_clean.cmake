file(REMOVE_RECURSE
  "CMakeFiles/test_sched_baselines.dir/test_sched_baselines.cpp.o"
  "CMakeFiles/test_sched_baselines.dir/test_sched_baselines.cpp.o.d"
  "test_sched_baselines"
  "test_sched_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
