# Empty compiler generated dependencies file for test_sched_baselines.
# This may be replaced when dependencies are built.
