file(REMOVE_RECURSE
  "CMakeFiles/test_sched_tcm.dir/test_sched_tcm.cpp.o"
  "CMakeFiles/test_sched_tcm.dir/test_sched_tcm.cpp.o.d"
  "test_sched_tcm"
  "test_sched_tcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_tcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
