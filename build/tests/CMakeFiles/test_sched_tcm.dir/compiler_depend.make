# Empty compiler generated dependencies file for test_sched_tcm.
# This may be replaced when dependencies are built.
