# Empty compiler generated dependencies file for test_sched_basic.
# This may be replaced when dependencies are built.
