file(REMOVE_RECURSE
  "CMakeFiles/test_sched_basic.dir/test_sched_basic.cpp.o"
  "CMakeFiles/test_sched_basic.dir/test_sched_basic.cpp.o.d"
  "test_sched_basic"
  "test_sched_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
