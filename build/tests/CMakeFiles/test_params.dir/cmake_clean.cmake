file(REMOVE_RECURSE
  "CMakeFiles/test_params.dir/test_params.cpp.o"
  "CMakeFiles/test_params.dir/test_params.cpp.o.d"
  "test_params"
  "test_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
