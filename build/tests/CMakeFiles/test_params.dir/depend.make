# Empty dependencies file for test_params.
# This may be replaced when dependencies are built.
