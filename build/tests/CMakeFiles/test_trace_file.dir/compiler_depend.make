# Empty compiler generated dependencies file for test_trace_file.
# This may be replaced when dependencies are built.
