file(REMOVE_RECURSE
  "CMakeFiles/test_trace_file.dir/test_trace_file.cpp.o"
  "CMakeFiles/test_trace_file.dir/test_trace_file.cpp.o.d"
  "test_trace_file"
  "test_trace_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
