/**
 * @file
 * sweepd — the sweep daemon CLI (sim/sweepd.hpp).
 *
 * One-shot mode runs a single manifest to a single JSONL stream:
 *
 *   sweepd --state DIR --manifest FILE --out FILE [options]
 *
 * Service mode drains (and optionally keeps watching) a spool:
 *
 *   sweepd --state DIR --once             # drain <state>/spool, exit
 *   sweepd --state DIR --watch SECONDS    # poll the spool forever
 *
 * Submit work to the service by writing "<name>.manifest" files into
 * <state>/spool (write-then-rename for atomicity); results stream to
 * <state>/results/<name>.jsonl and finished manifests move to
 * <state>/done. See sim/sweepd.hpp for the manifest format and the
 * checkpoint/resume and persistent alone-IPC cache contracts.
 *
 * Options:
 *   --jobs N        worker threads (default: TCMSIM_JOBS, else all
 *                   hardware threads; 1 = serial)
 *   --batch N       jobs per dispatch batch / checkpoint granularity
 *                   (default: 4x workers)
 *   --stop-after N  stop cleanly after N jobs this session (testing:
 *                   equivalent to killing the daemon between batches)
 *   --quiet         suppress progress logging on stderr
 *
 * Exit status: 0 when every requested manifest finished (or the stop
 * limit was reached with work remaining — an interrupted run is not an
 * error), 1 on a manifest/run failure, 2 on bad usage.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "sim/sweepd.hpp"

namespace {

[[noreturn]] void
die(const char *msg)
{
    std::fprintf(stderr, "sweepd: %s (see the file header for usage)\n",
                 msg);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tcm::sim::sweepd;

    Server::Options options;
    std::string manifest;
    std::string out;
    bool once = false;
    int watchSeconds = -1;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                die("missing option value");
            return argv[++i];
        };
        if (arg == "--state")
            options.stateDir = value();
        else if (arg == "--manifest")
            manifest = value();
        else if (arg == "--out")
            out = value();
        else if (arg == "--jobs")
            options.jobs = std::atoi(value());
        else if (arg == "--batch")
            options.batch = std::atoi(value());
        else if (arg == "--stop-after")
            options.stopAfter = std::strtoull(value(), nullptr, 10);
        else if (arg == "--once")
            once = true;
        else if (arg == "--watch")
            watchSeconds = std::atoi(value());
        else if (arg == "--quiet")
            quiet = true;
        else
            die("unknown option");
    }
    if (options.stateDir.empty())
        die("--state is required");
    if (!manifest.empty() != !out.empty())
        die("--manifest and --out go together");
    if (!manifest.empty() && (once || watchSeconds >= 0))
        die("--manifest mode excludes --once/--watch");
    if (manifest.empty() && !once && watchSeconds < 0)
        die("pick a mode: --manifest/--out, --once, or --watch");
    if (!quiet)
        options.log = [](const std::string &msg) {
            std::fprintf(stderr, "%s\n", msg.c_str());
        };

    Server server(std::move(options));

    if (!manifest.empty()) {
        RunOutcome outcome = server.runManifest(manifest, out);
        if (!outcome.ok) {
            std::fprintf(stderr, "sweepd: %s\n", outcome.error.c_str());
            return 1;
        }
        return 0;
    }

    if (once) {
        server.drainSpool();
        return 0;
    }

    for (;;) {
        server.drainSpool();
        std::this_thread::sleep_for(std::chrono::seconds(watchSeconds));
    }
}
