/**
 * @file
 * Paper-claims regression gate. Runs the fig4 / table4 / table6 / zoo
 * experiment grids through the shared drivers (sim/paper_experiments),
 * evaluates the declarative claim registry (sim/claims) against the
 * structured results, and optionally diffs each fresh document against
 * the committed golden BENCH_*.json baselines.
 *
 * Exit codes: 0 all claims pass (and baselines match, when given);
 * 1 at least one claim failed or a baseline diverged; 2 usage error.
 *
 * Typical invocations:
 *   claims --scale ci --baseline bench/golden --out claims-out
 *   claims --scale ci --baseline bench/golden --regold   # refresh goldens
 *   claims --list                                        # print registry
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "sim/claims.hpp"
#include "sim/paper_experiments.hpp"
#include "sim/system_config.hpp"

namespace {

using namespace tcm;

struct Options
{
    // --scale ci: full run length (run-length effects — TCM quanta per
    // run, calibration probe windows — match the default scale) but half
    // the workload population, halving the wall-clock cost.
    sim::ExperimentScale scale{50'000, 300'000, 4, {}};
    bool defaultScale = false;
    int jobs = 0;
    std::string outDir;
    std::string baselineDir;
    bool regold = false;
    double relTol = 0.02;
    double absTol = 0.02;
    bool list = false;
    // Run the whole harness on the per-cycle oracle loop instead of the
    // event-horizon kernel. The two are bit-identical by contract, so
    // the claim verdicts must not change; running the gate once per
    // mode in CI turns that contract into a checked invariant.
    bool perCycle = false;
    // Worker lanes for intra-run parallel stepping
    // (SystemConfig::intraRunParallel). Also bit-identical by contract
    // at any lane count; CI runs the gate with >1 lanes to enforce it.
    int intraParallel = 1;
    // Attach the simulator self-profiler to every run. A pure observer:
    // claim verdicts and baseline diffs are unchanged; the merged
    // profile lands in each document's "run" provenance block.
    bool profile = false;
    // Explicit write-drain watermarks (Opportunistic mode). The
    // controller's defaults already use these values, so setting them
    // explicitly must not move a single number — CI runs the gate with
    // this flag to prove the watermark machinery is exactly the legacy
    // behavior when the new Strict latch stays off.
    bool writeDrain = false;
    int drainHigh = 0;
    int drainLow = 0;
    // Run every grid interval-sampled (sim/sampling.hpp defaults, or an
    // explicit W:K[:WARMUP] spec). Claim verdicts must still pass on the
    // sampled estimates — the CI leg behind the "sampling preserves the
    // conclusions" contract — but the numbers legitimately differ from
    // the full-run goldens, so --sampled excludes --baseline/--regold.
    bool sampled = false;
    sim::SamplingConfig samplingCfg; // applied to scale when sampled
    // Additionally run the paper::sampling probe (the fig4 grid twice:
    // full and sampled) and evaluate the sampling.* claims. Off by
    // default: the probe roughly doubles the fig4 cost.
    bool samplingProbe = false;
};

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: claims [options]\n"
        "  --scale ci|default   experiment scale (ci: 300k cycles, 4\n"
        "                       workloads/category; default: the bench\n"
        "                       defaults / TCMSIM_* environment)\n"
        "  --jobs N             worker threads (0 = hardware)\n"
        "  --out DIR            write fresh BENCH_*.json documents here\n"
        "  --baseline DIR       diff fresh documents against the goldens\n"
        "                       in DIR (BENCH_fig4.json, ...)\n"
        "  --regold             rewrite the baseline documents instead of\n"
        "                       diffing (requires --baseline)\n"
        "  --rel-tol X          baseline diff relative tolerance "
        "(default 0.02)\n"
        "  --abs-tol X          baseline diff absolute tolerance "
        "(default 0.02)\n"
        "  --list               print the claim registry and exit\n"
        "  --per-cycle          disable the cycle-skip kernel and run\n"
        "                       the per-cycle oracle loop (results are\n"
        "                       bit-identical; CI runs the gate in both\n"
        "                       modes to enforce that)\n"
        "  --intra-parallel N   step each run's memory controllers on N\n"
        "                       worker lanes between deterministic\n"
        "                       barriers (results are bit-identical at\n"
        "                       any N; CI runs the gate with N>1 to\n"
        "                       enforce that)\n"
        "  --profile            profile the simulator itself; verdicts\n"
        "                       and baselines are unchanged (observer\n"
        "                       purity), the merged metrics land in each\n"
        "                       document's \"run\" provenance block\n"
        "  --write-drain HI:LO  set the opportunistic write-drain\n"
        "                       watermarks explicitly; with the default\n"
        "                       values (48:16) the results are\n"
        "                       bit-identical to leaving the flag off,\n"
        "                       which CI enforces against the goldens\n"
        "  --sampled[=W:K[:WARMUP]]\n"
        "                       run every grid interval-sampled (default\n"
        "                       30k warmup + 3x14k windows); the claim\n"
        "                       verdicts must still pass on the sampled\n"
        "                       estimates. Excludes --baseline/--regold\n"
        "                       (sampled numbers are not the goldens')\n"
        "  --sampling-probe     also run the fig4 grid sampled and\n"
        "                       evaluate the sampling.* claims (error\n"
        "                       bands, ordering preservation, speedup);\n"
        "                       reuses the full fig4 grid already run\n");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "claims: %s needs a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            const char *v = value("--scale");
            if (v == nullptr)
                return false;
            if (std::strcmp(v, "ci") == 0) {
                opt.defaultScale = false;
            } else if (std::strcmp(v, "default") == 0) {
                opt.defaultScale = true;
                opt.scale = sim::ExperimentScale::fromEnv();
            } else {
                std::fprintf(stderr, "claims: unknown scale '%s'\n", v);
                return false;
            }
        } else if (arg == "--jobs") {
            const char *v = value("--jobs");
            if (v == nullptr)
                return false;
            opt.jobs = std::atoi(v);
        } else if (arg == "--out") {
            const char *v = value("--out");
            if (v == nullptr)
                return false;
            opt.outDir = v;
        } else if (arg == "--baseline") {
            const char *v = value("--baseline");
            if (v == nullptr)
                return false;
            opt.baselineDir = v;
        } else if (arg == "--regold") {
            opt.regold = true;
        } else if (arg == "--rel-tol") {
            const char *v = value("--rel-tol");
            if (v == nullptr)
                return false;
            opt.relTol = std::atof(v);
        } else if (arg == "--abs-tol") {
            const char *v = value("--abs-tol");
            if (v == nullptr)
                return false;
            opt.absTol = std::atof(v);
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--per-cycle") {
            opt.perCycle = true;
        } else if (arg == "--intra-parallel") {
            const char *v = value("--intra-parallel");
            if (v == nullptr)
                return false;
            opt.intraParallel = std::atoi(v);
            if (opt.intraParallel < 1) {
                std::fprintf(stderr,
                             "claims: --intra-parallel needs N >= 1\n");
                return false;
            }
        } else if (arg == "--profile") {
            opt.profile = true;
        } else if (arg == "--write-drain") {
            const char *v = value("--write-drain");
            if (v == nullptr)
                return false;
            if (std::sscanf(v, "%d:%d", &opt.drainHigh, &opt.drainLow) !=
                    2 ||
                opt.drainHigh <= 0 || opt.drainLow < 0 ||
                opt.drainLow >= opt.drainHigh) {
                std::fprintf(stderr,
                             "claims: --write-drain needs HI:LO with "
                             "0 <= LO < HI\n");
                return false;
            }
            opt.writeDrain = true;
        } else if (arg == "--sampled" ||
                   arg.rfind("--sampled=", 0) == 0) {
            opt.sampled = true;
            opt.samplingCfg.enabled = true;
            if (arg.rfind("--sampled=", 0) == 0) {
                std::string err;
                opt.samplingCfg = sim::SamplingConfig::parse(
                    arg.substr(std::strlen("--sampled=")), &err);
                if (!opt.samplingCfg.enabled) {
                    std::fprintf(stderr, "claims: %s\n", err.c_str());
                    return false;
                }
            }
        } else if (arg == "--sampling-probe") {
            opt.samplingProbe = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else {
            std::fprintf(stderr, "claims: unknown option '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    if (opt.regold && opt.baselineDir.empty()) {
        std::fprintf(stderr, "claims: --regold requires --baseline DIR\n");
        return false;
    }
    if (opt.sampled && !opt.baselineDir.empty()) {
        std::fprintf(stderr,
                     "claims: --sampled excludes --baseline/--regold "
                     "(sampled estimates legitimately differ from the "
                     "full-run goldens)\n");
        return false;
    }
    if (opt.sampled && opt.samplingProbe) {
        std::fprintf(stderr,
                     "claims: --sampling-probe needs the full-run grids "
                     "(drop --sampled; the probe runs the sampled leg "
                     "itself)\n");
        return false;
    }
    return true;
}

bool
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    std::fprintf(stderr, "claims: cannot create %s: %s\n", dir.c_str(),
                 std::strerror(errno));
    return false;
}

std::string
docFile(const std::string &dir, const sim::results::ResultsDoc &doc)
{
    return dir + "/BENCH_" + doc.bench + ".json";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tcm;

    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage(stderr);
        return 2;
    }

    std::vector<sim::claims::Claim> registry = sim::claims::paperClaims();
    // The intra-parallel speedup claim compares 4 worker lanes against
    // the serial loop — on hosts with fewer than 4 hardware threads the
    // lanes time-share one core and the measurement says nothing about
    // the implementation (bit-identity is still fully enforced, by
    // test_intra_parallel and by running this whole gate with
    // --intra-parallel > 1). Skip it there, loudly.
    if (std::thread::hardware_concurrency() < 4) {
        std::fprintf(stderr,
                     "claims: skipping perf.intra_parallel_speedup "
                     "(%u hardware thread(s) < 4 worker lanes)\n",
                     std::thread::hardware_concurrency());
        std::erase_if(registry, [](const sim::claims::Claim &c) {
            return c.id == "perf.intra_parallel_speedup";
        });
    }
    // The sampling.* claims read the paper::sampling probe document,
    // which only --sampling-probe produces (the probe re-runs the fig4
    // grid sampled, roughly doubling that grid's cost).
    if (!opt.samplingProbe) {
        std::erase_if(registry, [](const sim::claims::Claim &c) {
            return c.id.rfind("sampling.", 0) == 0;
        });
    }
    if (opt.list) {
        for (const sim::claims::Claim &c : registry)
            std::printf("%-32s %s\n", c.id.c_str(), c.description.c_str());
        return 0;
    }

    if (opt.sampled) {
        opt.scale.sampling = opt.samplingCfg;
        // Fine-margin MS claims need the full horizon (see
        // Claim::fullHorizonOnly); every claim that survives this
        // filter must pass on the sampled documents.
        std::size_t before = registry.size();
        std::erase_if(registry, [](const sim::claims::Claim &c) {
            return c.fullHorizonOnly;
        });
        std::fprintf(stderr,
                     "claims: sampled leg skips %zu full-horizon-only "
                     "claim(s) (fine-margin MS comparisons)\n",
                     before - registry.size());
    }

    sim::SystemConfig config;
    config.cycleSkip = !opt.perCycle;
    config.intraRunParallel = opt.intraParallel;
    config.profile.enabled = opt.profile;
    if (opt.writeDrain) {
        config.controller.writeDrain.highWatermark = opt.drainHigh;
        config.controller.writeDrain.lowWatermark = opt.drainLow;
        std::fprintf(stderr, "claims: write-drain watermarks %d:%d\n",
                     opt.drainHigh, opt.drainLow);
    }
    std::fprintf(stderr,
                 "claims: scale %s (warmup %llu, measure %llu, %d "
                 "workloads/category)%s, %d worker lane(s), sampling %s\n",
                 opt.defaultScale ? "default" : "ci",
                 static_cast<unsigned long long>(opt.scale.warmup),
                 static_cast<unsigned long long>(opt.scale.measure),
                 opt.scale.workloadsPerCategory,
                 opt.perCycle ? ", per-cycle oracle" : "",
                 opt.intraParallel,
                 opt.scale.sampling.describe().c_str());

    std::vector<sim::results::ResultsDoc> docs;
    // The intra-parallel speedup and sampling-probe docs carry
    // wall-clock timings, which legitimately vary run to run and across
    // machines — they feed the claim registry and are written to --out
    // for inspection, but are never diffed against (or regolded into)
    // the baselines.
    std::vector<sim::results::ResultsDoc> timingDocs;
    try {
        std::fprintf(stderr, "claims: running fig4 grid...\n");
        docs.push_back(sim::paper::fig4(config, opt.scale, opt.jobs));
        std::fprintf(stderr, "claims: running table4 calibration...\n");
        docs.push_back(sim::paper::table4(config, opt.scale));
        std::fprintf(stderr, "claims: running table6 shuffling grid...\n");
        docs.push_back(sim::paper::table6(config, opt.scale, opt.jobs));
        std::fprintf(stderr, "claims: running scheduler-zoo grid...\n");
        docs.push_back(sim::paper::zoo(config, opt.scale, opt.jobs));
        std::fprintf(stderr,
                     "claims: running intra-parallel speedup...\n");
        timingDocs.push_back(sim::paper::intraParallel(config, opt.scale));
        if (opt.samplingProbe) {
            std::fprintf(stderr,
                         "claims: running sampling probe (sampled fig4 "
                         "grid)...\n");
            // docs[0] is the fig4 document just produced at this exact
            // scale/config — the probe reuses it as the full-run leg.
            timingDocs.push_back(sim::paper::sampling(
                config, opt.scale, opt.jobs, &docs[0]));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "claims: experiment failed: %s\n", e.what());
        return 1;
    }

    sim::claims::ResultSet set;
    for (const sim::results::ResultsDoc &doc : docs)
        set.add(doc);
    for (const sim::results::ResultsDoc &doc : timingDocs)
        set.add(doc);

    std::vector<sim::claims::Outcome> outcomes =
        sim::claims::evaluateAll(registry, set);
    sim::claims::printVerdictTable(registry, outcomes, stdout);
    int failures = sim::claims::failureCount(outcomes);

    if (!opt.outDir.empty()) {
        if (!ensureDir(opt.outDir))
            return 2;
        std::vector<const sim::results::ResultsDoc *> outDocs;
        for (const sim::results::ResultsDoc &doc : docs)
            outDocs.push_back(&doc);
        for (const sim::results::ResultsDoc &doc : timingDocs)
            outDocs.push_back(&doc);
        for (const sim::results::ResultsDoc *doc : outDocs) {
            std::string path = docFile(opt.outDir, *doc);
            try {
                doc->save(path);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "claims: %s\n", e.what());
                return 2;
            }
            std::fprintf(stderr, "claims: wrote %s\n", path.c_str());
        }
    }

    int diverged = 0;
    if (!opt.baselineDir.empty() && opt.regold) {
        if (!ensureDir(opt.baselineDir))
            return 2;
        for (const sim::results::ResultsDoc &doc : docs) {
            std::string path = docFile(opt.baselineDir, doc);
            try {
                doc.save(path);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "claims: %s\n", e.what());
                return 2;
            }
            std::fprintf(stderr, "claims: regolded %s\n", path.c_str());
        }
    } else if (!opt.baselineDir.empty()) {
        for (const sim::results::ResultsDoc &doc : docs) {
            std::string path = docFile(opt.baselineDir, doc);
            sim::results::ResultsDoc baseline;
            try {
                baseline = sim::results::ResultsDoc::load(path);
            } catch (const std::exception &e) {
                std::printf("baseline %s: %s (run --regold?)\n",
                            path.c_str(), e.what());
                ++diverged;
                continue;
            }
            std::vector<std::string> lines = sim::claims::diff(
                doc, baseline, opt.relTol, opt.absTol);
            if (lines.empty()) {
                std::printf("baseline %s: match (rel-tol %g, abs-tol %g)\n",
                            path.c_str(), opt.relTol, opt.absTol);
                continue;
            }
            diverged += static_cast<int>(lines.size());
            std::printf("baseline %s: %zu mismatch(es)\n", path.c_str(),
                        lines.size());
            for (const std::string &line : lines)
                std::printf("  %s\n", line.c_str());
        }
    }

    if (failures > 0 || diverged > 0) {
        std::printf("\nclaims: FAIL (%d claim failure(s), %d baseline "
                    "mismatch(es))\n",
                    failures, diverged);
        return 1;
    }
    std::printf("\nclaims: OK (%zu claims, %zu baseline document(s))\n",
                registry.size(),
                opt.regold ? std::size_t{0}
                           : (opt.baselineDir.empty() ? std::size_t{0}
                                                      : docs.size()));
    return 0;
}
