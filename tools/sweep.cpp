/**
 * @file
 * sweep — batch experiment runner with CSV output.
 *
 * Runs a (scheduler x workload) grid and emits one CSV row per run,
 * ready for pandas/gnuplot. This is the tool behind "I want the Figure 4
 * scatter with my own axes".
 *
 * Usage:
 *   sweep [options] > results.csv
 *     --schedulers LIST   comma list of frfcfs,fcfs,fqm,stfm,parbs,
 *                         atlas,tcm,bliss,ght,frfcfs-cp,tournament
 *                         (default: the paper's five)
 *     --intensity LIST    comma list of fractions (default 0.5,0.75,1.0)
 *     --workloads N       workloads per intensity (default 8)
 *     --cores N           threads per workload (default 24)
 *     --channels N        memory controllers (default 4)
 *     --cycles N          measured cycles (default 300000)
 *     --warmup N          warmup cycles (default 50000)
 *     --seed N            base seed (default 1)
 *     --sample W:K[:WARMUP]
 *                         interval sampling (sim/sampling.hpp): simulate
 *                         WARMUP (default 30000) + K windows of W cycles
 *                         instead of the full --warmup/--cycles run, with
 *                         scheduler time constants still scaled to the
 *                         full --cycles so the sampled run is a prefix
 *                         slice of the full run's dynamics. Rows keep
 *                         the same columns, carrying sampled estimates
 *     --jobs N            worker threads (default: TCMSIM_JOBS, else all
 *                         hardware threads; 1 = serial)
 *     --protocol NAME     DRAM protocol preset (ddr2-800, ddr3-1333,
 *                         ddr3-1600, ddr4-2400; default ddr2-800)
 *     --check             attach the independent protocol checker
 *                         to every run; prints an audit summary to
 *                         stderr and exits 1 on any violation
 *     --telemetry DIR     record in-run telemetry (interval samples,
 *                         scheduler decisions, lifecycle latencies) and
 *                         write DIR/i<intensity>_<scheduler>_seed<N>
 *                         .jsonl + .trace.json per run (Perfetto-
 *                         loadable); DIR is created if missing
 *     --profile[=DIR]     profile the simulator itself (wall-clock
 *                         phases, cycle-skip horizon attribution, core
 *                         regimes, scan efficiency); prints one
 *                         aggregated report per scheduler to stderr.
 *                         With =DIR, also writes DIR/i<intensity>_
 *                         <scheduler>_seed<N>.profile.json per run.
 *                         CSV output is bit-identical either way.
 *
 * Columns: scheduler,intensity,workload,seed,ws,ms,hs
 * Row order and values are independent of --jobs: runs are independently
 * seeded and results are emitted in grid order after each intensity's
 * (scheduler x workload) matrix completes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tcm;

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

[[noreturn]] void
die(const char *msg)
{
    std::fprintf(stderr, "sweep: %s (see the file header for usage)\n",
                 msg);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> schedulerNames = {"frfcfs", "stfm", "parbs",
                                               "atlas", "tcm"};
    std::vector<double> intensities = {0.5, 0.75, 1.0};
    int workloads = 8;
    int cores = 24;
    int channels = 4;
    Cycle cycles = 300'000;
    Cycle warmup = 50'000;
    std::uint64_t seed = 1;
    int jobs = 0;
    sim::SamplingConfig sampling;
    std::string protocol;
    bool check = false;
    std::string telemetryDir;
    bool profile = false;
    std::string profileDir;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                die("missing option value");
            return argv[++i];
        };
        if (arg == "--schedulers")
            schedulerNames = splitCommas(value());
        else if (arg == "--intensity") {
            intensities.clear();
            for (const std::string &v : splitCommas(value()))
                intensities.push_back(std::strtod(v.c_str(), nullptr));
        } else if (arg == "--workloads")
            workloads = std::atoi(value());
        else if (arg == "--cores")
            cores = std::atoi(value());
        else if (arg == "--channels")
            channels = std::atoi(value());
        else if (arg == "--cycles")
            cycles = std::strtoull(value(), nullptr, 10);
        else if (arg == "--warmup")
            warmup = std::strtoull(value(), nullptr, 10);
        else if (arg == "--seed")
            seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--sample") {
            std::string err;
            sampling = sim::SamplingConfig::parse(value(), &err);
            if (!sampling.enabled)
                die(err.c_str());
        }
        else if (arg == "--jobs")
            jobs = std::atoi(value());
        else if (arg == "--protocol")
            protocol = value();
        else if (arg == "--check")
            check = true;
        else if (arg == "--telemetry")
            telemetryDir = value();
        else if (arg == "--profile")
            profile = true;
        else if (arg.rfind("--profile=", 0) == 0) {
            profile = true;
            profileDir = arg.substr(std::strlen("--profile="));
        } else
            die("unknown option");
    }

    sim::SystemConfig config;
    if (!protocol.empty()) {
        std::string err = config.selectProtocol(protocol);
        if (!err.empty())
            die(err.c_str());
    }
    config.numCores = cores;
    config.numChannels = channels;
    config.protocolCheck = check;
    if (!telemetryDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(telemetryDir, ec);
        if (ec)
            die("cannot create the --telemetry directory");
        config.telemetry.enabled = true;
        config.telemetry.dir = telemetryDir;
    }
    if (profile) {
        config.profile.enabled = true;
        if (!profileDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(profileDir, ec);
            if (ec)
                die("cannot create the --profile directory");
            config.profile.dir = profileDir;
        }
    }
    sim::ExperimentScale scale;
    scale.measure = cycles;
    scale.warmup = warmup;
    scale.workloadsPerCategory = workloads;
    scale.sampling = sampling;

    sim::AloneIpcCache cache(config, scale.effectiveWarmup(), scale.effectiveMeasure());

    std::vector<sched::SchedulerSpec> specs(schedulerNames.size());
    for (std::size_t s = 0; s < schedulerNames.size(); ++s) {
        sched::SpecLookup lookup = sched::specByName(schedulerNames[s]);
        if (!lookup.ok)
            die(lookup.error.c_str());
        specs[s] = lookup.spec;
    }

    // One (scheduler x workload) matrix per intensity; workload w uses
    // seed + w exactly as the serial loop did.
    std::vector<std::vector<std::vector<sim::RunResult>>> byIntensity;
    byIntensity.reserve(intensities.size());
    for (double intensity : intensities) {
        auto set = workload::workloadSet(
            workloads, cores, intensity,
            seed + static_cast<std::uint64_t>(intensity * 1000));
        // Workload w reuses seed + w at every intensity, so the file
        // names need the intensity to stay distinct.
        sim::SystemConfig runConfig = config;
        char prefix[32];
        std::snprintf(prefix, sizeof prefix, "i%.2f_", intensity);
        if (runConfig.telemetry.enabled)
            runConfig.telemetry.filePrefix = prefix;
        if (runConfig.profile.enabled)
            runConfig.profile.filePrefix = prefix;
        byIntensity.push_back(sim::runMatrix(runConfig, set, specs, scale,
                                             cache, seed, jobs));
    }

    std::printf("scheduler,intensity,workload,seed,ws,ms,hs\n");
    std::uint64_t violations = 0;
    std::uint64_t auditedRuns = 0;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        for (std::size_t i = 0; i < intensities.size(); ++i) {
            const auto &runs = byIntensity[i][s];
            for (std::size_t w = 0; w < runs.size(); ++w) {
                const sim::RunResult &r = runs[w];
                std::printf("%s,%.2f,%zu,%llu,%.4f,%.4f,%.4f\n",
                            schedulerNames[s].c_str(), intensities[i], w,
                            static_cast<unsigned long long>(seed + w),
                            r.metrics.weightedSpeedup,
                            r.metrics.maxSlowdown,
                            r.metrics.harmonicSpeedup);
                if (check) {
                    ++auditedRuns;
                    violations += r.protocolViolations;
                    if (r.protocolViolations != 0)
                        std::fprintf(stderr,
                                     "sweep: %s intensity %.2f workload "
                                     "%zu:\n%s",
                                     schedulerNames[s].c_str(),
                                     intensities[i], w,
                                     r.protocolReport.c_str());
                }
            }
        }
    }
    if (check) {
        std::fprintf(stderr,
                     "sweep: protocol audit: %llu violation(s) across "
                     "%llu runs\n",
                     static_cast<unsigned long long>(violations),
                     static_cast<unsigned long long>(auditedRuns));
        if (violations != 0)
            return 1;
    }
    if (profile) {
        // One aggregated self-profile per scheduler, across every
        // intensity and workload. stderr, so `sweep > results.csv`
        // pipelines stay clean.
        for (std::size_t s = 0; s < specs.size(); ++s) {
            prof::ProfileReport merged;
            for (std::size_t i = 0; i < intensities.size(); ++i)
                for (const sim::RunResult &r : byIntensity[i][s])
                    if (r.profile)
                        merged.merge(*r.profile);
            std::fprintf(stderr, "sweep: profile [%s]\n",
                         schedulerNames[s].c_str());
            merged.print(stderr);
        }
    }
    return 0;
}
