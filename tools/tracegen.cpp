/**
 * @file
 * tracegen — capture a synthetic benchmark clone to a trace file.
 *
 * Usage:
 *   tracegen <benchmark|custom> <output.trace> [count] [seed]
 *            [mpki rbl blp]       (when the first argument is "custom")
 *   tracegen dump <input.trace> <output.txt>
 *   tracegen convert <input.txt> <output.trace>
 *
 * Examples:
 *   tracegen mcf mcf.trace 1000000
 *   tracegen custom my.trace 500000 7 42.0 0.8 2.5
 *   tracegen dump mcf.trace mcf.txt       # binary -> editable text
 *   tracegen convert mine.txt mine.trace  # your trace -> replayable
 *
 * The resulting file replays through workload::FileTrace (see
 * examples/trace_replay.cpp). The text format (one record per line:
 * "<gap> <R|W> <channel> <bank> <row> <col>", after a "# geometry:"
 * header) is the interchange format for converting real traces.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/benchmark_table.hpp"
#include "workload/trace_file.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <benchmark|custom> <output.trace> [count] "
                 "[seed] [mpki rbl blp]\n",
                 argv0);
    std::fprintf(stderr, "benchmarks: ");
    for (const auto &p : tcm::workload::benchmarkTable())
        std::fprintf(stderr, "%s ", p.name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tcm::workload;

    if (argc < 3)
        return usage(argv[0]);

    std::string which = argv[1];
    std::string path = argv[2];

    if (which == "dump" || which == "convert") {
        if (argc != 4)
            return usage(argv[0]);
        try {
            if (which == "dump")
                dumpTraceAsText(argv[2], argv[3]);
            else
                convertTextTrace(argv[2], argv[3]);
        } catch (const TraceFileError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
        std::printf("%s: %s -> %s\n", which.c_str(), argv[2], argv[3]);
        return 0;
    }

    std::uint64_t count = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                   : 1'000'000;
    std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

    ThreadProfile profile;
    if (which == "custom") {
        if (argc < 8)
            return usage(argv[0]);
        profile.name = "custom";
        profile.mpki = std::strtod(argv[5], nullptr);
        profile.rbl = std::strtod(argv[6], nullptr);
        profile.blp = std::strtod(argv[7], nullptr);
    } else {
        try {
            profile = benchmarkProfile(which);
        } catch (const std::out_of_range &) {
            std::fprintf(stderr, "unknown benchmark '%s'\n", which.c_str());
            return usage(argv[0]);
        }
    }

    Geometry geometry; // baseline: 4 channels x 4 banks
    try {
        captureSyntheticTrace(profile, geometry, seed, count, path);
    } catch (const TraceFileError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::printf("wrote %llu records of %s (MPKI %.2f, RBL %.2f, BLP %.2f) "
                "to %s\n",
                static_cast<unsigned long long>(count),
                profile.name.c_str(), profile.mpki, profile.rbl,
                profile.blp, path.c_str());
    return 0;
}
