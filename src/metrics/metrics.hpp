/**
 * @file
 * The paper's evaluation metrics (Section 6).
 */

#pragma once

#include <vector>

namespace tcm::metrics {

/** All per-workload figures of merit derived from alone/shared IPCs. */
struct WorkloadMetrics
{
    double weightedSpeedup = 0.0;  //!< sum IPC_shared / IPC_alone
    double maxSlowdown = 0.0;      //!< max IPC_alone / IPC_shared
    double harmonicSpeedup = 0.0;  //!< N / sum (IPC_alone / IPC_shared)
    std::vector<double> speedups;  //!< per-thread IPC_shared / IPC_alone
    std::vector<double> slowdowns; //!< per-thread IPC_alone / IPC_shared
};

/**
 * Compute all metrics. Threads with zero shared IPC get a slowdown
 * pinned at a large finite value so a fully starved thread shows up as
 * catastrophic unfairness instead of dividing by zero.
 */
WorkloadMetrics computeMetrics(const std::vector<double> &ipcAlone,
                               const std::vector<double> &ipcShared);

} // namespace tcm::metrics
