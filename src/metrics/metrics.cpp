#include "metrics/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace tcm::metrics {

WorkloadMetrics
computeMetrics(const std::vector<double> &ipcAlone,
               const std::vector<double> &ipcShared)
{
    assert(ipcAlone.size() == ipcShared.size());
    constexpr double kStarved = 1e6;

    WorkloadMetrics m;
    const std::size_t n = ipcAlone.size();
    m.speedups.resize(n);
    m.slowdowns.resize(n);

    double sumSpeedup = 0.0;
    double sumSlowdown = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double alone = std::max(ipcAlone[i], 1e-12);
        double speedup = ipcShared[i] / alone;
        double slowdown =
            ipcShared[i] > 0.0 ? alone / ipcShared[i] : kStarved;
        m.speedups[i] = speedup;
        m.slowdowns[i] = slowdown;
        sumSpeedup += speedup;
        sumSlowdown += slowdown;
        m.maxSlowdown = std::max(m.maxSlowdown, slowdown);
    }
    m.weightedSpeedup = sumSpeedup;
    m.harmonicSpeedup =
        sumSlowdown > 0.0 ? static_cast<double>(n) / sumSlowdown : 0.0;
    return m;
}

} // namespace tcm::metrics
