/**
 * @file
 * FR-FCFS: first-ready, first-come-first-serve (Rixner et al., ISCA-27).
 */

#pragma once

#include "sched/scheduler.hpp"

namespace tcm::sched {

/**
 * The thread-unaware baseline every modern controller descends from:
 * row-buffer-hit requests first, then oldest first. Expressed in the
 * controller's fixed prioritization engine as "no thread ranking at all".
 */
class FrFcfs : public SchedulerPolicy
{
  public:
    const char *name() const override { return "FR-FCFS"; }

    // Stateless in time and hook-free: controllers may step decoupled
    // forever without a policy barrier.
    Cycle decoupleHorizon(Cycle) const override { return kCycleNever; }
};

} // namespace tcm::sched
