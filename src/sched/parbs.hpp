/**
 * @file
 * PAR-BS: Parallelism-Aware Batch Scheduling (Mutlu & Moscibroda,
 * ISCA-35). The paper's best-fairness baseline.
 */

#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace tcm::sched {

/** PAR-BS configuration. */
struct ParBsParams
{
    int batchCap = 5; //!< Marking-Cap: marked requests per (thread, bank)
};

/**
 * Requests are grouped into batches: when no marked request remains at a
 * controller, up to batchCap of the oldest reads per (thread, bank) are
 * marked. Marked requests are strictly prioritized over unmarked ones,
 * which bounds any thread's wait to one batch (fairness). Within a
 * batch, threads are ranked shortest-job-first using the max-total rule
 * (ascending maximum per-bank load, then ascending total load), which
 * preserves intra-thread bank-level parallelism. Row hits rank above
 * thread rank inside the batch (the published rule order: BS > RH >
 * RANK > FCFS).
 *
 * Batching is per controller; the original algorithm was formulated for
 * a single controller and its batch boundary has no cross-controller
 * synchronization requirement.
 */
class ParBs : public SchedulerPolicy
{
  public:
    explicit ParBs(const ParBsParams &params);

    const char *name() const override { return "PAR-BS"; }

    void configure(int numThreads, int numChannels,
                   int banksPerChannel) override;

    void onArrival(const Request &req, Cycle now) override;
    void onDepart(const Request &req, Cycle now) override;
    void tick(Cycle now) override;

    /**
     * A batch can only form at a channel that has queued reads and no
     * marked requests left; whether that holds changes only through the
     * arrival/departure hooks, which fire at executed cycles. So: next
     * tick if any channel is batch-ready now, never otherwise.
     */
    Cycle nextEventAt(Cycle now) const override;

    /**
     * PAR-BS is the one policy whose tick work (batch formation) is
     * armed by hooks, so withholding them needs a real bound: a channel
     * with m marked requests left needs at least m column commands —
     * one per cycle — before it can possibly become batch-ready, and an
     * empty idle channel cannot become ready before its next transport
     * arrival has been admitted. Assumes, like nextEventAt, that no new
     * requests are submitted during the span (the parallel kernel
     * executes submission cycles canonically).
     */
    Cycle decoupleHorizon(Cycle now) const override;

    int
    rankOf(ChannelId ch, ThreadId thread) const override
    {
        return ranks_[ch][thread];
    }

    bool rowHitAboveRank() const override { return true; }

    /** Marked requests currently outstanding at @p ch (tests). */
    int markedRemaining(ChannelId ch) const { return markedRemaining_[ch]; }

    const ParBsParams &params() const { return params_; }

  private:
    void formBatch(ChannelId ch, Cycle now);

    ParBsParams params_;
    std::vector<int> markedRemaining_;        //!< per channel
    std::vector<int> queuedReads_;            //!< visible reads per channel
    std::vector<std::vector<int>> ranks_;     //!< [channel][thread]
};

} // namespace tcm::sched
