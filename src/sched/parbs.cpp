#include "sched/parbs.hpp"

#include <algorithm>
#include <numeric>

#include "telemetry/sink.hpp"

namespace tcm::sched {

ParBs::ParBs(const ParBsParams &params) : params_(params)
{
}

void
ParBs::configure(int numThreads, int numChannels, int banksPerChannel)
{
    SchedulerPolicy::configure(numThreads, numChannels, banksPerChannel);
    markedRemaining_.assign(numChannels, 0);
    queuedReads_.assign(numChannels, 0);
    ranks_.assign(numChannels, std::vector<int>(numThreads, 0));
}

void
ParBs::onArrival(const Request &req, Cycle)
{
    if (!req.isWrite)
        ++queuedReads_[req.channel];
}

void
ParBs::onDepart(const Request &req, Cycle now)
{
    if (!req.isWrite)
        --queuedReads_[req.channel];
    if (req.marked && !req.isWrite) {
        --markedRemaining_[req.channel];
        if (markedRemaining_[req.channel] == 0 && decisionSink_) {
            telemetry::DecisionEvent e;
            e.cycle = now;
            e.name = "parbs.batch_done";
            e.category = "sched";
            e.args = {{"channel", telemetry::jsonNumber(
                                      static_cast<std::int64_t>(
                                          req.channel))}};
            decisionSink_->onDecision(std::move(e));
        }
    }
}

void
ParBs::tick(Cycle now)
{
    for (ChannelId ch = 0; ch < numChannels_; ++ch)
        if (markedRemaining_[ch] == 0 && queues_[ch])
            formBatch(ch, now);
}

Cycle
ParBs::nextEventAt(Cycle now) const
{
    for (ChannelId ch = 0; ch < numChannels_; ++ch)
        if (markedRemaining_[ch] == 0 && queuedReads_[ch] > 0 &&
            queues_[ch])
            return now;
    return kCycleNever;
}

Cycle
ParBs::decoupleHorizon(Cycle now) const
{
    Cycle h = kCycleNever;
    for (ChannelId ch = 0; ch < numChannels_; ++ch) {
        if (!queues_[ch])
            continue;
        if (markedRemaining_[ch] > 0) {
            // m marked departures need >= m command cycles starting at
            // `now`; the earliest batch-forming tick is one later.
            h = std::min(h, now + static_cast<Cycle>(markedRemaining_[ch]));
        } else if (queuedReads_[ch] > 0) {
            // Batch-ready right now: never decouple past this tick.
            return now;
        } else {
            // Idle channel: ready only after its next queued arrival is
            // admitted (at that cycle's controller tick), so the first
            // tick that can see it is one cycle later.
            Cycle arrival = queues_[ch]->nextArrivalAt();
            if (arrival != kCycleNever)
                h = std::min(h, std::max(arrival, now) + 1);
        }
    }
    return h;
}

void
ParBs::formBatch(ChannelId ch, Cycle now)
{
    // Collect queued reads per (thread, bank).
    struct Slot
    {
        std::vector<Request *> reqs;
    };
    std::vector<Slot> slots(static_cast<std::size_t>(numThreads_) *
                            banksPerChannel_);
    bool any = false;
    queues_[ch]->forEachRead([&](Request &req) {
        slots[static_cast<std::size_t>(req.thread) * banksPerChannel_ +
              req.bank]
            .reqs.push_back(&req);
        any = true;
    });
    if (!any)
        return; // nothing to batch; ranks keep their previous values

    // Mark up to batchCap oldest requests per (thread, bank) and compute
    // each thread's per-bank and total marked load.
    std::vector<int> maxLoad(numThreads_, 0);
    std::vector<int> totalLoad(numThreads_, 0);
    int marked = 0;
    for (ThreadId t = 0; t < numThreads_; ++t) {
        for (BankId b = 0; b < banksPerChannel_; ++b) {
            auto &reqs =
                slots[static_cast<std::size_t>(t) * banksPerChannel_ + b]
                    .reqs;
            if (reqs.empty())
                continue;
            std::sort(reqs.begin(), reqs.end(),
                      [](const Request *x, const Request *y) {
                          if (x->arrivedAt != y->arrivedAt)
                              return x->arrivedAt < y->arrivedAt;
                          return x->seq < y->seq;
                      });
            int take = std::min<int>(params_.batchCap,
                                     static_cast<int>(reqs.size()));
            for (int i = 0; i < take; ++i)
                reqs[i]->marked = true;
            marked += take;
            totalLoad[t] += take;
            maxLoad[t] = std::max(maxLoad[t], take);
        }
    }
    markedRemaining_[ch] = marked;

    // Max-total ranking: lighter batch jobs rank higher.
    std::vector<ThreadId> order(numThreads_);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](ThreadId a, ThreadId b) {
        if (maxLoad[a] != maxLoad[b])
            return maxLoad[a] < maxLoad[b];
        if (totalLoad[a] != totalLoad[b])
            return totalLoad[a] < totalLoad[b];
        return a < b;
    });
    for (int i = 0; i < numThreads_; ++i)
        ranks_[ch][order[i]] = numThreads_ - 1 - i; // lightest -> highest
    bumpRankEpoch();

    if (decisionSink_) {
        telemetry::DecisionEvent e;
        e.cycle = now;
        e.name = "parbs.batch";
        e.category = "sched";
        e.args = {
            {"channel",
             telemetry::jsonNumber(static_cast<std::int64_t>(ch))},
            {"marked",
             telemetry::jsonNumber(static_cast<std::int64_t>(marked))},
            {"ranks", telemetry::jsonArray(ranks_[ch])},
        };
        decisionSink_->onDecision(std::move(e));
    }
}

} // namespace tcm::sched
