/**
 * @file
 * STFM: Stall-Time Fair Memory scheduling (Mutlu & Moscibroda, MICRO-40).
 */

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dram/timing.hpp"
#include "sched/scheduler.hpp"
#include "sched/tcm/monitor.hpp"

namespace tcm::sched {

/** STFM configuration (paper Section 6 defaults). */
struct StfmParams
{
    double fairnessThreshold = 1.1;       //!< unfairness trigger (alpha)
    Cycle intervalLength = Cycle{1} << 24; //!< statistics aging interval
    Cycle updatePeriod = 1024;            //!< rank recomputation period
    Cycle tRowPenalty = 150;              //!< tRP + tRCD, for row interference
};

/**
 * STFM estimates, in the controller, each thread's memory-related
 * slowdown S = T_shared / T_alone, where T_alone is approximated as
 * T_shared minus the extra stall caused by other threads:
 *
 *  - T_shared accumulates while the thread has outstanding reads;
 *  - interference accumulates when a bank holding this thread's requests
 *    is kept busy on behalf of another thread, and when a request that
 *    would have hit its row-buffer alone (shadow row-buffer) is serviced
 *    with an activate because another thread closed the row.
 *
 * When max(S)/min(S) exceeds FairnessThreshold, the most-slowed thread's
 * requests are prioritized; otherwise the controller behaves as FR-FCFS.
 * Statistics are halved every IntervalLength cycles so estimates track
 * phase changes.
 */
class Stfm : public SchedulerPolicy
{
  public:
    explicit Stfm(const StfmParams &params);

    const char *name() const override { return "STFM"; }

    void configure(int numThreads, int numChannels,
                   int banksPerChannel) override;

    void onArrival(const Request &req, Cycle now) override;
    void onDepart(const Request &req, Cycle now) override;
    void onCommand(const Request &req, dram::CommandKind kind, Cycle now,
                   Cycle occupancy) override;
    void tick(Cycle now) override;

    /** Timed events: next rank update or statistics-halving interval.
     *  Stall-time accrual is caught up lazily (see syncTo), so it does
     *  not constrain the horizon. */
    Cycle
    nextEventAt(Cycle) const override
    {
        return nextUpdateAt_ < nextIntervalAt_ ? nextUpdateAt_
                                               : nextIntervalAt_;
    }

    // Both timed events are pure timers (update period, halving
    // interval): hooks feed the statistics those events consume but
    // never move the boundaries, and stall accrual is partitioned
    // exactly by syncTo at hook-replay time. Decoupled stepping is
    // therefore safe up to the next timed event.
    Cycle
    decoupleHorizon(Cycle now) const override
    {
        return nextEventAt(now);
    }

    /**
     * Accrue shared stall time for cycles (lastAccruedAt_, now]. Exact
     * replacement for the per-cycle "+1 while outstanding" loop: the
     * outstanding counters only change through arrival/departure hooks,
     * which fire at executed cycles, so they are constant over any
     * skipped span; and the repeated +1.0 equals one +n in double
     * precision at these magnitudes (< 2^26 against 52 mantissa bits).
     */
    void syncTo(Cycle now) override;

    int
    rankOf(ChannelId, ThreadId thread) const override
    {
        return ranks_[thread];
    }

    /** Current slowdown estimate for @p thread (tests/benches). */
    double slowdownEstimate(ThreadId thread) const;

    const StfmParams &params() const { return params_; }

  private:
    void updateRanks(Cycle now);

    StfmParams params_;
    ThreadBankMonitor monitor_; //!< global-bank loads + shadow rows
    std::vector<std::uint64_t> outstanding_;  //!< reads in flight, global
    std::vector<double> stShared_;
    std::vector<double> interference_;
    std::unordered_set<std::uint64_t> shadowHitSeqs_;
    std::vector<int> ranks_;
    Cycle nextUpdateAt_ = 0;
    Cycle nextIntervalAt_ = 0;
    /** Stall accrued through this cycle; kCycleNever = no tick yet
     *  (the first tick accrues exactly one cycle, like the historical
     *  per-call "+1"). */
    Cycle lastAccruedAt_ = kCycleNever;
};

} // namespace tcm::sched
