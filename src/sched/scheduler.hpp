/**
 * @file
 * Shared helpers for scheduling algorithms.
 */

#pragma once

#include <vector>

#include "common/types.hpp"
#include "mem/sched_iface.hpp"

namespace tcm::sched {

using mem::CoreCounters;
using mem::QueueAccess;
using mem::Request;
using mem::SchedulerPolicy;

/**
 * Position of each element when the vector is sorted ascending: the
 * smallest value gets position 0, the largest position n-1. Exact ties
 * break by index (lower index first) so results are deterministic.
 *
 * Used for the paper's rank-based formulas: a thread with the b-th
 * *lowest* BLP has ascendingPositions(blp)[i] == b-1.
 */
std::vector<int> ascendingPositions(const std::vector<double> &values);

/**
 * Rank vector from an ordering: @p orderedThreads lists thread ids from
 * lowest priority to highest; the result maps thread id -> rank where
 * larger is higher priority, offset by @p base.
 */
std::vector<int> ranksFromOrder(const std::vector<ThreadId> &orderedThreads,
                                int numThreads, int base);

} // namespace tcm::sched
