#include "sched/ght.hpp"

#include <algorithm>

#include "telemetry/sink.hpp"

namespace tcm::sched {

Ght::Ght(const GhtParams &params) : params_(params)
{
    nextIntervalAt_ = params_.interval;
    nextRotateAt_ = params_.rotatePeriod;
}

void
Ght::configure(int numThreads, int numChannels, int banksPerChannel)
{
    SchedulerPolicy::configure(numThreads, numChannels, banksPerChannel);
    history_.assign(numThreads, std::vector<Entry>(params_.tableSize));
    intervalReads_.assign(numThreads, 0);
    intervalHits_.assign(numThreads, 0);
    boosted_.assign(numThreads, 0);
    // Before the first interval completes everyone is "intensive" with
    // no reuse history: a deterministic thread-id rotation order.
    heavyOrder_.resize(numThreads);
    for (ThreadId t = 0; t < numThreads; ++t)
        heavyOrder_[t] = t;
    ranks_.assign(numThreads, 0);
    rotateOffset_ = 0;
    rebuildRanks();
}

void
Ght::onDepart(const Request &req, Cycle)
{
    if (req.isWrite)
        return;
    ++intervalReads_[req.thread];
    // Direct-mapped lookup keyed by (channel, bank, row): a tag match is
    // row reuse; a miss evicts the slot (refCount restarts at 1).
    std::uint64_t key = (static_cast<std::uint64_t>(req.channel) << 44) ^
                        (static_cast<std::uint64_t>(req.bank) << 36) ^
                        static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(req.row));
    Entry &e = history_[req.thread][key %
                                    static_cast<std::uint64_t>(
                                        params_.tableSize)];
    if (e.refCount > 0 && e.tag == key) {
        ++intervalHits_[req.thread];
        if (e.refCount < params_.maxRefCount)
            ++e.refCount;
    } else {
        e.tag = key;
        e.refCount = 1;
    }
}

void
Ght::tick(Cycle now)
{
    bool changed = false;
    if (now >= nextIntervalAt_) {
        nextIntervalAt_ = now + params_.interval;
        reclassify(now);
        changed = true;
    }
    if (now >= nextRotateAt_) {
        nextRotateAt_ = now + params_.rotatePeriod;
        if (heavyOrder_.size() > 1) {
            rotateOffset_ = (rotateOffset_ + 1) %
                            static_cast<int>(heavyOrder_.size());
            changed = true;
        }
    }
    if (changed) {
        rebuildRanks();
        bumpRankEpoch();
    }
}

void
Ght::reclassify(Cycle now)
{
    std::uint64_t heaviest = 0;
    for (ThreadId t = 0; t < numThreads_; ++t)
        heaviest = std::max(heaviest, intervalReads_[t]);

    heavyOrder_.clear();
    for (ThreadId t = 0; t < numThreads_; ++t)
        boosted_[t] =
            intervalReads_[t] * static_cast<std::uint64_t>(
                                    params_.boostFactor) <
                    heaviest
                ? 1
                : 0;

    // Intensive threads ordered by descending reuse fraction so
    // row-local threads sit adjacent near the top of the rotation; ties
    // break by thread id for determinism. Integer cross-multiplication
    // avoids a float compare.
    for (ThreadId t = 0; t < numThreads_; ++t)
        if (!boosted_[t])
            heavyOrder_.push_back(t);
    std::stable_sort(heavyOrder_.begin(), heavyOrder_.end(),
                     [this](ThreadId a, ThreadId b) {
                         std::uint64_t lhs =
                             intervalHits_[a] *
                             std::max<std::uint64_t>(intervalReads_[b], 1);
                         std::uint64_t rhs =
                             intervalHits_[b] *
                             std::max<std::uint64_t>(intervalReads_[a], 1);
                         return lhs > rhs;
                     });
    rotateOffset_ = 0;

    if (decisionSink_) {
        std::vector<int> reads(numThreads_), hits(numThreads_),
            boostedArg(numThreads_);
        for (ThreadId t = 0; t < numThreads_; ++t) {
            reads[t] = static_cast<int>(intervalReads_[t]);
            hits[t] = static_cast<int>(intervalHits_[t]);
            boostedArg[t] = boosted_[t];
        }
        telemetry::DecisionEvent e;
        e.cycle = now;
        e.name = "ght.interval";
        e.category = "sched";
        e.args = {
            {"reads", telemetry::jsonArray(reads)},
            {"hits", telemetry::jsonArray(hits)},
            {"boosted", telemetry::jsonArray(boostedArg)},
        };
        decisionSink_->onDecision(std::move(e));
    }

    // Decay instead of reset so classification has hysteresis, and halve
    // the table's reference counts so stale rows age out (the exemplar's
    // periodic refcount decrement, batched per interval).
    for (ThreadId t = 0; t < numThreads_; ++t) {
        intervalReads_[t] /= 2;
        intervalHits_[t] /= 2;
        for (Entry &e : history_[t])
            e.refCount = static_cast<std::uint8_t>(e.refCount / 2);
    }
}

void
Ght::rebuildRanks()
{
    // Intensive threads occupy ranks [0, heavy); the rotated front of
    // heavyOrder_ gets the highest intensive rank. Boosted threads all
    // share one top band above every intensive thread — within the band
    // FR-FCFS (row-hit, then age) arbitrates, which is exactly how the
    // exemplar treats its low-traffic CPUs.
    const int heavy = static_cast<int>(heavyOrder_.size());
    for (int i = 0; i < heavy; ++i) {
        ThreadId t = heavyOrder_[(i + rotateOffset_) % heavy];
        ranks_[t] = heavy - 1 - i;
    }
    for (ThreadId t = 0; t < numThreads_; ++t)
        if (boosted_[t])
            ranks_[t] = heavy;
}

} // namespace tcm::sched
