/**
 * @file
 * Static thread-priority scheduler (for controlled experiments).
 */

#pragma once

#include <utility>
#include <vector>

#include "sched/scheduler.hpp"

namespace tcm::sched {

/**
 * Strictly prioritizes threads by a fixed rank vector (larger = higher
 * priority). This reproduces the paper's Section 2.4 case study, where
 * one thread is statically prioritized over another, and models the
 * degenerate "strict ranking" regime that makes ATLAS unfair.
 */
class FixedRank : public SchedulerPolicy
{
  public:
    /** @param ranks rank per thread id; larger means higher priority. */
    explicit FixedRank(std::vector<int> ranks) : ranks_(std::move(ranks)) {}

    const char *name() const override { return "FixedRank"; }

    // The rank vector never changes: no policy barrier ever needed.
    Cycle decoupleHorizon(Cycle) const override { return kCycleNever; }

    int
    rankOf(ChannelId, ThreadId thread) const override
    {
        return ranks_.at(thread);
    }

  private:
    std::vector<int> ranks_;
};

} // namespace tcm::sched
