#include "sched/bliss.hpp"

#include <algorithm>

#include "telemetry/sink.hpp"

namespace tcm::sched {

Bliss::Bliss(const BlissParams &params) : params_(params)
{
    nextClearAt_ = params_.clearInterval;
}

void
Bliss::configure(int numThreads, int numChannels, int banksPerChannel)
{
    SchedulerPolicy::configure(numThreads, numChannels, banksPerChannel);
    queuedReads_.assign(numChannels, 0);
    lastServed_.assign(numChannels, kNoThread);
    streak_.assign(numChannels, 0);
    blacklisted_.assign(numChannels,
                        std::vector<std::uint8_t>(numThreads, 0));
    pendingServed_.clear();
}

void
Bliss::onArrival(const Request &req, Cycle)
{
    if (!req.isWrite)
        ++queuedReads_[req.channel];
}

void
Bliss::onDepart(const Request &req, Cycle)
{
    if (req.isWrite)
        return; // write drains are bursty by design; only reads count
    --queuedReads_[req.channel];
    pendingServed_.push_back(ServedEvent{req.channel, req.thread});
}

void
Bliss::tick(Cycle now)
{
    bool changed = false;

    // Apply the served-request stream recorded since the last tick, in
    // delivery order (the deferred-hook replay preserves the serial
    // (cycle, channel) order, so every execution mode sees the same
    // stream and produces the same streaks).
    if (!pendingServed_.empty()) {
        for (const ServedEvent &ev : pendingServed_) {
            if (ev.thread == lastServed_[ev.channel]) {
                ++streak_[ev.channel];
            } else {
                lastServed_[ev.channel] = ev.thread;
                streak_[ev.channel] = 1;
            }
            if (streak_[ev.channel] >= params_.blacklistThreshold &&
                !blacklisted_[ev.channel][ev.thread]) {
                blacklisted_[ev.channel][ev.thread] = 1;
                changed = true;
                if (decisionSink_) {
                    telemetry::DecisionEvent e;
                    e.cycle = now;
                    e.name = "bliss.blacklist";
                    e.category = "sched";
                    e.args = {
                        {"channel",
                         telemetry::jsonNumber(
                             static_cast<std::int64_t>(ev.channel))},
                        {"thread",
                         telemetry::jsonNumber(
                             static_cast<std::int64_t>(ev.thread))},
                        {"streak",
                         telemetry::jsonNumber(static_cast<std::int64_t>(
                             streak_[ev.channel]))},
                    };
                    decisionSink_->onDecision(std::move(e));
                }
            }
        }
        pendingServed_.clear();
    }

    if (now >= nextClearAt_) {
        nextClearAt_ = now + params_.clearInterval;
        int cleared = blacklistedCount();
        if (cleared > 0) {
            for (auto &perThread : blacklisted_)
                std::fill(perThread.begin(), perThread.end(),
                          std::uint8_t{0});
            changed = true;
        }
        // The paper clears the *blacklist* each interval; the streak
        // counters restart with it so one long pre-boundary run cannot
        // instantly re-blacklist.
        std::fill(lastServed_.begin(), lastServed_.end(), kNoThread);
        std::fill(streak_.begin(), streak_.end(), 0);
        if (decisionSink_) {
            telemetry::DecisionEvent e;
            e.cycle = now;
            e.name = "bliss.clear";
            e.category = "sched";
            e.args = {
                {"cleared", telemetry::jsonNumber(
                                static_cast<std::int64_t>(cleared))},
            };
            decisionSink_->onDecision(std::move(e));
        }
    }

    if (changed)
        bumpRankEpoch();
}

Cycle
Bliss::nextEventAt(Cycle now) const
{
    return pendingServed_.empty() ? nextClearAt_ : now;
}

Cycle
Bliss::decoupleHorizon(Cycle now) const
{
    if (!pendingServed_.empty())
        return now;
    Cycle h = nextClearAt_;
    for (ChannelId ch = 0; ch < numChannels_; ++ch) {
        if (queuedReads_[ch] > 0)
            return now; // a departure could arm a blacklist mid-span
        if (!queues_[ch])
            continue;
        Cycle arrival = queues_[ch]->nextArrivalAt();
        if (arrival != kCycleNever)
            h = std::min(h, std::max(arrival, now) + 1);
    }
    return std::max(h, now);
}

int
Bliss::blacklistedCount() const
{
    int n = 0;
    for (const auto &perThread : blacklisted_)
        for (std::uint8_t b : perThread)
            n += b;
    return n;
}

} // namespace tcm::sched
