#include "sched/fixed_rank.hpp"

// Fully described in the header.
