#include "sched/factory.hpp"

#include <algorithm>

#include "sched/fcfs.hpp"
#include "sched/fixed_rank.hpp"
#include "sched/frfcfs.hpp"

namespace tcm::sched {

const char *
algoName(Algo algo)
{
    switch (algo) {
      case Algo::FrFcfs: return "FR-FCFS";
      case Algo::Fcfs: return "FCFS";
      case Algo::Fqm: return "FQM";
      case Algo::Stfm: return "STFM";
      case Algo::ParBs: return "PAR-BS";
      case Algo::Atlas: return "ATLAS";
      case Algo::Tcm: return "TCM";
      case Algo::FixedRank: return "FixedRank";
    }
    return "?";
}

SchedulerSpec
SchedulerSpec::frfcfs()
{
    return SchedulerSpec{};
}

SchedulerSpec
SchedulerSpec::fcfs()
{
    SchedulerSpec s;
    s.algo = Algo::Fcfs;
    return s;
}

SchedulerSpec
SchedulerSpec::fqmSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Fqm;
    return s;
}

SchedulerSpec
SchedulerSpec::stfmSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Stfm;
    return s;
}

SchedulerSpec
SchedulerSpec::parbsSpec()
{
    SchedulerSpec s;
    s.algo = Algo::ParBs;
    return s;
}

SchedulerSpec
SchedulerSpec::atlasSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Atlas;
    return s;
}

SchedulerSpec
SchedulerSpec::tcmSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Tcm;
    return s;
}

SchedulerSpec
SchedulerSpec::fixedRank(std::vector<int> ranks)
{
    SchedulerSpec s;
    s.algo = Algo::FixedRank;
    s.fixedRanks = std::move(ranks);
    return s;
}

void
SchedulerSpec::scaleToRun(Cycle totalCycles)
{
    // The TCM quantum must hold several full insertion-shuffle rotations
    // (2N steps of ShuffleInterval cycles each: ~38K cycles at 24
    // threads), so its floor is higher than a pure 1/100 scaling.
    tcm.quantum = std::max<Cycle>(50'000, totalCycles / 100);
    atlas.quantum = std::max<Cycle>(20'000, totalCycles / 10);
    // ATLAS's aging threshold is an absolute starvation timeout tied to
    // DRAM service latencies, not to how long the experiment runs, so it
    // is deliberately NOT scaled here.
    stfm.intervalLength = std::max<Cycle>(50'000, totalCycles / 6);
}

std::unique_ptr<SchedulerPolicy>
makeScheduler(const SchedulerSpec &spec, std::uint64_t seed)
{
    switch (spec.algo) {
      case Algo::FrFcfs:
        return std::make_unique<FrFcfs>();
      case Algo::Fcfs:
        return std::make_unique<Fcfs>();
      case Algo::Fqm:
        return std::make_unique<Fqm>(spec.fqm);
      case Algo::Stfm:
        return std::make_unique<Stfm>(spec.stfm);
      case Algo::ParBs:
        return std::make_unique<ParBs>(spec.parbs);
      case Algo::Atlas:
        return std::make_unique<Atlas>(spec.atlas);
      case Algo::Tcm:
        return std::make_unique<Tcm>(spec.tcm, seed);
      case Algo::FixedRank:
        return std::make_unique<FixedRank>(spec.fixedRanks);
    }
    return nullptr;
}

} // namespace tcm::sched
