#include "sched/factory.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/cp_frfcfs.hpp"
#include "sched/fcfs.hpp"
#include "sched/fixed_rank.hpp"
#include "sched/frfcfs.hpp"

namespace tcm::sched {

namespace {

/** The registered (name, algo) vocabulary, in presentation order. */
struct NamedAlgo
{
    const char *name;
    Algo algo;
};

constexpr NamedAlgo kRegistry[] = {
    {"frfcfs", Algo::FrFcfs},   {"fcfs", Algo::Fcfs},
    {"fqm", Algo::Fqm},         {"stfm", Algo::Stfm},
    {"parbs", Algo::ParBs},     {"atlas", Algo::Atlas},
    {"tcm", Algo::Tcm},         {"bliss", Algo::Bliss},
    {"ght", Algo::Ght},         {"frfcfs-cp", Algo::CpFrFcfs},
    {"tournament", Algo::Tournament},
};

std::string
vocabulary()
{
    std::string names;
    for (const NamedAlgo &entry : kRegistry) {
        if (!names.empty())
            names += ", ";
        names += entry.name;
    }
    return names;
}

} // namespace

const char *
algoName(Algo algo)
{
    switch (algo) {
      case Algo::FrFcfs: return "FR-FCFS";
      case Algo::Fcfs: return "FCFS";
      case Algo::Fqm: return "FQM";
      case Algo::Stfm: return "STFM";
      case Algo::ParBs: return "PAR-BS";
      case Algo::Atlas: return "ATLAS";
      case Algo::Tcm: return "TCM";
      case Algo::FixedRank: return "FixedRank";
      case Algo::Bliss: return "BLISS";
      case Algo::Ght: return "GHT";
      case Algo::CpFrFcfs: return "FRFCFS-CP";
      case Algo::Tournament: return "Tournament";
    }
    return "?";
}

SchedulerSpec
SchedulerSpec::frfcfs()
{
    return SchedulerSpec{};
}

SchedulerSpec
SchedulerSpec::fcfs()
{
    SchedulerSpec s;
    s.algo = Algo::Fcfs;
    return s;
}

SchedulerSpec
SchedulerSpec::fqmSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Fqm;
    return s;
}

SchedulerSpec
SchedulerSpec::stfmSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Stfm;
    return s;
}

SchedulerSpec
SchedulerSpec::parbsSpec()
{
    SchedulerSpec s;
    s.algo = Algo::ParBs;
    return s;
}

SchedulerSpec
SchedulerSpec::atlasSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Atlas;
    return s;
}

SchedulerSpec
SchedulerSpec::tcmSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Tcm;
    return s;
}

SchedulerSpec
SchedulerSpec::fixedRank(std::vector<int> ranks)
{
    SchedulerSpec s;
    s.algo = Algo::FixedRank;
    s.fixedRanks = std::move(ranks);
    return s;
}

SchedulerSpec
SchedulerSpec::blissSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Bliss;
    return s;
}

SchedulerSpec
SchedulerSpec::ghtSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Ght;
    return s;
}

SchedulerSpec
SchedulerSpec::cpFrfcfsSpec()
{
    SchedulerSpec s;
    s.algo = Algo::CpFrFcfs;
    return s;
}

SchedulerSpec
SchedulerSpec::tournamentSpec()
{
    SchedulerSpec s;
    s.algo = Algo::Tournament;
    return s;
}

void
SchedulerSpec::scaleToRun(Cycle totalCycles)
{
    // The TCM quantum must hold several full insertion-shuffle rotations
    // (2N steps of ShuffleInterval cycles each: ~38K cycles at 24
    // threads), so its floor is higher than a pure 1/100 scaling.
    tcm.quantum = std::max<Cycle>(50'000, totalCycles / 100);
    atlas.quantum = std::max<Cycle>(20'000, totalCycles / 10);
    // ATLAS's aging threshold is an absolute starvation timeout tied to
    // DRAM service latencies, not to how long the experiment runs, so it
    // is deliberately NOT scaled here. Same for BLISS's clearing
    // interval (an interference time constant) and GHT's rotation
    // period (a locality-scale constant).
    stfm.intervalLength = std::max<Cycle>(50'000, totalCycles / 6);
    ght.interval = std::max<Cycle>(50'000, totalCycles / 8);
    // The tournament quantum matches TCM's scaling so one exploration
    // rotation plus an exploitation stretch fits in every run.
    tournament.quantum = std::max<Cycle>(50'000, totalCycles / 100);
}

const std::vector<std::string> &
policyNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const NamedAlgo &entry : kRegistry)
            v.emplace_back(entry.name);
        return v;
    }();
    return names;
}

SpecLookup
specByName(const std::string &name)
{
    SpecLookup out;
    for (const NamedAlgo &entry : kRegistry) {
        if (name == entry.name) {
            out.ok = true;
            out.spec.algo = entry.algo;
            return out;
        }
    }
    out.error = "unknown scheduler '" + name +
                "'; valid names: " + vocabulary();
    return out;
}

std::unique_ptr<SchedulerPolicy>
makeScheduler(const SchedulerSpec &spec, std::uint64_t seed)
{
    switch (spec.algo) {
      case Algo::FrFcfs:
        return std::make_unique<FrFcfs>();
      case Algo::Fcfs:
        return std::make_unique<Fcfs>();
      case Algo::Fqm:
        return std::make_unique<Fqm>(spec.fqm);
      case Algo::Stfm:
        return std::make_unique<Stfm>(spec.stfm);
      case Algo::ParBs:
        return std::make_unique<ParBs>(spec.parbs);
      case Algo::Atlas:
        return std::make_unique<Atlas>(spec.atlas);
      case Algo::Tcm:
        return std::make_unique<Tcm>(spec.tcm, seed);
      case Algo::FixedRank:
        return std::make_unique<FixedRank>(spec.fixedRanks);
      case Algo::Bliss:
        return std::make_unique<Bliss>(spec.bliss);
      case Algo::Ght:
        return std::make_unique<Ght>(spec.ght);
      case Algo::CpFrFcfs:
        return std::make_unique<CpFrFcfs>();
      case Algo::Tournament: {
        if (spec.tournamentCandidates.empty())
            throw std::invalid_argument(
                "tournament needs at least one candidate");
        std::vector<std::unique_ptr<SchedulerPolicy>> candidates;
        for (Algo candidate : spec.tournamentCandidates) {
            switch (candidate) {
              case Algo::ParBs:
              case Algo::FixedRank:
              case Algo::CpFrFcfs:
              case Algo::Tournament:
                // PAR-BS would mark requests while shadowed (leaking
                // into the controllers' marked tier), FixedRank has no
                // default ranks, FRFCFS-CP's page policy is fixed at
                // construction, and nesting tournaments is pointless.
                throw std::invalid_argument(
                    std::string("invalid tournament candidate '") +
                    algoName(candidate) + "'");
              default:
                break;
            }
            SchedulerSpec sub = spec;
            sub.algo = candidate;
            candidates.push_back(makeScheduler(sub, seed));
        }
        return std::make_unique<Tournament>(std::move(candidates),
                                            spec.tournament);
      }
    }
    throw std::invalid_argument(
        "unknown scheduler algorithm; valid names: " + vocabulary());
}

std::unique_ptr<SchedulerPolicy>
makeScheduler(const std::string &name, std::uint64_t seed,
              std::string *error)
{
    SpecLookup lookup = specByName(name);
    if (!lookup.ok) {
        if (error != nullptr)
            *error = lookup.error;
        return nullptr;
    }
    return makeScheduler(lookup.spec, seed);
}

} // namespace tcm::sched
