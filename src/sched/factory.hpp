/**
 * @file
 * Scheduler specification and construction.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/atlas.hpp"
#include "sched/bliss.hpp"
#include "sched/fqm.hpp"
#include "sched/ght.hpp"
#include "sched/parbs.hpp"
#include "sched/scheduler.hpp"
#include "sched/stfm.hpp"
#include "sched/tcm/tcm.hpp"
#include "sched/tournament.hpp"

namespace tcm::sched {

/** Which algorithm a SchedulerSpec names. */
enum class Algo
{
    FrFcfs,
    Fcfs,
    Fqm,
    Stfm,
    ParBs,
    Atlas,
    Tcm,
    FixedRank,
    Bliss,
    Ght,
    CpFrFcfs,
    Tournament,
};

/** Human-readable algorithm name. */
const char *algoName(Algo algo);

/**
 * A value-type description of a scheduler, so experiments can sweep
 * parameters and construct fresh policy instances per run.
 */
struct SchedulerSpec
{
    Algo algo = Algo::FrFcfs;
    FqmParams fqm;
    StfmParams stfm;
    ParBsParams parbs;
    AtlasParams atlas;
    TcmParams tcm;
    BlissParams bliss;
    GhtParams ght;
    TournamentParams tournament;
    std::vector<int> fixedRanks; //!< for Algo::FixedRank

    /**
     * Candidate algorithms for Algo::Tournament, built from this spec's
     * own per-algorithm parameter blocks (so scaleToRun scales the
     * candidates too). Restricted to non-marking, non-meta policies —
     * makeScheduler rejects PAR-BS (shadow batch marking would leak
     * into the controllers' marked tier), FixedRank, FRFCFS-CP (page
     * policy is fixed at construction) and nested tournaments.
     */
    std::vector<Algo> tournamentCandidates = {Algo::Tcm, Algo::Atlas,
                                              Algo::Bliss};

    /** @{ Convenience constructors with the paper's defaults. */
    static SchedulerSpec frfcfs();
    static SchedulerSpec fcfs();
    static SchedulerSpec fqmSpec();
    static SchedulerSpec stfmSpec();
    static SchedulerSpec parbsSpec();
    static SchedulerSpec atlasSpec();
    static SchedulerSpec tcmSpec();
    static SchedulerSpec fixedRank(std::vector<int> ranks);
    static SchedulerSpec blissSpec();
    static SchedulerSpec ghtSpec();
    static SchedulerSpec cpFrfcfsSpec();
    static SchedulerSpec tournamentSpec();
    /** @} */

    /**
     * Scale time-based parameters from the paper's 100M-cycle runs to a
     * run of @p totalCycles: TCM quantum = total/100, ATLAS quantum =
     * total/10, ATLAS aging = total/1000, STFM interval = total/6, GHT
     * interval = total/8, tournament quantum = total/100 — all with
     * sane floors. ShuffleInterval, BLISS's clearing interval and GHT's
     * rotation period are locality/interference-scale constants and are
     * left alone.
     */
    void scaleToRun(Cycle totalCycles);

    /** Display name ("TCM", "ATLAS", ...). */
    const char *name() const { return algoName(algo); }
};

/**
 * Every factory-registered policy name, lowercase — the vocabulary of
 * specByName / makeScheduler(name) / `tools/sweep --schedulers` and the
 * population the conformance suite iterates. FixedRank is deliberately
 * absent: it needs a caller-supplied rank vector and exists only for
 * controlled experiments.
 */
const std::vector<std::string> &policyNames();

/** specByName result: a spec, or a structured error naming the valid
 *  vocabulary. */
struct SpecLookup
{
    bool ok = false;
    SchedulerSpec spec;
    std::string error; //!< set when !ok; lists every valid policy name
};

/** Spec (paper defaults) for a lowercase registered name. Unknown names
 *  return ok == false with an error message listing the vocabulary. */
SpecLookup specByName(const std::string &name);

/**
 * Construct a fresh policy instance from a spec. Throws
 * std::invalid_argument (message lists the valid policy names) on an
 * out-of-range algo, and on invalid tournament candidate lists.
 */
std::unique_ptr<SchedulerPolicy> makeScheduler(const SchedulerSpec &spec,
                                               std::uint64_t seed);

/**
 * Construct by registered name. On an unknown name returns nullptr and,
 * when @p error is non-null, stores a message listing every valid name.
 */
std::unique_ptr<SchedulerPolicy> makeScheduler(const std::string &name,
                                               std::uint64_t seed,
                                               std::string *error = nullptr);

} // namespace tcm::sched
