/**
 * @file
 * Scheduler specification and construction.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/atlas.hpp"
#include "sched/fqm.hpp"
#include "sched/parbs.hpp"
#include "sched/scheduler.hpp"
#include "sched/stfm.hpp"
#include "sched/tcm/tcm.hpp"

namespace tcm::sched {

/** Which algorithm a SchedulerSpec names. */
enum class Algo
{
    FrFcfs,
    Fcfs,
    Fqm,
    Stfm,
    ParBs,
    Atlas,
    Tcm,
    FixedRank,
};

/** Human-readable algorithm name. */
const char *algoName(Algo algo);

/**
 * A value-type description of a scheduler, so experiments can sweep
 * parameters and construct fresh policy instances per run.
 */
struct SchedulerSpec
{
    Algo algo = Algo::FrFcfs;
    FqmParams fqm;
    StfmParams stfm;
    ParBsParams parbs;
    AtlasParams atlas;
    TcmParams tcm;
    std::vector<int> fixedRanks; //!< for Algo::FixedRank

    /** @{ Convenience constructors with the paper's defaults. */
    static SchedulerSpec frfcfs();
    static SchedulerSpec fcfs();
    static SchedulerSpec fqmSpec();
    static SchedulerSpec stfmSpec();
    static SchedulerSpec parbsSpec();
    static SchedulerSpec atlasSpec();
    static SchedulerSpec tcmSpec();
    static SchedulerSpec fixedRank(std::vector<int> ranks);
    /** @} */

    /**
     * Scale time-based parameters from the paper's 100M-cycle runs to a
     * run of @p totalCycles: TCM quantum = total/100, ATLAS quantum =
     * total/10, ATLAS aging = total/1000, STFM interval = total/6 — all
     * with sane floors. ShuffleInterval is a locality-scale constant and
     * is left alone.
     */
    void scaleToRun(Cycle totalCycles);

    /** Display name ("TCM", "ATLAS", ...). */
    const char *name() const { return algoName(algo); }
};

/** Construct a fresh policy instance from a spec. */
std::unique_ptr<SchedulerPolicy> makeScheduler(const SchedulerSpec &spec,
                                               std::uint64_t seed);

} // namespace tcm::sched
