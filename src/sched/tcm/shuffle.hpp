/**
 * @file
 * Priority-order shuffling for the bandwidth-sensitive cluster.
 */

#pragma once

#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"

namespace tcm::sched {

/** Which shuffling algorithm the bandwidth-sensitive cluster uses. */
enum class ShuffleMode
{
    Dynamic,   //!< TCM: insertion when heterogeneous, random otherwise
    Insertion, //!< always insertion shuffle (Algorithm 2)
    Random,    //!< always a fresh random permutation
    RoundRobin //!< rotate the order by one position
};

/** Human-readable mode name. */
const char *shuffleModeName(ShuffleMode mode);

/**
 * Maintains the priority order of the bandwidth-sensitive cluster and
 * advances it one step per ShuffleInterval.
 *
 * The order is a vector of thread ids from lowest priority (front) to
 * highest priority (back). Insertion shuffle follows the paper's
 * Algorithm 2 exactly: starting from the niceness-ascending order
 * (nicest thread at the highest-priority position), a first phase runs
 * decSort(i..N) for i = N down to 1 and a second phase runs
 * incSort(1..i) for i = 1 to N, one sort per interval, then repeats.
 * The intermediate states visit the permutation sequence of Figure 3(b),
 * keeping the least nice thread at low priority most of the time.
 */
class ShuffleState
{
  public:
    /**
     * @param threads   cluster members
     * @param niceness  per-thread-id niceness values
     * @param weights   per-thread-id OS weights (all 1 = unweighted)
     * @param mode      algorithm (Dynamic must be resolved by the caller
     *                  to Insertion or Random before constructing)
     * @param rng       randomness source for Random mode
     */
    ShuffleState(std::vector<ThreadId> threads,
                 const std::vector<double> &niceness,
                 const std::vector<int> &weights, ShuffleMode mode,
                 Pcg32 *rng);

    /** Advance one ShuffleInterval. */
    void step();

    /**
     * Refresh the niceness values (new quantum, same cluster members)
     * without restarting the rotation. Keeping the rotation phase across
     * quanta matters when a quantum holds only a few full rotations:
     * restarting would pin every thread to the same schedule each
     * quantum and reintroduce systematic unfairness.
     */
    void updateNiceness(const std::vector<double> &niceness);

    /** Current order: index 0 = lowest priority, back = highest. */
    const std::vector<ThreadId> &order() const { return order_; }

    ShuffleMode mode() const { return mode_; }

  private:
    void incSort(int lo, int hi);
    void decSort(int lo, int hi);
    void randomPermutation();
    void weightedPermutation();
    bool weighted() const;

    std::vector<ThreadId> order_;
    std::vector<double> niceness_;
    std::vector<int> weights_;
    ShuffleMode mode_;
    Pcg32 *rng_;

    // Insertion-shuffle cursor: phase 0 runs i = N-1 .. 0 (decSort),
    // phase 1 runs i = 0 .. N-1 (incSort), 0-based.
    int phase_ = 0;
    int cursor_ = 0;
};

} // namespace tcm::sched
