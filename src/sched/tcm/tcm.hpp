/**
 * @file
 * Thread Cluster Memory scheduling (TCM) — the paper's contribution.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hpp"
#include "sched/scheduler.hpp"
#include "sched/tcm/clustering.hpp"
#include "sched/tcm/monitor.hpp"
#include "sched/tcm/shuffle.hpp"

namespace tcm::sched {

/** TCM configuration (paper Section 6 defaults, scaled by experiments). */
struct TcmParams
{
    Cycle quantum = 1'000'000;   //!< quantum length in cycles
    Cycle shuffleInterval = 800; //!< cycles between shuffle steps

    /**
     * ClusterThresh numerator: the latency-sensitive cluster receives
     * (numerator / numThreads) of the previous quantum's total bandwidth
     * usage (paper default 4/24 on 24 threads). clusterThreshOverride,
     * when >= 0, sets the fraction directly (for the Figure 6 sweep).
     */
    double clusterThreshNumerator = 4.0;
    double clusterThreshOverride = -1.0;

    /** Min BLP/RBL spread (fraction of max) to use insertion shuffle. */
    double shuffleAlgoThresh = 0.1;

    /** Shuffling algorithm; Dynamic is the full TCM policy. */
    ShuffleMode shuffleMode = ShuffleMode::Dynamic;

    /**
     * The paper's Algorithm 2 pseudocode is ambiguous about rank
     * direction (its prose says nicer threads must be "prioritized more
     * often", while a literal reading of the pseudocode gives the least
     * nice thread the most time at the top). true = resolve in favour of
     * the prose (nicest thread anchors the top half of the rotation);
     * false = literal pseudocode reading. bench_table6_shuffling
     * compares both empirically.
     */
    bool nicestAtTop = true;
};

/**
 * The TCM algorithm:
 *  - every quantum, clusters threads by memory intensity under a
 *    bandwidth-usage budget (Algorithm 1),
 *  - strictly prioritizes the latency-sensitive cluster, ranked by
 *    ascending weight-scaled MPKI,
 *  - within the bandwidth-sensitive cluster, shuffles the priority order
 *    every ShuffleInterval using insertion shuffle over the niceness
 *    ranking, falling back to random shuffle for homogeneous clusters
 *    (ShuffleAlgoThresh), and
 *  - honors OS thread weights by scaling MPKI in the latency cluster and
 *    by weighted shuffling in the bandwidth cluster (Section 3.6).
 *
 * Monitoring (MPKI, shadow-row RBL, sampled BLP, service time) follows
 * Section 3.4; the per-quantum aggregation across controllers models the
 * paper's meta-controller.
 */
class Tcm : public SchedulerPolicy
{
  public:
    explicit Tcm(const TcmParams &params, std::uint64_t seed = 1);

    const char *name() const override { return "TCM"; }

    void configure(int numThreads, int numChannels,
                   int banksPerChannel) override;

    /** OS-assigned weights; must be called after configure(). */
    void setThreadWeights(const std::vector<int> &weights) override;

    void onArrival(const Request &req, Cycle now) override;
    void onDepart(const Request &req, Cycle now) override;
    void onCommand(const Request &req, dram::CommandKind kind, Cycle now,
                   Cycle occupancy) override;
    void tick(Cycle now) override;

    /** Timed events: next quantum boundary or shuffle step. */
    Cycle
    nextEventAt(Cycle) const override
    {
        return std::min(nextQuantumAt_, nextShuffleAt_);
    }

    // Quantum and shuffle clocks are pure timers: hooks feed the
    // monitor the next boundary consumes but never move a boundary, so
    // decoupled stepping (hooks deferred) is safe up to the next one.
    Cycle
    decoupleHorizon(Cycle now) const override
    {
        return nextEventAt(now);
    }

    int
    rankOf(ChannelId, ThreadId thread) const override
    {
        return ranks_[thread];
    }

    // -- introspection (tests, benches) -------------------------------------

    const std::vector<ThreadId> &latencyCluster() const { return cluster_.latency; }
    const std::vector<ThreadId> &bandwidthCluster() const { return cluster_.bandwidth; }
    const std::vector<double> &lastNiceness() const { return niceness_; }
    const std::vector<double> &lastMpki() const { return mpki_; }

    /** Shuffle algorithm in effect this quantum. */
    ShuffleMode activeShuffleMode() const;

    const TcmParams &params() const { return params_; }

  private:
    void quantumBoundary(Cycle now);
    void rebuildRanks();

    TcmParams params_;
    Pcg32 rng_;
    ThreadBankMonitor monitor_; //!< global-bank view (meta-controller)
    std::vector<int> weights_;

    Cycle nextQuantumAt_ = 0;
    Cycle nextShuffleAt_ = 0;

    // Last boundary's core-counter baselines (for per-quantum MPKI).
    std::vector<std::uint64_t> baseInstructions_;
    std::vector<std::uint64_t> baseMisses_;

    ClusterResult cluster_;
    std::vector<double> mpki_;
    std::vector<double> niceness_;
    std::unique_ptr<ShuffleState> shuffle_;
    std::vector<int> ranks_;
};

} // namespace tcm::sched
