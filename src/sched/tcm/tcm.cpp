#include "sched/tcm/tcm.hpp"

#include <algorithm>
#include <cassert>

#include "sched/tcm/niceness.hpp"
#include "telemetry/sink.hpp"

namespace tcm::sched {

Tcm::Tcm(const TcmParams &params, std::uint64_t seed)
    : params_(params), rng_(seed, 0x7c3deadbeef1ULL)
{
    nextQuantumAt_ = 0; // cluster immediately on the first tick
    nextShuffleAt_ = params_.shuffleInterval;
}

void
Tcm::configure(int numThreads, int numChannels, int banksPerChannel)
{
    SchedulerPolicy::configure(numThreads, numChannels, banksPerChannel);
    // One logical monitor over all banks in the system: the per-channel
    // counters of Table 2 feed the meta-controller, which reconstructs
    // the system-wide view modelled here directly.
    monitor_.configure(numThreads, numChannels * banksPerChannel,
                       banksPerChannel);
    weights_.assign(numThreads, 1);
    baseInstructions_.assign(numThreads, 0);
    baseMisses_.assign(numThreads, 0);
    ranks_.assign(numThreads, 0);
    mpki_.assign(numThreads, 0.0);
    niceness_.assign(numThreads, 0.0);
}

void
Tcm::setThreadWeights(const std::vector<int> &weights)
{
    assert(static_cast<int>(weights.size()) == numThreads_);
    weights_ = weights;
    for ([[maybe_unused]] int w : weights_)
        assert(w >= 1);
}

void
Tcm::onArrival(const Request &req, Cycle now)
{
    monitor_.onArrival(req, now);
}

void
Tcm::onDepart(const Request &req, Cycle now)
{
    monitor_.onDepart(req, now);
}

void
Tcm::onCommand(const Request &req, dram::CommandKind, Cycle,
               Cycle occupancy)
{
    monitor_.addService(req.thread, occupancy);
}

ShuffleMode
Tcm::activeShuffleMode() const
{
    return shuffle_ ? shuffle_->mode() : ShuffleMode::Random;
}

void
Tcm::quantumBoundary(Cycle now)
{
    // --- Meta-controller aggregation (Section 3.4) -------------------------
    ThreadBankMonitor::Snapshot snap = monitor_.snapshot(now);
    monitor_.reset(now);
    const std::vector<std::uint64_t> &bwUsage = snap.serviceCycles;
    const std::vector<double> &blp = snap.blp;
    const std::vector<double> &rbl = snap.rbl;

    // Per-quantum MPKI from core counters, scaled by thread weight so a
    // heavier latency-sensitive thread ranks higher (Section 3.6).
    std::vector<double> scaledMpki(numThreads_, 0.0);
    for (ThreadId t = 0; t < numThreads_; ++t) {
        std::uint64_t insts = 0, misses = 0;
        if (coreCounters_) {
            const auto &c = (*coreCounters_)[t];
            insts = c.instructions - baseInstructions_[t];
            misses = c.readMisses - baseMisses_[t];
            baseInstructions_[t] = c.instructions;
            baseMisses_[t] = c.readMisses;
        }
        mpki_[t] = 1000.0 * static_cast<double>(misses) /
                   static_cast<double>(std::max<std::uint64_t>(insts, 1));
        scaledMpki[t] = mpki_[t] / weights_[t];
    }

    // --- Clustering (Algorithm 1) ------------------------------------------
    double thresh = params_.clusterThreshOverride >= 0.0
                        ? params_.clusterThreshOverride
                        : params_.clusterThreshNumerator / numThreads_;
    cluster_ = clusterThreads(scaledMpki, bwUsage, thresh);

    // --- Niceness and shuffle-algorithm selection (Section 3.3) ------------
    niceness_ = computeNiceness(blp, rbl, cluster_.bandwidth, numThreads_);

    ShuffleMode mode = params_.shuffleMode;
    if (mode == ShuffleMode::Dynamic) {
        double maxDBlp = 0.0, maxDRbl = 0.0;
        for (ThreadId a : cluster_.bandwidth) {
            for (ThreadId b : cluster_.bandwidth) {
                maxDBlp = std::max(maxDBlp, blp[a] - blp[b]);
                maxDRbl = std::max(maxDRbl, rbl[a] - rbl[b]);
            }
        }
        double totalBanks =
            static_cast<double>(numChannels_) * banksPerChannel_;
        bool heterogeneous =
            maxDBlp > params_.shuffleAlgoThresh * totalBanks &&
            maxDRbl > params_.shuffleAlgoThresh;
        mode = heterogeneous ? ShuffleMode::Insertion : ShuffleMode::Random;
    }

    // Algorithm 2 is expressed over an array whose back is the highest
    // rank and whose sorts order by ascending niceness. The nicest-at-top
    // resolution (see TcmParams::nicestAtTop) runs the same machine in
    // mirrored coordinates: negate niceness and read ranks from the
    // front (rebuildRanks flips the mapping).
    std::vector<double> shuffleKey = niceness_;
    if (params_.nicestAtTop)
        for (double &v : shuffleKey)
            v = -v;

    // Keep the rotation phase across quanta when the cluster membership
    // and algorithm are unchanged; only the niceness values refresh.
    bool sameCluster = shuffle_ && shuffle_->mode() == mode &&
                       shuffle_->order().size() == cluster_.bandwidth.size();
    if (sameCluster) {
        std::vector<ThreadId> sortedOld = shuffle_->order();
        std::vector<ThreadId> sortedNew = cluster_.bandwidth;
        std::sort(sortedOld.begin(), sortedOld.end());
        std::sort(sortedNew.begin(), sortedNew.end());
        sameCluster = sortedOld == sortedNew;
    }
    if (sameCluster) {
        shuffle_->updateNiceness(shuffleKey);
    } else {
        shuffle_ = std::make_unique<ShuffleState>(cluster_.bandwidth,
                                                  shuffleKey, weights_, mode,
                                                  &rng_);
    }
    rebuildRanks();

    if (decisionSink_) {
        telemetry::DecisionEvent e;
        e.cycle = now;
        e.name = "tcm.quantum";
        e.category = "sched";
        e.args = {
            {"latency_cluster", telemetry::jsonArray(cluster_.latency)},
            {"bandwidth_cluster", telemetry::jsonArray(cluster_.bandwidth)},
            {"mpki", telemetry::jsonArray(mpki_)},
            {"niceness", telemetry::jsonArray(niceness_)},
            {"shuffle_mode",
             telemetry::jsonString(shuffleModeName(mode))},
            {"cluster_thresh", telemetry::jsonNumber(thresh)},
            {"ranks", telemetry::jsonArray(ranks_)},
        };
        decisionSink_->onDecision(std::move(e));
    }

    nextQuantumAt_ = now + params_.quantum;
    nextShuffleAt_ = now + params_.shuffleInterval;
}

void
Tcm::rebuildRanks()
{
    // Bandwidth-sensitive cluster: ranks 0 .. K-1 from the shuffle order
    // (front = lowest priority). Latency-sensitive cluster: ranks K .. N-1,
    // with the lowest-MPKI thread highest (cluster_.latency is sorted by
    // ascending scaled MPKI, so reverse it: last = highest MPKI = lowest
    // latency-cluster rank).
    std::fill(ranks_.begin(), ranks_.end(), 0);
    const std::vector<ThreadId> &order = shuffle_->order();
    const int k = static_cast<int>(order.size());
    for (int i = 0; i < k; ++i)
        ranks_[order[i]] = params_.nicestAtTop ? k - 1 - i : i;

    int base = static_cast<int>(order.size());
    const std::vector<ThreadId> &lat = cluster_.latency;
    for (std::size_t i = 0; i < lat.size(); ++i) {
        // lat[0] has the lowest MPKI -> highest rank overall.
        ranks_[lat[i]] = base + static_cast<int>(lat.size() - 1 - i);
    }
    bumpRankEpoch();
}

void
Tcm::tick(Cycle now)
{
    if (now >= nextQuantumAt_) {
        quantumBoundary(now);
        return;
    }
    if (now >= nextShuffleAt_) {
        if (shuffle_ && shuffle_->order().size() > 1) {
            shuffle_->step();
            rebuildRanks();
            if (decisionSink_) {
                telemetry::DecisionEvent e;
                e.cycle = now;
                e.name = "tcm.shuffle";
                e.category = "sched";
                e.args = {
                    {"order", telemetry::jsonArray(shuffle_->order())},
                    {"ranks", telemetry::jsonArray(ranks_)},
                };
                decisionSink_->onDecision(std::move(e));
            }
        }
        nextShuffleAt_ += params_.shuffleInterval;
    }
}

} // namespace tcm::sched
