/**
 * @file
 * TCM's niceness metric (paper Section 3.3).
 */

#pragma once

#include <vector>

#include "common/types.hpp"

namespace tcm::sched {

/**
 * Niceness of each thread in the bandwidth-sensitive cluster:
 *
 *     Niceness_i = rank_by_BLP(i) - rank_by_RBL(i)
 *
 * where rank_by_X(i) counts how many cluster members have a *lower* X
 * than thread i. A thread with high bank-level parallelism is fragile
 * (nice: it suffers when banks are congested); a thread with high
 * row-buffer locality is hostile (not nice: it congests banks). So
 * niceness rises with relative BLP and falls with relative RBL —
 * the prose semantics of the paper's formula.
 *
 * @return niceness per thread id (threads outside @p cluster get 0).
 */
std::vector<double> computeNiceness(const std::vector<double> &blp,
                                    const std::vector<double> &rbl,
                                    const std::vector<ThreadId> &cluster,
                                    int numThreads);

} // namespace tcm::sched
