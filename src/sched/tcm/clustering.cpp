#include "sched/tcm/clustering.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace tcm::sched {

ClusterResult
clusterThreads(const std::vector<double> &scaledMpki,
               const std::vector<std::uint64_t> &bwUsage,
               double clusterThresh)
{
    const int n = static_cast<int>(scaledMpki.size());
    ClusterResult result;

    std::uint64_t total = std::accumulate(bwUsage.begin(), bwUsage.end(),
                                          std::uint64_t{0});
    if (total == 0) {
        result.bandwidth.resize(n);
        std::iota(result.bandwidth.begin(), result.bandwidth.end(), 0);
        return result;
    }

    std::vector<ThreadId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](ThreadId a, ThreadId b) {
        if (scaledMpki[a] != scaledMpki[b])
            return scaledMpki[a] < scaledMpki[b];
        return a < b;
    });

    double budget = clusterThresh * static_cast<double>(total);
    double sum = 0.0;
    std::size_t i = 0;
    for (; i < order.size(); ++i) {
        ThreadId t = order[i];
        sum += static_cast<double>(bwUsage[t]);
        if (sum <= budget)
            result.latency.push_back(t);
        else
            break;
    }
    for (; i < order.size(); ++i)
        result.bandwidth.push_back(order[i]);
    return result;
}

} // namespace tcm::sched
