#include "sched/tcm/shuffle.hpp"

#include <algorithm>
#include <cassert>

namespace tcm::sched {

const char *
shuffleModeName(ShuffleMode mode)
{
    switch (mode) {
      case ShuffleMode::Dynamic: return "dynamic";
      case ShuffleMode::Insertion: return "insertion";
      case ShuffleMode::Random: return "random";
      case ShuffleMode::RoundRobin: return "round-robin";
    }
    return "?";
}

ShuffleState::ShuffleState(std::vector<ThreadId> threads,
                           const std::vector<double> &niceness,
                           const std::vector<int> &weights,
                           ShuffleMode mode, Pcg32 *rng)
    : order_(std::move(threads)),
      niceness_(niceness),
      weights_(weights),
      mode_(mode),
      rng_(rng)
{
    assert(mode_ != ShuffleMode::Dynamic && "resolve Dynamic before use");
    // Initialization of Algorithm 2: nicest thread highest ranked.
    incSort(0, static_cast<int>(order_.size()) - 1);
    phase_ = 0;
    cursor_ = static_cast<int>(order_.size()) - 1;
}

bool
ShuffleState::weighted() const
{
    if (order_.empty())
        return false;
    int w0 = weights_[order_[0]];
    for (ThreadId t : order_)
        if (weights_[t] != w0)
            return true;
    return false;
}

void
ShuffleState::incSort(int lo, int hi)
{
    if (lo >= hi)
        return;
    std::stable_sort(order_.begin() + lo, order_.begin() + hi + 1,
                     [&](ThreadId a, ThreadId b) {
                         if (niceness_[a] != niceness_[b])
                             return niceness_[a] < niceness_[b];
                         return a < b;
                     });
}

void
ShuffleState::decSort(int lo, int hi)
{
    if (lo >= hi)
        return;
    std::stable_sort(order_.begin() + lo, order_.begin() + hi + 1,
                     [&](ThreadId a, ThreadId b) {
                         if (niceness_[a] != niceness_[b])
                             return niceness_[a] > niceness_[b];
                         return a > b;
                     });
}

void
ShuffleState::randomPermutation()
{
    // Fisher-Yates driven by the deterministic PCG stream.
    for (int i = static_cast<int>(order_.size()) - 1; i > 0; --i) {
        int j = static_cast<int>(rng_->nextBelow(i + 1));
        std::swap(order_[i], order_[j]);
    }
}

void
ShuffleState::weightedPermutation()
{
    // Fill from the highest-priority position down, picking each thread
    // with probability proportional to its weight: the time a thread
    // spends at the top is then proportional to its weight (Section 3.6).
    std::vector<ThreadId> pool = order_;
    int pos = static_cast<int>(order_.size()) - 1;
    while (!pool.empty()) {
        double total = 0.0;
        for (ThreadId t : pool)
            total += weights_[t];
        double pick = rng_->nextDouble() * total;
        std::size_t chosen = 0;
        double acc = 0.0;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            acc += weights_[pool[i]];
            if (pick < acc) {
                chosen = i;
                break;
            }
        }
        order_[pos--] = pool[chosen];
        pool.erase(pool.begin() + chosen);
    }
}

void
ShuffleState::updateNiceness(const std::vector<double> &niceness)
{
    niceness_ = niceness;
}

void
ShuffleState::step()
{
    const int n = static_cast<int>(order_.size());
    if (n <= 1)
        return;

    if (weighted()) {
        weightedPermutation();
        return;
    }

    switch (mode_) {
      case ShuffleMode::Random:
        randomPermutation();
        return;
      case ShuffleMode::RoundRobin:
        std::rotate(order_.begin(), order_.begin() + 1, order_.end());
        return;
      case ShuffleMode::Insertion:
        break;
      case ShuffleMode::Dynamic:
        return; // unreachable (asserted in constructor)
    }

    if (phase_ == 0) {
        decSort(cursor_, n - 1);
        --cursor_;
        if (cursor_ < 0) {
            phase_ = 1;
            cursor_ = 0;
        }
    } else {
        incSort(0, cursor_);
        ++cursor_;
        if (cursor_ >= n) {
            phase_ = 0;
            cursor_ = n - 1;
        }
    }
}

} // namespace tcm::sched
