/**
 * @file
 * TCM's thread clustering (paper Algorithm 1).
 */

#pragma once

#include <vector>

#include "common/types.hpp"

namespace tcm::sched {

/** Output of one clustering pass. */
struct ClusterResult
{
    /** Latency-sensitive threads, lowest scaled-MPKI first. */
    std::vector<ThreadId> latency;
    /** Bandwidth-sensitive threads (everyone else). */
    std::vector<ThreadId> bandwidth;
};

/**
 * Algorithm 1: walk threads in increasing (weight-scaled) MPKI order,
 * accumulating their previous-quantum bandwidth usage; threads fit in the
 * latency-sensitive cluster while the running sum stays within
 * clusterThresh x total usage.
 *
 * When total usage is zero (first quantum, or an idle system) there is no
 * information to cluster on, so every thread is placed in the
 * bandwidth-sensitive cluster — the fairness-oriented default.
 *
 * @param scaledMpki per-thread MPKI already divided by thread weight
 * @param bwUsage    per-thread memory service time of the last quantum
 * @param clusterThresh fraction of total usage granted to the latency
 *        cluster (the paper's ClusterThresh, e.g. 4/24)
 */
ClusterResult clusterThreads(const std::vector<double> &scaledMpki,
                             const std::vector<std::uint64_t> &bwUsage,
                             double clusterThresh);

} // namespace tcm::sched
