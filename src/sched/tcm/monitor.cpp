#include "sched/tcm/monitor.hpp"

#include <cassert>

namespace tcm::sched {

void
ThreadBankMonitor::configure(int numThreads, int numBanks,
                             int channelStride)
{
    numThreads_ = numThreads;
    numBanks_ = numBanks;
    channelStride_ = channelStride;
    load_.assign(static_cast<std::size_t>(numThreads) * numBanks, 0);
    banksWithLoad_.assign(numThreads, 0);
    outstanding_.assign(numThreads, 0);
    blpArea_.assign(numThreads, 0.0);
    blpBusyTime_.assign(numThreads, 0.0);
    lastChangeAt_.assign(numThreads, 0);
    shadowRow_.assign(static_cast<std::size_t>(numThreads) * numBanks,
                      kNoRow);
    shadowHits_.assign(numThreads, 0);
    accesses_.assign(numThreads, 0);
    serviceCycles_.assign(numThreads, 0);
}

void
ThreadBankMonitor::integrate(ThreadId t, Cycle now) const
{
    // Departures are stamped at burst-end, so events can arrive with
    // slightly out-of-order timestamps across channels; never integrate
    // or rewind over a negative interval.
    Cycle last = lastChangeAt_[t];
    if (now <= last)
        return;
    if (banksWithLoad_[t] > 0) {
        double dt = static_cast<double>(now - last);
        blpArea_[t] += banksWithLoad_[t] * dt;
        blpBusyTime_[t] += dt;
    }
    lastChangeAt_[t] = now;
}

void
ThreadBankMonitor::onArrival(const mem::Request &req, Cycle now)
{
    if (req.isWrite)
        return;
    ThreadId t = req.thread;
    int bank = bankIndex(req);
    integrate(t, now);

    int &load = load_[static_cast<std::size_t>(t) * numBanks_ + bank];
    if (load == 0)
        ++banksWithLoad_[t];
    ++load;
    ++outstanding_[t];

    // Shadow row-buffer: the row that would be open if t ran alone.
    RowId &shadow =
        shadowRow_[static_cast<std::size_t>(t) * numBanks_ + bank];
    if (shadow == req.row)
        ++shadowHits_[t];
    shadow = req.row;
    ++accesses_[t];
}

void
ThreadBankMonitor::onDepart(const mem::Request &req, Cycle now)
{
    if (req.isWrite)
        return;
    ThreadId t = req.thread;
    integrate(t, now);

    int &load =
        load_[static_cast<std::size_t>(t) * numBanks_ + bankIndex(req)];
    assert(load > 0);
    --load;
    if (load == 0)
        --banksWithLoad_[t];
    --outstanding_[t];
}

void
ThreadBankMonitor::addService(ThreadId thread, Cycle occupancy)
{
    serviceCycles_[thread] += occupancy;
}

ThreadBankMonitor::Snapshot
ThreadBankMonitor::snapshot(Cycle now) const
{
    Snapshot s;
    s.blp.resize(numThreads_);
    s.rbl.resize(numThreads_);
    s.accesses.resize(numThreads_);
    s.shadowHits.resize(numThreads_);
    s.serviceCycles.resize(numThreads_);
    for (ThreadId t = 0; t < numThreads_; ++t) {
        integrate(t, now);
        s.blp[t] = blpBusyTime_[t] > 0.0 ? blpArea_[t] / blpBusyTime_[t]
                                         : 0.0;
        s.rbl[t] = accesses_[t] > 0
                       ? static_cast<double>(shadowHits_[t]) / accesses_[t]
                       : 0.0;
        s.accesses[t] = accesses_[t];
        s.shadowHits[t] = shadowHits_[t];
        s.serviceCycles[t] = serviceCycles_[t];
    }
    return s;
}

void
ThreadBankMonitor::reset(Cycle now)
{
    for (ThreadId t = 0; t < numThreads_; ++t) {
        blpArea_[t] = 0.0;
        blpBusyTime_[t] = 0.0;
        lastChangeAt_[t] = now;
        shadowHits_[t] = 0;
        accesses_[t] = 0;
        serviceCycles_[t] = 0;
    }
    // Load counters and shadow rows persist: they describe queue state
    // and alone-run row-buffer contents, not per-quantum accumulation.
}

} // namespace tcm::sched
