/**
 * @file
 * Per-controller monitoring of thread memory access behaviour.
 *
 * Implements the monitoring hardware of the paper's Section 3.4 /
 * Table 2: per-thread-per-bank load counters (for instantaneous BLP),
 * shadow row-buffer indices (for inherent RBL), and per-thread memory
 * service time (bank-busy cycle) accounting used as bandwidth usage.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/request.hpp"

namespace tcm::sched {

/**
 * Monitors all threads' behaviour at one memory controller. BLP is
 * integrated event-wise: instead of sampling banks-with-outstanding-
 * requests every cycle, the monitor accumulates (banks x elapsed-cycles)
 * whenever the bank-occupancy changes, yielding the exact time-average
 * the paper's periodic sampling approximates.
 *
 * Only reads are monitored: writebacks are posted and drain in batches,
 * so they say nothing about the thread's latency/bandwidth sensitivity.
 */
class ThreadBankMonitor
{
  public:
    /** Per-thread behaviour accumulated since the last reset. */
    struct Snapshot
    {
        std::vector<double> blp;          //!< time-avg banks with load
        std::vector<double> rbl;          //!< shadow row-buffer hit rate
        std::vector<std::uint64_t> accesses;      //!< reads observed
        std::vector<std::uint64_t> shadowHits;    //!< shadow row hits
        std::vector<std::uint64_t> serviceCycles; //!< bank-busy cycles
    };

    /**
     * @param numThreads hardware threads monitored
     * @param numBanks   bank slots (per channel, or system-wide)
     * @param channelStride when nonzero, requests are indexed by the
     *        *global* bank `channel * channelStride + bank`, letting one
     *        monitor span all controllers (exact system-wide BLP);
     *        when zero the channel is ignored (per-controller monitor,
     *        as the Table 2 hardware does)
     */
    void configure(int numThreads, int numBanks, int channelStride = 0);

    /** Bank slot a request maps to under this monitor's configuration. */
    int
    bankIndex(const mem::Request &req) const
    {
        return req.channel * channelStride_ + req.bank;
    }

    /** A read became visible in the controller queue. */
    void onArrival(const mem::Request &req, Cycle now);

    /** A read's column command issued (it left the queue). */
    void onDepart(const mem::Request &req, Cycle now);

    /** @p occupancy bank-busy cycles performed on behalf of @p thread. */
    void addService(ThreadId thread, Cycle occupancy);

    /** Read out the accumulated behaviour as of @p now. */
    Snapshot snapshot(Cycle now) const;

    /** Reset all accumulators (start of a new quantum) at @p now. */
    void reset(Cycle now);

    /** Outstanding reads for @p thread at this controller (tests). */
    int outstanding(ThreadId thread) const { return outstanding_[thread]; }

    /** Banks currently holding requests of @p thread (instantaneous BLP). */
    int banksWithLoad(ThreadId thread) const { return banksWithLoad_[thread]; }

    /** Outstanding reads of @p thread to @p bank (STFM interference). */
    int
    load(ThreadId thread, BankId bank) const
    {
        return load_[static_cast<std::size_t>(thread) * numBanks_ + bank];
    }

    /** Shadow row currently tracked for (thread, bank). */
    RowId
    shadowRow(ThreadId thread, BankId bank) const
    {
        return shadowRow_[static_cast<std::size_t>(thread) * numBanks_ +
                          bank];
    }

  private:
    void integrate(ThreadId thread, Cycle now) const;

    int numThreads_ = 0;
    int numBanks_ = 0;
    int channelStride_ = 0;

    // load_[t * numBanks_ + b]: outstanding reads of thread t to bank b.
    std::vector<int> load_;
    std::vector<int> banksWithLoad_;
    std::vector<int> outstanding_;

    // BLP integration state (mutable: snapshot() integrates up to `now`).
    mutable std::vector<double> blpArea_;     //!< sum banks x cycles
    mutable std::vector<double> blpBusyTime_; //!< cycles with load > 0
    mutable std::vector<Cycle> lastChangeAt_;

    // Shadow row-buffer per (thread, bank); kNoRow = untouched.
    std::vector<RowId> shadowRow_;
    std::vector<std::uint64_t> shadowHits_;
    std::vector<std::uint64_t> accesses_;

    std::vector<std::uint64_t> serviceCycles_;
};

} // namespace tcm::sched
