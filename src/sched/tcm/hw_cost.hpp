/**
 * @file
 * Analytic model of TCM's per-controller monitoring storage (Table 2).
 */

#pragma once

#include <cstdint>

namespace tcm::sched {

/** System dimensions the storage cost depends on. */
struct HwCostConfig
{
    int numThreads = 24;
    int numBanks = 4;       //!< banks per controller
    int mpkiMax = 1024;     //!< MPKI counter saturation value
    int queueMax = 64;      //!< per-bank load counter saturation
    int numRows = 16384;    //!< rows per bank (shadow row index width)
    int countMax = 1 << 16; //!< shadow hit counter saturation (2^16)
};

/** Per-category storage, in bits, for one memory controller. */
struct HwCost
{
    std::uint64_t mpkiCounters;      //!< memory intensity
    std::uint64_t loadCounters;      //!< BLP: per-thread-per-bank loads
    std::uint64_t blpCounters;       //!< BLP: banks-with-load counters
    std::uint64_t blpAverage;        //!< BLP: running average registers
    std::uint64_t shadowRowIndices;  //!< RBL: shadow row-buffer indices
    std::uint64_t shadowHitCounters; //!< RBL: shadow hit counters

    std::uint64_t total() const;

    /** Storage when pure random shuffling is used (no BLP/RBL monitors). */
    std::uint64_t totalRandomShuffleOnly() const;
};

/**
 * Table 2's formulas:
 *   MPKI counters:      Nthread * log2(MPKImax)
 *   Load counters:      Nthread * Nbank * log2(Queuemax)
 *   BLP counters:       Nthread * log2(Nbank)
 *   BLP average:        Nthread * log2(Nbank)
 *   Shadow row index:   Nthread * Nbank * log2(Nrows)
 *   Shadow row hits:    Nthread * Nbank * log2(Countmax)
 */
HwCost monitoringCost(const HwCostConfig &config);

} // namespace tcm::sched
