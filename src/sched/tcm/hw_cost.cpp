#include "sched/tcm/hw_cost.hpp"

#include <cmath>

namespace tcm::sched {

namespace {

std::uint64_t
log2ceil(std::uint64_t v)
{
    std::uint64_t bits = 0;
    std::uint64_t x = 1;
    while (x < v) {
        x <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace

std::uint64_t
HwCost::total() const
{
    return mpkiCounters + loadCounters + blpCounters + blpAverage +
           shadowRowIndices + shadowHitCounters;
}

std::uint64_t
HwCost::totalRandomShuffleOnly() const
{
    // Random shuffling needs neither BLP nor RBL monitoring; only memory
    // intensity (for clustering) remains.
    return mpkiCounters;
}

HwCost
monitoringCost(const HwCostConfig &c)
{
    HwCost cost{};
    auto nt = static_cast<std::uint64_t>(c.numThreads);
    auto nb = static_cast<std::uint64_t>(c.numBanks);
    cost.mpkiCounters = nt * log2ceil(c.mpkiMax);
    cost.loadCounters = nt * nb * log2ceil(c.queueMax);
    cost.blpCounters = nt * log2ceil(c.numBanks);
    cost.blpAverage = nt * log2ceil(c.numBanks);
    cost.shadowRowIndices = nt * nb * log2ceil(c.numRows);
    cost.shadowHitCounters = nt * nb * log2ceil(c.countMax);
    return cost;
}

} // namespace tcm::sched
