#include "sched/tcm/niceness.hpp"

#include "sched/scheduler.hpp"

namespace tcm::sched {

std::vector<double>
computeNiceness(const std::vector<double> &blp,
                const std::vector<double> &rbl,
                const std::vector<ThreadId> &cluster, int numThreads)
{
    std::vector<double> clusterBlp, clusterRbl;
    clusterBlp.reserve(cluster.size());
    clusterRbl.reserve(cluster.size());
    for (ThreadId t : cluster) {
        clusterBlp.push_back(blp[t]);
        clusterRbl.push_back(rbl[t]);
    }
    std::vector<int> blpPos = ascendingPositions(clusterBlp);
    std::vector<int> rblPos = ascendingPositions(clusterRbl);

    std::vector<double> niceness(numThreads, 0.0);
    for (std::size_t i = 0; i < cluster.size(); ++i)
        niceness[cluster[i]] = static_cast<double>(blpPos[i] - rblPos[i]);
    return niceness;
}

} // namespace tcm::sched
