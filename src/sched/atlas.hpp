/**
 * @file
 * ATLAS: Adaptive per-Thread Least-Attained-Service scheduling
 * (Kim et al., HPCA-16). The paper's best-throughput baseline.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"

namespace tcm::sched {

/** ATLAS configuration (paper Section 6 defaults). */
struct AtlasParams
{
    Cycle quantum = 10'000'000;    //!< QuantumLength
    double historyWeight = 0.875;  //!< exponential history weight (alpha)
    Cycle agingThreshold = 100'000; //!< over-age requests escalate (T)
};

/**
 * Every quantum, each thread's attained service (bank-busy cycles
 * consumed on its behalf) folds into an exponentially weighted total:
 *
 *     TotalAS_i = alpha * TotalAS_i + (1 - alpha) * AS_i
 *
 * Threads are then ranked by ascending TotalAS — the thread that has
 * attained the least service is ranked highest, so light threads race
 * ahead (high throughput) while heavy threads sink to the bottom and
 * risk starvation (ATLAS's documented unfairness, visible in Figure 4).
 * Requests older than the aging threshold escalate above all ranking.
 *
 * Thread weights are honored by scaling attained service down by the
 * weight, making heavy-weight threads look under-served.
 */
class Atlas : public SchedulerPolicy
{
  public:
    explicit Atlas(const AtlasParams &params);

    const char *name() const override { return "ATLAS"; }

    void configure(int numThreads, int numChannels,
                   int banksPerChannel) override;

    /** OS-assigned weights; must be called after configure(). */
    void setThreadWeights(const std::vector<int> &weights) override;

    void onCommand(const Request &req, dram::CommandKind kind, Cycle now,
                   Cycle occupancy) override;
    void tick(Cycle now) override;

    /** Only timed event: the next quantum boundary. */
    Cycle nextEventAt(Cycle) const override { return nextQuantumAt_; }

    // The quantum clock is a pure timer: hooks accumulate attained
    // service but never move the boundary, so controllers may step
    // decoupled (hooks deferred) right up to it.
    Cycle decoupleHorizon(Cycle) const override { return nextQuantumAt_; }

    int
    rankOf(ChannelId, ThreadId thread) const override
    {
        return ranks_[thread];
    }

    Cycle agingThreshold() const override { return params_.agingThreshold; }

    const std::vector<double> &totalAttainedService() const { return totalAs_; }

    const AtlasParams &params() const { return params_; }

  private:
    AtlasParams params_;
    std::vector<double> quantumAs_;
    std::vector<double> totalAs_;
    std::vector<int> weights_;
    std::vector<int> ranks_;
    Cycle nextQuantumAt_ = 0;
};

} // namespace tcm::sched
