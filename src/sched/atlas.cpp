#include "sched/atlas.hpp"

#include <cassert>

#include "telemetry/sink.hpp"

namespace tcm::sched {

Atlas::Atlas(const AtlasParams &params) : params_(params)
{
    nextQuantumAt_ = params_.quantum;
}

void
Atlas::configure(int numThreads, int numChannels, int banksPerChannel)
{
    SchedulerPolicy::configure(numThreads, numChannels, banksPerChannel);
    quantumAs_.assign(numThreads, 0.0);
    totalAs_.assign(numThreads, 0.0);
    weights_.assign(numThreads, 1);
    // Before the first quantum completes there is no service history;
    // seed a deterministic total order (thread id) so the controller's
    // rank tier is well-defined from cycle 0.
    ranks_.resize(numThreads);
    for (ThreadId t = 0; t < numThreads; ++t)
        ranks_[t] = numThreads - 1 - t;
}

void
Atlas::setThreadWeights(const std::vector<int> &weights)
{
    assert(static_cast<int>(weights.size()) == numThreads_);
    weights_ = weights;
}

void
Atlas::onCommand(const Request &req, dram::CommandKind, Cycle,
                 Cycle occupancy)
{
    quantumAs_[req.thread] += static_cast<double>(occupancy);
}

void
Atlas::tick(Cycle now)
{
    if (now < nextQuantumAt_)
        return;
    nextQuantumAt_ = now + params_.quantum;

    double alpha = params_.historyWeight;
    std::vector<double> key(numThreads_);
    for (ThreadId t = 0; t < numThreads_; ++t) {
        totalAs_[t] = alpha * totalAs_[t] +
                      (1.0 - alpha) * quantumAs_[t] / weights_[t];
        quantumAs_[t] = 0.0;
        key[t] = totalAs_[t];
    }

    // Least attained service -> highest rank. ascendingPositions gives the
    // smallest key position 0, so invert.
    std::vector<int> pos = ascendingPositions(key);
    for (ThreadId t = 0; t < numThreads_; ++t)
        ranks_[t] = numThreads_ - 1 - pos[t];
    bumpRankEpoch();

    if (decisionSink_) {
        telemetry::DecisionEvent e;
        e.cycle = now;
        e.name = "atlas.rank";
        e.category = "sched";
        e.args = {
            {"total_as", telemetry::jsonArray(totalAs_)},
            {"ranks", telemetry::jsonArray(ranks_)},
        };
        decisionSink_->onDecision(std::move(e));
    }
}

} // namespace tcm::sched
