#include "sched/stfm.hpp"

#include <algorithm>

#include "telemetry/sink.hpp"

namespace tcm::sched {

Stfm::Stfm(const StfmParams &params) : params_(params)
{
    nextUpdateAt_ = params_.updatePeriod;
    nextIntervalAt_ = params_.intervalLength;
}

void
Stfm::configure(int numThreads, int numChannels, int banksPerChannel)
{
    SchedulerPolicy::configure(numThreads, numChannels, banksPerChannel);
    monitor_.configure(numThreads, numChannels * banksPerChannel,
                       banksPerChannel);
    outstanding_.assign(numThreads, 0);
    stShared_.assign(numThreads, 0.0);
    interference_.assign(numThreads, 0.0);
    ranks_.assign(numThreads, 0);
}

void
Stfm::onArrival(const Request &req, Cycle now)
{
    if (req.isWrite)
        return;
    // Shadow-hit status must be sampled *before* the monitor updates the
    // shadow row to this request's row.
    bool shadow_hit =
        monitor_.shadowRow(req.thread, monitor_.bankIndex(req)) == req.row;
    monitor_.onArrival(req, now);
    if (shadow_hit)
        shadowHitSeqs_.insert(req.seq);
    ++outstanding_[req.thread];
}

void
Stfm::onDepart(const Request &req, Cycle now)
{
    if (req.isWrite)
        return;
    monitor_.onDepart(req, now);
    shadowHitSeqs_.erase(req.seq);
    --outstanding_[req.thread];
}

void
Stfm::onCommand(const Request &req, dram::CommandKind kind, Cycle,
                Cycle occupancy)
{
    // Bank interference: every other thread with a request waiting on
    // this bank is delayed by the cycles the bank now spends on req —
    // scaled down by the victim's bank-level parallelism, because a
    // delay at one of k concurrently loaded banks overlaps with service
    // at the other k-1 (STFM's parallelism factor, MICRO-40 Section 3).
    int bank = monitor_.bankIndex(req);
    for (ThreadId t = 0; t < numThreads_; ++t) {
        if (t == req.thread)
            continue;
        if (monitor_.load(t, bank) > 0) {
            int parallelism = std::max(1, monitor_.banksWithLoad(t));
            interference_[t] +=
                static_cast<double>(occupancy) / parallelism;
        }
    }

    // Row-buffer interference: this request would have been a row hit
    // had the thread run alone, but needed an activate here.
    if (kind == dram::CommandKind::Activate && !req.isWrite &&
        shadowHitSeqs_.count(req.seq)) {
        interference_[req.thread] +=
            static_cast<double>(params_.tRowPenalty);
    }
}

double
Stfm::slowdownEstimate(ThreadId t) const
{
    double shared = stShared_[t];
    if (shared < 1.0)
        return 1.0;
    double alone = shared - std::min(interference_[t], 0.95 * shared);
    return shared / alone;
}

void
Stfm::updateRanks(Cycle now)
{
    // A thread with negligible memory stall time is, by definition, not
    // slowed down by memory: its slowdown is 1.0 and it anchors the
    // minimum. Only threads with meaningful stall can be victims.
    constexpr double kMinStall = 1000.0;
    std::vector<double> slowdown(numThreads_, 1.0);
    double maxS = 1.0, minS = 1.0;
    ThreadId victim = kNoThread;
    for (ThreadId t = 0; t < numThreads_; ++t) {
        double s = stShared_[t] < kMinStall ? 1.0 : slowdownEstimate(t);
        slowdown[t] = s;
        if (s > maxS) {
            maxS = s;
            victim = t;
        }
        minS = std::min(minS, s);
    }

    std::fill(ranks_.begin(), ranks_.end(), 0);
    bool prioritized =
        victim != kNoThread && maxS / minS > params_.fairnessThreshold;
    if (prioritized) {
        ranks_[victim] = 1; // prioritize the most slowed-down thread
    }
    bumpRankEpoch();

    if (decisionSink_) {
        telemetry::DecisionEvent e;
        e.cycle = now;
        e.name = "stfm.update";
        e.category = "sched";
        e.args = {
            {"slowdown", telemetry::jsonArray(slowdown)},
            {"unfairness", telemetry::jsonNumber(maxS / minS)},
            {"victim",
             telemetry::jsonNumber(static_cast<std::int64_t>(
                 prioritized ? victim : kNoThread))},
        };
        decisionSink_->onDecision(std::move(e));
    }
}

void
Stfm::syncTo(Cycle now)
{
    double span;
    if (lastAccruedAt_ == kCycleNever)
        span = 1.0; // first tick ever: one cycle, as the per-cycle loop
    else if (now <= lastAccruedAt_)
        return;
    else
        span = static_cast<double>(now - lastAccruedAt_);
    lastAccruedAt_ = now;
    for (ThreadId t = 0; t < numThreads_; ++t)
        if (outstanding_[t] > 0)
            stShared_[t] += span;
}

void
Stfm::tick(Cycle now)
{
    // Stall accrual for every cycle since the last tick (span 1 when
    // ticked per cycle — identical to the historical "+1 per cycle").
    syncTo(now);

    if (now >= nextUpdateAt_) {
        updateRanks(now);
        nextUpdateAt_ = now + params_.updatePeriod;
    }
    if (now >= nextIntervalAt_) {
        for (ThreadId t = 0; t < numThreads_; ++t) {
            stShared_[t] *= 0.5;
            interference_[t] *= 0.5;
        }
        nextIntervalAt_ = now + params_.intervalLength;
    }
}

} // namespace tcm::sched
