/**
 * @file
 * Pure FCFS: oldest request first, ignoring row-buffer state.
 */

#pragma once

#include "sched/scheduler.hpp"

namespace tcm::sched {

/**
 * Strict arrival-order service. Not evaluated in the paper's headline
 * results but useful as the locality-oblivious lower bound in tests and
 * ablations.
 */
class Fcfs : public SchedulerPolicy
{
  public:
    const char *name() const override { return "FCFS"; }

    bool useRowHit() const override { return false; }

    // Stateless in time and hook-free: no policy barrier ever needed.
    Cycle decoupleHorizon(Cycle) const override { return kCycleNever; }
};

} // namespace tcm::sched
