/**
 * @file
 * FQM: fair queueing memory scheduler (Nesbit et al., MICRO-39).
 *
 * One of the thread-aware schedulers in the paper's related-work
 * comparison ("fair queueing memory schedulers adapted variants of the
 * fair queueing algorithm from computer networks"). Included as an
 * additional baseline: it targets pure bandwidth fairness, which the
 * paper argues costs system throughput.
 */

#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace tcm::sched {

/** FQM configuration. */
struct FqmParams
{
    Cycle updatePeriod = 256; //!< rank recomputation period (cycles)
};

/**
 * Thread-granularity start-time fair queueing: each thread carries a
 * virtual time that advances by (bank service cycles / weight) whenever
 * the memory system works on its behalf; the thread with the smallest
 * virtual time is ranked highest, so bandwidth converges to weighted
 * equal shares.
 *
 * The classic idle-thread problem (a thread that slept for a while has
 * an ancient virtual time and would monopolize the system on return) is
 * handled the standard way: on each update, every thread's virtual time
 * is clamped up to the minimum virtual time among threads that currently
 * have outstanding requests.
 */
class Fqm : public SchedulerPolicy
{
  public:
    explicit Fqm(const FqmParams &params);

    const char *name() const override { return "FQM"; }

    void configure(int numThreads, int numChannels,
                   int banksPerChannel) override;

    void setThreadWeights(const std::vector<int> &weights) override;

    void onArrival(const Request &req, Cycle now) override;
    void onDepart(const Request &req, Cycle now) override;
    void onCommand(const Request &req, dram::CommandKind kind, Cycle now,
                   Cycle occupancy) override;
    void tick(Cycle now) override;

    /** Only timed event: the next rank recomputation. */
    Cycle nextEventAt(Cycle) const override { return nextUpdateAt_; }

    // The update clock is a pure timer: hooks advance virtual times but
    // never move the boundary, so decoupled stepping is safe up to it.
    Cycle decoupleHorizon(Cycle) const override { return nextUpdateAt_; }

    int
    rankOf(ChannelId, ThreadId thread) const override
    {
        return ranks_[thread];
    }

    /** Current virtual time of @p thread (tests). */
    double virtualTime(ThreadId thread) const { return vtime_[thread]; }

  private:
    FqmParams params_;
    std::vector<double> vtime_;
    std::vector<int> weights_;
    std::vector<int> outstanding_;
    std::vector<int> ranks_;
    Cycle nextUpdateAt_ = 0;
};

} // namespace tcm::sched
