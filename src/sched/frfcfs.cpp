#include "sched/frfcfs.hpp"

// FR-FCFS is fully described by the controller's default tiers; this
// translation unit only anchors the class in the scheduler library.
