#include "sched/fcfs.hpp"

// Fully described by the knob overrides in the header.
