/**
 * @file
 * FRFCFS-CP: the close-page FR-FCFS variant of the USIMM championship
 * baselines.
 */

#pragma once

#include "sched/scheduler.hpp"

namespace tcm::sched {

/**
 * FR-FCFS prioritization over closed-page controllers. The championship
 * baseline precharges a bank as soon as no other queued request targets
 * the open row ("smart" close-page: the last streak hit rides an
 * auto-precharge), trading open-row hit opportunity for a pre-paid tRP
 * on the next conflict — a win for low-locality access streams, a loss
 * for row-streaming ones.
 *
 * The page policy is a *controller construction* property, not a
 * per-cycle knob: the policy requests it via prefersClosedPage() and the
 * simulator builds every controller with PagePolicy::Closed (the PR-2
 * protocol checker audits the auto-precharge riders like any explicit
 * precharge). Everything else is stock FR-FCFS: stateless in time and
 * hook-free, so controllers may step decoupled forever.
 */
class CpFrFcfs : public SchedulerPolicy
{
  public:
    const char *name() const override { return "FRFCFS-CP"; }

    bool prefersClosedPage() const override { return true; }

    // Stateless in time and hook-free: no policy barrier ever needed.
    Cycle decoupleHorizon(Cycle) const override { return kCycleNever; }
};

} // namespace tcm::sched
