#include "sched/tournament.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/sink.hpp"

namespace tcm::sched {

Tournament::Tournament(
    std::vector<std::unique_ptr<SchedulerPolicy>> candidates,
    const TournamentParams &params)
    : candidates_(std::move(candidates)), params_(params)
{
    assert(!candidates_.empty());
    scores_.assign(candidates_.size(), 0.0);
    nextQuantumAt_ = params_.quantum;
    lastLiveEpoch_ = candidates_[0]->rankEpoch();
}

void
Tournament::configure(int numThreads, int numChannels, int banksPerChannel)
{
    SchedulerPolicy::configure(numThreads, numChannels, banksPerChannel);
    for (auto &c : candidates_)
        c->configure(numThreads, numChannels, banksPerChannel);
    lastInstructions_.assign(numThreads, 0);
    bestInterval_.assign(numThreads, 0);
    lastLiveEpoch_ = live().rankEpoch();
}

void
Tournament::attachQueue(ChannelId ch, QueueAccess *queue)
{
    SchedulerPolicy::attachQueue(ch, queue);
    for (auto &c : candidates_)
        c->attachQueue(ch, queue);
}

void
Tournament::setCoreCounters(const std::vector<CoreCounters> *counters)
{
    SchedulerPolicy::setCoreCounters(counters);
    for (auto &c : candidates_)
        c->setCoreCounters(counters);
}

void
Tournament::setThreadWeights(const std::vector<int> &weights)
{
    for (auto &c : candidates_)
        c->setThreadWeights(weights);
}

void
Tournament::setDecisionSink(telemetry::DecisionSink *sink)
{
    SchedulerPolicy::setDecisionSink(sink);
    for (auto &c : candidates_)
        c->setDecisionSink(sink);
}

void
Tournament::onArrival(const Request &req, Cycle now)
{
    for (auto &c : candidates_)
        c->onArrival(req, now);
    noteLiveEpoch();
}

void
Tournament::onDepart(const Request &req, Cycle now)
{
    for (auto &c : candidates_)
        c->onDepart(req, now);
    noteLiveEpoch();
}

void
Tournament::onCommand(const Request &req, dram::CommandKind kind, Cycle now,
                      Cycle occupancy)
{
    for (auto &c : candidates_)
        c->onCommand(req, kind, now, occupancy);
    noteLiveEpoch();
}

void
Tournament::tick(Cycle now)
{
    for (auto &c : candidates_)
        c->tick(now);
    if (now >= nextQuantumAt_) {
        nextQuantumAt_ = now + params_.quantum;
        quantumBoundary(now);
    }
    noteLiveEpoch();
}

Cycle
Tournament::nextEventAt(Cycle now) const
{
    Cycle h = nextQuantumAt_;
    for (const auto &c : candidates_)
        h = std::min(h, c->nextEventAt(now));
    return h;
}

Cycle
Tournament::decoupleHorizon(Cycle now) const
{
    // The quantum boundary is a pure timer (core counters are read at
    // the boundary, which the drivers always execute canonically), so
    // the tournament's own bound is the boundary; every shadow
    // candidate's bound applies too, because a withheld hook that would
    // change *any* candidate's state could matter after a switch.
    Cycle h = nextQuantumAt_;
    for (const auto &c : candidates_)
        h = std::min(h, c->decoupleHorizon(now));
    return h;
}

void
Tournament::syncTo(Cycle now)
{
    for (auto &c : candidates_)
        c->syncTo(now);
}

void
Tournament::noteLiveEpoch()
{
    std::uint64_t e = live().rankEpoch();
    if (e != lastLiveEpoch_) {
        lastLiveEpoch_ = e;
        ++epoch_;
    }
}

void
Tournament::quantumBoundary(Cycle now)
{
    const int numCandidates = static_cast<int>(candidates_.size());

    // Score the elapsed quantum from the core counters. Rigs without a
    // counter feed still rotate deterministically on zero scores.
    if (coreCounters_ != nullptr) {
        double wsEst = 0.0;
        double msEst = 1.0;
        for (ThreadId t = 0; t < numThreads_; ++t) {
            std::uint64_t instr = (*coreCounters_)[t].instructions;
            std::uint64_t delta = instr - lastInstructions_[t];
            lastInstructions_[t] = instr;
            bestInterval_[t] = std::max(bestInterval_[t], delta);
            if (bestInterval_[t] == 0) {
                wsEst += 1.0; // thread never retired anything yet
                continue;
            }
            double best = static_cast<double>(bestInterval_[t]);
            wsEst += static_cast<double>(delta) / best;
            msEst = std::max(
                msEst, best / static_cast<double>(std::max<std::uint64_t>(
                                  delta, 1)));
        }
        double score = wsEst - params_.fairnessWeight * msEst;
        scores_[liveIdx_] = params_.scoreAlpha * score +
                            (1.0 - params_.scoreAlpha) * scores_[liveIdx_];
    }

    // Deterministic explore/exploit rotation: one quantum per candidate,
    // then exploitQuanta quanta of the current argmax.
    ++quantumIdx_;
    const std::uint64_t period =
        static_cast<std::uint64_t>(numCandidates) +
        static_cast<std::uint64_t>(std::max(params_.exploitQuanta, 0));
    const std::uint64_t slot = quantumIdx_ % period;
    int next;
    if (slot < static_cast<std::uint64_t>(numCandidates)) {
        next = static_cast<int>(slot);
    } else {
        next = 0;
        for (int i = 1; i < numCandidates; ++i)
            if (scores_[i] > scores_[next])
                next = i;
    }

    if (next != liveIdx_) {
        if (decisionSink_) {
            telemetry::DecisionEvent e;
            e.cycle = now;
            e.name = "tournament.switch";
            e.category = "sched";
            e.args = {
                {"quantum", telemetry::jsonNumber(quantumIdx_)},
                {"from", telemetry::jsonString(live().name())},
                {"to", telemetry::jsonString(candidates_[next]->name())},
                {"scores", telemetry::jsonArray(scores_)},
            };
            decisionSink_->onDecision(std::move(e));
        }
        liveIdx_ = next;
        lastLiveEpoch_ = live().rankEpoch();
        ++epoch_;
    }
}

} // namespace tcm::sched
