/**
 * @file
 * GHT: a read-history scheduler in the style of the USIMM memory
 * scheduling championship entries (per-CPU global history tables with
 * saturating reference counts, low-traffic boost, rotating priority
 * among intensive threads).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"

namespace tcm::sched {

/** GHT configuration (championship-style defaults, cycle-scaled). */
struct GhtParams
{
    /** Statistics interval: reclassify threads and decay the history
     *  tables every this many cycles (the exemplar's MAX_INTERVAL,
     *  scaled to the run by SchedulerSpec::scaleToRun). */
    Cycle interval = 1'000'000;

    /** Rotation period among the intensive threads (the exemplar's
     *  quantum — a locality-scale constant, not scaled to the run). */
    Cycle rotatePeriod = 1'000;

    /** A thread is latency-sensitive ("boosted") when its interval read
     *  count times this factor is below the heaviest thread's count. */
    int boostFactor = 8;

    /** Per-thread history table entries (direct-mapped by row hash). */
    int tableSize = 512;

    /** Saturation ceiling of a history entry's reference count. */
    int maxRefCount = 127;
};

/**
 * Port of the championship read-history approach onto the rank-knob
 * interface. Each thread owns a direct-mapped global history table of
 * recently served (channel, bank, row) keys with saturating reference
 * counts — a cheap proxy for that thread's row reuse. Every interval the
 * policy classifies threads: low-traffic threads (interval reads far
 * below the heaviest thread's) are latency-sensitive and pinned to a
 * persistent top priority band; the remaining intensive threads are
 * ordered by descending row-reuse (higher reuse anchors higher, so
 * row-local threads keep their locality) and then *rotated* one step
 * every rotatePeriod cycles so no intensive thread camps at the top —
 * the same fairness-by-rotation idea TCM's shuffle formalizes.
 *
 * Fast-path contracts: both timed events (interval, rotation) are pure
 * timers; hooks only accumulate read counts and history-table hits that
 * the boundaries consume, so nextEventAt == decoupleHorizon == the
 * nearer boundary, exactly like ATLAS/FQM.
 */
class Ght : public SchedulerPolicy
{
  public:
    explicit Ght(const GhtParams &params);

    const char *name() const override { return "GHT"; }

    void configure(int numThreads, int numChannels,
                   int banksPerChannel) override;

    void onDepart(const Request &req, Cycle now) override;
    void tick(Cycle now) override;

    /** Timed events: the nearer of interval and rotation boundaries. */
    Cycle
    nextEventAt(Cycle) const override
    {
        return nextIntervalAt_ < nextRotateAt_ ? nextIntervalAt_
                                               : nextRotateAt_;
    }

    // Both boundaries are pure timers: hooks feed the statistics they
    // consume but never move them, so decoupled stepping is safe up to
    // the nearer one.
    Cycle
    decoupleHorizon(Cycle now) const override
    {
        return nextEventAt(now);
    }

    int
    rankOf(ChannelId, ThreadId thread) const override
    {
        return ranks_[thread];
    }

    /** Is @p thread in the latency-sensitive boost band? (tests) */
    bool isBoosted(ThreadId thread) const { return boosted_[thread] != 0; }

    const GhtParams &params() const { return params_; }

  private:
    void reclassify(Cycle now);
    void rebuildRanks();

    /** One direct-mapped history entry. */
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint8_t refCount = 0;
    };

    GhtParams params_;
    std::vector<std::vector<Entry>> history_;  //!< [thread][slot]
    std::vector<std::uint64_t> intervalReads_; //!< reads this interval
    std::vector<std::uint64_t> intervalHits_;  //!< history hits this interval
    std::vector<std::uint8_t> boosted_;        //!< latency-sensitive band
    std::vector<ThreadId> heavyOrder_;         //!< intensive threads, reuse-sorted
    std::vector<int> ranks_;
    int rotateOffset_ = 0;
    Cycle nextIntervalAt_ = 0;
    Cycle nextRotateAt_ = 0;
};

} // namespace tcm::sched
