/**
 * @file
 * Tournament: an online meta-scheduler that races candidate policies
 * and switches the live one at quantum boundaries.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/scheduler.hpp"

namespace tcm::sched {

/** Tournament configuration. */
struct TournamentParams
{
    /** Quantum length: candidates are scored and the live policy may
     *  switch only at these boundaries (scaled like TCM's quantum by
     *  SchedulerSpec::scaleToRun). */
    Cycle quantum = 1'000'000;

    /** Score = interval weighted-speedup estimate minus this weight
     *  times the interval maximum-slowdown estimate. */
    double fairnessWeight = 0.5;

    /** After each full exploration rotation (one quantum per
     *  candidate), run the best-scoring candidate for this many quanta
     *  before re-exploring. */
    int exploitQuanta = 6;

    /** New-score weight of the exponential score average. */
    double scoreAlpha = 0.5;
};

/**
 * Runs 2–3 candidate policies as permanent shadows: every observation
 * hook, queue attachment, counter feed, and tick is forwarded to *all*
 * candidates, so each one's internal ranking stays exactly what it
 * would be had it been live all along. Only the live candidate's
 * prioritization knobs (rankOf / agingThreshold / rowHitAboveRank /
 * useRowHit) are exposed to the controllers.
 *
 * At every quantum boundary the elapsed quantum is scored from the
 * per-core counters (the same counter feed the PR-3 telemetry gauges
 * sample): per-thread retired instructions over the quantum,
 * normalized by the best interval that thread has shown so far (an
 * online "alone performance" proxy), give a weighted-speedup estimate;
 * the worst inverse ratio gives a maximum-slowdown estimate; score =
 * ws_est - fairnessWeight * ms_est, folded into an exponential average
 * per candidate. Scheduling of quanta is a deterministic
 * explore/exploit rotation: one quantum per candidate, then
 * exploitQuanta quanta of the argmax (ties: lowest candidate index),
 * then re-explore. Every live-policy change emits a tournament.switch
 * decision event.
 *
 * Fast-path contracts compose from the candidates': nextEventAt /
 * decoupleHorizon are the min over the candidates' and the quantum
 * boundary (a pure timer — core counters are read at the boundary,
 * which is always a barrier cycle); syncTo fans out; the tournament's
 * rank epoch advances whenever the live candidate's does or the live
 * candidate itself changes, so controller snapshot caches refresh
 * exactly when the visible knobs may have moved. Candidates must not
 * mutate shared queue state (PAR-BS marks requests even when not live,
 * which would leak into the controller's marked tier), so the factory
 * restricts candidates to non-marking, non-meta policies.
 */
class Tournament : public SchedulerPolicy
{
  public:
    Tournament(std::vector<std::unique_ptr<SchedulerPolicy>> candidates,
               const TournamentParams &params);

    const char *name() const override { return "Tournament"; }

    void configure(int numThreads, int numChannels,
                   int banksPerChannel) override;
    void attachQueue(ChannelId ch, QueueAccess *queue) override;
    void setCoreCounters(
        const std::vector<CoreCounters> *counters) override;
    void setThreadWeights(const std::vector<int> &weights) override;
    void setDecisionSink(telemetry::DecisionSink *sink) override;

    void onArrival(const Request &req, Cycle now) override;
    void onDepart(const Request &req, Cycle now) override;
    void onCommand(const Request &req, dram::CommandKind kind, Cycle now,
                   Cycle occupancy) override;
    void tick(Cycle now) override;

    Cycle nextEventAt(Cycle now) const override;
    Cycle decoupleHorizon(Cycle now) const override;
    void syncTo(Cycle now) override;
    std::uint64_t rankEpoch() const override { return epoch_; }

    int
    rankOf(ChannelId ch, ThreadId thread) const override
    {
        return live().rankOf(ch, thread);
    }

    Cycle agingThreshold() const override { return live().agingThreshold(); }
    bool rowHitAboveRank() const override { return live().rowHitAboveRank(); }
    bool useRowHit() const override { return live().useRowHit(); }

    /** The currently live candidate (tests/benches). */
    const SchedulerPolicy &live() const { return *candidates_[liveIdx_]; }

    /** Index of the live candidate (tests). */
    int liveIndex() const { return liveIdx_; }

    /** Exponential score average of candidate @p i (tests). */
    double score(int i) const { return scores_[i]; }

    const TournamentParams &params() const { return params_; }

  private:
    /** Fold the live candidate's epoch into ours if it moved. */
    void noteLiveEpoch();

    /** Score the elapsed quantum and pick the next live candidate. */
    void quantumBoundary(Cycle now);

    std::vector<std::unique_ptr<SchedulerPolicy>> candidates_;
    TournamentParams params_;
    std::vector<double> scores_;
    std::vector<std::uint64_t> lastInstructions_; //!< per thread
    std::vector<std::uint64_t> bestInterval_;     //!< per thread
    int liveIdx_ = 0;
    std::uint64_t lastLiveEpoch_ = 0;
    std::uint64_t epoch_ = 1;
    std::uint64_t quantumIdx_ = 0;
    Cycle nextQuantumAt_ = 0;
};

} // namespace tcm::sched
