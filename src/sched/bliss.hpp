/**
 * @file
 * BLISS: the Blacklisting Memory Scheduler (Subramanian et al.,
 * ICCD 2014 / arXiv 1504.00390).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"

namespace tcm::sched {

/** BLISS configuration (paper Section 7 defaults). */
struct BlissParams
{
    /** Consecutive requests served from one application before it is
     *  blacklisted (the paper's "Blacklisting Threshold"). */
    int blacklistThreshold = 4;

    /** Cycles between blacklist clearings (the paper's "Clearing
     *  Interval"). An absolute interference time constant, like ATLAS's
     *  aging threshold — deliberately not scaled to the run length. */
    Cycle clearInterval = 10'000;
};

/**
 * BLISS argues that full per-application ranking (TCM/ATLAS) is
 * unnecessary: it suffices to separate applications into just two
 * groups. Each controller counts consecutive requests served from the
 * same application; when the streak crosses the blacklist threshold,
 * that application is blacklisted (deprioritized below everyone else)
 * until the periodic clearing resets all blacklists. Interference-heavy
 * streaks are broken up cheaply while the scheduler otherwise stays
 * FR-FCFS — non-blacklisted requests win tier 3, then row-hit, then age.
 *
 * Fast-path contracts: served-request events observed through onDepart
 * are queued and *applied at the next tick*, never inside the hook —
 * ranks therefore only change in tick(), which is what makes the
 * gang-stepped intra-parallel driver bit-identical to the serial loop
 * (a controller scanning at cycle u always sees the ranks the policy
 * published at tick(u), in every execution mode). nextEventAt() is the
 * next clearing boundary, or `now` while served events are pending;
 * decoupleHorizon() additionally refuses to decouple while any channel
 * has queued reads (a withheld departure hook could arm a blacklist).
 */
class Bliss : public SchedulerPolicy
{
  public:
    explicit Bliss(const BlissParams &params);

    const char *name() const override { return "BLISS"; }

    void configure(int numThreads, int numChannels,
                   int banksPerChannel) override;

    void onArrival(const Request &req, Cycle now) override;
    void onDepart(const Request &req, Cycle now) override;
    void tick(Cycle now) override;

    /** Next clearing boundary; `now` while served events are pending. */
    Cycle nextEventAt(Cycle now) const override;

    /**
     * The clearing clock is a pure timer, but blacklisting is armed by
     * departure hooks: any channel with queued reads can produce a
     * departure whose deferred delivery would change ranks mid-span, so
     * decoupling is only safe while every channel is empty — then bound
     * by the next in-transport arrival (admitted at that cycle's
     * controller tick, visible to the policy one tick later) and the
     * clearing boundary.
     */
    Cycle decoupleHorizon(Cycle now) const override;

    int
    rankOf(ChannelId ch, ThreadId thread) const override
    {
        return blacklisted_[ch][thread] ? 0 : 1;
    }

    /** Is @p thread currently blacklisted at @p ch? (tests) */
    bool
    isBlacklisted(ChannelId ch, ThreadId thread) const
    {
        return blacklisted_[ch][thread] != 0;
    }

    /** Total blacklisted (channel, thread) entries right now. (tests) */
    int blacklistedCount() const;

    const BlissParams &params() const { return params_; }

  private:
    /** A read left some channel's queue; recorded by onDepart, applied
     *  in tick() so rank mutations never happen inside a hook. */
    struct ServedEvent
    {
        ChannelId channel;
        ThreadId thread;
    };

    BlissParams params_;
    std::vector<ServedEvent> pendingServed_;
    std::vector<int> queuedReads_;            //!< visible reads per channel
    std::vector<ThreadId> lastServed_;        //!< per channel
    std::vector<int> streak_;                 //!< per channel
    std::vector<std::vector<std::uint8_t>> blacklisted_; //!< [ch][thread]
    Cycle nextClearAt_ = 0;
};

} // namespace tcm::sched
