#include "sched/fqm.hpp"

#include <algorithm>
#include <cassert>

namespace tcm::sched {

Fqm::Fqm(const FqmParams &params) : params_(params)
{
    nextUpdateAt_ = params_.updatePeriod;
}

void
Fqm::configure(int numThreads, int numChannels, int banksPerChannel)
{
    SchedulerPolicy::configure(numThreads, numChannels, banksPerChannel);
    vtime_.assign(numThreads, 0.0);
    weights_.assign(numThreads, 1);
    outstanding_.assign(numThreads, 0);
    ranks_.assign(numThreads, 0);
    for (ThreadId t = 0; t < numThreads; ++t)
        ranks_[t] = numThreads - 1 - t; // deterministic initial order
}

void
Fqm::setThreadWeights(const std::vector<int> &weights)
{
    assert(static_cast<int>(weights.size()) == numThreads_);
    weights_ = weights;
}

void
Fqm::onArrival(const Request &req, Cycle)
{
    if (!req.isWrite)
        ++outstanding_[req.thread];
}

void
Fqm::onDepart(const Request &req, Cycle)
{
    if (!req.isWrite)
        --outstanding_[req.thread];
}

void
Fqm::onCommand(const Request &req, dram::CommandKind, Cycle,
               Cycle occupancy)
{
    vtime_[req.thread] +=
        static_cast<double>(occupancy) / weights_[req.thread];
}

void
Fqm::tick(Cycle now)
{
    if (now < nextUpdateAt_)
        return;
    nextUpdateAt_ = now + params_.updatePeriod;

    // Idle catch-up: clamp sleepers to the busy minimum.
    double min_active = -1.0;
    for (ThreadId t = 0; t < numThreads_; ++t)
        if (outstanding_[t] > 0 &&
            (min_active < 0.0 || vtime_[t] < min_active))
            min_active = vtime_[t];
    if (min_active > 0.0)
        for (ThreadId t = 0; t < numThreads_; ++t)
            if (outstanding_[t] == 0)
                vtime_[t] = std::max(vtime_[t], min_active);

    // Smallest virtual time -> highest rank.
    std::vector<int> pos = ascendingPositions(vtime_);
    for (ThreadId t = 0; t < numThreads_; ++t)
        ranks_[t] = numThreads_ - 1 - pos[t];
    bumpRankEpoch();
}

} // namespace tcm::sched
