#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>

namespace tcm::sched {

std::vector<int>
ascendingPositions(const std::vector<double> &values)
{
    std::vector<int> idx(values.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](int a, int b) {
        if (values[a] != values[b])
            return values[a] < values[b];
        return a < b;
    });
    std::vector<int> pos(values.size());
    for (std::size_t p = 0; p < idx.size(); ++p)
        pos[idx[p]] = static_cast<int>(p);
    return pos;
}

std::vector<int>
ranksFromOrder(const std::vector<ThreadId> &orderedThreads, int numThreads,
               int base)
{
    std::vector<int> ranks(numThreads, 0);
    for (std::size_t i = 0; i < orderedThreads.size(); ++i)
        ranks[orderedThreads[i]] = base + static_cast<int>(i);
    return ranks;
}

} // namespace tcm::sched
