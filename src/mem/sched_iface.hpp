/**
 * @file
 * The policy interface between the memory controller and a scheduling
 * algorithm.
 *
 * Every scheduler in the paper reduces to a small set of knobs applied by
 * a fixed prioritization engine in the controller (the paper's
 * Algorithm 3 generalized):
 *
 *   1. over-age requests first (ATLAS's starvation threshold),
 *   2. marked requests first (PAR-BS's batch bit),
 *   3. higher-ranked thread first (rank vector from the scheduler),
 *   4. row-buffer hit first,
 *   5. oldest first.
 *
 * PAR-BS swaps tiers 3 and 4 (row-hit above rank); FCFS disables tier 4.
 * Schedulers observe the memory system through the on* hooks and publish
 * thread ranks, which the controller reads every decision.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "dram/command.hpp"
#include "mem/request.hpp"

namespace tcm::telemetry {
class DecisionSink;
}

namespace tcm::mem {

/** Per-core retired-instruction/miss counters a scheduler may consult. */
struct CoreCounters
{
    std::uint64_t instructions = 0;
    std::uint64_t readMisses = 0;
};

/** Mutable access to a controller's read queue (PAR-BS batch marking). */
class QueueAccess
{
  public:
    virtual ~QueueAccess() = default;

    /** The queued (visible, not yet departed) read requests. */
    virtual std::vector<Request> &readQueue() = 0;

    /**
     * Arrival time of this queue's next in-transport request
     * (kCycleNever when nothing is in flight). Lets a policy bound how
     * far ahead its hook-driven state can possibly change (see
     * SchedulerPolicy::decoupleHorizon).
     */
    virtual Cycle nextArrivalAt() const { return kCycleNever; }

    /**
     * Invoke @p fn on every queued read. Templated so scheduler hot
     * loops pay one virtual call per scan instead of one indirect
     * std::function call per request.
     */
    template <typename Fn>
    void
    forEachRead(Fn &&fn)
    {
        for (Request &req : readQueue())
            fn(req);
    }
};

/**
 * Abstract scheduling policy. One instance governs the whole system; the
 * simulator calls tick() once per cycle, and each controller invokes the
 * observation hooks and reads the prioritization knobs.
 */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    /** Human-readable algorithm name (for reports). */
    virtual const char *name() const = 0;

    // -- wiring (called once before simulation starts) ---------------------

    /** Number of threads and channels in the system. */
    virtual void
    configure(int numThreads, int numChannels, int banksPerChannel)
    {
        numThreads_ = numThreads;
        numChannels_ = numChannels;
        banksPerChannel_ = banksPerChannel;
        queues_.assign(numChannels, nullptr);
    }

    /** Controller registers its queue for direct scheduler access. */
    virtual void
    attachQueue(ChannelId ch, QueueAccess *queue)
    {
        queues_.at(ch) = queue;
    }

    /** Simulator publishes per-core counters (for MPKI-style metrics). */
    virtual void
    setCoreCounters(const std::vector<CoreCounters> *counters)
    {
        coreCounters_ = counters;
    }

    /**
     * OS-assigned thread weights (Section 3.6). Called after configure();
     * schedulers that do not support weights ignore them.
     */
    virtual void setThreadWeights(const std::vector<int> & /*weights*/) {}

    /**
     * Attach a decision-trace sink (nullptr detaches). Schedulers with
     * internal decision points (quantum boundaries, batch formation,
     * rank updates) emit a DecisionEvent describing each one; policies
     * without dynamic decisions ignore the sink. Detached cost is one
     * branch per decision point — never per cycle or per request.
     */
    virtual void
    setDecisionSink(telemetry::DecisionSink *sink)
    {
        decisionSink_ = sink;
    }

    // -- observation hooks --------------------------------------------------

    /** A request became visible in a controller queue. */
    virtual void onArrival(const Request &, Cycle /*now*/) {}

    /** A request left a queue (its column command issued). */
    virtual void onDepart(const Request &, Cycle /*now*/) {}

    /**
     * A DRAM command was issued on behalf of @p req, keeping its bank busy
     * for @p occupancy cycles. This is the "memory service time"
     * attribution of paper Section 3.2.
     */
    virtual void onCommand(const Request & /*req*/, dram::CommandKind,
                           Cycle /*now*/, Cycle /*occupancy*/) {}

    /** Called once per CPU cycle by the simulator (quanta, shuffling). */
    virtual void tick(Cycle /*now*/) {}

    // -- event horizon (cycle-skipping kernel) -------------------------------

    /**
     * Earliest cycle >= @p now at which this policy's tick() is not a
     * state-preserving no-op, assuming no observation hook fires before
     * then (the simulator re-queries after every executed cycle, so
     * hook-driven changes are always seen). Must be conservative: never
     * later than the true next event. kCycleNever means "no timed
     * events at all" (FR-FCFS, FCFS, FixedRank); a policy that cannot
     * predict may simply return @p now.
     */
    virtual Cycle nextEventAt(Cycle /*now*/) const { return kCycleNever; }

    /**
     * Catch up any per-cycle accrual through cycle @p now (inclusive).
     * Called by the cycle-skipping simulator at the end of step() so
     * external readers (tests, reports) observe the same accumulator
     * values the per-cycle loop would have produced. Policies without
     * per-cycle accrual ignore it.
     */
    virtual void syncTo(Cycle /*now*/) {}

    /**
     * Latest cycle T >= @p now such that every tick() in [now, T) is a
     * state-preserving no-op *even if observation hooks fire at any
     * cycle in the span and are only delivered afterwards*. This is the
     * intra-run parallel kernel's barrier bound: controllers may step
     * [now, T) concurrently with their hooks deferred, because nothing
     * the policy would have done in that window can depend on them.
     *
     * Contrast with nextEventAt(), whose contract lets the caller
     * re-query after every executed cycle (so hook-driven changes are
     * always seen); decoupleHorizon() must stay valid with hooks
     * withheld for the whole span. Policies whose timed events are pure
     * timers (quantum/shuffle/interval clocks) can return
     * nextEventAt(now); policies whose tick work is armed by hooks
     * (PAR-BS batch formation) must bound how soon a withheld hook
     * could arm it. The default never decouples, which is always safe.
     */
    virtual Cycle decoupleHorizon(Cycle now) const { return now; }

    /**
     * Monotonically increasing counter bumped whenever the rank vector
     * (or any prioritization knob) may have changed. Controllers cache
     * rankOf per scan and only rebuild when the epoch moves, so a
     * policy MUST bump on every rank mutation. Starts at 1 so a
     * controller's epoch-0 cache is always considered stale.
     */
    virtual std::uint64_t rankEpoch() const { return rankEpoch_; }

    // -- prioritization knobs ------------------------------------------------

    /**
     * Rank of @p thread at controller @p ch; larger means higher priority.
     * Default: all threads equal.
     */
    virtual int rankOf(ChannelId /*ch*/, ThreadId /*thread*/) const { return 0; }

    /**
     * Age (in cycles since arrival) beyond which a request is escalated to
     * the top priority tier. kCycleNever disables escalation.
     */
    virtual Cycle agingThreshold() const { return kCycleNever; }

    /** PAR-BS orders row-hit above thread rank. */
    virtual bool rowHitAboveRank() const { return false; }

    /** Pure FCFS ignores row-hit status. */
    virtual bool useRowHit() const { return true; }

    /**
     * Policy asks for closed-page controllers (auto-precharge once no
     * other queued request targets the open row) instead of the default
     * open-page. A construction-time property consulted once when the
     * simulator builds its controllers — never re-read during the run,
     * so it needs no rank-epoch discipline.
     */
    virtual bool prefersClosedPage() const { return false; }

  protected:
    /** Record that ranks (or another knob) may have changed. */
    void bumpRankEpoch() { ++rankEpoch_; }

    int numThreads_ = 0;
    int numChannels_ = 0;
    int banksPerChannel_ = 0;
    std::vector<QueueAccess *> queues_;
    const std::vector<CoreCounters> *coreCounters_ = nullptr;
    telemetry::DecisionSink *decisionSink_ = nullptr;

  private:
    std::uint64_t rankEpoch_ = 1;
};

} // namespace tcm::mem
