/**
 * @file
 * Per-thread read-latency tracking for one memory controller.
 */

#pragma once

#include <vector>

#include "common/running_stat.hpp"
#include "common/types.hpp"
#include "stats/histogram.hpp"

namespace tcm::mem {

/**
 * Records end-to-end read latencies (core issue to data delivery) per
 * thread and in aggregate. Histograms use a geometric bucket ladder from
 * 100 cycles (sub-row-hit) to ~2M cycles, so percentiles stay accurate
 * from uncontended hits to pathological starvation.
 */
class LatencyTracker
{
  public:
    LatencyTracker();

    void record(ThreadId thread, Cycle latency);

    /** All-thread latency histogram. */
    const stats::Histogram &histogram() const { return aggregate_; }

    /** Per-thread moment statistics (empty slot if never recorded). */
    const RunningStat &threadStats(ThreadId t) const;

    /** Per-thread histogram (shared bucket ladder; mergeable). */
    const stats::Histogram &threadHistogram(ThreadId t) const;

    int maxThread() const { return static_cast<int>(perThread_.size()) - 1; }

    void reset();

  private:
    void grow(ThreadId t);

    stats::Histogram aggregate_;
    std::vector<RunningStat> perThread_;
    std::vector<stats::Histogram> perThreadHist_;
};

} // namespace tcm::mem
