/**
 * @file
 * A memory request as seen by a controller queue.
 */

#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace tcm::mem {

/**
 * One outstanding DRAM access. Created by a core (an L2 miss or a
 * writeback), transported to the owning channel's controller, and held in
 * the controller's request buffer until its column command issues.
 */
struct Request
{
    std::uint64_t seq = 0;   //!< global monotonic id (final tie-break)
    ThreadId thread = kNoThread;
    bool isWrite = false;
    ChannelId channel = 0;
    BankId bank = 0;
    RowId row = 0;
    ColId col = 0;
    Cycle issuedAt = 0;      //!< cycle the core sent the request
    Cycle arrivedAt = 0;     //!< cycle it became visible to the controller
    std::uint64_t missId = 0; //!< core-side wakeup tag (reads only)
    bool marked = false;     //!< scheduler-owned batch bit (PAR-BS)
    bool sawActivate = false; //!< this request paid for its own ACT
};

} // namespace tcm::mem
