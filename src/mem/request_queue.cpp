#include "mem/request_queue.hpp"

#include <cassert>

namespace tcm::mem {

RequestQueue::RequestQueue(int readCap, int writeCap)
    : readCap_(readCap), writeCap_(writeCap)
{
    reads_.reserve(readCap);
    writes_.reserve(writeCap);
}

bool
RequestQueue::canAcceptRead() const
{
    return readLoad() < static_cast<std::size_t>(readCap_);
}

bool
RequestQueue::canAcceptWrite() const
{
    return writeLoad() < static_cast<std::size_t>(writeCap_);
}

void
RequestQueue::addInFlight(const Request &req)
{
    if (req.isWrite) {
        assert(canAcceptWrite());
        ++inFlightWrites_;
    } else {
        assert(canAcceptRead());
        ++inFlightReads_;
    }
    // Arrival times are monotonic (fixed transport delay), so push_back
    // keeps the FIFO sorted by arrivedAt.
    assert(inFlight_.empty() || inFlight_.back().arrivedAt <= req.arrivedAt);
    inFlight_.push_back(req);
}

std::vector<Request>
RequestQueue::admitArrivals(Cycle now)
{
    std::vector<Request> admitted;
    std::size_t n = 0;
    while (n < inFlight_.size() && inFlight_[n].arrivedAt <= now)
        ++n;
    if (n == 0)
        return admitted;
    admitted.assign(inFlight_.begin(), inFlight_.begin() + n);
    inFlight_.erase(inFlight_.begin(), inFlight_.begin() + n);
    for (const Request &req : admitted) {
        if (req.isWrite) {
            --inFlightWrites_;
            writes_.push_back(req);
        } else {
            --inFlightReads_;
            reads_.push_back(req);
        }
    }
    return admitted;
}

Request
RequestQueue::removeRead(std::size_t idx)
{
    assert(idx < reads_.size());
    Request req = reads_[idx];
    reads_[idx] = reads_.back();
    reads_.pop_back();
    return req;
}

Request
RequestQueue::removeWrite(std::size_t idx)
{
    assert(idx < writes_.size());
    Request req = writes_[idx];
    writes_[idx] = writes_.back();
    writes_.pop_back();
    return req;
}

} // namespace tcm::mem
