#include "mem/request_queue.hpp"

#include <cassert>

namespace tcm::mem {

RequestQueue::RequestQueue(int readCap, int writeCap)
    : readCap_(readCap), writeCap_(writeCap)
{
    reads_.reserve(readCap);
    writes_.reserve(writeCap);
    readBank_.reserve(readCap);
    readRow_.reserve(readCap);
    readArrivedAt_.reserve(readCap);
    readKeyHi_.reserve(readCap);
}

bool
RequestQueue::canAcceptRead() const
{
    return readLoad() < static_cast<std::size_t>(readCap_);
}

bool
RequestQueue::canAcceptWrite() const
{
    return writeLoad() < static_cast<std::size_t>(writeCap_);
}

void
RequestQueue::addInFlight(const Request &req)
{
    if (req.isWrite) {
        assert(canAcceptWrite());
        ++inFlightWrites_;
    } else {
        assert(canAcceptRead());
        ++inFlightReads_;
    }
    // Arrival times are monotonic (fixed transport delay), so push_back
    // keeps the FIFO sorted by arrivedAt.
    assert(inFlight_.empty() || inFlight_.back().arrivedAt <= req.arrivedAt);
    inFlight_.push_back(req);
}

const std::vector<Request> &
RequestQueue::admitArrivals(Cycle now)
{
    // Fast path: nothing due. The FIFO is sorted by arrivedAt, so one
    // head probe decides — the scratch buffer is returned (possibly
    // stale from the previous admitting tick) but sized to zero first
    // only when we know we must touch it.
    if (inFlight_.empty() || inFlight_.front().arrivedAt > now) {
        admitScratch_.clear();
        return admitScratch_;
    }
    std::size_t n = 1;
    while (n < inFlight_.size() && inFlight_[n].arrivedAt <= now)
        ++n;
    admitScratch_.assign(inFlight_.begin(), inFlight_.begin() + n);
    inFlight_.erase(inFlight_.begin(), inFlight_.begin() + n);
    for (const Request &req : admitScratch_) {
        if (req.isWrite) {
            --inFlightWrites_;
            writes_.push_back(req);
        } else {
            --inFlightReads_;
            reads_.push_back(req);
            readBank_.push_back(req.bank);
            readRow_.push_back(req.row);
            readArrivedAt_.push_back(req.arrivedAt);
            readKeyHi_.push_back(0); // controller fills in the key
        }
    }
    return admitScratch_;
}

Request
RequestQueue::removeRead(std::size_t idx)
{
    assert(idx < reads_.size());
    Request req = reads_[idx];
    reads_[idx] = reads_.back();
    reads_.pop_back();
    readBank_[idx] = readBank_.back();
    readBank_.pop_back();
    readRow_[idx] = readRow_.back();
    readRow_.pop_back();
    readArrivedAt_[idx] = readArrivedAt_.back();
    readArrivedAt_.pop_back();
    readKeyHi_[idx] = readKeyHi_.back();
    readKeyHi_.pop_back();
    return req;
}

Request
RequestQueue::removeWrite(std::size_t idx)
{
    assert(idx < writes_.size());
    Request req = writes_[idx];
    writes_[idx] = writes_.back();
    writes_.pop_back();
    return req;
}

} // namespace tcm::mem
