/**
 * @file
 * Cycle-level memory controller for one DRAM channel.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "dram/channel.hpp"
#include "dram/timing.hpp"
#include "mem/latency_tracker.hpp"
#include "mem/request.hpp"
#include "mem/request_queue.hpp"
#include "mem/sched_iface.hpp"

namespace tcm::telemetry {
class LifecycleSink;
}

namespace tcm::prof {
struct ControllerShard;
}

namespace tcm::mem {

/**
 * Row-buffer management policy. OpenPage (the baseline, and what all the
 * paper's schedulers assume) leaves rows open for future hits;
 * ClosedPage auto-precharges after a column command unless another
 * queued request targets the same row (the standard "smart closed"
 * refinement).
 */
enum class PagePolicy
{
    Open,
    Closed,
};

/**
 * Write-drain behavior while the queue sits between the watermarks.
 * Opportunistic (the baseline) keeps serving reads whenever no write can
 * issue in a drain cycle; Strict reserves the whole latched drain for
 * writes (USIMM's HI_WM/LO_WM scheme), trading read latency for drain
 * throughput.
 */
enum class WriteDrainMode
{
    Opportunistic,
    Strict,
};

/** Watermark-latched write-drain policy (USIMM HI_WM/LO_WM). */
struct WriteDrainPolicy
{
    WriteDrainMode mode = WriteDrainMode::Opportunistic;
    int highWatermark = 48; //!< start draining at this occupancy
    int lowWatermark = 16;  //!< stop draining at this occupancy
};

/** Controller configuration (Table 3 defaults). */
struct ControllerParams
{
    PagePolicy pagePolicy = PagePolicy::Open;

    int readQueueCap = 128;  //!< request buffer entries
    int writeQueueCap = 64;  //!< write data buffer entries
    WriteDrainPolicy writeDrain; //!< watermark-latched write drain

    /**
     * Close open banks that no queued request targets when the command
     * slot would otherwise go unused (USIMM-style speculative precharge).
     * Off by default; the baseline command traces assume pure demand
     * precharging.
     */
    bool speculativePrecharge = false;

    /**
     * Enter precharge power-down after a rank has been idle (no commands
     * issued to it and nothing queued for it) this many cycles. 0
     * disables power management entirely — the default, preserving the
     * baseline command traces bit-for-bit.
     */
    Cycle powerDownIdleCycles = 0;

    /**
     * Skip scheduling scans until a command could possibly issue
     * (cycle-exact: the skip bound is a lower bound on the next legal
     * issue time, and arrivals re-arm the scan immediately). Purely a
     * simulation-speed optimization; results are bit-identical either
     * way, which tests/test_mem.cpp asserts.
     */
    bool idleSkip = true;
};

/** Aggregate controller statistics (reset at measurement start). */
struct ControllerStats
{
    std::uint64_t readsServiced = 0;
    std::uint64_t writesServiced = 0;
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rowHits = 0;     //!< column commands to an already-open row
    std::uint64_t rowMisses = 0;   //!< column commands that needed an ACT
    std::uint64_t bankBusyCycles = 0; //!< sum of command occupancies
    std::uint64_t writeDrains = 0; //!< high-watermark drain latches
    std::uint64_t speculativePrecharges = 0; //!< spec-PRE issues
    std::uint64_t powerDowns = 0;  //!< PowerDown commands issued
    std::uint64_t powerUps = 0;    //!< PowerUp commands issued

    void
    reset()
    {
        *this = ControllerStats{};
    }
};

/**
 * Drives one dram::Channel. Every CPU cycle the controller admits
 * transported requests, runs the refresh engine, and issues at most one
 * DRAM command chosen by a fixed prioritization engine parameterized by
 * the attached SchedulerPolicy (see sched_iface.hpp).
 *
 * Reads are prioritized over writes; writes drain in batches between a
 * high and a low watermark, or opportunistically when no reads are
 * pending (Table 3: "reads prioritized over writes").
 */
class MemoryController : public QueueAccess
{
  public:
    /** One finished read, ready to wake the issuing core at readyAt. */
    struct Completion
    {
        ThreadId thread;
        std::uint64_t missId;
        Cycle readyAt;
    };

    MemoryController(ChannelId id, const dram::TimingParams &timing,
                     const ControllerParams &params, SchedulerPolicy &sched);

    ChannelId id() const { return id_; }

    /** @{ Backpressure interface used by cores. */
    bool canAcceptRead() const { return queue_.canAcceptRead(); }
    bool canAcceptWrite() const { return queue_.canAcceptWrite(); }
    /** @} */

    /** Submit a read (L2 miss). Asserts capacity. */
    void submitRead(ThreadId thread, std::uint64_t missId, BankId bank,
                    RowId row, ColId col, Cycle now);

    /** Submit a write (dirty writeback). Asserts capacity. */
    void submitWrite(ThreadId thread, BankId bank, RowId row, ColId col,
                     Cycle now);

    /** Advance one CPU cycle: admit arrivals, refresh, issue a command. */
    void tick(Cycle now);

    // -- decoupled (intra-run parallel) stepping -----------------------------
    //
    // In deferred mode every externally visible side effect of tick()
    // other than channel/queue/stats mutation — scheduler hooks, command
    // observer events, lifecycle records — is logged instead of
    // delivered, so multiple controllers can step concurrently without
    // touching shared state. The simulator replays the logs at the next
    // barrier in the canonical serial order (cycle-major, channel-minor)
    // and then drains completions(), making the parallel schedule
    // bit-identical to the serial one. Completions stay queued in
    // completions() as usual; their delayed delivery is invisible
    // because readyAt is always at least the read latency in the
    // future, and spans never exceed it.

    /** One deferred scheduler hook, in intra-tick call order. */
    struct DeferredHook
    {
        enum class Kind : std::uint8_t
        {
            Arrival,
            Depart,
            Command,
        };
        Kind kind;
        dram::CommandKind cmd; //!< Command hooks only
        Cycle cycle;           //!< tick cycle (replay ordering)
        Cycle arg;             //!< now / dataEnd / occupancy per kind
        Request req;
    };

    /** One deferred lifecycle record. */
    struct DeferredLifecycle
    {
        Cycle cycle;
        ThreadId thread;
        Cycle queueing;
        Cycle service;
    };

    /** Enter deferred mode; logs must be empty (previously replayed). */
    void beginDeferred();

    /** Leave deferred mode (logs stay for the owner to replay+clear). */
    void endDeferred();

    /**
     * Step this controller over [from, to) in deferred mode, pacing
     * itself with its own event horizon: cycles where tick() would be a
     * state-preserving no-op are skipped outright, so each worker jumps
     * its controller's dead cycles independently inside the span.
     * Returns the number of ticks actually executed (diagnostic; see
     * the simulator's intra-parallel counter shards).
     */
    std::size_t stepSpan(Cycle from, Cycle to);

    std::vector<DeferredHook> &deferredHooks() { return deferredHooks_; }
    std::vector<DeferredLifecycle> &deferredLifecycles()
    {
        return deferredLifecycles_;
    }
    std::vector<dram::CommandEvent> &deferredEvents()
    {
        return deferredEvents_;
    }

    /** Deliver one replayed scheduler hook to @p target. */
    static void
    replayHook(SchedulerPolicy &target, const DeferredHook &h)
    {
        switch (h.kind) {
          case DeferredHook::Kind::Arrival:
            target.onArrival(h.req, h.arg);
            break;
          case DeferredHook::Kind::Depart:
            target.onDepart(h.req, h.arg);
            break;
          case DeferredHook::Kind::Command:
            target.onCommand(h.req, h.cmd, h.cycle, h.arg);
            break;
        }
    }

    /**
     * Earliest cycle >= @p now at which tick() could do externally
     * visible work, assuming no new submissions before then (the
     * simulator executes every submission cycle, then re-queries).
     * Conservative lower bound folding the next queued arrival, the
     * next refresh due time, and the next possible command issue
     * (max of nextTryAt_ and the channel's command-bus free time).
     * Ticks at cycles before the returned value are state-preserving
     * no-ops; kCycleNever means idle until outside input.
     */
    Cycle nextEventAt(Cycle now) const;

    /** Completions produced so far; the simulator drains this each cycle. */
    std::vector<Completion> &completions() { return completions_; }

    const ControllerStats &stats() const { return stats_; }

    void
    resetStats()
    {
        stats_.reset();
        latency_.reset();
    }

    /** End-to-end read latency distributions since the last reset. */
    const LatencyTracker &latency() const { return latency_; }

    const dram::Channel &channel() const { return channel_; }

    /**
     * Attach a passive observer to this controller's command stream
     * (protocol auditing, trace dumping). Must be called before traffic
     * flows; observers outlive the controller.
     */
    void
    addCommandObserver(dram::CommandObserver *observer)
    {
        channel_.addObserver(observer);
    }

    /**
     * Attach a request-lifecycle sink (nullptr detaches): each serviced
     * read reports its queueing delay (arrival to column command) and
     * service time (column command to data at the core). Detached cost
     * is one branch per read completion.
     */
    void
    setLifecycleSink(telemetry::LifecycleSink *sink)
    {
        lifecycle_ = sink;
    }

    /**
     * Attach a profiler shard (nullptr detaches): tick and read-scan
     * wall time plus SoA scan-efficiency counters accumulate there. In
     * gang mode the shard is written by whichever lane steps this
     * controller and read by the owner after the join barrier; nothing
     * measured feeds back into simulated state. Detached cost is one
     * branch per tick/scan.
     */
    void
    setProfile(prof::ControllerShard *shard)
    {
        prof_ = shard;
    }

    /** Number of queued + in-flight reads (tests/backpressure checks). */
    std::size_t readLoad() const { return queue_.readLoad(); }
    std::size_t writeLoad() const { return queue_.writeLoad(); }

    // QueueAccess
    std::vector<Request> &readQueue() override { return queue_.reads(); }
    Cycle nextArrivalAt() const override { return queue_.nextArrivalAt(); }

  private:
    /** Next DRAM command needed to advance @p req, given bank state. */
    dram::CommandKind nextCommand(const Request &req) const;

    /**
     * True if @p a should be serviced before @p b under the current
     * scheduler knobs (Algorithm 3 generalized). Both must be issuable.
     */
    bool higherPriority(const Request &a, const Request &b, Cycle now) const;

    /**
     * Snapshot scheduler knobs for the scan (hot-path devirtualization).
     * Rebuilt only when the policy's rank epoch moves or a new thread
     * has been seen; otherwise the cached vector is still valid.
     */
    void refreshPolicyCache(Cycle now);

    /** Cached rank lookup for the current scan. */
    int
    cachedRank(ThreadId thread) const
    {
        return thread < static_cast<ThreadId>(rankCache_.size())
                   ? rankCache_[thread]
                   : sched_->rankOf(id_, thread);
    }

    /**
     * Scan @p candidates and issue one command if possible. When no
     * command can issue, lowers @p nextPossible to the earliest cycle
     * any candidate could become issuable.
     */
    bool tryIssue(std::vector<Request> &candidates, Cycle now,
                  Cycle &nextPossible);

    /**
     * Read-queue scan over the SoA mirror with packed priority keys:
     * same selection as tryIssue over queue_.reads(), but streams dense
     * arrays and skips the canIssue check for candidates whose key loses
     * to the best issuable one found so far. Falls back to tryIssue when
     * a rank does not fit the key's 16-bit field (see packedKeyHi).
     */
    bool tryIssueReads(Cycle now, Cycle &nextPossible);

    /**
     * Static half of the packed priority key for @p thread (marked bit
     * plus biased rank); see tryIssueReads for the full layout. Clears
     * soaRankOk_ when the rank overflows its field.
     */
    std::uint64_t packedKeyHi(ThreadId thread, bool marked);

    /**
     * Issue nextCommand(@p candidates[best]) and apply every side effect
     * (stats, completions, latency, lifecycle, hooks, removal). Shared
     * tail of tryIssue and tryIssueReads; @p candidates must be the live
     * queue vector the index refers into.
     */
    void issueSelected(std::vector<Request> &candidates, std::size_t best,
                       dram::CommandKind cmd, Cycle now);

    /** Progress the refresh engine; true if it consumed the command slot. */
    bool refreshEngine(Cycle now);

    /**
     * Per-rank power management (powerDownIdleCycles > 0): powers a rank
     * back up when work arrives for it, and walks an idle rank down
     * (precharge open banks, then PowerDown). True if it consumed the
     * command slot.
     */
    bool powerManagement(Cycle now);

    /** True when any queued read or write targets rank @p rank. */
    bool rankHasQueuedWork(int rank) const;

    /**
     * Speculative precharge: close one open bank no queued request
     * targets. On failure lowers @p nextPossible to the earliest cycle a
     * speculative precharge could issue. True if one issued.
     */
    bool trySpeculativePrecharge(Cycle now, Cycle &nextPossible);

    /** Closed-page policy: auto-precharge after a column command. */
    void maybeAutoPrecharge(const Request &served);

    ChannelId id_;
    const dram::TimingParams *timing_;
    ControllerParams params_;
    SchedulerPolicy *sched_;
    dram::Channel channel_;
    RequestQueue queue_;
    std::vector<Completion> completions_;
    ControllerStats stats_;
    LatencyTracker latency_;
    telemetry::LifecycleSink *lifecycle_ = nullptr;
    prof::ControllerShard *prof_ = nullptr;
    bool drainingWrites_ = false;
    std::vector<Cycle> refreshDueAt_; //!< per rank, staggered
    std::vector<Cycle> rankLastActiveAt_; //!< last scheduler/refresh command
    Cycle nextTryAt_ = 0; //!< idle fast-path: no scan before this cycle
    std::uint64_t nextSeq_ = 0;

    // Policy snapshot, valid while the policy's rank epoch stands still
    // (see refreshPolicyCache).
    std::vector<int> rankCache_;
    Cycle agingCache_ = kCycleNever;
    bool rowHitAboveRankCache_ = false;
    bool useRowHitCache_ = true;
    ThreadId maxThreadSeen_ = 0;
    std::uint64_t policyCacheEpoch_ = 0; //!< 0 = cache never built

    // SoA scan state. soaRankOk_ means every cached rank fits the packed
    // key's biased 16-bit field; re-evaluated on every cache rebuild,
    // and cleared (until the next rebuild) if an admitted request's rank
    // overflows. openRowScratch_ is the per-scan open-row snapshot,
    // indexed by bank.
    bool soaRankOk_ = true;
    std::vector<RowId> openRowScratch_;

    // Deferred-mode logs (see beginDeferred); empty in immediate mode.
    bool deferring_ = false;
    std::vector<DeferredHook> deferredHooks_;
    std::vector<DeferredLifecycle> deferredLifecycles_;
    std::vector<dram::CommandEvent> deferredEvents_;
};

} // namespace tcm::mem
