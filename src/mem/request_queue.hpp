/**
 * @file
 * Bounded read/write request buffers for one memory controller.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/request.hpp"

namespace tcm::mem {

/**
 * Holds the controller's queued requests: a read request buffer and a
 * write data buffer (Table 3: 128-entry reads, 64-entry writes). Requests
 * that have been transported from the core but are not yet visible
 * (cpuToMcDelay in flight) count against capacity so a core can never
 * oversubscribe the buffer.
 */
class RequestQueue
{
  public:
    RequestQueue(int readCap, int writeCap);

    /** @{ Capacity checks, counting in-flight arrivals. */
    bool canAcceptRead() const;
    bool canAcceptWrite() const;
    /** @} */

    /** Add a request still in transport; becomes visible at arrivedAt. */
    void addInFlight(const Request &req);

    /**
     * Move every in-flight request with arrivedAt <= now into the visible
     * queues; returns the requests that just arrived (for observer
     * hooks). The returned reference aliases an internal scratch buffer
     * that the next admitArrivals call reuses — no per-tick allocation,
     * and the empty-tick fast path touches nothing but the FIFO head.
     */
    const std::vector<Request> &admitArrivals(Cycle now);

    std::vector<Request> &reads() { return reads_; }
    std::vector<Request> &writes() { return writes_; }
    const std::vector<Request> &reads() const { return reads_; }
    const std::vector<Request> &writes() const { return writes_; }

    /** Remove reads()[idx] via swap-pop; returns the removed request. */
    Request removeRead(std::size_t idx);

    /** Remove writes()[idx] via swap-pop; returns the removed request. */
    Request removeWrite(std::size_t idx);

    int readCap() const { return readCap_; }
    int writeCap() const { return writeCap_; }

    /**
     * Arrival time of the next in-flight request (the FIFO is sorted by
     * arrivedAt); kCycleNever when nothing is in transport. Event
     * horizon for admitArrivals: ticks strictly before this admit
     * nothing.
     */
    Cycle
    nextArrivalAt() const
    {
        return inFlight_.empty() ? kCycleNever : inFlight_.front().arrivedAt;
    }

    /** Visible + in-flight read count. */
    std::size_t readLoad() const { return reads_.size() + inFlightReads_; }

    /** Visible + in-flight write count. */
    std::size_t writeLoad() const { return writes_.size() + inFlightWrites_; }

    // -- SoA mirror of the read queue ---------------------------------------
    //
    // The hot candidate scan touches only a handful of Request fields;
    // keeping them in parallel arrays (index-aligned with reads()) lets
    // the scan stream over dense, cache-friendly data instead of
    // striding through whole Request structs. bank/row/arrivedAt are
    // maintained structurally here (admit + swap-pop); the packed
    // priority key is owned by the controller, which rebuilds it when
    // scheduler knobs move (see MemoryController::refreshPolicyCache).

    const std::vector<BankId> &readBank() const { return readBank_; }
    const std::vector<RowId> &readRow() const { return readRow_; }
    const std::vector<Cycle> &readArrivedAt() const { return readArrivedAt_; }
    std::vector<std::uint64_t> &readKeyHi() { return readKeyHi_; }

  private:
    int readCap_;
    int writeCap_;
    std::vector<Request> reads_;
    std::vector<Request> writes_;
    std::vector<Request> inFlight_; //!< FIFO by arrival time
    std::vector<Request> admitScratch_; //!< reused by admitArrivals
    std::size_t inFlightReads_ = 0;
    std::size_t inFlightWrites_ = 0;

    // Index-aligned with reads_.
    std::vector<BankId> readBank_;
    std::vector<RowId> readRow_;
    std::vector<Cycle> readArrivedAt_;
    std::vector<std::uint64_t> readKeyHi_;
};

} // namespace tcm::mem
