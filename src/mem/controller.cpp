#include "mem/controller.hpp"

#include <algorithm>
#include <cassert>

#include "prof/profiler.hpp"
#include "telemetry/sink.hpp"

namespace tcm::mem {

using dram::CommandKind;

MemoryController::MemoryController(ChannelId id,
                                   const dram::TimingParams &timing,
                                   const ControllerParams &params,
                                   SchedulerPolicy &sched)
    : id_(id),
      timing_(&timing),
      params_(params),
      sched_(&sched),
      channel_(timing, id),
      queue_(params.readQueueCap, params.writeQueueCap)
{
    // Stagger per-rank refreshes across the tREFI window, as real
    // controllers do, so at most one rank is unavailable at a time.
    refreshDueAt_.resize(timing.ranksPerChannel);
    for (int r = 0; r < timing.ranksPerChannel; ++r) {
        refreshDueAt_[r] =
            timing.refreshEnabled
                ? timing.tREFI + r * (timing.tREFI / timing.ranksPerChannel)
                : kCycleNever;
    }
    rankLastActiveAt_.resize(timing.ranksPerChannel, 0);
    openRowScratch_.resize(timing.banksPerChannel, kNoRow);
}

void
MemoryController::beginDeferred()
{
    assert(deferredHooks_.empty() && deferredLifecycles_.empty() &&
           deferredEvents_.empty());
    deferring_ = true;
    channel_.bufferEvents(&deferredEvents_);
}

void
MemoryController::endDeferred()
{
    deferring_ = false;
    channel_.bufferEvents(nullptr);
}

std::size_t
MemoryController::stepSpan(Cycle from, Cycle to)
{
    std::size_t ticks = 0;
    for (Cycle u = from; u < to;) {
        tick(u);
        ++ticks;
        // Ticks before the controller's own event horizon are
        // state-preserving no-ops — jump them, independently of what the
        // other workers' controllers are doing.
        Cycle next = nextEventAt(u + 1);
        if (next == kCycleNever)
            break;
        u = next;
    }
    return ticks;
}

void
MemoryController::submitRead(ThreadId thread, std::uint64_t missId,
                             BankId bank, RowId row, ColId col, Cycle now)
{
    Request req;
    req.seq = nextSeq_++;
    req.thread = thread;
    req.isWrite = false;
    req.channel = id_;
    req.bank = bank;
    req.row = row;
    req.col = col;
    req.issuedAt = now;
    req.arrivedAt = now + timing_->cpuToMcDelay;
    req.missId = missId;
    maxThreadSeen_ = std::max(maxThreadSeen_, thread);
    queue_.addInFlight(req);
}

void
MemoryController::submitWrite(ThreadId thread, BankId bank, RowId row,
                              ColId col, Cycle now)
{
    Request req;
    req.seq = nextSeq_++;
    req.thread = thread;
    req.isWrite = true;
    req.channel = id_;
    req.bank = bank;
    req.row = row;
    req.col = col;
    req.issuedAt = now;
    req.arrivedAt = now + timing_->cpuToMcDelay;
    maxThreadSeen_ = std::max(maxThreadSeen_, thread);
    queue_.addInFlight(req);
}

CommandKind
MemoryController::nextCommand(const Request &req) const
{
    const dram::Bank &bank = channel_.bank(req.bank);
    if (bank.precharged())
        return CommandKind::Activate;
    if (bank.openRow() == req.row)
        return req.isWrite ? CommandKind::Write : CommandKind::Read;
    return CommandKind::Precharge;
}

void
MemoryController::refreshPolicyCache(Cycle now)
{
    (void)now;
    // Ranks only move when the policy says so (rank epoch); between
    // bumps the cached vector is exact, so re-querying rankOf for every
    // thread on every scan would be pure waste. A cache smaller than
    // the thread population (a new thread appeared since the build) is
    // also rebuilt, since cachedRank's out-of-range fallback is the
    // virtual call this cache exists to avoid.
    const std::uint64_t epoch = sched_->rankEpoch();
    const std::size_t want = static_cast<std::size_t>(maxThreadSeen_) + 1;
    if (epoch == policyCacheEpoch_ && rankCache_.size() >= want)
        return;
    policyCacheEpoch_ = epoch;
    rankCache_.resize(want);
    for (ThreadId t = 0; t <= maxThreadSeen_; ++t)
        rankCache_[t] = sched_->rankOf(id_, t);
    agingCache_ = sched_->agingThreshold();
    rowHitAboveRankCache_ = sched_->rowHitAboveRank();
    useRowHitCache_ = sched_->useRowHit();

    // Rebuild the static key halves for every queued read. Rank and
    // marked bits only move with the rank epoch (PAR-BS bumps it
    // whenever it flips marked bits), so between rebuilds the keys
    // stamped here — and at admit time for new arrivals — stay exact.
    soaRankOk_ = true;
    const std::vector<Request> &reads = queue_.reads();
    std::vector<std::uint64_t> &keyHi = queue_.readKeyHi();
    for (std::size_t i = 0; i < reads.size(); ++i)
        keyHi[i] = packedKeyHi(reads[i].thread, reads[i].marked);
}

std::uint64_t
MemoryController::packedKeyHi(ThreadId thread, bool marked)
{
    // Key layout (descending priority, mirrors higherPriority):
    //   bit 63     over-age escalation        (dynamic, set per scan)
    //   bit 62     batch bit (PAR-BS)
    //   bit 61     row hit when rowHitAboveRank (dynamic, set per scan)
    //   bits 45-60 rank, biased by 32768
    //   bit 44     row hit otherwise          (dynamic, set per scan)
    // keyLo is ~arrivedAt (older is larger); exact ties fall back to an
    // explicit seq compare in the scan.
    const int rank = cachedRank(thread);
    if (rank < -32768 || rank > 32767)
        soaRankOk_ = false; // until the next rebuild re-checks
    std::uint64_t hi = static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(rank + 32768) & 0xFFFFu)
                       << 45;
    if (marked)
        hi |= std::uint64_t{1} << 62;
    return hi;
}

bool
MemoryController::higherPriority(const Request &a, const Request &b,
                                 Cycle now) const
{
    // Tier 1: over-age escalation (ATLAS starvation threshold).
    if (agingCache_ != kCycleNever) {
        bool aOld = a.arrivedAt + agingCache_ <= now;
        bool bOld = b.arrivedAt + agingCache_ <= now;
        if (aOld != bOld)
            return aOld;
    }

    // Tier 2: batch bit (PAR-BS).
    if (a.marked != b.marked)
        return a.marked;

    int aRank = cachedRank(a.thread);
    int bRank = cachedRank(b.thread);
    bool aHit = channel_.bank(a.bank).openRow() == a.row;
    bool bHit = channel_.bank(b.bank).openRow() == b.row;
    if (!useRowHitCache_) {
        aHit = false;
        bHit = false;
    }

    if (rowHitAboveRankCache_) {
        if (aHit != bHit)
            return aHit;
        if (aRank != bRank)
            return aRank > bRank;
    } else {
        if (aRank != bRank)
            return aRank > bRank;
        if (aHit != bHit)
            return aHit;
    }

    // Oldest first; seq breaks exact ties deterministically.
    if (a.arrivedAt != b.arrivedAt)
        return a.arrivedAt < b.arrivedAt;
    return a.seq < b.seq;
}

void
MemoryController::maybeAutoPrecharge(const Request &served)
{
    if (params_.pagePolicy != PagePolicy::Closed)
        return;
    // Smart-closed: keep the row open if another queued request would
    // hit it.
    for (const Request &r : queue_.reads())
        if (r.bank == served.bank && r.row == served.row)
            return;
    for (const Request &r : queue_.writes())
        if (r.bank == served.bank && r.row == served.row)
            return;
    channel_.autoPrecharge(served.bank);
    ++stats_.precharges;
}

bool
MemoryController::refreshEngine(Cycle now)
{
    const int banks_per_rank = timing_->banksPerRank();
    bool pending = false;
    for (int r = 0; r < channel_.numRanks(); ++r) {
        if (now < refreshDueAt_[r])
            continue;
        pending = true;
        BankId base = static_cast<BankId>(r * banks_per_rank);
        // A powered-down rank cannot accept a refresh: power it up first
        // (tCKE permitting) and keep holding the command slot.
        if (channel_.rankPoweredDown(r)) {
            if (channel_.canIssue(CommandKind::PowerUp, base, now)) {
                channel_.issue(CommandKind::PowerUp, base, kNoRow, now);
                ++stats_.powerUps;
            }
            return true;
        }
        if (channel_.canIssue(CommandKind::Refresh, base, now)) {
            channel_.issue(CommandKind::Refresh, base, kNoRow, now);
            ++stats_.refreshes;
            refreshDueAt_[r] += timing_->tREFI;
            rankLastActiveAt_[r] = now;
            return true;
        }
        // Work toward a rank-precharged state; one PRE per cycle.
        if (channel_.cmdBusFree(now)) {
            for (BankId b = base; b < base + banks_per_rank; ++b) {
                if (channel_.canIssue(CommandKind::Precharge, b, now)) {
                    channel_.issue(CommandKind::Precharge, b, kNoRow, now);
                    ++stats_.precharges;
                    return true;
                }
            }
        }
    }
    // While a refresh is owed, the command slot is reserved for it.
    return pending;
}

bool
MemoryController::rankHasQueuedWork(int rank) const
{
    for (const Request &r : queue_.reads())
        if (channel_.rankOf(r.bank) == rank)
            return true;
    for (const Request &r : queue_.writes())
        if (channel_.rankOf(r.bank) == rank)
            return true;
    return false;
}

bool
MemoryController::powerManagement(Cycle now)
{
    const int banks_per_rank = timing_->banksPerRank();
    for (int r = 0; r < channel_.numRanks(); ++r) {
        BankId base = static_cast<BankId>(r * banks_per_rank);
        if (channel_.rankPoweredDown(r)) {
            // Wake the rank as soon as work is queued for it (refresh
            // wake-ups are the refresh engine's job).
            if (rankHasQueuedWork(r) &&
                channel_.canIssue(CommandKind::PowerUp, base, now)) {
                channel_.issue(CommandKind::PowerUp, base, kNoRow, now);
                ++stats_.powerUps;
                rankLastActiveAt_[r] = now;
                return true;
            }
            continue;
        }
        if (now < rankLastActiveAt_[r] + params_.powerDownIdleCycles ||
            rankHasQueuedWork(r))
            continue;
        // Idle long enough: close open banks (one per cycle), then enter
        // power-down. These precharges intentionally do not refresh the
        // idle stamp, or each would push the entry out by a full
        // threshold.
        if (channel_.canIssue(CommandKind::PowerDown, base, now)) {
            channel_.issue(CommandKind::PowerDown, base, kNoRow, now);
            ++stats_.powerDowns;
            return true;
        }
        if (channel_.cmdBusFree(now)) {
            for (BankId b = base; b < base + banks_per_rank; ++b) {
                if (channel_.canIssue(CommandKind::Precharge, b, now)) {
                    channel_.issue(CommandKind::Precharge, b, kNoRow, now);
                    ++stats_.precharges;
                    return true;
                }
            }
        }
    }
    return false;
}

bool
MemoryController::trySpeculativePrecharge(Cycle now, Cycle &nextPossible)
{
    // Close open banks that no queued request targets; demand precharges
    // (row conflicts) already belong to the scheduling scans.
    for (int b = 0; b < channel_.numBanks(); ++b) {
        if (channel_.bank(b).precharged())
            continue;
        bool wanted = false;
        for (const Request &r : queue_.reads())
            if (r.bank == b) {
                wanted = true;
                break;
            }
        if (!wanted)
            for (const Request &r : queue_.writes())
                if (r.bank == b) {
                    wanted = true;
                    break;
                }
        if (wanted)
            continue;
        if (channel_.canIssue(CommandKind::Precharge, b, now)) {
            channel_.issue(CommandKind::Precharge, b, kNoRow, now);
            ++stats_.precharges;
            ++stats_.speculativePrecharges;
            return true;
        }
        nextPossible = std::min(
            nextPossible, channel_.earliestIssue(CommandKind::Precharge, b));
    }
    return false;
}

bool
MemoryController::tryIssue(std::vector<Request> &candidates, Cycle now,
                           Cycle &nextPossible)
{
    int best = -1;
    CommandKind bestCmd = CommandKind::Read;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Request &req = candidates[i];
        CommandKind cmd = nextCommand(req);
        if (!channel_.canIssue(cmd, req.bank, now)) {
            nextPossible = std::min(
                nextPossible, channel_.earliestIssue(cmd, req.bank));
            continue;
        }
        if (best < 0 || higherPriority(req, candidates[best], now)) {
            best = static_cast<int>(i);
            bestCmd = cmd;
        }
    }
    if (best < 0)
        return false;
    issueSelected(candidates, static_cast<std::size_t>(best), bestCmd, now);
    return true;
}

bool
MemoryController::tryIssueReads(Cycle now, Cycle &nextPossible)
{
    prof::ScopedPhase profScan(prof_ ? &prof_->phases : nullptr,
                               prof::Phase::ReadScan);
    std::vector<Request> &reads = queue_.reads();
    if (!soaRankOk_) {
        if (prof_)
            ++prof_->scan.fallbackScans;
        return tryIssue(reads, now, nextPossible);
    }
    const std::size_t n = reads.size();
    if (n == 0)
        return false;

    const BankId *bank = queue_.readBank().data();
    const RowId *row = queue_.readRow().data();
    const Cycle *arrivedAt = queue_.readArrivedAt().data();
    const std::uint64_t *keyHi = queue_.readKeyHi().data();

    // Open-row snapshot: one load per bank up front instead of a Bank
    // dereference per candidate (bank state cannot change mid-scan).
    const int nb = channel_.numBanks();
    for (int b = 0; b < nb; ++b)
        openRowScratch_[b] = channel_.bank(b).openRow();
    const RowId *openRow = openRowScratch_.data();

    // agingOn folds the "no aging" and "nothing can be aged yet" cases:
    // arrivedAt + agingCache_ <= now has no solution while now is below
    // the threshold itself.
    const bool agingOn = agingCache_ != kCycleNever && now >= agingCache_;
    const Cycle agedCutoff = agingOn ? now - agingCache_ : 0;
    const std::uint64_t rowHitMask =
        useRowHitCache_
            ? std::uint64_t{1} << (rowHitAboveRankCache_ ? 61 : 44)
            : 0;

    int best = -1;
    CommandKind bestCmd = CommandKind::Read;
    std::uint64_t bestHi = 0;
    std::uint64_t bestLo = 0;
    std::uint64_t bestSeq = 0;
    std::uint64_t skipped = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t hi = keyHi[i];
        hi |= static_cast<std::uint64_t>(agingOn && arrivedAt[i] <= agedCutoff)
              << 63;
        if (openRow[bank[i]] == row[i])
            hi |= rowHitMask;
        const std::uint64_t lo = ~arrivedAt[i];
        if (best >= 0) {
            // Dominance skip: a candidate whose key loses to the best
            // issuable one found so far cannot win the scan, so the
            // (much costlier) canIssue probe is unnecessary.
            if (hi < bestHi) {
                ++skipped;
                continue;
            }
            if (hi == bestHi &&
                (lo < bestLo || (lo == bestLo && reads[i].seq > bestSeq))) {
                ++skipped;
                continue;
            }
        }
        CommandKind cmd = nextCommand(reads[i]);
        if (!channel_.canIssue(cmd, bank[i], now)) {
            // nextPossible is only trusted when no command issues this
            // cycle — and then best stayed negative, no candidate was
            // dominance-skipped, and this accumulation is complete.
            nextPossible =
                std::min(nextPossible, channel_.earliestIssue(cmd, bank[i]));
            continue;
        }
        best = static_cast<int>(i);
        bestCmd = cmd;
        bestHi = hi;
        bestLo = lo;
        bestSeq = reads[i].seq;
    }
    if (prof_) {
        ++prof_->scan.soaScans;
        prof_->scan.readsExamined += n - skipped;
        prof_->scan.dominanceSkipped += skipped;
    }
    if (best < 0)
        return false;
    issueSelected(reads, static_cast<std::size_t>(best), bestCmd, now);
    return true;
}

void
MemoryController::issueSelected(std::vector<Request> &candidates,
                                std::size_t best, CommandKind cmd, Cycle now)
{
    Request req = candidates[best]; // copy: removal invalidates references
    dram::IssueResult res = channel_.issue(cmd, req.bank, req.row, now);
    stats_.bankBusyCycles += res.occupancy;
    rankLastActiveAt_[channel_.rankOf(req.bank)] = now;
    if (deferring_)
        deferredHooks_.push_back(DeferredHook{
            DeferredHook::Kind::Command, cmd, now, res.occupancy, req});
    else
        sched_->onCommand(req, cmd, now, res.occupancy);

    switch (cmd) {
      case CommandKind::Activate:
        ++stats_.activates;
        ++stats_.rowMisses;
        candidates[best].sawActivate = true;
        break;
      case CommandKind::Precharge:
        ++stats_.precharges;
        break;
      case CommandKind::Read:
        ++stats_.readsServiced;
        if (!req.sawActivate)
            ++stats_.rowHits;
        completions_.push_back(Completion{
            req.thread, req.missId, res.dataEnd + timing_->mcToCpuDelay});
        latency_.record(req.thread,
                        res.dataEnd + timing_->mcToCpuDelay - req.issuedAt);
        if (lifecycle_) {
            if (deferring_)
                deferredLifecycles_.push_back(DeferredLifecycle{
                    now, req.thread, now - req.arrivedAt,
                    res.dataEnd + timing_->mcToCpuDelay - now});
            else
                lifecycle_->recordLifecycle(
                    req.thread, now - req.arrivedAt,
                    res.dataEnd + timing_->mcToCpuDelay - now);
        }
        queue_.removeRead(best);
        // Departure is stamped at the end of the data burst: a request
        // is "outstanding" (Table 2's load counters) until serviced, not
        // merely until its column command issues.
        if (deferring_)
            deferredHooks_.push_back(DeferredHook{
                DeferredHook::Kind::Depart, cmd, now, res.dataEnd, req});
        else
            sched_->onDepart(req, res.dataEnd);
        maybeAutoPrecharge(req);
        break;
      case CommandKind::Write:
        ++stats_.writesServiced;
        if (!req.sawActivate)
            ++stats_.rowHits;
        queue_.removeWrite(best);
        if (deferring_)
            deferredHooks_.push_back(DeferredHook{
                DeferredHook::Kind::Depart, cmd, now, res.dataEnd, req});
        else
            sched_->onDepart(req, res.dataEnd);
        maybeAutoPrecharge(req);
        break;
      case CommandKind::Refresh:
      case CommandKind::PowerDown:
      case CommandKind::PowerUp:
        break; // issued by the refresh/power engines, never selected here
    }
}

void
MemoryController::tick(Cycle now)
{
    prof::ScopedPhase profTick(prof_ ? &prof_->phases : nullptr,
                               prof::Phase::CtrlTick);
    {
        const std::vector<Request> &arrived = queue_.admitArrivals(now);
        if (!arrived.empty()) {
            // The just-admitted reads occupy the queue tail in arrival
            // order; stamp their static key halves with the same cached
            // knobs the queued keys were built from.
            std::vector<std::uint64_t> &keyHi = queue_.readKeyHi();
            std::size_t newReads = 0;
            for (const Request &req : arrived)
                newReads += req.isWrite ? 0u : 1u;
            std::size_t slot = keyHi.size() - newReads;
            for (const Request &req : arrived) {
                if (!req.isWrite)
                    keyHi[slot++] = packedKeyHi(req.thread, req.marked);
                if (deferring_)
                    deferredHooks_.push_back(DeferredHook{
                        DeferredHook::Kind::Arrival, CommandKind::Read, now,
                        now, req});
                else
                    sched_->onArrival(req, now);
            }
            nextTryAt_ = now; // a fresh request may be issuable at once
        }
    }

    if (timing_->refreshEnabled && refreshEngine(now)) {
        nextTryAt_ = now; // refresh touched channel state
        return;
    }

    if (params_.powerDownIdleCycles > 0 && powerManagement(now)) {
        nextTryAt_ = now; // power state moved; rescan next cycle
        return;
    }

    if (params_.idleSkip && now < nextTryAt_)
        return;

    if (!channel_.cmdBusFree(now))
        return;

    // Decide whether this cycle serves the read stream or drains writes.
    if (drainingWrites_) {
        if (queue_.writes().size() <=
            static_cast<std::size_t>(params_.writeDrain.lowWatermark)) {
            drainingWrites_ = false;
        }
    } else if (queue_.writes().size() >=
               static_cast<std::size_t>(params_.writeDrain.highWatermark)) {
        drainingWrites_ = true;
        ++stats_.writeDrains;
    }

    // Lower bound on the next cycle a command could issue, refined by
    // the scans below; only trusted when no command issues this cycle.
    Cycle next_possible = kCycleNever;

    refreshPolicyCache(now);

    if (drainingWrites_) {
        if (tryIssue(queue_.writes(), now, next_possible)) {
            nextTryAt_ = now + timing_->tCK;
            return;
        }
        // Opportunistic drains still make progress on reads if no write
        // can issue this cycle (keeps the bus utilized); Strict reserves
        // the whole latched drain for writes.
        if (params_.writeDrain.mode == WriteDrainMode::Opportunistic &&
            tryIssueReads(now, next_possible)) {
            nextTryAt_ = now + timing_->tCK;
            return;
        }
        if (params_.speculativePrecharge &&
            trySpeculativePrecharge(now, next_possible)) {
            nextTryAt_ = now + timing_->tCK;
            return;
        }
        nextTryAt_ = next_possible;
        return;
    }

    if (tryIssueReads(now, next_possible)) {
        nextTryAt_ = now + timing_->tCK;
        return;
    }
    // Opportunistic write issue when the read stream cannot use the slot.
    if (tryIssue(queue_.writes(), now, next_possible)) {
        nextTryAt_ = now + timing_->tCK;
        return;
    }
    if (params_.speculativePrecharge &&
        trySpeculativePrecharge(now, next_possible)) {
        nextTryAt_ = now + timing_->tCK;
        return;
    }
    nextTryAt_ = next_possible;
}

Cycle
MemoryController::nextEventAt(Cycle now) const
{
    // Next transported request becomes visible (admitArrivals + hooks).
    Cycle horizon = queue_.nextArrivalAt();

    if (timing_->refreshEnabled) {
        for (Cycle due : refreshDueAt_) {
            // While a refresh is owed the engine owns the command slot
            // and issues precharges/refreshes on its own timing; don't
            // predict it, execute every cycle until it retires the owed
            // refresh (short: bounded by tRP + tRFC).
            if (due <= now)
                return now;
            horizon = std::min(horizon, due);
        }
    }

    // Next scheduling scan that could issue a command. nextTryAt_ is a
    // correct lower bound on the next legal issue time in both idleSkip
    // modes (it is maintained identically; idleSkip only selects
    // whether the per-cycle tick consults it), and no command can leave
    // before the command bus frees. Scans before that bound are no-ops:
    // priorities (ranks, marked bits, aging) affect which request wins
    // a scan, never whether a command can legally issue.
    if (!queue_.reads().empty() || !queue_.writes().empty())
        horizon = std::min(horizon,
                           std::max(nextTryAt_, channel_.cmdBusFreeAt()));

    // A pending speculative precharge is scan-independent work: it can
    // issue even with empty queues (which the scan horizon above does
    // not cover), so fold the earliest eligible one.
    if (params_.speculativePrecharge) {
        for (int b = 0; b < channel_.numBanks(); ++b) {
            if (channel_.bank(b).precharged())
                continue;
            bool wanted = false;
            for (const Request &r : queue_.reads())
                if (r.bank == b) {
                    wanted = true;
                    break;
                }
            if (!wanted)
                for (const Request &r : queue_.writes())
                    if (r.bank == b) {
                        wanted = true;
                        break;
                    }
            if (!wanted)
                horizon = std::min(
                    horizon,
                    channel_.earliestIssue(dram::CommandKind::Precharge, b));
        }
    }

    // Power-management events (powerDownIdleCycles > 0): a pending
    // wake-up, or an idle rank's next precharge/PowerDown step. Skipping
    // past these would shift when PDE/PDX issue and break cross-mode
    // trace identity.
    if (params_.powerDownIdleCycles > 0) {
        const int banks_per_rank = timing_->banksPerRank();
        for (int r = 0; r < channel_.numRanks(); ++r) {
            BankId base = static_cast<BankId>(r * banks_per_rank);
            if (channel_.rankPoweredDown(r)) {
                // Stays down until work arrives (arrival horizon above)
                // or refresh comes due (refresh horizon above); a
                // pending wake-up waits only on tCKE and the bus.
                if (rankHasQueuedWork(r))
                    horizon = std::min(
                        horizon, std::max(channel_.rankPowerUpAllowedAt(r),
                                          channel_.cmdBusFreeAt()));
                continue;
            }
            if (rankHasQueuedWork(r))
                continue;
            Cycle idleAt =
                rankLastActiveAt_[r] + params_.powerDownIdleCycles;
            Cycle step =
                channel_.earliestIssue(dram::CommandKind::PowerDown, base);
            for (BankId b = base; b < base + banks_per_rank; ++b)
                step = std::min(step,
                                channel_.earliestIssue(
                                    dram::CommandKind::Precharge, b));
            if (step != kCycleNever)
                horizon = std::min(horizon, std::max(idleAt, step));
        }
    }

    return std::max(horizon, now);
}

} // namespace tcm::mem
