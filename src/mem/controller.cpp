#include "mem/controller.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/sink.hpp"

namespace tcm::mem {

using dram::CommandKind;

MemoryController::MemoryController(ChannelId id,
                                   const dram::TimingParams &timing,
                                   const ControllerParams &params,
                                   SchedulerPolicy &sched)
    : id_(id),
      timing_(&timing),
      params_(params),
      sched_(&sched),
      channel_(timing, id),
      queue_(params.readQueueCap, params.writeQueueCap)
{
    // Stagger per-rank refreshes across the tREFI window, as real
    // controllers do, so at most one rank is unavailable at a time.
    refreshDueAt_.resize(timing.ranksPerChannel);
    for (int r = 0; r < timing.ranksPerChannel; ++r) {
        refreshDueAt_[r] =
            timing.refreshEnabled
                ? timing.tREFI + r * (timing.tREFI / timing.ranksPerChannel)
                : kCycleNever;
    }
}

void
MemoryController::submitRead(ThreadId thread, std::uint64_t missId,
                             BankId bank, RowId row, ColId col, Cycle now)
{
    Request req;
    req.seq = nextSeq_++;
    req.thread = thread;
    req.isWrite = false;
    req.channel = id_;
    req.bank = bank;
    req.row = row;
    req.col = col;
    req.issuedAt = now;
    req.arrivedAt = now + timing_->cpuToMcDelay;
    req.missId = missId;
    maxThreadSeen_ = std::max(maxThreadSeen_, thread);
    queue_.addInFlight(req);
}

void
MemoryController::submitWrite(ThreadId thread, BankId bank, RowId row,
                              ColId col, Cycle now)
{
    Request req;
    req.seq = nextSeq_++;
    req.thread = thread;
    req.isWrite = true;
    req.channel = id_;
    req.bank = bank;
    req.row = row;
    req.col = col;
    req.issuedAt = now;
    req.arrivedAt = now + timing_->cpuToMcDelay;
    maxThreadSeen_ = std::max(maxThreadSeen_, thread);
    queue_.addInFlight(req);
}

CommandKind
MemoryController::nextCommand(const Request &req) const
{
    const dram::Bank &bank = channel_.bank(req.bank);
    if (bank.precharged())
        return CommandKind::Activate;
    if (bank.openRow() == req.row)
        return req.isWrite ? CommandKind::Write : CommandKind::Read;
    return CommandKind::Precharge;
}

void
MemoryController::refreshPolicyCache(Cycle now)
{
    (void)now;
    // Ranks only move when the policy says so (rank epoch); between
    // bumps the cached vector is exact, so re-querying rankOf for every
    // thread on every scan would be pure waste. A cache smaller than
    // the thread population (a new thread appeared since the build) is
    // also rebuilt, since cachedRank's out-of-range fallback is the
    // virtual call this cache exists to avoid.
    const std::uint64_t epoch = sched_->rankEpoch();
    const std::size_t want = static_cast<std::size_t>(maxThreadSeen_) + 1;
    if (epoch == policyCacheEpoch_ && rankCache_.size() >= want)
        return;
    policyCacheEpoch_ = epoch;
    rankCache_.resize(want);
    for (ThreadId t = 0; t <= maxThreadSeen_; ++t)
        rankCache_[t] = sched_->rankOf(id_, t);
    agingCache_ = sched_->agingThreshold();
    rowHitAboveRankCache_ = sched_->rowHitAboveRank();
    useRowHitCache_ = sched_->useRowHit();
}

bool
MemoryController::higherPriority(const Request &a, const Request &b,
                                 Cycle now) const
{
    // Tier 1: over-age escalation (ATLAS starvation threshold).
    if (agingCache_ != kCycleNever) {
        bool aOld = a.arrivedAt + agingCache_ <= now;
        bool bOld = b.arrivedAt + agingCache_ <= now;
        if (aOld != bOld)
            return aOld;
    }

    // Tier 2: batch bit (PAR-BS).
    if (a.marked != b.marked)
        return a.marked;

    int aRank = cachedRank(a.thread);
    int bRank = cachedRank(b.thread);
    bool aHit = channel_.bank(a.bank).openRow() == a.row;
    bool bHit = channel_.bank(b.bank).openRow() == b.row;
    if (!useRowHitCache_) {
        aHit = false;
        bHit = false;
    }

    if (rowHitAboveRankCache_) {
        if (aHit != bHit)
            return aHit;
        if (aRank != bRank)
            return aRank > bRank;
    } else {
        if (aRank != bRank)
            return aRank > bRank;
        if (aHit != bHit)
            return aHit;
    }

    // Oldest first; seq breaks exact ties deterministically.
    if (a.arrivedAt != b.arrivedAt)
        return a.arrivedAt < b.arrivedAt;
    return a.seq < b.seq;
}

void
MemoryController::maybeAutoPrecharge(const Request &served)
{
    if (params_.pagePolicy != PagePolicy::Closed)
        return;
    // Smart-closed: keep the row open if another queued request would
    // hit it.
    for (const Request &r : queue_.reads())
        if (r.bank == served.bank && r.row == served.row)
            return;
    for (const Request &r : queue_.writes())
        if (r.bank == served.bank && r.row == served.row)
            return;
    channel_.autoPrecharge(served.bank);
    ++stats_.precharges;
}

bool
MemoryController::refreshEngine(Cycle now)
{
    const int banks_per_rank = timing_->banksPerRank();
    bool pending = false;
    for (int r = 0; r < channel_.numRanks(); ++r) {
        if (now < refreshDueAt_[r])
            continue;
        pending = true;
        BankId base = static_cast<BankId>(r * banks_per_rank);
        if (channel_.canIssue(CommandKind::Refresh, base, now)) {
            channel_.issue(CommandKind::Refresh, base, kNoRow, now);
            ++stats_.refreshes;
            refreshDueAt_[r] += timing_->tREFI;
            return true;
        }
        // Work toward a rank-precharged state; one PRE per cycle.
        if (channel_.cmdBusFree(now)) {
            for (BankId b = base; b < base + banks_per_rank; ++b) {
                if (channel_.canIssue(CommandKind::Precharge, b, now)) {
                    channel_.issue(CommandKind::Precharge, b, kNoRow, now);
                    ++stats_.precharges;
                    return true;
                }
            }
        }
    }
    // While a refresh is owed, the command slot is reserved for it.
    return pending;
}

bool
MemoryController::tryIssue(std::vector<Request> &candidates, Cycle now,
                           Cycle &nextPossible)
{
    int best = -1;
    CommandKind bestCmd = CommandKind::Read;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Request &req = candidates[i];
        CommandKind cmd = nextCommand(req);
        if (!channel_.canIssue(cmd, req.bank, now)) {
            nextPossible = std::min(
                nextPossible, channel_.earliestIssue(cmd, req.bank));
            continue;
        }
        if (best < 0 || higherPriority(req, candidates[best], now)) {
            best = static_cast<int>(i);
            bestCmd = cmd;
        }
    }
    if (best < 0)
        return false;

    Request req = candidates[best]; // copy: removal invalidates references
    dram::IssueResult res = channel_.issue(bestCmd, req.bank, req.row, now);
    stats_.bankBusyCycles += res.occupancy;
    sched_->onCommand(req, bestCmd, now, res.occupancy);

    switch (bestCmd) {
      case CommandKind::Activate:
        ++stats_.activates;
        ++stats_.rowMisses;
        candidates[best].sawActivate = true;
        break;
      case CommandKind::Precharge:
        ++stats_.precharges;
        break;
      case CommandKind::Read:
        ++stats_.readsServiced;
        if (!req.sawActivate)
            ++stats_.rowHits;
        completions_.push_back(Completion{
            req.thread, req.missId, res.dataEnd + timing_->mcToCpuDelay});
        latency_.record(req.thread,
                        res.dataEnd + timing_->mcToCpuDelay - req.issuedAt);
        if (lifecycle_)
            lifecycle_->recordLifecycle(
                req.thread, now - req.arrivedAt,
                res.dataEnd + timing_->mcToCpuDelay - now);
        queue_.removeRead(static_cast<std::size_t>(best));
        // Departure is stamped at the end of the data burst: a request
        // is "outstanding" (Table 2's load counters) until serviced, not
        // merely until its column command issues.
        sched_->onDepart(req, res.dataEnd);
        maybeAutoPrecharge(req);
        break;
      case CommandKind::Write:
        ++stats_.writesServiced;
        if (!req.sawActivate)
            ++stats_.rowHits;
        queue_.removeWrite(static_cast<std::size_t>(best));
        sched_->onDepart(req, res.dataEnd);
        maybeAutoPrecharge(req);
        break;
      case CommandKind::Refresh:
        break;
    }
    return true;
}

void
MemoryController::tick(Cycle now)
{
    {
        std::vector<Request> arrived = queue_.admitArrivals(now);
        if (!arrived.empty()) {
            for (const Request &req : arrived)
                sched_->onArrival(req, now);
            nextTryAt_ = now; // a fresh request may be issuable at once
        }
    }

    if (timing_->refreshEnabled && refreshEngine(now)) {
        nextTryAt_ = now; // refresh touched channel state
        return;
    }

    if (params_.idleSkip && now < nextTryAt_)
        return;

    if (!channel_.cmdBusFree(now))
        return;

    // Decide whether this cycle serves the read stream or drains writes.
    if (drainingWrites_) {
        if (queue_.writes().size() <=
            static_cast<std::size_t>(params_.drainLowWatermark)) {
            drainingWrites_ = false;
        }
    } else if (queue_.writes().size() >=
               static_cast<std::size_t>(params_.drainHighWatermark)) {
        drainingWrites_ = true;
    }

    // Lower bound on the next cycle a command could issue, refined by
    // the scans below; only trusted when no command issues this cycle.
    Cycle next_possible = kCycleNever;

    refreshPolicyCache(now);

    if (drainingWrites_) {
        if (tryIssue(queue_.writes(), now, next_possible)) {
            nextTryAt_ = now + timing_->tCK;
            return;
        }
        // While draining, still make progress on reads if no write can
        // issue this cycle (keeps the bus utilized).
        if (tryIssue(queue_.reads(), now, next_possible)) {
            nextTryAt_ = now + timing_->tCK;
            return;
        }
        nextTryAt_ = next_possible;
        return;
    }

    if (tryIssue(queue_.reads(), now, next_possible)) {
        nextTryAt_ = now + timing_->tCK;
        return;
    }
    // Opportunistic write issue when the read stream cannot use the slot.
    if (tryIssue(queue_.writes(), now, next_possible)) {
        nextTryAt_ = now + timing_->tCK;
        return;
    }
    nextTryAt_ = next_possible;
}

Cycle
MemoryController::nextEventAt(Cycle now) const
{
    // Next transported request becomes visible (admitArrivals + hooks).
    Cycle horizon = queue_.nextArrivalAt();

    if (timing_->refreshEnabled) {
        for (Cycle due : refreshDueAt_) {
            // While a refresh is owed the engine owns the command slot
            // and issues precharges/refreshes on its own timing; don't
            // predict it, execute every cycle until it retires the owed
            // refresh (short: bounded by tRP + tRFC).
            if (due <= now)
                return now;
            horizon = std::min(horizon, due);
        }
    }

    // Next scheduling scan that could issue a command. nextTryAt_ is a
    // correct lower bound on the next legal issue time in both idleSkip
    // modes (it is maintained identically; idleSkip only selects
    // whether the per-cycle tick consults it), and no command can leave
    // before the command bus frees. Scans before that bound are no-ops:
    // priorities (ranks, marked bits, aging) affect which request wins
    // a scan, never whether a command can legally issue.
    if (!queue_.reads().empty() || !queue_.writes().empty())
        horizon = std::min(horizon,
                           std::max(nextTryAt_, channel_.cmdBusFreeAt()));

    return std::max(horizon, now);
}

} // namespace tcm::mem
