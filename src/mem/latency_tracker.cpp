#include "mem/latency_tracker.hpp"

namespace tcm::mem {

namespace {

stats::Histogram
ladder()
{
    // 100 * 1.5^k: 100 .. ~2.2M cycles over 25 buckets.
    return stats::Histogram::exponential(100.0, 1.5, 25);
}

const RunningStat kEmptyStat{};

} // namespace

LatencyTracker::LatencyTracker() : aggregate_(ladder())
{
}

void
LatencyTracker::grow(ThreadId t)
{
    while (static_cast<ThreadId>(perThread_.size()) <= t) {
        perThread_.emplace_back();
        perThreadHist_.push_back(ladder());
    }
}

void
LatencyTracker::record(ThreadId thread, Cycle latency)
{
    grow(thread);
    double v = static_cast<double>(latency);
    aggregate_.add(v);
    perThread_[thread].add(v);
    perThreadHist_[thread].add(v);
}

const RunningStat &
LatencyTracker::threadStats(ThreadId t) const
{
    if (t < 0 || t >= static_cast<ThreadId>(perThread_.size()))
        return kEmptyStat;
    return perThread_[t];
}

const stats::Histogram &
LatencyTracker::threadHistogram(ThreadId t) const
{
    static const stats::Histogram kEmpty = ladder();
    if (t < 0 || t >= static_cast<ThreadId>(perThreadHist_.size()))
        return kEmpty;
    return perThreadHist_[t];
}

void
LatencyTracker::reset()
{
    aggregate_.reset();
    for (auto &s : perThread_)
        s = RunningStat{};
    for (auto &h : perThreadHist_)
        h.reset();
}

} // namespace tcm::mem
