/**
 * @file
 * DRAM command vocabulary shared by the channel model and the controller.
 */

#pragma once

#include "common/types.hpp"

namespace tcm::dram {

/** The DRAM commands the controller can issue. */
enum class CommandKind
{
    Activate,  //!< Open a row into the bank's row-buffer
    Read,      //!< Column read from the open row
    Write,     //!< Column write into the open row
    Precharge, //!< Close the open row
    Refresh,   //!< All-bank refresh (rank level)
    PowerDown, //!< Enter precharge power-down (rank level)
    PowerUp,   //!< Exit power-down; commands legal after tXP (rank level)
};

/** Human-readable command name (for logs and test failure messages). */
const char *commandName(CommandKind kind);

/**
 * Result of issuing a command on a channel. `occupancy` is the number of
 * cycles the command keeps the target bank busy, which is exactly the
 * "memory service time" that TCM attributes to the owning thread
 * (paper Section 3.2). `dataStart`/`dataEnd` are only meaningful for
 * Read/Write and give the data-bus occupancy window.
 */
struct IssueResult
{
    Cycle occupancy = 0;
    Cycle dataStart = 0;
    Cycle dataEnd = 0;
};

inline const char *
commandName(CommandKind kind)
{
    switch (kind) {
      case CommandKind::Activate: return "ACT";
      case CommandKind::Read: return "RD";
      case CommandKind::Write: return "WR";
      case CommandKind::Precharge: return "PRE";
      case CommandKind::Refresh: return "REF";
      case CommandKind::PowerDown: return "PDE";
      case CommandKind::PowerUp: return "PDX";
    }
    return "???";
}

} // namespace tcm::dram
