#include "dram/timing.hpp"

#include <cmath>

namespace tcm::dram {

Cycle
TimingParams::ns(double nanoseconds)
{
    return static_cast<Cycle>(std::llround(nanoseconds * kCyclesPerNs));
}

TimingParams
TimingParams::ddr2_800()
{
    TimingParams p{};
    p.tCK = ns(2.5);
    p.tCL = ns(15.0);
    p.tCWL = ns(12.5);
    p.tRCD = ns(15.0);
    p.tRP = ns(15.0);
    p.tRAS = ns(45.0);
    p.tRC = ns(60.0);
    p.tBURST = ns(10.0);
    p.tCCD = ns(5.0);
    p.tRRD = ns(7.5);
    p.tWR = ns(15.0);
    p.tWTR = ns(7.5);
    p.tRTP = ns(7.5);
    p.tFAW = ns(37.5);
    p.tRTRS = ns(5.0);
    p.tREFI = ns(7800.0);
    p.tRFC = ns(127.5);
    p.cpuToMcDelay = 40;
    p.mcToCpuDelay = 35;
    p.banksPerChannel = 4;
    p.ranksPerChannel = 1;
    p.rowsPerBank = 16384;
    p.colsPerRow = 64;
    p.refreshEnabled = true;
    return p;
}

TimingParams
TimingParams::ddr3_1333()
{
    TimingParams p{};
    p.tCK = ns(1.5);
    p.tCL = ns(13.5);
    p.tCWL = ns(10.5);
    p.tRCD = ns(13.5);
    p.tRP = ns(13.5);
    p.tRAS = ns(36.0);
    p.tRC = ns(49.5);
    p.tBURST = ns(6.0); // BL8 at 1333 MT/s
    p.tCCD = ns(6.0);
    p.tRRD = ns(6.0);
    p.tWR = ns(15.0);
    p.tWTR = ns(7.5);
    p.tRTP = ns(7.5);
    p.tFAW = ns(30.0);
    p.tRTRS = ns(3.0);
    p.tREFI = ns(7800.0);
    p.tRFC = ns(160.0);
    p.cpuToMcDelay = 40;
    p.mcToCpuDelay = 35;
    p.banksPerChannel = 8;
    p.ranksPerChannel = 1;
    p.rowsPerBank = 16384;
    p.colsPerRow = 64;
    p.refreshEnabled = true;
    return p;
}

} // namespace tcm::dram
