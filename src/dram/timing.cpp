#include "dram/timing.hpp"

#include <cmath>

#include "dram/protocol.hpp"

namespace tcm::dram {

Cycle
TimingParams::ns(double nanoseconds) const
{
    return static_cast<Cycle>(std::llround(nanoseconds * cyclesPerNs));
}

TimingParams
TimingParams::ddr2_800()
{
    return protocols::ddr2_800().derive();
}

TimingParams
TimingParams::ddr3_1333()
{
    return protocols::ddr3_1333().derive();
}

} // namespace tcm::dram
