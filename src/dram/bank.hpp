/**
 * @file
 * Single DRAM bank state machine with per-command timing constraints.
 */

#pragma once

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace tcm::dram {

/**
 * Models one DRAM bank: the open row (row-buffer contents) plus the
 * earliest cycle at which each command class may legally be issued.
 *
 * The bank enforces only *bank-local* constraints (tRCD, tRP, tRAS, tRC,
 * tRTP, tWR). Rank-level (tRRD, tFAW, tWTR) and channel-level (command
 * bus, data bus, tCCD) constraints live in Rank and Channel.
 */
class Bank
{
  public:
    explicit Bank(const TimingParams &timing);

    /** Row currently held in the row-buffer, or kNoRow when precharged. */
    RowId openRow() const { return openRow_; }

    /** True when the bank is precharged (no row open). */
    bool precharged() const { return openRow_ == kNoRow; }

    /** @{ Legality checks for issuing a command at cycle @p now. */
    bool canActivate(Cycle now) const;
    bool canRead(Cycle now) const;
    bool canWrite(Cycle now) const;
    bool canPrecharge(Cycle now) const;
    /** @} */

    /**
     * Issue ACT for @p row at @p now. Asserts legality.
     * @return bank occupancy in cycles (tRCD).
     */
    Cycle activate(Cycle now, RowId row);

    /** Issue RD at @p now. Asserts legality. @return occupancy (tBURST). */
    Cycle read(Cycle now);

    /** Issue WR at @p now. Asserts legality. @return occupancy (tBURST). */
    Cycle write(Cycle now);

    /** Issue PRE at @p now. Asserts legality. @return occupancy (tRP). */
    Cycle precharge(Cycle now);

    /**
     * Apply an all-bank refresh that started at @p now: the bank must be
     * precharged; no ACT may issue until now + tRFC.
     */
    void refresh(Cycle now);

    /**
     * Auto-precharge rider (RD/WRA): close the row as soon as the
     * already-armed precharge constraints (tRTP/tWR via preAllowedAt)
     * allow, without occupying the command bus. Call immediately after
     * read()/write(). The row closes logically now; the next ACT waits
     * until the implicit precharge completes.
     */
    Cycle autoPrecharge();

    /**
     * Earliest cycle at which *some* command toward servicing a request
     * for @p row could issue (used by the controller's idle fast-path).
     */
    Cycle earliestUseful(RowId row) const;

    /** @{ Earliest-issue registers (timing introspection). */
    Cycle actAllowedAt() const { return actAllowedAt_; }
    Cycle rdAllowedAt() const { return rdAllowedAt_; }
    Cycle wrAllowedAt() const { return wrAllowedAt_; }
    Cycle preAllowedAt() const { return preAllowedAt_; }
    /** @} */

  private:
    const TimingParams *timing_;
    RowId openRow_ = kNoRow;
    Cycle actAllowedAt_ = 0;
    Cycle rdAllowedAt_ = 0;
    Cycle wrAllowedAt_ = 0;
    Cycle preAllowedAt_ = 0;
};

} // namespace tcm::dram
