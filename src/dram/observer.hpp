/**
 * @file
 * Command-stream observation hook: every DRAM command issued on a
 * channel (plus auto-precharge riders) is reported to registered
 * observers as a flat, self-describing event. This is the substrate for
 * independent auditing (dram::ProtocolChecker) and command-trace
 * dumping (dram::CommandTraceRecorder) — consumers see only the raw
 * trace, never the model's internal timing state.
 */

#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "dram/command.hpp"

namespace tcm::dram {

/**
 * One observed event on a channel's command stream. For Refresh, `bank`
 * is the first bank of the refreshed rank and `row` is kNoRow. For
 * auto-precharge riders (`autoPre == true`) the event does not occupy
 * the command bus: it records that the row of `bank` closed as part of
 * the column command issued at `cycle`.
 */
struct CommandEvent
{
    Cycle cycle = 0;
    ChannelId channel = 0;
    int rank = 0;
    BankId bank = 0;
    CommandKind kind = CommandKind::Activate;
    RowId row = kNoRow;
    bool autoPre = false;
};

/** Receives every command event of the channels it is attached to. */
class CommandObserver
{
  public:
    virtual ~CommandObserver() = default;

    virtual void onCommand(const CommandEvent &event) = 0;
};

/**
 * Compact one-line text form, the unit of the golden-trace format:
 * `<cycle> ch<channel> rk<rank> b<bank> <CMD> <row>`, with "APR" for
 * auto-precharge riders and "-" for kNoRow.
 */
std::string formatCommandEvent(const CommandEvent &event);

/**
 * Observer that records the first `maxEvents` events as formatted trace
 * lines (golden-trace regression tests, debugging dumps). A zero cap
 * records everything.
 */
class CommandTraceRecorder : public CommandObserver
{
  public:
    explicit CommandTraceRecorder(std::size_t maxEvents = 0)
        : maxEvents_(maxEvents)
    {
    }

    void
    onCommand(const CommandEvent &event) override
    {
        if (maxEvents_ != 0 && lines_.size() >= maxEvents_)
            return;
        lines_.push_back(formatCommandEvent(event));
    }

    /** True once the cap is reached (the run can stop early). */
    bool full() const
    {
        return maxEvents_ != 0 && lines_.size() >= maxEvents_;
    }

    const std::vector<std::string> &lines() const { return lines_; }

    /** All recorded lines joined with '\n' (plus a trailing newline). */
    std::string text() const;

  private:
    std::size_t maxEvents_;
    std::vector<std::string> lines_;
};

} // namespace tcm::dram
