#include "dram/bank.hpp"

#include <algorithm>
#include <cassert>

namespace tcm::dram {

Bank::Bank(const TimingParams &timing) : timing_(&timing)
{
}

bool
Bank::canActivate(Cycle now) const
{
    return precharged() && now >= actAllowedAt_;
}

bool
Bank::canRead(Cycle now) const
{
    return !precharged() && now >= rdAllowedAt_;
}

bool
Bank::canWrite(Cycle now) const
{
    return !precharged() && now >= wrAllowedAt_;
}

bool
Bank::canPrecharge(Cycle now) const
{
    return !precharged() && now >= preAllowedAt_;
}

Cycle
Bank::activate(Cycle now, RowId row)
{
    assert(canActivate(now));
    assert(row != kNoRow);
    openRow_ = row;
    rdAllowedAt_ = now + timing_->tRCD;
    wrAllowedAt_ = now + timing_->tRCD;
    preAllowedAt_ = now + timing_->tRAS;
    actAllowedAt_ = now + timing_->tRC;
    return timing_->tRCD;
}

Cycle
Bank::read(Cycle now)
{
    assert(canRead(now));
    // Same-bank columns are same-group by definition: the long spacing.
    preAllowedAt_ = std::max(preAllowedAt_, now + timing_->tRTP);
    rdAllowedAt_ = std::max(rdAllowedAt_, now + timing_->tCCD_L);
    wrAllowedAt_ = std::max(wrAllowedAt_, now + timing_->tCCD_L);
    return timing_->tBURST;
}

Cycle
Bank::write(Cycle now)
{
    assert(canWrite(now));
    Cycle data_end = now + timing_->tCWL + timing_->tBURST;
    preAllowedAt_ = std::max(preAllowedAt_, data_end + timing_->tWR);
    rdAllowedAt_ = std::max(rdAllowedAt_, now + timing_->tCCD_L);
    wrAllowedAt_ = std::max(wrAllowedAt_, now + timing_->tCCD_L);
    return timing_->tBURST;
}

Cycle
Bank::precharge(Cycle now)
{
    assert(canPrecharge(now));
    openRow_ = kNoRow;
    actAllowedAt_ = std::max(actAllowedAt_, now + timing_->tRP);
    return timing_->tRP;
}

void
Bank::refresh(Cycle now)
{
    assert(precharged());
    actAllowedAt_ = std::max(actAllowedAt_, now + timing_->tRFC);
}

Cycle
Bank::autoPrecharge()
{
    assert(!precharged());
    openRow_ = kNoRow;
    // The implicit precharge starts once tRAS/tRTP/tWR are satisfied
    // (all folded into preAllowedAt_) and takes tRP.
    actAllowedAt_ = std::max(actAllowedAt_, preAllowedAt_ + timing_->tRP);
    return timing_->tRP;
}

Cycle
Bank::earliestUseful(RowId row) const
{
    if (precharged())
        return actAllowedAt_;
    if (openRow_ == row)
        return rdAllowedAt_;
    return preAllowedAt_;
}

} // namespace tcm::dram
