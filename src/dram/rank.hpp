/**
 * @file
 * Rank-level DRAM timing constraints (tRRD, tFAW, write-to-read turnaround).
 */

#pragma once

#include <array>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace tcm::dram {

/**
 * Tracks constraints that span all banks of one rank: activate-to-activate
 * spacing (tRRD), the rolling four-activate window (tFAW), and the
 * write-to-read turnaround (tWTR).
 */
class Rank
{
  public:
    explicit Rank(const TimingParams &timing);

    /** True if an ACT to any bank may issue at @p now. */
    bool canActivate(Cycle now) const;

    /** True if a RD may issue at @p now (tWTR satisfied). */
    bool canRead(Cycle now) const;

    /** Record an issued ACT at @p now. */
    void recordActivate(Cycle now);

    /** Record an issued WR at @p now (arms the tWTR turnaround). */
    void recordWrite(Cycle now);

    /** Earliest cycle an ACT could issue (tRRD and tFAW combined). */
    Cycle earliestActivate() const;

    /** Earliest cycle a RD could issue (tWTR). */
    Cycle earliestRead() const { return rdAllowedAt_; }

  private:
    const TimingParams *timing_;
    Cycle actAllowedAt_ = 0;     //!< next ACT per tRRD
    Cycle rdAllowedAt_ = 0;      //!< next RD per tWTR
    std::array<Cycle, 4> actHistory_{}; //!< circular buffer for tFAW
    int actHistoryPos_ = 0;
};

} // namespace tcm::dram
