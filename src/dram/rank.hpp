/**
 * @file
 * Rank-level DRAM timing constraints (tRRD, tFAW, write-to-read
 * turnaround) and the per-rank power-down state machine.
 */

#pragma once

#include <array>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace tcm::dram {

/**
 * Tracks constraints that span all banks of one rank: activate-to-activate
 * spacing (tRRD_S/tRRD_L, split by bank group), the rolling four-activate
 * window (tFAW), the write-to-read turnaround (tWTR), and the precharge
 * power-down state (entered/exited by the controller's PowerDown/PowerUp
 * commands; tCKE bounds the minimum residency, tXP delays the first valid
 * command after exit).
 */
class Rank
{
  public:
    explicit Rank(const TimingParams &timing);

    /** True if an ACT to bank group @p group may issue at @p now. */
    bool canActivate(Cycle now, int group) const;

    /** True if a RD may issue at @p now (tWTR satisfied). */
    bool canRead(Cycle now) const;

    /** Record an issued ACT to bank group @p group at @p now. */
    void recordActivate(Cycle now, int group);

    /** Record an issued WR at @p now (arms the tWTR turnaround). */
    void recordWrite(Cycle now);

    /** Earliest cycle an ACT to @p group could issue (tRRD, tFAW, tXP). */
    Cycle earliestActivate(int group) const;

    /** Earliest cycle a RD could issue (tWTR). */
    Cycle earliestRead() const { return rdAllowedAt_; }

    // -- Power-down -----------------------------------------------------------

    /** True when the rank is in precharge power-down. */
    bool poweredDown() const { return poweredDown_; }

    /** True if a PowerDown command may issue at @p now (tXP honored). */
    bool canPowerDown(Cycle now) const;

    /** True if a PowerUp command may issue at @p now (tCKE residency). */
    bool canPowerUp(Cycle now) const;

    /** Enter power-down at @p now. */
    void recordPowerDown(Cycle now);

    /** Exit power-down at @p now; commands legal from now + tXP. */
    void recordPowerUp(Cycle now);

    /** Earliest cycle a PowerUp could issue (kCycleNever when not down). */
    Cycle earliestPowerUp() const;

    /**
     * True when rank-scoped commands (ACT, REF) are not blocked by the
     * power state: the rank is up and tXP since the last exit elapsed.
     */
    bool commandsAllowed(Cycle now) const;

    /**
     * Lower bound on the first cycle commandsAllowed could hold, assuming
     * a PowerUp issues as early as legal when the rank is down.
     */
    Cycle earliestCommandsAllowed() const;

    /**
     * Cycles spent in power-down through @p now, including the current
     * residency when still down (energy accounting).
     */
    Cycle powerDownCycles(Cycle now) const;

  private:
    const TimingParams *timing_;
    Cycle lastActAt_ = 0;        //!< most recent ACT (tRRD base)
    int lastActGroup_ = -1;      //!< its bank group; -1 = no ACT yet
    Cycle rdAllowedAt_ = 0;      //!< next RD per tWTR
    std::array<Cycle, 4> actHistory_{}; //!< circular buffer for tFAW
    int actHistoryPos_ = 0;

    bool poweredDown_ = false;
    Cycle pdSince_ = 0;          //!< entry cycle of the current residency
    Cycle pdExitAt_ = 0;         //!< last PowerUp + tXP (command gate)
    Cycle pdAccum_ = 0;          //!< completed power-down cycles
};

} // namespace tcm::dram
