#include "dram/observer.hpp"

#include <cstdio>

namespace tcm::dram {

std::string
formatCommandEvent(const CommandEvent &event)
{
    char row[16];
    if (event.row == kNoRow)
        std::snprintf(row, sizeof(row), "-");
    else
        std::snprintf(row, sizeof(row), "%d", event.row);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%llu ch%d rk%d b%d %s %s",
                  static_cast<unsigned long long>(event.cycle),
                  event.channel, event.rank, event.bank,
                  event.autoPre ? "APR" : commandName(event.kind), row);
    return buf;
}

std::string
CommandTraceRecorder::text() const
{
    std::string out;
    for (const std::string &line : lines_) {
        out += line;
        out += '\n';
    }
    return out;
}

} // namespace tcm::dram
