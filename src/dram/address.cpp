#include "dram/address.hpp"

namespace tcm::dram {

AddressMap::AddressMap(const TimingParams &timing, int numChannels,
                       int blockBytes)
    : numChannels_(numChannels),
      banksPerChannel_(timing.banksPerChannel),
      rowsPerBank_(timing.rowsPerBank),
      colsPerRow_(timing.colsPerRow),
      blockBytes_(blockBytes)
{
}

Coord
AddressMap::decode(std::uint64_t byteAddr) const
{
    std::uint64_t block = byteAddr / blockBytes_;
    Coord c{};
    c.channel = static_cast<ChannelId>(block % numChannels_);
    block /= numChannels_;
    c.bank = static_cast<BankId>(block % banksPerChannel_);
    block /= banksPerChannel_;
    c.col = static_cast<ColId>(block % colsPerRow_);
    block /= colsPerRow_;
    c.row = static_cast<RowId>(block % rowsPerBank_);
    return c;
}

std::uint64_t
AddressMap::encode(const Coord &coord) const
{
    std::uint64_t block = static_cast<std::uint64_t>(coord.row);
    block = block * colsPerRow_ + coord.col;
    block = block * banksPerChannel_ + coord.bank;
    block = block * numChannels_ + coord.channel;
    return block * blockBytes_;
}

std::uint64_t
AddressMap::capacityBytes() const
{
    return static_cast<std::uint64_t>(numChannels_) * banksPerChannel_ *
           rowsPerBank_ * colsPerRow_ * blockBytes_;
}

} // namespace tcm::dram
