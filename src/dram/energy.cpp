#include "dram/energy.hpp"

#include <algorithm>

namespace tcm::dram {

EnergyParams
EnergyParams::forGeneration(Generation generation)
{
    EnergyParams p; // DDR2 (1.8 V) baseline
    // Rough V^2 derating: 1.5 V / 1.8 V and 1.2 V / 1.8 V squared.
    double scale = 1.0;
    switch (generation) {
      case Generation::Ddr2:
        return p;
      case Generation::Ddr3:
        scale = (1.5 * 1.5) / (1.8 * 1.8);
        break;
      case Generation::Ddr4:
        scale = (1.2 * 1.2) / (1.8 * 1.8);
        break;
    }
    p.eActPre *= scale;
    p.eRead *= scale;
    p.eWrite *= scale;
    p.eRefresh *= scale;
    p.pBackgroundActive *= scale;
    p.pBackgroundIdle *= scale;
    p.pBackgroundPowerDown *= scale;
    return p;
}

double
EnergyBreakdown::averageMw(Cycle cycles, double cyclesPerNs) const
{
    if (cycles == 0)
        return 0.0;
    double seconds = static_cast<double>(cycles) / (cyclesPerNs * 1e9);
    // pJ / s = pW; convert to mW.
    return totalPj() / seconds * 1e-9;
}

double
EnergyBreakdown::perAccessPj(const CommandCounts &counts) const
{
    std::uint64_t accesses = counts.reads + counts.writes;
    if (accesses == 0)
        return 0.0;
    return totalPj() / static_cast<double>(accesses);
}

EnergyBreakdown
computeEnergy(const EnergyParams &params, const CommandCounts &counts,
              Cycle elapsed, int banksPerChannel, double cyclesPerNs)
{
    EnergyBreakdown e;
    e.activatePj = params.eActPre * static_cast<double>(counts.activates);
    e.readPj = params.eRead * static_cast<double>(counts.reads);
    e.writePj = params.eWrite * static_cast<double>(counts.writes);
    e.refreshPj = params.eRefresh * static_cast<double>(counts.refreshes);

    // Background: the (banks x elapsed) cycle budget splits into busy
    // cycles (active power), power-down bank-cycles (power-down power),
    // and the rest (standby power).
    double budget = static_cast<double>(elapsed) * banksPerChannel;
    double busy =
        std::min(static_cast<double>(counts.bankBusyCycles), budget);
    double down = std::min(
        static_cast<double>(counts.powerDownBankCycles), budget - busy);
    double idle = budget - busy - down;
    double cycle_seconds = 1.0 / (cyclesPerNs * 1e9);
    // mW * s = mJ = 1e9 pJ; divide the DIMM background power evenly
    // across banks so the budget accounting stays per-bank.
    double active_pj_per_bank_cycle =
        params.pBackgroundActive / banksPerChannel * cycle_seconds * 1e9;
    double idle_pj_per_bank_cycle =
        params.pBackgroundIdle / banksPerChannel * cycle_seconds * 1e9;
    double down_pj_per_bank_cycle =
        params.pBackgroundPowerDown / banksPerChannel * cycle_seconds * 1e9;
    e.backgroundPj = busy * active_pj_per_bank_cycle +
                     down * down_pj_per_bank_cycle +
                     idle * idle_pj_per_bank_cycle;
    return e;
}

} // namespace tcm::dram
