#include "dram/energy.hpp"

#include <algorithm>

#include "dram/timing.hpp"

namespace tcm::dram {

double
EnergyBreakdown::averageMw(Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    double seconds = static_cast<double>(cycles) /
                     (TimingParams::kCyclesPerNs * 1e9);
    // pJ / s = pW; convert to mW.
    return totalPj() / seconds * 1e-9;
}

double
EnergyBreakdown::perAccessPj(const CommandCounts &counts) const
{
    std::uint64_t accesses = counts.reads + counts.writes;
    if (accesses == 0)
        return 0.0;
    return totalPj() / static_cast<double>(accesses);
}

EnergyBreakdown
computeEnergy(const EnergyParams &params, const CommandCounts &counts,
              Cycle elapsed, int banksPerChannel)
{
    EnergyBreakdown e;
    e.activatePj = params.eActPre * static_cast<double>(counts.activates);
    e.readPj = params.eRead * static_cast<double>(counts.reads);
    e.writePj = params.eWrite * static_cast<double>(counts.writes);
    e.refreshPj = params.eRefresh * static_cast<double>(counts.refreshes);

    // Background: the (banks x elapsed) cycle budget splits into busy
    // cycles (active power) and the rest (standby power).
    double budget = static_cast<double>(elapsed) * banksPerChannel;
    double busy =
        std::min(static_cast<double>(counts.bankBusyCycles), budget);
    double idle = budget - busy;
    double cycle_seconds = 1.0 / (TimingParams::kCyclesPerNs * 1e9);
    // mW * s = mJ = 1e9 pJ; divide the DIMM background power evenly
    // across banks so the budget accounting stays per-bank.
    double active_pj_per_bank_cycle =
        params.pBackgroundActive / banksPerChannel * cycle_seconds * 1e9;
    double idle_pj_per_bank_cycle =
        params.pBackgroundIdle / banksPerChannel * cycle_seconds * 1e9;
    e.backgroundPj = busy * active_pj_per_bank_cycle +
                     idle * idle_pj_per_bank_cycle;
    return e;
}

} // namespace tcm::dram
