/**
 * @file
 * Declarative DRAM protocol specifications.
 *
 * A `ProtocolSpec` is a table of named timing constraints — each given in
 * the datasheet's own units, nanoseconds and/or DRAM clocks — plus the
 * device geometry and the system-side clocking. `TimingParams` (the flat
 * CPU-cycle struct the bank/rank/channel engine consumes) is *derived*
 * from a spec at construction, never written by hand: adding a DRAM
 * generation means adding a preset table here, not touching the engine.
 *
 * The split follows the Ramulator 2.0 argument: the protocol is data, the
 * timing engine is code. Every registered preset is independently
 * re-audited by dram::ProtocolChecker, which derives its own constraint
 * set from the same TimingParams but shares no state with the engine.
 */

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace tcm::dram {

/**
 * One named timing constraint in datasheet form. The effective value is
 * `max(ns, ck * tCK)` — JEDEC specifies most constraints as the larger
 * of an analog time and a minimum clock count (e.g. DDR3 tWTR is
 * "max(4 nCK, 7.5 ns)"). Either field may be zero when the datasheet
 * uses only one unit.
 */
struct ProtocolParam
{
    double ns = 0.0; //!< analog minimum, nanoseconds
    int ck = 0;      //!< minimum DRAM clocks
};

/** One row of ProtocolSpec::table(): constraint name + datasheet value. */
struct NamedParam
{
    const char *name;
    ProtocolParam value;
};

/**
 * Full declarative description of one DRAM protocol grade. All presets
 * live in `protocols::` below; `derive()` turns a spec into the
 * CPU-cycle `TimingParams` the engine runs on.
 */
struct ProtocolSpec
{
    std::string name;      //!< registry key, e.g. "ddr4-2400"
    Generation generation = Generation::Ddr2;
    int dataRateMTs = 0;   //!< transfer rate, MT/s (documentation)
    double tCkNs = 0.0;    //!< DRAM clock period, nanoseconds
    int burstLength = 8;   //!< transfers per column command (tBURST = BL/2 tCK)

    // -- Geometry ------------------------------------------------------------
    int bankGroupsPerRank = 1; //!< DDR4 bank groups (1 = no grouping)
    int banksPerGroup = 4;     //!< banks in one group
    int ranksPerChannel = 1;
    int rowsPerBank = 16384;
    int colsPerRow = 64;

    // -- Constraint table ----------------------------------------------------
    // tRC may be left zero: derive() then uses tRAS + tRP.
    ProtocolParam tCL, tCWL, tRCD, tRP, tRAS, tRC;
    ProtocolParam tCCD_S, tCCD_L; //!< column spacing: cross-/same-group
    ProtocolParam tRRD_S, tRRD_L; //!< ACT spacing: cross-/same-group
    ProtocolParam tWR, tWTR, tRTP, tFAW, tRTRS, tREFI, tRFC;
    ProtocolParam tXP;  //!< power-down exit to first valid command
    ProtocolParam tCKE; //!< minimum power-down residency

    // -- System side ---------------------------------------------------------
    double cpuGhz = 5.0;      //!< CPU clock; cyclesPerNs = cpuGhz
    Cycle cpuToMcDelay = 40;  //!< CPU cycles, not DRAM-clock derived
    Cycle mcToCpuDelay = 35;
    bool refreshEnabled = true;

    /** Effective datasheet value of @p p in nanoseconds. */
    double effectiveNs(const ProtocolParam &p) const;

    /** Effective value of @p p in CPU cycles (rounded). */
    Cycle cycles(const ProtocolParam &p) const;

    /** The named constraint table, in declaration order. */
    std::vector<NamedParam> table() const;

    /**
     * Structural validation: positive clocks and geometry, group split
     * consistency, tCCD_L/tRRD_L at least their short counterparts, and
     * 2*tCCD_S >= tCCD_L (the engine keeps a single column-spacing
     * register, which is only exact under that JEDEC-satisfied bound).
     * Returns an empty string when the spec is sound, else a message.
     */
    std::string validate() const;

    /** Derive the engine's flat CPU-cycle parameter block. */
    TimingParams derive() const;
};

/** Result of a registry lookup: a spec, or an error naming the options. */
struct ProtocolLookup
{
    bool ok = false;
    ProtocolSpec spec;
    std::string error;
};

/**
 * Look up a registered preset by its lowercase name ("ddr2-800", ...).
 * On failure `error` lists the full known-protocol vocabulary, mirroring
 * sched::specByName.
 */
ProtocolLookup protocolByName(const std::string &name);

/** Names of all registered presets, in registry order. */
const std::vector<std::string> &protocolNames();

namespace protocols {

/**
 * The paper's Table 3 device: Micron DDR2-800 (MT47H128M8HQ-25), 4 banks,
 * 2 KB rows. Deriving this spec reproduces the historical hand-written
 * TimingParams::ddr2_800() numbers bit-for-bit (tests assert it), so
 * every golden result in the repo is pinned to this table.
 */
ProtocolSpec ddr2_800();

/** DDR3-1333 CL9 (e.g. Micron MT41J256M8): 8 banks, faster clock. */
ProtocolSpec ddr3_1333();

/** DDR3-1600 CL11: the common DDR3 sweet spot, 8 banks. */
ProtocolSpec ddr3_1600();

/**
 * DDR4-2400 CL17: 4 bank groups x 4 banks. First preset where the
 * tCCD_S/tCCD_L and tRRD_S/tRRD_L splits differ, exercising the
 * bank-group-aware paths in the channel, rank and protocol checker.
 */
ProtocolSpec ddr4_2400();

} // namespace protocols

} // namespace tcm::dram
