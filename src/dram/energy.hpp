/**
 * @file
 * DRAM energy accounting in the DRAMSim/DRAMPower style: per-command
 * energies plus background power, driven by command counts.
 *
 * The constants are 1Gb-x8 DIMM ballparks derived from the Micron power
 * calculators (IDD0/IDD4/IDD5 windows, eight chips per DIMM), scaled per
 * generation by forGeneration(). They are deliberately round figures:
 * this model ranks scheduler energy behaviour (row hits vs conflicts,
 * refresh overhead, power-down residency), it does not claim
 * millijoule-accurate absolute numbers.
 */

#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace tcm::dram {

/** Command counts over a measurement window (one channel). */
struct CommandCounts
{
    std::uint64_t activates = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t bankBusyCycles = 0;
    /**
     * Bank-cycles spent in precharge power-down (per-rank power-down
     * cycles times the rank's bank count). 0 unless the controller's
     * power management is enabled.
     */
    std::uint64_t powerDownBankCycles = 0;
};

/** Per-command energies (picojoules) and background power (milliwatts). */
struct EnergyParams
{
    double eActPre = 15'000.0;  //!< one ACT/PRE pair (row cycle)
    double eRead = 10'000.0;    //!< one column read burst
    double eWrite = 11'000.0;   //!< one column write burst
    double eRefresh = 35'000.0; //!< one all-bank refresh
    double pBackgroundActive = 750.0; //!< mW while banks are busy
    double pBackgroundIdle = 400.0;   //!< mW otherwise (standby)
    double pBackgroundPowerDown = 150.0; //!< mW in precharge power-down

    /** DDR2-800 DIMM defaults (see file comment). */
    static EnergyParams ddr2_800() { return EnergyParams{}; }

    /**
     * Generation-scaled parameters: each DDR generation dropped the core
     * voltage (1.8 V -> 1.5 V -> 1.2 V), cutting both dynamic and
     * background power roughly with V^2.
     */
    static EnergyParams forGeneration(Generation generation);
};

/** Energy breakdown for one channel over a measurement window. */
struct EnergyBreakdown
{
    double activatePj = 0.0;
    double readPj = 0.0;
    double writePj = 0.0;
    double refreshPj = 0.0;
    double backgroundPj = 0.0;

    double
    totalPj() const
    {
        return activatePj + readPj + writePj + refreshPj + backgroundPj;
    }

    /**
     * Average power in milliwatts over @p cycles CPU cycles at
     * @p cyclesPerNs CPU cycles per nanosecond.
     */
    double averageMw(Cycle cycles, double cyclesPerNs) const;

    /** Energy per serviced column command (pJ/access). */
    double perAccessPj(const CommandCounts &counts) const;
};

/**
 * Compute the energy breakdown implied by @p counts over @p elapsed CPU
 * cycles. Background power is split by bank state: bankBusyCycles of the
 * window's (banks x cycles) budget at active power, powerDownBankCycles
 * at power-down power, the rest at standby power.
 *
 * @param banksPerChannel number of banks behind the controller
 * @param cyclesPerNs CPU cycles per nanosecond (TimingParams::cyclesPerNs)
 */
EnergyBreakdown computeEnergy(const EnergyParams &params,
                              const CommandCounts &counts, Cycle elapsed,
                              int banksPerChannel, double cyclesPerNs);

} // namespace tcm::dram
