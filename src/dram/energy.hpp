/**
 * @file
 * DRAM energy accounting in the DRAMSim/DRAMPower style: per-command
 * energies plus background power, driven by command counts.
 *
 * The constants are DDR2-800 1Gb-x8 DIMM ballparks derived from the
 * Micron DDR2 power calculator (IDD0/IDD4/IDD5 windows at 1.8 V, eight
 * chips per DIMM). They are deliberately round figures: this model ranks
 * scheduler energy behaviour (row hits vs conflicts, refresh overhead),
 * it does not claim millijoule-accurate absolute numbers.
 */

#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace tcm::dram {

/** Command counts over a measurement window (one channel). */
struct CommandCounts
{
    std::uint64_t activates = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t bankBusyCycles = 0;
};

/** Per-command energies (picojoules) and background power (milliwatts). */
struct EnergyParams
{
    double eActPre = 15'000.0;  //!< one ACT/PRE pair (row cycle)
    double eRead = 10'000.0;    //!< one column read burst
    double eWrite = 11'000.0;   //!< one column write burst
    double eRefresh = 35'000.0; //!< one all-bank refresh
    double pBackgroundActive = 750.0; //!< mW while banks are busy
    double pBackgroundIdle = 400.0;   //!< mW otherwise (standby)

    /** DDR2-800 DIMM defaults (see file comment). */
    static EnergyParams ddr2_800() { return EnergyParams{}; }
};

/** Energy breakdown for one channel over a measurement window. */
struct EnergyBreakdown
{
    double activatePj = 0.0;
    double readPj = 0.0;
    double writePj = 0.0;
    double refreshPj = 0.0;
    double backgroundPj = 0.0;

    double
    totalPj() const
    {
        return activatePj + readPj + writePj + refreshPj + backgroundPj;
    }

    /** Average power in milliwatts over @p cycles CPU cycles (5 GHz). */
    double averageMw(Cycle cycles) const;

    /** Energy per serviced column command (pJ/access). */
    double perAccessPj(const CommandCounts &counts) const;
};

/**
 * Compute the energy breakdown implied by @p counts over @p elapsed CPU
 * cycles. Background power is split by bank utilization: bankBusyCycles
 * of the window's (banks x cycles) budget at active power, the rest at
 * standby power.
 *
 * @param banksPerChannel number of banks behind the controller
 */
EnergyBreakdown computeEnergy(const EnergyParams &params,
                              const CommandCounts &counts, Cycle elapsed,
                              int banksPerChannel);

} // namespace tcm::dram
