/**
 * @file
 * Independent per-protocol (DDR2/DDR3/DDR4) checker.
 *
 * The DRAM model (`Bank`/`Rank`/`Channel`) enforces timing legality with
 * its own earliest-issue registers and `assert`s — which makes the
 * component under test its own referee. `ProtocolChecker` is the
 * independent one: it subscribes to the raw command stream through the
 * `CommandObserver` hook and re-derives every constraint of the
 * configured protocol from the trace of
 * `{cycle, channel, rank, bank, kind, row}` events alone. It shares no
 * timing-tracking code or state with the model it audits; its only
 * inputs are `TimingParams` (the datasheet numbers and geometry) and the
 * events.
 *
 * Checked constraints (one counter each):
 *   per bank   : ACT-to-ACT (tRC), PRE-to-ACT (tRP), ACT-to-col (tRCD),
 *                ACT-to-PRE (tRAS), RD-to-PRE (tRTP), WR-recovery (tWR),
 *                ACT with row open, column command to a closed bank or
 *                the wrong row, PRE with no row open
 *   per rank   : ACT-to-ACT (tRRD — split into tRRD_S/tRRD_L across and
 *                within bank groups when the protocol defines groups),
 *                rolling four-activate window (tFAW), WR-to-RD
 *                turnaround (tWTR), refresh with a row open,
 *                post-refresh lockout (tRFC), tREFI refresh obligation,
 *                power-down discipline (PDE with a row open, commands to
 *                a powered-down rank, tCKE residency, tXP exit latency)
 *   per channel: one command per tCK on the command bus, data-bus burst
 *                overlap including the tRTRS rank-switch gap, column
 *                command spacing (tCCD — split into tCCD_S/tCCD_L when
 *                the protocol defines bank groups)
 *
 * Violations are never asserted — they are recorded as data (a detailed
 * report for the first few, a per-constraint counter for all), so the
 * audit works identically in builds where `NDEBUG` elides the model's
 * own asserts.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dram/observer.hpp"
#include "dram/timing.hpp"
#include "stats/counters.hpp"

namespace tcm::dram {

/** Every constraint the checker can flag. */
enum class Constraint : std::size_t
{
    CmdBusConflict,  //!< two commands within one tCK on the channel
    ActRowOpen,      //!< ACT while the bank already has a row open
    Trc,             //!< ACT sooner than tRC after the previous ACT
    Trp,             //!< ACT/REF sooner than tRP after a precharge began
    Trcd,            //!< RD/WR sooner than tRCD after the opening ACT
    ColClosedBank,   //!< RD/WR with no row open
    ColWrongRow,     //!< RD/WR whose row differs from the open row
    Tras,            //!< PRE sooner than tRAS after the opening ACT
    Trtp,            //!< PRE sooner than tRTP after the last RD
    Twr,             //!< PRE before write recovery completed
    Tccd,            //!< column command sooner than tCCD after the last
    Trrd,            //!< ACT sooner than tRRD after an ACT in the rank
    Tfaw,            //!< fifth ACT inside a rolling tFAW window
    Twtr,            //!< RD before the write-to-read turnaround elapsed
    DataBusConflict, //!< data bursts overlap (incl. the tRTRS rank gap)
    PreClosedBank,   //!< PRE (or auto-precharge) with no row open
    RefRowOpen,      //!< REF while some bank of the rank has a row open
    Trfc,            //!< ACT/REF inside tRFC after a refresh
    RefreshOverdue,  //!< rank exceeded its refresh deadline (see params)
    TccdL,           //!< same-group column command sooner than tCCD_L
    TrrdL,           //!< same-group ACT sooner than tRRD_L
    PdRowOpen,       //!< PDE while some bank of the rank has a row open
    PdBadState,      //!< PDE while already down, or PDX while up
    CmdWhilePoweredDown, //!< any command to a powered-down rank
    Tcke,            //!< PDX sooner than tCKE after the PDE
    Txp,             //!< command sooner than tXP after a PDX
    Count_,
};

/** Stable human-readable name of @p c (used in reports and tests). */
const char *constraintName(Constraint c);

/** Checker knobs. */
struct CheckerParams
{
    /**
     * A rank must be refreshed at least every
     * `refreshDeadlineFactor * tREFI` cycles (measured REF-to-REF, and
     * run-start/run-end to the nearest REF). 2.0 accommodates the
     * controller's per-rank stagger plus issue jitter while still
     * catching a disabled or wedged refresh engine; JEDEC's own bound
     * (up to eight postponed refreshes) is far looser. Ignored when
     * `TimingParams::refreshEnabled` is false.
     */
    double refreshDeadlineFactor = 2.0;

    /** Keep a detailed report for at most this many violations. */
    std::size_t maxRecordedViolations = 32;
};

/** One detected violation, with everything a human needs to debug it. */
struct Violation
{
    Constraint constraint = Constraint::Count_;
    CommandEvent offending;   //!< the command that broke the constraint
    CommandEvent reference;   //!< earlier command that armed it (if any)
    bool hasReference = false;
    /**
     * First cycle the command would have been legal, or kCycleNever for
     * state violations (wrong row, closed bank) that no amount of
     * waiting fixes. Slack = earliestLegal - offending.cycle.
     */
    Cycle earliestLegal = kCycleNever;
    std::string message;      //!< formatted one-line report
};

/**
 * The observer-based validator. Attach one instance to any number of
 * channels (events are demultiplexed by `CommandEvent::channel`), drive
 * the simulation, then inspect `violationCount()` / `violations()` /
 * `counters()`. Call `finalize(endCycle)` once at the end of the run to
 * evaluate the trailing refresh obligation.
 */
class ProtocolChecker : public CommandObserver
{
  public:
    explicit ProtocolChecker(const TimingParams &timing,
                             CheckerParams params = CheckerParams{});

    void onCommand(const CommandEvent &event) override;

    /**
     * Announce that @p ch exists even if it never issues a command, so
     * finalize() audits its refresh obligation too.
     */
    void observeChannel(ChannelId ch);

    /** End-of-run checks (trailing refresh deadline). Idempotent. */
    void finalize(Cycle endCycle);

    /** Total violations across all constraints. */
    std::uint64_t violationCount() const { return counters_.total(); }

    /** Violations of one specific constraint. */
    std::uint64_t
    countOf(Constraint c) const
    {
        return counters_.count(static_cast<std::size_t>(c));
    }

    /** Detailed reports (capped at CheckerParams::maxRecordedViolations). */
    const std::vector<Violation> &violations() const { return violations_; }

    /** Per-constraint tallies, labelled with constraintName(). */
    const stats::NamedCounters &counters() const { return counters_; }

    /** Commands audited so far (auto-precharge riders included). */
    std::uint64_t eventsAudited() const { return eventsAudited_; }

    /** Multi-line human-readable summary (empty string when clean). */
    std::string report() const;

  private:
    // Independent re-derivation state: everything below is computed
    // from observed events only.
    struct BankState
    {
        RowId openRow = kNoRow;
        bool hasAct = false;
        CommandEvent lastAct;
        bool hasRead = false;   //!< RD in the current row epoch
        CommandEvent lastRead;
        bool hasWrite = false;  //!< WR in the current row epoch
        CommandEvent lastWrite;
        bool hasPre = false;
        CommandEvent lastPre;
        Cycle preStart = 0;     //!< when the last precharge began
    };

    struct RankState
    {
        bool hasAct = false;
        CommandEvent lastAct;
        Cycle actWindow[4] = {0, 0, 0, 0}; //!< last four ACT cycles
        int actCount = 0;
        bool hasWrite = false;
        CommandEvent lastWrite;
        bool hasRef = false;
        CommandEvent lastRef;
        Cycle lastRefCycle = 0; //!< tREFI bookkeeping (run start = 0)
        // Same-group ACT spacing (tRRD_L), indexed by group-in-rank;
        // unused when the protocol has a single bank group.
        std::vector<CommandEvent> lastActPerGroup;
        std::vector<bool> hasActPerGroup;
        // Power-down discipline.
        bool poweredDown = false;
        CommandEvent lastPde;
        bool hasPdx = false;
        CommandEvent lastPdx;
    };

    struct ChannelState
    {
        bool hasCmd = false;
        CommandEvent lastCmd;
        bool hasBurst = false;
        CommandEvent lastBurstCmd;
        Cycle burstEnd = 0;
        int burstRank = -1;
        // Single-group protocols: column spacing (tCCD) audited per
        // rank, as always. Grouped protocols: tCCD_S audited against
        // the channel-wide last column command and tCCD_L against the
        // last column command to the same global bank group.
        std::vector<CommandEvent> lastColPerRank;
        std::vector<bool> hasColPerRank;
        std::vector<CommandEvent> lastColPerGroup;
        std::vector<bool> hasColPerGroup;
        bool hasColChan = false;
        CommandEvent lastColChan;
        std::vector<RankState> ranks;
        std::vector<BankState> banks;
    };

    ChannelState &channelState(ChannelId ch);

    void checkActivate(ChannelState &cs, const CommandEvent &ev);
    void checkColumn(ChannelState &cs, const CommandEvent &ev);
    void checkPrecharge(ChannelState &cs, const CommandEvent &ev);
    void checkAutoPrecharge(ChannelState &cs, const CommandEvent &ev);
    void checkRefresh(ChannelState &cs, const CommandEvent &ev);
    void checkPowerDown(ChannelState &cs, const CommandEvent &ev);
    void checkPowerUp(ChannelState &cs, const CommandEvent &ev);

    /** Effective precharge-start lower bound for a row epoch's events. */
    Cycle epochPreStart(const BankState &bank) const;

    void flag(Constraint c, const CommandEvent &ev, Cycle earliestLegal,
              const CommandEvent *reference);

    const TimingParams *timing_;
    CheckerParams params_;
    std::vector<ChannelState> channels_; //!< indexed by ChannelId
    stats::NamedCounters counters_;
    std::vector<Violation> violations_;
    std::uint64_t eventsAudited_ = 0;
    bool finalized_ = false;
};

} // namespace tcm::dram
