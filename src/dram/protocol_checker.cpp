#include "dram/protocol_checker.hpp"

#include <algorithm>
#include <cstdio>

namespace tcm::dram {

namespace {

const char *const kConstraintNames[] = {
    "cmd-bus",       // CmdBusConflict
    "ACT-row-open",  // ActRowOpen
    "tRC",           // Trc
    "tRP",           // Trp
    "tRCD",          // Trcd
    "col-closed-bank", // ColClosedBank
    "col-wrong-row", // ColWrongRow
    "tRAS",          // Tras
    "tRTP",          // Trtp
    "tWR",           // Twr
    "tCCD",          // Tccd
    "tRRD",          // Trrd
    "tFAW",          // Tfaw
    "tWTR",          // Twtr
    "data-bus",      // DataBusConflict
    "PRE-closed-bank", // PreClosedBank
    "REF-row-open",  // RefRowOpen
    "tRFC",          // Trfc
    "tREFI-overdue", // RefreshOverdue
    "tCCD_L",        // TccdL
    "tRRD_L",        // TrrdL
    "PDE-row-open",  // PdRowOpen
    "PD-bad-state",  // PdBadState
    "cmd-powered-down", // CmdWhilePoweredDown
    "tCKE",          // Tcke
    "tXP",           // Txp
};
static_assert(sizeof(kConstraintNames) / sizeof(kConstraintNames[0]) ==
                  static_cast<std::size_t>(Constraint::Count_),
              "constraint name table out of sync");

std::vector<std::string>
constraintLabels()
{
    std::vector<std::string> labels;
    labels.reserve(static_cast<std::size_t>(Constraint::Count_));
    for (const char *name : kConstraintNames)
        labels.emplace_back(name);
    return labels;
}

} // namespace

const char *
constraintName(Constraint c)
{
    return kConstraintNames[static_cast<std::size_t>(c)];
}

ProtocolChecker::ProtocolChecker(const TimingParams &timing,
                                 CheckerParams params)
    : timing_(&timing), params_(params), counters_(constraintLabels())
{
}

ProtocolChecker::ChannelState &
ProtocolChecker::channelState(ChannelId ch)
{
    if (static_cast<std::size_t>(ch) >= channels_.size())
        channels_.resize(ch + 1);
    ChannelState &cs = channels_[ch];
    if (cs.ranks.empty()) {
        cs.ranks.resize(timing_->ranksPerChannel);
        cs.banks.resize(timing_->banksPerChannel);
        cs.lastColPerRank.resize(timing_->ranksPerChannel);
        cs.hasColPerRank.assign(timing_->ranksPerChannel, false);
        const int groups =
            timing_->ranksPerChannel * timing_->bankGroupsPerRank;
        cs.lastColPerGroup.resize(groups);
        cs.hasColPerGroup.assign(groups, false);
        for (RankState &rank : cs.ranks) {
            rank.lastActPerGroup.resize(timing_->bankGroupsPerRank);
            rank.hasActPerGroup.assign(timing_->bankGroupsPerRank, false);
        }
    }
    return cs;
}

void
ProtocolChecker::observeChannel(ChannelId ch)
{
    channelState(ch);
}

void
ProtocolChecker::flag(Constraint c, const CommandEvent &ev,
                      Cycle earliestLegal, const CommandEvent *reference)
{
    counters_.bump(static_cast<std::size_t>(c));
    if (violations_.size() >= params_.maxRecordedViolations)
        return;

    Violation v;
    v.constraint = c;
    v.offending = ev;
    if (reference != nullptr) {
        v.reference = *reference;
        v.hasReference = true;
    }
    v.earliestLegal = earliestLegal;

    char detail[128];
    if (earliestLegal == kCycleNever) {
        std::snprintf(detail, sizeof(detail), "illegal state");
    } else if (ev.cycle < earliestLegal) {
        std::snprintf(detail, sizeof(detail),
                      "%llu cycles early (first legal cycle %llu)",
                      static_cast<unsigned long long>(earliestLegal -
                                                      ev.cycle),
                      static_cast<unsigned long long>(earliestLegal));
    } else {
        std::snprintf(detail, sizeof(detail),
                      "deadline missed by %llu cycles (deadline %llu)",
                      static_cast<unsigned long long>(ev.cycle -
                                                      earliestLegal),
                      static_cast<unsigned long long>(earliestLegal));
    }

    v.message = "[";
    v.message += constraintName(c);
    v.message += "] ";
    v.message += formatCommandEvent(ev);
    v.message += ": ";
    v.message += detail;
    if (v.hasReference) {
        v.message += "; after ";
        v.message += formatCommandEvent(v.reference);
    }
    violations_.push_back(std::move(v));
}

Cycle
ProtocolChecker::epochPreStart(const BankState &bank) const
{
    Cycle start = 0;
    if (bank.hasAct)
        start = std::max(start, bank.lastAct.cycle + timing_->tRAS);
    if (bank.hasRead)
        start = std::max(start, bank.lastRead.cycle + timing_->tRTP);
    if (bank.hasWrite)
        start = std::max(start, bank.lastWrite.cycle + timing_->tCWL +
                                    timing_->tBURST + timing_->tWR);
    return start;
}

void
ProtocolChecker::checkActivate(ChannelState &cs, const CommandEvent &ev)
{
    BankState &bank = cs.banks[ev.bank];
    RankState &rank = cs.ranks[ev.rank];

    if (bank.openRow != kNoRow)
        flag(Constraint::ActRowOpen, ev, kCycleNever,
             bank.hasAct ? &bank.lastAct : nullptr);
    if (bank.hasAct && ev.cycle < bank.lastAct.cycle + timing_->tRC)
        flag(Constraint::Trc, ev, bank.lastAct.cycle + timing_->tRC,
             &bank.lastAct);
    if (bank.hasPre && ev.cycle < bank.preStart + timing_->tRP)
        flag(Constraint::Trp, ev, bank.preStart + timing_->tRP,
             &bank.lastPre);
    if (rank.hasRef && ev.cycle < rank.lastRef.cycle + timing_->tRFC)
        flag(Constraint::Trfc, ev, rank.lastRef.cycle + timing_->tRFC,
             &rank.lastRef);
    const bool grouped = timing_->bankGroupsPerRank > 1;
    const int group = timing_->groupInRank(ev.bank);
    if (grouped) {
        // Cross-group spacing (tRRD_S) against any ACT in the rank;
        // same-group spacing (tRRD_L) against the group's own last ACT.
        if (rank.hasAct && ev.cycle < rank.lastAct.cycle + timing_->tRRD_S)
            flag(Constraint::Trrd, ev, rank.lastAct.cycle + timing_->tRRD_S,
                 &rank.lastAct);
        if (rank.hasActPerGroup[group]) {
            const CommandEvent &prev = rank.lastActPerGroup[group];
            if (ev.cycle < prev.cycle + timing_->tRRD_L)
                flag(Constraint::TrrdL, ev, prev.cycle + timing_->tRRD_L,
                     &prev);
        }
    } else if (rank.hasAct &&
               ev.cycle < rank.lastAct.cycle + timing_->tRRD_L) {
        // Single bank group: tRRD_S == tRRD_L, the classic tRRD.
        flag(Constraint::Trrd, ev, rank.lastAct.cycle + timing_->tRRD_L,
             &rank.lastAct);
    }
    if (rank.actCount >= 4) {
        Cycle oldest = rank.actWindow[rank.actCount % 4];
        if (ev.cycle < oldest + timing_->tFAW)
            flag(Constraint::Tfaw, ev, oldest + timing_->tFAW,
                 rank.hasAct ? &rank.lastAct : nullptr);
    }

    bank.openRow = ev.row;
    bank.hasAct = true;
    bank.lastAct = ev;
    bank.hasRead = false;
    bank.hasWrite = false;
    rank.hasAct = true;
    rank.lastAct = ev;
    rank.hasActPerGroup[group] = true;
    rank.lastActPerGroup[group] = ev;
    rank.actWindow[rank.actCount % 4] = ev.cycle;
    ++rank.actCount;
}

void
ProtocolChecker::checkColumn(ChannelState &cs, const CommandEvent &ev)
{
    BankState &bank = cs.banks[ev.bank];
    RankState &rank = cs.ranks[ev.rank];
    const bool isRead = ev.kind == CommandKind::Read;

    if (bank.openRow == kNoRow)
        flag(Constraint::ColClosedBank, ev, kCycleNever,
             bank.hasPre ? &bank.lastPre : nullptr);
    else if (bank.openRow != ev.row)
        flag(Constraint::ColWrongRow, ev, kCycleNever, &bank.lastAct);
    if (bank.hasAct && ev.cycle < bank.lastAct.cycle + timing_->tRCD)
        flag(Constraint::Trcd, ev, bank.lastAct.cycle + timing_->tRCD,
             &bank.lastAct);
    const bool grouped = timing_->bankGroupsPerRank > 1;
    const int group = timing_->groupOfBank(ev.bank);
    if (grouped) {
        // Short spacing (tCCD_S) against any column command on the
        // channel; long spacing (tCCD_L) against the last one to the
        // same bank group.
        if (cs.hasColChan &&
            ev.cycle < cs.lastColChan.cycle + timing_->tCCD_S)
            flag(Constraint::Tccd, ev,
                 cs.lastColChan.cycle + timing_->tCCD_S, &cs.lastColChan);
        if (cs.hasColPerGroup[group]) {
            const CommandEvent &col = cs.lastColPerGroup[group];
            if (ev.cycle < col.cycle + timing_->tCCD_L)
                flag(Constraint::TccdL, ev, col.cycle + timing_->tCCD_L,
                     &col);
        }
    } else if (cs.hasColPerRank[ev.rank]) {
        // Single bank group: tCCD_S == tCCD_L, the classic tCCD.
        const CommandEvent &col = cs.lastColPerRank[ev.rank];
        if (ev.cycle < col.cycle + timing_->tCCD_L)
            flag(Constraint::Tccd, ev, col.cycle + timing_->tCCD_L, &col);
    }
    if (isRead && rank.hasWrite) {
        Cycle turnaround = rank.lastWrite.cycle + timing_->tCWL +
                           timing_->tBURST + timing_->tWTR;
        if (ev.cycle < turnaround)
            flag(Constraint::Twtr, ev, turnaround, &rank.lastWrite);
    }

    // Data bus: bursts must not overlap, with a tRTRS gap when the bus
    // hands over between ranks.
    Cycle start = ev.cycle + (isRead ? timing_->tCL : timing_->tCWL);
    if (cs.hasBurst) {
        Cycle required = cs.burstEnd;
        if (cs.burstRank != ev.rank)
            required += timing_->tRTRS;
        if (start < required)
            flag(Constraint::DataBusConflict, ev,
                 ev.cycle + (required - start), &cs.lastBurstCmd);
    }

    cs.hasBurst = true;
    cs.burstEnd = start + timing_->tBURST;
    cs.burstRank = ev.rank;
    cs.lastBurstCmd = ev;
    cs.hasColPerRank[ev.rank] = true;
    cs.lastColPerRank[ev.rank] = ev;
    cs.hasColPerGroup[group] = true;
    cs.lastColPerGroup[group] = ev;
    cs.hasColChan = true;
    cs.lastColChan = ev;
    if (isRead) {
        bank.hasRead = true;
        bank.lastRead = ev;
    } else {
        bank.hasWrite = true;
        bank.lastWrite = ev;
        rank.hasWrite = true;
        rank.lastWrite = ev;
    }
}

void
ProtocolChecker::checkPrecharge(ChannelState &cs, const CommandEvent &ev)
{
    BankState &bank = cs.banks[ev.bank];

    if (bank.openRow == kNoRow)
        flag(Constraint::PreClosedBank, ev, kCycleNever,
             bank.hasPre ? &bank.lastPre : nullptr);
    if (bank.hasAct && ev.cycle < bank.lastAct.cycle + timing_->tRAS)
        flag(Constraint::Tras, ev, bank.lastAct.cycle + timing_->tRAS,
             &bank.lastAct);
    if (bank.hasRead && ev.cycle < bank.lastRead.cycle + timing_->tRTP)
        flag(Constraint::Trtp, ev, bank.lastRead.cycle + timing_->tRTP,
             &bank.lastRead);
    if (bank.hasWrite) {
        Cycle recovered = bank.lastWrite.cycle + timing_->tCWL +
                          timing_->tBURST + timing_->tWR;
        if (ev.cycle < recovered)
            flag(Constraint::Twr, ev, recovered, &bank.lastWrite);
    }

    bank.openRow = kNoRow;
    bank.hasPre = true;
    bank.lastPre = ev;
    bank.preStart = ev.cycle;
    bank.hasRead = false;
    bank.hasWrite = false;
}

void
ProtocolChecker::checkAutoPrecharge(ChannelState &cs, const CommandEvent &ev)
{
    BankState &bank = cs.banks[ev.bank];

    if (bank.openRow == kNoRow) {
        flag(Constraint::PreClosedBank, ev, kCycleNever,
             bank.hasPre ? &bank.lastPre : nullptr);
        return;
    }
    // The rider by definition starts its precharge only once tRAS, tRTP
    // and tWR are all satisfied — derive that start from the epoch's own
    // events, never from the model's registers.
    bank.preStart = std::max(ev.cycle, epochPreStart(bank));
    bank.openRow = kNoRow;
    bank.hasPre = true;
    bank.lastPre = ev;
    bank.hasRead = false;
    bank.hasWrite = false;
}

void
ProtocolChecker::checkRefresh(ChannelState &cs, const CommandEvent &ev)
{
    RankState &rank = cs.ranks[ev.rank];
    const int banksPerRank = timing_->banksPerRank();
    const BankId base = static_cast<BankId>(ev.rank * banksPerRank);

    for (BankId b = base; b < base + banksPerRank; ++b) {
        BankState &bank = cs.banks[b];
        if (bank.openRow != kNoRow) {
            CommandEvent ref = ev;
            ref.bank = b;
            flag(Constraint::RefRowOpen, ref, kCycleNever,
                 bank.hasAct ? &bank.lastAct : nullptr);
        }
        if (bank.hasPre && ev.cycle < bank.preStart + timing_->tRP) {
            CommandEvent ref = ev;
            ref.bank = b;
            flag(Constraint::Trp, ref, bank.preStart + timing_->tRP,
                 &bank.lastPre);
        }
    }
    if (rank.hasRef && ev.cycle < rank.lastRef.cycle + timing_->tRFC)
        flag(Constraint::Trfc, ev, rank.lastRef.cycle + timing_->tRFC,
             &rank.lastRef);
    if (timing_->refreshEnabled) {
        Cycle deadline =
            rank.lastRefCycle +
            static_cast<Cycle>(params_.refreshDeadlineFactor *
                               static_cast<double>(timing_->tREFI));
        if (ev.cycle > deadline)
            flag(Constraint::RefreshOverdue, ev, deadline,
                 rank.hasRef ? &rank.lastRef : nullptr);
    }

    rank.hasRef = true;
    rank.lastRef = ev;
    rank.lastRefCycle = ev.cycle;
}

void
ProtocolChecker::checkPowerDown(ChannelState &cs, const CommandEvent &ev)
{
    RankState &rank = cs.ranks[ev.rank];
    const int banksPerRank = timing_->banksPerRank();
    const BankId base = static_cast<BankId>(ev.rank * banksPerRank);

    if (rank.poweredDown)
        flag(Constraint::PdBadState, ev, kCycleNever, &rank.lastPde);
    for (BankId b = base; b < base + banksPerRank; ++b) {
        if (cs.banks[b].openRow != kNoRow) {
            CommandEvent ref = ev;
            ref.bank = b;
            flag(Constraint::PdRowOpen, ref, kCycleNever,
                 cs.banks[b].hasAct ? &cs.banks[b].lastAct : nullptr);
        }
    }
    if (rank.hasPdx && ev.cycle < rank.lastPdx.cycle + timing_->tXP)
        flag(Constraint::Txp, ev, rank.lastPdx.cycle + timing_->tXP,
             &rank.lastPdx);

    rank.poweredDown = true;
    rank.lastPde = ev;
}

void
ProtocolChecker::checkPowerUp(ChannelState &cs, const CommandEvent &ev)
{
    RankState &rank = cs.ranks[ev.rank];

    if (!rank.poweredDown) {
        flag(Constraint::PdBadState, ev, kCycleNever,
             rank.hasPdx ? &rank.lastPdx : nullptr);
    } else if (ev.cycle < rank.lastPde.cycle + timing_->tCKE) {
        flag(Constraint::Tcke, ev, rank.lastPde.cycle + timing_->tCKE,
             &rank.lastPde);
    }

    rank.poweredDown = false;
    rank.hasPdx = true;
    rank.lastPdx = ev;
}

void
ProtocolChecker::onCommand(const CommandEvent &ev)
{
    ++eventsAudited_;
    ChannelState &cs = channelState(ev.channel);

    if (ev.autoPre) {
        // Auto-precharge rides the column command: no command-bus slot.
        checkAutoPrecharge(cs, ev);
        return;
    }

    if (cs.hasCmd && ev.cycle < cs.lastCmd.cycle + timing_->tCK)
        flag(Constraint::CmdBusConflict, ev,
             cs.lastCmd.cycle + timing_->tCK, &cs.lastCmd);

    // Power-state discipline for everything except the PDE/PDX pair
    // itself: a powered-down rank accepts no commands, and after a PDX
    // the rank stays locked out for tXP.
    if (ev.kind != CommandKind::PowerDown &&
        ev.kind != CommandKind::PowerUp) {
        RankState &rank = cs.ranks[ev.rank];
        if (rank.poweredDown)
            flag(Constraint::CmdWhilePoweredDown, ev, kCycleNever,
                 &rank.lastPde);
        else if (rank.hasPdx &&
                 ev.cycle < rank.lastPdx.cycle + timing_->tXP)
            flag(Constraint::Txp, ev, rank.lastPdx.cycle + timing_->tXP,
                 &rank.lastPdx);
    }

    switch (ev.kind) {
      case CommandKind::Activate:
        checkActivate(cs, ev);
        break;
      case CommandKind::Read:
      case CommandKind::Write:
        checkColumn(cs, ev);
        break;
      case CommandKind::Precharge:
        checkPrecharge(cs, ev);
        break;
      case CommandKind::Refresh:
        checkRefresh(cs, ev);
        break;
      case CommandKind::PowerDown:
        checkPowerDown(cs, ev);
        break;
      case CommandKind::PowerUp:
        checkPowerUp(cs, ev);
        break;
    }

    cs.hasCmd = true;
    cs.lastCmd = ev;
}

void
ProtocolChecker::finalize(Cycle endCycle)
{
    if (finalized_ || !timing_->refreshEnabled)
        return;
    finalized_ = true;
    const Cycle window =
        static_cast<Cycle>(params_.refreshDeadlineFactor *
                           static_cast<double>(timing_->tREFI));
    for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
        ChannelState &cs = channels_[ch];
        for (std::size_t r = 0; r < cs.ranks.size(); ++r) {
            RankState &rank = cs.ranks[r];
            Cycle deadline = rank.lastRefCycle + window;
            if (endCycle <= deadline)
                continue;
            CommandEvent ev;
            ev.cycle = endCycle;
            ev.channel = static_cast<ChannelId>(ch);
            ev.rank = static_cast<int>(r);
            ev.bank = static_cast<BankId>(r * timing_->banksPerRank());
            ev.kind = CommandKind::Refresh;
            flag(Constraint::RefreshOverdue, ev, deadline,
                 rank.hasRef ? &rank.lastRef : nullptr);
        }
    }
}

std::string
ProtocolChecker::report() const
{
    if (violationCount() == 0)
        return {};
    char head[96];
    std::snprintf(head, sizeof(head),
                  "%llu protocol violation(s) in %llu audited commands:\n",
                  static_cast<unsigned long long>(violationCount()),
                  static_cast<unsigned long long>(eventsAudited_));
    std::string out = head;
    for (const auto &[name, count] : counters_.nonZero()) {
        char line[80];
        std::snprintf(line, sizeof(line), "  %-16s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(count));
        out += line;
    }
    for (const Violation &v : violations_) {
        out += "  ";
        out += v.message;
        out += '\n';
    }
    if (violationCount() > violations_.size())
        out += "  ... (further violations not individually recorded)\n";
    return out;
}

} // namespace tcm::dram
