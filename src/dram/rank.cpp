#include "dram/rank.hpp"

#include <algorithm>

namespace tcm::dram {

Rank::Rank(const TimingParams &timing) : timing_(&timing)
{
    actHistory_.fill(kCycleNever);
}

bool
Rank::canActivate(Cycle now, int group) const
{
    if (!commandsAllowed(now))
        return false;
    if (lastActGroup_ >= 0) {
        Cycle spacing = group == lastActGroup_ ? timing_->tRRD_L
                                               : timing_->tRRD_S;
        if (now < lastActAt_ + spacing)
            return false;
    }
    // The oldest of the last four ACTs must be at least tFAW in the past.
    Cycle oldest = actHistory_[actHistoryPos_];
    return oldest == kCycleNever || now >= oldest + timing_->tFAW;
}

bool
Rank::canRead(Cycle now) const
{
    return now >= rdAllowedAt_;
}

void
Rank::recordActivate(Cycle now, int group)
{
    lastActAt_ = now;
    lastActGroup_ = group;
    actHistory_[actHistoryPos_] = now;
    actHistoryPos_ = (actHistoryPos_ + 1) % 4;
}

Cycle
Rank::earliestActivate(int group) const
{
    Cycle t = earliestCommandsAllowed();
    if (lastActGroup_ >= 0) {
        Cycle spacing = group == lastActGroup_ ? timing_->tRRD_L
                                               : timing_->tRRD_S;
        t = std::max(t, lastActAt_ + spacing);
    }
    Cycle oldest = actHistory_[actHistoryPos_];
    if (oldest != kCycleNever)
        t = std::max(t, oldest + timing_->tFAW);
    return t;
}

void
Rank::recordWrite(Cycle now)
{
    Cycle data_end = now + timing_->tCWL + timing_->tBURST;
    rdAllowedAt_ = std::max(rdAllowedAt_, data_end + timing_->tWTR);
}

bool
Rank::canPowerDown(Cycle now) const
{
    return !poweredDown_ && now >= pdExitAt_;
}

bool
Rank::canPowerUp(Cycle now) const
{
    return poweredDown_ && now >= pdSince_ + timing_->tCKE;
}

void
Rank::recordPowerDown(Cycle now)
{
    poweredDown_ = true;
    pdSince_ = now;
}

void
Rank::recordPowerUp(Cycle now)
{
    poweredDown_ = false;
    pdAccum_ += now - pdSince_;
    pdExitAt_ = now + timing_->tXP;
}

Cycle
Rank::earliestPowerUp() const
{
    return poweredDown_ ? pdSince_ + timing_->tCKE : kCycleNever;
}

bool
Rank::commandsAllowed(Cycle now) const
{
    return !poweredDown_ && now >= pdExitAt_;
}

Cycle
Rank::earliestCommandsAllowed() const
{
    // A powered-down rank needs a PowerUp (no sooner than tCKE after
    // entry) plus the tXP exit latency before the first command.
    if (poweredDown_)
        return pdSince_ + timing_->tCKE + timing_->tXP;
    return pdExitAt_;
}

Cycle
Rank::powerDownCycles(Cycle now) const
{
    if (poweredDown_ && now > pdSince_)
        return pdAccum_ + (now - pdSince_);
    return pdAccum_;
}

} // namespace tcm::dram
