#include "dram/rank.hpp"

#include <algorithm>

namespace tcm::dram {

Rank::Rank(const TimingParams &timing) : timing_(&timing)
{
    actHistory_.fill(kCycleNever);
}

bool
Rank::canActivate(Cycle now) const
{
    if (now < actAllowedAt_)
        return false;
    // The oldest of the last four ACTs must be at least tFAW in the past.
    Cycle oldest = actHistory_[actHistoryPos_];
    return oldest == kCycleNever || now >= oldest + timing_->tFAW;
}

bool
Rank::canRead(Cycle now) const
{
    return now >= rdAllowedAt_;
}

void
Rank::recordActivate(Cycle now)
{
    actAllowedAt_ = now + timing_->tRRD;
    actHistory_[actHistoryPos_] = now;
    actHistoryPos_ = (actHistoryPos_ + 1) % 4;
}

Cycle
Rank::earliestActivate() const
{
    Cycle oldest = actHistory_[actHistoryPos_];
    Cycle faw = oldest == kCycleNever ? 0 : oldest + timing_->tFAW;
    return std::max(actAllowedAt_, faw);
}

void
Rank::recordWrite(Cycle now)
{
    Cycle data_end = now + timing_->tCWL + timing_->tBURST;
    rdAllowedAt_ = std::max(rdAllowedAt_, data_end + timing_->tWTR);
}

} // namespace tcm::dram
