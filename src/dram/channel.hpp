/**
 * @file
 * One DRAM channel: one or more ranks of banks plus shared command and
 * data buses.
 */

#pragma once

#include <vector>

#include "common/types.hpp"
#include "dram/bank.hpp"
#include "dram/command.hpp"
#include "dram/observer.hpp"
#include "dram/rank.hpp"
#include "dram/timing.hpp"

namespace tcm::dram {

/**
 * Aggregates bank, rank and bus constraints behind a single
 * `canIssue`/`issue` interface the memory controller drives. One command
 * may occupy the command bus per tCK; read/write data bursts occupy the
 * shared data bus (with a tRTRS gap when consecutive bursts come from
 * different ranks); column commands are separated channel-wide by
 * tCCD_L when they target the same bank group as the previous column
 * command and tCCD_S otherwise (equal values outside DDR4, reducing to
 * the classic single tCCD).
 *
 * Banks are numbered contiguously across ranks: bank ids
 * [r * banksPerRank, (r+1) * banksPerRank) belong to rank r. Rank-level
 * constraints (tRRD, tFAW, tWTR) and refresh apply per rank.
 */
class Channel
{
  public:
    /** @param id channel id stamped onto observed command events. */
    explicit Channel(const TimingParams &timing, ChannelId id = 0);

    /**
     * Register @p observer to receive every issued command (and
     * auto-precharge rider) as a CommandEvent. Observers are purely
     * passive; with none registered the notification cost is one empty()
     * check per command.
     */
    void addObserver(CommandObserver *observer);

    /**
     * Deferred-observation mode for decoupled (parallel) stepping: when
     * @p buffer is non-null, issued-command events append to it instead
     * of dispatching to observers; the owner later replays them through
     * dispatch() in the canonical cross-channel order. Pass nullptr to
     * restore immediate dispatch. Events are buffered in issue order,
     * i.e. already cycle-sorted per channel.
     */
    void bufferEvents(std::vector<CommandEvent> *buffer)
    {
        eventBuffer_ = buffer;
    }

    /** Deliver one (buffered) event to every registered observer. */
    void
    dispatch(const CommandEvent &event) const
    {
        for (CommandObserver *obs : observers_)
            obs->onCommand(event);
    }

    int numBanks() const { return static_cast<int>(banks_.size()); }
    int numRanks() const { return static_cast<int>(ranks_.size()); }

    const Bank &bank(BankId b) const { return banks_[b]; }

    /** Rank that bank @p b belongs to. */
    int rankOf(BankId b) const { return b / timing_->banksPerRank(); }

    /** True if the command bus can accept a command at @p now. */
    bool cmdBusFree(Cycle now) const { return now >= cmdBusFreeAt_; }

    /**
     * First cycle the command bus is free again (earliest-ready bound
     * for the cycle-skipping kernel: no command can issue before this).
     */
    Cycle cmdBusFreeAt() const { return cmdBusFreeAt_; }

    /**
     * True if command @p kind targeting bank @p b (row match for RD/WR
     * is the caller's concern) is legal at @p now, including bank, rank
     * and bus constraints. For Refresh, @p b names any bank of the rank
     * to refresh. The command bus must also be free (checked here).
     */
    bool canIssue(CommandKind kind, BankId b, Cycle now) const;

    /**
     * Issue the command; asserts `canIssue`. For ACT, @p row names the row
     * to open. Returns occupancy/data-window info for attribution.
     */
    IssueResult issue(CommandKind kind, BankId b, RowId row, Cycle now);

    /**
     * Auto-precharge rider on the column command just issued to @p b
     * (closed-page policy). Returns the precharge occupancy (tRP).
     */
    Cycle autoPrecharge(BankId b);

    /** True when every bank in every rank is precharged. */
    bool allBanksPrecharged() const;

    /** True when every bank of rank @p rank is precharged. */
    bool rankPrecharged(int rank) const;

    /** True when rank @p rank is in precharge power-down. */
    bool rankPoweredDown(int rank) const
    {
        return ranks_[rank].poweredDown();
    }

    /** Earliest cycle a PowerUp to rank @p rank could issue. */
    Cycle rankPowerUpAllowedAt(int rank) const
    {
        return ranks_[rank].earliestPowerUp();
    }

    /** Power-down cycles of rank @p rank through @p now (energy). */
    Cycle rankPowerDownCycles(int rank, Cycle now) const
    {
        return ranks_[rank].powerDownCycles(now);
    }

    /**
     * Lower bound on the first cycle at which @p kind could issue to
     * bank @p b, assuming no further commands issue in between. Never
     * later than the true time, so a scheduler may sleep until it.
     * Returns kCycleNever when the command is ineligible regardless of
     * time (e.g. RD to a precharged bank).
     */
    Cycle earliestIssue(CommandKind kind, BankId b) const;

  private:
    /** Report one command (or auto-precharge rider) to all observers. */
    void notifyObservers(CommandKind kind, BankId b, RowId row, Cycle now,
                         bool autoPre) const;

    /**
     * Earliest cycle a column command to global bank group @p group may
     * issue under the tCCD_S/tCCD_L split (0 when no column command has
     * issued yet).
     */
    Cycle colAllowedAt(int group) const;

    const TimingParams *timing_;
    ChannelId id_;
    std::vector<Rank> ranks_;
    std::vector<Bank> banks_;
    std::vector<CommandObserver *> observers_;
    std::vector<CommandEvent> *eventBuffer_ = nullptr;
    Cycle cmdBusFreeAt_ = 0;
    Cycle dataBusFreeAt_ = 0;
    Cycle lastColCmdAt_ = 0;    //!< last column command (tCCD base)
    int lastColGroup_ = -1;     //!< its global bank group; -1 = none yet
    Cycle lastIssueCycle_ = 0;  //!< stamps auto-precharge rider events
    int lastBurstRank_ = -1;    //!< for the tRTRS rank-switch gap
};

} // namespace tcm::dram
