/**
 * @file
 * DRAM timing parameters, expressed in CPU cycles.
 *
 * The whole simulator runs on a single CPU clock (5 GHz by default,
 * 0.2 ns per cycle, matching the paper's Table 3 where a 40 ns row-buffer
 * hit corresponds to 200 cycles). DRAM-side constraints are specified in
 * datasheet units by a dram::ProtocolSpec (see protocol.hpp) and
 * converted once at derivation — `TimingParams` is the flat, derived
 * form the bank/rank/channel engine consumes; it is never written by
 * hand outside tests.
 */

#pragma once

#include <string>

#include "common/types.hpp"

namespace tcm::dram {

/** DRAM generation of a parameter block (selects defaults and checks). */
enum class Generation
{
    Ddr2,
    Ddr3,
    Ddr4,
};

/**
 * Full set of DRAM timing and geometry parameters used by the bank, rank
 * and channel models. All `t*` members are CPU cycles.
 *
 * Protocols without bank groups (DDR2/DDR3) carry tCCD_S == tCCD_L and
 * tRRD_S == tRRD_L, so the group-aware engine paths reduce exactly to
 * the classic single-constraint behavior.
 */
struct TimingParams
{
    /** Registry name of the protocol this block was derived from. */
    std::string protocol;

    Generation generation = Generation::Ddr2;

    /** CPU cycles per nanosecond (the CPU clock, from the spec). */
    double cyclesPerNs = 5.0;

    /** Convert nanoseconds to (rounded) CPU cycles at this CPU clock. */
    Cycle ns(double nanoseconds) const;

    // -- DRAM clock --------------------------------------------------------
    Cycle tCK;    //!< DRAM command-clock period (2.5 ns at DDR2-800)

    // -- Core timing constraints -------------------------------------------
    Cycle tCL;    //!< CAS (read) latency
    Cycle tCWL;   //!< CAS write latency (tCL - tCK for DDR2)
    Cycle tRCD;   //!< ACT-to-RD/WR delay
    Cycle tRP;    //!< PRE-to-ACT delay
    Cycle tRAS;   //!< ACT-to-PRE minimum
    Cycle tRC;    //!< ACT-to-ACT same bank (tRAS + tRP)
    Cycle tBURST; //!< Data-bus occupancy of one access (BL/2 DRAM cycles)
    Cycle tCCD_S; //!< Column-to-column spacing, different bank groups
    Cycle tCCD_L; //!< Column-to-column spacing, same bank group
    Cycle tRRD_S; //!< ACT-to-ACT spacing, different bank groups, same rank
    Cycle tRRD_L; //!< ACT-to-ACT spacing, same bank group
    Cycle tWR;    //!< Write recovery (end of write data to PRE)
    Cycle tWTR;   //!< Write-to-read turnaround (end of write data to RD)
    Cycle tRTP;   //!< Read-to-precharge delay
    Cycle tFAW;   //!< Four-activate window, per rank
    Cycle tRTRS;  //!< Rank-to-rank data-bus switch penalty
    Cycle tREFI;  //!< Average refresh interval
    Cycle tRFC;   //!< Refresh cycle time
    Cycle tXP;    //!< Power-down exit to first valid command
    Cycle tCKE;   //!< Minimum power-down residency

    // -- Interconnect delays (controller <-> core) -------------------------
    Cycle cpuToMcDelay; //!< Core request to controller-queue visibility
    Cycle mcToCpuDelay; //!< Last data beat to core wakeup

    // -- Geometry -----------------------------------------------------------
    int banksPerChannel;   //!< Total banks behind one controller
    int ranksPerChannel;   //!< DIMM ranks; banksPerChannel splits evenly
    int bankGroupsPerRank; //!< DDR4 bank groups (1 = no grouping)
    int rowsPerBank;       //!< Rows per bank
    int colsPerRow;        //!< Cache-block-sized columns per row

    /** Banks in one rank (banksPerChannel / ranksPerChannel). */
    int banksPerRank() const { return banksPerChannel / ranksPerChannel; }

    /** Banks in one bank group. */
    int banksPerGroup() const { return banksPerRank() / bankGroupsPerRank; }

    /** Bank group of @p bank within its rank, [0, bankGroupsPerRank). */
    int
    groupInRank(int bank) const
    {
        return (bank % banksPerRank()) / banksPerGroup();
    }

    /**
     * Globally unique bank-group id of @p bank (rank-qualified), so two
     * banks share an id iff they share both rank and group. Used for the
     * tCCD_S/tCCD_L split: commands to the same id take the long spacing.
     */
    int
    groupOfBank(int bank) const
    {
        return (bank / banksPerRank()) * bankGroupsPerRank +
               groupInRank(bank);
    }

    bool refreshEnabled;  //!< Model periodic refresh (tREFI/tRFC)

    /**
     * The baseline configuration of Table 3 — derived from
     * protocols::ddr2_800(). Uncontended round-trip latencies come out at
     * ~200/275/350 cycles for row hit / closed / conflict, close to the
     * paper's quoted 200/300/400 (the residual difference is the paper's
     * inclusion of additional command/decode overheads).
     */
    static TimingParams ddr2_800();

    /** Derived from protocols::ddr3_1333() (no paper experiment uses it). */
    static TimingParams ddr3_1333();
};

} // namespace tcm::dram
