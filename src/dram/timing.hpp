/**
 * @file
 * DDR2 timing parameters, expressed in CPU cycles.
 *
 * The whole simulator runs on a single 5 GHz CPU clock (0.2 ns per cycle),
 * matching the paper's Table 3 where a 40 ns row-buffer hit corresponds to
 * 200 cycles. DRAM-side constraints are specified in nanoseconds from the
 * Micron DDR2-800 datasheet (MT47H128M8HQ-25) and converted once at
 * construction.
 */

#pragma once

#include "common/types.hpp"

namespace tcm::dram {

/**
 * Full set of DRAM timing and geometry parameters used by the bank, rank
 * and channel models. All `t*` members are CPU cycles.
 */
struct TimingParams
{
    /** CPU cycles per nanosecond (5 GHz). */
    static constexpr double kCyclesPerNs = 5.0;

    /** Convert nanoseconds to (rounded) CPU cycles. */
    static Cycle ns(double nanoseconds);

    // -- DRAM clock --------------------------------------------------------
    Cycle tCK;    //!< DRAM command-clock period (2.5 ns at DDR2-800)

    // -- Core timing constraints -------------------------------------------
    Cycle tCL;    //!< CAS (read) latency
    Cycle tCWL;   //!< CAS write latency (tCL - tCK for DDR2)
    Cycle tRCD;   //!< ACT-to-RD/WR delay
    Cycle tRP;    //!< PRE-to-ACT delay
    Cycle tRAS;   //!< ACT-to-PRE minimum
    Cycle tRC;    //!< ACT-to-ACT same bank (tRAS + tRP)
    Cycle tBURST; //!< Data-bus occupancy of one access (BL/2 DRAM cycles)
    Cycle tCCD;   //!< Column-command-to-column-command spacing
    Cycle tRRD;   //!< ACT-to-ACT different banks, same rank
    Cycle tWR;    //!< Write recovery (end of write data to PRE)
    Cycle tWTR;   //!< Write-to-read turnaround (end of write data to RD)
    Cycle tRTP;   //!< Read-to-precharge delay
    Cycle tFAW;   //!< Four-activate window, per rank
    Cycle tRTRS;  //!< Rank-to-rank data-bus switch penalty
    Cycle tREFI;  //!< Average refresh interval
    Cycle tRFC;   //!< Refresh cycle time

    // -- Interconnect delays (controller <-> core) -------------------------
    Cycle cpuToMcDelay; //!< Core request to controller-queue visibility
    Cycle mcToCpuDelay; //!< Last data beat to core wakeup

    // -- Geometry -----------------------------------------------------------
    int banksPerChannel;  //!< Total banks behind one controller
    int ranksPerChannel;  //!< DIMM ranks; banksPerChannel splits evenly
    int rowsPerBank;      //!< Rows per bank
    int colsPerRow;       //!< Cache-block-sized columns per row (2 KB / 32 B)

    /** Banks in one rank (banksPerChannel / ranksPerChannel). */
    int banksPerRank() const { return banksPerChannel / ranksPerChannel; }

    bool refreshEnabled;  //!< Model periodic refresh (tREFI/tRFC)

    /**
     * The baseline configuration of Table 3: Micron DDR2-800, 4 banks,
     * 2 KB row-buffer, 32-byte blocks. Uncontended round-trip latencies
     * come out at ~200/275/350 cycles for row hit / closed / conflict,
     * close to the paper's quoted 200/300/400 (the residual difference is
     * the paper's inclusion of additional command/decode overheads).
     */
    static TimingParams ddr2_800();

    /**
     * DDR3-1333 CL9 (e.g. Micron MT41J256M8): 8 banks per rank, faster
     * clock and burst, larger tFAW relative to tRRD. Not used by any
     * paper experiment — provided so downstream studies can check that
     * scheduling conclusions survive a newer DRAM generation.
     */
    static TimingParams ddr3_1333();
};

} // namespace tcm::dram
