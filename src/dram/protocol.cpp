#include "dram/protocol.hpp"

#include <algorithm>
#include <cmath>

namespace tcm::dram {

double
ProtocolSpec::effectiveNs(const ProtocolParam &p) const
{
    return std::max(p.ns, static_cast<double>(p.ck) * tCkNs);
}

Cycle
ProtocolSpec::cycles(const ProtocolParam &p) const
{
    return static_cast<Cycle>(std::llround(effectiveNs(p) * cpuGhz));
}

std::vector<NamedParam>
ProtocolSpec::table() const
{
    return {
        {"tCL", tCL},       {"tCWL", tCWL},     {"tRCD", tRCD},
        {"tRP", tRP},       {"tRAS", tRAS},     {"tRC", tRC},
        {"tCCD_S", tCCD_S}, {"tCCD_L", tCCD_L}, {"tRRD_S", tRRD_S},
        {"tRRD_L", tRRD_L}, {"tWR", tWR},       {"tWTR", tWTR},
        {"tRTP", tRTP},     {"tFAW", tFAW},     {"tRTRS", tRTRS},
        {"tREFI", tREFI},   {"tRFC", tRFC},     {"tXP", tXP},
        {"tCKE", tCKE},
    };
}

std::string
ProtocolSpec::validate() const
{
    if (name.empty())
        return "protocol spec has no name";
    if (tCkNs <= 0.0)
        return name + ": tCK must be positive";
    if (cpuGhz <= 0.0)
        return name + ": cpuGhz must be positive";
    if (burstLength <= 0 || burstLength % 2 != 0)
        return name + ": burstLength must be a positive even count";
    if (bankGroupsPerRank < 1 || banksPerGroup < 1 || ranksPerChannel < 1)
        return name + ": geometry counts must be at least 1";
    if (rowsPerBank < 1 || colsPerRow < 1)
        return name + ": rows/columns must be at least 1";
    for (const NamedParam &p : table())
        if (p.value.ns < 0.0 || p.value.ck < 0)
            return name + ": " + p.name + " must be non-negative";
    if (effectiveNs(tCCD_L) < effectiveNs(tCCD_S))
        return name + ": tCCD_L must be at least tCCD_S";
    if (effectiveNs(tRRD_L) < effectiveNs(tRRD_S))
        return name + ": tRRD_L must be at least tRRD_S";
    // The channel keeps one column-spacing register (last column command
    // + its group); that is only equivalent to per-group tracking when
    // two back-to-back short gaps already cover a long one.
    if (2.0 * effectiveNs(tCCD_S) < effectiveNs(tCCD_L))
        return name + ": 2*tCCD_S must cover tCCD_L "
                      "(single column-spacing register)";
    return {};
}

TimingParams
ProtocolSpec::derive() const
{
    TimingParams t{};
    t.protocol = name;
    t.generation = generation;
    t.cyclesPerNs = cpuGhz;
    t.tCK = t.ns(tCkNs);
    t.tCL = cycles(tCL);
    t.tCWL = cycles(tCWL);
    t.tRCD = cycles(tRCD);
    t.tRP = cycles(tRP);
    t.tRAS = cycles(tRAS);
    // tRC defaults to the row cycle identity tRAS + tRP when the table
    // leaves it unspecified.
    const bool hasTrc = tRC.ns > 0.0 || tRC.ck > 0;
    t.tRC = hasTrc ? cycles(tRC) : t.tRAS + t.tRP;
    t.tBURST = t.ns(static_cast<double>(burstLength) / 2.0 * tCkNs);
    t.tCCD_S = cycles(tCCD_S);
    t.tCCD_L = cycles(tCCD_L);
    t.tRRD_S = cycles(tRRD_S);
    t.tRRD_L = cycles(tRRD_L);
    t.tWR = cycles(tWR);
    t.tWTR = cycles(tWTR);
    t.tRTP = cycles(tRTP);
    t.tFAW = cycles(tFAW);
    t.tRTRS = cycles(tRTRS);
    t.tREFI = cycles(tREFI);
    t.tRFC = cycles(tRFC);
    t.tXP = cycles(tXP);
    t.tCKE = cycles(tCKE);
    t.cpuToMcDelay = cpuToMcDelay;
    t.mcToCpuDelay = mcToCpuDelay;
    t.bankGroupsPerRank = bankGroupsPerRank;
    t.ranksPerChannel = ranksPerChannel;
    t.banksPerChannel = bankGroupsPerRank * banksPerGroup * ranksPerChannel;
    t.rowsPerBank = rowsPerBank;
    t.colsPerRow = colsPerRow;
    t.refreshEnabled = refreshEnabled;
    return t;
}

namespace protocols {

ProtocolSpec
ddr2_800()
{
    ProtocolSpec s;
    s.name = "ddr2-800";
    s.generation = Generation::Ddr2;
    s.dataRateMTs = 800;
    s.tCkNs = 2.5;
    s.burstLength = 8; // BL8: 4 DRAM clocks, 10 ns on the data bus
    s.bankGroupsPerRank = 1;
    s.banksPerGroup = 4;
    s.ranksPerChannel = 1;
    s.rowsPerBank = 16384;
    s.colsPerRow = 64; // 2 KB row / 32 B blocks
    s.tCL = {15.0, 0};
    s.tCWL = {12.5, 0}; // tCL - tCK for DDR2
    s.tRCD = {15.0, 0};
    s.tRP = {15.0, 0};
    s.tRAS = {45.0, 0};
    s.tRC = {60.0, 0};
    s.tCCD_S = {0.0, 2}; // no bank groups: S == L == classic tCCD
    s.tCCD_L = {0.0, 2};
    s.tRRD_S = {7.5, 0};
    s.tRRD_L = {7.5, 0};
    s.tWR = {15.0, 0};
    s.tWTR = {7.5, 0};
    s.tRTP = {7.5, 0};
    s.tFAW = {37.5, 0};
    s.tRTRS = {0.0, 2};
    s.tREFI = {7800.0, 0};
    s.tRFC = {127.5, 0};
    s.tXP = {0.0, 2};
    s.tCKE = {0.0, 3};
    return s;
}

ProtocolSpec
ddr3_1333()
{
    ProtocolSpec s;
    s.name = "ddr3-1333";
    s.generation = Generation::Ddr3;
    s.dataRateMTs = 1333;
    s.tCkNs = 1.5;
    s.burstLength = 8;
    s.bankGroupsPerRank = 1;
    s.banksPerGroup = 8;
    s.ranksPerChannel = 1;
    s.rowsPerBank = 16384;
    s.colsPerRow = 64;
    s.tCL = {13.5, 0}; // CL9
    s.tCWL = {10.5, 0};
    s.tRCD = {13.5, 0};
    s.tRP = {13.5, 0};
    s.tRAS = {36.0, 0};
    s.tRC = {49.5, 0};
    s.tCCD_S = {0.0, 4};
    s.tCCD_L = {0.0, 4};
    s.tRRD_S = {6.0, 4};
    s.tRRD_L = {6.0, 4};
    s.tWR = {15.0, 0};
    s.tWTR = {7.5, 4};
    s.tRTP = {7.5, 4};
    s.tFAW = {30.0, 0};
    s.tRTRS = {0.0, 2};
    s.tREFI = {7800.0, 0};
    s.tRFC = {160.0, 0};
    s.tXP = {6.0, 3};
    s.tCKE = {5.625, 3};
    return s;
}

ProtocolSpec
ddr3_1600()
{
    ProtocolSpec s;
    s.name = "ddr3-1600";
    s.generation = Generation::Ddr3;
    s.dataRateMTs = 1600;
    s.tCkNs = 1.25;
    s.burstLength = 8;
    s.bankGroupsPerRank = 1;
    s.banksPerGroup = 8;
    s.ranksPerChannel = 1;
    s.rowsPerBank = 16384;
    s.colsPerRow = 64;
    s.tCL = {0.0, 11}; // CL11 (13.75 ns)
    s.tCWL = {0.0, 8};
    s.tRCD = {0.0, 11};
    s.tRP = {0.0, 11};
    s.tRAS = {35.0, 0};
    s.tRC = {};        // tRAS + tRP
    s.tCCD_S = {0.0, 4};
    s.tCCD_L = {0.0, 4};
    s.tRRD_S = {6.0, 4};
    s.tRRD_L = {6.0, 4};
    s.tWR = {15.0, 0};
    s.tWTR = {7.5, 4};
    s.tRTP = {7.5, 4};
    s.tFAW = {30.0, 0};
    s.tRTRS = {0.0, 2};
    s.tREFI = {7800.0, 0};
    s.tRFC = {160.0, 0};
    s.tXP = {6.0, 3};
    s.tCKE = {5.0, 3};
    return s;
}

ProtocolSpec
ddr4_2400()
{
    ProtocolSpec s;
    s.name = "ddr4-2400";
    s.generation = Generation::Ddr4;
    s.dataRateMTs = 2400;
    s.tCkNs = 10.0 / 12.0; // 1200 MHz command clock
    s.burstLength = 8;
    s.bankGroupsPerRank = 4;
    s.banksPerGroup = 4;
    s.ranksPerChannel = 1;
    s.rowsPerBank = 32768;
    s.colsPerRow = 64;
    s.tCL = {0.0, 17}; // CL17 (14.17 ns)
    s.tCWL = {0.0, 12};
    s.tRCD = {0.0, 17};
    s.tRP = {0.0, 17};
    s.tRAS = {32.0, 0};
    s.tRC = {};        // tRAS + tRP
    s.tCCD_S = {0.0, 4}; // cross-group back-to-back columns
    s.tCCD_L = {0.0, 6}; // same-group spacing is genuinely longer
    s.tRRD_S = {3.3, 4};
    s.tRRD_L = {4.9, 4};
    s.tWR = {15.0, 0};
    s.tWTR = {7.5, 4};
    s.tRTP = {7.5, 4};
    s.tFAW = {21.0, 20};
    s.tRTRS = {0.0, 2};
    s.tREFI = {7800.0, 0};
    s.tRFC = {260.0, 0}; // 4 Gb device class
    s.tXP = {6.0, 4};
    s.tCKE = {5.0, 3};
    return s;
}

} // namespace protocols

namespace {

using SpecFactory = ProtocolSpec (*)();

constexpr SpecFactory kRegistry[] = {
    protocols::ddr2_800,
    protocols::ddr3_1333,
    protocols::ddr3_1600,
    protocols::ddr4_2400,
};

std::string
vocabulary()
{
    std::string out;
    for (const SpecFactory &make : kRegistry) {
        if (!out.empty())
            out += ", ";
        out += make().name;
    }
    return out;
}

} // namespace

const std::vector<std::string> &
protocolNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const SpecFactory &make : kRegistry)
            v.push_back(make().name);
        return v;
    }();
    return names;
}

ProtocolLookup
protocolByName(const std::string &name)
{
    ProtocolLookup out;
    for (const SpecFactory &make : kRegistry) {
        ProtocolSpec spec = make();
        if (name == spec.name) {
            out.ok = true;
            out.spec = std::move(spec);
            return out;
        }
    }
    out.error = "unknown DRAM protocol '" + name +
                "'; valid names: " + vocabulary();
    return out;
}

} // namespace tcm::dram
