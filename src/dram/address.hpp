/**
 * @file
 * Physical-address <-> (channel, bank, row, column) interleaving.
 */

#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace tcm::dram {

/** A fully decoded DRAM coordinate. */
struct Coord
{
    ChannelId channel;
    BankId bank;
    RowId row;
    ColId col;

    bool
    operator==(const Coord &o) const
    {
        return channel == o.channel && bank == o.bank && row == o.row &&
               col == o.col;
    }
};

/**
 * Cache-block-interleaved address map: consecutive 32-byte blocks walk
 * channels first, then banks, then columns, then rows
 * (`row : col : bank : channel : block-offset` from MSB to LSB). This is
 * the standard interleave that spreads streams across channels and banks
 * for bandwidth while keeping row locality within a bank.
 */
class AddressMap
{
  public:
    AddressMap(const TimingParams &timing, int numChannels,
               int blockBytes = 32);

    /** Decode a byte address into DRAM coordinates. */
    Coord decode(std::uint64_t byteAddr) const;

    /** Encode coordinates back into the base byte address of the block. */
    std::uint64_t encode(const Coord &coord) const;

    /** Total addressable bytes across all channels. */
    std::uint64_t capacityBytes() const;

    int numChannels() const { return numChannels_; }
    int blockBytes() const { return blockBytes_; }

  private:
    int numChannels_;
    int banksPerChannel_;
    int rowsPerBank_;
    int colsPerRow_;
    int blockBytes_;
};

} // namespace tcm::dram
