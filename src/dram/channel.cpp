#include "dram/channel.hpp"

#include <algorithm>
#include <cassert>

namespace tcm::dram {

Channel::Channel(const TimingParams &timing, ChannelId id)
    : timing_(&timing), id_(id)
{
    assert(timing.banksPerChannel % timing.ranksPerChannel == 0);
    assert(timing.banksPerRank() % timing.bankGroupsPerRank == 0);
    ranks_.reserve(timing.ranksPerChannel);
    for (int r = 0; r < timing.ranksPerChannel; ++r)
        ranks_.emplace_back(timing);
    banks_.reserve(timing.banksPerChannel);
    for (int i = 0; i < timing.banksPerChannel; ++i)
        banks_.emplace_back(timing);
}

void
Channel::addObserver(CommandObserver *observer)
{
    observers_.push_back(observer);
}

void
Channel::notifyObservers(CommandKind kind, BankId b, RowId row, Cycle now,
                         bool autoPre) const
{
    CommandEvent ev;
    ev.cycle = now;
    ev.channel = id_;
    ev.rank = rankOf(b);
    ev.bank = b;
    ev.kind = kind;
    ev.row = row;
    ev.autoPre = autoPre;
    if (eventBuffer_ != nullptr) {
        eventBuffer_->push_back(ev);
        return;
    }
    for (CommandObserver *obs : observers_)
        obs->onCommand(ev);
}

Cycle
Channel::colAllowedAt(int group) const
{
    if (lastColGroup_ < 0)
        return 0;
    Cycle spacing = group == lastColGroup_ ? timing_->tCCD_L
                                           : timing_->tCCD_S;
    return lastColCmdAt_ + spacing;
}

bool
Channel::canIssue(CommandKind kind, BankId b, Cycle now) const
{
    if (!cmdBusFree(now))
        return false;
    const Bank &bank = banks_[b];
    const Rank &rank = ranks_[rankOf(b)];
    switch (kind) {
      case CommandKind::Activate:
        return bank.canActivate(now) &&
               rank.canActivate(now, timing_->groupInRank(b));
      case CommandKind::Read: {
        if (!rank.commandsAllowed(now))
            return false;
        Cycle data_start = now + timing_->tCL;
        Cycle bus_free = dataBusFreeAt_;
        if (lastBurstRank_ >= 0 && lastBurstRank_ != rankOf(b))
            bus_free += timing_->tRTRS;
        return bank.canRead(now) && rank.canRead(now) &&
               now >= colAllowedAt(timing_->groupOfBank(b)) &&
               data_start >= bus_free;
      }
      case CommandKind::Write: {
        if (!rank.commandsAllowed(now))
            return false;
        Cycle data_start = now + timing_->tCWL;
        Cycle bus_free = dataBusFreeAt_;
        if (lastBurstRank_ >= 0 && lastBurstRank_ != rankOf(b))
            bus_free += timing_->tRTRS;
        return bank.canWrite(now) &&
               now >= colAllowedAt(timing_->groupOfBank(b)) &&
               data_start >= bus_free;
      }
      case CommandKind::Precharge:
        return rank.commandsAllowed(now) && bank.canPrecharge(now);
      case CommandKind::Refresh: {
        // Refresh internally activates every bank: each bank must be
        // precharged with tRP elapsed (and tRFC since the previous
        // refresh), exactly as if an ACT were issued to it.
        if (!rank.commandsAllowed(now))
            return false;
        int r = rankOf(b);
        int base = r * timing_->banksPerRank();
        for (int i = 0; i < timing_->banksPerRank(); ++i)
            if (!banks_[base + i].canActivate(now))
                return false;
        return true;
      }
      case CommandKind::PowerDown:
        return rank.canPowerDown(now) && rankPrecharged(rankOf(b));
      case CommandKind::PowerUp:
        return rank.canPowerUp(now);
    }
    return false;
}

IssueResult
Channel::issue(CommandKind kind, BankId b, RowId row, Cycle now)
{
    assert(canIssue(kind, b, now));
    IssueResult res{};
    Bank &bank = banks_[b];
    Rank &rank = ranks_[rankOf(b)];
    cmdBusFreeAt_ = now + timing_->tCK;
    lastIssueCycle_ = now;
    if (!observers_.empty())
        notifyObservers(kind, b, row, now, /*autoPre=*/false);
    switch (kind) {
      case CommandKind::Activate:
        res.occupancy = bank.activate(now, row);
        rank.recordActivate(now, timing_->groupInRank(b));
        break;
      case CommandKind::Read:
        res.occupancy = bank.read(now);
        res.dataStart = now + timing_->tCL;
        res.dataEnd = res.dataStart + timing_->tBURST;
        dataBusFreeAt_ = res.dataEnd;
        lastColCmdAt_ = now;
        lastColGroup_ = timing_->groupOfBank(b);
        lastBurstRank_ = rankOf(b);
        break;
      case CommandKind::Write:
        res.occupancy = bank.write(now);
        rank.recordWrite(now);
        res.dataStart = now + timing_->tCWL;
        res.dataEnd = res.dataStart + timing_->tBURST;
        dataBusFreeAt_ = res.dataEnd;
        lastColCmdAt_ = now;
        lastColGroup_ = timing_->groupOfBank(b);
        lastBurstRank_ = rankOf(b);
        break;
      case CommandKind::Precharge:
        res.occupancy = bank.precharge(now);
        break;
      case CommandKind::Refresh: {
        int r = rankOf(b);
        int base = r * timing_->banksPerRank();
        for (int i = 0; i < timing_->banksPerRank(); ++i)
            banks_[base + i].refresh(now);
        res.occupancy = timing_->tRFC;
        break;
      }
      case CommandKind::PowerDown:
        rank.recordPowerDown(now);
        break;
      case CommandKind::PowerUp:
        rank.recordPowerUp(now);
        break;
    }
    return res;
}

Cycle
Channel::autoPrecharge(BankId b)
{
    if (!observers_.empty())
        notifyObservers(CommandKind::Precharge, b, banks_[b].openRow(),
                        lastIssueCycle_, /*autoPre=*/true);
    return banks_[b].autoPrecharge();
}

bool
Channel::allBanksPrecharged() const
{
    return std::all_of(banks_.begin(), banks_.end(),
                       [](const Bank &b) { return b.precharged(); });
}

bool
Channel::rankPrecharged(int rank) const
{
    int base = rank * timing_->banksPerRank();
    for (int i = 0; i < timing_->banksPerRank(); ++i)
        if (!banks_[base + i].precharged())
            return false;
    return true;
}

Cycle
Channel::earliestIssue(CommandKind kind, BankId b) const
{
    const Bank &bank = banks_[b];
    const Rank &rank = ranks_[rankOf(b)];
    Cycle rtrs = lastBurstRank_ >= 0 && lastBurstRank_ != rankOf(b)
                     ? timing_->tRTRS
                     : 0;
    Cycle t = cmdBusFreeAt_;
    switch (kind) {
      case CommandKind::Activate:
        if (!bank.precharged())
            return kCycleNever;
        t = std::max(t, bank.actAllowedAt());
        t = std::max(t, rank.earliestActivate(timing_->groupInRank(b)));
        return t;
      case CommandKind::Read:
        if (bank.precharged())
            return kCycleNever;
        t = std::max(t, rank.earliestCommandsAllowed());
        t = std::max(t, bank.rdAllowedAt());
        t = std::max(t, rank.earliestRead());
        t = std::max(t, colAllowedAt(timing_->groupOfBank(b)));
        if (dataBusFreeAt_ + rtrs > timing_->tCL)
            t = std::max(t, dataBusFreeAt_ + rtrs - timing_->tCL);
        return t;
      case CommandKind::Write:
        if (bank.precharged())
            return kCycleNever;
        t = std::max(t, rank.earliestCommandsAllowed());
        t = std::max(t, bank.wrAllowedAt());
        t = std::max(t, colAllowedAt(timing_->groupOfBank(b)));
        if (dataBusFreeAt_ + rtrs > timing_->tCWL)
            t = std::max(t, dataBusFreeAt_ + rtrs - timing_->tCWL);
        return t;
      case CommandKind::Precharge:
        if (bank.precharged())
            return kCycleNever;
        t = std::max(t, rank.earliestCommandsAllowed());
        return std::max(t, bank.preAllowedAt());
      case CommandKind::Refresh: {
        if (!rankPrecharged(rankOf(b)))
            return kCycleNever;
        int r = rankOf(b);
        int base = r * timing_->banksPerRank();
        t = std::max(t, rank.earliestCommandsAllowed());
        for (int i = 0; i < timing_->banksPerRank(); ++i)
            t = std::max(t, banks_[base + i].actAllowedAt());
        return t;
      }
      case CommandKind::PowerDown:
        if (rank.poweredDown() || !rankPrecharged(rankOf(b)))
            return kCycleNever;
        return std::max(t, rank.earliestCommandsAllowed());
      case CommandKind::PowerUp:
        if (!rank.poweredDown())
            return kCycleNever;
        return std::max(t, rank.earliestPowerUp());
    }
    return kCycleNever;
}

} // namespace tcm::dram
