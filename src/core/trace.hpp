/**
 * @file
 * The instruction-stream abstraction a core executes.
 */

#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace tcm::core {

/** One memory access in DRAM coordinates. */
struct MemAccess
{
    bool isWrite = false;
    ChannelId channel = 0;
    BankId bank = 0;
    RowId row = 0;
    ColId col = 0;
};

/**
 * One trace item: @p gap non-memory instructions followed by one memory
 * access. A read access is itself an instruction (the missing load); a
 * write access models a dirty writeback and is *not* an instruction.
 */
struct TraceItem
{
    std::uint64_t gap = 0;
    MemAccess access;
};

/**
 * An infinite, deterministic instruction stream. Implementations must be
 * pure functions of their construction parameters: the same object state
 * yields the same sequence regardless of simulation timing, which is what
 * makes alone-run IPC comparable to shared-run IPC.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next item. Never ends. */
    virtual TraceItem next() = 0;
};

} // namespace tcm::core
