/**
 * @file
 * Simplified out-of-order core model.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/trace.hpp"
#include "mem/controller.hpp"
#include "mem/sched_iface.hpp"

namespace tcm::core {

/** Core pipeline parameters (Table 3). */
struct CoreParams
{
    int windowSize = 128;      //!< instruction window entries
    int fetchWidth = 3;        //!< instructions fetched per cycle
    int retireWidth = 3;       //!< instructions retired per cycle
    int maxMemPerCycle = 1;    //!< memory operations issued per cycle
};

/**
 * Models one hardware thread the way memory-scheduling studies do: a
 * 128-entry window retiring 3 instructions per cycle in order, where
 * non-miss instructions always complete and L2-miss loads block
 * retirement until DRAM responds. Writebacks are posted: they consume a
 * fetch slot and write-buffer capacity but never stall retirement.
 *
 * This captures the two behaviours that matter to a memory scheduler:
 * memory-non-intensive threads progress at ~3 IPC and stall completely on
 * a rare miss (latency-sensitive), while memory-intensive threads keep
 * many misses in flight and their throughput tracks DRAM service rate
 * (bandwidth-sensitive).
 */
class Core
{
  public:
    /**
     * @param id this thread's id
     * @param params pipeline widths
     * @param trace the instruction stream to execute
     * @param controllers channel-indexed memory controllers
     * @param counters externally owned counter slot (simulator-owned so
     *        schedulers can read all cores' counters as one vector)
     */
    Core(ThreadId id, const CoreParams &params, TraceSource &trace,
         std::vector<mem::MemoryController *> controllers,
         mem::CoreCounters *counters);

    /** Advance one cycle: retire, then fetch/issue. */
    void tick(Cycle now);

    /** DRAM data for @p missId will be available at @p readyAt. */
    void completeMiss(std::uint64_t missId, Cycle readyAt);

    // -- event-horizon support (cycle-skipping kernel) ----------------------

    /**
     * Exact predicate: would tick(@p now) submit a read or write to a
     * memory controller? Simulates retire and fetch arithmetic without
     * mutating core state, except that it may pull the next trace item
     * into the pending slot — an order-preserving prefetch the real
     * tick would perform at this same cycle. O(1) in the common cases
     * (long plain stretch, or a stalled window).
     */
    bool wouldSubmitAt(Cycle now);

    /**
     * Non-mutating lower bound on the first cycle >= @p now at which
     * this core's fetch could place a memory access at the fetch head —
     * i.e. the first cycle a tick might consult or mutate a memory
     * controller. The intra-run parallel driver ends a decoupled span
     * strictly before this cycle, so core ticks inside the span are
     * provably controller-free. Conservative in three ways: fetch is
     * assumed to consume the pending plain gap at the full fetch width
     * every cycle (anything slower only delays the touch), an unseen
     * trace item is assumed to carry a zero gap, and a dormant window
     * (head miss not completed) wakes no earlier than the miss's known
     * ready time — or never within the span, when the completion itself
     * can only arrive at a future barrier.
     */
    Cycle
    earliestMemTouchBound(Cycle now) const
    {
        if (!havePending_)
            return now;
        Cycle start = now;
        if (occupancy_ >= params_.windowSize && !window_.empty() &&
            window_.front().plain == 0) {
            auto it = done_.find(window_.front().missId);
            if (it == done_.end())
                return kCycleNever;
            start = it->second > now ? it->second : now;
        }
        return start +
               pendingGap_ / static_cast<std::uint64_t>(params_.fetchWidth);
    }

    /**
     * Number of cycles starting at @p now (capped at @p maxSpan) that
     * this core can provably advance with no externally visible effect
     * other than counter updates, under the span guarantee that no
     * completion arrives and controller queue occupancies are frozen.
     * 0 means the core must be ticked normally. Covers the two
     * steady-state regimes: a fully stalled window (pure no-op ticks)
     * and pure plain-instruction streaming (closed-form advance).
     * Apply with fastForwardSilent(k) for any k <= the returned span.
     * Defined inline: this and fastForwardSilent are the cycle-skip
     * kernel's innermost operations.
     */
    Cycle
    silentSpan(Cycle now, Cycle maxSpan) const
    {
        if (window_.empty())
            return 0;
        const Entry &head = window_.front();

        // Regime 1 — dormant: window full, head miss not yet
        // retireable. Both retire and fetch are complete no-ops until
        // the miss's data becomes ready (or a completion arrives, which
        // only happens at an executed cycle, ending the span anyway).
        if (head.plain == 0 && occupancy_ >= params_.windowSize) {
            auto it = done_.find(head.missId);
            if (it == done_.end())
                return maxSpan; // blocked until external completeMiss
            if (it->second > now)
                return maxSpan < it->second - now ? maxSpan
                                                  : it->second - now;
            return 0; // data ready: this tick retires
        }

        // Regime 2 — pure streaming: a single plain bundle spans the
        // whole window, widths are symmetric, and the pending gap keeps
        // every fetch slot busy. Each tick then retires and fetches
        // exactly fetchWidth plain instructions, leaving the window
        // value-identical (see fastForwardSilent).
        if (params_.fetchWidth == params_.retireWidth && havePending_ &&
            window_.size() == 1 && head.plain > 0 &&
            static_cast<int>(head.plain) == occupancy_ &&
            occupancy_ >= params_.retireWidth) {
            const std::uint64_t fw =
                static_cast<std::uint64_t>(params_.fetchWidth);
            if (pendingGap_ >= fw) {
                Cycle span = pendingGap_ / fw;
                return maxSpan < span ? maxSpan : span;
            }
        }
        return 0;
    }

    /**
     * Apply @p k cycles of the regime detected by silentSpan: state
     * afterwards is bit-identical to k calls of tick(). Only valid for
     * k <= the span silentSpan just returned.
     */
    void
    fastForwardSilent(Cycle k)
    {
        if (window_.front().plain == 0)
            return; // dormant: k ticks were pure no-ops
        // Streaming: k ticks each retired and fetched fetchWidth plain
        // instructions; the window (one bundle of occupancy_
        // instructions) is value-identical afterwards.
        const std::uint64_t fw =
            static_cast<std::uint64_t>(params_.fetchWidth);
        counters_->instructions += fw * k;
        pendingGap_ -= fw * k;
    }

    /**
     * Regime classifier for a silent span just detected by silentSpan:
     * true when the head of the window is a stalled miss (dormant
     * regime), false when the span is plain-instruction streaming.
     * Pure observer — only the profiler's regime-occupancy counters
     * consume it; fastForwardSilent leaves the answer unchanged.
     */
    bool
    dormantHead() const
    {
        return !window_.empty() && window_.front().plain == 0;
    }

    ThreadId id() const { return id_; }

    std::uint64_t instructionsRetired() const { return counters_->instructions; }
    std::uint64_t readMissesIssued() const { return counters_->readMisses; }

    /** Instructions currently occupying the window (tests). */
    int windowOccupancy() const { return occupancy_; }

  private:
    /** A window entry: either a bundle of plain instructions or a miss. */
    struct Entry
    {
        std::uint32_t plain; //!< >0: bundle size; ==0: miss entry
        std::uint64_t missId;
    };

    void retire(Cycle now);
    void fetch(Cycle now);

    ThreadId id_;
    CoreParams params_;
    TraceSource *trace_;
    std::vector<mem::MemoryController *> controllers_;
    mem::CoreCounters *counters_;

    std::deque<Entry> window_;
    int occupancy_ = 0;

    // Completion times for misses whose data has been scheduled.
    std::unordered_map<std::uint64_t, Cycle> done_;
    std::uint64_t nextMissId_ = 1;

    // Trace cursor: pendingGap_ plain instructions precede pendingAccess_.
    std::uint64_t pendingGap_ = 0;
    MemAccess pendingAccess_;
    bool havePending_ = false;
};

} // namespace tcm::core
