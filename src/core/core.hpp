/**
 * @file
 * Simplified out-of-order core model.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/trace.hpp"
#include "mem/controller.hpp"
#include "mem/sched_iface.hpp"

namespace tcm::core {

/** Core pipeline parameters (Table 3). */
struct CoreParams
{
    int windowSize = 128;      //!< instruction window entries
    int fetchWidth = 3;        //!< instructions fetched per cycle
    int retireWidth = 3;       //!< instructions retired per cycle
    int maxMemPerCycle = 1;    //!< memory operations issued per cycle
};

/**
 * Models one hardware thread the way memory-scheduling studies do: a
 * 128-entry window retiring 3 instructions per cycle in order, where
 * non-miss instructions always complete and L2-miss loads block
 * retirement until DRAM responds. Writebacks are posted: they consume a
 * fetch slot and write-buffer capacity but never stall retirement.
 *
 * This captures the two behaviours that matter to a memory scheduler:
 * memory-non-intensive threads progress at ~3 IPC and stall completely on
 * a rare miss (latency-sensitive), while memory-intensive threads keep
 * many misses in flight and their throughput tracks DRAM service rate
 * (bandwidth-sensitive).
 */
class Core
{
  public:
    /**
     * @param id this thread's id
     * @param params pipeline widths
     * @param trace the instruction stream to execute
     * @param controllers channel-indexed memory controllers
     * @param counters externally owned counter slot (simulator-owned so
     *        schedulers can read all cores' counters as one vector)
     */
    Core(ThreadId id, const CoreParams &params, TraceSource &trace,
         std::vector<mem::MemoryController *> controllers,
         mem::CoreCounters *counters);

    /** Advance one cycle: retire, then fetch/issue. */
    void tick(Cycle now);

    /** DRAM data for @p missId will be available at @p readyAt. */
    void completeMiss(std::uint64_t missId, Cycle readyAt);

    ThreadId id() const { return id_; }

    std::uint64_t instructionsRetired() const { return counters_->instructions; }
    std::uint64_t readMissesIssued() const { return counters_->readMisses; }

    /** Instructions currently occupying the window (tests). */
    int windowOccupancy() const { return occupancy_; }

  private:
    /** A window entry: either a bundle of plain instructions or a miss. */
    struct Entry
    {
        std::uint32_t plain; //!< >0: bundle size; ==0: miss entry
        std::uint64_t missId;
    };

    void retire(Cycle now);
    void fetch(Cycle now);

    ThreadId id_;
    CoreParams params_;
    TraceSource *trace_;
    std::vector<mem::MemoryController *> controllers_;
    mem::CoreCounters *counters_;

    std::deque<Entry> window_;
    int occupancy_ = 0;

    // Completion times for misses whose data has been scheduled.
    std::unordered_map<std::uint64_t, Cycle> done_;
    std::uint64_t nextMissId_ = 1;

    // Trace cursor: pendingGap_ plain instructions precede pendingAccess_.
    std::uint64_t pendingGap_ = 0;
    MemAccess pendingAccess_;
    bool havePending_ = false;
};

} // namespace tcm::core
