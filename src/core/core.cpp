#include "core/core.hpp"

#include <algorithm>
#include <cassert>

namespace tcm::core {

Core::Core(ThreadId id, const CoreParams &params, TraceSource &trace,
           std::vector<mem::MemoryController *> controllers,
           mem::CoreCounters *counters)
    : id_(id),
      params_(params),
      trace_(&trace),
      controllers_(std::move(controllers)),
      counters_(counters)
{
    assert(counters_ != nullptr);
}

void
Core::completeMiss(std::uint64_t missId, Cycle readyAt)
{
    done_[missId] = readyAt;
}

void
Core::retire(Cycle now)
{
    int slots = params_.retireWidth;
    while (slots > 0 && !window_.empty()) {
        Entry &head = window_.front();
        if (head.plain > 0) {
            std::uint32_t n = std::min<std::uint32_t>(slots, head.plain);
            head.plain -= n;
            occupancy_ -= static_cast<int>(n);
            counters_->instructions += n;
            slots -= static_cast<int>(n);
            if (head.plain == 0)
                window_.pop_front();
        } else {
            auto it = done_.find(head.missId);
            if (it == done_.end() || it->second > now)
                break; // head-of-window miss still outstanding
            done_.erase(it);
            window_.pop_front();
            occupancy_ -= 1;
            counters_->instructions += 1;
            slots -= 1;
        }
    }
}

void
Core::fetch(Cycle now)
{
    int slots = params_.fetchWidth;
    int memIssued = 0;
    while (slots > 0 && occupancy_ < params_.windowSize) {
        if (!havePending_) {
            TraceItem item = trace_->next();
            pendingGap_ = item.gap;
            pendingAccess_ = item.access;
            havePending_ = true;
        }
        if (pendingGap_ > 0) {
            std::uint32_t n = static_cast<std::uint32_t>(std::min<std::uint64_t>(
                {static_cast<std::uint64_t>(slots),
                 static_cast<std::uint64_t>(params_.windowSize - occupancy_),
                 pendingGap_}));
            if (!window_.empty() && window_.back().plain > 0)
                window_.back().plain += n;
            else
                window_.push_back(Entry{n, 0});
            occupancy_ += static_cast<int>(n);
            pendingGap_ -= n;
            slots -= static_cast<int>(n);
            continue;
        }

        // The pending memory access is at the fetch head.
        if (memIssued >= params_.maxMemPerCycle)
            break;
        mem::MemoryController *mc = controllers_[pendingAccess_.channel];
        if (pendingAccess_.isWrite) {
            if (!mc->canAcceptWrite())
                break; // write buffer full: structural stall
            mc->submitWrite(id_, pendingAccess_.bank, pendingAccess_.row,
                            pendingAccess_.col, now);
            // Writebacks are not instructions and do not enter the window.
            ++memIssued;
            slots -= 1;
            havePending_ = false;
        } else {
            if (!mc->canAcceptRead())
                break; // request buffer full: structural stall
            std::uint64_t missId = nextMissId_++;
            mc->submitRead(id_, missId, pendingAccess_.bank,
                           pendingAccess_.row, pendingAccess_.col, now);
            window_.push_back(Entry{0, missId});
            occupancy_ += 1;
            counters_->readMisses += 1;
            ++memIssued;
            slots -= 1;
            havePending_ = false;
        }
    }
}

void
Core::tick(Cycle now)
{
    retire(now);
    fetch(now);
}

bool
Core::wouldSubmitAt(Cycle now)
{
    // Fast negative: a submission requires fetch to reach the pending
    // access, which it cannot while enough plain instructions precede
    // it to exhaust every fetch slot.
    if (havePending_ &&
        pendingGap_ >= static_cast<std::uint64_t>(params_.fetchWidth))
        return false;

    // Fast negative: fully stalled window (head miss undone) admits no
    // fetch at all.
    if (occupancy_ >= params_.windowSize && !window_.empty() &&
        window_.front().plain == 0) {
        auto it = done_.find(window_.front().missId);
        if (it == done_.end() || it->second > now)
            return false;
    }

    // --- exact peek: retire (no mutation) ---
    int slots = params_.retireWidth;
    int freed = 0;
    std::size_t idx = 0;
    while (slots > 0 && idx < window_.size()) {
        const Entry &e = window_[idx];
        if (e.plain > 0) {
            std::uint32_t n = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(slots), e.plain);
            freed += static_cast<int>(n);
            slots -= static_cast<int>(n);
            if (n < e.plain)
                break;
            ++idx;
        } else {
            auto it = done_.find(e.missId);
            if (it == done_.end() || it->second > now)
                break;
            freed += 1;
            slots -= 1;
            ++idx;
        }
    }

    // --- exact peek: fetch (mutates only the trace-pull cache) ---
    int occ = occupancy_ - freed;
    slots = params_.fetchWidth;
    std::uint64_t gap = pendingGap_;
    bool have = havePending_;
    while (slots > 0 && occ < params_.windowSize) {
        if (!have) {
            // The real tick would pull this item now; caching it in the
            // pending slot preserves trace order exactly.
            TraceItem item = trace_->next();
            pendingGap_ = item.gap;
            pendingAccess_ = item.access;
            havePending_ = true;
            have = true;
            gap = pendingGap_;
        }
        if (gap > 0) {
            std::uint32_t n =
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    {static_cast<std::uint64_t>(slots),
                     static_cast<std::uint64_t>(params_.windowSize - occ),
                     gap}));
            occ += static_cast<int>(n);
            gap -= n;
            slots -= static_cast<int>(n);
            continue;
        }
        // The pending access is at the fetch head: the real tick
        // submits iff the mem-op budget and the target queue allow it.
        if (params_.maxMemPerCycle <= 0)
            return false;
        mem::MemoryController *mc = controllers_[pendingAccess_.channel];
        return pendingAccess_.isWrite ? mc->canAcceptWrite()
                                      : mc->canAcceptRead();
    }
    return false;
}

} // namespace tcm::core
