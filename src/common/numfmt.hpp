/**
 * @file
 * Locale-independent floating-point formatting (std::to_chars).
 *
 * Every serialized number in the repo — bench results JSON, telemetry
 * JSONL, golden files — must render identically on every platform and
 * under every LC_NUMERIC, or goldens stop being diffable. printf-family
 * formatting honors the process locale (a German locale prints "0,5"),
 * so all JSON emission routes through these helpers instead.
 */

#pragma once

#include <string>

namespace tcm {

/**
 * Shortest decimal form that round-trips to exactly @p v
 * (std::chars_format::general). "0.5" stays "0.5", 1/3 gets all the
 * digits it needs. Non-finite values render as "nan"/"inf"/"-inf";
 * JSON writers must map those to null before emission.
 */
std::string formatDouble(double v);

/** Fixed-precision decimal form (std::chars_format::fixed), the
 *  locale-independent equivalent of printf("%.*f"). */
std::string formatDouble(double v, int precision);

} // namespace tcm
