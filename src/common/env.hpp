/**
 * @file
 * Small helpers for reading experiment-scaling knobs from the environment.
 *
 * Benches use these so that a CI machine can run short experiments while a
 * beefier host can scale toward the paper's full 100M-cycle, 96-workload
 * setup by exporting TCMSIM_CYCLES / TCMSIM_WORKLOADS / TCMSIM_WARMUP.
 */

#pragma once

#include <cstdint>
#include <string>

namespace tcm {

/** Read an integer environment variable, with default when unset/bad. */
std::int64_t envInt(const std::string &name, std::int64_t def);

/** Read a double environment variable, with default when unset/bad. */
double envDouble(const std::string &name, double def);

} // namespace tcm
