/**
 * @file
 * Streaming mean/variance accumulator (Welford's algorithm).
 */

#pragma once

#include <cmath>
#include <cstdint>

namespace tcm {

/**
 * Accumulates samples and reports count, mean, (population) variance and
 * standard deviation without storing the samples.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x > max_ || n_ == 1)
            max_ = x;
        if (x < min_ || n_ == 1)
            min_ = x;
    }

    /** Number of samples added. */
    std::uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** Population variance (0 when fewer than 2 samples). */
    double
    variance() const
    {
        if (n_ < 2)
            return 0.0;
        return m2_ / static_cast<double>(n_);
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Largest sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Smallest sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double max_ = 0.0;
    double min_ = 0.0;
};

} // namespace tcm
