#include "common/env.hpp"

#include <cstdlib>

namespace tcm {

std::int64_t
envInt(const std::string &name, std::int64_t def)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return def;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v)
        return def;
    return static_cast<std::int64_t>(parsed);
}

double
envDouble(const std::string &name, double def)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return def;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v)
        return def;
    return parsed;
}

} // namespace tcm
