/**
 * @file
 * Minimal JSON value type and parser, for the structured results files
 * the benches and tools/claims exchange (src/sim/results.hpp).
 *
 * Scope: full JSON syntax on input (objects, arrays, strings with
 * escapes, numbers, bools, null); object members keep their document
 * order so round-trips are deterministic. Numbers are parsed with
 * std::from_chars, so parsing — like emission via common/numfmt — is
 * locale-independent.
 */

#pragma once

#include <string>
#include <utility>
#include <vector>

namespace tcm::json {

struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /** Members in document order (never reordered, duplicates kept). */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** First member named @p key, or nullptr (also when not an object). */
    const Value *find(const std::string &key) const;

    /** Member @p key as a number/string, or the default when absent or
     *  of the wrong kind. */
    double numberOr(const std::string &key, double def) const;
    std::string stringOr(const std::string &key,
                         const std::string &def) const;
};

/** Parse @p text (one JSON document, trailing whitespace allowed).
 *  Throws std::runtime_error with offset context on malformed input. */
Value parse(const std::string &text);

/** JSON string literal for @p s, quotes included. */
std::string quote(const std::string &s);

} // namespace tcm::json
