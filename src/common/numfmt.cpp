#include "common/numfmt.hpp"

#include <charconv>
#include <cmath>

namespace tcm {

namespace {

std::string
nonFinite(double v)
{
    if (std::isnan(v))
        return "nan";
    return v > 0 ? "inf" : "-inf";
}

} // namespace

std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return nonFinite(v);
    // Shortest round-trip form never needs more than 32 chars.
    char buf[40];
    auto [end, ec] =
        std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general);
    (void)ec; // cannot fail: the buffer covers every shortest form
    return std::string(buf, end);
}

std::string
formatDouble(double v, int precision)
{
    if (!std::isfinite(v))
        return nonFinite(v);
    if (precision < 0)
        precision = 0;
    // Fixed form of |v| < 1e300 with <= 64 fraction digits fits easily;
    // grow via string only in the (unused) huge-precision case.
    std::string out(static_cast<std::size_t>(precision) + 350, '\0');
    auto [end, ec] = std::to_chars(out.data(), out.data() + out.size(), v,
                                   std::chars_format::fixed, precision);
    (void)ec;
    out.resize(static_cast<std::size_t>(end - out.data()));
    return out;
}

} // namespace tcm
