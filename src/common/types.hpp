/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace tcm {

/** Simulation time, measured in CPU cycles (5 GHz => 0.2 ns per cycle). */
using Cycle = std::uint64_t;

/** Sentinel for "never" / "not yet scheduled". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Identifies a hardware thread / core. */
using ThreadId = std::int32_t;

/** Sentinel thread id for "no thread". */
inline constexpr ThreadId kNoThread = -1;

/** Identifies a memory channel (one controller per channel). */
using ChannelId = std::int32_t;

/** Identifies a bank within one channel. */
using BankId = std::int32_t;

/** DRAM row index within a bank. */
using RowId = std::int32_t;

/** Sentinel row id for "no row open". */
inline constexpr RowId kNoRow = -1;

/** DRAM column (cache-block granularity) within a row. */
using ColId = std::int32_t;

} // namespace tcm
