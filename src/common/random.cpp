#include "common/random.hpp"

#include <cmath>

namespace tcm {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    next();
    state_ += seed;
    next();
}

std::uint32_t
Pcg32::next()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t
Pcg32::nextBelow(std::uint32_t bound)
{
    if (bound <= 1)
        return 0;
    // Debiased modulo (Lemire-style rejection).
    std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
        std::uint32_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Pcg32::nextDouble()
{
    return next() * (1.0 / 4294967296.0);
}

bool
Pcg32::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Pcg32::nextGeometric(double mean)
{
    if (mean <= 0.0)
        return 0;
    double p = 1.0 / (mean + 1.0);
    double u = nextDouble();
    // Guard against log(0).
    if (u >= 1.0)
        u = 0.9999999999;
    double g = std::floor(std::log1p(-u) / std::log1p(-p));
    if (g < 0.0)
        g = 0.0;
    return static_cast<std::uint64_t>(g);
}

} // namespace tcm
