/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator flows through seeded Pcg32 streams so
 * that a given (configuration, seed) pair always reproduces the exact
 * same simulation. std::mt19937 is avoided because its initialization is
 * heavyweight and its distributions are not bit-reproducible across
 * standard library implementations.
 */

#pragma once

#include <cstdint>

namespace tcm {

/**
 * PCG32 generator (Melissa O'Neill's pcg32_random_r, Apache-2.0 reference
 * algorithm). Small state, excellent statistical quality, and fully
 * reproducible across platforms.
 */
class Pcg32
{
  public:
    /** Construct from a seed and an optional stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next();

    /** Uniform integer in [0, bound). Requires bound > 0. */
    std::uint32_t nextBelow(std::uint32_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /**
     * Geometric-ish gap sampler: returns an integer >= 0 with mean
     * approximately @p mean, using the inverse-CDF of the geometric
     * distribution. mean <= 0 returns 0.
     */
    std::uint64_t nextGeometric(double mean);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace tcm
