/**
 * @file
 * FNV-1a 64-bit string hashing.
 *
 * Used wherever the repo needs a stable content fingerprint that must
 * not change across platforms or runs — the alone-IPC store stamp and
 * the sweep daemon's manifest/checkpoint binding. Not a cryptographic
 * hash; it only needs to make accidental mismatches (edited manifest,
 * stale store) overwhelmingly detectable.
 */

#pragma once

#include <cstdint>
#include <string_view>

namespace tcm {

constexpr std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace tcm
