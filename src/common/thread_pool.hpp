/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel experiment sweeps.
 *
 * Every (workload, scheduler) simulation of an experiment is independent
 * and independently seeded, so the sweep layer can fan them out across
 * cores without perturbing any result — callers collect per-task outputs
 * by index and reduce them in deterministic order. The pool size comes
 * from the TCMSIM_JOBS environment knob (default: all hardware threads),
 * and jobs=1 bypasses the thread machinery entirely: tasks run inline on
 * the calling thread, which keeps single-threaded debugging, profiling
 * and sanitizer baselines trivial.
 */

#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace tcm {

class ThreadPool
{
  public:
    /**
     * Create a pool of @p jobs workers; @p jobs <= 0 means defaultJobs().
     * A pool of 1 spawns no threads at all — submit()/parallelFor() run
     * their tasks on the calling thread.
     */
    explicit ThreadPool(int jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count this pool was created with (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * Schedule @p fn and return a future for its result. With jobs=1 the
     * call runs @p fn inline before returning (the future is ready).
     */
    template <class F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return result;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /**
     * Run fn(0) .. fn(n-1) across the pool and block until all complete.
     * Tasks may finish in any order; if any throw, the exception of the
     * *lowest-index* failing task is rethrown (deterministic regardless
     * of scheduling), after every task has finished.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Pool size implied by the environment: TCMSIM_JOBS when set to a
     * positive integer, otherwise std::thread::hardware_concurrency()
     * (>= 1). Read at every call so tests can flip the knob at runtime.
     */
    static int defaultJobs();

  private:
    void workerLoop();

    int jobs_;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace tcm
