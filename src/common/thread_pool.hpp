/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel experiment sweeps.
 *
 * Every (workload, scheduler) simulation of an experiment is independent
 * and independently seeded, so the sweep layer can fan them out across
 * cores without perturbing any result — callers collect per-task outputs
 * by index and reduce them in deterministic order. The pool size comes
 * from the TCMSIM_JOBS environment knob (default: all hardware threads),
 * and jobs=1 bypasses the thread machinery entirely: tasks run inline on
 * the calling thread, which keeps single-threaded debugging, profiling
 * and sanitizer baselines trivial.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace tcm {

class ThreadPool
{
  public:
    /**
     * Create a pool of @p jobs workers; @p jobs <= 0 means defaultJobs().
     * A pool of 1 spawns no threads at all — submit()/parallelFor() run
     * their tasks on the calling thread.
     */
    explicit ThreadPool(int jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count this pool was created with (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * Schedule @p fn and return a future for its result. With jobs=1 the
     * call runs @p fn inline before returning (the future is ready).
     */
    template <class F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return result;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /**
     * Run fn(0) .. fn(n-1) across the pool and block until all complete.
     * Tasks may finish in any order; if any throw, the exception of the
     * *lowest-index* failing task is rethrown (deterministic regardless
     * of scheduling), after every task has finished.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Pool size implied by the environment: TCMSIM_JOBS when set to a
     * positive integer, otherwise std::thread::hardware_concurrency()
     * (>= 1). Read at every call so tests can flip the knob at runtime.
     */
    static int defaultJobs();

  private:
    void workerLoop();

    int jobs_;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * Persistent fork/join gang for fine-grained intra-run parallelism.
 *
 * ThreadPool's condvar handoff costs microseconds per dispatch — fine
 * for whole-simulation tasks, fatal when the unit of work is one
 * controller stepping a few hundred nanoseconds' worth of cycles. A
 * SpinGang keeps its workers alive across calls and synchronizes each
 * run() with two spin barriers (an epoch release to fork, an
 * arrival count to join), so the round-trip overhead is a few atomic
 * operations. Workers back off to yield() and finally park on a
 * condvar when idle long enough, so a gang owned by a simulator that
 * is currently in a serial phase does not burn CPU.
 *
 * run(n, fn) executes fn(0..n-1) across the gang (the calling thread
 * participates) and returns only after every index completed — tasks
 * submitted by one run() are never in flight during the next, which is
 * the barrier-ordering contract the deterministic replay relies on.
 * If tasks throw, the exception of the lowest failing index is
 * rethrown after the join (same rule as ThreadPool::parallelFor).
 * A gang of 1 spawns no threads; run() executes inline.
 */
class SpinGang
{
  public:
    /** @param lanes total execution lanes including the caller (>= 1). */
    explicit SpinGang(int lanes);
    ~SpinGang();

    SpinGang(const SpinGang &) = delete;
    SpinGang &operator=(const SpinGang &) = delete;

    int lanes() const { return lanes_; }

    /** Run fn(0)..fn(n-1) across the gang; blocks until all complete. */
    void run(std::size_t n, const std::function<void(std::size_t)> &fn);

    /**
     * Optional per-lane instrumentation: @p busyNs / @p tasks point at
     * lanes() slots (caller is lane 0, workers 1..lanes()-1). Each lane
     * adds task-execution nanoseconds and claimed-task counts to its own
     * slot only; a lane's writes are published to the run() caller by
     * the join's release/acquire edge, so the owner may read the slots
     * between runs without synchronization. Null (the default) disables
     * all timing — the hot claim loop then never touches the clock.
     */
    void
    setLaneProfile(std::uint64_t *busyNs, std::uint64_t *tasks)
    {
        laneBusyNs_ = busyNs;
        laneTasks_ = tasks;
    }

  private:
    void workerLoop(int lane);
    void drainTasks(int lane);

    int lanes_;
    // Busy-spin iterations before backing off to yield()/parking; 0 on
    // oversubscribed hosts (more lanes than hardware threads), where
    // spinning steals cycles from the lane doing the work.
    int spinLimit_ = 2048;
    std::vector<std::thread> workers_;

    // Sense-reversing barrier with full membership: every worker
    // participates in every epoch (late is fine, absent is not), so by
    // the time run() returns, no worker can still be inside the claim
    // loop — which is what makes republishing fn_/n_/next_ on the next
    // run() race-free.
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::size_t> next_{0};
    std::atomic<int> arrived_{0};
    std::size_t n_ = 0;
    const std::function<void(std::size_t)> *fn_ = nullptr;

    // Per-lane profile slots (see setLaneProfile); null when detached.
    std::uint64_t *laneBusyNs_ = nullptr;
    std::uint64_t *laneTasks_ = nullptr;

    // Lowest-index exception wins, decided after the join.
    std::mutex errorMutex_;
    std::size_t errorIndex_ = 0;
    std::exception_ptr error_;

    // Idle parking: workers that spun too long wait here until the next
    // epoch bump (or shutdown) notifies them. run() always waits for
    // every worker to arrive, so parking can never skip an epoch.
    std::mutex parkMutex_;
    std::condition_variable parkCv_;
    std::atomic<int> parked_{0};
    std::atomic<bool> stop_{false};
};

} // namespace tcm
