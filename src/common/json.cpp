#include "common/json.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace tcm::json {

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value document()
    {
        Value v = value();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("json: " + what + " at offset " +
                                 std::to_string(pos_));
    }

    void skipSpace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeWord(const char *word)
    {
        std::size_t n = 0;
        while (word[n])
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value value()
    {
        skipSpace();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': {
            Value v;
            v.kind = Value::Kind::String;
            v.string = string();
            return v;
          }
          case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            return boolean(true);
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            return boolean(false);
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            return Value{};
          default: return number();
        }
    }

    static Value boolean(bool b)
    {
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = b;
        return v;
    }

    Value object()
    {
        expect('{');
        Value v;
        v.kind = Value::Kind::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipSpace();
            std::string key = string();
            skipSpace();
            expect(':');
            v.object.emplace_back(std::move(key), value());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value array()
    {
        expect('[');
        Value v;
        v.kind = Value::Kind::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += unicodeEscape(); break;
              default: fail("bad escape");
            }
        }
    }

    /** \uXXXX as UTF-8 (surrogate pairs unsupported: our writers never
     *  emit them; lone surrogates decode to U+FFFD-style bytes). */
    std::string unicodeEscape()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9') code += static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') code += static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') code += static_cast<unsigned>(c - 'A' + 10);
            else fail("bad \\u escape");
        }
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    Value number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-')
                ++pos_;
            else
                break;
        }
        Value v;
        v.kind = Value::Kind::Number;
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        auto [end, ec] = std::from_chars(first, last, v.number);
        if (ec != std::errc{} || end != last) {
            pos_ = start;
            fail("bad number");
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

double
Value::numberOr(const std::string &key, double def) const
{
    const Value *v = find(key);
    return v && v->kind == Kind::Number ? v->number : def;
}

std::string
Value::stringOr(const std::string &key, const std::string &def) const
{
    const Value *v = find(key);
    return v && v->kind == Kind::String ? v->string : def;
}

Value
parse(const std::string &text)
{
    return Parser(text).document();
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace tcm::json
