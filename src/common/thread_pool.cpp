#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "common/env.hpp"

namespace tcm {

ThreadPool::ThreadPool(int jobs)
{
    jobs_ = jobs > 0 ? jobs : defaultJobs();
    if (jobs_ <= 1) {
        jobs_ = 1;
        return; // inline mode: no threads, no queue traffic
    }
    workers_.reserve(jobs_);
    for (int i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ set and queue drained
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // One exception slot per index so the rethrow below is by index, not
    // by completion order.
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::future<void>> done;
    done.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        done.push_back(submit([&fn, &errors, i] {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }));
    }
    for (auto &f : done)
        f.wait();
    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

SpinGang::SpinGang(int lanes)
{
    lanes_ = lanes > 0 ? lanes : 1;
    if (lanes_ == 1)
        return; // inline mode: run() executes on the caller
    // Busy-spinning only helps when every lane has its own hardware
    // thread; on an oversubscribed host a spinning lane burns the very
    // timeslice the working lane needs, so go straight to yield there.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && static_cast<unsigned>(lanes_) > hw)
        spinLimit_ = 0;
    workers_.reserve(lanes_ - 1);
    for (int i = 0; i < lanes_ - 1; ++i)
        workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

SpinGang::~SpinGang()
{
    stop_.store(true, std::memory_order_release);
    // Wake anything parked; spinners observe stop_ on their own.
    epoch_.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(parkMutex_);
    }
    parkCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
SpinGang::drainTasks(int lane)
{
    for (;;) {
        std::size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
        if (i >= n_)
            return;
        // Lane timing is opt-in: detached, the claim loop never reads
        // the clock. Each lane touches only its own slot; the join's
        // release/acquire edge publishes it to the run() caller.
        std::chrono::steady_clock::time_point t0;
        if (laneBusyNs_ != nullptr)
            t0 = std::chrono::steady_clock::now();
        try {
            (*fn_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!error_ || i < errorIndex_) {
                error_ = std::current_exception();
                errorIndex_ = i;
            }
        }
        if (laneBusyNs_ != nullptr) {
            auto dt = std::chrono::steady_clock::now() - t0;
            laneBusyNs_[lane] += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count());
            if (laneTasks_ != nullptr)
                ++laneTasks_[lane];
        }
    }
}

void
SpinGang::workerLoop(int lane)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Fork edge: spin briefly, then yield, then park. A parked
        // worker cannot skip an epoch — run() waits for its arrival.
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (stop_.load(std::memory_order_acquire))
                return;
            if (++spins < spinLimit_) {
                // busy spin
            } else if (spins < spinLimit_ + 2048) {
                std::this_thread::yield();
            } else {
                std::unique_lock<std::mutex> lock(parkMutex_);
                parked_.fetch_add(1, std::memory_order_relaxed);
                parkCv_.wait(lock, [this, seen] {
                    return stop_.load(std::memory_order_acquire) ||
                           epoch_.load(std::memory_order_acquire) != seen;
                });
                parked_.fetch_sub(1, std::memory_order_relaxed);
            }
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        ++seen;
        drainTasks(lane);
        arrived_.fetch_add(1, std::memory_order_release);
    }
}

void
SpinGang::run(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // The previous run() joined on every worker's arrival, so no worker
    // can be inside drainTasks here: republishing the job is race-free.
    error_ = nullptr;
    n_ = n;
    fn_ = &fn;
    arrived_.store(0, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    if (parked_.load(std::memory_order_relaxed) > 0) {
        { std::lock_guard<std::mutex> lock(parkMutex_); }
        parkCv_.notify_all();
    }
    drainTasks(0); // the caller is a lane too
    // Join edge: wait for every worker, not just every task, so the
    // next run() can safely reuse the job slots.
    const int want = static_cast<int>(workers_.size());
    int spins = 0;
    while (arrived_.load(std::memory_order_acquire) < want) {
        if (++spins >= spinLimit_) {
            std::this_thread::yield();
            spins = 0;
        }
    }
    if (error_)
        std::rethrow_exception(error_);
}

int
ThreadPool::defaultJobs()
{
    std::int64_t fromEnv = envInt("TCMSIM_JOBS", 0);
    if (fromEnv > 0)
        return static_cast<int>(std::min<std::int64_t>(fromEnv, 512));
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace tcm
