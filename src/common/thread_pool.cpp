#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/env.hpp"

namespace tcm {

ThreadPool::ThreadPool(int jobs)
{
    jobs_ = jobs > 0 ? jobs : defaultJobs();
    if (jobs_ <= 1) {
        jobs_ = 1;
        return; // inline mode: no threads, no queue traffic
    }
    workers_.reserve(jobs_);
    for (int i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ set and queue drained
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // One exception slot per index so the rethrow below is by index, not
    // by completion order.
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::future<void>> done;
    done.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        done.push_back(submit([&fn, &errors, i] {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }));
    }
    for (auto &f : done)
        f.wait();
    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

int
ThreadPool::defaultJobs()
{
    std::int64_t fromEnv = envInt("TCMSIM_JOBS", 0);
    if (fromEnv > 0)
        return static_cast<int>(std::min<std::int64_t>(fromEnv, 512));
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace tcm
