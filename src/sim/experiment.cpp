#include "sim/experiment.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "sim/simulator.hpp"

namespace tcm::sim {

ExperimentScale
ExperimentScale::fromEnv()
{
    ExperimentScale s;
    s.measure = static_cast<Cycle>(envInt("TCMSIM_CYCLES", 300'000));
    s.warmup = static_cast<Cycle>(envInt("TCMSIM_WARMUP", 50'000));
    s.workloadsPerCategory =
        static_cast<int>(envInt("TCMSIM_WORKLOADS", 8));
    return s;
}

namespace {

/**
 * The measurement phase of a sampled run: K windows of W cycles,
 * recording per-thread IPC per window. Window-chunked stepping is
 * bit-identical to one contiguous step of K*W cycles (the cycle-skip
 * horizon clamp contract; asserted by tests/test_sampling), so the
 * windows only add observation points, never perturb the simulation.
 * Returns the per-thread relative standard error of the window-mean
 * IPC (empty for K < 2).
 */
std::vector<double>
stepSampledWindows(Simulator &sim, const SamplingConfig &samp,
                   std::size_t numThreads)
{
    std::vector<std::uint64_t> prev(numThreads);
    for (std::size_t t = 0; t < numThreads; ++t)
        prev[t] = sim.counters()[t].instructions;

    std::vector<RunningStat> windowIpc(numThreads);
    for (int k = 0; k < samp.windows; ++k) {
        sim.step(samp.window);
        for (std::size_t t = 0; t < numThreads; ++t) {
            std::uint64_t insts = sim.counters()[t].instructions;
            windowIpc[t].add(static_cast<double>(insts - prev[t]) /
                             static_cast<double>(samp.window));
            prev[t] = insts;
        }
    }

    std::vector<double> rse;
    if (samp.windows >= 2) {
        rse.reserve(numThreads);
        for (std::size_t t = 0; t < numThreads; ++t) {
            double mean = windowIpc[t].mean();
            double sem = std::sqrt(windowIpc[t].variance() /
                                   static_cast<double>(samp.windows));
            rse.push_back(mean > 0.0 ? sem / mean : 0.0);
        }
    }
    return rse;
}

} // namespace

RunResult
runWorkload(const SystemConfig &config,
            const std::vector<workload::ThreadProfile> &mix,
            sched::SchedulerSpec spec, const ExperimentScale &scale,
            AloneIpcCache &cache, std::uint64_t seed)
{
    // Time constants always scale to the FULL run length: a sampled run
    // must be a slice of the full run's dynamics, not a compressed one.
    spec.scaleToRun(scale.measure);

    const telemetry::TelemetryConfig &tcfg = config.telemetry;
    const bool enableProbe = tcfg.enabled && tcfg.probeBehavior;
    Simulator sim(config, mix, spec, seed, enableProbe);

    std::shared_ptr<telemetry::TelemetrySink> sink;
    if (tcfg.enabled) {
        sink = std::make_shared<telemetry::TelemetrySink>(tcfg);
        telemetry::TelemetrySink::Meta meta;
        meta.seed = seed;
        sink->setMeta(std::move(meta)); // attachTelemetry fills the rest
        sim.attachTelemetry(sink.get());
    }

    // Self-profiling: the config wins; otherwise the TCMSIM_PROFILE
    // environment knob lets any bench or tool profile without new flags.
    const prof::ProfileConfig pcfg =
        config.profile.enabled ? config.profile : prof::ProfileConfig::fromEnv();
    std::unique_ptr<prof::Profiler> profiler;
    if (pcfg.enabled) {
        profiler = std::make_unique<prof::Profiler>();
        sim.attachProfiler(profiler.get());
    }

    RunResult result;
    if (scale.sampling.enabled) {
        sim.step(scale.sampling.warmup);
        sim.beginMeasurement();
        result.ipcRse = stepSampledWindows(sim, scale.sampling, mix.size());
    } else {
        sim.run(scale.warmup, scale.measure);
    }

    result.ipcShared.reserve(mix.size());
    result.ipcAlone.reserve(mix.size());
    for (ThreadId t = 0; t < static_cast<ThreadId>(mix.size()); ++t) {
        result.ipcShared.push_back(sim.measuredIpc(t));
        result.ipcAlone.push_back(cache.aloneIpc(mix[t]));
    }
    result.metrics =
        metrics::computeMetrics(result.ipcAlone, result.ipcShared);
    if (dram::ProtocolChecker *checker = sim.protocolChecker()) {
        checker->finalize(sim.now());
        result.protocolViolations = checker->violationCount();
        result.protocolReport = checker->report();
    }
    if (sink) {
        if (!tcfg.dir.empty()) {
            // Deterministic name: parallel sweeps write the same file
            // set at any thread count.
            prof::ScopedPhase serialize(profiler ? &profiler->main()
                                                 : nullptr,
                                        prof::Phase::Serialize);
            std::string base = tcfg.dir + "/" + tcfg.filePrefix +
                               spec.name() + "_seed" +
                               std::to_string(seed);
            sink->writeJsonl(base + ".jsonl");
            sink->writeChromeTrace(base + ".trace.json");
        }
        result.telemetry = std::move(sink);
    }
    if (profiler) {
        auto report =
            std::make_shared<prof::ProfileReport>(profiler->report());
        if (!pcfg.dir.empty()) {
            // Same deterministic naming scheme as the telemetry files.
            // The directory may come straight from TCMSIM_PROFILE, so
            // create it here rather than demanding every caller does.
            std::error_code ec;
            std::filesystem::create_directories(pcfg.dir, ec);
            std::string path = pcfg.dir + "/" + pcfg.filePrefix +
                               spec.name() + "_seed" +
                               std::to_string(seed) + ".profile.json";
            std::FILE *f = std::fopen(path.c_str(), "w");
            if (!f)
                throw std::runtime_error("profile: cannot write " + path);
            const std::string json = report->toJson();
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
        }
        result.profile = std::move(report);
    }
    return result;
}

std::vector<std::vector<RunResult>>
runMatrix(const SystemConfig &config,
          const std::vector<std::vector<workload::ThreadProfile>> &workloads,
          const std::vector<sched::SchedulerSpec> &specs,
          const ExperimentScale &scale, AloneIpcCache &cache,
          std::uint64_t baseSeed, int jobs)
{
    ThreadPool pool(jobs);

    // Fill the alone-IPC denominators first so the sweep tasks below hit
    // a read-only cache (and the alone runs themselves parallelize
    // instead of serializing behind per-key latches mid-sweep).
    cache.prewarm(workloads, pool);

    std::vector<std::vector<RunResult>> results(specs.size());
    for (auto &row : results)
        row.resize(workloads.size());

    // One flat task per (scheduler, workload) cell; each writes only its
    // own slot, so no result synchronization is needed.
    const std::size_t cells = specs.size() * workloads.size();
    pool.parallelFor(cells, [&](std::size_t i) {
        const std::size_t s = i / workloads.size();
        const std::size_t w = i % workloads.size();
        results[s][w] = runWorkload(config, workloads[w], specs[s], scale,
                                    cache, baseSeed + w);
    });
    return results;
}

std::vector<AggregateResult>
evaluateMatrix(const SystemConfig &config,
               const std::vector<std::vector<workload::ThreadProfile>> &workloads,
               const std::vector<sched::SchedulerSpec> &specs,
               const ExperimentScale &scale, AloneIpcCache &cache,
               std::uint64_t baseSeed, int jobs)
{
    auto runs = runMatrix(config, workloads, specs, scale, cache, baseSeed,
                          jobs);

    std::vector<AggregateResult> aggregates(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
        aggregates[s].scheduler = specs[s].name();
        // Fold in workload order: Welford accumulation is order-
        // sensitive, and this order is what the serial driver used.
        for (const RunResult &r : runs[s]) {
            aggregates[s].weightedSpeedup.add(r.metrics.weightedSpeedup);
            aggregates[s].maxSlowdown.add(r.metrics.maxSlowdown);
            aggregates[s].harmonicSpeedup.add(r.metrics.harmonicSpeedup);
            if (r.profile)
                aggregates[s].profile.merge(*r.profile);
        }
    }
    return aggregates;
}

AggregateResult
evaluateSet(const SystemConfig &config,
            const std::vector<std::vector<workload::ThreadProfile>> &workloads,
            const sched::SchedulerSpec &spec, const ExperimentScale &scale,
            AloneIpcCache &cache, std::uint64_t baseSeed, int jobs)
{
    return evaluateMatrix(config, workloads, {spec}, scale, cache, baseSeed,
                          jobs)
        .front();
}

std::vector<sched::SchedulerSpec>
paperSchedulers()
{
    return {
        sched::SchedulerSpec::frfcfs(),
        sched::SchedulerSpec::stfmSpec(),
        sched::SchedulerSpec::parbsSpec(),
        sched::SchedulerSpec::atlasSpec(),
        sched::SchedulerSpec::tcmSpec(),
    };
}

std::vector<sched::SchedulerSpec>
priorSchedulers()
{
    return {
        sched::SchedulerSpec::frfcfs(),
        sched::SchedulerSpec::stfmSpec(),
        sched::SchedulerSpec::parbsSpec(),
        sched::SchedulerSpec::atlasSpec(),
    };
}

} // namespace tcm::sim
