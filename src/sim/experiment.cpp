#include "sim/experiment.hpp"

#include "common/env.hpp"
#include "sim/simulator.hpp"

namespace tcm::sim {

ExperimentScale
ExperimentScale::fromEnv()
{
    ExperimentScale s;
    s.measure = static_cast<Cycle>(envInt("TCMSIM_CYCLES", 300'000));
    s.warmup = static_cast<Cycle>(envInt("TCMSIM_WARMUP", 50'000));
    s.workloadsPerCategory =
        static_cast<int>(envInt("TCMSIM_WORKLOADS", 8));
    return s;
}

RunResult
runWorkload(const SystemConfig &config,
            const std::vector<workload::ThreadProfile> &mix,
            sched::SchedulerSpec spec, const ExperimentScale &scale,
            AloneIpcCache &cache, std::uint64_t seed)
{
    spec.scaleToRun(scale.measure);

    Simulator sim(config, mix, spec, seed);
    sim.run(scale.warmup, scale.measure);

    RunResult result;
    result.ipcShared.reserve(mix.size());
    result.ipcAlone.reserve(mix.size());
    for (ThreadId t = 0; t < static_cast<ThreadId>(mix.size()); ++t) {
        result.ipcShared.push_back(sim.measuredIpc(t));
        result.ipcAlone.push_back(cache.aloneIpc(mix[t]));
    }
    result.metrics =
        metrics::computeMetrics(result.ipcAlone, result.ipcShared);
    return result;
}

AggregateResult
evaluateSet(const SystemConfig &config,
            const std::vector<std::vector<workload::ThreadProfile>> &workloads,
            const sched::SchedulerSpec &spec, const ExperimentScale &scale,
            AloneIpcCache &cache, std::uint64_t baseSeed)
{
    AggregateResult agg;
    agg.scheduler = spec.name();
    std::uint64_t seed = baseSeed;
    for (const auto &mix : workloads) {
        RunResult r = runWorkload(config, mix, spec, scale, cache, seed++);
        agg.weightedSpeedup.add(r.metrics.weightedSpeedup);
        agg.maxSlowdown.add(r.metrics.maxSlowdown);
        agg.harmonicSpeedup.add(r.metrics.harmonicSpeedup);
    }
    return agg;
}

std::vector<sched::SchedulerSpec>
paperSchedulers()
{
    return {
        sched::SchedulerSpec::frfcfs(),
        sched::SchedulerSpec::stfmSpec(),
        sched::SchedulerSpec::parbsSpec(),
        sched::SchedulerSpec::atlasSpec(),
        sched::SchedulerSpec::tcmSpec(),
    };
}

std::vector<sched::SchedulerSpec>
priorSchedulers()
{
    return {
        sched::SchedulerSpec::frfcfs(),
        sched::SchedulerSpec::stfmSpec(),
        sched::SchedulerSpec::parbsSpec(),
        sched::SchedulerSpec::atlasSpec(),
    };
}

} // namespace tcm::sim
