/**
 * @file
 * Experiment drivers: run workloads under schedulers, produce metrics.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/running_stat.hpp"
#include "metrics/metrics.hpp"
#include "sched/factory.hpp"
#include "sim/alone_cache.hpp"
#include "sim/system_config.hpp"
#include "workload/profile.hpp"

namespace tcm::sim {

/** Run-length knobs, shared by all benches; overridable via environment:
 *  TCMSIM_CYCLES (measured cycles), TCMSIM_WARMUP, TCMSIM_WORKLOADS
 *  (workloads per intensity category). */
struct ExperimentScale
{
    Cycle warmup = 50'000;
    Cycle measure = 300'000;
    int workloadsPerCategory = 8;

    /** Defaults above, overridden from the environment. */
    static ExperimentScale fromEnv();
};

/** Result of one (workload, scheduler) simulation. */
struct RunResult
{
    std::vector<double> ipcShared;
    std::vector<double> ipcAlone;
    metrics::WorkloadMetrics metrics;
};

/**
 * Simulate @p mix under @p spec (time-scaled to the run length) and
 * compute the paper's metrics against memoized alone IPCs.
 */
RunResult runWorkload(const SystemConfig &config,
                      const std::vector<workload::ThreadProfile> &mix,
                      sched::SchedulerSpec spec, const ExperimentScale &scale,
                      AloneIpcCache &cache, std::uint64_t seed);

/** Aggregate metrics of one scheduler over a set of workloads. */
struct AggregateResult
{
    std::string scheduler;
    RunningStat weightedSpeedup;
    RunningStat maxSlowdown;
    RunningStat harmonicSpeedup;
};

/** Evaluate @p spec on every workload in @p workloads. */
AggregateResult
evaluateSet(const SystemConfig &config,
            const std::vector<std::vector<workload::ThreadProfile>> &workloads,
            const sched::SchedulerSpec &spec, const ExperimentScale &scale,
            AloneIpcCache &cache, std::uint64_t baseSeed);

/** The five schedulers of the paper's headline comparison (Figure 4). */
std::vector<sched::SchedulerSpec> paperSchedulers();

/** The four prior schedulers of the motivation plot (Figure 1). */
std::vector<sched::SchedulerSpec> priorSchedulers();

} // namespace tcm::sim
