/**
 * @file
 * Experiment drivers: run workloads under schedulers, produce metrics.
 *
 * Every (workload, scheduler) simulation is independent and
 * independently seeded, so the drivers fan the grid out across a
 * ThreadPool (TCMSIM_JOBS knob; jobs=1 runs inline). Results are
 * collected by index and reduced in workload order, so aggregate
 * metrics are bit-identical to a serial run at any thread count.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/running_stat.hpp"
#include "metrics/metrics.hpp"
#include "prof/profiler.hpp"
#include "sched/factory.hpp"
#include "sim/alone_cache.hpp"
#include "sim/sampling.hpp"
#include "sim/system_config.hpp"
#include "telemetry/sink.hpp"
#include "workload/profile.hpp"

namespace tcm::sim {

/** Run-length knobs, shared by all benches; overridable via environment:
 *  TCMSIM_CYCLES (measured cycles), TCMSIM_WARMUP, TCMSIM_WORKLOADS
 *  (workloads per intensity category). */
struct ExperimentScale
{
    Cycle warmup = 50'000;
    Cycle measure = 300'000;
    int workloadsPerCategory = 8;

    /**
     * Interval sampling (sim/sampling.hpp). When enabled, runs execute
     * sampling.warmup + K sampled windows instead of warmup + measure;
     * `warmup`/`measure` keep describing the FULL run the sampled one
     * estimates — scheduler time constants still scale to `measure`,
     * and results documents still record the full scale.
     */
    SamplingConfig sampling;

    /** Cycles actually simulated before measurement begins. */
    Cycle effectiveWarmup() const
    {
        return sampling.enabled ? sampling.warmup : warmup;
    }

    /** Cycles actually measured (K*W when sampling, else measure). */
    Cycle effectiveMeasure() const
    {
        return sampling.enabled ? sampling.totalMeasure() : measure;
    }

    /** Defaults above, overridden from the environment. */
    static ExperimentScale fromEnv();
};

/** Result of one (workload, scheduler) simulation. */
struct RunResult
{
    std::vector<double> ipcShared;
    std::vector<double> ipcAlone;
    metrics::WorkloadMetrics metrics;

    /**
     * DDR2 protocol-audit verdict, populated only when the run's
     * SystemConfig had protocolCheck set: total violation count and the
     * checker's human-readable report (empty when clean).
     */
    std::uint64_t protocolViolations = 0;
    std::string protocolReport;

    /**
     * The run's telemetry sink, populated only when the run's
     * SystemConfig had telemetry.enabled set. Shared so RunResult stays
     * cheaply copyable; each run owns a distinct sink (the parallel
     * runner never shares one across tasks).
     */
    std::shared_ptr<telemetry::TelemetrySink> telemetry;

    /**
     * The run's self-profile, populated when SystemConfig::profile (or
     * the TCMSIM_PROFILE fallback) enabled profiling. Excluded from
     * every results comparison — simulation outputs are bit-identical
     * with or without it (tests/test_prof).
     */
    std::shared_ptr<prof::ProfileReport> profile;

    /**
     * Per-thread relative standard error of the mean IPC across the K
     * measurement windows of a sampled run (empty when the run was not
     * sampled, or K < 2). The run's self-assessed representativeness:
     * a thread whose window IPCs vary wildly is poorly estimated by
     * this sample length. Diagnostic only — never feeds a metric.
     */
    std::vector<double> ipcRse;
};

/**
 * Simulate @p mix under @p spec (time-scaled to the run length) and
 * compute the paper's metrics against memoized alone IPCs.
 */
RunResult runWorkload(const SystemConfig &config,
                      const std::vector<workload::ThreadProfile> &mix,
                      sched::SchedulerSpec spec, const ExperimentScale &scale,
                      AloneIpcCache &cache, std::uint64_t seed);

/** Aggregate metrics of one scheduler over a set of workloads. */
struct AggregateResult
{
    std::string scheduler;
    RunningStat weightedSpeedup;
    RunningStat maxSlowdown;
    RunningStat harmonicSpeedup;

    /** Merged self-profile across the scheduler's runs (enabled only
     *  when the runs were profiled); never feeds any metric above. */
    prof::ProfileReport profile;
};

/**
 * Run every (scheduler, workload) pair of the grid as one flat parallel
 * task list and return the per-run results as result[scheduler][workload].
 * Workload @p w of every scheduler uses seed baseSeed + w (the serial
 * evaluateSet seeding), so the grid equals per-scheduler serial runs.
 * The alone-IPC cache is prewarmed across the pool first.
 *
 * @param jobs pool size; <= 0 means ThreadPool::defaultJobs()
 *        (TCMSIM_JOBS, else all hardware threads); 1 runs serially
 *        on the calling thread.
 */
std::vector<std::vector<RunResult>>
runMatrix(const SystemConfig &config,
          const std::vector<std::vector<workload::ThreadProfile>> &workloads,
          const std::vector<sched::SchedulerSpec> &specs,
          const ExperimentScale &scale, AloneIpcCache &cache,
          std::uint64_t baseSeed, int jobs = 0);

/**
 * runMatrix reduced to one AggregateResult per scheduler (in @p specs
 * order). Per-workload metrics are folded into the RunningStats in
 * workload order regardless of task completion order, so the aggregates
 * are bit-identical across thread counts.
 */
std::vector<AggregateResult>
evaluateMatrix(const SystemConfig &config,
               const std::vector<std::vector<workload::ThreadProfile>> &workloads,
               const std::vector<sched::SchedulerSpec> &specs,
               const ExperimentScale &scale, AloneIpcCache &cache,
               std::uint64_t baseSeed, int jobs = 0);

/** Evaluate @p spec on every workload in @p workloads (a one-scheduler
 *  evaluateMatrix: same parallelism, same determinism guarantee). */
AggregateResult
evaluateSet(const SystemConfig &config,
            const std::vector<std::vector<workload::ThreadProfile>> &workloads,
            const sched::SchedulerSpec &spec, const ExperimentScale &scale,
            AloneIpcCache &cache, std::uint64_t baseSeed, int jobs = 0);

/** The five schedulers of the paper's headline comparison (Figure 4). */
std::vector<sched::SchedulerSpec> paperSchedulers();

/** The four prior schedulers of the motivation plot (Figure 1). */
std::vector<sched::SchedulerSpec> priorSchedulers();

} // namespace tcm::sim
