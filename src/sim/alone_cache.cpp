#include "sim/alone_cache.hpp"

#include <set>

#include "sim/simulator.hpp"

namespace tcm::sim {

AloneIpcCache::AloneIpcCache(const SystemConfig &config, Cycle warmup,
                             Cycle measure)
    : config_(config), warmup_(warmup), measure_(measure)
{
}

AloneIpcCache::Entry &
AloneIpcCache::entryFor(const Key &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_[key];
}

double
AloneIpcCache::computeAloneIpc(const workload::ThreadProfile &profile) const
{
    workload::ThreadProfile alone = profile;
    alone.weight = 1; // weights are meaningless without competitors
    Simulator sim(config_, {alone}, sched::SchedulerSpec::frfcfs(),
                  /*seed=*/42);
    sim.run(warmup_, measure_);
    return sim.measuredIpc(0);
}

double
AloneIpcCache::aloneIpc(const workload::ThreadProfile &profile)
{
    Entry &entry = entryFor(profile.aloneBehaviorKey());
    // Per-entry latch: the first caller simulates (outside the map lock,
    // so other keys proceed in parallel); concurrent callers of the same
    // key block here until the value is ready.
    std::call_once(entry.once,
                   [&] { entry.ipc = computeAloneIpc(profile); });
    return entry.ipc;
}

void
AloneIpcCache::prewarm(
    const std::vector<std::vector<workload::ThreadProfile>> &workloads,
    ThreadPool &pool)
{
    std::vector<const workload::ThreadProfile *> distinct;
    std::set<Key> seen;
    for (const auto &mix : workloads)
        for (const auto &profile : mix)
            if (seen.insert(profile.aloneBehaviorKey()).second)
                distinct.push_back(&profile);

    pool.parallelFor(distinct.size(),
                     [&](std::size_t i) { aloneIpc(*distinct[i]); });
}

std::size_t
AloneIpcCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

} // namespace tcm::sim
