#include "sim/alone_cache.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/hash.hpp"
#include "common/numfmt.hpp"
#include "sim/simulator.hpp"

namespace tcm::sim {

namespace {

/** Store format version; bump on any layout change. */
constexpr int kStoreVersion = 1;
constexpr const char *kStoreMagic = "tcmsim-alone-cache";

void
appendField(std::string &out, const char *name, double v)
{
    out += name;
    out += '=';
    out += formatDouble(v);
    out += ';';
}

void
appendField(std::string &out, const char *name, long long v)
{
    out += name;
    out += '=';
    out += std::to_string(v);
    out += ';';
}

void
appendField(std::string &out, const char *name, int v)
{
    appendField(out, name, static_cast<long long>(v));
}

/** Locale-independent exact double parse; false on junk/trailing text. */
bool
parseDouble(const std::string &s, double *out)
{
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && ptr == last;
}

/** Split @p line on single spaces (store fields never contain spaces). */
std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= line.size()) {
        std::size_t sp = line.find(' ', start);
        if (sp == std::string::npos) {
            out.push_back(line.substr(start));
            break;
        }
        out.push_back(line.substr(start, sp - start));
        start = sp + 1;
    }
    return out;
}

} // namespace

AloneIpcCache::AloneIpcCache(const SystemConfig &config, Cycle warmup,
                             Cycle measure)
    : config_(config), warmup_(warmup), measure_(measure)
{
}

AloneIpcCache::Entry &
AloneIpcCache::entryFor(const Key &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_[key];
}

double
AloneIpcCache::computeAloneIpc(const workload::ThreadProfile &profile) const
{
    workload::ThreadProfile alone = profile;
    alone.weight = 1; // weights are meaningless without competitors
    Simulator sim(config_, {alone}, sched::SchedulerSpec::frfcfs(),
                  /*seed=*/42);
    sim.run(warmup_, measure_);
    return sim.measuredIpc(0);
}

double
AloneIpcCache::aloneIpc(const workload::ThreadProfile &profile)
{
    lookups_.fetch_add(1, std::memory_order_relaxed);
    Entry &entry = entryFor(profile.aloneBehaviorKey());
    // Per-entry latch: the first caller simulates (outside the map lock,
    // so other keys proceed in parallel); concurrent callers of the same
    // key block here until the value is ready.
    std::call_once(entry.once, [&] {
        misses_.fetch_add(1, std::memory_order_relaxed);
        entry.ipc = computeAloneIpc(profile);
    });
    return entry.ipc;
}

void
AloneIpcCache::prewarm(
    const std::vector<std::vector<workload::ThreadProfile>> &workloads,
    ThreadPool &pool)
{
    std::vector<const workload::ThreadProfile *> distinct;
    std::set<Key> seen;
    for (const auto &mix : workloads)
        for (const auto &profile : mix)
            if (seen.insert(profile.aloneBehaviorKey()).second)
                distinct.push_back(&profile);

    pool.parallelFor(distinct.size(),
                     [&](std::size_t i) { aloneIpc(*distinct[i]); });
}

std::size_t
AloneIpcCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

std::uint64_t
AloneIpcCache::fingerprint(const SystemConfig &c, Cycle warmup,
                           Cycle measure)
{
    // Canonical name=value description of every behaviour-affecting
    // field. Adding a behaviour-affecting field to SystemConfig (or its
    // sub-params) without listing it here would let a stale store alias
    // a changed configuration — the same audit obligation as
    // ThreadProfile::aloneBehaviorKey, enforced the same way (see
    // tests/test_alone_store.cpp FingerprintCoversConfigKnobs).
    std::string d;
    d.reserve(512);
    appendField(d, "horizon.warmup", static_cast<long long>(warmup));
    appendField(d, "horizon.measure", static_cast<long long>(measure));
    appendField(d, "cores", c.numCores);
    appendField(d, "channels", c.numChannels);
    appendField(d, "mpkiScale", c.mpkiScale);

    const dram::TimingParams &t = c.timing;
    d += "protocol=" + t.protocol + ";";
    appendField(d, "generation", static_cast<long long>(t.generation));
    appendField(d, "cyclesPerNs", t.cyclesPerNs);
    appendField(d, "tCK", static_cast<long long>(t.tCK));
    appendField(d, "tCL", static_cast<long long>(t.tCL));
    appendField(d, "tCWL", static_cast<long long>(t.tCWL));
    appendField(d, "tRCD", static_cast<long long>(t.tRCD));
    appendField(d, "tRP", static_cast<long long>(t.tRP));
    appendField(d, "tRAS", static_cast<long long>(t.tRAS));
    appendField(d, "tRC", static_cast<long long>(t.tRC));
    appendField(d, "tBURST", static_cast<long long>(t.tBURST));
    appendField(d, "tCCD_S", static_cast<long long>(t.tCCD_S));
    appendField(d, "tCCD_L", static_cast<long long>(t.tCCD_L));
    appendField(d, "tRRD_S", static_cast<long long>(t.tRRD_S));
    appendField(d, "tRRD_L", static_cast<long long>(t.tRRD_L));
    appendField(d, "tWR", static_cast<long long>(t.tWR));
    appendField(d, "tWTR", static_cast<long long>(t.tWTR));
    appendField(d, "tRTP", static_cast<long long>(t.tRTP));
    appendField(d, "tFAW", static_cast<long long>(t.tFAW));
    appendField(d, "tRTRS", static_cast<long long>(t.tRTRS));
    appendField(d, "tREFI", static_cast<long long>(t.tREFI));
    appendField(d, "tRFC", static_cast<long long>(t.tRFC));
    appendField(d, "tXP", static_cast<long long>(t.tXP));
    appendField(d, "tCKE", static_cast<long long>(t.tCKE));
    appendField(d, "cpuToMc", static_cast<long long>(t.cpuToMcDelay));
    appendField(d, "mcToCpu", static_cast<long long>(t.mcToCpuDelay));
    appendField(d, "banks", t.banksPerChannel);
    appendField(d, "ranks", t.ranksPerChannel);
    appendField(d, "groups", t.bankGroupsPerRank);
    appendField(d, "rows", t.rowsPerBank);
    appendField(d, "cols", t.colsPerRow);
    appendField(d, "refresh", t.refreshEnabled ? 1 : 0);

    const core::CoreParams &k = c.core;
    appendField(d, "window", k.windowSize);
    appendField(d, "fetch", k.fetchWidth);
    appendField(d, "retire", k.retireWidth);
    appendField(d, "memPerCycle", k.maxMemPerCycle);

    const mem::ControllerParams &m = c.controller;
    appendField(d, "pagePolicy", static_cast<long long>(m.pagePolicy));
    appendField(d, "readCap", m.readQueueCap);
    appendField(d, "writeCap", m.writeQueueCap);
    appendField(d, "drainMode", static_cast<long long>(m.writeDrain.mode));
    appendField(d, "drainHi", m.writeDrain.highWatermark);
    appendField(d, "drainLo", m.writeDrain.lowWatermark);
    appendField(d, "specPre", m.speculativePrecharge ? 1 : 0);
    appendField(d, "pdIdle", static_cast<long long>(m.powerDownIdleCycles));

    return fnv1a64(d);
}

std::uint64_t
AloneIpcCache::fingerprint() const
{
    return fingerprint(config_, warmup_, measure_);
}

AloneIpcCache::LoadResult
AloneIpcCache::loadFromFile(const std::string &path)
{
    LoadResult res;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        res.message = "cannot open " + path;
        return res;
    }

    std::string line;
    if (!std::getline(in, line) ||
        line != std::string(kStoreMagic) + " v" +
                    std::to_string(kStoreVersion)) {
        res.message = "unrecognized store header in " + path;
        return res;
    }
    if (!std::getline(in, line)) {
        res.message = "truncated store (no fingerprint) in " + path;
        return res;
    }
    {
        auto fields = splitFields(line);
        unsigned long long fp = 0;
        if (fields.size() != 2 || fields[0] != "fingerprint" ||
            !([&] {
                auto [p, ec] = std::from_chars(
                    fields[1].data(), fields[1].data() + fields[1].size(),
                    fp, 16);
                return ec == std::errc() &&
                       p == fields[1].data() + fields[1].size();
            }())) {
            res.message = "malformed fingerprint line in " + path;
            return res;
        }
        if (fp != fingerprint()) {
            res.message = "fingerprint mismatch in " + path +
                          " (store was built for a different "
                          "configuration or run horizon)";
            return res;
        }
    }

    // Parse the whole body before adopting anything: a corrupt line
    // must not leave a half-loaded cache behind.
    std::vector<std::pair<Key, double>> entries;
    bool sawEnd = false;
    while (std::getline(in, line)) {
        auto fields = splitFields(line);
        if (!fields.empty() && fields[0] == "end") {
            if (fields.size() != 2 ||
                fields[1] != std::to_string(entries.size())) {
                res.message = "entry-count trailer mismatch in " + path;
                return res;
            }
            sawEnd = true;
            break;
        }
        double mpki, rbl, blp, wf, ipc;
        if (fields.size() != 6 || fields[0] != "entry" ||
            !parseDouble(fields[1], &mpki) ||
            !parseDouble(fields[2], &rbl) ||
            !parseDouble(fields[3], &blp) ||
            !parseDouble(fields[4], &wf) ||
            !parseDouble(fields[5], &ipc)) {
            res.message = "corrupt entry line in " + path;
            return res;
        }
        entries.emplace_back(Key{mpki, rbl, blp, wf}, ipc);
    }
    if (!sawEnd) {
        res.message = "truncated store (no end trailer) in " + path;
        return res;
    }

    for (const auto &[key, ipc] : entries) {
        Entry &entry = entryFor(key);
        // Fire the latch with the stored value; an entry computed in
        // this process already holds its latch and wins.
        std::call_once(entry.once, [&] { entry.ipc = ipc; });
    }
    res.ok = true;
    res.loaded = entries.size();
    return res;
}

void
AloneIpcCache::saveToFile(const std::string &path) const
{
    std::string body;
    std::size_t count = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[key, entry] : cache_) {
            body += "entry " + formatDouble(std::get<0>(key)) + " " +
                    formatDouble(std::get<1>(key)) + " " +
                    formatDouble(std::get<2>(key)) + " " +
                    formatDouble(std::get<3>(key)) + " " +
                    formatDouble(entry.ipc) + "\n";
            ++count;
        }
    }

    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(fingerprint()));
    std::string text = std::string(kStoreMagic) + " v" +
                       std::to_string(kStoreVersion) + "\n" +
                       "fingerprint " + fp + "\n" + body + "end " +
                       std::to_string(count) + "\n";

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        throw std::runtime_error("alone-cache: cannot write " + tmp);
    std::fwrite(text.data(), 1, text.size(), f);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad || std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("alone-cache: write failed for " + path);
}

} // namespace tcm::sim
