#include "sim/alone_cache.hpp"

#include "sim/simulator.hpp"

namespace tcm::sim {

AloneIpcCache::AloneIpcCache(const SystemConfig &config, Cycle warmup,
                             Cycle measure)
    : config_(config), warmup_(warmup), measure_(measure)
{
}

double
AloneIpcCache::aloneIpc(const workload::ThreadProfile &profile)
{
    Key key{profile.mpki, profile.rbl, profile.blp, profile.writeFraction};
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    workload::ThreadProfile alone = profile;
    alone.weight = 1; // weights are meaningless without competitors
    Simulator sim(config_, {alone}, sched::SchedulerSpec::frfcfs(),
                  /*seed=*/42);
    sim.run(warmup_, measure_);
    double ipc = sim.measuredIpc(0);
    cache_.emplace(key, ipc);
    return ipc;
}

} // namespace tcm::sim
