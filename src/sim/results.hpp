/**
 * @file
 * Structured bench results: the self-describing JSON document every
 * reproduction bench (and tools/claims) emits, so the paper's numbers
 * are machine-checkable instead of eyeballable free text.
 *
 * A document is a flat table: rows keyed by (series, point) — series is
 * "which line of the figure" (a scheduler, a benchmark clone, a config
 * label), point the position along it ("" for single-point rows, "i25"
 * for Figure 7's 25%-intensity column) — each carrying an ordered list
 * of named scalar metrics. Serialization is schema-versioned, keys are
 * emitted in insertion order, and all numbers go through
 * common/numfmt's shortest round-trip form, so two runs that computed
 * the same doubles produce byte-identical files on any platform.
 */

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hpp"

namespace tcm::sim::results {

/** Bump when the document layout changes shape (not when benches add
 *  metrics: readers must tolerate new rows/keys). */
inline constexpr int kSchemaVersion = 1;

/** One (series, point) row: ordered metric name/value pairs. */
struct Row
{
    std::string series;
    std::string point;
    std::vector<std::pair<std::string, double>> metrics;

    /** Overwrite @p metric or append it, preserving insertion order. */
    void set(const std::string &metric, double value);

    /** Value of @p metric, or nullptr. */
    const double *find(const std::string &metric) const;
};

struct ResultsDoc
{
    int schemaVersion = kSchemaVersion;
    std::string bench; // "fig4", "table6", ...
    Cycle warmup = 0;
    Cycle measure = 0;
    int workloadsPerCategory = 0;

    // Run provenance, stamped by the producing harness: how long the
    // experiment took, how many intra-run worker lanes the simulator
    // used (SystemConfig::intraRunParallel), the host and build that
    // produced the document, and — when the run was profiled — the
    // merged self-profile metrics (prof::ProfileReport::provenance(),
    // fixed key order). All of it is descriptive metadata, not results:
    // claims never reference it and the baseline diff ignores the whole
    // "run" block (tools/claims compares bench, scale, and rows only),
    // so a doc regenerated on different hardware, at a different worker
    // count, or with profiling toggled still matches its golden.
    // Serialized only when any field is set — the one deliberate
    // exception to byte-identical re-runs — with a schema-stable key
    // order (wall_seconds, intra_workers, host_threads, build_type,
    // cycle_skip, jobs_per_sec, cache_hit_rate, profile), and parsed
    // tolerantly, so documents written before these fields existed load
    // unchanged.
    double wallSeconds = 0.0;
    int intraWorkers = 0;
    int hostThreads = 0;          //!< std::thread::hardware_concurrency
    std::string buildType;        //!< CMAKE_BUILD_TYPE of the producer
    int cycleSkip = -1;           //!< -1 unset, else 0/1 (SystemConfig)
    /** Daemon throughput (tools/sweepd summary docs): completed jobs per
     *  wall second; <= 0 means "not a daemon doc". */
    double jobsPerSec = 0.0;
    /** Alone-IPC cache hit rate of the producing run, in [0,1];
     *  -1 means unrecorded. */
    double cacheHitRate = -1.0;
    /** Flat profiler metrics; empty when the run was not profiled. */
    std::vector<std::pair<std::string, double>> profileMetrics;

    std::vector<Row> rows;

    ResultsDoc() = default;
    ResultsDoc(std::string benchName, const ExperimentScale &scale);

    /** Row (@p series, @p point), appended when missing. */
    Row &row(const std::string &series, const std::string &point = "");

    /** Shorthand for row(series).set(metric, value). */
    void set(const std::string &series, const std::string &metric,
             double value);
    /** Shorthand for row(series, point).set(metric, value). */
    void setAt(const std::string &series, const std::string &point,
               const std::string &metric, double value);

    /** Value lookup, nullptr when the row or metric is absent. */
    const double *find(const std::string &series, const std::string &point,
                       const std::string &metric) const;

    /** Deterministic pretty-printed JSON (ends with a newline). */
    std::string toJson() const;

    /**
     * The same document as a single compact JSONL record (one line, no
     * interior newlines, terminating "\n"). Field-for-field identical
     * content to toJson() — fromJson() parses either — just formatted
     * for append-only streams (tools/sweepd's results feed, where one
     * record per completed job lets a consumer tail the file).
     */
    std::string toJsonLine() const;

    /** toJson() to @p path; throws std::runtime_error on I/O failure. */
    void save(const std::string &path) const;

    /** Parse a document; throws std::runtime_error on malformed input
     *  or an unsupported schema_version. */
    static ResultsDoc fromJson(const std::string &text);

    /** fromJson() over the contents of @p path; throws on I/O failure. */
    static ResultsDoc load(const std::string &path);
};

} // namespace tcm::sim::results
