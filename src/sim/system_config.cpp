#include "sim/system_config.hpp"

namespace tcm::sim {

workload::Geometry
SystemConfig::geometry() const
{
    workload::Geometry g;
    g.numChannels = numChannels;
    g.banksPerChannel = timing.banksPerChannel;
    g.rowsPerBank = timing.rowsPerBank;
    g.colsPerRow = timing.colsPerRow;
    return g;
}

} // namespace tcm::sim
