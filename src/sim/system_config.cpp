#include "sim/system_config.hpp"

namespace tcm::sim {

std::string
SystemConfig::selectProtocol(const std::string &name)
{
    dram::ProtocolLookup lookup = dram::protocolByName(name);
    if (!lookup.ok)
        return lookup.error;
    std::string invalid = lookup.spec.validate();
    if (!invalid.empty())
        return invalid;
    protocol = lookup.spec.name;
    timing = lookup.spec.derive();
    return {};
}

workload::Geometry
SystemConfig::geometry() const
{
    workload::Geometry g;
    g.numChannels = numChannels;
    g.banksPerChannel = timing.banksPerChannel;
    g.rowsPerBank = timing.rowsPerBank;
    g.colsPerRow = timing.colsPerRow;
    return g;
}

} // namespace tcm::sim
