#include "sim/paper_experiments.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/alone_cache.hpp"
#include "sim/claims.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark_table.hpp"
#include "workload/mixes.hpp"

namespace tcm::sim::paper {

namespace {

/** Steady-clock timestamp for run-provenance stamping. */
std::chrono::steady_clock::time_point
tick()
{
    return std::chrono::steady_clock::now();
}

/** Stamp run provenance: elapsed wall time, worker-lane count, host and
 *  build identity, and (when the runs were profiled) the merged
 *  self-profile metrics. All of it lives in the "run" block, which the
 *  claims baseline diff ignores. */
void
stamp(results::ResultsDoc &doc, std::chrono::steady_clock::time_point t0,
      const SystemConfig &config,
      const prof::ProfileReport *profile = nullptr)
{
    doc.wallSeconds =
        std::chrono::duration<double>(tick() - t0).count();
    doc.intraWorkers = config.intraRunParallel;
    doc.hostThreads =
        static_cast<int>(std::thread::hardware_concurrency());
#ifdef TCMSIM_BUILD_TYPE
    doc.buildType = TCMSIM_BUILD_TYPE;
#endif
    doc.cycleSkip = config.cycleSkip ? 1 : 0;
    if (profile != nullptr && profile->enabled)
        doc.profileMetrics = profile->provenance();
}

/** Merged self-profile of one evaluateMatrix grid (disabled when the
 *  runs were not profiled). */
prof::ProfileReport
mergedProfile(const std::vector<AggregateResult> &aggs)
{
    prof::ProfileReport merged;
    for (const AggregateResult &agg : aggs)
        merged.merge(agg.profile);
    return merged;
}

} // namespace

results::ResultsDoc
fig4(const SystemConfig &config, const ExperimentScale &scale, int jobs)
{
    auto t0 = tick();
    // The exact bench_fig4 population: per-intensity seeds 2050/2075/2100.
    std::vector<std::vector<workload::ThreadProfile>> workloads;
    for (double intensity : {0.5, 0.75, 1.0}) {
        auto set = workload::workloadSet(
            scale.workloadsPerCategory, config.numCores, intensity,
            2000 + static_cast<int>(intensity * 100));
        workloads.insert(workloads.end(), set.begin(), set.end());
    }

    AloneIpcCache cache(config, scale.effectiveWarmup(), scale.effectiveMeasure());
    auto aggs = evaluateMatrix(config, workloads, paperSchedulers(), scale,
                               cache, /*baseSeed=*/1, jobs);

    results::ResultsDoc doc("fig4", scale);
    for (const AggregateResult &agg : aggs) {
        results::Row &row = doc.row(agg.scheduler);
        row.set("ws", agg.weightedSpeedup.mean());
        row.set("ms", agg.maxSlowdown.mean());
        row.set("hs", agg.harmonicSpeedup.mean());
    }
    prof::ProfileReport merged = mergedProfile(aggs);
    stamp(doc, t0, config, &merged);
    return doc;
}

results::ResultsDoc
table4(const SystemConfig &config, const ExperimentScale &scale)
{
    auto t0 = tick();
    results::ResultsDoc doc("table4", scale);
    double worstMpkiErr = 0.0, worstRblErr = 0.0, worstBlpErr = 0.0;
    // table4 runs Simulator directly (no runWorkload), so it attaches
    // its own profiler; one per run because attachProfiler re-sizes the
    // collector to the run's geometry.
    prof::ProfileReport mergedProf;
    for (const auto &profile : workload::benchmarkTable()) {
        Simulator sim(config, {profile}, sched::SchedulerSpec::frfcfs(), 99,
                      /*enableProbe=*/true);
        prof::Profiler profiler;
        if (config.profile.enabled)
            sim.attachProfiler(&profiler);
        sim.run(scale.warmup, scale.measure * 2);
        if (config.profile.enabled)
            mergedProf.merge(profiler.report());
        auto b = sim.behavior(0);

        double mpkiErr = profile.mpki > 0.05
                             ? 100.0 * (b.mpki - profile.mpki) / profile.mpki
                             : 0.0;
        double rblErr = b.rbl - profile.rbl;
        double blpErr = b.blp - profile.blp;
        worstMpkiErr = std::max(worstMpkiErr, std::fabs(mpkiErr));
        worstRblErr = std::max(worstRblErr, std::fabs(rblErr));
        worstBlpErr = std::max(worstBlpErr, std::fabs(blpErr));

        results::Row &row = doc.row(profile.name);
        row.set("mpki_target", profile.mpki);
        row.set("mpki", b.mpki);
        row.set("mpki_err_pct", mpkiErr);
        row.set("rbl_target", profile.rbl);
        row.set("rbl", b.rbl);
        row.set("rbl_err", rblErr);
        row.set("blp_target", profile.blp);
        row.set("blp", b.blp);
        row.set("blp_err", blpErr);
    }
    results::Row &worst = doc.row("worst");
    worst.set("mpki_err_pct", worstMpkiErr);
    worst.set("rbl_err", worstRblErr);
    worst.set("blp_err", worstBlpErr);
    stamp(doc, t0, config, &mergedProf);
    return doc;
}

results::ResultsDoc
table6(const SystemConfig &config, const ExperimentScale &scale, int jobs)
{
    auto t0 = tick();
    // Mixed-heterogeneity population (see bench_table6): half
    // heterogeneous at 50% intensity, half homogeneous-leaning at 100%.
    std::vector<std::vector<workload::ThreadProfile>> workloads;
    auto a = workload::workloadSet((scale.workloadsPerCategory + 1) / 2,
                                   config.numCores, 0.5, 6000);
    auto b = workload::workloadSet((scale.workloadsPerCategory + 1) / 2,
                                   config.numCores, 1.0, 6500);
    workloads.insert(workloads.end(), a.begin(), a.end());
    workloads.insert(workloads.end(), b.begin(), b.end());

    struct Algo
    {
        const char *label;
        sched::ShuffleMode mode;
        bool nicestAtTop;
    };
    const Algo algos[] = {
        {"round-robin", sched::ShuffleMode::RoundRobin, true},
        {"random", sched::ShuffleMode::Random, true},
        {"insertion", sched::ShuffleMode::Insertion, true},
        {"insertion(literal)", sched::ShuffleMode::Insertion, false},
        {"TCM (dynamic)", sched::ShuffleMode::Dynamic, true},
        {"TCM (dyn,literal)", sched::ShuffleMode::Dynamic, false},
    };

    std::vector<sched::SchedulerSpec> specs;
    for (const Algo &algo : algos) {
        sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
        spec.tcm.shuffleMode = algo.mode;
        spec.tcm.nicestAtTop = algo.nicestAtTop;
        specs.push_back(spec);
    }

    AloneIpcCache cache(config, scale.effectiveWarmup(), scale.effectiveMeasure());
    auto aggs = evaluateMatrix(config, workloads, specs, scale, cache,
                               /*baseSeed=*/13, jobs);

    results::ResultsDoc doc("table6", scale);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        results::Row &row = doc.row(algos[i].label);
        row.set("ms_avg", aggs[i].maxSlowdown.mean());
        row.set("ms_var", aggs[i].maxSlowdown.variance());
    }
    prof::ProfileReport merged = mergedProfile(aggs);
    stamp(doc, t0, config, &merged);
    return doc;
}

results::ResultsDoc
zoo(const SystemConfig &config, const ExperimentScale &scale, int jobs)
{
    auto t0 = tick();
    // Same population as fig4 so zoo rows are directly comparable with
    // the headline grid (per-intensity seeds 2050/2075/2100, baseSeed 1).
    std::vector<std::vector<workload::ThreadProfile>> workloads;
    for (double intensity : {0.5, 0.75, 1.0}) {
        auto set = workload::workloadSet(
            scale.workloadsPerCategory, config.numCores, intensity,
            2000 + static_cast<int>(intensity * 100));
        workloads.insert(workloads.end(), set.begin(), set.end());
    }

    const std::vector<sched::SchedulerSpec> specs = {
        sched::SchedulerSpec::frfcfs(),
        sched::SchedulerSpec::atlasSpec(),
        sched::SchedulerSpec::tcmSpec(),
        sched::SchedulerSpec::blissSpec(),
        sched::SchedulerSpec::ghtSpec(),
        sched::SchedulerSpec::cpFrfcfsSpec(),
        sched::SchedulerSpec::tournamentSpec(),
    };

    AloneIpcCache cache(config, scale.effectiveWarmup(), scale.effectiveMeasure());
    auto aggs = evaluateMatrix(config, workloads, specs, scale, cache,
                               /*baseSeed=*/1, jobs);

    results::ResultsDoc doc("zoo", scale);
    for (const AggregateResult &agg : aggs) {
        results::Row &row = doc.row(agg.scheduler);
        row.set("ws", agg.weightedSpeedup.mean());
        row.set("ms", agg.maxSlowdown.mean());
        row.set("hs", agg.harmonicSpeedup.mean());
    }
    prof::ProfileReport merged = mergedProfile(aggs);
    stamp(doc, t0, config, &merged);
    return doc;
}

results::ResultsDoc
intraParallel(const SystemConfig &config, const ExperimentScale &scale)
{
    auto t0 = tick();

    // The paper system at full memory pressure: every thread intensive,
    // all four channels loaded — the configuration the >= 1.3x speedup
    // acceptance bar is stated for. Low-intensity runs have fewer
    // executed cycles between barriers and gain less.
    auto mix = workload::randomMix(config.numCores, 1.0, /*seed=*/77);
    sched::SchedulerSpec spec = sched::SchedulerSpec::tcmSpec();
    spec.scaleToRun(scale.warmup + scale.measure);

    // Deliberately profiler-free: the rows below are wall-clock timing
    // claims, and even the profiler's branch-only detached cost has no
    // business inside the measured region.
    auto timedRun = [&](int workers, std::vector<double> &ipc) {
        SystemConfig cfg = config;
        cfg.cycleSkip = true;
        cfg.intraRunParallel = workers;
        auto r0 = tick();
        Simulator sim(cfg, mix, spec, /*seed=*/17);
        sim.run(scale.warmup, scale.measure);
        double seconds = std::chrono::duration<double>(tick() - r0).count();
        ipc.clear();
        for (ThreadId t = 0; t < sim.numThreads(); ++t)
            ipc.push_back(sim.measuredIpc(t));
        return seconds;
    };

    results::ResultsDoc doc("intra_parallel", scale);
    std::vector<double> serialIpc;
    double serial = 0.0;
    for (int workers : {1, 2, 4}) {
        std::vector<double> ipc;
        double seconds = timedRun(workers, ipc);
        std::vector<double> scratch;
        seconds = std::min(seconds, timedRun(workers, scratch));
        if (workers == 1) {
            serialIpc = ipc;
            serial = seconds;
        } else if (ipc != serialIpc) {
            // A speedup number measured on a diverged simulation is
            // meaningless — fail the whole gate, don't report it.
            throw std::runtime_error(
                "intra_parallel: worker count " + std::to_string(workers) +
                " diverged from the serial run");
        }
        results::Row &row = doc.row("w" + std::to_string(workers));
        row.set("seconds", seconds);
        row.set("speedup", seconds > 0.0 ? serial / seconds : 0.0);
    }
    stamp(doc, t0, config);
    return doc;
}

results::ResultsDoc
sampling(const SystemConfig &config, const ExperimentScale &scale, int jobs,
         const results::ResultsDoc *fullFig4)
{
    auto t0 = tick();

    ExperimentScale fullScale = scale;
    fullScale.sampling = SamplingConfig{}; // off

    ExperimentScale sampScale = scale;
    if (!sampScale.sampling.enabled)
        sampScale.sampling.enabled = true; // header defaults (30k + 3x14k)

    const results::ResultsDoc full =
        fullFig4 ? *fullFig4 : fig4(config, fullScale, jobs);
    const results::ResultsDoc sampled = fig4(config, sampScale, jobs);

    // Maximum slowdown tracks one worst-case thread through quantum-scale
    // scheduling phases, and the sampled span covers about one quantum
    // (SchedulerSpec::scaleToRun floors its quanta at 20-50k cycles), so
    // the scheduler whose full-run MS is itself a divergent starvation
    // statistic — ATLAS in every blessed configuration — has no finite
    // short-horizon MS estimate. Its error is reported per-row and in
    // ms_err_max, but the gated band (ms_err_max_bounded) covers the
    // bounded-slowdown schedulers; ATLAS's MS conclusions gate through
    // the preserved ordering claims instead.
    std::string worstMsSeries;
    double worstMs = -1.0;
    for (const results::Row &fullRow : full.rows) {
        const double *ms = fullRow.find("ms");
        if (ms && *ms > worstMs) {
            worstMs = *ms;
            worstMsSeries = fullRow.series;
        }
    }

    results::ResultsDoc doc("sampling", fullScale);
    const char *metrics[] = {"ws", "ms", "hs"};
    double errMax[3] = {0.0, 0.0, 0.0};
    double msErrBounded = 0.0;
    for (const results::Row &fullRow : full.rows) {
        results::Row &row = doc.row(fullRow.series);
        for (int m = 0; m < 3; ++m) {
            const double *f = fullRow.find(metrics[m]);
            const double *s = sampled.find(fullRow.series, "", metrics[m]);
            if (!f || !s)
                continue;
            double relerr = *f != 0.0 ? std::fabs(*s - *f) / std::fabs(*f)
                                      : std::fabs(*s);
            errMax[m] = std::max(errMax[m], relerr);
            if (m == 1 && fullRow.series != worstMsSeries)
                msErrBounded = std::max(msErrBounded, relerr);
            row.set(std::string(metrics[m]) + "_full", *f);
            row.set(std::string(metrics[m]) + "_sampled", *s);
            row.set(std::string(metrics[m]) + "_relerr", relerr);
        }
    }

    // Ordering preservation: the fig4.* registry — the reproduction's
    // headline scheduler orderings — must reach the same verdicts on the
    // sampled document. Self-maintaining: new fig4 claims are covered
    // automatically.
    std::vector<claims::Claim> fig4Claims = claims::paperClaims();
    std::erase_if(fig4Claims, [](const claims::Claim &c) {
        return c.id.rfind("fig4.", 0) != 0;
    });
    claims::ResultSet sampledSet;
    sampledSet.add(sampled);
    int failed =
        claims::failureCount(claims::evaluateAll(fig4Claims, sampledSet));

    const double fullCycles = static_cast<double>(
        fullScale.effectiveWarmup() + fullScale.effectiveMeasure());
    const double sampCycles = static_cast<double>(
        sampScale.effectiveWarmup() + sampScale.effectiveMeasure());

    results::Row &summary = doc.row("summary");
    summary.set("ws_err_max", errMax[0]);
    summary.set("ms_err_max", errMax[1]);
    summary.set("ms_err_max_bounded", msErrBounded);
    summary.set("hs_err_max", errMax[2]);
    summary.set("fig4_claims_total",
                static_cast<double>(fig4Claims.size()));
    summary.set("fig4_claims_failed", static_cast<double>(failed));
    summary.set("cycle_ratio",
                sampCycles > 0.0 ? fullCycles / sampCycles : 0.0);
    summary.set("seconds_full", full.wallSeconds);
    summary.set("seconds_sampled", sampled.wallSeconds);
    summary.set("speedup", sampled.wallSeconds > 0.0
                               ? full.wallSeconds / sampled.wallSeconds
                               : 0.0);
    stamp(doc, t0, config);
    return doc;
}

} // namespace tcm::sim::paper
