/**
 * @file
 * Interval-sampled simulation runs: warmup plus K short measurement
 * windows standing in for the full measurement window.
 *
 * The synthetic workloads are statistically stationary, so a run's
 * full-window IPC is well estimated from a much shorter span — the
 * simulation-interval representativeness result (arXiv 2402.00649)
 * applied to this simulator. A sampled run executes
 * `warmup + windows * window` cycles instead of the full
 * `warmup + measure`, cutting per-job cost by the cycle ratio (>= 4x at
 * the blessed scales), while the per-window IPC readings give every run
 * a self-assessed confidence figure (relative standard error across
 * windows, RunResult::ipcRse).
 *
 * Contract (enforced by tests/test_sampling and the sampling.* claims):
 *   - Scheduler time constants still scale to the FULL run length
 *     (SchedulerSpec::scaleToRun(measure)), so a sampled run is a
 *     prefix-slice of the full run's dynamics, not a compressed rerun.
 *   - Alone-IPC denominators are sampled with the same configuration
 *     (AloneIpcCache built from the effective warmup/measure), so
 *     WS/MS are ratios of two same-horizon estimates.
 *   - Window-chunked stepping is bit-identical to one contiguous run of
 *     the same length (the cycle-skip kernel's clamp contract), so
 *     sampling changes *how long* we simulate, never *what* we simulate.
 *   - Validation is against full-run values: paper::sampling() runs the
 *     fig4 grid both ways and gates the worst WS/MS error band, the
 *     preserved scheduler ordering (the fig4 claims re-evaluated on
 *     sampled numbers), and the wall-clock speedup.
 */

#pragma once

#include <string>

#include "common/types.hpp"

namespace tcm::sim {

struct SamplingConfig
{
    bool enabled = false;

    /** Sampled-run warmup, replacing the full run's warmup. The
     *  default is deliberately warmup-heavy: history-driven
     *  schedulers (ATLAS's attained-service ranking, TCM's cluster
     *  assignment) need a quantum or so of unmeasured run-in before
     *  a short measured span represents their steady state — the
     *  fig4 orderings only survive sampling with it. */
    Cycle warmup = 30'000;

    /** Cycles per measurement window (W). */
    Cycle window = 14'000;

    /** Number of measurement windows (K). */
    int windows = 3;

    /** Total measured cycles of a sampled run (K * W). */
    Cycle totalMeasure() const
    {
        return window * static_cast<Cycle>(windows);
    }

    /**
     * Parse a "W:K" or "W:K:WARMUP" spec (tools/sweep --sample,
     * sweepd manifests). Returns a config with enabled=true, or sets
     * @p error and returns a disabled config on a malformed spec
     * (non-numeric fields, W < 1000, K < 1, WARMUP < 0).
     */
    static SamplingConfig parse(const std::string &spec, std::string *error);

    /** Canonical "W:K:WARMUP" rendering (fingerprints, log lines). */
    std::string describe() const;
};

} // namespace tcm::sim
