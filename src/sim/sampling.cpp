#include "sim/sampling.hpp"

#include <cerrno>
#include <cstdlib>

namespace tcm::sim {

namespace {

/** Parse a non-negative integer field; false on junk/empty/overflow. */
bool
parseField(const std::string &s, unsigned long long *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    *out = v;
    return true;
}

} // namespace

SamplingConfig
SamplingConfig::parse(const std::string &spec, std::string *error)
{
    SamplingConfig cfg;
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "sampling spec '" + spec + "': " + why +
                     " (expected W:K or W:K:WARMUP, W >= 1000, K >= 1)";
        return SamplingConfig{};
    };

    std::size_t c1 = spec.find(':');
    if (c1 == std::string::npos)
        return fail("missing ':'");
    std::size_t c2 = spec.find(':', c1 + 1);

    unsigned long long w = 0, k = 0, warm = 0;
    if (!parseField(spec.substr(0, c1), &w))
        return fail("bad window");
    const std::string kField =
        c2 == std::string::npos ? spec.substr(c1 + 1)
                                : spec.substr(c1 + 1, c2 - c1 - 1);
    if (!parseField(kField, &k))
        return fail("bad window count");
    bool haveWarm = c2 != std::string::npos;
    if (haveWarm && !parseField(spec.substr(c2 + 1), &warm))
        return fail("bad warmup");

    if (w < 1000)
        return fail("window below 1000 cycles");
    if (k < 1 || k > 1'000'000)
        return fail("window count out of range");

    cfg.enabled = true;
    cfg.window = static_cast<Cycle>(w);
    cfg.windows = static_cast<int>(k);
    if (haveWarm)
        cfg.warmup = static_cast<Cycle>(warm);
    return cfg;
}

std::string
SamplingConfig::describe() const
{
    if (!enabled)
        return "off";
    return std::to_string(static_cast<unsigned long long>(window)) + ":" +
           std::to_string(windows) + ":" +
           std::to_string(static_cast<unsigned long long>(warmup));
}

} // namespace tcm::sim
