/**
 * @file
 * Whole-system configuration (the paper's Table 3).
 */

#pragma once

#include <cstdint>
#include <string>

#include "core/core.hpp"
#include "dram/protocol.hpp"
#include "dram/timing.hpp"
#include "mem/controller.hpp"
#include "prof/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/synthetic_trace.hpp"

namespace tcm::sim {

/**
 * The baseline 24-core, 4-controller CMP of Table 3, with every knob the
 * sensitivity studies (Table 8) vary.
 */
struct SystemConfig
{
    int numCores = 24;
    int numChannels = 4;

    /**
     * Registry name of the DRAM protocol `timing` was derived from
     * (kept in sync by selectProtocol; informational otherwise).
     */
    std::string protocol = "ddr2-800";
    dram::TimingParams timing = dram::TimingParams::ddr2_800();
    core::CoreParams core;
    mem::ControllerParams controller;

    /**
     * Re-derive `timing` from the named protocol preset ("ddr2-800",
     * "ddr3-1333", "ddr3-1600", "ddr4-2400"). Returns an empty string on
     * success, else the registry's structured error naming the valid
     * protocols (config untouched).
     */
    std::string selectProtocol(const std::string &name);

    /**
     * Models the Table 8 cache-size sweep: MPKI scales inversely-ish with
     * last-level cache size; a factor of 1.0 is the 512 KB baseline,
     * < 1.0 emulates a larger cache (fewer misses).
     */
    double mpkiScale = 1.0;

    /**
     * Attach an independent dram::ProtocolChecker to every channel: the
     * full command stream is audited against the DDR2 constraints,
     * re-derived from the trace alone (see Simulator::protocolChecker()
     * for the verdict). Off by default — auditing is opt-in so the fast
     * path stays observer-free.
     */
    bool protocolCheck = false;

    /**
     * In-run telemetry: interval time-series sampler, scheduler-decision
     * trace, request-lifecycle breakdowns. Off by default — the fast
     * path stays observer-free and results are bit-identical either way.
     */
    telemetry::TelemetryConfig telemetry;

    /**
     * Simulator self-profiling (tcm::prof): wall-clock phase timers,
     * cycle-skip horizon attribution, regime occupancy, scan efficiency
     * and gang imbalance, reported through SystemReport and the
     * ResultsDoc run-provenance block. Off by default; when off,
     * runWorkload falls back to the TCMSIM_PROFILE environment knob.
     * Purely an observer of the simulator — results are bit-identical
     * either way (tests/test_prof).
     */
    prof::ProfileConfig profile;

    /**
     * Event-horizon simulation kernel: Simulator::step advances time to
     * the earliest cycle any component reports it could act (controller
     * arrivals/refresh/issue, scheduler quantum or shuffle boundaries,
     * telemetry samples, core submissions), fast-forwarding cores in
     * closed form across the dead span. Bit-identical to the per-cycle
     * loop — every RunResult, golden command trace, and bench JSON is
     * unchanged — because every horizon is a conservative lower bound
     * and any cycle with possible cross-component effect is executed
     * normally. Off = the original per-cycle loop (kept as the
     * differential oracle; see tests/test_cycleskip.cpp).
     */
    bool cycleSkip = true;

    /**
     * Intra-run parallelism: number of worker lanes stepping the
     * per-channel controllers (and the core fleet) concurrently between
     * deterministic synchronization points — scheduler quantum/shuffle/
     * batch/update boundaries (SchedulerPolicy::decoupleHorizon),
     * telemetry samples, and every core<->memory interaction cycle.
     * Controller side effects that cross component boundaries (policy
     * hooks, command-observer events, lifecycle records) are deferred
     * during a span and replayed at the next barrier in canonical
     * serial order, so results — every RunResult field, telemetry byte,
     * and golden command trace — are bit-identical at any worker count
     * (see tests/test_intra_parallel.cpp). 1 = the serial driver
     * (differential oracle). Composes with cycleSkip: each worker jumps
     * its own controller's dead cycles inside a span.
     */
    int intraRunParallel = 1;

    /** Geometry handed to the trace generator. */
    workload::Geometry geometry() const;
};

} // namespace tcm::sim
