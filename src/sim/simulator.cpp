#include "sim/simulator.hpp"

#include <cassert>

namespace tcm::sim {

namespace {

/** splitmix64: decorrelate per-thread trace seeds from the run seed. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Simulator::Simulator(const SystemConfig &config,
                     const std::vector<workload::ThreadProfile> &profiles,
                     const sched::SchedulerSpec &spec, std::uint64_t seed,
                     bool enableProbe)
    : config_(config)
{
    std::vector<std::unique_ptr<core::TraceSource>> traces;
    std::vector<int> weights;
    traces.reserve(profiles.size());
    weights.reserve(profiles.size());
    for (std::size_t t = 0; t < profiles.size(); ++t) {
        workload::ThreadProfile p = profiles[t];
        p.mpki *= config_.mpkiScale;
        traces.push_back(std::make_unique<workload::SyntheticTrace>(
            p, config_.geometry(), mixSeed(seed, t)));
        weights.push_back(p.weight);
    }
    init(std::move(traces), spec, seed, enableProbe, weights);
}

Simulator::Simulator(const SystemConfig &config,
                     std::vector<std::unique_ptr<core::TraceSource>> traces,
                     const sched::SchedulerSpec &spec, std::uint64_t seed,
                     bool enableProbe, std::vector<int> weights)
    : config_(config)
{
    if (weights.empty())
        weights.assign(traces.size(), 1);
    init(std::move(traces), spec, seed, enableProbe, weights);
}

void
Simulator::init(std::vector<std::unique_ptr<core::TraceSource>> traces,
                const sched::SchedulerSpec &spec, std::uint64_t seed,
                bool enableProbe, const std::vector<int> &weights)
{
    const int numThreads = static_cast<int>(traces.size());
    assert(static_cast<int>(weights.size()) == numThreads);
    traces_ = std::move(traces);

    policy_ = sched::makeScheduler(spec, seed);
    mem::SchedulerPolicy *active = policy_.get();
    if (enableProbe) {
        probe_ = std::make_unique<ProbePolicy>(*policy_);
        active = probe_.get();
    }
    active->configure(numThreads, config_.numChannels,
                      config_.timing.banksPerChannel);

    counters_.resize(numThreads);
    active->setCoreCounters(&counters_);

    bool anyWeight = false;
    for (int w : weights)
        anyWeight |= w != 1;
    if (anyWeight)
        active->setThreadWeights(weights);

    if (config_.protocolCheck)
        checker_ = std::make_unique<dram::ProtocolChecker>(config_.timing);

    controllers_.reserve(config_.numChannels);
    for (ChannelId ch = 0; ch < config_.numChannels; ++ch) {
        controllers_.push_back(std::make_unique<mem::MemoryController>(
            ch, config_.timing, config_.controller, *active));
        active->attachQueue(ch, controllers_.back().get());
        if (checker_) {
            controllers_.back()->addCommandObserver(checker_.get());
            checker_->observeChannel(ch);
        }
    }

    std::vector<mem::MemoryController *> mcs;
    for (auto &mc : controllers_)
        mcs.push_back(mc.get());

    cores_.reserve(numThreads);
    for (ThreadId t = 0; t < numThreads; ++t) {
        cores_.push_back(std::make_unique<core::Core>(
            t, config_.core, *traces_[t], mcs, &counters_[t]));
    }

    baseInstructions_.assign(numThreads, 0);
    baseMisses_.assign(numThreads, 0);
}

Simulator::~Simulator() = default;

void
Simulator::attachCommandObserver(dram::CommandObserver *observer)
{
    for (auto &mc : controllers_)
        mc->addCommandObserver(observer);
}

void
Simulator::attachTelemetry(telemetry::TelemetrySink *sink)
{
    telemetry_ = sink;
    const telemetry::TelemetryConfig &cfg = sink->config();

    telemetry::TelemetrySink::Meta meta = sink->meta();
    meta.scheduler = policy_->name();
    meta.numThreads = numThreads();
    meta.numChannels = config_.numChannels;
    meta.sampleInterval = cfg.sampleInterval;
    sink->setMeta(std::move(meta));

    // Decisions come from the real policy (the probe wrapper only
    // forwards hooks; it makes no decisions of its own).
    if (cfg.traceDecisions)
        policy_->setDecisionSink(sink);

    if (cfg.traceLifecycle)
        for (auto &mc : controllers_)
            mc->setLifecycleSink(sink);

    if (cfg.sampleInterval > 0) {
        sampler_ = std::make_unique<telemetry::IntervalSampler>(
            numThreads(), config_.numChannels, config_.timing.tCK,
            config_.timing.tBURST);
        sampler_->rebase(now_, threadGauges(), channelGauges());
        telemetrySampleAt_ = now_ + cfg.sampleInterval;
    }
}

std::vector<telemetry::ThreadGauges>
Simulator::threadGauges()
{
    std::vector<telemetry::ThreadGauges> gauges(cores_.size());
    sched::ThreadBankMonitor::Snapshot snap;
    if (probe_)
        snap = probe_->monitor().snapshot(now_);
    for (std::size_t t = 0; t < gauges.size(); ++t) {
        telemetry::ThreadGauges &g = gauges[t];
        g.instructions = counters_[t].instructions;
        g.readMisses = counters_[t].readMisses;
        if (probe_) {
            ThreadId tid = static_cast<ThreadId>(t);
            g.hasBehavior = true;
            g.shadowHits = snap.shadowHits[t];
            g.accesses = snap.accesses[t];
            g.banksWithLoad = probe_->monitor().banksWithLoad(tid);
            g.outstanding = probe_->monitor().outstanding(tid);
        }
    }
    return gauges;
}

std::vector<telemetry::ChannelGauges>
Simulator::channelGauges() const
{
    std::vector<telemetry::ChannelGauges> gauges(controllers_.size());
    for (std::size_t ch = 0; ch < gauges.size(); ++ch) {
        const mem::ControllerStats &s = controllers_[ch]->stats();
        telemetry::ChannelGauges &g = gauges[ch];
        g.commands = s.activates + s.precharges + s.readsServiced +
                     s.writesServiced + s.refreshes;
        g.columns = s.readsServiced + s.writesServiced;
        g.rowHits = s.rowHits;
        g.readQueue = static_cast<std::uint32_t>(controllers_[ch]->readLoad());
        g.writeQueue =
            static_cast<std::uint32_t>(controllers_[ch]->writeLoad());
    }
    return gauges;
}

void
Simulator::sampleTelemetry()
{
    sampler_->sample(now_, threadGauges(), channelGauges(), *telemetry_);
    telemetrySampleAt_ = now_ + telemetry_->config().sampleInterval;
}

void
Simulator::step(Cycle cycles)
{
    mem::SchedulerPolicy *active = probe_ ? static_cast<mem::SchedulerPolicy *>(
                                                probe_.get())
                                          : policy_.get();
    const Cycle end = now_ + cycles;
    for (; now_ < end; ++now_) {
        active->tick(now_);
        for (auto &mc : controllers_) {
            mc->tick(now_);
            auto &comps = mc->completions();
            if (!comps.empty()) {
                for (const auto &c : comps)
                    cores_[c.thread]->completeMiss(c.missId, c.readyAt);
                comps.clear();
            }
        }
        for (auto &core : cores_)
            core->tick(now_);
        if (now_ >= telemetrySampleAt_)
            sampleTelemetry();
    }
}

void
Simulator::beginMeasurement()
{
    measureStart_ = now_;
    for (std::size_t t = 0; t < cores_.size(); ++t) {
        baseInstructions_[t] = counters_[t].instructions;
        baseMisses_[t] = counters_[t].readMisses;
    }
    for (auto &mc : controllers_)
        mc->resetStats();
    if (probe_)
        probe_->resetProbe(now_);
    // Controller/probe counters just rewound; rebase the sampler so the
    // next interval differentiates against the reset values.
    if (sampler_) {
        sampler_->rebase(now_, threadGauges(), channelGauges());
        telemetrySampleAt_ = now_ + telemetry_->config().sampleInterval;
    }
}

void
Simulator::run(Cycle warmup, Cycle measure)
{
    step(warmup);
    beginMeasurement();
    step(measure);
}

double
Simulator::measuredIpc(ThreadId t) const
{
    Cycle elapsed = now_ - measureStart_;
    if (elapsed == 0)
        return 0.0;
    std::uint64_t insts = counters_[t].instructions - baseInstructions_[t];
    return static_cast<double>(insts) / static_cast<double>(elapsed);
}

Simulator::BehaviorStats
Simulator::behavior(ThreadId t) const
{
    BehaviorStats b;
    b.ipc = measuredIpc(t);
    std::uint64_t insts = counters_[t].instructions - baseInstructions_[t];
    std::uint64_t misses = counters_[t].readMisses - baseMisses_[t];
    b.mpki = insts > 0 ? 1000.0 * static_cast<double>(misses) /
                             static_cast<double>(insts)
                       : 0.0;
    if (probe_) {
        auto s = probe_->monitor().snapshot(now_);
        b.blp = s.blp[t];
        b.rbl = s.rbl[t];
        b.probed = true;
    }
    return b;
}

const mem::ControllerStats &
Simulator::controllerStats(ChannelId ch) const
{
    return controllers_[ch]->stats();
}

const mem::LatencyTracker &
Simulator::latency(ChannelId ch) const
{
    return controllers_[ch]->latency();
}

dram::CommandCounts
Simulator::commandCounts(ChannelId ch) const
{
    const mem::ControllerStats &s = controllers_[ch]->stats();
    dram::CommandCounts c;
    c.activates = s.activates;
    c.reads = s.readsServiced;
    c.writes = s.writesServiced;
    c.refreshes = s.refreshes;
    c.bankBusyCycles = s.bankBusyCycles;
    return c;
}

} // namespace tcm::sim
